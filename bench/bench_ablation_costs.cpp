// Ablation bench for the design choices DESIGN.md calls out: how sensitive
// the headline result (SUV-TM vs LogTM-SE / FasTM) is to
//  (1) the LogTM-SE software-abort cost model,
//  (2) SUV's speculation on redirect-table misses (mis-speculation penalty),
//  (3) the summary signature size (false-filter pressure),
//  (4) the Bloom signature size (false-conflict pressure, all schemes).
//
// Usage: bench_ablation_costs [scale] [--jobs N] [--check] [--metrics]
//   (--trace is accepted for flag uniformity but ignored: the sweep runs
//    hundreds of simulations, far too many for one useful trace file.)
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "runner/cli.hpp"
#include "runner/parallel.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

namespace {

std::uint64_t g_events = 0;  // simulated events across every suite run
std::uint64_t g_runs = 0;
obs::MetricsSnapshot g_metrics;  // merged across every suite run
const runner::Cli* g_cli = nullptr;

std::uint64_t suite_total(sim::Scheme scheme, sim::SimConfig cfg,
                          const stamp::SuiteParams& params) {
  g_cli->apply(cfg);
  std::uint64_t total = 0;
  for (const auto& r : runner::run_suite(scheme, cfg, params)) {
    total += r.makespan;
    g_events += r.sim_events;
    obs::merge(g_metrics, r.metrics);
    ++g_runs;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  runner::Cli cli = runner::Cli::parse(argc, argv);
  if (cli.tracing()) {
    std::fprintf(stderr, "warning: --trace is ignored by this sweep bench "
                         "(too many runs for one trace)\n");
    cli.trace_path.clear();
  }
  g_cli = &cli;
  const unsigned jobs = cli.jobs;
  stamp::SuiteParams params;
  params.scale = cli.scale_or(0.25);  // sweeps are pricey
  runner::WallTimer timer;

  std::printf("Ablation: headline sensitivity to cost-model choices "
              "(suite-sum cycles, scale=%.2f)\n\n", params.scale);

  // (1) LogTM-SE abort-trap cost.
  // Past ~300 cycles the genome/intruder abort cascade diverges (the
  // paper's vicious cycle taken to its logical end), so the sweep stops
  // inside the stable regime.
  std::printf("(1) LogTM-SE software abort trap cost\n");
  std::vector<std::vector<std::string>> t1;
  t1.push_back({"trap cycles", "LogTM-SE", "SUV-TM", "SUV speedup"});
  for (Cycle trap : {Cycle{50}, Cycle{100}, Cycle{200}, Cycle{300}}) {
    sim::SimConfig cfg;
    cfg.htm.abort_trap_latency = trap;
    const auto l = suite_total(sim::Scheme::kLogTmSe, cfg, params);
    const auto s = suite_total(sim::Scheme::kSuv, cfg, params);
    t1.push_back({runner::fmt_u64(trap), runner::fmt_u64(l),
                  runner::fmt_u64(s),
                  runner::fmt_fixed(100.0 * (static_cast<double>(l) / s - 1.0),
                                    1) + "%"});
  }
  std::printf("%s\n", runner::render_table(t1).c_str());

  // (2) SUV mis-speculation penalty.
  std::printf("(2) SUV mis-speculation penalty (redirect-table miss)\n");
  std::vector<std::vector<std::string>> t2;
  t2.push_back({"penalty cycles", "SUV-TM suite cycles"});
  for (Cycle pen : {Cycle{0}, Cycle{50}, Cycle{100}, Cycle{400}}) {
    sim::SimConfig cfg;
    cfg.suv.misspeculation_penalty = pen;
    t2.push_back({runner::fmt_u64(pen),
                  runner::fmt_u64(suite_total(sim::Scheme::kSuv, cfg, params))});
  }
  std::printf("%s\n", runner::render_table(t2).c_str());

  // (3) Summary signature size.
  std::printf("(3) redirect summary signature size\n");
  std::vector<std::vector<std::string>> t3;
  t3.push_back({"bits", "SUV-TM suite cycles"});
  for (std::uint32_t bits : {512u, 1024u, 2048u, 8192u}) {
    sim::SimConfig cfg;
    cfg.suv.summary_signature_bits = bits;
    t3.push_back({runner::fmt_u64(bits),
                  runner::fmt_u64(suite_total(sim::Scheme::kSuv, cfg, params))});
  }
  std::printf("%s\n", runner::render_table(t3).c_str());

  // (4) Read/write signature size (false conflicts, affects every scheme).
  std::printf("(4) read/write Bloom signature size\n");
  std::vector<std::vector<std::string>> t4;
  t4.push_back({"bits", "LogTM-SE", "FasTM", "SUV-TM"});
  for (std::uint32_t bits : {512u, 2048u, 8192u}) {
    sim::SimConfig cfg;
    cfg.htm.signature_bits = bits;
    t4.push_back({runner::fmt_u64(bits),
                  runner::fmt_u64(suite_total(sim::Scheme::kLogTmSe, cfg, params)),
                  runner::fmt_u64(suite_total(sim::Scheme::kFasTm, cfg, params)),
                  runner::fmt_u64(suite_total(sim::Scheme::kSuv, cfg, params))});
  }
  std::printf("%s\n", runner::render_table(t4).c_str());

  // (5) Conflict-resolution policy (paper Section III's alternative:
  // requester-wins dooms the holder instead of stalling the requester).
  std::printf("(5) conflict-resolution policy (SUV-TM)\n");
  std::vector<std::vector<std::string>> t5;
  t5.push_back({"policy", "suite cycles", "aborts"});
  for (auto policy : {sim::ConflictPolicy::kRequesterStalls,
                      sim::ConflictPolicy::kRequesterWins}) {
    sim::SimConfig cfg;
    cfg.htm.conflict_policy = policy;
    cli.apply(cfg);
    std::uint64_t cycles = 0, aborts = 0;
    for (const auto& r : runner::run_suite(sim::Scheme::kSuv, cfg, params)) {
      cycles += r.makespan;
      aborts += r.htm.aborts;
      g_events += r.sim_events;
      obs::merge(g_metrics, r.metrics);
      ++g_runs;
    }
    t5.push_back({policy == sim::ConflictPolicy::kRequesterStalls
                      ? "requester-stalls (paper default)"
                      : "requester-wins (paper alternative)",
                  runner::fmt_u64(cycles), runner::fmt_u64(aborts)});
  }
  std::printf("%s\n", runner::render_table(t5).c_str());

  const double wall_s = timer.seconds();
  runner::BenchReport report("ablation_costs");
  if (cli.metrics) report.set_metrics(g_metrics, "metrics.");
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("runs", g_runs);
  report.set("wall_seconds", wall_s);
  report.set("sim_events", g_events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(g_events) / wall_s : 0.0);
  report.write();
  return 0;
}
