// Tables II + III: the redirect-entry state semantics and the simulated CMP
// configuration actually used by every experiment in this repository.
#include <cstdio>

#include "runner/cli.hpp"
#include "runner/tables.hpp"
#include "suv/redirect_entry.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  // No simulation here; parse so the shared flags are uniformly accepted.
  (void)runner::Cli::parse(argc, argv);
  const sim::SimConfig cfg;  // defaults == paper Table III

  std::printf("Table III: simulated CMP configuration (defaults)\n\n");
  std::vector<std::vector<std::string>> t3;
  t3.push_back({"component", "configuration"});
  t3.push_back({"processor cores",
                runner::fmt_u64(cfg.mem.num_cores) +
                    " in-order single-issue @1.2GHz, " +
                    runner::fmt_u64(cfg.mem.mesh_dim) + "x" +
                    runner::fmt_u64(cfg.mem.mesh_dim) + " mesh"});
  t3.push_back({"L1 cache", runner::fmt_u64(cfg.mem.l1_bytes / 1024) +
                                " KB " + runner::fmt_u64(cfg.mem.l1_assoc) +
                                "-way, 64B lines, " +
                                runner::fmt_u64(cfg.mem.l1_latency) +
                                "-cycle"});
  t3.push_back({"L2 cache",
                runner::fmt_u64(cfg.mem.l2_bytes / (1024 * 1024)) + " MB " +
                    runner::fmt_u64(cfg.mem.l2_assoc) + "-way, " +
                    runner::fmt_u64(cfg.mem.l2_latency) + "-cycle"});
  t3.push_back({"main memory", runner::fmt_u64(cfg.mem.memory_banks) +
                                   " banks, " +
                                   runner::fmt_u64(cfg.mem.memory_latency) +
                                   "-cycle"});
  t3.push_back({"L2 directory", "bit vector of sharers, " +
                                    runner::fmt_u64(cfg.mem.directory_latency) +
                                    "-cycle"});
  t3.push_back({"interconnect", "mesh, " +
                                    runner::fmt_u64(cfg.mem.mesh_wire_latency) +
                                    "-cycle wire + " +
                                    runner::fmt_u64(cfg.mem.mesh_route_latency) +
                                    "-cycle route per hop"});
  t3.push_back({"signatures", runner::fmt_u64(cfg.htm.signature_bits / 1024) +
                                  " Kbit Bloom filters, " +
                                  runner::fmt_u64(cfg.htm.signature_hashes) +
                                  " hashes"});
  t3.push_back({"1st-level redirect table",
                runner::fmt_u64(cfg.suv.l1_table_entries) +
                    "-entry zero-latency fully associative"});
  t3.push_back({"2nd-level redirect table",
                runner::fmt_u64(cfg.suv.l2_table_entries) + "-entry " +
                    runner::fmt_u64(cfg.suv.l2_table_assoc) + "-way shared, " +
                    runner::fmt_u64(cfg.suv.l2_table_latency) + "-cycle"});
  std::printf("%s\n", runner::render_table(t3).c_str());

  std::printf("Table II: redirect-entry states (global bit, valid bit)\n\n");
  std::vector<std::vector<std::string>> t2;
  t2.push_back({"g", "v", "state", "owner's view", "everyone else",
                "on commit", "on abort"});
  struct RowInfo {
    suv::EntryState s;
    const char* own;
    const char* other;
  };
  for (const RowInfo& ri : {
           RowInfo{suv::EntryState::kInvalid, "original", "original"},
           RowInfo{suv::EntryState::kTxnRedirect, "target", "original"},
           RowInfo{suv::EntryState::kTxnUnredirect, "original", "target"},
           RowInfo{suv::EntryState::kGlobalRedirect, "target", "target"},
       }) {
    t2.push_back({suv::global_bit(ri.s) ? "1" : "0",
                  suv::valid_bit(ri.s) ? "1" : "0", suv::entry_state_name(ri.s),
                  ri.own, ri.other,
                  suv::entry_state_name(suv::commit_flip(ri.s)),
                  suv::entry_state_name(suv::abort_flip(ri.s))});
  }
  std::printf("%s\n", runner::render_table(t2).c_str());
  return 0;
}
