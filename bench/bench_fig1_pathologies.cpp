// Figure 1: the repair and merge pathologies, reproduced as targeted
// micro-scenarios.
//
//  Repair pathology: an aborting LogTM-SE transaction holds isolation while
//  software walks its undo log; a neighbour that conflicts during that
//  window stalls (and may itself abort). SUV's flash abort closes the
//  window. We measure the isolation-window length directly as the Aborting
//  bucket per abort, plus the neighbour's stall time.
//
//  Merge pathology: a lazy (DynTM/FasTM-style) committer publishes its
//  write set line by line while holding isolation; neighbours conflict
//  during the merge. With SUV publication is a flash flip. Measured as the
//  Committing bucket per commit.
//
// Usage: bench_fig1_pathologies [--jobs N] [--trace out.json] [--metrics]
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "obs/chrome_trace.hpp"
#include "runner/cli.hpp"
#include "runner/parallel.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

namespace {

// Writer threads repeatedly rewrite a shared region in big transactions;
// reader threads poke at it. High write-write overlap forces aborts.
struct Scenario {
  Addr region;
  std::uint64_t lines;
  sim::Barrier* bar;
};

sim::ThreadTask contender(sim::ThreadContext& tc, const Scenario& s,
                          int rounds) {
  co_await tc.barrier(*s.bar);
  for (int r = 0; r < rounds; ++r) {
    co_await stamp::atomically(tc, 1,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      // Read-modify-write a window of the shared region, offset per core.
      const std::uint64_t start =
          (tc.core() * 7 + static_cast<std::uint64_t>(r)) % s.lines;
      for (std::uint64_t i = 0; i < 24; ++i) {
        const Addr a = s.region + ((start + i) % s.lines) * kLineBytes;
        const std::uint64_t v = co_await t.load(a);
        co_await t.store(a, v + 1);
      }
    });
    co_await tc.compute(100);
  }
  co_await tc.barrier(*s.bar);
}

struct ScenarioResult {
  std::string line;
  std::uint64_t events = 0;
  obs::TraceData trace;
  obs::MetricsSnapshot metrics;
};

ScenarioResult run_scenario(sim::Scheme scheme, const runner::Cli& cli) {
  api::RunHandle h = api::SimBuilder().scheme(scheme).apply(cli).build();
  sim::Simulator& sim = h.sim();
  Scenario s;
  s.region = 0x40000;
  s.lines = 96;  // heavy overlap between the 16 contenders
  s.bar = &h.make_barrier(h.num_cores());
  for (CoreId c = 0; c < h.num_cores(); ++c) {
    h.spawn(c, contender(h.context(c), s, 24));
  }
  h.run();
  const auto b = sim.total_breakdown();
  const auto& ht = h.htm_stats();
  const double abort_window =
      ht.aborts ? static_cast<double>(b.get(sim::Bucket::kAborting)) /
                      static_cast<double>(ht.aborts)
                : 0.0;
  const double commit_window =
      ht.commits ? static_cast<double>(b.get(sim::Bucket::kCommitting)) /
                       static_cast<double>(ht.commits)
                 : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-10s makespan=%9llu aborts=%6llu  isolation window per "
                "abort=%7.1f cy  per commit=%6.1f cy  stalled=%llu",
                sim::scheme_name(scheme),
                static_cast<unsigned long long>(h.makespan()),
                static_cast<unsigned long long>(ht.aborts), abort_window,
                commit_window,
                static_cast<unsigned long long>(b.get(sim::Bucket::kStalled)));
  ScenarioResult out;
  out.line = buf;
  out.events = sim.scheduler().events_processed();
  if (cli.tracing()) out.trace = h.trace();
  if (cli.metrics) out.metrics = h.metrics();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  std::printf("Figure 1 micro-scenario: 16 contenders read-modify-write an "
              "overlapping 96-line\nregion. The per-abort and per-commit "
              "isolation windows show the repair and merge\npathologies "
              "directly.\n\n");
  const auto& schemes = sim::all_schemes();
  // Each scenario is an independent simulator: fan the five schemes across
  // the pool and print the collected lines in scheme order.
  runner::ParallelExecutor exec(cli.jobs);
  runner::WallTimer timer;
  std::vector<ScenarioResult> results(schemes.size());
  exec.run_indexed(schemes.size(), [&](std::size_t i) {
    results[i] = run_scenario(schemes[i], cli);
  });
  const double wall_s = timer.seconds();
  std::uint64_t events = 0;
  for (const auto& r : results) {
    std::printf("%s\n", r.line.c_str());
    events += r.events;
  }
  std::printf("\nexpected: LogTM-SE's per-abort window (software log walk) "
              "dwarfs FasTM's flash\ninvalidate and SUV's flash flip; DynTM's "
              "per-commit window (lazy publication)\ndwarfs DynTM+SUV's.\n");

  runner::BenchReport report("fig1_pathologies");
  if (cli.tracing()) {
    std::vector<obs::NamedTrace> named;
    named.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      named.push_back({std::string("pathology/") +
                           sim::scheme_cli_name(schemes[i]),
                       &results[i].trace});
    }
    if (obs::write_chrome_trace(cli.trace_path, named)) {
      std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                  cli.trace_path.c_str());
    }
  }
  if (cli.metrics) {
    obs::MetricsSnapshot merged;
    for (const auto& r : results) obs::merge(merged, r.metrics);
    report.set_metrics(merged, "metrics.");
  }
  report.set("jobs", exec.jobs());
  report.set("runs", static_cast<std::uint64_t>(results.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.write();
  return 0;
}
