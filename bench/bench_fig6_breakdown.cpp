// Figure 6: execution-time breakdown of LogTM-SE (L), FasTM (F) and SUV-TM
// (S) across the eight STAMP applications, normalized per app to LogTM-SE.
// Also prints the paper's Section V headline speedups (all apps / the five
// high-contention apps).
//
// Usage: bench_fig6_breakdown [scale] [csv-path] [--jobs N]
//   With a csv-path, also writes the per-app makespan table as CSV for
//   plotting.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "runner/bench_report.hpp"
#include "runner/parallel.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  const unsigned jobs = runner::ParallelExecutor::parse_jobs(argc, argv);
  runner::set_default_jobs(jobs);
  stamp::SuiteParams params;
  if (argc > 1) params.scale = std::atof(argv[1]);

  sim::SimConfig cfg;

  // Fan the full scheme x app matrix across host cores in one batch.
  const sim::Scheme schemes[] = {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                                 sim::Scheme::kSuv};
  std::vector<runner::RunPoint> points;
  for (sim::Scheme s : schemes) {
    sim::SimConfig c = cfg;
    c.scheme = s;
    for (stamp::AppId app : stamp::all_apps()) {
      points.push_back(runner::RunPoint{app, c, params});
    }
  }
  runner::WallTimer timer;
  const auto flat = runner::run_matrix(points);
  const double wall_s = timer.seconds();

  std::map<sim::Scheme, std::vector<runner::RunResult>> results;
  std::size_t idx = 0;
  std::uint64_t events = 0;
  for (sim::Scheme s : schemes) {
    for (std::size_t a = 0; a < stamp::all_apps().size(); ++a) {
      events += flat[idx].sim_events;
      results[s].push_back(flat[idx++]);
    }
  }

  std::printf("Figure 6: execution time breakdown, normalized to LogTM-SE "
              "(scale=%.2f, 16 cores)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(runner::breakdown_header());
  const auto& base = results[sim::Scheme::kLogTmSe];
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double norm = static_cast<double>(base[i].breakdown.total());
    for (sim::Scheme s : schemes) {
      const auto& r = results[s][i];
      rows.push_back(runner::breakdown_row(
          base[i].app + std::string("/") + sim::scheme_name(s), r.breakdown,
          norm));
    }
    rows.push_back({});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());

  std::printf("makespan (cycles) and abort ratio per app:\n");
  std::vector<std::vector<std::string>> mk;
  mk.push_back({"app", "LogTM-SE", "FasTM", "SUV-TM", "abort%% L", "abort%% F",
                "abort%% S"});
  for (std::size_t i = 0; i < base.size(); ++i) {
    mk.push_back({base[i].app,
                  runner::fmt_u64(results[sim::Scheme::kLogTmSe][i].makespan),
                  runner::fmt_u64(results[sim::Scheme::kFasTm][i].makespan),
                  runner::fmt_u64(results[sim::Scheme::kSuv][i].makespan),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kLogTmSe][i].htm.abort_ratio(), 1),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kFasTm][i].htm.abort_ratio(), 1),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kSuv][i].htm.abort_ratio(), 1)});
  }
  std::printf("%s\n", runner::render_table(mk).c_str());
  if (argc > 2) {
    if (runner::write_csv(argv[2], mk)) {
      std::printf("wrote %s\n\n", argv[2]);
    }
  }

  const auto& logtm = results[sim::Scheme::kLogTmSe];
  const auto& fastm = results[sim::Scheme::kFasTm];
  const auto& suvtm_r = results[sim::Scheme::kSuv];
  std::printf("headline speedups (geometric mean):\n");
  std::printf("  SUV-TM over LogTM-SE, all apps        : %+.1f%%   (paper: +56%%)\n",
              100.0 * (runner::geomean_speedup(logtm, suvtm_r, false) - 1.0));
  std::printf("  SUV-TM over LogTM-SE, high-contention : %+.1f%%   (paper: +95%%)\n",
              100.0 * (runner::geomean_speedup(logtm, suvtm_r, true) - 1.0));
  std::printf("  SUV-TM over FasTM,    all apps        : %+.1f%%   (paper: +9%%)\n",
              100.0 * (runner::geomean_speedup(fastm, suvtm_r, false) - 1.0));
  std::printf("  SUV-TM over FasTM,    high-contention : %+.1f%%   (paper: +12%%)\n",
              100.0 * (runner::geomean_speedup(fastm, suvtm_r, true) - 1.0));

  runner::BenchReport report("fig6_breakdown");
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("runs", static_cast<std::uint64_t>(points.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.set("suv_vs_logtm_all",
             runner::geomean_speedup(logtm, suvtm_r, false));
  report.set("suv_vs_logtm_high",
             runner::geomean_speedup(logtm, suvtm_r, true));
  report.set("suv_vs_fastm_all",
             runner::geomean_speedup(fastm, suvtm_r, false));
  report.write();
  return 0;
}
