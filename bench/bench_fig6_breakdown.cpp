// Figure 6: execution-time breakdown of LogTM-SE (L), FasTM (F) and SUV-TM
// (S) across the eight STAMP applications, normalized per app to LogTM-SE.
// Also prints the paper's Section V headline speedups (all apps / the five
// high-contention apps).
//
// Usage: bench_fig6_breakdown [scale] [csv-path]
//   With a csv-path, also writes the per-app makespan table as CSV for
//   plotting.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  stamp::SuiteParams params;
  if (argc > 1) params.scale = std::atof(argv[1]);

  sim::SimConfig cfg;

  const sim::Scheme schemes[] = {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                                 sim::Scheme::kSuv};
  std::map<sim::Scheme, std::vector<runner::RunResult>> results;
  for (sim::Scheme s : schemes) {
    results[s] = runner::run_suite(s, cfg, params);
  }

  std::printf("Figure 6: execution time breakdown, normalized to LogTM-SE "
              "(scale=%.2f, 16 cores)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(runner::breakdown_header());
  const auto& base = results[sim::Scheme::kLogTmSe];
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double norm = static_cast<double>(base[i].breakdown.total());
    for (sim::Scheme s : schemes) {
      const auto& r = results[s][i];
      rows.push_back(runner::breakdown_row(
          base[i].app + std::string("/") + sim::scheme_name(s), r.breakdown,
          norm));
    }
    rows.push_back({});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());

  std::printf("makespan (cycles) and abort ratio per app:\n");
  std::vector<std::vector<std::string>> mk;
  mk.push_back({"app", "LogTM-SE", "FasTM", "SUV-TM", "abort%% L", "abort%% F",
                "abort%% S"});
  for (std::size_t i = 0; i < base.size(); ++i) {
    mk.push_back({base[i].app,
                  runner::fmt_u64(results[sim::Scheme::kLogTmSe][i].makespan),
                  runner::fmt_u64(results[sim::Scheme::kFasTm][i].makespan),
                  runner::fmt_u64(results[sim::Scheme::kSuv][i].makespan),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kLogTmSe][i].htm.abort_ratio(), 1),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kFasTm][i].htm.abort_ratio(), 1),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kSuv][i].htm.abort_ratio(), 1)});
  }
  std::printf("%s\n", runner::render_table(mk).c_str());
  if (argc > 2) {
    if (runner::write_csv(argv[2], mk)) {
      std::printf("wrote %s\n\n", argv[2]);
    }
  }

  const auto& logtm = results[sim::Scheme::kLogTmSe];
  const auto& fastm = results[sim::Scheme::kFasTm];
  const auto& suvtm_r = results[sim::Scheme::kSuv];
  std::printf("headline speedups (geometric mean):\n");
  std::printf("  SUV-TM over LogTM-SE, all apps        : %+.1f%%   (paper: +56%%)\n",
              100.0 * (runner::geomean_speedup(logtm, suvtm_r, false) - 1.0));
  std::printf("  SUV-TM over LogTM-SE, high-contention : %+.1f%%   (paper: +95%%)\n",
              100.0 * (runner::geomean_speedup(logtm, suvtm_r, true) - 1.0));
  std::printf("  SUV-TM over FasTM,    all apps        : %+.1f%%   (paper: +9%%)\n",
              100.0 * (runner::geomean_speedup(fastm, suvtm_r, false) - 1.0));
  std::printf("  SUV-TM over FasTM,    high-contention : %+.1f%%   (paper: +12%%)\n",
              100.0 * (runner::geomean_speedup(fastm, suvtm_r, true) - 1.0));
  return 0;
}
