// Figure 6: execution-time breakdown of LogTM-SE (L), FasTM (F) and SUV-TM
// (S) across the eight STAMP applications, normalized per app to LogTM-SE.
// Also prints the paper's Section V headline speedups (all apps / the five
// high-contention apps).
//
// Usage: bench_fig6_breakdown [scale] [csv-path] [--jobs N] [--check]
//            [--trace out.json] [--metrics]
//   With a csv-path, also writes the per-app makespan table as CSV for
//   plotting. Metrics are always recorded here: BENCH_fig6_breakdown.json
//   carries the per-app SUV-TM metrics namespace (and, with --metrics, the
//   matrix-wide sums).
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "api/api.hpp"
#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  stamp::SuiteParams params;
  params.scale = cli.scale_or(params.scale);

  runner::BenchReport report("fig6_breakdown");

  // Fan the full scheme x app matrix across host cores in one batch, built
  // through the api facade; metrics are on unconditionally so the report
  // always carries the uniform namespace.
  const sim::Scheme schemes[] = {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                                 sim::Scheme::kSuv};
  std::vector<runner::RunPoint> points;
  std::vector<std::string> names;
  for (sim::Scheme s : schemes) {
    const sim::SimConfig c = api::SimBuilder().scheme(s).metrics(true).config();
    for (stamp::AppId app : stamp::all_apps()) {
      points.push_back(runner::RunPoint{app, c, params});
      names.push_back(std::string(sim::scheme_cli_name(s)) + "/" +
                      stamp::app_name(app));
    }
  }
  runner::WallTimer timer;
  const auto flat = runner::run_matrix_cli(points, names, cli, report);
  const double wall_s = timer.seconds();

  std::map<sim::Scheme, std::vector<runner::RunResult>> results;
  std::size_t idx = 0;
  std::uint64_t events = 0;
  for (sim::Scheme s : schemes) {
    for (std::size_t a = 0; a < stamp::all_apps().size(); ++a) {
      events += flat[idx].sim_events;
      results[s].push_back(flat[idx++]);
    }
  }

  std::printf("Figure 6: execution time breakdown, normalized to LogTM-SE "
              "(scale=%.2f, 16 cores)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(runner::breakdown_header());
  const auto& base = results[sim::Scheme::kLogTmSe];
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double norm = static_cast<double>(base[i].breakdown.total());
    for (sim::Scheme s : schemes) {
      const auto& r = results[s][i];
      rows.push_back(runner::breakdown_row(
          base[i].app + std::string("/") + sim::scheme_name(s), r.breakdown,
          norm));
    }
    rows.push_back({});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());

  std::printf("makespan (cycles) and abort ratio per app:\n");
  std::vector<std::vector<std::string>> mk;
  mk.push_back({"app", "LogTM-SE", "FasTM", "SUV-TM", "abort%% L", "abort%% F",
                "abort%% S"});
  for (std::size_t i = 0; i < base.size(); ++i) {
    mk.push_back({base[i].app,
                  runner::fmt_u64(results[sim::Scheme::kLogTmSe][i].makespan),
                  runner::fmt_u64(results[sim::Scheme::kFasTm][i].makespan),
                  runner::fmt_u64(results[sim::Scheme::kSuv][i].makespan),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kLogTmSe][i].htm.abort_ratio(), 1),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kFasTm][i].htm.abort_ratio(), 1),
                  runner::fmt_fixed(
                      100 * results[sim::Scheme::kSuv][i].htm.abort_ratio(), 1)});
  }
  std::printf("%s\n", runner::render_table(mk).c_str());
  if (!cli.args.empty()) {
    if (runner::write_csv(cli.args[0].c_str(), mk)) {
      std::printf("wrote %s\n\n", cli.args[0].c_str());
    }
  }

  const auto& logtm = results[sim::Scheme::kLogTmSe];
  const auto& fastm = results[sim::Scheme::kFasTm];
  const auto& suvtm_r = results[sim::Scheme::kSuv];
  std::printf("headline speedups (geometric mean):\n");
  std::printf("  SUV-TM over LogTM-SE, all apps        : %+.1f%%   (paper: +56%%)\n",
              100.0 * (runner::geomean_speedup(logtm, suvtm_r, false) - 1.0));
  std::printf("  SUV-TM over LogTM-SE, high-contention : %+.1f%%   (paper: +95%%)\n",
              100.0 * (runner::geomean_speedup(logtm, suvtm_r, true) - 1.0));
  std::printf("  SUV-TM over FasTM,    all apps        : %+.1f%%   (paper: +9%%)\n",
              100.0 * (runner::geomean_speedup(fastm, suvtm_r, false) - 1.0));
  std::printf("  SUV-TM over FasTM,    high-contention : %+.1f%%   (paper: +12%%)\n",
              100.0 * (runner::geomean_speedup(fastm, suvtm_r, true) - 1.0));

  report.set("jobs", cli.jobs);
  report.set("scale", params.scale);
  report.set("runs", static_cast<std::uint64_t>(points.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.set("suv_vs_logtm_all",
             runner::geomean_speedup(logtm, suvtm_r, false));
  report.set("suv_vs_logtm_high",
             runner::geomean_speedup(logtm, suvtm_r, true));
  report.set("suv_vs_fastm_all",
             runner::geomean_speedup(fastm, suvtm_r, false));
  // The per-app SUV-TM metrics namespace: the paper's scheme, one block per
  // application, straight from the hook-fed registry plus derived rates.
  for (const auto& r : suvtm_r) {
    report.set_metrics(r.metrics, "metrics." + r.app + ".");
  }
  report.write();
  return 0;
}
