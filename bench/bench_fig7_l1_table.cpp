// Figure 7: first-level redirect-table sensitivity.
//  (a) L1 table miss rate vs table size   (paper: high hit rate at 512)
//  (b) total execution time vs table size (paper: flat beyond 512)
//
// Usage: bench_fig7_l1_table [scale]
#include <cstdio>
#include <cstdlib>

#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  stamp::SuiteParams params;
  if (argc > 1) params.scale = std::atof(argv[1]);

  const std::uint32_t sizes[] = {64, 128, 256, 512, 1024, 2048};

  std::printf("Figure 7: first-level redirect table sensitivity "
              "(SUV-TM, scale=%.2f)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"entries", "miss rate (a)", "exec cycles, suite sum (b)",
                  "normalized to 512"});

  // Measure at 512 first for normalization.
  std::vector<double> exec(std::size(sizes), 0.0);
  std::vector<double> miss(std::size(sizes), 0.0);
  double exec512 = 0.0;
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    cfg.suv.l1_table_entries = sizes[i];
    std::uint64_t lookups = 0, misses = 0, total = 0;
    // Average over seeds to smooth contention noise.
    for (std::uint64_t seed : {42ull, 43ull, 44ull}) {
      stamp::SuiteParams p = params;
      p.seed = seed;
      for (const auto& r : runner::run_suite(sim::Scheme::kSuv, cfg, p)) {
        lookups += r.table.l1_hits + r.table.l1_misses;
        misses += r.table.l1_misses;
        total += r.makespan;
      }
    }
    miss[i] = lookups ? static_cast<double>(misses) / lookups : 0.0;
    exec[i] = static_cast<double>(total) / 3.0;
    if (sizes[i] == 512) exec512 = exec[i];
  }
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    rows.push_back({runner::fmt_u64(sizes[i]),
                    runner::fmt_fixed(100.0 * miss[i], 2) + "%",
                    runner::fmt_fixed(exec[i], 0),
                    runner::fmt_fixed(exec[i] / exec512, 3)});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());
  std::printf("expected shape: miss rate falls steeply to 512 entries, then "
              "flattens;\nexecution time improves little beyond 512 "
              "(paper Figure 7).\n");
  return 0;
}
