// Figure 7: first-level redirect-table sensitivity.
//  (a) L1 table miss rate vs table size   (paper: high hit rate at 512)
//  (b) total execution time vs table size (paper: flat beyond 512)
//
// Usage: bench_fig7_l1_table [scale] [--jobs N] [--check]
//            [--trace out.json] [--metrics]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  const unsigned jobs = cli.jobs;
  stamp::SuiteParams params;
  params.scale = cli.scale_or(params.scale);
  runner::BenchReport report("fig7_l1_table");

  const std::uint32_t sizes[] = {64, 128, 256, 512, 1024, 2048};
  const std::uint64_t seeds[] = {42, 43, 44};

  std::printf("Figure 7: first-level redirect table sensitivity "
              "(SUV-TM, scale=%.2f)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"entries", "miss rate (a)", "exec cycles, suite sum (b)",
                  "normalized to 512"});

  // One flat size x seed x app matrix; seeds smooth contention noise.
  std::vector<runner::RunPoint> points;
  std::vector<std::string> names;
  for (std::uint32_t size : sizes) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    cfg.suv.l1_table_entries = size;
    for (std::uint64_t seed : seeds) {
      stamp::SuiteParams p = params;
      p.seed = seed;
      for (stamp::AppId app : stamp::all_apps()) {
        points.push_back(runner::RunPoint{app, cfg, p});
        names.push_back(std::to_string(size) + "e/s" + std::to_string(seed) +
                        "/" + stamp::app_name(app));
      }
    }
  }
  runner::WallTimer timer;
  const auto flat = runner::run_matrix_cli(points, names, cli, report);
  const double wall_s = timer.seconds();

  std::vector<double> exec(std::size(sizes), 0.0);
  std::vector<double> miss(std::size(sizes), 0.0);
  double exec512 = 0.0;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    std::uint64_t lookups = 0, misses = 0, total = 0;
    for (std::size_t run = 0; run < std::size(seeds) * stamp::all_apps().size();
         ++run) {
      const auto& r = flat[idx++];
      lookups += r.table.l1_hits + r.table.l1_misses;
      misses += r.table.l1_misses;
      total += r.makespan;
    }
    miss[i] = lookups ? static_cast<double>(misses) / lookups : 0.0;
    exec[i] = static_cast<double>(total) / std::size(seeds);
    if (sizes[i] == 512) exec512 = exec[i];
  }
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    rows.push_back({runner::fmt_u64(sizes[i]),
                    runner::fmt_fixed(100.0 * miss[i], 2) + "%",
                    runner::fmt_fixed(exec[i], 0),
                    runner::fmt_fixed(exec[i] / exec512, 3)});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());
  std::printf("expected shape: miss rate falls steeply to 512 entries, then "
              "flattens;\nexecution time improves little beyond 512 "
              "(paper Figure 7).\n");

  std::uint64_t events = 0;
  for (const auto& r : flat) events += r.sim_events;
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("runs", static_cast<std::uint64_t>(flat.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.write();
  return 0;
}
