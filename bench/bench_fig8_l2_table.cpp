// Figure 8: second-level redirect-table sensitivity.
//  (a) execution time vs table size    (paper: flat beyond 16K entries)
//  (b) execution time vs table latency (paper: degrades past ~10 cycles;
//      zero latency buys < 5%)
//
// Usage: bench_fig8_l2_table [scale]
#include <cstdio>
#include <cstdlib>

#include "runner/tables.hpp"

using namespace suvtm;

namespace {

std::uint64_t suite_total(const sim::SimConfig& cfg,
                          const stamp::SuiteParams& params) {
  // Average over seeds: contention interleavings are noisy relative to the
  // few-percent sensitivity effects this figure measures.
  std::uint64_t total = 0;
  for (std::uint64_t seed : {42ull, 43ull, 44ull}) {
    stamp::SuiteParams p = params;
    p.seed = seed;
    for (const auto& r : runner::run_suite(sim::Scheme::kSuv, cfg, p)) {
      total += r.makespan;
    }
  }
  return total / 3;
}

}  // namespace

int main(int argc, char** argv) {
  stamp::SuiteParams params;
  if (argc > 1) params.scale = std::atof(argv[1]);

  std::printf("Figure 8: second-level redirect table sensitivity "
              "(SUV-TM, scale=%.2f)\n\n", params.scale);

  // (a) size sweep at the default 10-cycle latency.
  const std::uint32_t sizes[] = {2048, 4096, 8192, 16384, 32768, 65536};
  std::uint64_t base_size = 0;
  std::vector<std::vector<std::string>> rows_a;
  rows_a.push_back({"entries", "exec cycles (suite sum)", "normalized to 16K"});
  std::vector<std::uint64_t> totals_a;
  for (std::uint32_t s : sizes) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    cfg.suv.l2_table_entries = s;
    const std::uint64_t t = suite_total(cfg, params);
    totals_a.push_back(t);
    if (s == 16384) base_size = t;
  }
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    rows_a.push_back({runner::fmt_u64(sizes[i]), runner::fmt_u64(totals_a[i]),
                      runner::fmt_fixed(static_cast<double>(totals_a[i]) /
                                            static_cast<double>(base_size),
                                        3)});
  }
  std::printf("(a) size sweep, latency = 10 cycles\n%s\n",
              runner::render_table(rows_a).c_str());

  // (b) latency sweep at the default 16K entries.
  const Cycle lats[] = {0, 5, 10, 20, 40};
  std::uint64_t base_lat = 0;
  std::vector<std::uint64_t> totals_b;
  for (Cycle lat : lats) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    cfg.suv.l2_table_latency = lat;
    const std::uint64_t t = suite_total(cfg, params);
    totals_b.push_back(t);
    if (lat == 10) base_lat = t;
  }
  std::vector<std::vector<std::string>> rows_b;
  rows_b.push_back({"latency (cycles)", "exec cycles (suite sum)",
                    "normalized to 10"});
  for (std::size_t i = 0; i < std::size(lats); ++i) {
    rows_b.push_back({runner::fmt_u64(lats[i]), runner::fmt_u64(totals_b[i]),
                      runner::fmt_fixed(static_cast<double>(totals_b[i]) /
                                            static_cast<double>(base_lat),
                                        3)});
  }
  std::printf("(b) latency sweep, 16K entries\n%s\n",
              runner::render_table(rows_b).c_str());
  std::printf("expected shape: little gain beyond 16K entries; execution "
              "time rises\nsharply past ~10 cycles while zero latency buys "
              "< 5%% (paper Figure 8).\n");
  return 0;
}
