// Figure 8: second-level redirect-table sensitivity.
//  (a) execution time vs table size    (paper: flat beyond 16K entries)
//  (b) execution time vs table latency (paper: degrades past ~10 cycles;
//      zero latency buys < 5%)
//
// Usage: bench_fig8_l2_table [scale] [--jobs N] [--check]
//            [--trace out.json] [--metrics]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

namespace {

constexpr std::uint64_t kSeeds[] = {42, 43, 44};

// Append one suite run per seed for this config to the flat point list.
void push_config(std::vector<runner::RunPoint>& points,
                 std::vector<std::string>& names, const char* label,
                 const sim::SimConfig& cfg,
                 const stamp::SuiteParams& params) {
  for (std::uint64_t seed : kSeeds) {
    stamp::SuiteParams p = params;
    p.seed = seed;
    for (stamp::AppId app : stamp::all_apps()) {
      points.push_back(runner::RunPoint{app, cfg, p});
      names.push_back(std::string(label) + "/s" + std::to_string(seed) + "/" +
                      stamp::app_name(app));
    }
  }
}

// Seed-averaged suite makespan for the next seeds x apps block of results.
std::uint64_t pop_total(const std::vector<runner::RunResult>& flat,
                        std::size_t& idx) {
  std::uint64_t total = 0;
  for (std::size_t run = 0; run < std::size(kSeeds) * stamp::all_apps().size();
       ++run) {
    total += flat[idx++].makespan;
  }
  return total / std::size(kSeeds);
}

}  // namespace

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  const unsigned jobs = cli.jobs;
  stamp::SuiteParams params;
  params.scale = cli.scale_or(params.scale);
  runner::BenchReport report("fig8_l2_table");

  std::printf("Figure 8: second-level redirect table sensitivity "
              "(SUV-TM, scale=%.2f)\n\n", params.scale);

  const std::uint32_t sizes[] = {2048, 4096, 8192, 16384, 32768, 65536};
  const Cycle lats[] = {0, 5, 10, 20, 40};

  // Both sweeps in one flat batch so the pool never drains between them.
  std::vector<runner::RunPoint> points;
  std::vector<std::string> names;
  for (std::uint32_t s : sizes) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    cfg.suv.l2_table_entries = s;
    push_config(points, names, (std::to_string(s) + "e").c_str(), cfg, params);
  }
  for (Cycle lat : lats) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    cfg.suv.l2_table_latency = lat;
    push_config(points, names, (std::to_string(lat) + "cyc").c_str(), cfg,
                params);
  }
  runner::WallTimer timer;
  const auto flat = runner::run_matrix_cli(points, names, cli, report);
  const double wall_s = timer.seconds();
  std::size_t idx = 0;

  // (a) size sweep at the default 10-cycle latency.
  std::uint64_t base_size = 0;
  std::vector<std::uint64_t> totals_a;
  for (std::uint32_t s : sizes) {
    const std::uint64_t t = pop_total(flat, idx);
    totals_a.push_back(t);
    if (s == 16384) base_size = t;
  }
  std::vector<std::vector<std::string>> rows_a;
  rows_a.push_back({"entries", "exec cycles (suite sum)", "normalized to 16K"});
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    rows_a.push_back({runner::fmt_u64(sizes[i]), runner::fmt_u64(totals_a[i]),
                      runner::fmt_fixed(static_cast<double>(totals_a[i]) /
                                            static_cast<double>(base_size),
                                        3)});
  }
  std::printf("(a) size sweep, latency = 10 cycles\n%s\n",
              runner::render_table(rows_a).c_str());

  // (b) latency sweep at the default 16K entries.
  std::uint64_t base_lat = 0;
  std::vector<std::uint64_t> totals_b;
  for (Cycle lat : lats) {
    const std::uint64_t t = pop_total(flat, idx);
    totals_b.push_back(t);
    if (lat == 10) base_lat = t;
  }
  std::vector<std::vector<std::string>> rows_b;
  rows_b.push_back({"latency (cycles)", "exec cycles (suite sum)",
                    "normalized to 10"});
  for (std::size_t i = 0; i < std::size(lats); ++i) {
    rows_b.push_back({runner::fmt_u64(lats[i]), runner::fmt_u64(totals_b[i]),
                      runner::fmt_fixed(static_cast<double>(totals_b[i]) /
                                            static_cast<double>(base_lat),
                                        3)});
  }
  std::printf("(b) latency sweep, 16K entries\n%s\n",
              runner::render_table(rows_b).c_str());
  std::printf("expected shape: little gain beyond 16K entries; execution "
              "time rises\nsharply past ~10 cycles while zero latency buys "
              "< 5%% (paper Figure 8).\n");

  std::uint64_t events = 0;
  for (const auto& r : flat) events += r.sim_events;
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("runs", static_cast<std::uint64_t>(flat.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.write();
  return 0;
}
