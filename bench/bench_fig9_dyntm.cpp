// Figure 9: execution-time breakdown of the original DynTM (D, FasTM
// version management) versus DynTM with SUV as its version-management
// scheme (D+S), per STAMP application, normalized per app to DynTM.
// The Committing bucket carries the paper's headline contrast: lazy
// publication is per-line with FasTM but a flash flip with SUV.
//
// Usage: bench_fig9_dyntm [scale] [--jobs N] [--check] [--trace out.json]
//            [--metrics]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  const unsigned jobs = cli.jobs;
  stamp::SuiteParams params;
  params.scale = cli.scale_or(params.scale);

  runner::BenchReport report("fig9_dyntm");

  // One flat scheme x app matrix through the shared CLI runner.
  std::vector<runner::RunPoint> points;
  std::vector<std::string> names;
  for (sim::Scheme s : {sim::Scheme::kDynTm, sim::Scheme::kDynTmSuv}) {
    sim::SimConfig cfg;
    cfg.scheme = s;
    for (stamp::AppId app : stamp::all_apps()) {
      points.push_back(runner::RunPoint{app, cfg, params});
      names.push_back(std::string(sim::scheme_cli_name(s)) + "/" +
                      stamp::app_name(app));
    }
  }
  runner::WallTimer timer;
  const auto flat = runner::run_matrix_cli(points, names, cli, report);
  const double wall_s = timer.seconds();
  const std::size_t napps = stamp::all_apps().size();
  const std::vector<runner::RunResult> d(flat.begin(), flat.begin() + napps);
  const std::vector<runner::RunResult> ds(flat.begin() + napps, flat.end());

  std::printf("Figure 9: DynTM (D) vs DynTM+SUV (D+S), normalized to DynTM "
              "(scale=%.2f, 16 cores)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(runner::breakdown_header());
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double norm = static_cast<double>(d[i].breakdown.total());
    rows.push_back(runner::breakdown_row(d[i].app + "/D", d[i].breakdown, norm));
    rows.push_back(
        runner::breakdown_row(d[i].app + "/D+S", ds[i].breakdown, norm));
    rows.push_back({});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());

  std::vector<std::vector<std::string>> mk;
  mk.push_back({"app", "DynTM", "DynTM+SUV", "speedup", "lazy%% D",
                "lazy%% D+S", "Committing D", "Committing D+S"});
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto& a = d[i];
    const auto& b = ds[i];
    const double lazy_d =
        100.0 * static_cast<double>(a.dyntm.lazy_txns) /
        static_cast<double>(a.dyntm.lazy_txns + a.dyntm.eager_txns + 1);
    const double lazy_ds =
        100.0 * static_cast<double>(b.dyntm.lazy_txns) /
        static_cast<double>(b.dyntm.lazy_txns + b.dyntm.eager_txns + 1);
    mk.push_back(
        {a.app, runner::fmt_u64(a.makespan), runner::fmt_u64(b.makespan),
         runner::fmt_fixed(
             100.0 * (static_cast<double>(a.makespan) /
                          static_cast<double>(b.makespan) -
                      1.0),
             1) + "%",
         runner::fmt_fixed(lazy_d, 0), runner::fmt_fixed(lazy_ds, 0),
         runner::fmt_u64(a.breakdown.get(sim::Bucket::kCommitting)),
         runner::fmt_u64(b.breakdown.get(sim::Bucket::kCommitting))});
  }
  std::printf("%s\n", runner::render_table(mk).c_str());

  std::printf("headline speedups (geometric mean):\n");
  std::printf("  DynTM+SUV over DynTM, all apps        : %+.1f%%   (paper: +9.8%%)\n",
              100.0 * (runner::geomean_speedup(d, ds, false) - 1.0));
  std::printf("  DynTM+SUV over DynTM, high-contention : %+.1f%%   (paper: +18.6%%)\n",
              100.0 * (runner::geomean_speedup(d, ds, true) - 1.0));

  std::uint64_t events = 0;
  for (const auto& r : d) events += r.sim_events;
  for (const auto& r : ds) events += r.sim_events;
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("runs", static_cast<std::uint64_t>(d.size() + ds.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.set("dyntm_suv_vs_dyntm_all", runner::geomean_speedup(d, ds, false));
  report.set("dyntm_suv_vs_dyntm_high", runner::geomean_speedup(d, ds, true));
  report.write();
  return 0;
}
