// Host-level micro-benchmarks (google-benchmark) of the hot simulator
// structures: Bloom signatures, the summary signature, the redirect table
// and the cache tag array. These guard the simulator's own performance --
// full-suite experiment time is dominated by exactly these operations.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "htm/signature.hpp"
#include "mem/cache.hpp"
#include "sim/config.hpp"
#include "suv/redirect_table.hpp"
#include "suv/summary_signature.hpp"

using namespace suvtm;

namespace {

void BM_SignatureAdd(benchmark::State& state) {
  htm::Signature sig(2048, 2);
  Rng rng(1);
  for (auto _ : state) {
    sig.add(rng.next() >> 6);
    if (sig.adds() > 4096) sig.clear();
  }
}
BENCHMARK(BM_SignatureAdd);

void BM_SignatureTest(benchmark::State& state) {
  htm::Signature sig(2048, 2);
  Rng rng(2);
  for (int i = 0; i < 256; ++i) sig.add(rng.next() >> 6);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += sig.test(rng.next() >> 6);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_SignatureTest);

void BM_SummarySignatureAddRemove(benchmark::State& state) {
  suv::SummarySignature sum(2048, 2);
  Rng rng(3);
  for (auto _ : state) {
    const LineAddr l = rng.next() >> 6;
    sum.add(l);
    sum.remove(l);
  }
}
BENCHMARK(BM_SummarySignatureAddRemove);

void BM_RedirectTableLookupHit(benchmark::State& state) {
  sim::SuvParams p;
  suv::RedirectTable table(p, 16);
  Rng rng(4);
  std::vector<LineAddr> lines;
  for (int i = 0; i < 256; ++i) {
    const LineAddr l = rng.next() >> 40;
    if (table.find(l)) continue;
    lines.push_back(l);
    table.insert_transient(
        {l, l + (1ull << 34), suv::EntryState::kTxnRedirect, 0});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto res = table.lookup(0, lines[i++ % lines.size()]);
    benchmark::DoNotOptimize(res.entry);
  }
}
BENCHMARK(BM_RedirectTableLookupHit);

void BM_RedirectTableLookupFiltered(benchmark::State& state) {
  sim::SuvParams p;
  suv::RedirectTable table(p, 16);
  Rng rng(5);
  for (auto _ : state) {
    auto res = table.lookup(0, rng.next() >> 6);
    benchmark::DoNotOptimize(res.entry);
  }
}
BENCHMARK(BM_RedirectTableLookupFiltered);

void BM_CacheAccessHit(benchmark::State& state) {
  mem::Cache cache(32 * 1024, 4);
  for (LineAddr l = 0; l < 256; ++l) cache.insert(l, mem::CohState::kShared);
  LineAddr l = 0;
  for (auto _ : state) {
    auto* ln = cache.find(l++ % 256);
    benchmark::DoNotOptimize(ln);
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  mem::Cache cache(32 * 1024, 4);
  Rng rng(6);
  for (auto _ : state) {
    auto v = cache.insert(rng.next() >> 6, mem::CohState::kModified);
    benchmark::DoNotOptimize(v.valid);
  }
}
BENCHMARK(BM_CacheInsertEvict);

}  // namespace

BENCHMARK_MAIN();
