// Host-level micro-benchmarks (google-benchmark) of the hot simulator
// structures: Bloom signatures, the summary signature, the redirect table,
// the cache tag array and the event scheduler. These guard the simulator's
// own performance -- full-suite experiment time is dominated by exactly
// these operations.
//
// Besides the google-benchmark suite, main() runs fixed head-to-heads and
// writes them to BENCH_micro_structures.json:
//   - the current scheduler (move-friendly binary heap + SmallFn callbacks)
//     vs the seed implementation (std::priority_queue of std::function);
//   - the flat containers (LineSet / FlatMap) vs the node-based
//     std::unordered_set/map they replaced, on footprint- and
//     redo-log-shaped churn;
//   - an end-to-end events/sec number: the bench_scaling part-1 matrix
//     (scheme x app, 16 simulated cores, scale 0.5) run serially in-process;
//   - overhead guards for the correctness checker (src/check) and the
//     observability layer (src/obs): the same matrix with the hooks off
//     and on, as events/sec ratios.
//
// Usage: bench_micro_structures [gbench args] [--baseline-events-per-sec X]
//   X is the events_per_sec_jobs1 reported by a main-built bench_scaling on
//   this host (BENCH_scaling.json); when given, the report also records the
//   end-to-end speedup of this build over that baseline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "check/check.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "htm/signature.hpp"
#include "mem/cache.hpp"
#include "obs/obs.hpp"
#include "runner/bench_report.hpp"
#include "runner/cli.hpp"
#include "runner/experiment.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "suv/redirect_table.hpp"
#include "suv/summary_signature.hpp"

using namespace suvtm;

namespace {

// The seed scheduler, verbatim in shape: callbacks are std::function (whose
// typical 24-byte coroutine-resumption capture exceeds libstdc++'s inline
// buffer, so every schedule allocates) and popping the priority_queue copies
// the event out because top() is const.
class LegacyScheduler {
 public:
  Cycle now() const { return now_; }
  void at(Cycle t, std::function<void()> fn) {
    queue_.push(Event{t, seq_++, std::move(fn)});
  }
  void after(Cycle delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }
  bool run(Cycle limit) {
    while (!queue_.empty()) {
      if (queue_.top().t > limit) return false;
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.t;
      ++events_;
      ev.fn();
    }
    return true;
  }
  std::uint64_t events_processed() const { return events_; }

 private:
  struct Event {
    Cycle t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// Simulator-shaped event churn: kChains self-rescheduling handlers (one per
// simulated core plus mesh traffic) whose captures match the hot
// [this, &aw, h] lambdas in ThreadContext (24 bytes).
template <class Sched>
std::uint64_t scheduler_churn(std::uint64_t target_events) {
  Sched s;
  constexpr int kChains = 64;
  std::uint64_t processed = 0;
  struct Chain {
    Sched* s;
    std::uint64_t* processed;
    std::uint64_t limit;
    std::uint64_t x;
    void operator()() {
      if (*processed >= limit) return;
      ++*processed;
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      s->after(1 + (x >> 61), Chain{*this});
    }
  };
  static_assert(sizeof(Chain) == 32, "capture should model the hot lambdas");
  for (int i = 0; i < kChains; ++i) {
    s.after(static_cast<Cycle>(i),
            Chain{&s, &processed, target_events,
                  0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(i)});
  }
  s.run(~Cycle{0});
  return processed;
}

// Transaction-footprint churn, shaped like one txn attempt in the VM hot
// path (paper Table IV: write sets of tens of lines, reads outnumbering
// writes ~2:1, every access membership-probing both sets): build a 40-line
// write set and an 80-access read set with duplicate hits, then clear.
// Works on LineSet and std::unordered_set<LineAddr> alike.
template <class Set>
std::uint64_t footprint_churn(std::uint64_t rounds) {
  Set reads, writes;
  std::uint64_t x = 0x243f6a8885a308d3ull;
  std::uint64_t acc = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int i = 0; i < 40; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const LineAddr l = (x >> 12) & 0x3ff;  // 1K-line region -> some dups
      acc += writes.contains(l);
      writes.insert(l);
      for (int j = 0; j < 2; ++j) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const LineAddr rl = (x >> 12) & 0x3ff;
        acc += reads.contains(rl) + writes.contains(rl);
        reads.insert(rl);
      }
    }
    reads.clear();
    writes.clear();
  }
  return acc;
}
// insert+contains ops per round of the loop above (40 + 80 inserts,
// 40 + 160 membership probes).
constexpr std::uint64_t kFootprintOpsPerRound = 320;

// Redo-log / page-map churn: try_emplace-or-overwrite plus lookups over a
// 1K-key working set, cleared per round (commit/abort). Works on
// FlatMap<u64,u64> and std::unordered_map<u64,u64> alike.
template <class Map>
std::uint64_t map_churn(std::uint64_t rounds) {
  Map m;
  std::uint64_t x = 0x452821e638d01377ull;
  std::uint64_t acc = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int i = 0; i < 64; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      auto [it, inserted] = m.try_emplace((x >> 20) & 0x3ff, x);
      if (!inserted) it->second = x;
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      auto f = m.find((x >> 20) & 0x3ff);
      if (f != m.end()) acc += f->second;
    }
    m.clear();
  }
  return acc;
}
constexpr std::uint64_t kMapOpsPerRound = 128;

void BM_SignatureAdd(benchmark::State& state) {
  htm::Signature sig(2048, 2);
  Rng rng(1);
  for (auto _ : state) {
    sig.add(rng.next() >> 6);
    if (sig.adds() > 4096) sig.clear();
  }
}
BENCHMARK(BM_SignatureAdd);

void BM_SignatureTest(benchmark::State& state) {
  htm::Signature sig(2048, 2);
  Rng rng(2);
  for (int i = 0; i < 256; ++i) sig.add(rng.next() >> 6);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += sig.test(rng.next() >> 6);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_SignatureTest);

void BM_SummarySignatureAddRemove(benchmark::State& state) {
  suv::SummarySignature sum(2048, 2);
  Rng rng(3);
  for (auto _ : state) {
    const LineAddr l = rng.next() >> 6;
    sum.add(l);
    sum.remove(l);
  }
}
BENCHMARK(BM_SummarySignatureAddRemove);

void BM_RedirectTableLookupHit(benchmark::State& state) {
  sim::SuvParams p;
  suv::RedirectTable table(p, 16);
  Rng rng(4);
  std::vector<LineAddr> lines;
  for (int i = 0; i < 256; ++i) {
    const LineAddr l = rng.next() >> 40;
    if (table.find(l)) continue;
    lines.push_back(l);
    table.insert_transient(
        {l, l + (1ull << 34), suv::EntryState::kTxnRedirect, 0});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto res = table.lookup(0, lines[i++ % lines.size()]);
    benchmark::DoNotOptimize(res.entry);
  }
}
BENCHMARK(BM_RedirectTableLookupHit);

void BM_RedirectTableLookupFiltered(benchmark::State& state) {
  sim::SuvParams p;
  suv::RedirectTable table(p, 16);
  Rng rng(5);
  for (auto _ : state) {
    auto res = table.lookup(0, rng.next() >> 6);
    benchmark::DoNotOptimize(res.entry);
  }
}
BENCHMARK(BM_RedirectTableLookupFiltered);

void BM_CacheAccessHit(benchmark::State& state) {
  mem::Cache cache(32 * 1024, 4);
  for (LineAddr l = 0; l < 256; ++l) cache.insert(l, mem::CohState::kShared);
  LineAddr l = 0;
  for (auto _ : state) {
    auto* ln = cache.find(l++ % 256);
    benchmark::DoNotOptimize(ln);
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  mem::Cache cache(32 * 1024, 4);
  Rng rng(6);
  for (auto _ : state) {
    auto v = cache.insert(rng.next() >> 6, mem::CohState::kModified);
    benchmark::DoNotOptimize(v.valid);
  }
}
BENCHMARK(BM_CacheInsertEvict);

void BM_FootprintChurnFlat(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(footprint_churn<LineSet>(100));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(kFootprintOpsPerRound));
}
BENCHMARK(BM_FootprintChurnFlat);

void BM_FootprintChurnNode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        footprint_churn<std::unordered_set<LineAddr>>(100));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(kFootprintOpsPerRound));
}
BENCHMARK(BM_FootprintChurnNode);

void BM_MapChurnFlat(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map_churn<FlatMap<std::uint64_t, std::uint64_t>>(100));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(kMapOpsPerRound));
}
BENCHMARK(BM_MapChurnFlat);

void BM_MapChurnNode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map_churn<std::unordered_map<std::uint64_t, std::uint64_t>>(100));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(kMapOpsPerRound));
}
BENCHMARK(BM_MapChurnNode);

void BM_SchedulerEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler_churn<sim::Scheduler>(100000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerEventChurn);

void BM_SchedulerEventChurnLegacy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler_churn<LegacyScheduler>(100000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerEventChurnLegacy);

/// Fixed head-to-head for the JSON report: events/sec through each
/// scheduler implementation on the identical churn workload.
void scheduler_report(runner::BenchReport& report) {
  constexpr std::uint64_t kEvents = 2'000'000;
  // Warm both allocators/caches once before timing.
  scheduler_churn<sim::Scheduler>(kEvents / 10);
  scheduler_churn<LegacyScheduler>(kEvents / 10);

  runner::WallTimer t_new;
  const std::uint64_t n_new = scheduler_churn<sim::Scheduler>(kEvents);
  const double s_new = t_new.seconds();

  runner::WallTimer t_old;
  const std::uint64_t n_old = scheduler_churn<LegacyScheduler>(kEvents);
  const double s_old = t_old.seconds();

  const double eps_new = s_new > 0 ? static_cast<double>(n_new) / s_new : 0.0;
  const double eps_old = s_old > 0 ? static_cast<double>(n_old) / s_old : 0.0;
  const double ratio = eps_old > 0 ? eps_new / eps_old : 0.0;
  std::printf("\nscheduler head-to-head (%llu events):\n"
              "  SmallFn heap       : %12.0f events/s\n"
              "  legacy std::function: %11.0f events/s\n"
              "  speedup            : %.2fx\n",
              static_cast<unsigned long long>(kEvents), eps_new, eps_old,
              ratio);

  report.set("scheduler_events", kEvents);
  report.set("events_per_sec_smallfn_heap", eps_new);
  report.set("events_per_sec_legacy_stdfunction", eps_old);
  report.set("scheduler_speedup", ratio);
}

/// Fixed flat-vs-node container head-to-heads on the same churn workloads
/// the google-benchmark rows measure.
void container_report(runner::BenchReport& report) {
  constexpr std::uint64_t kRounds = 20'000;
  struct Row {
    const char* name;
    std::uint64_t ops_per_round;
    std::uint64_t (*flat)(std::uint64_t);
    std::uint64_t (*node)(std::uint64_t);
  };
  const Row rows[] = {
      {"footprint", kFootprintOpsPerRound, footprint_churn<LineSet>,
       footprint_churn<std::unordered_set<LineAddr>>},
      {"map", kMapOpsPerRound,
       map_churn<FlatMap<std::uint64_t, std::uint64_t>>,
       map_churn<std::unordered_map<std::uint64_t, std::uint64_t>>},
  };
  std::printf("\ncontainer head-to-heads (%llu rounds each):\n",
              static_cast<unsigned long long>(kRounds));
  for (const Row& row : rows) {
    row.flat(kRounds / 10);  // warm allocators/caches before timing
    row.node(kRounds / 10);
    runner::WallTimer tf;
    benchmark::DoNotOptimize(row.flat(kRounds));
    const double sf = tf.seconds();
    runner::WallTimer tn;
    benchmark::DoNotOptimize(row.node(kRounds));
    const double sn = tn.seconds();
    const double total = static_cast<double>(kRounds * row.ops_per_round);
    const double ops_flat = sf > 0 ? total / sf : 0.0;
    const double ops_node = sn > 0 ? total / sn : 0.0;
    const double ratio = ops_node > 0 ? ops_flat / ops_node : 0.0;
    std::printf("  %-9s: flat %12.0f ops/s   node %12.0f ops/s   %.2fx\n",
                row.name, ops_flat, ops_node, ratio);
    report.set(std::string(row.name) + "_ops_per_sec_flat", ops_flat);
    report.set(std::string(row.name) + "_ops_per_sec_node", ops_node);
    report.set(std::string(row.name) + "_container_speedup", ratio);
  }
}

/// End-to-end events/sec: the bench_scaling part-1 matrix (scheme x app,
/// 16 simulated cores, scale 0.5 -- the default config) run serially in
/// this process. `baseline_eps`, when > 0, is the same number measured from
/// a main-built bench_scaling; the ratio lands in the report.
void end_to_end_report(runner::BenchReport& report, double baseline_eps) {
  stamp::SuiteParams params;
  params.scale = 0.5;
  std::vector<runner::RunPoint> points;
  for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                        sim::Scheme::kSuv}) {
    sim::SimConfig cfg;
    cfg.scheme = s;
    cfg.mem.num_cores = 16;
    for (stamp::AppId app : stamp::all_apps()) {
      points.push_back(runner::RunPoint{app, cfg, params});
    }
  }
  runner::ParallelExecutor serial(1);
  runner::run_matrix(points, serial);  // warm
  runner::WallTimer t;
  const auto results = runner::run_matrix(points, serial);
  const double s = t.seconds();
  std::uint64_t events = 0;
  for (const auto& r : results) events += r.sim_events;
  const double eps = s > 0 ? static_cast<double>(events) / s : 0.0;
  std::printf("\nend-to-end (scheme x app matrix, 16 cores, scale 0.5):\n"
              "  %zu runs, %llu events in %.2f s -> %.0f events/s\n",
              points.size(), static_cast<unsigned long long>(events), s, eps);
  report.set("end_to_end_sweep_runs",
             static_cast<std::uint64_t>(points.size()));
  report.set("end_to_end_sim_events", events);
  report.set("end_to_end_events_per_sec", eps);
  if (baseline_eps > 0) {
    const double speedup = eps / baseline_eps;
    std::printf("  main baseline %.0f events/s -> %.2fx\n", baseline_eps,
                speedup);
    report.set("baseline_main_events_per_sec", baseline_eps);
    report.set("end_to_end_speedup_vs_main", speedup);
  }
}

/// Runtime cost of the correctness checker (src/check): the same small
/// scheme x app matrix run with cfg.check.enabled off and on. The "off"
/// number is what a checker-capable build pays on the default path (hooks
/// compiled in, gated on a null pointer -- the configuration the <2%
/// compile-out budget is measured against); the "on" number is the full
/// oracle + audit cost paid only in checked CI runs.
void checker_overhead_report(runner::BenchReport& report) {
  report.set("check_hooks_compiled",
             static_cast<std::uint64_t>(check::kHooksCompiled ? 1 : 0));
  stamp::SuiteParams params;
  params.scale = 0.25;
  const auto matrix = [&](bool enabled) {
    std::vector<runner::RunPoint> points;
    for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                          sim::Scheme::kSuv}) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      cfg.mem.num_cores = 16;
      cfg.check.enabled = enabled;
      for (stamp::AppId app : stamp::all_apps()) {
        points.push_back(runner::RunPoint{app, cfg, params});
      }
    }
    return points;
  };
  runner::ParallelExecutor serial(1);
  const auto time_matrix = [&](bool enabled) {
    const auto points = matrix(enabled);
    runner::run_matrix(points, serial);  // warm
    runner::WallTimer t;
    const auto results = runner::run_matrix(points, serial);
    const double s = t.seconds();
    std::uint64_t events = 0;
    for (const auto& r : results) events += r.sim_events;
    return s > 0 ? static_cast<double>(events) / s : 0.0;
  };
  const double eps_off = time_matrix(false);
  const double eps_on =
      check::kHooksCompiled ? time_matrix(true) : eps_off;
  const double overhead =
      eps_on > 0 ? (eps_off / eps_on - 1.0) * 100.0 : 0.0;
  std::printf("\nchecker overhead (scheme x app matrix, 16 cores, "
              "scale 0.25):\n"
              "  check off: %10.0f events/s\n"
              "  check on : %10.0f events/s   (+%.1f%% run time)\n",
              eps_off, eps_on, overhead);
  report.set("events_per_sec_check_off", eps_off);
  report.set("events_per_sec_check_on", eps_on);
  report.set("checker_runtime_overhead_pct", overhead);
}

/// Runtime cost of the observability layer (src/obs): the same small
/// scheme x app matrix with cfg.obs off and with trace + metrics on. The
/// "off" number is the default hot path in an obs-capable build (hooks
/// compiled in, recorder pointer null -- the configuration the no-op
/// budget is measured against); any regression there is a hook leaking
/// work onto the untraced path. The "on" number is the full record cost.
void obs_overhead_report(runner::BenchReport& report) {
  report.set("obs_hooks_compiled",
             static_cast<std::uint64_t>(obs::kHooksCompiled ? 1 : 0));
  stamp::SuiteParams params;
  params.scale = 0.25;
  const auto matrix = [&](bool enabled) {
    std::vector<runner::RunPoint> points;
    for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                          sim::Scheme::kSuv}) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      cfg.mem.num_cores = 16;
      cfg.obs.trace = enabled;
      cfg.obs.metrics = enabled;
      for (stamp::AppId app : stamp::all_apps()) {
        points.push_back(runner::RunPoint{app, cfg, params});
      }
    }
    return points;
  };
  runner::ParallelExecutor serial(1);
  const auto time_matrix = [&](bool enabled) {
    const auto points = matrix(enabled);
    runner::run_matrix(points, serial);  // warm
    runner::WallTimer t;
    const auto results = runner::run_matrix(points, serial);
    const double s = t.seconds();
    std::uint64_t events = 0;
    for (const auto& r : results) events += r.sim_events;
    return s > 0 ? static_cast<double>(events) / s : 0.0;
  };
  const double eps_off = time_matrix(false);
  const double eps_on = obs::kHooksCompiled ? time_matrix(true) : eps_off;
  const double overhead =
      eps_on > 0 ? (eps_off / eps_on - 1.0) * 100.0 : 0.0;
  std::printf("\nobservability overhead (scheme x app matrix, 16 cores, "
              "scale 0.25):\n"
              "  obs off      : %10.0f events/s\n"
              "  trace+metrics: %10.0f events/s   (+%.1f%% run time)\n",
              eps_off, eps_on, overhead);
  report.set("events_per_sec_obs_off", eps_off);
  report.set("events_per_sec_obs_on", eps_on);
  report.set("obs_runtime_overhead_pct", overhead);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flag before google-benchmark sees (and rejects) it.
  double baseline_eps = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline-events-per-sec") == 0 &&
        i + 1 < argc) {
      baseline_eps = std::atof(argv[i + 1]);
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  // Strip the shared harness flags too (google-benchmark rejects unknown
  // flags); the overhead sections configure obs/check explicitly, so only
  // --jobs has an effect here.
  (void)runner::Cli::parse(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runner::BenchReport report("micro_structures");
  scheduler_report(report);
  container_report(report);
  end_to_end_report(report, baseline_eps);
  checker_overhead_report(report);
  obs_overhead_report(report);
  report.write();
  return 0;
}
