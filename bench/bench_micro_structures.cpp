// Host-level micro-benchmarks (google-benchmark) of the hot simulator
// structures: Bloom signatures, the summary signature, the redirect table,
// the cache tag array and the event scheduler. These guard the simulator's
// own performance -- full-suite experiment time is dominated by exactly
// these operations.
//
// Besides the google-benchmark suite, main() runs a fixed head-to-head of
// the current scheduler (move-friendly binary heap + SmallFn callbacks)
// against the seed implementation (std::priority_queue of std::function
// events, copy on every pop) and writes the events/sec of both to
// BENCH_micro_structures.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <queue>

#include "common/rng.hpp"
#include "htm/signature.hpp"
#include "mem/cache.hpp"
#include "runner/bench_report.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "suv/redirect_table.hpp"
#include "suv/summary_signature.hpp"

using namespace suvtm;

namespace {

// The seed scheduler, verbatim in shape: callbacks are std::function (whose
// typical 24-byte coroutine-resumption capture exceeds libstdc++'s inline
// buffer, so every schedule allocates) and popping the priority_queue copies
// the event out because top() is const.
class LegacyScheduler {
 public:
  Cycle now() const { return now_; }
  void at(Cycle t, std::function<void()> fn) {
    queue_.push(Event{t, seq_++, std::move(fn)});
  }
  void after(Cycle delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }
  bool run(Cycle limit) {
    while (!queue_.empty()) {
      if (queue_.top().t > limit) return false;
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.t;
      ++events_;
      ev.fn();
    }
    return true;
  }
  std::uint64_t events_processed() const { return events_; }

 private:
  struct Event {
    Cycle t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// Simulator-shaped event churn: kChains self-rescheduling handlers (one per
// simulated core plus mesh traffic) whose captures match the hot
// [this, &aw, h] lambdas in ThreadContext (24 bytes).
template <class Sched>
std::uint64_t scheduler_churn(std::uint64_t target_events) {
  Sched s;
  constexpr int kChains = 64;
  std::uint64_t processed = 0;
  struct Chain {
    Sched* s;
    std::uint64_t* processed;
    std::uint64_t limit;
    std::uint64_t x;
    void operator()() {
      if (*processed >= limit) return;
      ++*processed;
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      s->after(1 + (x >> 61), Chain{*this});
    }
  };
  static_assert(sizeof(Chain) == 32, "capture should model the hot lambdas");
  for (int i = 0; i < kChains; ++i) {
    s.after(static_cast<Cycle>(i),
            Chain{&s, &processed, target_events,
                  0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(i)});
  }
  s.run(~Cycle{0});
  return processed;
}

void BM_SignatureAdd(benchmark::State& state) {
  htm::Signature sig(2048, 2);
  Rng rng(1);
  for (auto _ : state) {
    sig.add(rng.next() >> 6);
    if (sig.adds() > 4096) sig.clear();
  }
}
BENCHMARK(BM_SignatureAdd);

void BM_SignatureTest(benchmark::State& state) {
  htm::Signature sig(2048, 2);
  Rng rng(2);
  for (int i = 0; i < 256; ++i) sig.add(rng.next() >> 6);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += sig.test(rng.next() >> 6);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_SignatureTest);

void BM_SummarySignatureAddRemove(benchmark::State& state) {
  suv::SummarySignature sum(2048, 2);
  Rng rng(3);
  for (auto _ : state) {
    const LineAddr l = rng.next() >> 6;
    sum.add(l);
    sum.remove(l);
  }
}
BENCHMARK(BM_SummarySignatureAddRemove);

void BM_RedirectTableLookupHit(benchmark::State& state) {
  sim::SuvParams p;
  suv::RedirectTable table(p, 16);
  Rng rng(4);
  std::vector<LineAddr> lines;
  for (int i = 0; i < 256; ++i) {
    const LineAddr l = rng.next() >> 40;
    if (table.find(l)) continue;
    lines.push_back(l);
    table.insert_transient(
        {l, l + (1ull << 34), suv::EntryState::kTxnRedirect, 0});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto res = table.lookup(0, lines[i++ % lines.size()]);
    benchmark::DoNotOptimize(res.entry);
  }
}
BENCHMARK(BM_RedirectTableLookupHit);

void BM_RedirectTableLookupFiltered(benchmark::State& state) {
  sim::SuvParams p;
  suv::RedirectTable table(p, 16);
  Rng rng(5);
  for (auto _ : state) {
    auto res = table.lookup(0, rng.next() >> 6);
    benchmark::DoNotOptimize(res.entry);
  }
}
BENCHMARK(BM_RedirectTableLookupFiltered);

void BM_CacheAccessHit(benchmark::State& state) {
  mem::Cache cache(32 * 1024, 4);
  for (LineAddr l = 0; l < 256; ++l) cache.insert(l, mem::CohState::kShared);
  LineAddr l = 0;
  for (auto _ : state) {
    auto* ln = cache.find(l++ % 256);
    benchmark::DoNotOptimize(ln);
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  mem::Cache cache(32 * 1024, 4);
  Rng rng(6);
  for (auto _ : state) {
    auto v = cache.insert(rng.next() >> 6, mem::CohState::kModified);
    benchmark::DoNotOptimize(v.valid);
  }
}
BENCHMARK(BM_CacheInsertEvict);

void BM_SchedulerEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler_churn<sim::Scheduler>(100000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerEventChurn);

void BM_SchedulerEventChurnLegacy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler_churn<LegacyScheduler>(100000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerEventChurnLegacy);

/// Fixed head-to-head for the JSON report: events/sec through each
/// scheduler implementation on the identical churn workload.
void write_scheduler_report() {
  constexpr std::uint64_t kEvents = 2'000'000;
  // Warm both allocators/caches once before timing.
  scheduler_churn<sim::Scheduler>(kEvents / 10);
  scheduler_churn<LegacyScheduler>(kEvents / 10);

  runner::WallTimer t_new;
  const std::uint64_t n_new = scheduler_churn<sim::Scheduler>(kEvents);
  const double s_new = t_new.seconds();

  runner::WallTimer t_old;
  const std::uint64_t n_old = scheduler_churn<LegacyScheduler>(kEvents);
  const double s_old = t_old.seconds();

  const double eps_new = s_new > 0 ? static_cast<double>(n_new) / s_new : 0.0;
  const double eps_old = s_old > 0 ? static_cast<double>(n_old) / s_old : 0.0;
  const double ratio = eps_old > 0 ? eps_new / eps_old : 0.0;
  std::printf("\nscheduler head-to-head (%llu events):\n"
              "  SmallFn heap       : %12.0f events/s\n"
              "  legacy std::function: %11.0f events/s\n"
              "  speedup            : %.2fx\n",
              static_cast<unsigned long long>(kEvents), eps_new, eps_old,
              ratio);

  runner::BenchReport report("micro_structures");
  report.set("scheduler_events", kEvents);
  report.set("events_per_sec_smallfn_heap", eps_new);
  report.set("events_per_sec_legacy_stdfunction", eps_old);
  report.set("scheduler_speedup", ratio);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_scheduler_report();
  return 0;
}
