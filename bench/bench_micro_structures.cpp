// Host-level micro-benchmarks (google-benchmark) of the hot simulator
// structures: Bloom signatures, the summary signature, the redirect table,
// the cache tag array and the event scheduler. These guard the simulator's
// own performance -- full-suite experiment time is dominated by exactly
// these operations.
//
// Besides the google-benchmark suite, main() runs fixed head-to-heads and
// writes them to BENCH_micro_structures.json:
//   - the calendar-queue scheduler (per-cycle buckets, batched same-cycle
//     dispatch) vs the binary-heap scheduler it replaced (SmallFn slot-pool
//     min-heap, PR 5 state), vs a per-event-dispatch calendar variant
//     (isolates the batching win), vs the seed implementation
//     (std::priority_queue of std::function);
//   - the flat containers (LineSet / FlatMap) vs the node-based
//     std::unordered_set/map they replaced, on footprint- and
//     redo-log-shaped churn;
//   - an end-to-end events/sec number: the bench_scaling part-1 matrix
//     (scheme x app, 16 simulated cores, scale 0.5) run serially in-process;
//   - the intra-run PDES head-to-head: one 64-core 4-shard machine driven
//     by 1 vs 4 host threads (events/sec both ways, speedup, and a
//     bit-identity verdict -- see DESIGN.md section 14);
//   - overhead guards for the correctness checker (src/check) and the
//     observability layer (src/obs): the same matrix with the hooks off
//     and on, as events/sec ratios.
//
// Usage: bench_micro_structures [gbench args] [--baseline-events-per-sec X]
//                               [--smoke]
//   X is the events_per_sec_jobs1 reported by a main-built bench_scaling on
//   this host (BENCH_scaling.json); when given, the report also records the
//   end-to-end speedup of this build over that baseline.
//   --smoke runs only the scheduler head-to-head, a small PDES
//   bit-identity run and the checker-overhead measurement (seconds, not
//   minutes) and still writes the JSON report -- the CI perf-smoke job
//   gates on its calendar_vs_heap_speedup and checker_runtime_overhead_pct
//   rows and pdes-smoke on its pdes_bit_identical row.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <queue>
#include <vector>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "check/check.hpp"
#include "common/flat_hash.hpp"
#include "stamp/sharded_kv.hpp"
#include "common/rng.hpp"
#include "htm/signature.hpp"
#include "mem/cache.hpp"
#include "obs/obs.hpp"
#include "runner/bench_report.hpp"
#include "runner/cli.hpp"
#include "runner/experiment.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "suv/redirect_table.hpp"
#include "suv/summary_signature.hpp"

using namespace suvtm;

namespace {

// The seed scheduler, verbatim in shape: callbacks are std::function (whose
// typical 24-byte coroutine-resumption capture exceeds libstdc++'s inline
// buffer, so every schedule allocates) and popping the priority_queue copies
// the event out because top() is const.
class LegacyScheduler {
 public:
  Cycle now() const { return now_; }
  void at(Cycle t, std::function<void()> fn) {
    queue_.push(Event{t, seq_++, std::move(fn)});
  }
  void after(Cycle delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }
  bool run(Cycle limit) {
    while (!queue_.empty()) {
      if (queue_.top().t > limit) return false;
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.t;
      ++events_;
      ev.fn();
    }
    return true;
  }
  std::uint64_t events_processed() const { return events_; }

 private:
  struct Event {
    Cycle t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// The PR 5 scheduler, verbatim in shape: a hand-rolled binary min-heap of
// (t, seq, slot) POD keys over a free-listed SmallFn slot pool. This is the
// binary-heap baseline the calendar queue replaced -- the head-to-head the
// CI perf-smoke job gates on.
class BaselineHeapScheduler {
 public:
  Cycle now() const { return now_; }

  void at(Cycle t, sim::SmallFn fn) {
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(fn));
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
    }
    heap_.emplace_back();  // reserve the hole; sift_up fills it
    sift_up(heap_.size() - 1, Key{t, seq_++, slot});
  }

  void after(Cycle delay, sim::SmallFn fn) { at(now_ + delay, std::move(fn)); }

  bool run(Cycle limit) {
    while (!heap_.empty()) {
      if (heap_.front().t > limit) return false;
      const Key k = pop_min();
      sim::SmallFn fn = std::move(slots_[k.slot]);
      free_slots_.push_back(k.slot);
      now_ = k.t;
      ++events_;
      fn();
    }
    return true;
  }

  std::uint64_t events_processed() const { return events_; }

 private:
  struct Key {
    Cycle t;
    std::uint64_t seq;
    std::uint32_t slot;

    bool before(const Key& o) const {
      return t != o.t ? t < o.t : seq < o.seq;
    }
  };

  void sift_up(std::size_t i, Key k) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!k.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }

  Key pop_min() {
    const Key min = heap_.front();
    const Key last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n && heap_[child + 1].before(heap_[child])) ++child;
        if (!heap_[child].before(last)) break;
        heap_[i] = heap_[child];
        i = child;
      }
      heap_[i] = last;
    }
    return min;
  }

  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::vector<Key> heap_;
  std::vector<sim::SmallFn> slots_;
  std::vector<std::uint32_t> free_slots_;
};

// The production calendar queue minus batching: same wheel geometry, same
// occupancy bitmap, same SmallFn slot pool, but run() dispatches ONE event
// per scan -- the bitmap walk, bucket bookkeeping and now_ advance are paid
// per event instead of per cycle. The gap between this row and the
// production scheduler is exactly the batched-dispatch win.
class CalendarPerEventScheduler {
 public:
  static constexpr std::uint32_t kWheelBits = 11;
  static constexpr std::uint32_t kWheelSize = 1u << kWheelBits;
  static constexpr Cycle kWheelMask = kWheelSize - 1;

  CalendarPerEventScheduler() : wheel_(kWheelSize) {}

  Cycle now() const { return now_; }

  void at(Cycle t, sim::SmallFn fn) {
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(fn));
      free_slots_.reserve(slots_.capacity());
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
    }
    ++pending_;
    if (t - window_start_ < kWheelSize) {
      const std::uint32_t idx = static_cast<std::uint32_t>(t & kWheelMask);
      wheel_[idx].push_back(slot);
      occ_[idx >> 6] |= 1ull << (idx & 63u);
      occ_summary_ |= 1ull << (idx >> 6);
      ++window_count_;
      if (t < scan_t_) scan_t_ = t;
    } else {
      overflow_.push_back(Key{t, seq_, slot});
      std::push_heap(overflow_.begin(), overflow_.end(), Key::later);
    }
    ++seq_;
  }

  void after(Cycle delay, sim::SmallFn fn) { at(now_ + delay, std::move(fn)); }

  bool run(Cycle limit) {
    while (pending_ > 0) {
      if (window_count_ == 0) {
        const Cycle t0 = overflow_.front().t;
        if (t0 > limit) return false;
        window_start_ = t0;
        scan_t_ = t0;
        while (!overflow_.empty() &&
               overflow_.front().t - window_start_ < kWheelSize) {
          std::pop_heap(overflow_.begin(), overflow_.end(), Key::later);
          const Key k = overflow_.back();
          overflow_.pop_back();
          const std::uint32_t idx =
              static_cast<std::uint32_t>(k.t & kWheelMask);
          wheel_[idx].push_back(k.slot);
          occ_[idx >> 6] |= 1ull << (idx & 63u);
          occ_summary_ |= 1ull << (idx >> 6);
          ++window_count_;
        }
      }
      // Per-event scan: one bitmap walk and one bucket-head pop per event.
      const std::uint32_t idx0 =
          static_cast<std::uint32_t>(scan_t_ & kWheelMask);
      const std::uint32_t idx = next_occupied(idx0);
      scan_t_ += (idx - idx0) & kWheelMask;
      if (scan_t_ > limit) return false;
      Bucket& b = wheel_[idx];
      const std::uint32_t slot = b[head_ == idx ? cursor_ : 0];
      if (head_ != idx) {
        head_ = idx;
        cursor_ = 0;
      }
      ++cursor_;
      now_ = scan_t_;
      sim::SmallFn fn = std::move(slots_[slot]);
      free_slots_.push_back(slot);
      ++events_;
      --pending_;
      --window_count_;
      if (cursor_ >= b.size()) {
        b.clear();
        head_ = ~0u;
        cursor_ = 0;
        occ_[idx >> 6] &= ~(1ull << (idx & 63u));
        if (occ_[idx >> 6] == 0) occ_summary_ &= ~(1ull << (idx >> 6));
        ++scan_t_;
      }
      fn();
    }
    return true;
  }

  std::uint64_t events_processed() const { return events_; }

 private:
  struct Key {
    Cycle t;
    std::uint64_t seq;
    std::uint32_t slot;
    static bool later(const Key& a, const Key& b) {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  using Bucket = std::vector<std::uint32_t>;
  static constexpr std::uint32_t kOccWords = kWheelSize / 64;

  std::uint32_t next_occupied(std::uint32_t from) const {
    const std::uint32_t w0 = from >> 6;
    const std::uint64_t head = occ_[w0] & (~0ull << (from & 63u));
    if (head != 0) {
      return (w0 << 6) | static_cast<std::uint32_t>(std::countr_zero(head));
    }
    const std::uint64_t above = occ_summary_ & (~0ull << (w0 + 1));
    const std::uint32_t w = static_cast<std::uint32_t>(
        std::countr_zero(above != 0 ? above : occ_summary_));
    return (w << 6) | static_cast<std::uint32_t>(std::countr_zero(occ_[w]));
  }

  Cycle now_ = 0;
  Cycle window_start_ = 0;
  Cycle scan_t_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::size_t pending_ = 0;
  std::size_t window_count_ = 0;
  std::uint32_t head_ = ~0u;   // bucket index cursor_ refers to
  std::uint32_t cursor_ = 0;   // events already drained from head_
  std::vector<Bucket> wheel_;
  std::uint64_t occ_[kOccWords] = {};
  std::uint64_t occ_summary_ = 0;
  std::vector<Key> overflow_;
  std::vector<sim::SmallFn> slots_;
  std::vector<std::uint32_t> free_slots_;
};

// Simulator-shaped event churn: kChains self-rescheduling handlers (one per
// simulated core plus mesh traffic) whose captures match the hot
// [this, &aw, h] lambdas in ThreadContext (24 bytes).
template <class Sched>
std::uint64_t scheduler_churn(std::uint64_t target_events) {
  Sched s;
  constexpr int kChains = 64;
  std::uint64_t processed = 0;
  struct Chain {
    Sched* s;
    std::uint64_t* processed;
    std::uint64_t limit;
    std::uint64_t x;
    void operator()() {
      if (*processed >= limit) return;
      ++*processed;
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      s->after(1 + (x >> 61), Chain{*this});
    }
  };
  static_assert(sizeof(Chain) == 32, "capture should model the hot lambdas");
  for (int i = 0; i < kChains; ++i) {
    s.after(static_cast<Cycle>(i),
            Chain{&s, &processed, target_events,
                  0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(i)});
  }
  s.run(~Cycle{0});
  return processed;
}

// Transaction-footprint churn, shaped like one txn attempt in the VM hot
// path (paper Table IV: write sets of tens of lines, reads outnumbering
// writes ~2:1, every access membership-probing both sets): build a 40-line
// write set and an 80-access read set with duplicate hits, then clear.
// Works on LineSet and std::unordered_set<LineAddr> alike.
template <class Set>
std::uint64_t footprint_churn(std::uint64_t rounds) {
  Set reads, writes;
  std::uint64_t x = 0x243f6a8885a308d3ull;
  std::uint64_t acc = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int i = 0; i < 40; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const LineAddr l = (x >> 12) & 0x3ff;  // 1K-line region -> some dups
      acc += writes.contains(l);
      writes.insert(l);
      for (int j = 0; j < 2; ++j) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const LineAddr rl = (x >> 12) & 0x3ff;
        acc += reads.contains(rl) + writes.contains(rl);
        reads.insert(rl);
      }
    }
    reads.clear();
    writes.clear();
  }
  return acc;
}
// insert+contains ops per round of the loop above (40 + 80 inserts,
// 40 + 160 membership probes).
constexpr std::uint64_t kFootprintOpsPerRound = 320;

// Redo-log / page-map churn: try_emplace-or-overwrite plus lookups over a
// 1K-key working set, cleared per round (commit/abort). Works on
// FlatMap<u64,u64> and std::unordered_map<u64,u64> alike.
template <class Map>
std::uint64_t map_churn(std::uint64_t rounds) {
  Map m;
  std::uint64_t x = 0x452821e638d01377ull;
  std::uint64_t acc = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int i = 0; i < 64; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      auto [it, inserted] = m.try_emplace((x >> 20) & 0x3ff, x);
      if (!inserted) it->second = x;
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      auto f = m.find((x >> 20) & 0x3ff);
      if (f != m.end()) acc += f->second;
    }
    m.clear();
  }
  return acc;
}
constexpr std::uint64_t kMapOpsPerRound = 128;

void BM_SignatureAdd(benchmark::State& state) {
  htm::Signature sig(2048, 2);
  Rng rng(1);
  for (auto _ : state) {
    sig.add(rng.next() >> 6);
    if (sig.adds() > 4096) sig.clear();
  }
}
BENCHMARK(BM_SignatureAdd);

void BM_SignatureTest(benchmark::State& state) {
  htm::Signature sig(2048, 2);
  Rng rng(2);
  for (int i = 0; i < 256; ++i) sig.add(rng.next() >> 6);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += sig.test(rng.next() >> 6);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_SignatureTest);

void BM_SummarySignatureAddRemove(benchmark::State& state) {
  suv::SummarySignature sum(2048, 2);
  Rng rng(3);
  for (auto _ : state) {
    const LineAddr l = rng.next() >> 6;
    sum.add(l);
    sum.remove(l);
  }
}
BENCHMARK(BM_SummarySignatureAddRemove);

void BM_RedirectTableLookupHit(benchmark::State& state) {
  sim::SuvParams p;
  suv::RedirectTable table(p, 16);
  Rng rng(4);
  std::vector<LineAddr> lines;
  for (int i = 0; i < 256; ++i) {
    const LineAddr l = rng.next() >> 40;
    if (table.find(l)) continue;
    lines.push_back(l);
    table.insert_transient(
        {l, l + (1ull << 34), suv::EntryState::kTxnRedirect, 0});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto res = table.lookup(0, lines[i++ % lines.size()]);
    benchmark::DoNotOptimize(res.entry);
  }
}
BENCHMARK(BM_RedirectTableLookupHit);

void BM_RedirectTableLookupFiltered(benchmark::State& state) {
  sim::SuvParams p;
  suv::RedirectTable table(p, 16);
  Rng rng(5);
  for (auto _ : state) {
    auto res = table.lookup(0, rng.next() >> 6);
    benchmark::DoNotOptimize(res.entry);
  }
}
BENCHMARK(BM_RedirectTableLookupFiltered);

void BM_CacheAccessHit(benchmark::State& state) {
  mem::Cache cache(32 * 1024, 4);
  for (LineAddr l = 0; l < 256; ++l) cache.insert(l, mem::CohState::kShared);
  LineAddr l = 0;
  for (auto _ : state) {
    auto* ln = cache.find(l++ % 256);
    benchmark::DoNotOptimize(ln);
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  mem::Cache cache(32 * 1024, 4);
  Rng rng(6);
  for (auto _ : state) {
    auto v = cache.insert(rng.next() >> 6, mem::CohState::kModified);
    benchmark::DoNotOptimize(v.valid);
  }
}
BENCHMARK(BM_CacheInsertEvict);

void BM_FootprintChurnFlat(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(footprint_churn<LineSet>(100));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(kFootprintOpsPerRound));
}
BENCHMARK(BM_FootprintChurnFlat);

void BM_FootprintChurnNode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        footprint_churn<std::unordered_set<LineAddr>>(100));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(kFootprintOpsPerRound));
}
BENCHMARK(BM_FootprintChurnNode);

void BM_MapChurnFlat(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map_churn<FlatMap<std::uint64_t, std::uint64_t>>(100));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(kMapOpsPerRound));
}
BENCHMARK(BM_MapChurnFlat);

void BM_MapChurnNode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map_churn<std::unordered_map<std::uint64_t, std::uint64_t>>(100));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(kMapOpsPerRound));
}
BENCHMARK(BM_MapChurnNode);

void BM_SchedulerEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler_churn<sim::Scheduler>(100000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerEventChurn);

void BM_SchedulerEventChurnLegacy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler_churn<LegacyScheduler>(100000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerEventChurnLegacy);

/// Fixed head-to-head for the JSON report: events/sec through each
/// scheduler implementation on the identical churn workload. The
/// calendar-vs-heap ratio is the row the CI perf-smoke job gates on (>= 2x).
void scheduler_report(runner::BenchReport& report, bool smoke) {
  const std::uint64_t kEvents = smoke ? 500'000 : 2'000'000;
  const auto timed = [&](auto tag) {
    using Sched = decltype(tag);
    scheduler_churn<Sched>(kEvents / 10);  // warm allocators/caches
    runner::WallTimer t;
    const std::uint64_t n = scheduler_churn<Sched>(kEvents);
    const double s = t.seconds();
    return s > 0 ? static_cast<double>(n) / s : 0.0;
  };

  const double eps_cal = timed(sim::Scheduler{});
  const double eps_per_event = timed(CalendarPerEventScheduler{});
  const double eps_heap = timed(BaselineHeapScheduler{});
  const double eps_legacy = timed(LegacyScheduler{});

  const double vs_heap = eps_heap > 0 ? eps_cal / eps_heap : 0.0;
  const double vs_per_event = eps_per_event > 0 ? eps_cal / eps_per_event : 0.0;
  const double vs_legacy = eps_legacy > 0 ? eps_cal / eps_legacy : 0.0;
  std::printf("\nscheduler head-to-head (%llu events):\n"
              "  calendar queue (batched)  : %12.0f events/s\n"
              "  calendar, per-event       : %12.0f events/s\n"
              "  binary heap (PR 5)        : %12.0f events/s\n"
              "  legacy std::function heap : %12.0f events/s\n"
              "  calendar vs heap          : %.2fx\n"
              "  batched vs per-event      : %.2fx\n"
              "  calendar vs legacy        : %.2fx\n",
              static_cast<unsigned long long>(kEvents), eps_cal, eps_per_event,
              eps_heap, eps_legacy, vs_heap, vs_per_event, vs_legacy);

  report.set("scheduler_events", kEvents);
  report.set("events_per_sec_calendar_queue", eps_cal);
  report.set("events_per_sec_calendar_per_event", eps_per_event);
  report.set("events_per_sec_binary_heap", eps_heap);
  report.set("events_per_sec_legacy_stdfunction", eps_legacy);
  report.set("calendar_vs_heap_speedup", vs_heap);
  report.set("batched_vs_per_event_speedup", vs_per_event);
  report.set("scheduler_speedup", vs_legacy);
}

/// Fixed flat-vs-node container head-to-heads on the same churn workloads
/// the google-benchmark rows measure.
void container_report(runner::BenchReport& report) {
  constexpr std::uint64_t kRounds = 20'000;
  struct Row {
    const char* name;
    std::uint64_t ops_per_round;
    std::uint64_t (*flat)(std::uint64_t);
    std::uint64_t (*node)(std::uint64_t);
  };
  const Row rows[] = {
      {"footprint", kFootprintOpsPerRound, footprint_churn<LineSet>,
       footprint_churn<std::unordered_set<LineAddr>>},
      {"map", kMapOpsPerRound,
       map_churn<FlatMap<std::uint64_t, std::uint64_t>>,
       map_churn<std::unordered_map<std::uint64_t, std::uint64_t>>},
  };
  std::printf("\ncontainer head-to-heads (%llu rounds each):\n",
              static_cast<unsigned long long>(kRounds));
  for (const Row& row : rows) {
    row.flat(kRounds / 10);  // warm allocators/caches before timing
    row.node(kRounds / 10);
    runner::WallTimer tf;
    benchmark::DoNotOptimize(row.flat(kRounds));
    const double sf = tf.seconds();
    runner::WallTimer tn;
    benchmark::DoNotOptimize(row.node(kRounds));
    const double sn = tn.seconds();
    const double total = static_cast<double>(kRounds * row.ops_per_round);
    const double ops_flat = sf > 0 ? total / sf : 0.0;
    const double ops_node = sn > 0 ? total / sn : 0.0;
    const double ratio = ops_node > 0 ? ops_flat / ops_node : 0.0;
    std::printf("  %-9s: flat %12.0f ops/s   node %12.0f ops/s   %.2fx\n",
                row.name, ops_flat, ops_node, ratio);
    report.set(std::string(row.name) + "_ops_per_sec_flat", ops_flat);
    report.set(std::string(row.name) + "_ops_per_sec_node", ops_node);
    report.set(std::string(row.name) + "_container_speedup", ratio);
  }
}

/// End-to-end events/sec: the bench_scaling part-1 matrix (scheme x app,
/// 16 simulated cores, scale 0.5 -- the default config) run serially in
/// this process. `baseline_eps`, when > 0, is the same number measured from
/// a main-built bench_scaling; the ratio lands in the report.
void end_to_end_report(runner::BenchReport& report, double baseline_eps) {
  stamp::SuiteParams params;
  params.scale = 0.5;
  std::vector<runner::RunPoint> points;
  for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                        sim::Scheme::kSuv}) {
    sim::SimConfig cfg;
    cfg.scheme = s;
    cfg.mem.num_cores = 16;
    for (stamp::AppId app : stamp::all_apps()) {
      points.push_back(runner::RunPoint{app, cfg, params});
    }
  }
  runner::ParallelExecutor serial(1);
  runner::run_matrix(points, serial);  // warm
  runner::WallTimer t;
  const auto results = runner::run_matrix(points, serial);
  const double s = t.seconds();
  std::uint64_t events = 0;
  for (const auto& r : results) events += r.sim_events;
  const double eps = s > 0 ? static_cast<double>(events) / s : 0.0;
  std::printf("\nend-to-end (scheme x app matrix, 16 cores, scale 0.5):\n"
              "  %zu runs, %llu events in %.2f s -> %.0f events/s\n",
              points.size(), static_cast<unsigned long long>(events), s, eps);
  report.set("end_to_end_sweep_runs",
             static_cast<std::uint64_t>(points.size()));
  report.set("end_to_end_sim_events", events);
  report.set("end_to_end_events_per_sec", eps);
  if (baseline_eps > 0) {
    const double speedup = eps / baseline_eps;
    std::printf("  main baseline %.0f events/s -> %.2fx\n", baseline_eps,
                speedup);
    report.set("baseline_main_events_per_sec", baseline_eps);
    report.set("end_to_end_speedup_vs_main", speedup);
  }
}

/// Intra-run shard parallelism (conservative PDES): one 64-simulated-core
/// sharded machine (8x8 mesh, 4 shards, SUV) running the sharded_kv kernel
/// with 1 vs 4 host threads. Reports simulated events/sec for both, the
/// speedup, and whether the two runs' full RunResults were bit-identical
/// (they must be -- host threads are a pure execution knob). The report
/// also records the measuring host's CPU count: on a host with fewer than
/// 4 CPUs the speedup row measures scheduling overhead, not parallelism,
/// so consumers (the CI pdes-smoke gate, the README table) must treat it
/// as meaningful only when pdes_host_cpus >= 4. The CI job gates on
/// pdes_bit_identical from a fresh --smoke run unconditionally.
void pdes_report(runner::BenchReport& report, bool smoke) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  cfg.mem.num_cores = 64;
  cfg.mem.mesh_dim = 8;
  cfg.pdes.shards = 4;

  stamp::ShardedKvParams p;
  p.ops_per_thread = smoke ? 200 : 4000;
  p.txn_keys = 128;
  p.keys_per_txn = 4;
  p.remote_read_every = 8;

  const auto run_once = [&](std::uint32_t host_threads, double* secs) {
    cfg.pdes.host_threads = host_threads;
    sim::Simulator sim(cfg);
    stamp::ShardedKv wl(p);
    wl.build(sim);
    runner::WallTimer t;
    sim.run();
    *secs = t.seconds();
    wl.verify(sim);
    return runner::harvest_result(sim, "sharded_kv");
  };

  double warm = 0.0;
  run_once(4, &warm);  // warm allocators/caches (and thread start-up)
  double s1 = 0.0, s4 = 0.0;
  const runner::RunResult r1 = run_once(1, &s1);
  const runner::RunResult r4 = run_once(4, &s4);
  const bool identical = r1 == r4;
  const double eps1 = s1 > 0 ? static_cast<double>(r1.sim_events) / s1 : 0.0;
  const double eps4 = s4 > 0 ? static_cast<double>(r4.sim_events) / s4 : 0.0;
  const double speedup = eps1 > 0 ? eps4 / eps1 : 0.0;
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("\nintra-run PDES (sharded_kv, 64 cores, 4 shards, SUV):\n"
              "  1 host thread : %12.0f events/s\n"
              "  4 host threads: %12.0f events/s   (%.2fx)\n"
              "  bit-identical : %s\n",
              eps1, eps4, speedup, identical ? "yes" : "NO");
  if (host_cpus < 4) {
    std::printf("  note: only %u host CPU(s) -- the speedup row measures "
                "overhead, not parallelism, on this host\n", host_cpus);
  }
  report.set("pdes_host_cpus", static_cast<std::uint64_t>(host_cpus));
  report.set("pdes_sim_events", r1.sim_events);
  report.set("end_to_end_events_per_sec_pdes1", eps1);
  report.set("end_to_end_events_per_sec_pdes4", eps4);
  report.set("pdes_speedup_4threads", speedup);
  report.set("pdes_bit_identical",
             static_cast<std::uint64_t>(identical ? 1 : 0));
}

double cpu_seconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Runtime cost of the correctness checker (src/check): the same small
/// scheme x app matrix with cfg.check.enabled off and on, at the default
/// checked configuration (sampled structural audits plus always-on abort
/// audits; the history oracle's replay and conflict-ordering proofs are
/// always on). The "off" arm is what a checker-capable build pays on the
/// default path: hooks compiled in, gated on a null pointer.
///
/// Methodology, built for noisy/throttling CI hosts: each round times the
/// matrix off, on, on, off (ABBA -- both arms see both positions, so
/// monotone drift within a round cancels), on CLOCK_PROCESS_CPUTIME_ID
/// (immune to descheduling), and the reported overhead is the MEDIAN of
/// the per-round on/off ratios (robust to frequency spikes). A naive
/// off-then-on wall-clock pair systematically inflates the ratio by
/// double-digit points on a throttling host because the second arm always
/// runs slower; this estimator is what the CI check-overhead gate asserts
/// against.
void checker_overhead_report(runner::BenchReport& report, int rounds) {
  report.set("check_hooks_compiled",
             static_cast<std::uint64_t>(check::kHooksCompiled ? 1 : 0));
  stamp::SuiteParams params;
  params.scale = 0.25;
  const auto matrix = [&](bool enabled) {
    std::vector<runner::RunPoint> points;
    for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                          sim::Scheme::kSuv}) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      cfg.mem.num_cores = 16;
      cfg.check.enabled = enabled;
      for (stamp::AppId app : stamp::all_apps()) {
        points.push_back(runner::RunPoint{app, cfg, params});
      }
    }
    return points;
  };
  const auto off_pts = matrix(false);
  const auto on_pts = matrix(check::kHooksCompiled);
  runner::ParallelExecutor serial(1);
  std::uint64_t events = 0;
  for (const auto& r : runner::run_matrix(off_pts, serial)) {  // warm
    events += r.sim_events;
  }
  runner::run_matrix(on_pts, serial);  // warm
  std::vector<double> ratios;
  double off_min = 1e300, on_min = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const double t0 = cpu_seconds();
    runner::run_matrix(off_pts, serial);
    const double t1 = cpu_seconds();
    runner::run_matrix(on_pts, serial);
    const double t2 = cpu_seconds();
    runner::run_matrix(on_pts, serial);
    const double t3 = cpu_seconds();
    runner::run_matrix(off_pts, serial);
    const double t4 = cpu_seconds();
    const double off = (t1 - t0) + (t4 - t3);
    const double on = (t2 - t1) + (t3 - t2);
    off_min = std::min(off_min, off);
    on_min = std::min(on_min, on);
    if (off > 0) ratios.push_back(on / off);
  }
  std::sort(ratios.begin(), ratios.end());
  const double ratio = ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  const double overhead = (ratio - 1.0) * 100.0;
  // Each arm's time covers two matrix passes; min over rounds is the
  // least-interfered pass pair, so it anchors the absolute events/s rows.
  const double eps_off =
      off_min > 0 ? 2.0 * static_cast<double>(events) / off_min : 0.0;
  const double eps_on =
      on_min > 0 ? 2.0 * static_cast<double>(events) / on_min : 0.0;
  std::printf("\nchecker overhead (scheme x app matrix, 16 cores, "
              "scale 0.25, %d ABBA rounds, median CPU-time ratio):\n"
              "  check off: %10.0f events/s\n"
              "  check on : %10.0f events/s   (+%.1f%% run time)\n",
              rounds, eps_off, eps_on, overhead);
  report.set("events_per_sec_check_off", eps_off);
  report.set("events_per_sec_check_on", eps_on);
  report.set("checker_overhead_rounds", static_cast<std::uint64_t>(rounds));
  report.set("checker_runtime_overhead_pct", overhead);
}

/// Runtime cost of the observability layer (src/obs): the same small
/// scheme x app matrix with cfg.obs off and with trace + metrics on. The
/// "off" number is the default hot path in an obs-capable build (hooks
/// compiled in, recorder pointer null -- the configuration the no-op
/// budget is measured against); any regression there is a hook leaking
/// work onto the untraced path. The "on" number is the full record cost.
void obs_overhead_report(runner::BenchReport& report) {
  report.set("obs_hooks_compiled",
             static_cast<std::uint64_t>(obs::kHooksCompiled ? 1 : 0));
  stamp::SuiteParams params;
  params.scale = 0.25;
  const auto matrix = [&](bool enabled) {
    std::vector<runner::RunPoint> points;
    for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                          sim::Scheme::kSuv}) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      cfg.mem.num_cores = 16;
      cfg.obs.trace = enabled;
      cfg.obs.metrics = enabled;
      for (stamp::AppId app : stamp::all_apps()) {
        points.push_back(runner::RunPoint{app, cfg, params});
      }
    }
    return points;
  };
  runner::ParallelExecutor serial(1);
  const auto time_matrix = [&](bool enabled) {
    const auto points = matrix(enabled);
    runner::run_matrix(points, serial);  // warm
    runner::WallTimer t;
    const auto results = runner::run_matrix(points, serial);
    const double s = t.seconds();
    std::uint64_t events = 0;
    for (const auto& r : results) events += r.sim_events;
    return s > 0 ? static_cast<double>(events) / s : 0.0;
  };
  const double eps_off = time_matrix(false);
  const double eps_on = obs::kHooksCompiled ? time_matrix(true) : eps_off;
  const double overhead =
      eps_on > 0 ? (eps_off / eps_on - 1.0) * 100.0 : 0.0;
  std::printf("\nobservability overhead (scheme x app matrix, 16 cores, "
              "scale 0.25):\n"
              "  obs off      : %10.0f events/s\n"
              "  trace+metrics: %10.0f events/s   (+%.1f%% run time)\n",
              eps_off, eps_on, overhead);
  report.set("events_per_sec_obs_off", eps_off);
  report.set("events_per_sec_obs_on", eps_on);
  report.set("obs_runtime_overhead_pct", overhead);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flag before google-benchmark sees (and rejects) it.
  double baseline_eps = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline-events-per-sec") == 0 &&
        i + 1 < argc) {
      baseline_eps = std::atof(argv[i + 1]);
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  // Strip the shared harness flags too (google-benchmark rejects unknown
  // flags); the overhead sections configure obs/check explicitly, so only
  // --jobs and --smoke have an effect here.
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  if (cli.smoke) {
    // CI perf-smoke mode: the scheduler head-to-head, the PDES
    // bit-identity check and the checker-overhead measurement (the rows
    // the CI gates assert on), no google-benchmark suite, no end-to-end
    // runs.
    runner::BenchReport report("micro_structures");
    scheduler_report(report, /*smoke=*/true);
    pdes_report(report, /*smoke=*/true);
    checker_overhead_report(report, /*rounds=*/3);
    report.write();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runner::BenchReport report("micro_structures");
  scheduler_report(report, /*smoke=*/false);
  container_report(report);
  end_to_end_report(report, baseline_eps);
  pdes_report(report, /*smoke=*/false);
  checker_overhead_report(report, /*rounds=*/5);
  obs_overhead_report(report);
  report.write();
  return 0;
}
