// Thread-scaling ablation (beyond the paper, which fixes 16 cores): how
// each version-management scheme's suite execution time scales from 1 to
// 16 cores. Version-management overhead differences compound with core
// count -- the paper's premise that future many-core CMPs make the choice
// matter more.
//
// Usage: bench_scaling [scale]
#include <cstdio>
#include <cstdlib>

#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  stamp::SuiteParams params;
  params.scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};
  const sim::Scheme schemes[] = {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                                 sim::Scheme::kSuv};

  std::printf("Thread scaling: suite-sum cycles per scheme and core count "
              "(scale=%.2f)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cores", "LogTM-SE", "FasTM", "SUV-TM",
                  "SUV speedup vs LogTM-SE"});
  for (std::uint32_t cores : core_counts) {
    std::vector<std::string> row = {runner::fmt_u64(cores)};
    std::uint64_t logtm = 0, suv = 0;
    for (sim::Scheme s : schemes) {
      sim::SimConfig cfg;
      cfg.mem.num_cores = cores;
      std::uint64_t total = 0;
      for (const auto& r : runner::run_suite(s, cfg, params)) {
        total += r.makespan;
      }
      row.push_back(runner::fmt_u64(total));
      if (s == sim::Scheme::kLogTmSe) logtm = total;
      if (s == sim::Scheme::kSuv) suv = total;
    }
    row.push_back(runner::fmt_fixed(
        100.0 * (static_cast<double>(logtm) / static_cast<double>(suv) - 1.0),
        1) + "%");
    rows.push_back(row);
  }
  std::printf("%s\n", runner::render_table(rows).c_str());
  std::printf("expected shape: at 1 core the schemes differ only by "
              "bookkeeping costs; the\nSUV advantage grows with core count "
              "as conflicts (and therefore commit/abort\nisolation windows) "
              "start to dominate.\n");
  return 0;
}
