// Experiment-throughput scaling: how fast the *harness* chews through a
// scheme x app sweep as host jobs increase, plus the thread-scaling
// ablation (how each scheme's suite execution time scales from 1 to 16
// simulated cores).
//
// Part 1 runs the same scheme x app matrix twice -- --jobs 1 and --jobs N --
// times both, and verifies the RunResults are bit-identical (the
// ParallelExecutor determinism guarantee). Part 2 fans the cores x scheme x
// app cross-product through the pool. A machine-readable summary lands in
// BENCH_scaling.json.
//
// Usage: bench_scaling [scale] [--jobs N] [--smoke] [--check] [--no-check]
//            [--trace out.json] [--metrics]
//   --smoke: tiny scale, identity check plus a seed-shape audit of every
//            RunResult field block; exits non-zero on any violation (used
//            as the ctest parallel smoke target). Smoke runs CHECK ON BY
//            DEFAULT: every smoke simulation is oracle-verified and
//            structurally audited (pass --no-check to opt out, e.g. when
//            timing the smoke sweep itself).
//   --check: run every simulation with the correctness checker enabled
//            (history oracle + structural audits; see src/check). Requires
//            a build with SUVTM_CHECK=ON to have any effect; any violation
//            aborts the run. Timing numbers include the checking cost.
//   --trace/--metrics: record observability data during the part-1 sweep
//            (the determinism check then also covers trace and metrics
//            byte-stability across jobs counts).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/api.hpp"
#include "check/check.hpp"
#include "obs/chrome_trace.hpp"
#include "runner/cli.hpp"
#include "runner/tables.hpp"
#include "stamp/sharded_kv.hpp"

using namespace suvtm;

namespace {

std::vector<runner::RunPoint> sweep_points(const runner::Cli& cli,
                                           const stamp::SuiteParams& params,
                                           std::uint32_t cores) {
  std::vector<runner::RunPoint> points;
  for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                        sim::Scheme::kSuv}) {
    const sim::SimConfig cfg =
        api::SimBuilder().scheme(s).cores(cores).apply(cli).config();
    for (stamp::AppId app : stamp::all_apps()) {
      points.push_back(runner::RunPoint{app, cfg, params});
    }
  }
  return points;
}

std::uint64_t total_events(const std::vector<runner::RunResult>& rs) {
  std::uint64_t n = 0;
  for (const auto& r : rs) n += r.sim_events;
  return n;
}

/// Seed-shape audit for the smoke target: beyond bit-identity, every
/// RunResult must look like a completed simulation the way the seed
/// produced them -- named app, events and cycles consumed, every begun
/// txn resolved, memory traffic present, and the scheme-specific stat
/// blocks present exactly when their scheme ran. Returns the number of
/// violations (0 = shape OK), printing each one.
int check_seed_shape(const std::vector<runner::RunPoint>& points,
                     const std::vector<runner::RunResult>& rs) {
  int bad = 0;
  auto fail = [&bad](std::size_t i, const char* what) {
    std::fprintf(stderr, "  shape violation at run %zu: %s\n", i, what);
    ++bad;
  };
  if (points.size() != rs.size()) {
    std::fprintf(stderr, "  shape violation: %zu results for %zu points\n",
                 rs.size(), points.size());
    return 1;
  }
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    if (r.app.empty()) fail(i, "empty app name");
    if (r.scheme != points[i].cfg.scheme) fail(i, "scheme mismatch");
    if (r.sim_events == 0) fail(i, "no scheduler events");
    if (r.makespan == 0) fail(i, "zero makespan");
    if (r.htm.begins == 0) fail(i, "no transactions ran");
    if (r.htm.begins != r.htm.commits + r.htm.aborts) {
      fail(i, "unresolved txn attempts (begins != commits + aborts)");
    }
    if (r.mem.l1_hits + r.mem.l1_misses == 0) fail(i, "no L1 traffic");
    const bool is_suv = points[i].cfg.scheme == sim::Scheme::kSuv;
    if (r.has_suv != is_suv) fail(i, "has_suv does not match scheme");
    if (is_suv && r.suv.entries_created == 0 && r.table.lookups == 0) {
      fail(i, "SUV ran but its redirect machinery never engaged");
    }
    if (r.has_dyntm) fail(i, "has_dyntm set for a non-DynTM sweep");
  }
  return bad;
}

/// Part 1b: intra-run determinism. Where part 1 checks that *across-run*
/// host parallelism (the sweep pool) never changes results, this checks
/// the *within-run* kind: one sharded machine (4 shards, 16 cores, SUV)
/// driven by 1 vs 4 host threads must produce a bit-identical RunResult,
/// trace, and metrics snapshot.
bool pdes_identity_check(runner::BenchReport& report, bool check) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  cfg.mem.num_cores = 16;
  cfg.pdes.shards = 4;
  cfg.check.enabled = check;
  cfg.obs.trace = true;
  cfg.obs.metrics = true;

  runner::RunResult results[2];
  obs::TraceData traces[2];
  const std::uint32_t threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    cfg.pdes.host_threads = threads[i];
    sim::Simulator sim(cfg);
    stamp::ShardedKv wl;
    wl.build(sim);
    sim.run();
    wl.verify(sim);
    results[i] = runner::harvest_result(sim, "sharded_kv", &traces[i]);
  }
  const bool ok = results[0] == results[1] && traces[0] == traces[1];
  std::printf("Part 1b: sharded machine (4 shards), sim_threads=1 vs 4: %s\n\n",
              ok ? "bit-identical" : "NO -- DETERMINISM VIOLATION");
  report.set("pdes_bit_identical", static_cast<std::uint64_t>(ok ? 1 : 0));
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  runner::Cli cli = runner::Cli::parse(argc, argv);
  // Always-on correctness: smoke sweeps run checked unless --no-check.
  // (Cli::parse already cleared cli.check if --no-check was given.)
  if (cli.smoke && !cli.no_check && check::kHooksCompiled) cli.check = true;
  const unsigned jobs = cli.jobs;
  const bool smoke = cli.smoke;
  const bool check = cli.check;
  stamp::SuiteParams params;
  params.scale = cli.scale_or(smoke ? 0.1 : 0.5);

  runner::BenchReport report("scaling");
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("smoke", static_cast<std::uint64_t>(smoke ? 1 : 0));
  report.set("check", static_cast<std::uint64_t>(check ? 1 : 0));

  // ---- Part 1: harness throughput, --jobs 1 vs --jobs N ------------------
  const auto points = sweep_points(cli, params, smoke ? 8 : 16);
  std::printf("Part 1: scheme x app sweep (%zu runs, scale=%.2f), "
              "jobs=1 vs jobs=%u\n\n", points.size(), params.scale, jobs);

  runner::ParallelExecutor serial(1);
  runner::WallTimer t1;
  const auto serial_out = runner::run_matrix_traced(points, serial);
  const auto& serial_results = serial_out.results;
  const double serial_s = t1.seconds();

  runner::ParallelExecutor pool(jobs);
  runner::WallTimer tn;
  const auto pool_out = runner::run_matrix_traced(points, pool);
  const auto& pool_results = pool_out.results;
  const double pool_s = tn.seconds();

  // Bit-identity must hold for the stats AND the observability outputs:
  // RunResult includes the metrics snapshot, and the traces compare
  // event-for-event.
  bool identical = serial_results.size() == pool_results.size();
  for (std::size_t i = 0; identical && i < serial_results.size(); ++i) {
    identical = serial_results[i] == pool_results[i] &&
                serial_out.traces[i] == pool_out.traces[i];
  }

  if (cli.tracing()) {
    std::vector<obs::NamedTrace> named;
    named.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      named.push_back(
          {std::string(sim::scheme_cli_name(points[i].cfg.scheme)) + "/" +
               pool_results[i].app,
           &pool_out.traces[i]});
    }
    if (obs::write_chrome_trace(cli.trace_path, named)) {
      std::printf("trace written to %s (open in ui.perfetto.dev)\n\n",
                  cli.trace_path.c_str());
    }
  }

  const std::uint64_t events = total_events(pool_results);
  const double speedup = pool_s > 0.0 ? serial_s / pool_s : 0.0;
  std::printf("  jobs=1 : %7.2f s   (%.0f events/s)\n", serial_s,
              serial_s > 0 ? static_cast<double>(events) / serial_s : 0.0);
  std::printf("  jobs=%-2u: %7.2f s   (%.0f events/s)\n", jobs, pool_s,
              pool_s > 0 ? static_cast<double>(events) / pool_s : 0.0);
  std::printf("  speedup: %5.2fx   results bit-identical: %s\n\n", speedup,
              identical ? "yes" : "NO -- DETERMINISM VIOLATION");

  report.set("sweep_runs", static_cast<std::uint64_t>(points.size()));
  report.set("wall_seconds_jobs1", serial_s);
  report.set("wall_seconds_jobsN", pool_s);
  report.set("speedup", speedup);
  report.set("sim_events", events);
  report.set("events_per_sec_jobs1",
             serial_s > 0 ? static_cast<double>(events) / serial_s : 0.0);
  report.set("events_per_sec_jobsN",
             pool_s > 0 ? static_cast<double>(events) / pool_s : 0.0);
  report.set("bit_identical", static_cast<std::uint64_t>(identical ? 1 : 0));

  const bool pdes_ok = pdes_identity_check(report, check);
  identical = identical && pdes_ok;

  if (smoke) {
    const int shape_violations = check_seed_shape(points, pool_results);
    report.set("shape_violations",
               static_cast<std::uint64_t>(shape_violations));
    report.write();
    if (!identical) {
      std::fprintf(stderr, "FAIL: parallel results differ from serial\n");
      return 1;
    }
    if (shape_violations != 0) {
      std::fprintf(stderr, "FAIL: %d RunResult shape violations\n",
                   shape_violations);
      return 1;
    }
    std::printf("smoke OK (bit-identical, seed-shape fields intact)\n");
    return 0;
  }

  // ---- Part 2: simulated-core scaling per scheme (paper ablation) --------
  const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};
  const sim::Scheme schemes[] = {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                                 sim::Scheme::kSuv};

  // Flatten cores x scheme x app into one matrix so the pool never drains
  // between table rows.
  std::vector<runner::RunPoint> all;
  for (std::uint32_t cores : core_counts) {
    for (sim::Scheme s : schemes) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      cfg.mem.num_cores = cores;
      cfg.check.enabled = check;
      for (stamp::AppId app : stamp::all_apps()) {
        all.push_back(runner::RunPoint{app, cfg, params});
      }
    }
  }
  runner::WallTimer t2;
  const auto results = runner::run_matrix(all, pool);
  const double part2_s = t2.seconds();

  std::printf("Part 2: suite-sum cycles per scheme and simulated core count "
              "(scale=%.2f)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cores", "LogTM-SE", "FasTM", "SUV-TM",
                  "SUV speedup vs LogTM-SE"});
  const std::size_t napps = stamp::all_apps().size();
  std::size_t idx = 0;
  for (std::uint32_t cores : core_counts) {
    std::vector<std::string> row = {runner::fmt_u64(cores)};
    std::uint64_t logtm = 0, suv = 0;
    for (sim::Scheme s : schemes) {
      std::uint64_t total = 0;
      for (std::size_t a = 0; a < napps; ++a) total += results[idx++].makespan;
      row.push_back(runner::fmt_u64(total));
      if (s == sim::Scheme::kLogTmSe) logtm = total;
      if (s == sim::Scheme::kSuv) suv = total;
    }
    row.push_back(runner::fmt_fixed(
        100.0 * (static_cast<double>(logtm) / static_cast<double>(suv) - 1.0),
        1) + "%");
    rows.push_back(row);
  }
  std::printf("%s\n", runner::render_table(rows).c_str());
  std::printf("expected shape: at 1 core the schemes differ only by "
              "bookkeeping costs; the\nSUV advantage grows with core count "
              "as conflicts (and therefore commit/abort\nisolation windows) "
              "start to dominate.\n\n");

  report.set("core_sweep_runs", static_cast<std::uint64_t>(all.size()));
  report.set("core_sweep_wall_seconds", part2_s);
  report.set("core_sweep_events", total_events(results));
  report.write();
  return identical ? 0 : 1;
}
