// Table I analogue: abort behaviour of the STAMP-like applications under
// each HTM scheme. The paper's Table I surveys abort ratios reported in
// prior studies (up to 79%+ for STAMP-class workloads); this bench measures
// the equivalent numbers for our reproduction so they can be compared.
//
// Usage: bench_table1_abort_ratios [scale] [--jobs N] [--check]
//            [--trace out.json] [--metrics]
#include <cstdio>
#include <cstdlib>

#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  const unsigned jobs = cli.jobs;
  stamp::SuiteParams params;
  params.scale = cli.scale_or(params.scale);
  runner::BenchReport report("table1_abort_ratios");

  const sim::Scheme schemes[] = {
      sim::Scheme::kLogTmSe, sim::Scheme::kFasTm, sim::Scheme::kSuv,
      sim::Scheme::kDynTm, sim::Scheme::kDynTmSuv};

  std::printf("Table I analogue: measured abort ratios per application and "
              "scheme (scale=%.2f)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"app", "contention"};
  for (sim::Scheme s : schemes) header.push_back(sim::scheme_name(s));
  rows.push_back(header);

  // One flat scheme x app matrix so the pool never drains between schemes.
  std::vector<runner::RunPoint> points;
  std::vector<std::string> names;
  for (sim::Scheme s : schemes) {
    sim::SimConfig cfg;
    cfg.scheme = s;
    for (stamp::AppId app : stamp::all_apps()) {
      points.push_back(runner::RunPoint{app, cfg, params});
      names.push_back(std::string(sim::scheme_cli_name(s)) + "/" +
                      stamp::app_name(app));
    }
  }
  runner::WallTimer timer;
  const auto flat = runner::run_matrix_cli(points, names, cli, report);
  const double wall_s = timer.seconds();

  std::vector<std::vector<runner::RunResult>> all;
  std::size_t idx = 0;
  for (std::size_t s = 0; s < std::size(schemes); ++s) {
    all.emplace_back(flat.begin() + idx,
                     flat.begin() + idx + stamp::all_apps().size());
    idx += stamp::all_apps().size();
  }
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    const bool high =
        stamp::make_workload(stamp::all_apps()[i])->high_contention();
    std::vector<std::string> row = {all[0][i].app, high ? "High" : "Low"};
    for (std::size_t s = 0; s < std::size(schemes); ++s) {
      row.push_back(
          runner::fmt_fixed(100.0 * all[s][i].htm.abort_ratio(), 1) + "%");
    }
    rows.push_back(row);
  }
  std::printf("%s\n", runner::render_table(rows).c_str());
  std::printf("paper Table I context: prior studies report abort ratios up "
              "to 75.9%% (SBCR-HTM),\n79.4%% (LiteTM) and 72-79%% "
              "(Lee-TM/TransPlant) on STAMP-class workloads, motivating\n"
              "version management that is cheap on abort as well as commit.\n");

  std::uint64_t events = 0;
  for (const auto& r : flat) events += r.sim_events;
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("runs", static_cast<std::uint64_t>(flat.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.write();
  return 0;
}
