// Table IV analogue: measured workload characteristics -- transaction
// length (cycles of committed transactional work per commit, our analogue
// of the paper's instruction counts) and contention class per application.
//
// Usage: bench_table4_workloads [scale] [--jobs N] [--check]
//            [--trace out.json] [--metrics]
#include <cstdio>
#include <cstdlib>

#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  const unsigned jobs = cli.jobs;
  stamp::SuiteParams params;
  params.scale = cli.scale_or(params.scale);
  runner::BenchReport report("table4_workloads");

  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  std::vector<runner::RunPoint> points;
  std::vector<std::string> names;
  for (stamp::AppId app : stamp::all_apps()) {
    points.push_back(runner::RunPoint{app, cfg, params});
    names.push_back(std::string("suv/") + stamp::app_name(app));
  }
  runner::WallTimer timer;
  const auto results = runner::run_matrix_cli(points, names, cli, report);
  const double wall_s = timer.seconds();

  std::printf("Table IV analogue: measured workload characteristics "
              "(SUV-TM, scale=%.2f)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"app", "commits", "avg tx length (cycles)",
                  "tx stores/commit", "abort ratio", "contention (paper)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double len = r.htm.commits
                           ? static_cast<double>(r.breakdown.get(
                                 sim::Bucket::kTrans)) /
                                 static_cast<double>(r.htm.commits)
                           : 0.0;
    const double stores =
        r.htm.commits ? static_cast<double>(r.vm.tx_stores) /
                            static_cast<double>(r.htm.commits + r.htm.aborts)
                      : 0.0;
    const bool high =
        stamp::make_workload(stamp::all_apps()[i])->high_contention();
    rows.push_back({r.app, runner::fmt_u64(r.htm.commits),
                    runner::fmt_fixed(len, 0), runner::fmt_fixed(stores, 1),
                    runner::fmt_fixed(100.0 * r.htm.abort_ratio(), 1) + "%",
                    high ? "High" : "Low"});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());
  std::printf("paper Table IV lengths (instructions): ssca2 21 < kmeans 106 "
              "< intruder 237 <\ngenome 1.7K < vacation 2.1K < yada 6.8K < "
              "bayes 43K < labyrinth 317K; the measured\ncycle lengths should "
              "preserve that ordering.\n");

  std::uint64_t events = 0;
  for (const auto& r : results) events += r.sim_events;
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("runs", static_cast<std::uint64_t>(results.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.write();
  return 0;
}
