// Table V: overflow statistics for the coarse-grained applications (bayes,
// labyrinth, yada). Compares transactional data overflows (speculative
// state leaving the L1) across schemes against SUV's redirect-table
// overflows, which the paper reports to be rare.
//
// Usage: bench_table5_overflows [scale] [--jobs N] [--check]
//            [--trace out.json] [--metrics]
#include <cstdio>
#include <cstdlib>

#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  const unsigned jobs = cli.jobs;
  stamp::SuiteParams params;
  params.scale = cli.scale_or(params.scale);
  runner::BenchReport report("table5_overflows");

  const stamp::AppId apps[] = {stamp::AppId::kBayes, stamp::AppId::kLabyrinth,
                               stamp::AppId::kYada};
  const sim::Scheme schemes[] = {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                                 sim::Scheme::kSuv};

  std::vector<runner::RunPoint> points;
  std::vector<std::string> names;
  for (stamp::AppId app : apps) {
    for (sim::Scheme s : schemes) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      points.push_back(runner::RunPoint{app, cfg, params});
      names.push_back(std::string(sim::scheme_cli_name(s)) + "/" +
                      stamp::app_name(app));
    }
  }
  runner::WallTimer timer;
  const auto results = runner::run_matrix_cli(points, names, cli, report);
  const double wall_s = timer.seconds();

  std::printf("Table V: overflow statistics for the coarse-grained "
              "applications (scale=%.2f)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"app", "scheme", "overflowed txns", "spec evictions",
                  "FasTM degenerations", "redirect-table ovfl txns",
                  "L1-table spilled entries", "commits"});
  std::size_t idx = 0;
  for (stamp::AppId app : apps) {
    (void)app;
    for (sim::Scheme s : schemes) {
      const auto& r = results[idx++];
      rows.push_back({r.app, sim::scheme_name(s),
                      runner::fmt_u64(r.htm.overflowed_attempts),
                      runner::fmt_u64(r.vm.data_overflows),
                      runner::fmt_u64(r.vm.degenerations),
                      r.has_suv ? runner::fmt_u64(r.suv.table_overflow_txns)
                                : "-",
                      r.has_suv ? runner::fmt_u64(r.table.l1_overflow_entries)
                                : "-",
                      runner::fmt_u64(r.htm.commits)});
    }
    rows.push_back({});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());
  std::printf("paper Table V shape: LogTM-SE and FasTM suffer transactional "
              "data overflow on\nthese three applications; SUV reduces data "
              "overflow and its redirect-table\noverflows are rare (only the "
              "occasional huge write-set exceeds 512 entries).\n");

  std::uint64_t events = 0;
  for (const auto& r : results) events += r.sim_events;
  report.set("jobs", jobs);
  report.set("scale", params.scale);
  report.set("runs", static_cast<std::uint64_t>(results.size()));
  report.set("wall_seconds", wall_s);
  report.set("sim_events", events);
  report.set("events_per_sec",
             wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);
  report.write();
  return 0;
}
