// Table V: overflow statistics for the coarse-grained applications (bayes,
// labyrinth, yada). Compares transactional data overflows (speculative
// state leaving the L1) across schemes against SUV's redirect-table
// overflows, which the paper reports to be rare.
//
// Usage: bench_table5_overflows [scale]
#include <cstdio>
#include <cstdlib>

#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  stamp::SuiteParams params;
  if (argc > 1) params.scale = std::atof(argv[1]);

  const stamp::AppId apps[] = {stamp::AppId::kBayes, stamp::AppId::kLabyrinth,
                               stamp::AppId::kYada};

  std::printf("Table V: overflow statistics for the coarse-grained "
              "applications (scale=%.2f)\n\n", params.scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"app", "scheme", "overflowed txns", "spec evictions",
                  "FasTM degenerations", "redirect-table ovfl txns",
                  "L1-table spilled entries", "commits"});
  for (stamp::AppId app : apps) {
    for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                          sim::Scheme::kSuv}) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      auto r = runner::run_app(app, cfg, params);
      rows.push_back({r.app, sim::scheme_name(s),
                      runner::fmt_u64(r.htm.overflowed_attempts),
                      runner::fmt_u64(r.vm.data_overflows),
                      runner::fmt_u64(r.vm.degenerations),
                      r.has_suv ? runner::fmt_u64(r.suv.table_overflow_txns)
                                : "-",
                      r.has_suv ? runner::fmt_u64(r.table.l1_overflow_entries)
                                : "-",
                      runner::fmt_u64(r.htm.commits)});
    }
    rows.push_back({});
  }
  std::printf("%s\n", runner::render_table(rows).c_str());
  std::printf("paper Table V shape: LogTM-SE and FasTM suffer transactional "
              "data overflow on\nthese three applications; SUV reduces data "
              "overflow and its redirect-table\noverflows are rare (only the "
              "occasional huge write-set exceeds 512 entries).\n");
  return 0;
}
