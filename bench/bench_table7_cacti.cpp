// Tables VI + VII: hardware-cost estimates for SUV's first-level
// fully-associative redirect table (analytical CACTI-style model calibrated
// to the paper's published anchors), plus the paper's feasibility
// arithmetic (per-core storage, whole-CMP power and area bounds).
#include <cstdio>

#include "cacti/cacti_model.hpp"
#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

int main(int argc, char** argv) {
  // No simulation here; parse so the shared flags are uniformly accepted.
  (void)runner::Cli::parse(argc, argv);
  std::printf("Table VI: contemporary processors the paper compares "
              "against\n\n");
  std::vector<std::vector<std::string>> t6;
  t6.push_back({"processor", "tech (nm)", "clock (GHz)", "cores/threads",
                "TDP (W)", "area (mm^2)"});
  for (const auto& p : cacti::contemporary_processors()) {
    t6.push_back({p.name, runner::fmt_u64(p.tech_nm),
                  runner::fmt_fixed(p.clock_ghz, 1), p.cores_threads,
                  runner::fmt_fixed(p.tdp_w, 0),
                  runner::fmt_fixed(p.area_mm2, 0)});
  }
  std::printf("%s\n", runner::render_table(t6).c_str());

  std::printf("Table VII: 512-entry fully-associative table estimates "
              "(4 KB, 64-bit entries,\nCACTI's 8-byte minimum line; real SUV "
              "entries are 22 bits, so true costs are\nat most half these "
              "numbers)\n\n");
  std::vector<std::vector<std::string>> t7;
  t7.push_back({"tech (nm)", "access (ns)", "read (nJ)", "write (nJ)",
                "area (mm^2)", "cycles @1.2GHz"});
  for (const auto& node : cacti::tech_nodes()) {
    const auto est = cacti::estimate_fa_table(node.feature_nm, 512, 64);
    t7.push_back({runner::fmt_u64(node.feature_nm),
                  runner::fmt_fixed(est.access_ns, 3),
                  runner::fmt_fixed(est.read_nj, 3),
                  runner::fmt_fixed(est.write_nj, 3),
                  runner::fmt_fixed(est.area_mm2, 3),
                  runner::fmt_u64(est.cycles_at_ghz(1.2))});
  }
  std::printf("%s\n", runner::render_table(t7).c_str());

  // Section V-C feasibility arithmetic.
  const double per_core = cacti::suv_per_core_bytes(2048, 512, 22);
  std::printf("Section V-C feasibility arithmetic:\n");
  std::printf("  per-core SUV storage: (2Kb + 2Kb + 22b x 512)/8 = %.3f KB "
              "(paper: 1.875 KB)\n", per_core / 1024.0);
  std::printf("  ... which is %.2f%% of a 32 KB L1 data cache (paper: "
              "5.86%%)\n", 100.0 * per_core / (32.0 * 1024.0));
  const double watts = cacti::max_table_power_watts(45, 16, 1.2);
  std::printf("  max table power, 16 cores @1.2GHz, 45nm: %.2f W (paper "
              "bound: 3 J/s,\n    ~1.2%% of the Rock processor's 250 W "
              "TDP => %.2f%%)\n", watts, 100.0 * watts / 250.0);
  const auto est45 = cacti::estimate_fa_table(45, 512, 64);
  const double area16 = 0.5 * 16.0 * est45.area_mm2;
  std::printf("  16-core table area at 45nm (22-bit halving): %.2f mm^2 "
              "(paper: 2.26 mm^2,\n    0.6%% of Rock's 396 mm^2 => %.2f%%)\n",
              area16, 100.0 * area16 / 396.0);
  std::printf("  access fits in one 1.2 GHz cycle at 45 nm: %s (paper: "
              "yes)\n", est45.cycles_at_ghz(1.2) == 1 ? "yes" : "NO");

  // Scaling queries the analytical model supports beyond the paper.
  std::printf("\nmodel extrapolation: 1024-entry, 22-bit table at 32 nm:\n");
  const auto ext = cacti::estimate_fa_table(32, 1024, 22);
  std::printf("  access %.3f ns, read %.3f nJ, area %.3f mm^2\n",
              ext.access_ns, ext.read_nj, ext.area_mm2);
  return 0;
}
