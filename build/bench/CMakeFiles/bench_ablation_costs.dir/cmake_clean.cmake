file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_costs.dir/bench_ablation_costs.cpp.o"
  "CMakeFiles/bench_ablation_costs.dir/bench_ablation_costs.cpp.o.d"
  "bench_ablation_costs"
  "bench_ablation_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
