file(REMOVE_RECURSE
  "CMakeFiles/bench_config_tables.dir/bench_config_tables.cpp.o"
  "CMakeFiles/bench_config_tables.dir/bench_config_tables.cpp.o.d"
  "bench_config_tables"
  "bench_config_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_config_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
