# Empty dependencies file for bench_config_tables.
# This may be replaced when dependencies are built.
