file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pathologies.dir/bench_fig1_pathologies.cpp.o"
  "CMakeFiles/bench_fig1_pathologies.dir/bench_fig1_pathologies.cpp.o.d"
  "bench_fig1_pathologies"
  "bench_fig1_pathologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pathologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
