file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_l1_table.dir/bench_fig7_l1_table.cpp.o"
  "CMakeFiles/bench_fig7_l1_table.dir/bench_fig7_l1_table.cpp.o.d"
  "bench_fig7_l1_table"
  "bench_fig7_l1_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_l1_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
