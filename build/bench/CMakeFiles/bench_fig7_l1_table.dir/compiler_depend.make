# Empty compiler generated dependencies file for bench_fig7_l1_table.
# This may be replaced when dependencies are built.
