# Empty compiler generated dependencies file for bench_fig8_l2_table.
# This may be replaced when dependencies are built.
