file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dyntm.dir/bench_fig9_dyntm.cpp.o"
  "CMakeFiles/bench_fig9_dyntm.dir/bench_fig9_dyntm.cpp.o.d"
  "bench_fig9_dyntm"
  "bench_fig9_dyntm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dyntm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
