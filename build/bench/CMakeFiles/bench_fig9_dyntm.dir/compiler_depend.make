# Empty compiler generated dependencies file for bench_fig9_dyntm.
# This may be replaced when dependencies are built.
