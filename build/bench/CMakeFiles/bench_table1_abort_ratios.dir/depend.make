# Empty dependencies file for bench_table1_abort_ratios.
# This may be replaced when dependencies are built.
