file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_overflows.dir/bench_table5_overflows.cpp.o"
  "CMakeFiles/bench_table5_overflows.dir/bench_table5_overflows.cpp.o.d"
  "bench_table5_overflows"
  "bench_table5_overflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_overflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
