# Empty compiler generated dependencies file for bench_table5_overflows.
# This may be replaced when dependencies are built.
