file(REMOVE_RECURSE
  "CMakeFiles/counter_contention.dir/counter_contention.cpp.o"
  "CMakeFiles/counter_contention.dir/counter_contention.cpp.o.d"
  "counter_contention"
  "counter_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
