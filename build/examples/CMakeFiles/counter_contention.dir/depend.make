# Empty dependencies file for counter_contention.
# This may be replaced when dependencies are built.
