file(REMOVE_RECURSE
  "CMakeFiles/redirect_inspector.dir/redirect_inspector.cpp.o"
  "CMakeFiles/redirect_inspector.dir/redirect_inspector.cpp.o.d"
  "redirect_inspector"
  "redirect_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redirect_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
