# Empty compiler generated dependencies file for redirect_inspector.
# This may be replaced when dependencies are built.
