file(REMOVE_RECURSE
  "CMakeFiles/stamp_explorer.dir/stamp_explorer.cpp.o"
  "CMakeFiles/stamp_explorer.dir/stamp_explorer.cpp.o.d"
  "stamp_explorer"
  "stamp_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
