# Empty dependencies file for stamp_explorer.
# This may be replaced when dependencies are built.
