
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cacti/cacti_model.cpp" "src/CMakeFiles/suvtm.dir/cacti/cacti_model.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/cacti/cacti_model.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/suvtm.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/suvtm.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/suvtm.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/common/stats.cpp.o.d"
  "/root/repo/src/htm/conflict_manager.cpp" "src/CMakeFiles/suvtm.dir/htm/conflict_manager.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/htm/conflict_manager.cpp.o.d"
  "/root/repo/src/htm/htm_system.cpp" "src/CMakeFiles/suvtm.dir/htm/htm_system.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/htm/htm_system.cpp.o.d"
  "/root/repo/src/htm/signature.cpp" "src/CMakeFiles/suvtm.dir/htm/signature.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/htm/signature.cpp.o.d"
  "/root/repo/src/htm/txn.cpp" "src/CMakeFiles/suvtm.dir/htm/txn.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/htm/txn.cpp.o.d"
  "/root/repo/src/mem/backing_store.cpp" "src/CMakeFiles/suvtm.dir/mem/backing_store.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/mem/backing_store.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/suvtm.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/directory.cpp" "src/CMakeFiles/suvtm.dir/mem/directory.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/mem/directory.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/CMakeFiles/suvtm.dir/mem/memory_system.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/mem/memory_system.cpp.o.d"
  "/root/repo/src/mem/mesh.cpp" "src/CMakeFiles/suvtm.dir/mem/mesh.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/mem/mesh.cpp.o.d"
  "/root/repo/src/mem/tlb.cpp" "src/CMakeFiles/suvtm.dir/mem/tlb.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/mem/tlb.cpp.o.d"
  "/root/repo/src/runner/experiment.cpp" "src/CMakeFiles/suvtm.dir/runner/experiment.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/runner/experiment.cpp.o.d"
  "/root/repo/src/runner/tables.cpp" "src/CMakeFiles/suvtm.dir/runner/tables.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/runner/tables.cpp.o.d"
  "/root/repo/src/sim/barrier.cpp" "src/CMakeFiles/suvtm.dir/sim/barrier.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/sim/barrier.cpp.o.d"
  "/root/repo/src/sim/breakdown.cpp" "src/CMakeFiles/suvtm.dir/sim/breakdown.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/sim/breakdown.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/suvtm.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/suvtm.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/thread_context.cpp" "src/CMakeFiles/suvtm.dir/sim/thread_context.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/sim/thread_context.cpp.o.d"
  "/root/repo/src/stamp/app_bayes.cpp" "src/CMakeFiles/suvtm.dir/stamp/app_bayes.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/app_bayes.cpp.o.d"
  "/root/repo/src/stamp/app_genome.cpp" "src/CMakeFiles/suvtm.dir/stamp/app_genome.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/app_genome.cpp.o.d"
  "/root/repo/src/stamp/app_intruder.cpp" "src/CMakeFiles/suvtm.dir/stamp/app_intruder.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/app_intruder.cpp.o.d"
  "/root/repo/src/stamp/app_kmeans.cpp" "src/CMakeFiles/suvtm.dir/stamp/app_kmeans.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/app_kmeans.cpp.o.d"
  "/root/repo/src/stamp/app_labyrinth.cpp" "src/CMakeFiles/suvtm.dir/stamp/app_labyrinth.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/app_labyrinth.cpp.o.d"
  "/root/repo/src/stamp/app_ssca2.cpp" "src/CMakeFiles/suvtm.dir/stamp/app_ssca2.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/app_ssca2.cpp.o.d"
  "/root/repo/src/stamp/app_vacation.cpp" "src/CMakeFiles/suvtm.dir/stamp/app_vacation.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/app_vacation.cpp.o.d"
  "/root/repo/src/stamp/app_yada.cpp" "src/CMakeFiles/suvtm.dir/stamp/app_yada.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/app_yada.cpp.o.d"
  "/root/repo/src/stamp/framework.cpp" "src/CMakeFiles/suvtm.dir/stamp/framework.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/framework.cpp.o.d"
  "/root/repo/src/stamp/sim_ds.cpp" "src/CMakeFiles/suvtm.dir/stamp/sim_ds.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/stamp/sim_ds.cpp.o.d"
  "/root/repo/src/suv/pool.cpp" "src/CMakeFiles/suvtm.dir/suv/pool.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/suv/pool.cpp.o.d"
  "/root/repo/src/suv/redirect_entry.cpp" "src/CMakeFiles/suvtm.dir/suv/redirect_entry.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/suv/redirect_entry.cpp.o.d"
  "/root/repo/src/suv/redirect_table.cpp" "src/CMakeFiles/suvtm.dir/suv/redirect_table.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/suv/redirect_table.cpp.o.d"
  "/root/repo/src/suv/summary_signature.cpp" "src/CMakeFiles/suvtm.dir/suv/summary_signature.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/suv/summary_signature.cpp.o.d"
  "/root/repo/src/vm/dyntm.cpp" "src/CMakeFiles/suvtm.dir/vm/dyntm.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/vm/dyntm.cpp.o.d"
  "/root/repo/src/vm/factory.cpp" "src/CMakeFiles/suvtm.dir/vm/factory.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/vm/factory.cpp.o.d"
  "/root/repo/src/vm/fastm.cpp" "src/CMakeFiles/suvtm.dir/vm/fastm.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/vm/fastm.cpp.o.d"
  "/root/repo/src/vm/logtm_se.cpp" "src/CMakeFiles/suvtm.dir/vm/logtm_se.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/vm/logtm_se.cpp.o.d"
  "/root/repo/src/vm/suv_vm.cpp" "src/CMakeFiles/suvtm.dir/vm/suv_vm.cpp.o" "gcc" "src/CMakeFiles/suvtm.dir/vm/suv_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
