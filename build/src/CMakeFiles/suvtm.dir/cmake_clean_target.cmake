file(REMOVE_RECURSE
  "libsuvtm.a"
)
