# Empty compiler generated dependencies file for suvtm.
# This may be replaced when dependencies are built.
