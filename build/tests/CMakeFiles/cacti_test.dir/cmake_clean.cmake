file(REMOVE_RECURSE
  "CMakeFiles/cacti_test.dir/cacti_test.cpp.o"
  "CMakeFiles/cacti_test.dir/cacti_test.cpp.o.d"
  "cacti_test"
  "cacti_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cacti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
