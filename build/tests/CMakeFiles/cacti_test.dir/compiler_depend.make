# Empty compiler generated dependencies file for cacti_test.
# This may be replaced when dependencies are built.
