file(REMOVE_RECURSE
  "CMakeFiles/conflict_manager_test.dir/conflict_manager_test.cpp.o"
  "CMakeFiles/conflict_manager_test.dir/conflict_manager_test.cpp.o.d"
  "conflict_manager_test"
  "conflict_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
