# Empty compiler generated dependencies file for conflict_manager_test.
# This may be replaced when dependencies are built.
