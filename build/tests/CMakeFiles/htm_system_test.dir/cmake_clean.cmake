file(REMOVE_RECURSE
  "CMakeFiles/htm_system_test.dir/htm_system_test.cpp.o"
  "CMakeFiles/htm_system_test.dir/htm_system_test.cpp.o.d"
  "htm_system_test"
  "htm_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
