file(REMOVE_RECURSE
  "CMakeFiles/redirect_entry_test.dir/redirect_entry_test.cpp.o"
  "CMakeFiles/redirect_entry_test.dir/redirect_entry_test.cpp.o.d"
  "redirect_entry_test"
  "redirect_entry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redirect_entry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
