file(REMOVE_RECURSE
  "CMakeFiles/redirect_table_test.dir/redirect_table_test.cpp.o"
  "CMakeFiles/redirect_table_test.dir/redirect_table_test.cpp.o.d"
  "redirect_table_test"
  "redirect_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redirect_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
