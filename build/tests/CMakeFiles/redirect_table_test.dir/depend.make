# Empty dependencies file for redirect_table_test.
# This may be replaced when dependencies are built.
