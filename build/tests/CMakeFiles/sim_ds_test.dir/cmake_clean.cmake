file(REMOVE_RECURSE
  "CMakeFiles/sim_ds_test.dir/sim_ds_test.cpp.o"
  "CMakeFiles/sim_ds_test.dir/sim_ds_test.cpp.o.d"
  "sim_ds_test"
  "sim_ds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
