# Empty compiler generated dependencies file for sim_ds_test.
# This may be replaced when dependencies are built.
