file(REMOVE_RECURSE
  "CMakeFiles/summary_signature_test.dir/summary_signature_test.cpp.o"
  "CMakeFiles/summary_signature_test.dir/summary_signature_test.cpp.o.d"
  "summary_signature_test"
  "summary_signature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
