# Empty compiler generated dependencies file for summary_signature_test.
# This may be replaced when dependencies are built.
