file(REMOVE_RECURSE
  "CMakeFiles/suv_operations_test.dir/suv_operations_test.cpp.o"
  "CMakeFiles/suv_operations_test.dir/suv_operations_test.cpp.o.d"
  "suv_operations_test"
  "suv_operations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suv_operations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
