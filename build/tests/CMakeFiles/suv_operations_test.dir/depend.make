# Empty dependencies file for suv_operations_test.
# This may be replaced when dependencies are built.
