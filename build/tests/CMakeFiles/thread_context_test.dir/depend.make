# Empty dependencies file for thread_context_test.
# This may be replaced when dependencies are built.
