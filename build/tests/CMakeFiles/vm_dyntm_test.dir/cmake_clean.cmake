file(REMOVE_RECURSE
  "CMakeFiles/vm_dyntm_test.dir/vm_dyntm_test.cpp.o"
  "CMakeFiles/vm_dyntm_test.dir/vm_dyntm_test.cpp.o.d"
  "vm_dyntm_test"
  "vm_dyntm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_dyntm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
