# Empty dependencies file for vm_dyntm_test.
# This may be replaced when dependencies are built.
