file(REMOVE_RECURSE
  "CMakeFiles/vm_fastm_test.dir/vm_fastm_test.cpp.o"
  "CMakeFiles/vm_fastm_test.dir/vm_fastm_test.cpp.o.d"
  "vm_fastm_test"
  "vm_fastm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_fastm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
