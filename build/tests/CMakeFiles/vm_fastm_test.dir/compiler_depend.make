# Empty compiler generated dependencies file for vm_fastm_test.
# This may be replaced when dependencies are built.
