file(REMOVE_RECURSE
  "CMakeFiles/vm_logtm_test.dir/vm_logtm_test.cpp.o"
  "CMakeFiles/vm_logtm_test.dir/vm_logtm_test.cpp.o.d"
  "vm_logtm_test"
  "vm_logtm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_logtm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
