file(REMOVE_RECURSE
  "CMakeFiles/vm_suv_test.dir/vm_suv_test.cpp.o"
  "CMakeFiles/vm_suv_test.dir/vm_suv_test.cpp.o.d"
  "vm_suv_test"
  "vm_suv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_suv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
