# Empty dependencies file for vm_suv_test.
# This may be replaced when dependencies are built.
