// Contention explorer: sweeps the number of independent counters from 1
// (every thread fights over one line) to 64 (almost no conflicts) and shows
// how each version-management scheme's execution time and abort ratio react.
// This is the paper's isolation-window story in its purest form.
//
//   $ ./build/examples/counter_contention [iters-per-thread]
#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hpp"
#include "stamp/framework.hpp"

using namespace suvtm;

namespace {

sim::ThreadTask worker(sim::ThreadContext& tc, Addr counters, int n,
                       sim::Barrier& bar, int iters) {
  co_await tc.barrier(bar);
  Rng& rng = tc.rng();
  for (int i = 0; i < iters; ++i) {
    const Addr target = counters + rng.below(n) * kLineBytes;
    co_await stamp::atomically(tc, 1,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const std::uint64_t v = co_await t.load(target);
      co_await t.compute(10);
      co_await t.store(target, v + 1);
    });
    co_await tc.compute(40);
  }
  co_await tc.barrier(bar);
}

struct Cell {
  Cycle makespan;
  double abort_ratio;
};

Cell run(sim::Scheme scheme, int counters, int iters) {
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  sim::Simulator sim(cfg);
  const Addr base = 0x10000;
  auto& bar = sim.make_barrier(sim.num_cores());
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, worker(sim.context(c), base, counters, bar, iters));
  }
  sim.run();
  // Sanity: the sum of all counters must equal the total increments.
  std::uint64_t sum = 0;
  for (int i = 0; i < counters; ++i) {
    sum += sim.read_word_resolved(base + i * kLineBytes);
  }
  const std::uint64_t expect =
      static_cast<std::uint64_t>(iters) * sim.num_cores();
  if (sum != expect) {
    std::fprintf(stderr, "ATOMICITY VIOLATION: %llu != %llu\n",
                 static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(expect));
    std::exit(1);
  }
  return {sim.makespan(), sim.htm().stats().abort_ratio()};
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 100;
  const sim::Scheme schemes[] = {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                                 sim::Scheme::kSuv, sim::Scheme::kDynTm,
                                 sim::Scheme::kDynTmSuv};

  std::printf("16 threads x %d transactional increments, spread over N "
              "counters (one per line).\nCells: makespan cycles "
              "(abort%%).\n\n%-10s", iters, "counters");
  for (auto s : schemes) std::printf("  %20s", sim::scheme_name(s));
  std::printf("\n");
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    std::printf("%-10d", n);
    for (auto s : schemes) {
      const Cell c = run(s, n, iters);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu (%.0f%%)",
                    static_cast<unsigned long long>(c.makespan),
                    100.0 * c.abort_ratio);
      std::printf("  %20s", buf);
    }
    std::printf("\n");
  }
  std::printf("\nreading guide: with few counters every scheme serializes, "
              "but LogTM-SE's\nsoftware abort walks hold isolation longest; "
              "SUV's flash commit/abort\nreleases it first (the paper's "
              "narrowed isolation window).\n");
  return 0;
}
