// Contention explorer: sweeps the number of independent counters from 1
// (every thread fights over one line) to 64 (almost no conflicts) and shows
// how each version-management scheme's execution time and abort ratio react.
// This is the paper's isolation-window story in its purest form.
//
//   $ ./build/examples/counter_contention [iters-per-thread] [--check]
//       [--trace out.json]   (exports every cell's timeline in one file)
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "obs/chrome_trace.hpp"
#include "runner/cli.hpp"
#include "stamp/framework.hpp"

using namespace suvtm;

namespace {

sim::ThreadTask worker(sim::ThreadContext& tc, Addr counters, int n,
                       sim::Barrier& bar, int iters) {
  co_await tc.barrier(bar);
  Rng& rng = tc.rng();
  for (int i = 0; i < iters; ++i) {
    const Addr target = counters + rng.below(n) * kLineBytes;
    co_await stamp::atomically(tc, 1,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const std::uint64_t v = co_await t.load(target);
      co_await t.compute(10);
      co_await t.store(target, v + 1);
    });
    co_await tc.compute(40);
  }
  co_await tc.barrier(bar);
}

struct Cell {
  Cycle makespan;
  double abort_ratio;
};

Cell run(const runner::Cli& cli, sim::Scheme scheme, int counters, int iters,
         std::vector<std::pair<std::string, obs::TraceData>>* traces) {
  api::RunHandle h = api::SimBuilder().scheme(scheme).apply(cli).build();
  const Addr base = 0x10000;
  auto& bar = h.make_barrier(h.num_cores());
  for (CoreId c = 0; c < h.num_cores(); ++c) {
    h.spawn(c, worker(h.context(c), base, counters, bar, iters));
  }
  h.run();
  // Sanity: the sum of all counters must equal the total increments.
  std::uint64_t sum = 0;
  for (int i = 0; i < counters; ++i) {
    sum += h.word(base + i * kLineBytes);
  }
  const std::uint64_t expect =
      static_cast<std::uint64_t>(iters) * h.num_cores();
  if (sum != expect) {
    std::fprintf(stderr, "ATOMICITY VIOLATION: %llu != %llu\n",
                 static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(expect));
    std::exit(1);
  }
  if (traces) {
    traces->emplace_back(std::to_string(counters) + "ctr/" +
                             sim::scheme_name(scheme),
                         h.trace());
  }
  return {h.makespan(), h.htm_stats().abort_ratio()};
}

}  // namespace

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);
  const int iters = static_cast<int>(cli.scale_or(100));

  std::vector<std::pair<std::string, obs::TraceData>> traces;
  std::printf("16 threads x %d transactional increments, spread over N "
              "counters (one per line).\nCells: makespan cycles "
              "(abort%%).\n\n%-10s", iters, "counters");
  for (auto s : sim::all_schemes()) std::printf("  %20s", sim::scheme_name(s));
  std::printf("\n");
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    std::printf("%-10d", n);
    for (auto s : sim::all_schemes()) {
      const Cell c =
          run(cli, s, n, iters, cli.tracing() ? &traces : nullptr);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu (%.0f%%)",
                    static_cast<unsigned long long>(c.makespan),
                    100.0 * c.abort_ratio);
      std::printf("  %20s", buf);
    }
    std::printf("\n");
  }
  if (cli.tracing()) {
    std::vector<obs::NamedTrace> named;
    named.reserve(traces.size());
    for (const auto& [name, data] : traces) named.push_back({name, &data});
    if (obs::write_chrome_trace(cli.trace_path, named)) {
      std::printf("\ntrace written to %s (open in ui.perfetto.dev)\n",
                  cli.trace_path.c_str());
    }
  }
  std::printf("\nreading guide: with few counters every scheme serializes, "
              "but LogTM-SE's\nsoftware abort walks hold isolation longest; "
              "SUV's flash commit/abort\nreleases it first (the paper's "
              "narrowed isolation window).\n");
  return 0;
}
