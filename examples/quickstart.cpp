// Quickstart: write a tiny transactional workload against the public API,
// run it on the simulated 16-core CMP under SUV version management, and
// print what happened. With --trace the run exports a Chrome/Perfetto JSON
// timeline; with --metrics it prints the uniform metrics namespace.
//
//   $ ./build/examples/quickstart [scheme] [--trace out.json] [--metrics]
//     scheme: logtm | fastm | suv | dyntm | dyntm-suv   (default: suv)
#include <cstdio>
#include <stdexcept>
#include <string>

#include "api/api.hpp"
#include "runner/cli.hpp"
#include "stamp/framework.hpp"

using namespace suvtm;

namespace {

// Shared state: 4 counters, each on its own cache line, plus one hot
// counter every thread fights over.
struct Shared {
  Addr counters;  // 4 lines
  Addr hot;       // 1 line
};

sim::ThreadTask worker(sim::ThreadContext& tc, const Shared& s,
                       sim::Barrier& bar, int iters) {
  co_await tc.barrier(bar);
  for (int i = 0; i < iters; ++i) {
    // A small transaction: bump one striped counter and the hot counter.
    co_await stamp::atomically(tc, /*site=*/1,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const Addr mine = s.counters + (tc.core() % 4) * kLineBytes;
      const std::uint64_t v = co_await t.load(mine);
      co_await t.store(mine, v + 1);
      const std::uint64_t h = co_await t.load(s.hot);
      co_await t.store(s.hot, h + 1);
    });
    co_await tc.compute(50);  // non-transactional work between transactions
  }
  co_await tc.barrier(bar);
}

}  // namespace

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);

  api::SimBuilder builder;  // defaults reproduce the paper's Table III
  builder.apply(cli);
  try {
    builder.scheme(cli.arg_or(0, "suv"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 1;
  }
  const char* scheme = sim::scheme_name(builder.config().scheme);

  api::RunHandle h = builder.build();
  Shared s;
  s.counters = 0x10000;
  s.hot = 0x10000 + 4 * kLineBytes;

  constexpr int kIters = 200;
  auto& bar = h.make_barrier(h.num_cores());
  for (CoreId c = 0; c < h.num_cores(); ++c) {
    h.spawn(c, worker(h.context(c), s, bar, kIters));
  }
  h.run();

  const std::uint64_t expect =
      static_cast<std::uint64_t>(kIters) * h.num_cores();
  std::uint64_t got = 0;
  for (int i = 0; i < 4; ++i) {
    got += h.word(s.counters + i * kLineBytes);
  }
  const std::uint64_t hot = h.word(s.hot);

  const auto& hs = h.htm_stats();
  std::printf("scheme          : %s\n", scheme);
  std::printf("makespan        : %llu cycles\n",
              static_cast<unsigned long long>(h.makespan()));
  std::printf("commits/aborts  : %llu / %llu  (abort ratio %.1f%%)\n",
              static_cast<unsigned long long>(hs.commits),
              static_cast<unsigned long long>(hs.aborts),
              100.0 * hs.abort_ratio());
  std::printf("striped counters: %llu (expected %llu)\n",
              static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(expect));
  std::printf("hot counter     : %llu (expected %llu)\n",
              static_cast<unsigned long long>(hot),
              static_cast<unsigned long long>(expect));

  if (cli.metrics) {
    const runner::RunResult r = h.result("quickstart");
    std::printf("\nmetrics:\n");
    for (const auto& [name, v] : r.metrics.scalars) {
      std::printf("  %-40s %g\n", name.c_str(), v);
    }
  }
  if (cli.tracing()) {
    if (h.write_trace(cli.trace_path, std::string("quickstart/") + scheme)) {
      std::printf("\ntrace written to %s (open in ui.perfetto.dev)\n",
                  cli.trace_path.c_str());
    } else {
      std::fprintf(stderr, "quickstart: could not write %s\n",
                   cli.trace_path.c_str());
    }
  }

  if (got != expect || hot != expect) {
    std::printf("FAIL: atomicity violated\n");
    return 1;
  }
  std::printf("OK: all updates atomic and isolated\n");
  return 0;
}
