// Quickstart: write a tiny transactional workload against the public API,
// run it on the simulated 16-core CMP under SUV version management, and
// print what happened.
//
//   $ ./build/examples/quickstart [logtm|fastm|suv|dyntm|dyntm+suv]
#include <cstdio>
#include <cstring>
#include <string>

#include "sim/simulator.hpp"
#include "stamp/framework.hpp"

using namespace suvtm;

namespace {

// Shared state: 4 counters, each on its own cache line, plus one hot
// counter every thread fights over.
struct Shared {
  Addr counters;  // 4 lines
  Addr hot;       // 1 line
};

sim::ThreadTask worker(sim::ThreadContext& tc, const Shared& s,
                       sim::Barrier& bar, int iters) {
  co_await tc.barrier(bar);
  for (int i = 0; i < iters; ++i) {
    // A small transaction: bump one striped counter and the hot counter.
    co_await stamp::atomically(tc, /*site=*/1,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const Addr mine = s.counters + (tc.core() % 4) * kLineBytes;
      const std::uint64_t v = co_await t.load(mine);
      co_await t.store(mine, v + 1);
      const std::uint64_t h = co_await t.load(s.hot);
      co_await t.store(s.hot, h + 1);
    });
    co_await tc.compute(50);  // non-transactional work between transactions
  }
  co_await tc.barrier(bar);
}

sim::Scheme parse_scheme(const char* s) {
  if (!std::strcmp(s, "logtm")) return sim::Scheme::kLogTmSe;
  if (!std::strcmp(s, "fastm")) return sim::Scheme::kFasTm;
  if (!std::strcmp(s, "dyntm")) return sim::Scheme::kDynTm;
  if (!std::strcmp(s, "dyntm+suv")) return sim::Scheme::kDynTmSuv;
  return sim::Scheme::kSuv;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SimConfig cfg;  // defaults reproduce the paper's Table III
  cfg.scheme = argc > 1 ? parse_scheme(argv[1]) : sim::Scheme::kSuv;

  sim::Simulator sim(cfg);
  Shared s;
  s.counters = 0x10000;
  s.hot = 0x10000 + 4 * kLineBytes;

  constexpr int kIters = 200;
  auto& bar = sim.make_barrier(sim.num_cores());
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, worker(sim.context(c), s, bar, kIters));
  }
  sim.run();

  const std::uint64_t expect =
      static_cast<std::uint64_t>(kIters) * sim.num_cores();
  std::uint64_t got = 0;
  for (int i = 0; i < 4; ++i) {
    got += sim.mem().load_word(s.counters + i * kLineBytes);
  }
  const std::uint64_t hot = sim.mem().load_word(s.hot);

  const auto& h = sim.htm().stats();
  std::printf("scheme          : %s\n", sim::scheme_name(cfg.scheme));
  std::printf("makespan        : %llu cycles\n",
              static_cast<unsigned long long>(sim.makespan()));
  std::printf("commits/aborts  : %llu / %llu  (abort ratio %.1f%%)\n",
              static_cast<unsigned long long>(h.commits),
              static_cast<unsigned long long>(h.aborts),
              100.0 * h.abort_ratio());
  std::printf("striped counters: %llu (expected %llu)\n",
              static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(expect));
  std::printf("hot counter     : %llu (expected %llu)\n",
              static_cast<unsigned long long>(hot),
              static_cast<unsigned long long>(expect));
  if (got != expect || hot != expect) {
    std::printf("FAIL: atomicity violated\n");
    return 1;
  }
  std::printf("OK: all updates atomic and isolated\n");
  return 0;
}
