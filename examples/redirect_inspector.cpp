// Redirect inspector: walks a single shared line through SUV's complete
// entry lifecycle -- fresh redirect, commit-publication, toggle-back,
// toggle-commit deletion, and abort-revert -- printing the redirect entry's
// state and both memory locations at each step. A narrated version of the
// paper's Figure 4.
//
//   $ ./build/examples/redirect_inspector
#include <cstdio>

#include "api/api.hpp"
#include "stamp/framework.hpp"
#include "suv/redirect_entry.hpp"
#include "vm/suv_vm.hpp"

using namespace suvtm;

namespace {

constexpr Addr kVar = 0x10000;  // the shared variable under inspection

void show(sim::Simulator& sim, vm::SuvVm& vm, const char* step) {
  const suv::RedirectEntry* e = vm.table().find(line_of(kVar));
  std::printf("%-34s", step);
  if (!e) {
    std::printf("entry: none                     value@original=%llu\n",
                static_cast<unsigned long long>(sim.mem().load_word(kVar)));
    return;
  }
  std::printf("entry: %-24s original=%llu target=%llu resolved=%llu\n",
              suv::entry_state_name(e->state),
              static_cast<unsigned long long>(sim.mem().load_word(kVar)),
              static_cast<unsigned long long>(
                  sim.mem().load_word(addr_of_line(e->target) | (kVar & 63))),
              static_cast<unsigned long long>(sim.read_word_resolved(kVar)));
}

sim::ThreadTask scenario(sim::ThreadContext& tc, sim::Simulator& sim,
                         vm::SuvVm& vm) {
  show(sim, vm, "initial (value 7)");

  // 1. Fresh redirect: a transaction stores 42.
  co_await tc.tx_begin(1);
  co_await tc.store(kVar, 42);
  show(sim, vm, "in txn #1 after store 42");
  co_await tc.tx_commit();
  show(sim, vm, "txn #1 committed (published)");

  // 2. Toggle: a second transaction stores 99 to the redirected line.
  co_await tc.tx_begin(2);
  co_await tc.store(kVar, 99);
  show(sim, vm, "in txn #2 after store 99");
  co_await tc.tx_commit();
  show(sim, vm, "txn #2 committed (entry deleted)");

  // 3. Abort: a third transaction stores 123 but aborts.
  bool aborted = false;
  try {
    co_await tc.tx_begin(3);
    co_await tc.store(kVar, 123);
    show(sim, vm, "in txn #3 after store 123");
    // Self-inflicted abort via doom: model an incoming conflict.
    sim.htm().doom(tc.core());
    co_await tc.tx_commit();
  } catch (const sim::TxAbort&) {
    aborted = true;
  }
  show(sim, vm, aborted ? "txn #3 aborted (reverted)" : "txn #3 ???");
}

}  // namespace

int main() {
  api::RunHandle h = api::SimBuilder().scheme(sim::Scheme::kSuv).build();
  sim::Simulator& sim = h.sim();
  auto* vm = dynamic_cast<vm::SuvVm*>(&sim.htm().vm());
  if (!vm) return 1;

  h.poke_word(kVar, 7);
  std::printf("SUV redirect-entry lifecycle for one shared variable "
              "(paper Figure 4):\n\n");
  h.spawn(0, scenario(sim.context(0), sim, *vm));
  h.run();

  const auto& s = vm->suv_stats();
  std::printf("\nentry statistics: %llu created, %llu toggled, %llu "
              "published, %llu deleted, %llu discarded\n",
              static_cast<unsigned long long>(s.entries_created),
              static_cast<unsigned long long>(s.entries_toggled),
              static_cast<unsigned long long>(s.entries_published),
              static_cast<unsigned long long>(s.entries_deleted),
              static_cast<unsigned long long>(s.entries_discarded));
  std::printf("final value: %llu (expected 99: txn #3's 123 rolled back)\n",
              static_cast<unsigned long long>(h.word(kVar)));
  return h.word(kVar) == 99 ? 0 : 1;
}
