// STAMP explorer: run any application under any scheme with adjustable
// scale/seed and print the full statistics harvest -- the repository's
// one-stop CLI for poking at the reproduction.
//
//   $ ./build/examples/stamp_explorer <app> <scheme> [scale] [seed]
//       [--check] [--metrics] [--trace out.json]
//   $ ./build/examples/stamp_explorer yada suv 1.0 42 --metrics
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/api.hpp"
#include "obs/chrome_trace.hpp"
#include "runner/cli.hpp"
#include "runner/tables.hpp"

using namespace suvtm;

namespace {

void usage() {
  std::printf("usage: stamp_explorer <app> <scheme> [scale] [seed]\n"
              "           [--check] [--metrics] [--trace out.json]\n");
  std::printf("  apps   : ");
  for (auto a : stamp::all_apps()) std::printf("%s ", stamp::app_name(a));
  std::printf("\n  schemes:");
  for (const auto& row : sim::scheme_table()) std::printf(" %s", row.cli_name);
  std::printf("\n");
}

bool parse_app(const std::string& s, stamp::AppId* out) {
  for (auto a : stamp::all_apps()) {
    if (s == stamp::app_name(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const runner::Cli cli = runner::Cli::parse(argc, argv);

  stamp::AppId app = stamp::AppId::kGenome;
  sim::Scheme scheme = sim::Scheme::kSuv;
  stamp::SuiteParams params;
  if (cli.args.size() < 2 || !parse_app(cli.args[0], &app) ||
      !sim::scheme_from_string(cli.args[1], &scheme)) {
    usage();
    return cli.args.empty() ? 0 : 1;
  }
  params.scale = cli.scale_or(params.scale);
  if (cli.args.size() > 2) {
    params.seed = std::strtoull(cli.args[2].c_str(), nullptr, 10);
  }

  api::SimBuilder builder;
  builder.scheme(scheme).apply(cli);
  obs::TraceData trace;
  const auto r = builder.run(app, params, &trace);

  std::printf("app=%s scheme=%s scale=%.2f seed=%llu\n\n", r.app.c_str(),
              sim::scheme_name(r.scheme), params.scale,
              static_cast<unsigned long long>(params.seed));
  std::printf("makespan        : %llu cycles (%.3f ms at 1.2 GHz)\n",
              static_cast<unsigned long long>(r.makespan),
              static_cast<double>(r.makespan) / 1.2e6);
  std::printf("commits/aborts  : %llu / %llu (abort ratio %.1f%%)\n",
              static_cast<unsigned long long>(r.htm.commits),
              static_cast<unsigned long long>(r.htm.aborts),
              100.0 * r.htm.abort_ratio());
  std::printf("conflicts       : %llu (%.0f%% false), deadlock aborts %llu\n",
              static_cast<unsigned long long>(r.conflicts.conflicts),
              100.0 * static_cast<double>(r.conflicts.false_conflicts) /
                  static_cast<double>(
                      std::max<std::uint64_t>(1, r.conflicts.conflicts)),
              static_cast<unsigned long long>(r.conflicts.deadlock_aborts));

  std::printf("\nexecution-time breakdown (cycles summed over 16 cores):\n");
  for (std::size_t i = 0; i < sim::kNumBuckets; ++i) {
    const auto b = static_cast<sim::Bucket>(i);
    std::printf("  %-11s %12llu (%5.1f%%)\n", sim::bucket_name(b),
                static_cast<unsigned long long>(r.breakdown.get(b)),
                100.0 * static_cast<double>(r.breakdown.get(b)) /
                    static_cast<double>(r.breakdown.total()));
  }

  std::printf("\nmemory system: L1 %llu/%llu hits/misses, L2 misses %llu, "
              "writebacks %llu,\n  invalidations %llu, forwards %llu, "
              "speculative evictions %llu\n",
              static_cast<unsigned long long>(r.mem.l1_hits),
              static_cast<unsigned long long>(r.mem.l1_misses),
              static_cast<unsigned long long>(r.mem.l2_misses),
              static_cast<unsigned long long>(r.mem.writebacks),
              static_cast<unsigned long long>(r.mem.invalidations),
              static_cast<unsigned long long>(r.mem.forwards),
              static_cast<unsigned long long>(r.mem.spec_evictions));
  std::printf("version mgmt : %llu tx stores, %llu log entries, %llu data "
              "overflows, %llu degenerations\n",
              static_cast<unsigned long long>(r.vm.tx_stores),
              static_cast<unsigned long long>(r.vm.log_entries),
              static_cast<unsigned long long>(r.vm.data_overflows),
              static_cast<unsigned long long>(r.vm.degenerations));

  if (r.has_dyntm) {
    std::printf("DynTM        : %llu eager / %llu lazy txns, %llu "
                "commit-time dooms, %llu redo overflows\n",
                static_cast<unsigned long long>(r.dyntm.eager_txns),
                static_cast<unsigned long long>(r.dyntm.lazy_txns),
                static_cast<unsigned long long>(r.dyntm.lazy_commit_dooms),
                static_cast<unsigned long long>(r.dyntm.redo_overflows));
  }
  if (r.has_suv) {
    std::printf("\nSUV redirect table:\n");
    std::printf("  entries: %llu created, %llu toggled, %llu published, "
                "%llu deleted, %llu discarded\n",
                static_cast<unsigned long long>(r.suv.entries_created),
                static_cast<unsigned long long>(r.suv.entries_toggled),
                static_cast<unsigned long long>(r.suv.entries_published),
                static_cast<unsigned long long>(r.suv.entries_deleted),
                static_cast<unsigned long long>(r.suv.entries_discarded));
    std::printf("  live at end: %zu entries, %llu pool lines in use\n",
                r.redirect_entries_live,
                static_cast<unsigned long long>(r.pool_lines_in_use));
    std::printf("  lookups: %llu (%llu summary-filtered), L1 hit rate "
                "%.1f%%, L2 hits %llu,\n  mis-speculations %llu, "
                "L1-table spills %llu, overflowing txns %llu\n",
                static_cast<unsigned long long>(r.table.lookups),
                static_cast<unsigned long long>(r.table.summary_filtered),
                100.0 * (1.0 - r.table.l1_miss_rate()),
                static_cast<unsigned long long>(r.table.l2_hits),
                static_cast<unsigned long long>(r.table.misspeculations),
                static_cast<unsigned long long>(r.table.l1_overflow_entries),
                static_cast<unsigned long long>(r.suv.table_overflow_txns));
  }

  if (!r.metrics.empty()) {
    std::printf("\nmetrics:\n");
    for (const auto& [name, v] : r.metrics.scalars) {
      std::printf("  %-44s %g\n", name.c_str(), v);
    }
  }
  if (cli.tracing()) {
    const std::string label =
        r.app + "/" + sim::scheme_name(r.scheme);
    if (obs::write_chrome_trace(cli.trace_path, {{label, &trace}})) {
      std::printf("\ntrace written to %s (open in ui.perfetto.dev)\n",
                  cli.trace_path.c_str());
    } else {
      std::fprintf(stderr, "stamp_explorer: could not write %s\n",
                   cli.trace_path.c_str());
      return 1;
    }
  }
  return 0;
}
