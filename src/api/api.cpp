#include "api/api.hpp"

#include <stdexcept>

#include "obs/chrome_trace.hpp"

namespace suvtm::api {

htm::HtmStats RunHandle::htm_stats() const {
  return sim_->total_htm_stats();
}

runner::RunResult RunHandle::result(const std::string& name) {
  return runner::harvest_result(*sim_, name);
}

obs::MetricsSnapshot RunHandle::metrics() const {
  return sim_->harvest_metrics();
}

const obs::TraceData& RunHandle::trace() const {
  static const obs::TraceData kEmpty;
  const obs::Recorder* rec = sim_->recorder();
  if (rec == nullptr || !rec->tracing()) return kEmpty;
  if (sim_->num_domains() == 1) return rec->trace();
  // Sharded machine: merge the per-domain logs once, in the same canonical
  // (timestamp, core) order the experiment harness uses.
  if (!merged_trace_) {
    merged_trace_ =
        std::make_unique<obs::TraceData>(sim_->take_trace());
  }
  return *merged_trace_;
}

bool RunHandle::write_trace(const std::string& path,
                            const std::string& name) const {
  const obs::TraceData& t = trace();
  if (t.events.empty() && t.dropped == 0) return false;
  return obs::write_chrome_trace(path, {{name, &t}});
}

SimBuilder& SimBuilder::scheme(std::string_view name) {
  sim::Scheme s;
  if (!sim::scheme_from_string(name, &s)) {
    std::string msg = "unknown scheme \"";
    msg.append(name);
    msg += "\"; valid names:";
    for (const auto& row : sim::scheme_table()) {
      msg += ' ';
      msg += row.cli_name;
    }
    throw std::invalid_argument(msg);
  }
  cfg_.scheme = s;
  return *this;
}

}  // namespace suvtm::api
