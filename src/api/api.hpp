// suvtm::api -- the front door for programs that drive the simulator
// directly (examples, custom experiments). SimBuilder configures a run
// fluently; RunHandle wraps a live Simulator with the common after-run
// queries (resolved word reads, stats harvest, metrics, trace export) so
// callers never wire Recorder/Checker/stats plumbing by hand.
//
//   auto h = api::SimBuilder().scheme("suv").trace(true).build();
//   auto& bar = h.make_barrier(h.num_cores());
//   for (CoreId c = 0; c < h.num_cores(); ++c) h.spawn(c, worker(...));
//   h.run();
//   h.write_trace("run.json", "counter/SUV-TM");
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "runner/cli.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "stamp/framework.hpp"

namespace suvtm::api {

/// A built simulation plus the harvest queries every driver wants.
/// Move-only; owns the Simulator.
class RunHandle {
 public:
  explicit RunHandle(const sim::SimConfig& cfg)
      : sim_(std::make_unique<sim::Simulator>(cfg)) {}

  RunHandle(RunHandle&&) = default;
  RunHandle& operator=(RunHandle&&) = default;

  // ---- driving the simulation --------------------------------------------
  sim::Simulator& sim() { return *sim_; }
  sim::ThreadContext& context(CoreId c) { return sim_->context(c); }
  std::uint32_t num_cores() const { return sim_->num_cores(); }
  sim::Barrier& make_barrier(std::uint32_t parties) {
    return sim_->make_barrier(parties);
  }
  /// Barrier homed on `home`'s shard (required on sharded machines, where
  /// cores rendezvous shard-locally; see SimBuilder::shards).
  sim::Barrier& make_barrier(std::uint32_t parties, CoreId home) {
    return sim_->make_barrier(parties, home);
  }
  void spawn(CoreId c, sim::ThreadTask task) {
    sim_->spawn(c, std::move(task));
  }
  /// Run to completion (throws on escaped exceptions / cycle-limit).
  void run() { sim_->run(); }

  // ---- simulated memory, host side ---------------------------------------
  /// Read a word following any live version-management redirection. This is
  /// the read to use for post-run verification.
  std::uint64_t word(Addr a) { return sim_->read_word_resolved(a); }
  /// Raw backing-store read (no redirection) -- for seeding comparisons.
  std::uint64_t raw_word(Addr a) { return sim_->raw_word(a); }
  /// Host-side initialisation store into the backing memory (routed to the
  /// owning shard's domain on a sharded machine).
  void poke_word(Addr a, std::uint64_t v) { sim_->poke_word(a, v); }

  // ---- after-run queries --------------------------------------------------
  Cycle makespan() const { return sim_->makespan(); }
  /// HTM stats, summed across the machine's domains.
  htm::HtmStats htm_stats() const;
  /// Full stats harvest -- the same RunResult the experiment harness
  /// produces (metrics included when the build enabled them).
  runner::RunResult result(const std::string& name = "custom");
  /// The hook-fed metrics snapshot; empty unless built with metrics(true).
  obs::MetricsSnapshot metrics() const;
  /// The recorded trace; empty unless built with trace(true). On a sharded
  /// machine the per-domain logs are merged (and harvested from the
  /// recorders) on first call.
  const obs::TraceData& trace() const;
  /// Export the recorded trace as Chrome/Perfetto JSON. Returns false when
  /// nothing was traced or the file could not be written.
  bool write_trace(const std::string& path,
                   const std::string& name = "run") const;

 private:
  std::unique_ptr<sim::Simulator> sim_;
  /// Lazily merged trace for sharded machines (trace() returns a
  /// reference, so the merge has to live somewhere).
  mutable std::unique_ptr<obs::TraceData> merged_trace_;
};

/// Fluent configuration. Each setter returns *this; build() can be called
/// any number of times, each returning an independent simulation.
class SimBuilder {
 public:
  SimBuilder& scheme(sim::Scheme s) {
    cfg_.scheme = s;
    return *this;
  }
  /// Accepts either spelling from the scheme table ("SUV-TM" or "suv").
  /// Throws std::invalid_argument listing the valid names otherwise.
  SimBuilder& scheme(std::string_view name);
  SimBuilder& cores(std::uint32_t n) {
    cfg_.mem.num_cores = n;
    return *this;
  }
  /// Declare a sharded machine (sim/config.hpp PdesParams): `n` must divide
  /// the core count; workloads must keep transactions and stores
  /// shard-local. 1 (default) is the classic monolithic machine.
  SimBuilder& shards(std::uint32_t n) {
    cfg_.pdes.shards = n;
    return *this;
  }
  /// Host threads driving a sharded machine's domain schedulers. Pure
  /// execution knob: results are bit-identical at any value.
  SimBuilder& sim_threads(std::uint32_t n) {
    cfg_.pdes.host_threads = n;
    return *this;
  }
  SimBuilder& seed(std::uint64_t s) {
    cfg_.seed = s;
    return *this;
  }
  SimBuilder& check(bool on = true) {
    cfg_.check.enabled = on;
    return *this;
  }
  SimBuilder& trace(bool on = true) {
    cfg_.obs.trace = on;
    return *this;
  }
  SimBuilder& metrics(bool on = true) {
    cfg_.obs.metrics = on;
    return *this;
  }
  SimBuilder& trace_mem(bool on = true) {
    cfg_.obs.trace_mem = on;
    return *this;
  }
  /// Fold parsed command-line switches in (never clears env-var defaults:
  /// only --check/--metrics/--trace that were actually given take effect).
  SimBuilder& apply(const runner::Cli& cli) {
    cli.apply(cfg_);
    return *this;
  }
  /// Escape hatch for knobs without a dedicated setter.
  SimBuilder& configure(const std::function<void(sim::SimConfig&)>& fn) {
    fn(cfg_);
    return *this;
  }

  const sim::SimConfig& config() const { return cfg_; }

  RunHandle build() const { return RunHandle(cfg_); }

  /// One-shot: run a STAMP app under this configuration and harvest stats
  /// (and, when tracing, the event trace).
  runner::RunResult run(stamp::AppId app, const stamp::SuiteParams& params = {},
                        obs::TraceData* trace_out = nullptr) const {
    return runner::run_app(app, cfg_, params, trace_out);
  }

 private:
  sim::SimConfig cfg_;
};

}  // namespace suvtm::api
