#include "cacti/cacti_model.hpp"

#include <cassert>
#include <cmath>

namespace suvtm::cacti {

const std::vector<TechNode>& tech_nodes() {
  // Anchors are the paper's Table VII (CACTI 5.3, 4 KB 512-entry FA table).
  static const std::vector<TechNode> nodes = {
      {90, 1.382, 0.403, 0.434, 0.951},
      {65, 0.995, 0.239, 0.260, 0.589},
      {45, 0.588, 0.150, 0.163, 0.282},
      {32, 0.412, 0.072, 0.078, 0.143},
  };
  return nodes;
}

std::uint32_t TableEstimate::cycles_at_ghz(double ghz) const {
  const double period_ns = 1.0 / ghz;
  return static_cast<std::uint32_t>(std::ceil(access_ns / period_ns));
}

TableEstimate estimate_fa_table(std::uint32_t feature_nm,
                                std::uint32_t entries,
                                std::uint32_t entry_bits) {
  const TechNode* node = nullptr;
  for (const auto& n : tech_nodes()) {
    if (n.feature_nm == feature_nm) node = &n;
  }
  assert(node && "feature size must be one of the anchored nodes");

  constexpr double kRefEntries = 512.0;
  constexpr double kRefBits = 64.0;
  const double e = static_cast<double>(entries) / kRefEntries;
  const double b = static_cast<double>(entry_bits) / kRefBits;

  TableEstimate out;
  out.feature_nm = feature_nm;
  // RC delay grows with array height ~ sqrt(entries); the CAM match tree
  // contributes a size-insensitive floor.
  out.access_ns = node->access_ns * (0.55 + 0.45 * std::sqrt(e));
  // Comparator energy is linear in entries and width; decode/drive floor.
  out.read_nj = node->read_nj * (0.25 + 0.75 * e * b);
  out.write_nj = node->write_nj * (0.25 + 0.75 * e * b);
  // Bit-cell area dominates.
  out.area_mm2 = node->area_mm2 * e * b;
  return out;
}

double suv_per_core_bytes(std::uint32_t signature_bits,
                          std::uint32_t table_entries,
                          std::uint32_t entry_bits) {
  // Redirect summary signature + the deletion bit-vector + the L1 table.
  const double bits = 2.0 * signature_bits +
                      static_cast<double>(table_entries) * entry_bits;
  return bits / 8.0;
}

double max_table_power_watts(std::uint32_t feature_nm, std::uint32_t cores,
                             double ghz) {
  const TableEstimate est = estimate_fa_table(feature_nm, 512, 64);
  // Paper Section V-C: 22-bit real entries cost at most half the 64-bit
  // CACTI estimate; assume one access (avg of read and write) per cycle.
  const double per_access_nj = 0.5 * (est.read_nj + est.write_nj) / 2.0;
  return per_access_nj * 1e-9 * cores * ghz * 1e9;
}

const std::vector<ProcessorRef>& contemporary_processors() {
  static const std::vector<ProcessorRef> procs = {
      {"UltraSPARC T1", 90, 1.4, "8/32", 72, 378},
      {"UltraSPARC T2", 65, 1.4, "8/64", 84, 342},
      {"Rock Processor", 65, 2.3, "16/32", 250, 396},
  };
  return procs;
}

}  // namespace suvtm::cacti
