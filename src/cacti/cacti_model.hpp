// Analytical hardware-cost model for SUV's first-level fully-associative
// redirect table (paper Section V-C, Tables VI and VII).
//
// The paper ran CACTI 5.3 on a 4 KB, 512-entry, fully-associative table
// (CACTI's 8-byte-minimum line forces 64-bit entries even though a redirect
// entry is 22 bits). We reproduce that estimate with an analytical model
// anchored at the paper's published 90/65/45/32 nm numbers and scaled by
// standard structural laws for other sizes:
//   - access time: wordline/bitline RC grows with sqrt(entries); match-line
//     comparator adds a near-constant term,
//   - dynamic energy: dominated by the parallel tag comparators, linear in
//     the number of entries and in entry width,
//   - area: proportional to bit count.
#pragma once

#include <cstdint>
#include <vector>

namespace suvtm::cacti {

struct TechNode {
  std::uint32_t feature_nm;
  // Anchor values for the paper's 512-entry x 64-bit configuration.
  double access_ns;
  double read_nj;
  double write_nj;
  double area_mm2;
};

/// The four nodes the paper evaluates (Table VII anchors).
const std::vector<TechNode>& tech_nodes();

struct TableEstimate {
  std::uint32_t feature_nm;
  double access_ns;
  double read_nj;
  double write_nj;
  double area_mm2;
  std::uint32_t cycles_at_ghz(double ghz) const;
};

/// Cost of an `entries` x `entry_bits` fully-associative table at
/// `feature_nm` (must be one of the anchored nodes).
TableEstimate estimate_fa_table(std::uint32_t feature_nm,
                                std::uint32_t entries,
                                std::uint32_t entry_bits);

/// Per-core SUV storage in bytes (paper: (2Kb + 2Kb + 22b*512)/8 = 1.875 KB:
/// redirect summary signature + its deletion bit-vector + the L1 table).
double suv_per_core_bytes(std::uint32_t signature_bits,
                          std::uint32_t table_entries,
                          std::uint32_t entry_bits);

/// Whole-CMP upper bound on the table's dynamic power (paper's "3 J/s"
/// style estimate): every core accessing its table every cycle.
double max_table_power_watts(std::uint32_t feature_nm, std::uint32_t cores,
                             double ghz);

/// Contemporary processors the paper compares against (Table VI).
struct ProcessorRef {
  const char* name;
  std::uint32_t tech_nm;
  double clock_ghz;
  const char* cores_threads;
  double tdp_w;
  double area_mm2;
};
const std::vector<ProcessorRef>& contemporary_processors();

}  // namespace suvtm::cacti
