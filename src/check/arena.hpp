// Recording and replay storage for the history oracle (history.hpp), built
// for the hot path the SUVTM_CHECK hooks sit on:
//
//   - ArenaPool / RecStream: per-transaction append-only streams of POD
//     AccessRecs over pooled 4 KB pages. The append fast path is a bump
//     pointer and one branch; page acquisition, frame truncation and
//     wholesale release are the out-of-line slow paths. Pages go back to
//     the pool the moment a stream is replayed (the oracle's eager
//     prefix retirement), so steady-state arena footprint is bounded by
//     the live-transaction window, not by history length.
//
//   - ShadowStore: the oracle's model memory as a page-granular
//     direct-indexed store (values plus defined/written bitmaps per 4 KB
//     page, with a one-entry page cache), so a replayed access is a load
//     and a compare instead of a hash probe. The `written` bitmap doubles
//     as the committed-write set the Checker's untouched-word sweep
//     consults, which is why it is tracked separately from `defined`
//     (reads define a word's initial contents without writing it).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace suvtm::check {

/// Aligned-word access as observed by the simulated core, packed to 24
/// bytes: word addresses are 8-byte aligned, so the access kind rides in
/// the address's low bit. The packing matters -- every record is written
/// once at the hook site and read once at replay, so record size is
/// directly arena-bandwidth on both of the checker's hot paths.
struct AccessRec {
  std::uint64_t word_kind;  ///< word address | is_write in bit 0
  std::uint64_t value;
  Cycle cycle;

  static AccessRec make(Addr word, std::uint64_t value, Cycle cycle,
                        bool is_write) {
    return {word | (is_write ? 1u : 0u), value, cycle};
  }
  Addr word() const { return word_kind & ~std::uint64_t{7}; }
  bool is_write() const { return (word_kind & 1) != 0; }
};
static_assert(sizeof(AccessRec) == 24, "packed: 170 records per 4 KB page");

/// One pooled arena page: a fixed run of AccessRecs plus the intrusive
/// link RecStream chains pages with.
struct RecPage {
  static constexpr std::uint32_t kRecs = 170;  // ~4 KB per page
  AccessRec recs[kRecs];
  RecPage* next = nullptr;
};

/// Free-list allocator for RecPages. Owns every page it ever created;
/// acquire/release recycle them without touching the system allocator.
class ArenaPool {
 public:
  RecPage* acquire() {
    if (free_.empty()) {
      all_.push_back(std::make_unique<RecPage>());
      return all_.back().get();
    }
    RecPage* p = free_.back();
    free_.pop_back();
    p->next = nullptr;
    return p;
  }
  void release(RecPage* p) { free_.push_back(p); }

  std::size_t pages_allocated() const { return all_.size(); }
  std::size_t pages_free() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<RecPage>> all_;
  std::vector<RecPage*> free_;
};

/// Append-only record stream over pooled pages. Move-only: moving steals
/// the page chain. Pages are owned by the pool; a stream must be drained
/// through clear()/consume()/truncate() to recycle them (an undrained
/// stream merely keeps its pages out of the free list until the pool is
/// destroyed).
class RecStream {
 public:
  RecStream() = default;
  RecStream(const RecStream&) = delete;
  RecStream& operator=(const RecStream&) = delete;
  RecStream(RecStream&& o) noexcept { steal(o); }
  RecStream& operator=(RecStream&& o) noexcept {
    if (this != &o) steal(o);
    return *this;
  }

  /// Bump-pointer fast path; false when the tail page is full (or absent).
  bool try_append(const AccessRec& r) {
    if (top_ == end_) return false;
    *top_++ = r;
    ++count_;
    return true;
  }

  /// Slow path: chain a fresh page, then append.
  void append_new_page(ArenaPool& pool, const AccessRec& r) {
    RecPage* p = pool.acquire();
    if (tail_ != nullptr) tail_->next = p;
    else head_ = p;
    tail_ = p;
    top_ = p->recs;
    end_ = p->recs + RecPage::kRecs;
    *top_++ = r;
    ++count_;
  }

  std::uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Keep the first `n` records, releasing every page past them (nested
  /// frame rollback). `n` must not exceed size().
  void truncate(ArenaPool& pool, std::uint64_t n) {
    assert(n <= count_);
    if (n == count_) return;
    if (n == 0) {
      clear(pool);
      return;
    }
    const std::uint64_t keep_pages = (n + RecPage::kRecs - 1) / RecPage::kRecs;
    RecPage* p = head_;
    for (std::uint64_t i = 1; i < keep_pages; ++i) p = p->next;
    for (RecPage* q = p->next; q != nullptr;) {
      RecPage* nx = q->next;
      pool.release(q);
      q = nx;
    }
    p->next = nullptr;
    tail_ = p;
    top_ = p->recs + (n - (keep_pages - 1) * RecPage::kRecs);
    end_ = p->recs + RecPage::kRecs;
    count_ = n;
  }

  /// Visit every record in append order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t remaining = count_;
    for (const RecPage* p = head_; p != nullptr; p = p->next) {
      const std::uint32_t m = remaining < RecPage::kRecs
                                  ? static_cast<std::uint32_t>(remaining)
                                  : RecPage::kRecs;
      for (std::uint32_t i = 0; i < m; ++i) fn(p->recs[i]);
      remaining -= m;
    }
  }

  /// Visit every record in append order, releasing each page to the pool
  /// as soon as it has been read (the replay-time prefix retirement).
  /// Leaves the stream empty.
  template <class Fn>
  void consume(ArenaPool& pool, Fn&& fn) {
    std::uint64_t remaining = count_;
    for (RecPage* p = head_; p != nullptr;) {
      const std::uint32_t m = remaining < RecPage::kRecs
                                  ? static_cast<std::uint32_t>(remaining)
                                  : RecPage::kRecs;
      for (std::uint32_t i = 0; i < m; ++i) fn(p->recs[i]);
      remaining -= m;
      RecPage* nx = p->next;
      pool.release(p);
      p = nx;
    }
    reset();
  }

  /// Release every page without visiting (aborted attempt).
  void clear(ArenaPool& pool) {
    for (RecPage* p = head_; p != nullptr;) {
      RecPage* nx = p->next;
      pool.release(p);
      p = nx;
    }
    reset();
  }

 private:
  void steal(RecStream& o) {
    head_ = o.head_;
    tail_ = o.tail_;
    top_ = o.top_;
    end_ = o.end_;
    count_ = o.count_;
    o.reset();
  }
  void reset() {
    head_ = tail_ = nullptr;
    top_ = end_ = nullptr;
    count_ = 0;
  }

  RecPage* head_ = nullptr;
  RecPage* tail_ = nullptr;
  AccessRec* top_ = nullptr;   // next free slot in the tail page
  AccessRec* end_ = nullptr;   // one past the tail page's last slot
  std::uint64_t count_ = 0;
};

/// Page-granular model memory: per 4 KB page, word values plus defined and
/// written bitmaps. The page index is a hash map probed once per page
/// *transition* thanks to the one-entry cache; within a page every access
/// is a direct array index.
class ShadowStore {
 public:
  static constexpr std::uint32_t kWords =
      static_cast<std::uint32_t>(kPageBytes / kWordBytes);

  struct Page {
    std::uint64_t val[kWords];
    std::uint64_t defined[kWords / 64];
    std::uint64_t written[kWords / 64];
  };

  /// Replayed write: store the value, mark defined + written.
  void store(Addr a, std::uint64_t v) {
    Page& p = page_for(a);
    const std::uint32_t i = word_index(a);
    p.val[i] = v;
    p.defined[i >> 6] |= 1ull << (i & 63);
    p.written[i >> 6] |= 1ull << (i & 63);
  }

  /// Replayed read: the first reference in serialization order defines the
  /// word's initial contents as `observed` (and returns true); otherwise
  /// returns whether the stored value matches, leaving it in `*expect`.
  bool read_check(Addr a, std::uint64_t observed, std::uint64_t* expect) {
    Page& p = page_for(a);
    const std::uint32_t i = word_index(a);
    const std::uint64_t bit = 1ull << (i & 63);
    if ((p.defined[i >> 6] & bit) == 0) {
      p.val[i] = observed;
      p.defined[i >> 6] |= bit;
      return true;
    }
    *expect = p.val[i];
    return p.val[i] == observed;
  }

  /// Was this word ever target of a replayed (committed/non-transactional)
  /// write? Words only read-defined report false.
  bool written(Addr a) const {
    const Page* p = find_page(a / kPageBytes);
    if (p == nullptr) return false;
    const std::uint32_t i = word_index(a);
    return (p->written[i >> 6] & (1ull << (i & 63))) != 0;
  }

  /// Visit every defined word in ascending address order as
  /// fn(addr, value, written). Deterministic by construction (page ids are
  /// sorted, words walk in index order).
  template <class Fn>
  void for_each_defined_sorted(Fn&& fn) const {
    std::vector<std::uint64_t> ids = page_ids_;
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) {
      const Page* p = find_page(id);
      const Addr base = id * kPageBytes;
      for (std::uint32_t i = 0; i < kWords; ++i) {
        const std::uint64_t bit = 1ull << (i & 63);
        if ((p->defined[i >> 6] & bit) == 0) continue;
        fn(base + static_cast<Addr>(i) * kWordBytes, p->val[i],
           (p->written[i >> 6] & bit) != 0);
      }
    }
  }

  std::size_t pages() const { return pages_.size(); }

  /// Read-only page view for the checker's untouched-word sweep (nullptr
  /// when no replayed access touched the page). Word `i`'s committed-write
  /// bit is `written[i >> 6] >> (i & 63) & 1`.
  const Page* page(std::uint64_t id) const { return find_page(id); }

 private:
  static std::uint32_t word_index(Addr a) {
    return static_cast<std::uint32_t>((a & (kPageBytes - 1)) / kWordBytes);
  }

  Page& page_for(Addr a) {
    const std::uint64_t id = a / kPageBytes;
    if (id == cached_id_) [[likely]] return *cached_;
    return page_slow(id);
  }

  Page& page_slow(std::uint64_t id) {
    auto it = index_.find(id);
    Page* p;
    if (it != index_.end()) {
      p = pages_[it->second].get();
    } else {
      pages_.push_back(std::make_unique<Page>());  // value-init: all zero
      page_ids_.push_back(id);
      index_.emplace(id, static_cast<std::uint32_t>(pages_.size() - 1));
      p = pages_.back().get();
    }
    cached_id_ = id;
    cached_ = p;
    return *p;
  }

  const Page* find_page(std::uint64_t id) const {
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : pages_[it->second].get();
  }

  FlatMap<std::uint64_t, std::uint32_t> index_;  // page id -> pages_ slot
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<std::uint64_t> page_ids_;          // parallel to pages_
  std::uint64_t cached_id_ = ~std::uint64_t{0};
  Page* cached_ = nullptr;
};

}  // namespace suvtm::check
