#include "check/audit.hpp"

#include <algorithm>

#include "check/format.hpp"
#include "common/flat_hash.hpp"
#include "htm/htm_system.hpp"
#include "mem/memory_system.hpp"
#include "suv/pool.hpp"
#include "suv/redirect_table.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::check {

namespace {

const char* st_name(mem::CohState s) { return mem::coh_state_name(s); }

// Audit reports are capped (audit_all truncates), so hash-ordered
// containers are drained through a sorted copy before any message is
// emitted: which violations survive the cap must be a function of
// simulated state, never of FlatMap/FlatSet hash or capacity policy
// (suvlint: nondet-iteration).
std::vector<LineAddr> sorted_drain(const FlatSet<LineAddr>& hashed) {
  std::vector<LineAddr> out;
  out.reserve(hashed.size());
  // lint: allow(nondet-iteration): order laundered by the sort below
  for (LineAddr l : hashed) out.push_back(l);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LineAddr> sorted_keys(const FlatMap<LineAddr, std::uint64_t>& hashed) {
  std::vector<LineAddr> out;
  out.reserve(hashed.size());
  // lint: allow(nondet-iteration): order laundered by the sort below
  for (const auto& kv : hashed) out.push_back(kv.first);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::string> audit_coherence(const mem::MemorySystem& mem) {
  std::vector<std::string> out;
  const auto& dir = mem.directory();
  const std::uint32_t cores = mem.params().num_cores;

  // L1 -> directory/L2 direction.
  for (CoreId c = 0; c < cores; ++c) {
    const auto& spec = mem.speculative_lines(c);
    mem.l1(c).for_each([&](const mem::Cache::Line& ln) {
      const LineAddr l = ln.tag;
      const mem::DirEntry* e = dir.find(l);
      switch (ln.state) {
        case mem::CohState::kExclusive:
        case mem::CohState::kModified:
          if (!e || e->owner != c) {
            out.push_back(format(
                "coherence: core %u holds line %#llx in %s but the directory "
                "owner is %d",
                c, static_cast<unsigned long long>(l), st_name(ln.state),
                e ? static_cast<int>(e->owner) : -1));
          } else if (e->sharers != (1u << c)) {
            out.push_back(format(
                "coherence: line %#llx owned %s by core %u but sharer mask is "
                "%#x",
                static_cast<unsigned long long>(l), st_name(ln.state), c,
                e->sharers));
          }
          break;
        case mem::CohState::kShared:
          if (!e || ((e->sharers >> c) & 1u) == 0) {
            out.push_back(format(
                "coherence: core %u holds line %#llx Shared but its directory "
                "sharer bit is clear",
                c, static_cast<unsigned long long>(l)));
          } else if (e->owner != kNoCore) {
            out.push_back(format(
                "coherence: line %#llx is Shared at core %u while the "
                "directory names core %u exclusive owner",
                static_cast<unsigned long long>(l), c, e->owner));
          }
          break;
        case mem::CohState::kInvalid:
          break;
      }
      // Inclusion: the L2 backs every L1 line except Modified ones that were
      // materialized directly in the L1 (install_line never touches the L2).
      if ((ln.state == mem::CohState::kShared ||
           ln.state == mem::CohState::kExclusive) &&
          mem.l2().find(l) == nullptr) {
        out.push_back(format(
            "coherence: core %u holds line %#llx %s but the inclusive L2 has "
            "no copy",
            c, static_cast<unsigned long long>(l), st_name(ln.state)));
      }
      // Every line whose SM bit is set must be recorded in the per-core
      // speculative list (the flash commit/abort walks rely on it; the list
      // may hold stale extras, never miss a marked line).
      if (ln.speculative &&
          std::find(spec.begin(), spec.end(), l) == spec.end()) {
        out.push_back(format(
            "coherence: core %u line %#llx has its SM bit set but is missing "
            "from the speculative-line list",
            c, static_cast<unsigned long long>(l)));
      }
    });
  }

  // Directory -> L1 direction. Hash-order walk: the sorted-out return
  // below launders the visitation order before any report can see it.
  dir.for_each_unordered([&](LineAddr l, const mem::DirEntry& e) {
    if (e.owner != kNoCore) {
      if (e.owner >= cores) {
        out.push_back(format("coherence: line %#llx has out-of-range owner %u",
                             static_cast<unsigned long long>(l), e.owner));
        return;
      }
      const mem::Cache::Line* ln = mem.l1(e.owner).find(l);
      if (!ln || (ln->state != mem::CohState::kExclusive &&
                  ln->state != mem::CohState::kModified)) {
        out.push_back(format(
            "coherence: directory says core %u owns line %#llx but its L1 "
            "holds it %s",
            e.owner, static_cast<unsigned long long>(l),
            ln ? st_name(ln->state) : "not at all"));
      }
      if (e.sharers != (1u << e.owner)) {
        out.push_back(format(
            "coherence: line %#llx owned by core %u carries sharer mask %#x",
            static_cast<unsigned long long>(l), e.owner, e.sharers));
      }
      return;
    }
    for (CoreId c = 0; c < cores; ++c) {
      if (((e.sharers >> c) & 1u) == 0) continue;
      const mem::Cache::Line* ln = mem.l1(c).find(l);
      if (!ln || ln->state != mem::CohState::kShared) {
        out.push_back(format(
            "coherence: directory marks core %u a sharer of line %#llx but "
            "its L1 holds it %s",
            c, static_cast<unsigned long long>(l),
            ln ? st_name(ln->state) : "not at all"));
      }
    }
  });
  // Deterministic report: the L1 walks visit dense slot order but the
  // directory walk above is hash-ordered; sorting the collected messages
  // makes the emitted set and order a function of simulated state only.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> audit_signatures(const htm::HtmSystem& htm) {
  std::vector<std::string> out;
  const auto check_sets = [&](const htm::Txn& t, const char* what) {
    for (LineAddr l : t.read_lines) {
      if (!t.read_sig.test(l)) {
        out.push_back(format(
            "signature: %s txn on core %u read line %#llx absent from its "
            "read signature",
            what, t.core, static_cast<unsigned long long>(l)));
      }
    }
    for (LineAddr l : t.write_lines) {
      if (!t.write_sig.test(l)) {
        out.push_back(format(
            "signature: %s txn on core %u wrote line %#llx absent from its "
            "write signature",
            what, t.core, static_cast<unsigned long long>(l)));
      }
    }
  };
  for (CoreId c = 0; c < htm.num_cores(); ++c) {
    const htm::Txn& t = htm.txn(c);
    if (!t.active()) continue;
    check_sets(t, "running");
    // Grant-filter chain: the conflict manager's bit-sliced columns must
    // stay a superset of every live transaction's sets -- check()'s fast
    // path and the checker's grant-audit filter both rest on "column miss
    // implies signature miss implies exact-set miss".
    const auto& cm = htm.conflicts();
    for (LineAddr l : t.read_lines) {
      if (!(cm.column_mask(l, false) >> c & 1)) {
        out.push_back(format(
            "signature: core %u's read line %#llx absent from the conflict "
            "manager's read columns",
            c, static_cast<unsigned long long>(l)));
      }
    }
    for (LineAddr l : t.write_lines) {
      if (!(cm.column_mask(l, true) >> c & 1)) {
        out.push_back(format(
            "signature: core %u's written line %#llx absent from the "
            "conflict manager's write columns",
            c, static_cast<unsigned long long>(l)));
      }
    }
  }
  htm.for_each_suspended([&](CoreId core, const htm::Txn& t) {
    check_sets(t, "suspended");
    // The summaries stand in for the parked transaction's isolation: a
    // missed line lets a conflicting access slip past the stall check.
    for (LineAddr l : t.read_lines) {
      if (!htm.suspended_read_summary().test(l)) {
        out.push_back(format(
            "signature: suspended txn from core %u read line %#llx absent "
            "from the suspended read summary",
            core, static_cast<unsigned long long>(l)));
      }
    }
    for (LineAddr l : t.write_lines) {
      if (!htm.suspended_write_summary().test(l)) {
        out.push_back(format(
            "signature: suspended txn from core %u wrote line %#llx absent "
            "from the suspended write summary",
            core, static_cast<unsigned long long>(l)));
      }
    }
  });
  return out;
}

std::vector<std::string> audit_suv(const vm::SuvVm& suv,
                                   const htm::HtmSystem& htm) {
  std::vector<std::string> out;
  const auto& table = suv.table();
  const std::uint32_t cores = htm.num_cores();

  // Per-core originals owned by the running transaction or a parked one.
  std::vector<FlatSet<LineAddr>> owned(cores);
  for (CoreId c = 0; c < cores; ++c) {
    suv.for_each_owned(c, [&](LineAddr l) {
      if (!owned[c].insert(l)) {
        out.push_back(format(
            "suv: core %u's ownership lists name original %#llx twice", c,
            static_cast<unsigned long long>(l)));
      }
    });
  }

  FlatSet<LineAddr> targets;
  std::vector<std::uint64_t> pool_lines(cores, 0);
  table.for_each_entry([&](const suv::RedirectEntry& e) {
    const auto orig = static_cast<unsigned long long>(e.original);
    switch (e.state) {
      case suv::EntryState::kInvalid:
        out.push_back(
            format("suv: stored entry for %#llx is in the invalid state",
                   orig));
        return;
      case suv::EntryState::kTxnRedirect:
      case suv::EntryState::kTxnUnredirect:
        if (e.owner >= cores) {
          out.push_back(format(
              "suv: transient entry for %#llx has no valid owner (%u)", orig,
              e.owner));
          return;
        }
        if (!owned[e.owner].contains(e.original)) {
          out.push_back(format(
              "suv: transient entry for %#llx owned by core %u is missing "
              "from that core's ownership lists (commit/abort will never "
              "flip it)",
              orig, e.owner));
        }
        break;
      case suv::EntryState::kGlobalRedirect:
        if (e.owner != kNoCore) {
          out.push_back(format(
              "suv: global entry for %#llx still names core %u owner", orig,
              e.owner));
        }
        break;
    }
    // Summary supersets: a missed membership lets a core skip the table
    // lookup and read the wrong version of the line.
    if (e.state == suv::EntryState::kTxnRedirect) {
      if (e.owner < cores && !table.summary(e.owner).test(e.original)) {
        out.push_back(format(
            "suv: owner core %u's summary misses its transient redirect for "
            "%#llx",
            e.owner, orig));
      }
    } else {
      // kTxnUnredirect and kGlobalRedirect divert OTHER cores to the target:
      // every core's summary must admit the line.
      for (CoreId c = 0; c < cores; ++c) {
        if (!table.summary(c).test(e.original)) {
          out.push_back(format(
              "suv: core %u's summary misses the %s entry for %#llx", c,
              suv::entry_state_name(e.state), orig));
        }
      }
    }
    if (!suv::PreservedPool::in_pool_region(e.target)) {
      out.push_back(format(
          "suv: entry for %#llx targets %#llx outside the preserved pool",
          orig, static_cast<unsigned long long>(e.target)));
    } else {
      const CoreId pool_owner = suv::PreservedPool::owner_of(e.target);
      if (pool_owner < cores) ++pool_lines[pool_owner];
    }
    if (!targets.insert(e.target)) {
      out.push_back(format(
          "suv: pool line %#llx is the target of two live entries (two live "
          "versions of one line)",
          static_cast<unsigned long long>(e.target)));
    }
  });

  for (CoreId c = 0; c < cores; ++c) {
    // Pool refcount balance: every handed-out line is the target of exactly
    // one live entry, so in-use counts must match entry counts per region.
    if (suv.pool(c).lines_in_use() != pool_lines[c]) {
      out.push_back(format(
          "suv: core %u's pool reports %llu lines in use but %llu live "
          "entries target its region (leak or double release)",
          c, static_cast<unsigned long long>(suv.pool(c).lines_in_use()),
          static_cast<unsigned long long>(pool_lines[c])));
    }
    // Ownership lists must only name live transient entries of this core.
    for (LineAddr l : sorted_drain(owned[c])) {
      const suv::RedirectEntry* e = table.find(l);
      if (!e || !e->transient() || e->owner != c) {
        out.push_back(format(
            "suv: core %u's ownership lists name %#llx, whose entry is %s", c,
            static_cast<unsigned long long>(l),
            e ? suv::entry_state_name(e->state) : "gone"));
      }
    }
    // Hardware table levels cache only live entries; pinned slots hold this
    // core's transients and never double as plain cached slots.
    for (LineAddr l : sorted_drain(table.pinned(c))) {
      const suv::RedirectEntry* e = table.find(l);
      if (!e || !e->transient() || e->owner != c) {
        out.push_back(format(
            "suv: core %u pins %#llx, whose entry is %s", c,
            static_cast<unsigned long long>(l),
            e ? suv::entry_state_name(e->state) : "gone"));
      }
      if (table.l1_cached(c).contains(l)) {
        out.push_back(format(
            "suv: core %u holds %#llx both pinned and cached in its "
            "first-level table",
            c, static_cast<unsigned long long>(l)));
      }
    }
    for (LineAddr l : sorted_keys(table.l1_cached(c))) {
      if (!table.find(l)) {
        out.push_back(format(
            "suv: core %u's first-level table caches %#llx, which has no "
            "live entry",
            c, static_cast<unsigned long long>(l)));
      }
    }
  }
  table.for_each_l2_way([&](LineAddr l) {
    if (!table.find(l)) {
      out.push_back(format(
          "suv: second-level table caches %#llx, which has no live entry",
          static_cast<unsigned long long>(l)));
    }
  });
  return out;
}

std::vector<std::string> audit_abort(const htm::HtmSystem& htm,
                                     const vm::SuvVm* suv, CoreId core) {
  std::vector<std::string> out;
  const htm::Txn& t = htm.txn(core);
  // The hook fires before the descriptor resets, so the sets still
  // describe the aborted attempt; a signature that lost one of them was
  // corrupted sometime during that attempt.
  for (LineAddr l : t.read_lines) {
    if (!t.read_sig.test(l)) {
      out.push_back(format(
          "signature: aborting txn on core %u read line %#llx absent from "
          "its read signature",
          core, static_cast<unsigned long long>(l)));
    }
  }
  for (LineAddr l : t.write_lines) {
    if (!t.write_sig.test(l)) {
      out.push_back(format(
          "signature: aborting txn on core %u wrote line %#llx absent from "
          "its write signature",
          core, static_cast<unsigned long long>(l)));
    }
  }
  if (suv != nullptr) {
    // The abort walk must have flipped or freed every transient entry the
    // attempt owned; its write set names exactly the lines it redirected.
    // (A parked transaction from this core cannot own any of these lines:
    // the suspended summaries would have stalled the aborted attempt's
    // writes to them.)
    const auto& table = suv->table();
    for (LineAddr l : t.write_lines) {
      const suv::RedirectEntry* e = table.find(l);
      if (e != nullptr &&
          (e->state == suv::EntryState::kTxnRedirect ||
           e->state == suv::EntryState::kTxnUnredirect) &&
          e->owner == core) {
        out.push_back(format(
            "suv: transient entry for %#llx still owned by core %u after "
            "its abort completed",
            static_cast<unsigned long long>(l), core));
      }
    }
  }
  return out;
}

std::vector<std::string> audit_all(const mem::MemorySystem& mem,
                                   const htm::HtmSystem& htm,
                                   const vm::SuvVm* suv) {
  std::vector<std::string> out = audit_coherence(mem);
  auto sigs = audit_signatures(htm);
  out.insert(out.end(), std::make_move_iterator(sigs.begin()),
             std::make_move_iterator(sigs.end()));
  if (suv) {
    auto sv = audit_suv(*suv, htm);
    out.insert(out.end(), std::make_move_iterator(sv.begin()),
               std::make_move_iterator(sv.end()));
  }
  return out;
}

}  // namespace suvtm::check
