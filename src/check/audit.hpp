// Structural invariant audits (src/check's second half, next to the history
// oracle): walk the simulator's live data structures and report every way
// they disagree with each other. Each audit returns human-readable violation
// strings; an empty vector means the structure is internally consistent.
//
// The invariants encoded here are the load-bearing cross-structure
// agreements the schemes rely on:
//   - MESI: directory owner/sharer info matches the L1 states, the
//     inclusive L2 backs every non-M L1 line, SM bits are tracked.
//   - Signatures: every Bloom filter is a superset of the exact set it
//     summarizes (read/write sets, suspended summaries).
//   - SUV: redirect entries, summary signatures, table caches, pinned sets,
//     pool accounting and per-transaction ownership lists all describe the
//     same single live version of every redirected line.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace suvtm::mem {
class MemorySystem;
}
namespace suvtm::htm {
class HtmSystem;
}
namespace suvtm::vm {
class SuvVm;
}

namespace suvtm::check {

/// MESI single-owner/sharer agreement + L2 inclusion + SM-bit tracking.
std::vector<std::string> audit_coherence(const mem::MemorySystem& mem);

/// Per-transaction signatures and the suspended summaries are supersets of
/// the exact sets they stand for.
std::vector<std::string> audit_signatures(const htm::HtmSystem& htm);

/// Redirect-table / summary / pool / ownership consistency: exactly one
/// live version per redirected line, balanced pool refcounts, hardware
/// table levels cache only live entries.
std::vector<std::string> audit_suv(const vm::SuvVm& suv,
                                   const htm::HtmSystem& htm);

/// Abort-scoped audit, O(aborted footprint): runs after every abort
/// completes, while the descriptor still holds the attempt's sets. Checks
/// the aborting core's sets are still inside its signatures and -- for SUV
/// -- that no transient redirect it owned survived the abort walk. The
/// global structure walks stay on the sampled commit path and finalize();
/// per abort they cost a full table/directory sweep.
std::vector<std::string> audit_abort(const htm::HtmSystem& htm,
                                     const vm::SuvVm* suv, CoreId core);

/// All of the above (suv audits skipped when `suv` is nullptr).
std::vector<std::string> audit_all(const mem::MemorySystem& mem,
                                   const htm::HtmSystem& htm,
                                   const vm::SuvVm* suv);

}  // namespace suvtm::check
