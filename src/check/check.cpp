#include "check/check.hpp"

#include <utility>

#include "check/audit.hpp"
#include "check/format.hpp"
#include "htm/htm_system.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"
#include "vm/dyntm.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::check {

namespace {

constexpr std::size_t kMaxViolations = 64;

vm::SuvVm* find_suv_backend(htm::HtmSystem& htm) {
  htm::VersionManager* v = &htm.vm();
  if (auto* s = dynamic_cast<vm::SuvVm*>(v)) return s;
  if (auto* d = dynamic_cast<vm::DynTm*>(v)) {
    return dynamic_cast<vm::SuvVm*>(&d->inner());
  }
  return nullptr;
}

}  // namespace

Checker::Checker(const sim::SimConfig& cfg, mem::MemorySystem& mem,
                 htm::HtmSystem& htm)
    : cfg_(cfg), mem_(mem), htm_(htm), suv_(find_suv_backend(htm)),
      oracle_(htm.num_cores()), pending_writes_(htm.num_cores()),
      suspended_writes_(htm.num_cores()) {}

void Checker::on_run_start() {
  // Record every nonzero workload word (pool pages hold SUV-internal
  // versions, not workload state; they are exempt from the sweep).
  snapshot_.clear();
  mem_.backing().for_each_page_id([&](std::uint64_t page) {
    const Addr base = page * kPageBytes;
    if (base >= kRedirectPoolBase) return;
    for (Addr a = base; a < base + kPageBytes; a += kWordBytes) {
      const std::uint64_t v = mem_.load_word(a);
      if (v != 0) snapshot_.emplace(a, v);
    }
  });
  snapshot_taken_ = true;
}

void Checker::on_commit_done(CoreId c, Cycle now, bool lazy) {
  oracle_.on_commit_done(c, now, lazy);
  for (Addr w : pending_writes_[c]) committed_writes_.insert(w);
  pending_writes_[c].clear();
  ++commits_seen_;
  if (cfg_.check.audit_interval != 0 &&
      commits_seen_ % cfg_.check.audit_interval == 0) {
    run_audits();
  }
}

void Checker::on_abort_done(CoreId c) {
  oracle_.on_abort_done(c);
  pending_writes_[c].clear();
}

void Checker::on_suspend(CoreId c) {
  oracle_.on_suspend(c);
  suspended_writes_[c].push_back(std::move(pending_writes_[c]));
  pending_writes_[c].clear();
}

void Checker::on_resume(CoreId c) {
  oracle_.on_resume(c);
  if (suspended_writes_[c].empty()) {
    violation(format("checker: resume on core %u without a parked attempt", c));
    return;
  }
  // HtmSystem restores the core's FIRST suspended transaction.
  pending_writes_[c] = std::move(suspended_writes_[c].front());
  suspended_writes_[c].erase(suspended_writes_[c].begin());
}

void Checker::on_access_granted(CoreId c, LineAddr line, bool exclusive,
                                bool requester_lazy) {
  // The conflict manager filters on signatures, which are supersets of the
  // exact sets below: a granted access that intersects an exact set means
  // isolation itself broke, not just the filter. Doomed transactions are
  // skipped -- committer-wins and lazy-reader invalidation doom the victim
  // and then legitimately proceed through its footprint while it drains.
  auto& txns = htm_.txn_view();
  for (CoreId o = 0; o < txns.size(); ++o) {
    if (o == c) continue;
    const htm::Txn* t = txns[o];
    if (!t || !t->holds_isolation() || t->doomed) continue;
    const char* why = nullptr;
    if (t->lazy && t->state == htm::TxnState::kRunning) {
      // Buffered writes confer no coherence permission; only an exclusive
      // request on its write set is an eager conflict.
      if (exclusive && t->write_lines.contains(line)) why = "write set";
    } else if (requester_lazy) {
      if (t->write_lines.contains(line)) why = "write set";
    } else if (exclusive) {
      if (t->write_lines.contains(line)) why = "write set";
      else if (t->read_lines.contains(line)) why = "read set";
    } else {
      if (t->write_lines.contains(line)) why = "write set";
    }
    if (why) {
      violation(format(
          "isolation: core %u was granted %s access to line %#llx inside the "
          "%s of core %u's %s transaction",
          c, exclusive ? "exclusive" : "shared",
          static_cast<unsigned long long>(line), why, o,
          t->lazy ? "lazy" : "eager"));
    }
  }
  htm_.for_each_suspended([&](CoreId from, const htm::Txn& s) {
    const bool hit = s.write_lines.contains(line) ||
                     (exclusive && s.read_lines.contains(line));
    if (hit) {
      violation(format(
          "isolation: core %u was granted %s access to line %#llx held by "
          "the suspended transaction from core %u",
          c, exclusive ? "exclusive" : "shared",
          static_cast<unsigned long long>(line), from));
    }
  });
}

void Checker::run_audits() {
  ++audits_run_;
  for (auto& msg : audit_all(mem_, htm_, suv_)) violation(std::move(msg));
}

void Checker::finalize() {
  oracle_.finalize([this](Addr a) {
    return mem_.load_word(htm_.vm().debug_resolve(kNoCore, a));
  });
  for (const std::string& v : oracle_.violations()) violation(v);

  // Untouched-word sweep: every workload word no committed or
  // non-transactional write touched must still hold its run-start value (a
  // leaked speculative version or a broken abort restore shows up here;
  // committed words are covered by the oracle's replay comparison).
  if (snapshot_taken_) {
    std::size_t swept_violations = 0;
    mem_.backing().for_each_page_id([&](std::uint64_t page) {
      const Addr base = page * kPageBytes;
      if (base >= kRedirectPoolBase) return;
      for (Addr a = base; a < base + kPageBytes; a += kWordBytes) {
        if (committed_writes_.contains(a)) continue;
        const auto it = snapshot_.find(a);
        const std::uint64_t expect = it == snapshot_.end() ? 0 : it->second;
        const std::uint64_t got =
            mem_.load_word(htm_.vm().debug_resolve(kNoCore, a));
        if (got != expect && swept_violations < 8) {
          ++swept_violations;
          violation(format(
              "image: word %#llx was never committed-written yet changed "
              "from %#llx to %#llx",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(expect),
              static_cast<unsigned long long>(got)));
        }
      }
    });
  }

  run_audits();

  if (!violations_.empty()) {
    std::string msg = format("correctness check failed (%zu violations):",
                             violations_.size());
    for (const std::string& v : violations_) {
      msg += "\n  ";
      msg += v;
    }
    throw CheckFailure(msg);
  }
}

void Checker::violation(std::string msg) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(msg));
  } else if (violations_.size() == kMaxViolations) {
    violations_.push_back("... further violations suppressed");
  }
}

}  // namespace suvtm::check
