#include "check/check.hpp"

#include <algorithm>
#include <utility>

#include "check/audit.hpp"
#include "check/format.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"
#include "vm/dyntm.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::check {

namespace {

constexpr std::size_t kMaxViolations = 64;

vm::SuvVm* find_suv_backend(htm::HtmSystem& htm) {
  htm::VersionManager* v = &htm.vm();
  if (auto* s = dynamic_cast<vm::SuvVm*>(v)) return s;
  if (auto* d = dynamic_cast<vm::DynTm*>(v)) {
    return dynamic_cast<vm::SuvVm*>(&d->inner());
  }
  return nullptr;
}

}  // namespace

Checker::Checker(const sim::SimConfig& cfg, mem::MemorySystem& mem,
                 htm::HtmSystem& htm)
    : cfg_(cfg), mem_(mem), htm_(htm), suv_(find_suv_backend(htm)),
      oracle_(htm.num_cores(), cfg.check.reference) {}

void Checker::on_run_start() {
  // Copy every workload page wholesale (pool pages hold SUV-internal
  // versions, not workload state; they are exempt from the sweep). Pages
  // allocated after this point read as zero at run start, which is exactly
  // what a snapshot miss yields in the sweep.
  snapshot_.clear();
  mem_.backing().for_each_page_id([&](std::uint64_t page) {
    if (page * kPageBytes >= kRedirectPoolBase) return;
    const std::uint64_t* words = mem_.backing().page_words(page);
    auto copy = std::make_unique<SnapshotPage>();
    std::copy(words, words + copy->size(), copy->begin());
    snapshot_.emplace(page, std::move(copy));
  });
  snapshot_taken_ = true;
}

void Checker::on_commit_done(CoreId c, Cycle now, bool lazy) {
  oracle_.on_commit_done(c, now, lazy);
  ++commits_seen_;
  if (cfg_.check.audit_period != 0 &&
      commits_seen_ % cfg_.check.audit_period == 0) {
    run_audits();
  }
}

void Checker::on_abort_done(CoreId c) {
  oracle_.on_abort_done(c);
  if (cfg_.check.audit_on_abort) run_abort_audits(c);
}

void Checker::on_suspend(CoreId c) {
  // Fires before HtmSystem resets the suspended transaction's core-local
  // state. (The suspended-summary signatures take over conflict filtering,
  // and on_access_granted audits suspended footprints with the full scan.)
  oracle_.on_suspend(c);
}

void Checker::on_resume(CoreId c) {
  // Fires after HtmSystem restored the parked transaction into the core.
  oracle_.on_resume(c);
}

void Checker::grant_audit_slow(CoreId c, LineAddr line, bool exclusive,
                               bool requester_lazy) {
  // The conflict manager filters on signatures, which are supersets of the
  // exact sets below: a granted access that intersects an exact set means
  // isolation itself broke, not just the filter. Doomed transactions are
  // skipped -- committer-wins and lazy-reader invalidation doom the victim
  // and then legitimately proceed through its footprint while it drains.
  auto& txns = htm_.txn_view();
  for (CoreId o = 0; o < txns.size(); ++o) {
    if (o == c) continue;
    const htm::Txn* t = txns[o];
    if (!t || !t->holds_isolation() || t->doomed) continue;
    const char* why = nullptr;
    if (t->lazy && t->state == htm::TxnState::kRunning) {
      // Buffered writes confer no coherence permission; only an exclusive
      // request on its write set is an eager conflict.
      if (exclusive && t->write_lines.contains(line)) why = "write set";
    } else if (requester_lazy) {
      if (t->write_lines.contains(line)) why = "write set";
    } else if (exclusive) {
      if (t->write_lines.contains(line)) why = "write set";
      else if (t->read_lines.contains(line)) why = "read set";
    } else {
      if (t->write_lines.contains(line)) why = "write set";
    }
    if (why) {
      violation(format(
          "isolation: core %u was granted %s access to line %#llx inside the "
          "%s of core %u's %s transaction",
          c, exclusive ? "exclusive" : "shared",
          static_cast<unsigned long long>(line), why, o,
          t->lazy ? "lazy" : "eager"));
    }
  }
  htm_.for_each_suspended([&](CoreId from, const htm::Txn& s) {
    const bool hit = s.write_lines.contains(line) ||
                     (exclusive && s.read_lines.contains(line));
    if (hit) {
      violation(format(
          "isolation: core %u was granted %s access to line %#llx held by "
          "the suspended transaction from core %u",
          c, exclusive ? "exclusive" : "shared",
          static_cast<unsigned long long>(line), from));
    }
  });
}

void Checker::run_audits() {
  ++audits_run_;
  for (auto& msg : audit_all(mem_, htm_, suv_)) violation(std::move(msg));
}

void Checker::run_abort_audits(CoreId c) {
  // Aborts are where version-management bugs surface, so every abort gets
  // audited -- scoped to the aborting attempt (O(footprint)). The global
  // structure walks stay on the sampled commit path and finalize(): per
  // abort their full table/directory sweeps dominated the whole run.
  ++audits_run_;
  for (auto& msg : audit_abort(htm_, suv_, c)) violation(std::move(msg));
}

void Checker::finalize() {
  // Redirection is line-granular (debug_resolve preserves the offset
  // within the line), so both sweeps resolve once per line and read the
  // line's words directly.
  oracle_.finalize(
      [this, last_line = ~LineAddr{0}, delta = Addr{0}](Addr a) mutable {
        const LineAddr line = line_of(a);
        if (line != last_line) {
          const Addr lb = line << kLineShift;
          delta = htm_.vm().debug_resolve(kNoCore, lb) - lb;
          last_line = line;
        }
        return mem_.load_word(a + delta);
      });
  for (const std::string& v : oracle_.violations()) violation(v);

  // Untouched-word sweep: every workload word no committed or
  // non-transactional write touched must still hold its run-start value (a
  // leaked speculative version or a broken abort restore shows up here;
  // committed words are covered by the oracle's replay comparison).
  if (snapshot_taken_) {
    std::size_t swept_violations = 0;
    mem_.backing().for_each_page_id([&](std::uint64_t page) {
      const Addr base = page * kPageBytes;
      if (base >= kRedirectPoolBase) return;
      const auto snap_it = snapshot_.find(page);
      const SnapshotPage* snap =
          snap_it == snapshot_.end() ? nullptr : snap_it->second.get();
      const ShadowStore::Page* replayed = oracle_.replay_page(page);
      for (Addr lb = base; lb < base + kPageBytes; lb += kLineBytes) {
        const Addr resolved = htm_.vm().debug_resolve(kNoCore, lb);
        for (std::uint32_t w = 0; w < kWordsPerLine; ++w) {
          const Addr a = lb + w * kWordBytes;
          const auto i =
              static_cast<std::uint32_t>((a & (kPageBytes - 1)) / kWordBytes);
          if (replayed != nullptr &&
              (replayed->written[i >> 6] >> (i & 63) & 1) != 0) {
            continue;
          }
          const std::uint64_t expect = snap == nullptr ? 0 : (*snap)[i];
          const std::uint64_t got = mem_.load_word(resolved + w * kWordBytes);
          if (got != expect && swept_violations < 8) {
            ++swept_violations;
            violation(format(
                "image: word %#llx was never committed-written yet changed "
                "from %#llx to %#llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(expect),
                static_cast<unsigned long long>(got)));
          }
        }
      }
    });
  }

  run_audits();

  if (!violations_.empty()) {
    std::string msg = format("correctness check failed (%zu violations):",
                             violations_.size());
    for (const std::string& v : violations_) {
      msg += "\n  ";
      msg += v;
    }
    throw CheckFailure(msg);
  }
}

void Checker::violation(std::string msg) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(msg));
  } else if (violations_.size() == kMaxViolations) {
    violations_.push_back("... further violations suppressed");
  }
}

}  // namespace suvtm::check
