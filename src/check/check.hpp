// suvtm::check -- runtime correctness checking for the simulator.
//
// The Checker glues the history oracle (history.hpp) and the structural
// audits (audit.hpp) onto a live simulation:
//
//   - every memory access, transaction boundary and suspend/resume is
//     recorded into the oracle, which proves the run conflict-serializable
//     and replays it serially for final-state equality;
//   - every granted access is audited against the exact read/write sets of
//     every other isolation-holding transaction (the signatures the
//     conflict manager consults are supersets of those sets, so a granted
//     access that intersects an exact set means isolation actually broke);
//   - every `audit_period`-th commit, plus every abort (audit_on_abort)
//     and finalize(), walks the coherence/signature/SUV structures for
//     internal consistency;
//   - finalize() additionally sweeps the whole backing-store image against
//     a snapshot taken at run start: words no committed access wrote must
//     be unchanged (a broken abort restore shows up here).
//
// Hot-path layout: the grant audit short-circuits on the candidate mask
// the conflict manager computed for this very access (see
// on_access_granted below). Only a grant whose line collides with another
// isolation holder's bit-sliced columns -- or any suspended transaction --
// pays the full per-core scan, which keeps the doomed/lazy case analysis
// in one (cold) place.
//
// Compile-time gating: the simulator's hook sites go through
// SUVTM_CHECK_HOOK, which compiles to nothing unless the build sets
// SUVTM_CHECK_ENABLED=1 (the SUVTM_CHECK CMake option). The Checker class
// itself is always compiled -- tests drive it directly -- only the hot-path
// hook sites vanish.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "htm/htm_system.hpp"

#ifndef SUVTM_CHECK_ENABLED
#define SUVTM_CHECK_ENABLED 0
#endif

#if SUVTM_CHECK_ENABLED
#define SUVTM_CHECK_HOOK(ck, call) \
  do {                             \
    if (ck) (ck)->call;            \
  } while (0)
#else
#define SUVTM_CHECK_HOOK(ck, call) \
  do {                             \
  } while (0)
#endif

namespace suvtm::mem {
class MemorySystem;
}
namespace suvtm::vm {
class SuvVm;
}
namespace suvtm::sim {
struct SimConfig;
}

namespace suvtm::check {

/// True when this build compiled the simulator's hook sites in.
inline constexpr bool kHooksCompiled = SUVTM_CHECK_ENABLED != 0;

/// Thrown by Checker::finalize() when any violation was recorded.
class CheckFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Checker {
 public:
  /// `mem` and `htm` must outlive the Checker. The SUV backend (if the
  /// scheme has one, directly or behind DynTM) is discovered from `htm`.
  Checker(const sim::SimConfig& cfg, mem::MemorySystem& mem,
          htm::HtmSystem& htm);

  // ---- run lifecycle -------------------------------------------------------
  /// Snapshot the initial workload image (after workload build, before the
  /// first simulated event). Required for the untouched-word sweep.
  void on_run_start();
  /// Drain the oracle, replay, and run every audit. Throws CheckFailure
  /// listing the violations if any check failed.
  void finalize();

  // ---- simulator hooks (see thread_context.cpp / htm_system.cpp) -----------
  void on_begin(CoreId c, Cycle now) { oracle_.on_begin(c, now); }
  void on_frame_push(CoreId c) { oracle_.on_frame_push(c); }
  void on_frame_pop(CoreId c) { oracle_.on_frame_pop(c); }
  void on_frame_rollback(CoreId c) { oracle_.on_frame_rollback(c); }
  void on_read(CoreId c, bool in_tx, Addr word, std::uint64_t value,
               Cycle now) {
    oracle_.on_read(c, in_tx, word, value, now);
  }
  void on_write(CoreId c, bool in_tx, Addr word, std::uint64_t value,
                Cycle now) {
    oracle_.on_write(c, in_tx, word, value, now);
  }
  void on_commit_start(CoreId c, Cycle now) { oracle_.on_commit_start(c, now); }
  void on_commit_done(CoreId c, Cycle now, bool lazy);
  void on_abort_done(CoreId c);
  void on_suspend(CoreId c);
  void on_resume(CoreId c);

  /// The conflict manager granted `c` access to `line`. Audits the grant
  /// against every other isolation holder's exact sets.
  ///
  /// First filter: the candidate mask the conflict manager itself computed
  /// for this very access (the hook fires in the same event, right after
  /// check()). Exact sets are subsets of the per-core signatures, which
  /// are subsets of the bit-sliced columns, so a zero mask proves no live
  /// transaction's sets can contain the line. That chain of supersets is
  /// itself audited (audit_signatures validates signature vs exact set and
  /// column vs signature every sampling period and at finalize), so a
  /// filter bug cannot silently disarm the audit for a whole run -- and
  /// the history oracle's conflict-ordering proof stays fully independent
  /// of all of these structures.
  void on_access_granted(CoreId c, LineAddr line, bool exclusive,
                         bool requester_lazy) {
    const std::uint64_t self = 1ull << c;
    const auto& cm = htm_.conflicts();
    if ((cm.grant_candidates() & ~self) == 0 && !cm.grant_suspended_possible())
      return;
    grant_audit_slow(c, line, exclusive, requester_lazy);
  }

  // ---- results -------------------------------------------------------------
  const std::vector<std::string>& violations() const { return violations_; }
  HistoryOracle& oracle() { return oracle_; }
  std::uint64_t audits_run() const { return audits_run_; }

 private:
  void grant_audit_slow(CoreId c, LineAddr line, bool exclusive,
                        bool requester_lazy);
  void run_audits();
  void run_abort_audits(CoreId c);
  void violation(std::string msg);

  const sim::SimConfig& cfg_;
  mem::MemorySystem& mem_;
  htm::HtmSystem& htm_;
  vm::SuvVm* suv_ = nullptr;  // discovered; nullptr for non-SUV schemes

  HistoryOracle oracle_;
  /// Run-start image, kept as whole-page copies keyed by page id: the
  /// snapshot build is a memcpy per allocated page and the untouched-word
  /// sweep compares arrays instead of probing a per-word hash map.
  using SnapshotPage = std::array<std::uint64_t, kPageBytes / kWordBytes>;
  FlatMap<std::uint64_t, std::unique_ptr<SnapshotPage>> snapshot_;
  bool snapshot_taken_ = false;
  std::uint64_t commits_seen_ = 0;
  std::uint64_t audits_run_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace suvtm::check
