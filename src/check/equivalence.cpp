#include "check/equivalence.hpp"

#include <algorithm>

#include "check/format.hpp"
#include "sim/simulator.hpp"

namespace suvtm::check {

FinalImage capture_final_image(stamp::AppId app, const sim::SimConfig& cfg,
                               const stamp::SuiteParams& params) {
  sim::Simulator sim(cfg);
  auto workload = stamp::make_workload(app);
  workload->build(sim, params);
  sim.run();
  workload->verify(sim);

  FinalImage out;
  out.scheme = cfg.scheme;
  out.makespan = sim.makespan();
  out.commits = sim.htm().stats().commits;
  sim.mem().backing().for_each_page_id([&](std::uint64_t page) {
    const Addr base = page * kPageBytes;
    if (base >= kRedirectPoolBase) return;  // pool pages are SUV-internal
    for (Addr a = base; a < base + kPageBytes; a += kWordBytes) {
      const std::uint64_t v = sim.read_word_resolved(a);
      if (v != 0) out.words.emplace(a, v);
    }
  });
  return out;
}

std::string diff_images(const FinalImage& a, const FinalImage& b,
                        std::size_t max_diffs) {
  // Collect mismatches in address order so the report is deterministic
  // regardless of map iteration order.
  std::vector<std::string> diffs;
  std::vector<Addr> addrs;
  addrs.reserve(a.words.size() + b.words.size());
  // lint: allow(nondet-iteration): order laundered by the sort below
  for (const auto& kv : a.words) addrs.push_back(kv.first);
  // lint: allow(nondet-iteration): order laundered by the sort below
  for (const auto& kv : b.words) {
    if (!a.words.contains(kv.first)) addrs.push_back(kv.first);
  }
  std::sort(addrs.begin(), addrs.end());
  std::size_t total = 0;
  for (Addr w : addrs) {
    const auto ia = a.words.find(w);
    const auto ib = b.words.find(w);
    const std::uint64_t va = ia == a.words.end() ? 0 : ia->second;
    const std::uint64_t vb = ib == b.words.end() ? 0 : ib->second;
    if (va == vb) continue;
    ++total;
    if (diffs.size() < max_diffs) {
      diffs.push_back(format("  word %#llx: %s=%#llx %s=%#llx",
                             static_cast<unsigned long long>(w),
                             sim::scheme_name(a.scheme),
                             static_cast<unsigned long long>(va),
                             sim::scheme_name(b.scheme),
                             static_cast<unsigned long long>(vb)));
    }
  }
  if (total == 0) return {};
  std::string out =
      format("%s and %s diverge on %zu words:", sim::scheme_name(a.scheme),
             sim::scheme_name(b.scheme), total);
  for (const std::string& d : diffs) {
    out += '\n';
    out += d;
  }
  if (total > diffs.size()) out += "\n  ...";
  return out;
}

std::string compare_schemes(stamp::AppId app, const sim::SimConfig& base,
                            const stamp::SuiteParams& params,
                            const std::vector<sim::Scheme>& schemes) {
  if (schemes.empty()) return {};
  std::string report;
  sim::SimConfig cfg = base;
  cfg.scheme = schemes.front();
  const FinalImage ref = capture_final_image(app, cfg, params);
  for (std::size_t i = 1; i < schemes.size(); ++i) {
    cfg.scheme = schemes[i];
    const FinalImage img = capture_final_image(app, cfg, params);
    std::string d = diff_images(ref, img);
    if (d.empty()) continue;
    if (!report.empty()) report += '\n';
    report += format("app %s: ", stamp::app_name(app));
    report += d;
  }
  return report;
}

}  // namespace suvtm::check
