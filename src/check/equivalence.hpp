// Cross-scheme equivalence harness: the four version-management schemes are
// different *mechanisms* for the same contract, so one workload run from one
// seed must leave bit-identical final memory under every scheme (after
// resolving live SUV redirections). A divergence means some scheme lost,
// duplicated or mis-versioned an update that the others kept.
//
// Timing, commit interleaving and abort counts legitimately differ between
// schemes; only the *resolved functional image* is compared, and only for
// workloads whose final state is insensitive to commit order (commutative
// updates, partitioned data). Callers pick the apps accordingly.
#pragma once

#include <string>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "sim/config.hpp"
#include "stamp/framework.hpp"

namespace suvtm::check {

/// Final resolved memory of one run: every nonzero workload word (pool
/// pages excluded), read through any live redirect entry.
struct FinalImage {
  sim::Scheme scheme{};
  FlatMap<Addr, std::uint64_t> words;
  Cycle makespan = 0;
  std::uint64_t commits = 0;
};

/// Run `app` under `cfg` (cfg.scheme decides the mechanism) and capture the
/// resolved final image. Workload verify() runs too; its exceptions
/// propagate.
FinalImage capture_final_image(stamp::AppId app, const sim::SimConfig& cfg,
                               const stamp::SuiteParams& params);

/// Word-for-word diff of two images. Empty string when identical; otherwise
/// a report naming up to `max_diffs` mismatching words.
std::string diff_images(const FinalImage& a, const FinalImage& b,
                        std::size_t max_diffs = 8);

/// Run `app` once per scheme from the same config/seed and diff every image
/// against the first scheme's. Empty string when all agree.
std::string compare_schemes(stamp::AppId app, const sim::SimConfig& base,
                            const stamp::SuiteParams& params,
                            const std::vector<sim::Scheme>& schemes);

}  // namespace suvtm::check
