// printf-style std::string formatter for violation messages. Check-side
// only: never included from simulator hot paths.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace suvtm::check {

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string format(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf);
}

}  // namespace suvtm::check
