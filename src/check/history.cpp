#include "check/history.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>

#include "check/format.hpp"

namespace suvtm::check {

HistoryOracle::HistoryOracle(std::uint32_t num_cores)
    : staged_(num_cores), parked_(num_cores) {}

void HistoryOracle::on_begin(CoreId c, Cycle now) {
  Staged& s = staged_[c];
  if (s.active) {
    violation(format("core %u: begin while a transaction is already staged", c));
  }
  s.active = true;
  s.committing = false;
  s.begin_cycle = now;
  s.commit_start = 0;
  s.accesses.clear();
  s.frame_marks.clear();
  s.touches.clear();
}

void HistoryOracle::on_frame_push(CoreId c) {
  staged_[c].frame_marks.push_back(staged_[c].accesses.size());
}

void HistoryOracle::on_frame_pop(CoreId c) {
  Staged& s = staged_[c];
  if (s.frame_marks.empty()) {
    violation(format("core %u: frame pop without a pushed frame", c));
    return;
  }
  // Merge into the parent: the inner frame's accesses stay staged.
  s.frame_marks.pop_back();
}

void HistoryOracle::on_frame_rollback(CoreId c) {
  Staged& s = staged_[c];
  if (s.frame_marks.empty()) {
    violation(format("core %u: frame rollback without a pushed frame", c));
    return;
  }
  // The inner frame's version-state was undone, so its accesses vanish from
  // the committed history. The touch map is rebuilt from the survivors: the
  // rolled-back accesses must not seed conflict-direction checks.
  s.accesses.resize(s.frame_marks.back());
  rebuild_touches(s);
}

void HistoryOracle::on_read(CoreId c, bool in_tx, Addr word,
                            std::uint64_t value, Cycle now) {
  record_access(c, in_tx, word, value, /*is_write=*/false, now);
}

void HistoryOracle::on_write(CoreId c, bool in_tx, Addr word,
                             std::uint64_t value, Cycle now) {
  record_access(c, in_tx, word, value, /*is_write=*/true, now);
}

void HistoryOracle::record_access(CoreId c, bool in_tx, Addr word,
                                  std::uint64_t value, bool is_write,
                                  Cycle now) {
  assert((word & (kWordBytes - 1)) == 0);
  if (in_tx) {
    Staged& s = staged_[c];
    if (!s.active) {
      violation(format("core %u: transactional access without begin", c));
      return;
    }
    s.accesses.push_back({word, value, now, is_write});
    touch(s, line_of(word), is_write, now);
    return;
  }
  // Non-transactional accesses are singleton transactions serialized at
  // their own (isolation-checked) issue cycle.
  pending_nontx_.push_back(
      {make_key(now, /*lazy=*/false), {word, value, now, is_write}});
  drain(now);
}

void HistoryOracle::touch(Staged& s, LineAddr line, bool is_write, Cycle now) {
  Touch& t = s.touches[line];
  Cycle& slot = is_write ? t.first_write : t.first_read;
  if (now < slot) slot = now;
}

void HistoryOracle::rebuild_touches(Staged& s) {
  s.touches.clear();
  for (const AccessRec& a : s.accesses) {
    touch(s, line_of(a.word), a.is_write, a.cycle);
  }
}

void HistoryOracle::on_commit_start(CoreId c, Cycle now) {
  Staged& s = staged_[c];
  if (!s.active) {
    violation(format("core %u: commit start without begin", c));
    return;
  }
  s.committing = true;
  s.commit_start = now;
}

void HistoryOracle::on_commit_done(CoreId c, Cycle now, bool lazy) {
  Staged& s = staged_[c];
  if (!s.active || !s.committing) {
    violation(format("core %u: commit done without commit start", c));
    return;
  }
  seal(c, now, lazy);
  s.active = false;
  s.committing = false;
  drain(now);
}

void HistoryOracle::on_abort_done(CoreId c) {
  // Aborted attempts leave no trace in the committed history; the version
  // manager's restore work is validated by the final-state comparison.
  Staged& s = staged_[c];
  s.active = false;
  s.committing = false;
  s.accesses.clear();
  s.frame_marks.clear();
  s.touches.clear();
}

void HistoryOracle::on_suspend(CoreId c) {
  parked_[c].push_back(std::move(staged_[c]));
  staged_[c] = Staged{};
}

void HistoryOracle::on_resume(CoreId c) {
  if (parked_[c].empty()) {
    violation(format("core %u: resume without a suspended transaction", c));
    return;
  }
  if (staged_[c].active) {
    violation(format("core %u: resume while another transaction is staged", c));
  }
  staged_[c] = std::move(parked_[c].front());
  parked_[c].erase(parked_[c].begin());
}

void HistoryOracle::seal(CoreId c, Cycle now, bool lazy) {
  Staged& s = staged_[c];
  const std::uint64_t key =
      lazy ? make_key(now, true) : make_key(s.commit_start, false);
  const std::uint64_t seq = seal_seq_++;
  ++commit_seq_;

  SealedWindow w;
  w.key = key;
  w.seq = seq;
  w.begin_cycle = s.begin_cycle;
  w.release_cycle = now;  // isolation drops when the commit completes
  w.lazy = lazy;
  w.touches.reserve(s.touches.size());
  // lint: allow(nondet-iteration): touches are sorted by line right below
  for (const auto& kv : s.touches) {
    // A lazy transaction's writes only become visible at publish, so that
    // is their effective conflict time regardless of when they were issued
    // (buffered or SUV-redirected, they were invisible until now).
    const Cycle write_eff =
        (kv.second.first_write == kNever) ? kNever : (lazy ? now : kv.second.first_write);
    w.touches.push_back({kv.first, kv.second.first_read, write_eff});
  }
  std::sort(w.touches.begin(), w.touches.end(),
            [](const TouchRec& a, const TouchRec& b) { return a.line < b.line; });

  check_window_conflicts(w);
  window_.push_back(std::move(w));
  prune_window(now);

  // Queue the accesses for serialization-order replay. Keys can arrive out
  // of order (an eager transaction seals at commit *done* but serializes at
  // commit *start*), so insert in sorted position from the back.
  PendingTxn p{key, seq, std::move(s.accesses)};
  s.accesses = {};
  auto it = pending_txns_.end();
  while (it != pending_txns_.begin()) {
    auto prev = std::prev(it);
    if (prev->key < p.key || (prev->key == p.key && prev->seq < p.seq)) break;
    it = prev;
  }
  pending_txns_.insert(it, std::move(p));
}

void HistoryOracle::check_window_conflicts(const SealedWindow& b) {
  for (const SealedWindow& a : window_) {
    if (a.release_cycle <= b.begin_cycle) continue;  // disjoint: trivially ordered
    const bool a_first = a.key < b.key || (a.key == b.key && a.seq < b.seq);
    const SealedWindow& f = a_first ? a : b;
    const SealedWindow& s = a_first ? b : a;
    // Merge the line-sorted touch lists.
    std::size_t i = 0, j = 0;
    while (i < f.touches.size() && j < s.touches.size()) {
      const TouchRec& ft = f.touches[i];
      const TouchRec& st = s.touches[j];
      if (ft.line < st.line) {
        ++i;
      } else if (st.line < ft.line) {
        ++j;
      } else {
        // Every conflicting access pair must run in serialization order;
        // ties are unorientable within a cycle and are skipped.
        if (ft.write != kNever && st.write != kNever && st.write < ft.write) {
          violation(format("conflict order: line %#" PRIx64
                           " w-w: txn seq %" PRIu64 " (key %" PRIu64
                           ") wrote at %" PRIu64 " after txn seq %" PRIu64
                           " (key %" PRIu64 ") wrote at %" PRIu64
                           " despite serializing first",
                           addr_of_line(ft.line), f.seq, f.key, ft.write,
                           s.seq, s.key, st.write));
        }
        if (ft.write != kNever && st.read != kNever && st.read < ft.write) {
          violation(format("conflict order: line %#" PRIx64
                           " w-r: txn seq %" PRIu64 " (key %" PRIu64
                           ") read at %" PRIu64 " before txn seq %" PRIu64
                           " (key %" PRIu64 ") wrote at %" PRIu64
                           " despite serializing after it",
                           addr_of_line(ft.line), s.seq, s.key, st.read,
                           f.seq, f.key, ft.write));
        }
        if (ft.read != kNever && st.write != kNever && st.write < ft.read) {
          violation(format("conflict order: line %#" PRIx64
                           " r-w: txn seq %" PRIu64 " (key %" PRIu64
                           ") wrote at %" PRIu64 " before txn seq %" PRIu64
                           " (key %" PRIu64 ") read at %" PRIu64
                           " despite serializing after it",
                           addr_of_line(ft.line), s.seq, s.key, st.write,
                           f.seq, f.key, ft.read));
        }
        ++i;
        ++j;
      }
    }
  }
}

void HistoryOracle::prune_window(Cycle now) {
  // A sealed window can only conflict-overlap transactions that began
  // before it released. Once every live (staged or parked) transaction
  // began at or after its release -- and any future one begins at >= now --
  // it can never be paired again.
  Cycle min_begin = now;
  for (const Staged& s : staged_) {
    if (s.active) min_begin = std::min(min_begin, s.begin_cycle);
  }
  for (const auto& q : parked_) {
    for (const Staged& s : q) {
      if (s.active) min_begin = std::min(min_begin, s.begin_cycle);
    }
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (window_[i].release_cycle > min_begin) {
      if (out != i) window_[out] = std::move(window_[i]);
      ++out;
    }
  }
  window_.resize(out);
}

std::uint64_t HistoryOracle::horizon(Cycle now) const {
  // Nothing sealing in the future can serialize before `now` except an
  // eager transaction already inside its commit window, which will seal
  // with key 2*commit_start. (We cannot tell lazy committers apart until
  // they seal, so treat every committer conservatively as eager.)
  std::uint64_t h = make_key(now, false);
  for (const Staged& s : staged_) {
    if (s.active && s.committing) {
      h = std::min(h, make_key(s.commit_start, false));
    }
  }
  return h;
}

void HistoryOracle::drain(Cycle now) {
  const std::uint64_t h = horizon(now);
  for (;;) {
    const bool have_t = !pending_txns_.empty() && pending_txns_.front().key < h;
    const bool have_n =
        !pending_nontx_.empty() && pending_nontx_.front().key < h;
    if (!have_t && !have_n) break;
    // At equal keys the transaction replays first: a conflicting
    // non-transactional access admitted in the same cycle had to wait for
    // the transaction's isolation release.
    if (have_t &&
        (!have_n || pending_txns_.front().key <= pending_nontx_.front().key)) {
      replay_txn(pending_txns_.front().accesses);
      pending_txns_.pop_front();
    } else {
      replay_one(pending_nontx_.front().access);
      pending_nontx_.pop_front();
    }
  }
}

void HistoryOracle::drain_all() {
  for (;;) {
    const bool have_t = !pending_txns_.empty();
    const bool have_n = !pending_nontx_.empty();
    if (!have_t && !have_n) break;
    if (have_t &&
        (!have_n || pending_txns_.front().key <= pending_nontx_.front().key)) {
      replay_txn(pending_txns_.front().accesses);
      pending_txns_.pop_front();
    } else {
      replay_one(pending_nontx_.front().access);
      pending_nontx_.pop_front();
    }
  }
}

void HistoryOracle::replay_one(const AccessRec& a) {
  ++replayed_;
  if (a.is_write) {
    replay_[a.word] = a.value;
    return;
  }
  auto it = replay_.find(a.word);
  if (it == replay_.end()) {
    // First reference in serialization order: the observed value defines
    // the word's initial contents.
    replay_[a.word] = a.value;
  } else if (it->second != a.value) {
    violation(format("replay: read of %#" PRIx64 " observed %#" PRIx64
                     " but the serial history holds %#" PRIx64,
                     a.word, a.value, it->second));
  }
}

void HistoryOracle::replay_txn(const std::vector<AccessRec>& accesses) {
  scratch_own_.clear();
  for (const AccessRec& a : accesses) {
    ++replayed_;
    if (a.is_write) {
      scratch_own_[a.word] = a.value;
      continue;
    }
    auto own = scratch_own_.find(a.word);
    if (own != scratch_own_.end()) {
      if (own->second != a.value) {
        violation(format("replay: read of %#" PRIx64 " observed %#" PRIx64
                         " but the transaction itself wrote %#" PRIx64,
                         a.word, a.value, own->second));
      }
      continue;
    }
    auto it = replay_.find(a.word);
    if (it == replay_.end()) {
      replay_[a.word] = a.value;
    } else if (it->second != a.value) {
      violation(format("replay: read of %#" PRIx64 " observed %#" PRIx64
                       " but the serial history holds %#" PRIx64,
                       a.word, a.value, it->second));
    }
  }
  // lint: allow(nondet-iteration): drains into a map keyed by word; the
  // resulting replay_ content is the same whatever the visit order
  for (const auto& kv : scratch_own_) replay_[kv.first] = kv.second;
}

void HistoryOracle::finalize(
    const std::function<std::uint64_t(Addr)>& resolved_load) {
  for (CoreId c = 0; c < staged_.size(); ++c) {
    if (staged_[c].active) {
      violation(format("core %u: transaction still active at end of run", c));
    }
    if (!parked_[c].empty()) {
      violation(format("core %u: transaction still suspended at end of run", c));
    }
  }
  drain_all();
  window_.clear();
  if (!resolved_load) return;
  // Sweep the final image in ascending word order: violation() caps the
  // report at 64, so a hash-order walk of replay_ would let the FlatMap's
  // hash policy pick which mismatches get reported instead of the lowest
  // addresses (suvlint: nondet-iteration).
  std::vector<Addr> addrs;
  addrs.reserve(replay_.size());
  // lint: allow(nondet-iteration): order laundered by the sort below
  for (const auto& kv : replay_) addrs.push_back(kv.first);
  std::sort(addrs.begin(), addrs.end());
  for (Addr w : addrs) {
    const std::uint64_t expect = replay_.find(w)->second;
    const std::uint64_t actual = resolved_load(w);
    if (actual != expect) {
      violation(format("final state: word %#" PRIx64 " is %#" PRIx64
                       " but serial replay yields %#" PRIx64,
                       w, actual, expect));
    }
  }
}

void HistoryOracle::violation(std::string msg) {
  // Cap the report; one broken invariant tends to cascade.
  if (violations_.size() < 64) violations_.push_back(std::move(msg));
}

}  // namespace suvtm::check
