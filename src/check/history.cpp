#include "check/history.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>

#include "check/format.hpp"

namespace suvtm::check {

HistoryOracle::HistoryOracle(std::uint32_t num_cores, bool reference)
    : staged_(num_cores), parked_(num_cores), reference_(reference) {}

void HistoryOracle::on_begin(CoreId c, Cycle now) {
  Staged& s = staged_[c];
  if (s.active) {
    violation(format("core %u: begin while a transaction is already staged", c));
    if (s.committing) --committing_count_;
  }
  s.active = true;
  s.committing = false;
  s.begin_cycle = now;
  s.commit_start = 0;
  s.run_line = kNoLine;
  s.recs.clear(pool_);
  s.runs.clear();
  s.frame_marks.clear();
}

void HistoryOracle::on_frame_push(CoreId c) {
  Staged& s = staged_[c];
  s.frame_marks.push_back(
      {s.recs.size(), static_cast<std::uint32_t>(s.runs.size())});
}

void HistoryOracle::on_frame_pop(CoreId c) {
  Staged& s = staged_[c];
  if (s.frame_marks.empty()) {
    violation(format("core %u: frame pop without a pushed frame", c));
    return;
  }
  // Merge into the parent: the inner frame's accesses stay staged.
  s.frame_marks.pop_back();
}

void HistoryOracle::on_frame_rollback(CoreId c) {
  Staged& s = staged_[c];
  if (s.frame_marks.empty()) {
    violation(format("core %u: frame rollback without a pushed frame", c));
    return;
  }
  // The inner frame's version-state was undone, so its accesses vanish from
  // the committed history (and must not seed conflict-direction checks):
  // both the record stream and the touch-run stream roll back to the mark.
  // The open access run is closed too -- its head may have been expunged,
  // so a later same-line access must start a fresh run to keep its
  // first-touch time.
  s.recs.truncate(pool_, s.frame_marks.back().recs);
  s.runs.resize(s.frame_marks.back().runs);
  s.run_line = kNoLine;
}

void HistoryOracle::record_slow(CoreId c, bool in_tx, Addr word,
                                std::uint64_t value, bool is_write,
                                Cycle now) {
  assert((word & (kWordBytes - 1)) == 0);
  if (in_tx) {
    Staged& s = staged_[c];
    if (!s.active) {
      violation(format("core %u: transactional access without begin", c));
      return;
    }
    // try_append found the tail page full (or absent): chain a fresh one.
    // (The touch run was already noted by on_access.)
    s.recs.append_new_page(pool_, AccessRec::make(word, value, now, is_write));
    return;
  }
  // Non-transactional accesses are singleton transactions serialized at
  // their own (isolation-checked) issue cycle. Cycles arrive monotonically,
  // so the FIFO is key-sorted by construction.
  nontx_q_.push_back(AccessRec::make(word, value, now, is_write));
  if (reference_) return;
  // Only previously queued work can be behind the horizon (this access's
  // own key equals the no-committer horizon), so drain only when something
  // is actually due.
  const std::uint64_t k = make_key(now, /*lazy=*/false);
  if ((nontx_head_ < nontx_q_.size() &&
       make_key(nontx_q_[nontx_head_].cycle, false) < k) ||
      (!pending_txns_.empty() && pending_txns_.front().key < k)) {
    drain(now);
  }
}

void HistoryOracle::on_commit_start(CoreId c, Cycle now) {
  Staged& s = staged_[c];
  if (!s.active) {
    violation(format("core %u: commit start without begin", c));
    return;
  }
  if (!s.committing) ++committing_count_;
  s.committing = true;
  s.commit_start = now;
}

void HistoryOracle::on_commit_done(CoreId c, Cycle now, bool lazy) {
  Staged& s = staged_[c];
  if (!s.active || !s.committing) {
    violation(format("core %u: commit done without commit start", c));
    return;
  }
  seal(c, now, lazy);
  s.active = false;
  s.committing = false;
  --committing_count_;
  drain(now);
}

void HistoryOracle::on_abort_done(CoreId c) {
  // Aborted attempts leave no trace in the committed history; the version
  // manager's restore work is validated by the final-state comparison.
  Staged& s = staged_[c];
  if (s.committing) --committing_count_;
  s.active = false;
  s.committing = false;
  s.run_line = kNoLine;
  s.recs.clear(pool_);
  s.runs.clear();
  s.frame_marks.clear();
}

void HistoryOracle::on_suspend(CoreId c) {
  // The horizon only scans staged_ (parity with resume restoring the
  // count): a parked committer rejoins the committing census on resume.
  if (staged_[c].committing) --committing_count_;
  parked_[c].push_back(std::move(staged_[c]));
  staged_[c] = Staged{};
}

void HistoryOracle::on_resume(CoreId c) {
  if (parked_[c].empty()) {
    violation(format("core %u: resume without a suspended transaction", c));
    return;
  }
  if (staged_[c].active) {
    violation(format("core %u: resume while another transaction is staged", c));
    if (staged_[c].committing) --committing_count_;
  }
  staged_[c] = std::move(parked_[c].front());
  parked_[c].erase(parked_[c].begin());
  if (staged_[c].committing) ++committing_count_;
}

void HistoryOracle::seal(CoreId c, Cycle now, bool lazy) {
  Staged& s = staged_[c];
  const std::uint64_t key =
      lazy ? make_key(now, true) : make_key(s.commit_start, false);
  const std::uint64_t seq = seal_seq_++;
  ++commit_seq_;

  SealedWindow w;
  w.key = key;
  w.seq = seq;
  w.begin_cycle = s.begin_cycle;
  w.lazy = lazy;
  // Recycle a pruned window's touch capacity instead of allocating.
  if (!touch_pool_.empty()) {
    w.touches = std::move(touch_pool_.back());
    touch_pool_.pop_back();
    w.touches.clear();
  }
  // The recording hook run-compressed the touch stream as it recorded
  // (one entry per maximal same-line same-kind access run, stamped with
  // the run's first cycle), so summarizing a footprint is one pass over
  // the short run stream -- the full record stream is never re-walked; it
  // goes straight to replay. Runs arrive in access order, so min-merging
  // per line recovers exact first-touch times. A lazy transaction's
  // writes only become visible at publish, so that is their effective
  // conflict time regardless of when they were issued (buffered or
  // SUV-redirected, they were invisible until now).
  WinSig sig;
  for (const TouchRun& r : s.runs) {
    auto it = std::lower_bound(
        w.touches.begin(), w.touches.end(), r.line,
        [](const TouchRec& t, LineAddr l) { return t.line < l; });
    if (it == w.touches.end() || it->line != r.line) {
      it = w.touches.insert(it, {r.line, kNever, kNever});
      sig.rw.add(r.line);
    }
    if (r.is_write) {
      const Cycle eff = lazy ? now : r.cycle;
      if (eff < it->write) it->write = eff;
      sig.wr.add(r.line);
    } else {
      if (r.cycle < it->read) it->read = r.cycle;
    }
  }
  s.runs.clear();
  s.run_line = kNoLine;

  if (!w.touches.empty()) {
    check_window_conflicts(w, sig);
    window_sig_union_.rw.merge(sig.rw);
    window_sig_union_.wr.merge(sig.wr);
    window_.push_back(std::move(w));
    window_release_.push_back(now);  // isolation drops when commit completes
    window_sigs_.push_back(sig);
    // Pruning exists to bound memory, not for correctness: the binary
    // search in check_window_conflicts already skips released-before-begin
    // windows, so compaction can wait until the list is worth compacting.
    if (window_.size() >= 64) prune_window(now);
  } else if (w.touches.capacity() != 0) {
    // Touch-free transaction (every frame rolled back): it can never
    // conflict, so no window is retained.
    touch_pool_.push_back(std::move(w.touches));
  }

  // Queue the accesses for serialization-order replay. Keys can arrive out
  // of order (an eager transaction seals at commit *done* but serializes at
  // commit *start*), so insert in sorted position from the back.
  PendingTxn p{key, seq, std::move(s.recs)};
  auto it = pending_txns_.end();
  while (it != pending_txns_.begin()) {
    auto prev = std::prev(it);
    if (prev->key < p.key || (prev->key == p.key && prev->seq < p.seq)) break;
    it = prev;
  }
  pending_txns_.insert(it, std::move(p));
}

void HistoryOracle::check_window_conflicts(const SealedWindow& b,
                                           const WinSig& b_sig) {
  // No window wrote a line b touched, and b wrote no line any window
  // touched: no pair can carry a conflict, skip the scan outright.
  if (!window_sig_union_.conflicts(b_sig)) return;
  // Windows are appended in release order (simulated time is nondecreasing
  // across seals) and prune_window compacts in place, so window_release_
  // stays sorted: binary-search past everything that released before b
  // began instead of skipping it one compare at a time.
  const std::size_t first = static_cast<std::size_t>(
      std::upper_bound(window_release_.begin(), window_release_.end(),
                       b.begin_cycle) -
      window_release_.begin());
  for (std::size_t i = first; i < window_.size(); ++i) {
    // A violating line must be written by one side and touched by the
    // other; read-only sharing never pays the merge.
    if (!window_sigs_[i].conflicts(b_sig)) continue;
    check_window_pair(window_[i], b);
  }
}

void HistoryOracle::check_window_pair(const SealedWindow& a,
                                      const SealedWindow& b) {
  const bool a_first = a.key < b.key || (a.key == b.key && a.seq < b.seq);
  const SealedWindow& f = a_first ? a : b;
  const SealedWindow& sw = a_first ? b : a;
  // Merge the line-sorted touch lists.
  std::size_t i = 0, j = 0;
  while (i < f.touches.size() && j < sw.touches.size()) {
    const TouchRec& ft = f.touches[i];
    const TouchRec& st = sw.touches[j];
    if (ft.line < st.line) {
      ++i;
    } else if (st.line < ft.line) {
      ++j;
    } else {
      // Every conflicting access pair must run in serialization order;
      // ties are unorientable within a cycle and are skipped.
      if (ft.write != kNever && st.write != kNever && st.write < ft.write) {
        violation(format("conflict order: line %#" PRIx64
                         " w-w: txn seq %" PRIu64 " (key %" PRIu64
                         ") wrote at %" PRIu64 " after txn seq %" PRIu64
                         " (key %" PRIu64 ") wrote at %" PRIu64
                         " despite serializing first",
                         addr_of_line(ft.line), f.seq, f.key, ft.write,
                         sw.seq, sw.key, st.write));
      }
      if (ft.write != kNever && st.read != kNever && st.read < ft.write) {
        violation(format("conflict order: line %#" PRIx64
                         " w-r: txn seq %" PRIu64 " (key %" PRIu64
                         ") read at %" PRIu64 " before txn seq %" PRIu64
                         " (key %" PRIu64 ") wrote at %" PRIu64
                         " despite serializing after it",
                         addr_of_line(ft.line), sw.seq, sw.key, st.read,
                         f.seq, f.key, ft.write));
      }
      if (ft.read != kNever && st.write != kNever && st.write < ft.read) {
        violation(format("conflict order: line %#" PRIx64
                         " r-w: txn seq %" PRIu64 " (key %" PRIu64
                         ") wrote at %" PRIu64 " before txn seq %" PRIu64
                         " (key %" PRIu64 ") read at %" PRIu64
                         " despite serializing after it",
                         addr_of_line(ft.line), sw.seq, sw.key, st.write,
                         f.seq, f.key, ft.read));
      }
      ++i;
      ++j;
    }
  }
}

void HistoryOracle::prune_window(Cycle now) {
  // A sealed window can only conflict-overlap transactions that began
  // before it released. Once every live (staged or parked) transaction
  // began at or after its release -- and any future one begins at >= now --
  // it can never be paired again. (Reference mode retains everything; the
  // disjointness test in check_window_conflicts makes that verdict-neutral.)
  if (reference_) return;
  Cycle min_begin = now;
  for (const Staged& s : staged_) {
    if (s.active) min_begin = std::min(min_begin, s.begin_cycle);
  }
  for (const auto& q : parked_) {
    for (const Staged& s : q) {
      if (s.active) min_begin = std::min(min_begin, s.begin_cycle);
    }
  }
  std::size_t out = 0;
  window_sig_union_.rw.clear();
  window_sig_union_.wr.clear();
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (window_release_[i] > min_begin) {
      window_sig_union_.rw.merge(window_sigs_[i].rw);
      window_sig_union_.wr.merge(window_sigs_[i].wr);
      if (out != i) {
        window_[out] = std::move(window_[i]);
        window_release_[out] = window_release_[i];
        window_sigs_[out] = window_sigs_[i];
      }
      ++out;
    } else if (window_[i].touches.capacity() != 0) {
      touch_pool_.push_back(std::move(window_[i].touches));
    }
  }
  window_.resize(out);
  window_release_.resize(out);
  window_sigs_.resize(out);
}

std::uint64_t HistoryOracle::horizon(Cycle now) const {
  // Nothing sealing in the future can serialize before `now` except an
  // eager transaction already inside its commit window, which will seal
  // with key 2*commit_start. (We cannot tell lazy committers apart until
  // they seal, so treat every committer conservatively as eager.)
  std::uint64_t h = make_key(now, false);
  if (committing_count_ != 0) {
    for (const Staged& s : staged_) {
      if (s.active && s.committing) {
        h = std::min(h, make_key(s.commit_start, false));
      }
    }
  }
  return h;
}

void HistoryOracle::drain(Cycle now) {
  if (reference_) return;
  const std::uint64_t h = horizon(now);
  for (;;) {
    const bool have_t = !pending_txns_.empty() && pending_txns_.front().key < h;
    const bool have_n =
        nontx_head_ < nontx_q_.size() &&
        make_key(nontx_q_[nontx_head_].cycle, false) < h;
    if (!have_t && !have_n) break;
    // At equal keys the transaction replays first: a conflicting
    // non-transactional access admitted in the same cycle had to wait for
    // the transaction's isolation release.
    if (have_t &&
        (!have_n || pending_txns_.front().key <=
                        make_key(nontx_q_[nontx_head_].cycle, false))) {
      replay_txn(pending_txns_.front().recs);
      pending_txns_.pop_front();
    } else {
      replay_one(nontx_q_[nontx_head_++]);
    }
  }
  if (nontx_head_ == nontx_q_.size()) {
    nontx_q_.clear();
    nontx_head_ = 0;
  } else if (nontx_head_ > 4096 && nontx_head_ > nontx_q_.size() / 2) {
    nontx_q_.erase(nontx_q_.begin(),
                   nontx_q_.begin() + static_cast<std::ptrdiff_t>(nontx_head_));
    nontx_head_ = 0;
  }
}

void HistoryOracle::drain_all() {
  for (;;) {
    const bool have_t = !pending_txns_.empty();
    const bool have_n = nontx_head_ < nontx_q_.size();
    if (!have_t && !have_n) break;
    if (have_t &&
        (!have_n || pending_txns_.front().key <=
                        make_key(nontx_q_[nontx_head_].cycle, false))) {
      replay_txn(pending_txns_.front().recs);
      pending_txns_.pop_front();
    } else {
      replay_one(nontx_q_[nontx_head_++]);
    }
  }
  nontx_q_.clear();
  nontx_head_ = 0;
}

void HistoryOracle::replay_one(const AccessRec& a) {
  ++replayed_;
  if (a.is_write()) {
    shadow_.store(a.word(), a.value);
    return;
  }
  std::uint64_t expect;
  if (!shadow_.read_check(a.word(), a.value, &expect)) {
    violation(format("replay: read of %#" PRIx64 " observed %#" PRIx64
                     " but the serial history holds %#" PRIx64,
                     a.word(), a.value, expect));
  }
}

void HistoryOracle::replay_txn(RecStream& recs) {
  // A transaction's writes apply to the model in access order: a later
  // in-transaction read of its own store then checks against that store,
  // and no other transaction's accesses can interleave (the whole stream
  // replays at one serialization point). Pages retire to the pool as the
  // replay passes them.
  recs.consume(pool_, [this](const AccessRec& a) { replay_one(a); });
}

void HistoryOracle::finalize(
    // lint: allow(std-function): once-per-run entry point, not a sim path
    const std::function<std::uint64_t(Addr)>& resolved_load) {
  for (CoreId c = 0; c < staged_.size(); ++c) {
    if (staged_[c].active) {
      violation(format("core %u: transaction still active at end of run", c));
    }
    if (!parked_[c].empty()) {
      violation(format("core %u: transaction still suspended at end of run", c));
    }
  }
  drain_all();
  window_.clear();
  window_release_.clear();
  window_sigs_.clear();
  window_sig_union_.rw.clear();
  window_sig_union_.wr.clear();
  if (!resolved_load) return;
  // Sweep the final image in ascending word order: violation() caps the
  // report at 64, so the walk must be deterministic for the lowest
  // addresses to win (ShadowStore's sorted visit guarantees that).
  shadow_.for_each_defined_sorted(
      [&](Addr w, std::uint64_t expect, bool /*written*/) {
        const std::uint64_t actual = resolved_load(w);
        if (actual != expect) {
          violation(format("final state: word %#" PRIx64 " is %#" PRIx64
                           " but serial replay yields %#" PRIx64,
                           w, actual, expect));
        }
      });
}

FlatMap<Addr, std::uint64_t> HistoryOracle::replay_image() const {
  FlatMap<Addr, std::uint64_t> img;
  shadow_.for_each_defined_sorted(
      [&](Addr w, std::uint64_t v, bool /*written*/) { img.emplace(w, v); });
  return img;
}

void HistoryOracle::violation(std::string msg) {
  // Cap the report; one broken invariant tends to cascade.
  if (violations_.size() < 64) violations_.push_back(std::move(msg));
}

}  // namespace suvtm::check
