// History oracle: records every committed access the simulator performs and
// proves the run serializable (src/check's half of the paper's correctness
// contract; the structural audits in audit.hpp are the other half).
//
// Two independent proofs over one recorded history:
//
//  1. Serial replay (view equality). Every transaction's word-granularity
//     reads and writes are replayed in *serialization order* against a
//     model memory. Each replayed read must return exactly the value the
//     simulated core observed, and at end of run the model memory must
//     equal the simulator's resolved backing store word for word. This
//     proves the committed history view-equivalent to a serial one.
//
//  2. Conflict ordering (conflict serializability). For every pair of
//     committed transactions whose isolation windows overlapped, every
//     conflicting line access pair (r-w, w-r, w-w) must be ordered the same
//     way the serialization order is -- i.e. all conflict-graph edges point
//     forward, so the graph is acyclic by construction.
//
// Serialization order: eager transactions serialize at COMMIT START (their
// in-place writes and all reads precede it; isolation covers the rest of
// the commit window), lazy (DynTM) transactions at COMMIT DONE (their
// buffered/redirected writes publish there). This distinction matters: a
// lazy committer that exhausts its bounded commit wait may publish while an
// eager reader is still paying its commit latency, and that history is
// serializable only with the eager transaction ordered first. A lazy
// transaction's effective write time is likewise its publish cycle.
//
// The oracle is streaming: sealed transactions replay as soon as no
// earlier-serializing transaction can still be in flight, so memory is
// bounded by the run's data footprint plus the live-transaction window --
// not by history length.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace suvtm::check {

/// Aligned-word access as observed by the simulated core.
struct AccessRec {
  Addr word;
  std::uint64_t value;
  Cycle cycle;
  bool is_write;
};

class HistoryOracle {
 public:
  explicit HistoryOracle(std::uint32_t num_cores);

  // ---- recording hooks (driven by check::Checker) --------------------------
  void on_begin(CoreId c, Cycle now);
  void on_frame_push(CoreId c);
  void on_frame_pop(CoreId c);
  /// Inner frame partially aborted: its accesses are expunged (their
  /// version-state was rolled back), its isolation footprint remains.
  void on_frame_rollback(CoreId c);
  void on_read(CoreId c, bool in_tx, Addr word, std::uint64_t value,
               Cycle now);
  void on_write(CoreId c, bool in_tx, Addr word, std::uint64_t value,
                Cycle now);
  void on_commit_start(CoreId c, Cycle now);
  /// Outermost commit completed; the transaction's effects are published.
  void on_commit_done(CoreId c, Cycle now, bool lazy);
  void on_abort_done(CoreId c);
  void on_suspend(CoreId c);
  void on_resume(CoreId c);

  /// Drain every pending record, then compare the replayed model memory
  /// against the simulator (resolved_load must follow live redirections).
  /// Violations found at any stage accumulate in violations().
  void finalize(const std::function<std::uint64_t(Addr)>& resolved_load);

  std::uint64_t committed_txns() const { return commit_seq_; }
  std::uint64_t replayed_accesses() const { return replayed_; }
  const std::vector<std::string>& violations() const { return violations_; }
  /// Model memory after finalize(): the serial-replay value of every word
  /// any committed access touched.
  const FlatMap<Addr, std::uint64_t>& replay_image() const { return replay_; }

 private:
  static constexpr Cycle kNever = ~Cycle{0};

  /// First-touch times of one line by one transaction. `write` is the first
  /// physical in-place store for eager transactions and the publish cycle
  /// (assigned at seal) for lazy ones.
  struct Touch {
    Cycle first_read = kNever;
    Cycle first_write = kNever;
  };
  struct TouchRec {
    LineAddr line;
    Cycle read;
    Cycle write;
  };

  /// An in-flight (or suspended) transaction's recorded state.
  struct Staged {
    bool active = false;
    bool committing = false;
    Cycle begin_cycle = 0;
    Cycle commit_start = 0;
    std::vector<AccessRec> accesses;
    std::vector<std::size_t> frame_marks;
    FlatMap<LineAddr, Touch> touches;
  };

  /// Sealed accesses awaiting replay (kept until the serialization horizon
  /// passes their key).
  struct PendingTxn {
    std::uint64_t key;
    std::uint64_t seq;
    std::vector<AccessRec> accesses;
  };
  struct PendingNonTx {
    std::uint64_t key;
    AccessRec access;
  };

  /// Sealed conflict footprint retained while a live transaction's window
  /// can still overlap it.
  struct SealedWindow {
    std::uint64_t key;
    std::uint64_t seq;
    Cycle begin_cycle;
    Cycle release_cycle;
    bool lazy;
    std::vector<TouchRec> touches;
  };

  /// Serialization key: cycle-ordered, eager-before-lazy at equal cycles.
  static std::uint64_t make_key(Cycle cycle, bool lazy) {
    return (static_cast<std::uint64_t>(cycle) << 1) | (lazy ? 1u : 0u);
  }

  void record_access(CoreId c, bool in_tx, Addr word, std::uint64_t value,
                     bool is_write, Cycle now);
  static void touch(Staged& s, LineAddr line, bool is_write, Cycle now);
  static void rebuild_touches(Staged& s);
  void seal(CoreId c, Cycle now, bool lazy);
  void check_window_conflicts(const SealedWindow& b);
  void prune_window(Cycle now);
  /// Replay every pending record whose key is below the safe horizon.
  void drain(Cycle now);
  void drain_all();
  void replay_txn(const std::vector<AccessRec>& accesses);
  void replay_one(const AccessRec& a);
  std::uint64_t horizon(Cycle now) const;
  void violation(std::string msg);

  std::vector<Staged> staged_;                    // by core
  std::vector<std::vector<Staged>> parked_;       // suspended, FIFO per core
  std::deque<PendingTxn> pending_txns_;           // sorted by (key, seq)
  std::deque<PendingNonTx> pending_nontx_;        // keys arrive monotonically
  std::vector<SealedWindow> window_;
  FlatMap<Addr, std::uint64_t> replay_;           // model memory
  FlatMap<Addr, std::uint64_t> scratch_own_;      // per-replayed-txn writes
  std::uint64_t commit_seq_ = 0;
  std::uint64_t seal_seq_ = 0;
  std::uint64_t replayed_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace suvtm::check
