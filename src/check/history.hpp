// History oracle: records every committed access the simulator performs and
// proves the run serializable (src/check's half of the paper's correctness
// contract; the structural audits in audit.hpp are the other half).
//
// Two independent proofs over one recorded history:
//
//  1. Serial replay (view equality). Every transaction's word-granularity
//     reads and writes are replayed in *serialization order* against a
//     model memory. Each replayed read must return exactly the value the
//     simulated core observed, and at end of run the model memory must
//     equal the simulator's resolved backing store word for word. This
//     proves the committed history view-equivalent to a serial one.
//
//  2. Conflict ordering (conflict serializability). For every pair of
//     committed transactions whose isolation windows overlapped, every
//     conflicting line access pair (r-w, w-r, w-w) must be ordered the same
//     way the serialization order is -- i.e. all conflict-graph edges point
//     forward, so the graph is acyclic by construction.
//
// Serialization order: eager transactions serialize at COMMIT START (their
// in-place writes and all reads precede it; isolation covers the rest of
// the commit window), lazy (DynTM) transactions at COMMIT DONE (their
// buffered/redirected writes publish there). This distinction matters: a
// lazy committer that exhausts its bounded commit wait may publish while an
// eager reader is still paying its commit latency, and that history is
// serializable only with the eager transaction ordered first. A lazy
// transaction's effective write time is likewise its publish cycle.
//
// The oracle is streaming: sealed transactions replay as soon as no
// earlier-serializing transaction can still be in flight, and their arena
// pages return to the pool page-by-page as the replay passes them, so
// memory is bounded by the run's data footprint plus the live-transaction
// window -- not by history length. Recording is a bump-pointer append into
// a pooled RecStream (arena.hpp); the model memory is a page-granular
// ShadowStore so a replayed access is a load and a compare.
//
// Reference mode (cfg.check.reference) disables both the streaming drain
// and the window pruning: the whole history is retained and replayed only
// at finalize(). It exists purely as the differential-testing baseline the
// equivalence suite compares the incremental oracle against; verdicts are
// identical by construction (pruned windows are provably disjoint from
// every later window, and drain order equals finalize order).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "check/arena.hpp"
#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace suvtm::check {

class HistoryOracle {
 public:
  explicit HistoryOracle(std::uint32_t num_cores, bool reference = false);

  // ---- recording hooks (driven by check::Checker) --------------------------
  void on_begin(CoreId c, Cycle now);
  void on_frame_push(CoreId c);
  void on_frame_pop(CoreId c);
  /// Inner frame partially aborted: its accesses are expunged (their
  /// version-state was rolled back), its isolation footprint remains.
  void on_frame_rollback(CoreId c);
  /// Hot path: one bump-pointer append for an in-flight transactional
  /// access, plus a compare against the open access run (same line, same
  /// kind) that keeps the per-transaction touch stream run-compressed as
  /// it is recorded -- seal() then summarizes the (short) run stream
  /// instead of re-walking every record. Everything else (page overflow,
  /// non-transactional accesses, protocol violations) drops out of line.
  void on_read(CoreId c, bool in_tx, Addr word, std::uint64_t value,
               Cycle now) {
    on_access(c, in_tx, word, value, now, /*is_write=*/false);
  }
  void on_write(CoreId c, bool in_tx, Addr word, std::uint64_t value,
                Cycle now) {
    on_access(c, in_tx, word, value, now, /*is_write=*/true);
  }
  void on_commit_start(CoreId c, Cycle now);
  /// Outermost commit completed; the transaction's effects are published.
  void on_commit_done(CoreId c, Cycle now, bool lazy);
  void on_abort_done(CoreId c);
  void on_suspend(CoreId c);
  void on_resume(CoreId c);

  /// Drain every pending record, then compare the replayed model memory
  /// against the simulator (resolved_load must follow live redirections).
  /// Violations found at any stage accumulate in violations().
  /// Runs once per simulation, so the type-erased callback is fine here.
  // lint: allow(std-function): once-per-run entry point, not a sim path
  void finalize(const std::function<std::uint64_t(Addr)>& resolved_load);

  std::uint64_t committed_txns() const { return commit_seq_; }
  std::uint64_t replayed_accesses() const { return replayed_; }
  const std::vector<std::string>& violations() const { return violations_; }
  /// Model memory after finalize(), materialized as a word -> value table:
  /// the serial-replay value of every word any committed access touched.
  FlatMap<Addr, std::uint64_t> replay_image() const;
  /// Was this word the target of any replayed committed write? (Words only
  /// ever read report false.) Valid after finalize().
  bool replay_written(Addr word) const { return shadow_.written(word); }
  /// Page-granular view of the replay image's written bits (nullptr when
  /// the page saw no replayed access); lets the checker's image sweep test
  /// a whole page's words without per-word map probes.
  const ShadowStore::Page* replay_page(std::uint64_t page_id) const {
    return shadow_.page(page_id);
  }
  /// Arena pages ever allocated: with streaming retirement this is bounded
  /// by the live-transaction window, not by history length.
  std::size_t arena_pages() const { return pool_.pages_allocated(); }

 private:
  static constexpr Cycle kNever = ~Cycle{0};
  static constexpr LineAddr kNoLine = ~LineAddr{0};

  struct TouchRec {
    LineAddr line;
    Cycle read;   ///< first-read cycle (kNever if never read)
    Cycle write;  ///< first-write cycle; publish cycle for lazy txns
  };

  /// One maximal run of same-line same-kind accesses, recorded at its
  /// first access. The stream preserves access order, so seal() recovers
  /// exact first-touch times by min-merging runs per line.
  struct TouchRun {
    LineAddr line;
    Cycle cycle;
    bool is_write;
  };

  struct FrameMark {
    std::uint64_t recs;
    std::uint32_t runs;
  };

  /// An in-flight (or suspended) transaction's recorded state.
  struct Staged {
    bool active = false;
    bool committing = false;
    bool run_write = false;       // kind of the open access run
    Cycle begin_cycle = 0;
    Cycle commit_start = 0;
    LineAddr run_line = kNoLine;  // line of the open access run
    RecStream recs;
    std::vector<TouchRun> runs;   // run-compressed touch stream
    std::vector<FrameMark> frame_marks;
  };

  /// Sealed accesses awaiting replay (kept until the serialization horizon
  /// passes their key).
  struct PendingTxn {
    std::uint64_t key;
    std::uint64_t seq;
    RecStream recs;
  };

  /// Footprint summary: a 512-bit one-hash Bloom filter over touched
  /// lines. Two windows whose summaries do not intersect provably share no
  /// line, so the pairing loop skips their touch-list merge entirely. The
  /// width matters: typical footprints run tens of lines, which saturates
  /// a single word but keeps a 512-bit filter's pairwise false-positive
  /// rate low enough that most overlapping pairs skip the merge.
  struct LineSig {
    std::array<std::uint64_t, 8> w{};
    static std::uint64_t hash(LineAddr line) {
      return (line * 0x9E3779B97F4A7C15ull) >> 55;
    }
    void add(LineAddr line) {
      const std::uint64_t h = hash(line);
      w[(h >> 6) & 7] |= 1ull << (h & 63);
    }
    bool test(LineAddr line) const {
      const std::uint64_t h = hash(line);
      return (w[(h >> 6) & 7] >> (h & 63) & 1) != 0;
    }
    bool intersects(const LineSig& o) const {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < 8; ++i) acc |= w[i] & o.w[i];
      return acc != 0;
    }
    void merge(const LineSig& o) {
      for (std::size_t i = 0; i < 8; ++i) w[i] |= o.w[i];
    }
    void clear() { w.fill(0); }
  };

  /// Read/write footprint summary of one window. A pair of windows can
  /// only carry a conflict-ordering violation on a line one of them WROTE,
  /// so the pair filter is (a.wr n b.rw) | (a.rw n b.wr): lines shared
  /// read-only -- the overwhelmingly common kind of sharing -- never pay a
  /// touch-list merge.
  struct WinSig {
    LineSig rw;  ///< every touched line
    LineSig wr;  ///< written lines only
    bool conflicts(const WinSig& o) const {
      return wr.intersects(o.rw) || rw.intersects(o.wr);
    }
  };

  /// Sealed conflict footprint retained while a live transaction's window
  /// can still overlap it. `touches` is sorted by line and unique (one
  /// entry per line with its first-touch times). The release cycle and
  /// footprint signatures live in the parallel window_release_/window_sigs_
  /// arrays so the pairing scan reads contiguous memory.
  struct SealedWindow {
    std::uint64_t key;
    std::uint64_t seq;
    Cycle begin_cycle;
    bool lazy;
    std::vector<TouchRec> touches;
  };

  /// Serialization key: cycle-ordered, eager-before-lazy at equal cycles.
  static std::uint64_t make_key(Cycle cycle, bool lazy) {
    return (static_cast<std::uint64_t>(cycle) << 1) | (lazy ? 1u : 0u);
  }

  void on_access(CoreId c, bool in_tx, Addr word, std::uint64_t value,
                 Cycle now, bool is_write) {
    Staged& s = staged_[c];
    if (in_tx && s.active) [[likely]] {
      const LineAddr line = line_of(word);
      if (line != s.run_line || is_write != s.run_write) {
        s.run_line = line;
        s.run_write = is_write;
        s.runs.push_back({line, now, is_write});
      }
      if (s.recs.try_append(AccessRec::make(word, value, now, is_write)))
          [[likely]] {
        return;
      }
    }
    record_slow(c, in_tx, word, value, is_write, now);
  }
  void record_slow(CoreId c, bool in_tx, Addr word, std::uint64_t value,
                   bool is_write, Cycle now);
  void seal(CoreId c, Cycle now, bool lazy);
  void check_window_conflicts(const SealedWindow& b, const WinSig& b_sig);
  void check_window_pair(const SealedWindow& a, const SealedWindow& b);
  void prune_window(Cycle now);
  /// Replay every pending record whose key is below the safe horizon.
  void drain(Cycle now);
  void drain_all();
  void replay_txn(RecStream& recs);
  void replay_one(const AccessRec& a);
  std::uint64_t horizon(Cycle now) const;
  void violation(std::string msg);

  ArenaPool pool_;
  std::vector<Staged> staged_;                    // by core
  std::vector<std::vector<Staged>> parked_;       // suspended, FIFO per core
  std::deque<PendingTxn> pending_txns_;           // sorted by (key, seq)
  std::vector<AccessRec> nontx_q_;                // cycle-ordered FIFO ...
  std::size_t nontx_head_ = 0;                    // ... consumed from here
  std::vector<SealedWindow> window_;
  std::vector<Cycle> window_release_;             // parallel: release cycles
  std::vector<WinSig> window_sigs_;               // parallel: footprint sigs
  WinSig window_sig_union_;                       // OR of window_sigs_
  std::vector<std::vector<TouchRec>> touch_pool_; // capacity from pruned windows
  ShadowStore shadow_;                            // model memory
  std::uint32_t committing_count_ = 0;            // committing among staged_
  std::uint64_t commit_seq_ = 0;
  std::uint64_t seal_seq_ = 0;
  std::uint64_t replayed_ = 0;
  bool reference_ = false;
  std::vector<std::string> violations_;
};

}  // namespace suvtm::check
