// Header-only flat-container kit for the per-access hot path.
//
// Every simulated load/store consults several associative structures (txn
// read/write sets, the directory, the backing store's page map, SUV's
// redirect tables). The node-based std::unordered_map/set they started as
// pay a heap allocation plus a pointer chase per operation; these
// open-addressing replacements keep key/value pairs in one contiguous slot
// array with linear probing, so the common hit costs one hash, one probe
// and zero indirections.
//
// Shared properties (the determinism argument, DESIGN.md section 9):
//   - power-of-two capacity, index = mix64(key) & mask;
//   - value-based hashing only: slot placement is a pure function of the
//     key *values* and the insert/erase sequence, never of pointer
//     addresses, so two runs that perform the same operations produce the
//     same tables (and the same iteration order) -- this is what keeps
//     serial == jobs=1 == jobs=4 bit-identical;
//   - backshift (Robin Hood style tombstone-free) erase: deleting an entry
//     shifts displaced successors back toward their home slot, so probe
//     chains never accumulate tombstones and lookup cost stays bounded
//     under churn;
//   - clear() zeroes occupancy but keeps the allocation, because the
//     simulator clears transaction footprints millions of times per run.
//
// Pointer/iterator stability: NONE across insert/erase (open addressing
// moves slots). Callers must not hold references across mutating calls;
// the heap payloads they point at (e.g. BackingStore pages) stay put.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace suvtm {

/// 64-bit finalizer-style mixer (murmur3 fmix64 constants): full avalanche,
/// deterministic across platforms, and a pure function of the key value.
constexpr std::uint64_t hash_mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Default hasher for integer keys (Addr, LineAddr, CoreId, site ids).
struct FlatHash {
  std::size_t operator()(std::uint64_t k) const {
    return static_cast<std::size_t>(hash_mix64(k));
  }
};

namespace detail {

/// Common open-addressing machinery. `Slot` is the stored record, `KeyOf`
/// extracts the key from a slot. Occupancy lives in a parallel byte vector
/// so Slot stays a plain aggregate.
template <class K, class Slot, class KeyOf, class Hash>
class FlatTable {
 public:
  class iterator {
   public:
    using value_type = Slot;
    using reference = Slot&;
    using pointer = Slot*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    iterator(FlatTable* t, std::size_t i) : t_(t), i_(i) { skip(); }
    Slot& operator*() const { return t_->slots_[i_]; }
    Slot* operator->() const { return &t_->slots_[i_]; }
    iterator& operator++() {
      ++i_;
      skip();
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    std::size_t pos() const { return i_; }

   private:
    friend class FlatTable;
    void skip() {
      while (t_ && i_ < t_->slots_.size() && !t_->used_[i_]) ++i_;
    }
    FlatTable* t_ = nullptr;
    std::size_t i_ = 0;
  };

  class const_iterator {
   public:
    using value_type = Slot;
    using reference = const Slot&;
    using pointer = const Slot*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(const FlatTable* t, std::size_t i) : t_(t), i_(i) { skip(); }
    const Slot& operator*() const { return t_->slots_[i_]; }
    const Slot* operator->() const { return &t_->slots_[i_]; }
    const_iterator& operator++() {
      ++i_;
      skip();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    void skip() {
      while (t_ && i_ < t_->slots_.size() && !t_->used_[i_]) ++i_;
    }
    const FlatTable* t_ = nullptr;
    std::size_t i_ = 0;
  };

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drop all entries but keep the slot allocation (hot clear).
  void clear() {
    if (size_ == 0) return;
    // Word-scan the occupancy bytes: cleared tables are mostly free slots
    // (transaction-lifetime tables grow to a high-water capacity and reset
    // every attempt), so an all-free 8-slot group costs one 64-bit load.
    const std::size_t n = slots_.size();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, used_.data() + i, 8);
      if (w == 0) continue;
      for (std::size_t j = i; j < i + 8; ++j) {
        if (used_[j]) {
          slots_[j] = Slot{};
          used_[j] = 0;
        }
      }
    }
    for (; i < n; ++i) {
      if (used_[i]) {
        slots_[i] = Slot{};
        used_[i] = 0;
      }
    }
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // target load factor <= 0.75
    if (cap > slots_.size()) rehash(cap);
  }

  /// Slot index of `k`, or npos.
  std::size_t find_index(const K& k) const {
    if (size_ == 0) return npos;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(k) & mask;
    while (used_[i]) {
      if (KeyOf{}(slots_[i]) == k) return i;
      i = (i + 1) & mask;
    }
    return npos;
  }

  /// Slot for `k`, inserting a default slot (key set) if absent.
  /// Returns {index, inserted}.
  std::pair<std::size_t, bool> insert_key(const K& k) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(k) & mask;
    while (used_[i]) {
      if (KeyOf{}(slots_[i]) == k) return {i, false};
      i = (i + 1) & mask;
    }
    used_[i] = 1;
    KeyOf{}.set(slots_[i], k);
    ++size_;
    return {i, true};
  }

  /// Backshift erase of the entry at `pos` (must be occupied): scan the
  /// probe chain forward, shifting back every entry whose home slot lies at
  /// or before the hole, until a gap ends the chain.
  void erase_index(std::size_t pos) {
    assert(used_[pos]);
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = pos;
    std::size_t next = (pos + 1) & mask;
    while (used_[next]) {
      const std::size_t home = Hash{}(KeyOf{}(slots_[next])) & mask;
      // Cyclic distance from home to next vs from hole to next: the entry
      // may move into the hole only if its home is not inside (hole, next].
      if (((next - home) & mask) >= ((next - hole) & mask)) {
        slots_[hole] = std::move(slots_[next]);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    slots_[hole] = Slot{};
    used_[hole] = 0;
    --size_;
  }

  std::size_t erase_key(const K& k) {
    const std::size_t i = find_index(k);
    if (i == npos) return 0;
    erase_index(i);
    return 1;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 protected:
  static constexpr std::size_t kMinCapacity = 16;

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_ = std::vector<Slot>(new_cap);  // value-init; works for move-only V
    used_.assign(new_cap, 0);
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = Hash{}(KeyOf{}(old_slots[i])) & mask;
      while (used_[j]) j = (j + 1) & mask;
      slots_[j] = std::move(old_slots[i]);
      used_[j] = 1;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

}  // namespace detail

/// Open-addressing hash map. Keys and mapped values must be
/// default-constructible and movable; a default-constructed value denotes
/// an empty slot's payload (it is never observable through the API).
template <class K, class V, class Hash = FlatHash>
class FlatMap {
  struct Slot {
    K first{};
    V second{};
  };
  struct KeyOf {
    const K& operator()(const Slot& s) const { return s.first; }
    void set(Slot& s, const K& k) const { s.first = k; }
  };
  using Table = detail::FlatTable<K, Slot, KeyOf, Hash>;

 public:
  using value_type = Slot;
  using iterator = typename Table::iterator;
  using const_iterator = typename Table::const_iterator;

  iterator begin() { return t_.begin(); }
  iterator end() { return t_.end(); }
  const_iterator begin() const { return t_.begin(); }
  const_iterator end() const { return t_.end(); }

  std::size_t size() const { return t_.size(); }
  bool empty() const { return t_.empty(); }
  void clear() { t_.clear(); }
  void reserve(std::size_t n) { t_.reserve(n); }

  iterator find(const K& k) {
    const std::size_t i = t_.find_index(k);
    return i == Table::npos ? end() : iterator(&t_, i);
  }
  const_iterator find(const K& k) const {
    const std::size_t i = t_.find_index(k);
    return i == Table::npos ? end() : const_iterator(&t_, i);
  }
  std::size_t count(const K& k) const {
    return t_.find_index(k) == Table::npos ? 0 : 1;
  }
  bool contains(const K& k) const { return count(k) != 0; }

  /// Default-constructs the mapped value on first access, like std::map.
  V& operator[](const K& k) { return iterator(&t_, t_.insert_key(k).first)->second; }

  std::pair<iterator, bool> try_emplace(const K& k, V v = V{}) {
    const auto [i, inserted] = t_.insert_key(k);
    iterator it(&t_, i);
    if (inserted) it->second = std::move(v);
    return {it, inserted};
  }
  /// Insert-if-absent, like std::unordered_map::emplace with a (k, v) pair.
  std::pair<iterator, bool> emplace(const K& k, V v) {
    return try_emplace(k, std::move(v));
  }

  std::size_t erase(const K& k) { return t_.erase_key(k); }
  void erase(iterator it) { t_.erase_index(it.pos()); }

 private:
  Table t_;
};

/// Open-addressing hash set.
template <class K, class Hash = FlatHash>
class FlatSet {
  struct Slot {
    K key{};
  };
  struct KeyOf {
    const K& operator()(const Slot& s) const { return s.key; }
    void set(Slot& s, const K& k) const { s.key = k; }
  };
  using Table = detail::FlatTable<K, Slot, KeyOf, Hash>;

 public:
  /// Iterates keys (not slots), so range-for yields K like std::set.
  class const_iterator {
   public:
    using value_type = K;
    using reference = const K&;
    using pointer = const K*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    explicit const_iterator(typename Table::const_iterator it) : it_(it) {}
    const K& operator*() const { return it_->key; }
    const K* operator->() const { return &it_->key; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }

   private:
    typename Table::const_iterator it_;
  };
  using iterator = const_iterator;

  const_iterator begin() const { return const_iterator(t_.begin()); }
  const_iterator end() const { return const_iterator(t_.end()); }

  std::size_t size() const { return t_.size(); }
  bool empty() const { return t_.empty(); }
  void clear() { t_.clear(); }
  void reserve(std::size_t n) { t_.reserve(n); }

  bool insert(const K& k) { return t_.insert_key(k).second; }
  std::size_t erase(const K& k) { return t_.erase_key(k); }
  std::size_t count(const K& k) const {
    return t_.find_index(k) == Table::npos ? 0 : 1;
  }
  bool contains(const K& k) const { return count(k) != 0; }

 private:
  Table t_;
};

/// Small-buffer-optimized line-address set tuned for transaction footprints
/// (paper Table IV: most read/write sets are tens of lines). Elements live
/// in an insertion-ordered vector; membership is a linear scan while the
/// set is small (cheaper than any hashing at these sizes, and the scan
/// touches one or two cache lines), switching to a FlatSet index once it
/// outgrows the scan threshold. Iteration is always insertion-ordered,
/// which makes every result that depends on walking a footprint
/// reproducible by construction.
class LineSet {
 public:
  using const_iterator = std::vector<LineAddr>::const_iterator;

  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  bool contains(LineAddr l) const {
    if (!indexed_) {
      for (LineAddr x : items_) {
        if (x == l) return true;
      }
      return false;
    }
    return index_.contains(l);
  }
  std::size_t count(LineAddr l) const { return contains(l) ? 1 : 0; }

  /// Returns true if `l` was newly inserted.
  bool insert(LineAddr l) {
    if (contains(l)) return false;
    items_.push_back(l);
    if (indexed_) {
      index_.insert(l);
    } else if (items_.size() > kScanMax) {
      index_.reserve(2 * kScanMax);
      for (LineAddr x : items_) index_.insert(x);
      indexed_ = true;
    }
    return true;
  }

  /// Order-preserving removal; rare (only partial-abort paths), so the
  /// linear cost is acceptable.
  std::size_t erase(LineAddr l) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (items_[i] == l) {
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
        if (indexed_) index_.erase(l);
        return 1;
      }
    }
    return 0;
  }

  /// Keeps both the vector's and the index's allocations.
  void clear() {
    items_.clear();
    if (indexed_) {
      index_.clear();
      indexed_ = false;
    }
  }

 private:
  static constexpr std::size_t kScanMax = 16;

  std::vector<LineAddr> items_;
  FlatSet<LineAddr> index_;
  bool indexed_ = false;
};

}  // namespace suvtm
