#include "common/log.hpp"

namespace suvtm {

namespace {
LogLevel g_level = LogLevel::kNone;
const char* name(LogLevel l) {
  switch (l) {
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kTrace: return "TRACE";
    default: return "?";
  }
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lvl) { g_level = lvl; }

void log_line(LogLevel lvl, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", name(lvl), msg.c_str());
}

}  // namespace suvtm
