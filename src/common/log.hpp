// Minimal leveled logging. Off by default; enabled per-run for debugging.
#pragma once

#include <cstdio>
#include <string>

namespace suvtm {

enum class LogLevel { kNone = 0, kWarn = 1, kInfo = 2, kTrace = 3 };

/// Global log level; not thread-safe by design (the simulator is
/// single-threaded and deterministic).
LogLevel log_level();
void set_log_level(LogLevel lvl);

void log_line(LogLevel lvl, const std::string& msg);

#define SUVTM_LOG(lvl, ...)                                     \
  do {                                                          \
    if (static_cast<int>(::suvtm::log_level()) >=               \
        static_cast<int>(::suvtm::LogLevel::lvl)) {             \
      char buf_[512];                                           \
      std::snprintf(buf_, sizeof buf_, __VA_ARGS__);            \
      ::suvtm::log_line(::suvtm::LogLevel::lvl, buf_);          \
    }                                                           \
  } while (0)

}  // namespace suvtm
