#include "common/rng.hpp"

namespace suvtm {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used only to expand the seed into the xoshiro state.
std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix(x);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection-free approximation is fine here:
  // bias is < 2^-64 * bound, irrelevant for simulation workloads.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace suvtm
