// Deterministic pseudo-random number generation (xoshiro256**).
//
// The simulator must be bit-for-bit reproducible across runs, so all
// randomness (workload inputs, backoff jitter) flows through explicitly
// seeded Rng instances; std::rand / random_device are never used.
#pragma once

#include <cstdint>

namespace suvtm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace suvtm
