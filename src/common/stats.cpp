#include "common/stats.hpp"

#include <cmath>
#include <cstdio>

namespace suvtm {

void Histogram::add(double x) {
  std::size_t i = x <= 0 ? 0 : static_cast<std::size_t>(x / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return width_ * static_cast<double>(i + 1);
  }
  return width_ * static_cast<double>(counts_.size());
}

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace suvtm
