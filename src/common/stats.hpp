// Lightweight statistics accumulators used by every subsystem.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace suvtm {

/// Streaming accumulator: count / sum / min / max / mean.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [0, bucket_width * num_buckets); values past
/// the end land in the final (overflow) bucket.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t num_buckets)
      : width_(bucket_width), counts_(num_buckets, 0) {}

  void add(double x);
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  /// Smallest x such that at least fraction q of samples are <= x
  /// (bucket upper edge; an approximation by construction).
  double quantile(double q) const;

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ratio helper that tolerates a zero denominator.
inline double safe_ratio(double num, double den) {
  return den == 0.0 ? 0.0 : num / den;
}

/// Percentage string with one decimal, e.g. "12.3%".
std::string percent(double fraction);

}  // namespace suvtm
