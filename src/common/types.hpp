// Fundamental scalar types and constants shared across the simulator.
#pragma once

#include <cstdint>
#include <cstddef>

namespace suvtm {

/// Simulated time, in core clock cycles (1.2 GHz per Table III).
using Cycle = std::uint64_t;

/// Byte address in the simulated flat physical address space.
using Addr = std::uint64_t;

/// 64-byte cache-line address (Addr >> 6).
using LineAddr = std::uint64_t;

/// Core / hardware-thread identifier (0..kNumCores-1).
using CoreId = std::uint32_t;

inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLineShift = 6;
inline constexpr std::uint32_t kWordBytes = 8;
inline constexpr std::uint32_t kWordsPerLine = kLineBytes / kWordBytes;
inline constexpr std::uint32_t kPageBytes = 4096;
inline constexpr std::uint32_t kPageShift = 12;
inline constexpr std::uint32_t kLinesPerPage = kPageBytes / kLineBytes;

constexpr LineAddr line_of(Addr a) { return a >> kLineShift; }
constexpr Addr addr_of_line(LineAddr l) { return l << kLineShift; }
constexpr Addr page_of(Addr a) { return a >> kPageShift; }
constexpr std::uint32_t word_in_line(Addr a) {
  return static_cast<std::uint32_t>((a >> 3) & (kWordsPerLine - 1));
}

/// Sentinel for "no core".
inline constexpr CoreId kNoCore = 0xffffffffu;

/// Base of the SUV preserved-pool region. Addresses at or above this are
/// redirect targets whose physical page pointer travels inside the redirect
/// entry itself (paper Figure 3: the entry stores a TLB index), so accesses
/// to them never need a TLB walk.
inline constexpr Addr kRedirectPoolBase = 1ull << 40;  // 1 TiB

}  // namespace suvtm
