// Why a transaction was doomed. Every doom site tags its victim with one of
// these so the abort-cause histogram (obs) and the trace's conflict edges can
// attribute aborts per scheme the way the paper's Table I does.
#pragma once

#include <cstdint>

namespace suvtm::htm {

enum class AbortCause : std::uint8_t {
  kNone = 0,           ///< not doomed (a committed attempt)
  kDeadlockCycle,      ///< stall-policy cycle detection chose this txn
  kRequesterWins,      ///< holder doomed under ConflictPolicy::kRequesterWins
  kLazyInvalidated,    ///< lazy reader lost its cached line to an exclusive
                       ///< access (DynTM: reads cannot revalidate)
  kLazyCommitDoom,     ///< a lazy committer's publish overlapped this txn
  kSuspendedConflict,  ///< suspended txn overlapped a committer's write set
  kNestingFallback,    ///< partial abort unsupported: full abort instead
  kExplicit,           ///< workload/test-directed doom
  kCauseCount,
};

constexpr const char* abort_cause_name(AbortCause c) {
  switch (c) {
    case AbortCause::kNone: return "none";
    case AbortCause::kDeadlockCycle: return "deadlock-cycle";
    case AbortCause::kRequesterWins: return "requester-wins";
    case AbortCause::kLazyInvalidated: return "lazy-invalidated";
    case AbortCause::kLazyCommitDoom: return "lazy-commit-doom";
    case AbortCause::kSuspendedConflict: return "suspended-conflict";
    case AbortCause::kNestingFallback: return "nesting-fallback";
    case AbortCause::kExplicit: return "explicit";
    default: return "?";
  }
}

}  // namespace suvtm::htm
