#include "htm/conflict_manager.hpp"

#include <bit>
#include <cassert>

#include "obs/recorder.hpp"

namespace suvtm::htm {

ConflictManager::ConflictManager(std::uint32_t num_cores,
                                 sim::ConflictPolicy policy,
                                 std::uint32_t sig_bits,
                                 std::uint32_t sig_hashes)
    : waits_for_(num_cores, kNoCore),
      policy_(policy),
      col_bits_(sig_bits),
      col_k_(sig_hashes),
      read_cols_(sig_bits, 0),
      write_cols_(sig_bits, 0),
      touched_(num_cores),
      needs_full_clear_(num_cores, 0) {
  assert(num_cores <= 64 && "isolation/column masks are 64-bit words");
  assert(std::has_single_bit(sig_bits) && "signature bits must be a power of 2");
}

void ConflictManager::clear_columns(CoreId core) {
  std::vector<std::uint64_t>& journal = touched_[core];
  const std::uint64_t keep = ~(1ull << core);
  // Past ~bits/k journal entries the positions cover most of the filter
  // anyway; the sweep is cheaper and exact.
  if (needs_full_clear_[core] || journal.size() * col_k_ > col_bits_) {
    for (std::uint64_t& w : read_cols_) w &= keep;
    for (std::uint64_t& w : write_cols_) w &= keep;
    needs_full_clear_[core] = 0;
  } else {
    for (const std::uint64_t m : journal) {
      std::uint32_t b = static_cast<std::uint32_t>(m);
      const std::uint32_t step = static_cast<std::uint32_t>(m >> 32) | 1u;
      for (std::uint32_t i = 0; i < col_k_; ++i, b += step) {
        const std::uint32_t idx = b & (col_bits_ - 1);
        read_cols_[idx] &= keep;
        write_cols_[idx] &= keep;
      }
    }
  }
  journal.clear();
}

void ConflictManager::resync(CoreId core, const Txn& t) {
  clear_columns(core);
  const std::uint64_t bit = 1ull << core;
  const auto install = [&](std::vector<std::uint64_t>& cols,
                           const Signature& sig) {
    const auto& words = sig.words();
    for (std::size_t w = 0; w < words.size(); ++w) {
      for (std::uint64_t word = words[w]; word != 0; word &= word - 1) {
        cols[(w << 6) | static_cast<std::size_t>(std::countr_zero(word))] |=
            bit;
      }
    }
  };
  install(read_cols_, t.read_sig);
  install(write_cols_, t.write_sig);
  // The journal never saw these bits: the next release must sweep.
  needs_full_clear_[core] = 1;
}

bool ConflictManager::reaches(CoreId start, CoreId target) const {
  CoreId cur = start;
  // The walk terminates: waits_for_ has at most one out-edge per core and we
  // bound the walk by the core count.
  for (std::size_t steps = 0; steps <= waits_for_.size(); ++steps) {
    if (cur == kNoCore) return false;
    if (cur == target) return true;
    cur = waits_for_[cur];
  }
  return false;
}

ConflictManager::Decision ConflictManager::check_slow(
    CoreId core, LineAddr line, bool is_write, bool requester_lazy,
    const std::vector<Txn*>& txns, std::uint64_t lm, std::uint64_t cand) {
  const Txn* self = txns[core];
  CoreId holder = kNoCore;
  bool exact = false;
  Decision d;
  // `cand` came from the inline bit-sliced pre-filter: cores outside it are
  // proven signature misses. This loop re-tests the survivors' real
  // signatures, so decisions are identical to the historical full per-core
  // scan (bit iteration walks cores in increasing order, matching the old
  // loop's tie-breaking).
  for (std::uint64_t m = cand; m != 0; m &= m - 1) {
    const CoreId c = static_cast<CoreId>(std::countr_zero(m));
    const Txn* t = txns[c];
    if (!t || !t->holds_isolation()) continue;
    const bool holder_lazy_running =
        t->lazy && t->state == TxnState::kRunning;
    bool hit;
    bool check_read_sig;
    if (holder_lazy_running) {
      // Buffered writes confer no coherence permission: only write-write
      // conflicts are eager against a running lazy transaction. A write to a
      // line the lazy transaction merely READ invalidates its cached copy,
      // which aborts it (it cannot revalidate its read set).
      hit = is_write && t->write_sig.test_mixed(lm);
      check_read_sig = false;
      if (!hit && is_write && t->read_sig.test_mixed(lm)) {
        d.invalidated_lazy_readers.push_back(c);
        continue;
      }
    } else if (requester_lazy) {
      // A lazy requester never blocks on readers; uncommitted in-place or
      // publishing write sets must still NACK it.
      hit = t->write_sig.test_mixed(lm);
      check_read_sig = false;
    } else {
      hit = is_write ? (t->read_sig.test_mixed(lm) || t->write_sig.test_mixed(lm))
                     : t->write_sig.test_mixed(lm);
      check_read_sig = is_write;
    }
    if (!hit) continue;
    holder = c;
    exact = t->write_lines.count(line) != 0 ||
            (check_read_sig && t->read_lines.count(line) != 0);
    break;
  }
  if (holder == kNoCore) {
    // Check the suspended-transaction summaries (descheduled transactions
    // still hold isolation; their sets live in the per-core summary).
    const bool susp_hit =
        (is_write && suspended_reads_ && suspended_reads_->test_mixed(lm)) ||
        (suspended_writes_ && suspended_writes_->test_mixed(lm));
    if (susp_hit) {
      ++stats_.conflicts;
      ++stats_.suspended_stalls;
      d.invalidated_lazy_readers.clear();
      d.action = Action::kStall;  // cannot abort a descheduled transaction
      return d;
    }
    // Proceeding: any lazy readers collected above really do get doomed by
    // this access's invalidation, so their abort edges are recorded here
    // (the stalling paths clear the list instead).
    for ([[maybe_unused]] CoreId r : d.invalidated_lazy_readers) {
      SUVTM_OBS_HOOK(obs_, on_conflict_edge(core, r, line, txns[r]->site,
                                            AbortCause::kLazyInvalidated));
    }
    clear_wait(core);
    return d;
  }

  // Requester-wins policy: doom the holder (unless it is already
  // committing) and let the requester spin until the holder's isolation
  // clears -- the paper's "guarantee the execution of the requester".
  // Timestamp priority prevents mutual-doom livelock: only an OLDER
  // requester may kill the holder; younger ones fall back to stalling.
  if (policy_ == sim::ConflictPolicy::kRequesterWins && self &&
      self->active() && txns[holder]->state != TxnState::kCommitting &&
      self->timestamp < txns[holder]->timestamp) {
    ++stats_.conflicts;
    ++stats_.requester_wins;
    d.invalidated_lazy_readers.clear();
    d.holder = holder;
    d.victim = holder;
    d.victim_cause = AbortCause::kRequesterWins;
    SUVTM_OBS_HOOK(obs_,
                   on_conflict_edge(core, holder, line, txns[holder]->site,
                                    AbortCause::kRequesterWins));
    d.action = Action::kStall;  // stall until the doomed holder drains
    return d;
  }

  ++stats_.conflicts;
  if (!exact) ++stats_.false_conflicts;

  d.invalidated_lazy_readers.clear();  // only doom readers when proceeding
  d.holder = holder;

  // Non-transactional requesters just stall; they hold nothing, so they can
  // never be part of a cycle.
  if (!self || !self->active()) {
    d.action = Action::kStall;
    return d;
  }

  // Record the wait-for edge, then look for a cycle: does the holder's
  // chain already reach us?
  waits_for_[core] = holder;
  if (reaches(holder, core)) {
    // Abort the youngest transaction in the cycle.
    ++stats_.deadlock_aborts;
    CoreId victim = core;
    std::uint64_t youngest = txns[core]->timestamp;
    for (CoreId cur = holder; cur != core; cur = waits_for_[cur]) {
      const Txn* t = txns[cur];
      // Committing transactions are past the point of no return.
      if (t && t->active() && t->state != TxnState::kCommitting &&
          t->timestamp > youngest) {
        youngest = t->timestamp;
        victim = cur;
      }
    }
    d.victim = victim;
    d.victim_cause = AbortCause::kDeadlockCycle;
    // Edge direction: the access that detected the cycle kills the victim;
    // when the victim is the requester itself, the holder it waited on is
    // the aborter.
    SUVTM_OBS_HOOK(obs_, on_conflict_edge(victim == core ? holder : core,
                                          victim, line, txns[victim]->site,
                                          AbortCause::kDeadlockCycle));
    d.action = victim == core ? Action::kAbortSelf : Action::kStall;
    if (victim != core) waits_for_[victim] = kNoCore;
    else waits_for_[core] = kNoCore;
    return d;
  }
  d.action = Action::kStall;
  return d;
}

void ConflictManager::clear_wait(CoreId core) { waits_for_[core] = kNoCore; }

}  // namespace suvtm::htm
