// Eager conflict detection and the LogTM "Stall" resolution policy.
//
// Detection: every access (transactional or not -- strong isolation) is
// checked against all other cores' active signatures. A write conflicts with
// any other read or write signature hit; a read conflicts with a write
// signature hit. Transactions in kCommitting/kAborting still hold isolation.
//
// Resolution: the requester stalls and retries. A single-edge wait-for graph
// (each core stalls on at most one holder at a time) detects potential
// deadlock; the youngest transaction (latest first-attempt timestamp) in the
// cycle aborts, which matches LogTM's possible-cycle rule closely enough to
// preserve both progress and the paper's pathology dynamics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "htm/signature.hpp"
#include "htm/txn.hpp"
#include "obs/obs.hpp"
#include "sim/config.hpp"

namespace suvtm::htm {

struct ConflictStats {
  std::uint64_t conflicts = 0;        // NACKed requests (incl. retries)
  std::uint64_t false_conflicts = 0;  // signature hit but exact-set miss
  std::uint64_t deadlock_aborts = 0;  // victims chosen by cycle detection
  std::uint64_t requester_wins = 0;   // holders doomed by kRequesterWins
  std::uint64_t suspended_stalls = 0; // NACKs from suspended-txn summaries

  bool operator==(const ConflictStats&) const = default;
};

class ConflictManager {
 public:
  ConflictManager(std::uint32_t num_cores,
                  sim::ConflictPolicy policy =
                      sim::ConflictPolicy::kRequesterStalls);

  sim::ConflictPolicy policy() const { return policy_; }

  /// What the requester must do about a detected conflict.
  enum class Action : std::uint8_t { kProceed, kStall, kAbortSelf };

  struct Decision {
    Action action = Action::kProceed;
    CoreId holder = kNoCore;  // conflicting core when not kProceed
    CoreId victim = kNoCore;  // transaction doomed by cycle detection
    AbortCause victim_cause = AbortCause::kNone;  // why `victim` is doomed
    /// Running lazy transactions that only *read* a line this write now
    /// takes exclusive ownership of: the coherence invalidation aborts them
    /// (DynTM semantics). The caller dooms them; the access proceeds.
    std::vector<CoreId> invalidated_lazy_readers;
  };

  /// Check `line` access by `core` against all other transactions and apply
  /// the stall policy. `txns` is indexed by core; non-transactional
  /// requesters (txns[core] inactive) can only ever stall.
  ///
  /// Mixed-mode (DynTM) matrix -- lazy transactions buffer writes, so:
  ///  - a running lazy holder NACKs only writes that hit its write
  ///    signature (write-write conflicts stay eager; reads never see its
  ///    buffered data, so they pass),
  ///  - a lazy requester checks only holders' write signatures (readers do
  ///    not block it; it is doomed at their commit instead).
  Decision check(CoreId core, LineAddr line, bool is_write, bool requester_lazy,
                 const std::vector<Txn*>& txns);

  /// Callers must report every isolation transition (a core's txn going
  /// kIdle <-> non-idle) here. check() scans only the cores with their bit
  /// set instead of every core per access -- most accesses happen while few
  /// transactions are live, so this is the difference between O(active) and
  /// O(cores) on the hottest path in the simulator.
  void set_isolation(CoreId core, bool held) {
    const std::uint64_t bit = 1ull << core;
    if (held) isolation_mask_ |= bit;
    else isolation_mask_ &= ~bit;
  }

  /// The requester's access succeeded or its transaction ended: drop its
  /// wait-for edge.
  void clear_wait(CoreId core);

  /// Summary signatures of suspended transactions (paper Section IV-C /
  /// LogTM-SE): accesses conflicting with a descheduled transaction's sets
  /// stall until it is resumed and finishes. Pass nullptr to clear.
  void set_suspended_summary(const Signature* reads, const Signature* writes) {
    suspended_reads_ = reads;
    suspended_writes_ = writes;
  }

  const ConflictStats& stats() const { return stats_; }

  /// Observability: check() records an abort edge whenever it picks a
  /// victim (deadlock cycle, requester-wins, lazy-reader invalidation).
  void set_obs(obs::Recorder* r) { obs_ = r; }

 private:
  /// Walk the wait-for chain from `start`; returns true if it reaches
  /// `target` (a cycle, given target is about to wait on start's chain).
  bool reaches(CoreId start, CoreId target) const;

  std::vector<CoreId> waits_for_;  // kNoCore if not waiting
  std::uint64_t isolation_mask_ = 0;  // cores whose txn holds isolation
  sim::ConflictPolicy policy_;
  const Signature* suspended_reads_ = nullptr;
  const Signature* suspended_writes_ = nullptr;
  ConflictStats stats_;
  obs::Recorder* obs_ = nullptr;
};

}  // namespace suvtm::htm
