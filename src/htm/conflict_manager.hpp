// Eager conflict detection and the LogTM "Stall" resolution policy.
//
// Detection: every access (transactional or not -- strong isolation) is
// checked against all other cores' active signatures. A write conflicts with
// any other read or write signature hit; a read conflicts with a write
// signature hit. Transactions in kCommitting/kAborting still hold isolation.
//
// Resolution: the requester stalls and retries. A single-edge wait-for graph
// (each core stalls on at most one holder at a time) detects potential
// deadlock; the youngest transaction (latest first-attempt timestamp) in the
// cycle aborts, which matches LogTM's possible-cycle rule closely enough to
// preserve both progress and the paper's pathology dynamics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "htm/signature.hpp"
#include "htm/txn.hpp"
#include "obs/obs.hpp"
#include "sim/config.hpp"

namespace suvtm::htm {

struct ConflictStats {
  std::uint64_t conflicts = 0;        // NACKed requests (incl. retries)
  std::uint64_t false_conflicts = 0;  // signature hit but exact-set miss
  std::uint64_t deadlock_aborts = 0;  // victims chosen by cycle detection
  std::uint64_t requester_wins = 0;   // holders doomed by kRequesterWins
  std::uint64_t suspended_stalls = 0; // NACKs from suspended-txn summaries

  bool operator==(const ConflictStats&) const = default;
};

/// Sum `b` into `a` (harvesting a sharded machine's per-domain managers).
inline void accumulate(ConflictStats& a, const ConflictStats& b) {
  a.conflicts += b.conflicts;
  a.false_conflicts += b.false_conflicts;
  a.deadlock_aborts += b.deadlock_aborts;
  a.requester_wins += b.requester_wins;
  a.suspended_stalls += b.suspended_stalls;
}

class ConflictManager {
 public:
  /// `sig_bits`/`sig_hashes` must match the per-transaction signature
  /// geometry: the bit-sliced columns below index with the exact same
  /// double-hash derivation, so a column miss proves a signature miss.
  ConflictManager(std::uint32_t num_cores,
                  sim::ConflictPolicy policy =
                      sim::ConflictPolicy::kRequesterStalls,
                  std::uint32_t sig_bits = 2048, std::uint32_t sig_hashes = 4);

  sim::ConflictPolicy policy() const { return policy_; }

  /// What the requester must do about a detected conflict.
  enum class Action : std::uint8_t { kProceed, kStall, kAbortSelf };

  struct Decision {
    Action action = Action::kProceed;
    CoreId holder = kNoCore;  // conflicting core when not kProceed
    CoreId victim = kNoCore;  // transaction doomed by cycle detection
    AbortCause victim_cause = AbortCause::kNone;  // why `victim` is doomed
    /// Running lazy transactions that only *read* a line this write now
    /// takes exclusive ownership of: the coherence invalidation aborts them
    /// (DynTM semantics). The caller dooms them; the access proceeds.
    std::vector<CoreId> invalidated_lazy_readers;
  };

  /// Check `line` access by `core` against all other transactions and apply
  /// the stall policy. `txns` is indexed by core; non-transactional
  /// requesters (txns[core] inactive) can only ever stall.
  ///
  /// Mixed-mode (DynTM) matrix -- lazy transactions buffer writes, so:
  ///  - a running lazy holder NACKs only writes that hit its write
  ///    signature (write-write conflicts stay eager; reads never see its
  ///    buffered data, so they pass),
  ///  - a lazy requester checks only holders' write signatures (readers do
  ///    not block it; it is doomed at their commit instead).
  ///
  /// Inline fast path: the bit-sliced column probe proves "no signature can
  /// hit" for the overwhelming majority of accesses without an out-of-line
  /// call; only candidate hits and suspended-summary checks take the slow
  /// path. A read can only conflict with write sets; a write with read or
  /// write sets (superset of every branch of the matrix above).
  Decision check(CoreId core, LineAddr line, bool is_write, bool requester_lazy,
                 const std::vector<Txn*>& txns) {
    const std::uint64_t lm = Signature::mix(line);
    std::uint64_t cand = probe_columns(write_cols_, lm);
    if (is_write) cand |= probe_columns(read_cols_, lm);
    cand &= isolation_mask_ & ~(1ull << core);
    grant_cand_ = cand;
    grant_susp_possible_ =
        suspended_reads_ != nullptr || suspended_writes_ != nullptr;
    if (cand == 0) [[likely]] {
      // Suspended-transaction summaries are not in the columns; test them
      // here so a registered summary doesn't force every access out of
      // line. Misses take the same proceed path the slow scan would.
      const bool susp_hit =
          (is_write && suspended_reads_ && suspended_reads_->test_mixed(lm)) ||
          (suspended_writes_ && suspended_writes_->test_mixed(lm));
      if (!susp_hit) [[likely]] {
        grant_susp_possible_ = false;
        waits_for_[core] = kNoCore;  // == clear_wait(core): access proceeds
        return {};
      }
    }
    return check_slow(core, line, is_write, requester_lazy, txns, lm, cand);
  }

  /// Callers must report every isolation transition (a core's txn going
  /// kIdle <-> non-idle) here. check() intersects the bit-sliced candidate
  /// mask with the cores holding isolation; releasing also scrubs the
  /// core's column bits so stale candidates stay bounded by one
  /// transaction's footprint.
  void set_isolation(CoreId core, bool held) {
    const std::uint64_t bit = 1ull << core;
    if (held) {
      isolation_mask_ |= bit;
    } else {
      isolation_mask_ &= ~bit;
      clear_columns(core);
    }
  }

  /// Mirror of Txn::read_sig.add / write_sig.add: every line added to a
  /// LIVE transaction's signature must be reported here (first add per line
  /// suffices -- repeats set the same bits) so the bit-sliced columns stay
  /// a superset of the per-core signatures (the correctness contract
  /// check() relies on: column miss => signature miss). The touched mixes
  /// are journaled so release clears cost O(footprint), not O(sig bits).
  void note_read(CoreId core, LineAddr l) {
    const std::uint64_t m = Signature::mix(l);
    set_column_bits(read_cols_, core, m);
    touched_[core].push_back(m);
  }
  void note_write(CoreId core, LineAddr l) {
    const std::uint64_t m = Signature::mix(l);
    set_column_bits(write_cols_, core, m);
    touched_[core].push_back(m);
  }

  /// Rebuild `core`'s column bits from a transaction whose signatures were
  /// restored wholesale (deschedule/resume round trip) rather than grown
  /// add-by-add through note_read/note_write.
  void resync(CoreId core, const Txn& t);

  /// The requester's access succeeded or its transaction ended: drop its
  /// wait-for edge.
  void clear_wait(CoreId core);

  /// Summary signatures of suspended transactions (paper Section IV-C /
  /// LogTM-SE): accesses conflicting with a descheduled transaction's sets
  /// stall until it is resumed and finishes. Pass nullptr to clear.
  void set_suspended_summary(const Signature* reads, const Signature* writes) {
    suspended_reads_ = reads;
    suspended_writes_ = writes;
  }

  const ConflictStats& stats() const { return stats_; }

  /// Cores whose transaction currently holds isolation (the checker's
  /// grant audit short-circuits when nobody else does).
  std::uint64_t isolation_mask() const { return isolation_mask_; }

  /// Candidate mask the latest check() computed (columns AND isolation,
  /// requester excluded) and whether suspended summaries could have hit.
  /// Valid only inside the event that issued the check: the checker's
  /// grant audit, which runs immediately after a granted access, reuses
  /// it as its first filter (exact sets are subsets of the signatures,
  /// which are subsets of the columns, so a zero mask proves no live
  /// transaction holds the line). Initialized conservatively so a grant
  /// audit driven without a preceding check() still takes the slow scan.
  std::uint64_t grant_candidates() const { return grant_cand_; }
  bool grant_suspended_possible() const { return grant_susp_possible_; }

  /// Audit support: the raw column candidate mask for `line` (write or
  /// read columns, no isolation masking). audit_signatures uses it to
  /// prove the columns stay a superset of every live transaction's sets.
  std::uint64_t column_mask(LineAddr line, bool writes) const {
    return probe_columns(writes ? write_cols_ : read_cols_,
                         Signature::mix(line));
  }

  /// Observability: check() records an abort edge whenever it picks a
  /// victim (deadlock cycle, requester-wins, lazy-reader invalidation).
  void set_obs(obs::Recorder* r) { obs_ = r; }

 private:
  /// The rest of check(): scan the candidate cores' real signatures, apply
  /// the stall/requester-wins policy and deadlock detection. `lm` is the
  /// precomputed line mix, `cand` the masked candidate-core set.
  Decision check_slow(CoreId core, LineAddr line, bool is_write,
                      bool requester_lazy, const std::vector<Txn*>& txns,
                      std::uint64_t lm, std::uint64_t cand);

  /// Walk the wait-for chain from `start`; returns true if it reaches
  /// `target` (a cycle, given target is about to wait on start's chain).
  bool reaches(CoreId start, CoreId target) const;

  // ---- bit-sliced signature columns ---------------------------------------
  // cols[idx] holds one bit per core: set iff that core's signature has
  // filter bit `idx` set (or had it set since the core's last isolation
  // release -- stale supersets are harmless, the scan re-tests the real
  // signatures). Probing all cores therefore costs k column loads TOTAL
  // instead of k loads per active core: with the same (b, step) walk as
  // Signature::test_mixed, AND-ing the k columns yields the mask of cores
  // whose signature passes every probe.
  std::uint64_t probe_columns(const std::vector<std::uint64_t>& cols,
                              std::uint64_t m) const {
    std::uint32_t b = static_cast<std::uint32_t>(m);
    const std::uint32_t step = static_cast<std::uint32_t>(m >> 32) | 1u;
    std::uint64_t hit = ~0ull;
    for (std::uint32_t i = 0; i < col_k_; ++i, b += step) {
      hit &= cols[b & (col_bits_ - 1)];
      if (hit == 0) break;  // sparse columns: most probes die on load 1-2
    }
    return hit;
  }

  void set_column_bits(std::vector<std::uint64_t>& cols, CoreId core,
                       std::uint64_t m) {
    std::uint32_t b = static_cast<std::uint32_t>(m);
    const std::uint32_t step = static_cast<std::uint32_t>(m >> 32) | 1u;
    for (std::uint32_t i = 0; i < col_k_; ++i, b += step) {
      cols[b & (col_bits_ - 1)] |= 1ull << core;
    }
  }

  void clear_columns(CoreId core);

  std::vector<CoreId> waits_for_;  // kNoCore if not waiting
  std::uint64_t isolation_mask_ = 0;  // cores whose txn holds isolation
  std::uint64_t grant_cand_ = ~0ull;     // see grant_candidates()
  bool grant_susp_possible_ = true;
  sim::ConflictPolicy policy_;
  std::uint32_t col_bits_;  // == Signature bits of every probed txn
  std::uint32_t col_k_;     // == Signature hash count of every probed txn
  std::vector<std::uint64_t> read_cols_;   // col_bits_ words, bit per core
  std::vector<std::uint64_t> write_cols_;  // col_bits_ words, bit per core
  /// Per-core journal of noted line mixes; clear_columns scrubs exactly
  /// these positions (in both column arrays -- conservative but cheap)
  /// instead of sweeping every word. A resync installs bits the journal
  /// never saw, so it flags the core for one full-sweep clear instead.
  std::vector<std::vector<std::uint64_t>> touched_;
  std::vector<std::uint8_t> needs_full_clear_;
  const Signature* suspended_reads_ = nullptr;
  const Signature* suspended_writes_ = nullptr;
  ConflictStats stats_;
  obs::Recorder* obs_ = nullptr;
};

}  // namespace suvtm::htm
