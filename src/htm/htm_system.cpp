#include "htm/htm_system.hpp"

#include <cassert>

#include "check/check.hpp"
#include "obs/recorder.hpp"

namespace suvtm::htm {

HtmSystem::HtmSystem(const sim::SimConfig& cfg, mem::MemorySystem& mem,
                     std::unique_ptr<VersionManager> vm)
    : params_(cfg.htm), mem_(mem), vm_(std::move(vm)),
      conflicts_(cfg.mem.num_cores, cfg.htm.conflict_policy,
                 cfg.htm.signature_bits, cfg.htm.signature_hashes),
      suspended_reads_(cfg.htm.signature_bits, cfg.htm.signature_hashes),
      suspended_writes_(cfg.htm.signature_bits, cfg.htm.signature_hashes) {
  txns_.reserve(cfg.mem.num_cores);
  for (CoreId c = 0; c < cfg.mem.num_cores; ++c) {
    // lint: allow(alloc-in-loop) -- one-time construction, not a sim path
    txns_.push_back(std::make_unique<Txn>(c, params_.signature_bits,
                                          params_.signature_hashes));
    txn_view_.push_back(txns_.back().get());
  }
  vm_->attach(*this);
}

void HtmSystem::rebuild_suspended_summary() {
  // Bloom filters cannot subtract, so the summary is recomputed from the
  // suspended transactions' exact sets on every change (LogTM-SE does the
  // equivalent in its deschedule handler).
  suspended_reads_.clear();
  suspended_writes_.clear();
  for (const auto& s : suspended_) {
    for (LineAddr l : s.txn.read_lines) suspended_reads_.add(l);
    for (LineAddr l : s.txn.write_lines) suspended_writes_.add(l);
  }
  if (suspended_.empty()) {
    conflicts_.set_suspended_summary(nullptr, nullptr);
  } else {
    conflicts_.set_suspended_summary(&suspended_reads_, &suspended_writes_);
  }
}

bool HtmSystem::suspend_txn(CoreId core) {
  Txn& t = *txns_[core];
  if (t.state != TxnState::kRunning) return false;
  suspended_.push_back({core, t});
  // The checker sees the suspend while the descriptor still holds the
  // transaction's sets.
  SUVTM_CHECK_HOOK(checker_, on_suspend(core));
  t.reset_committed();  // fresh descriptor for the next scheduled thread
  conflicts_.set_isolation(core, false);
  rebuild_suspended_summary();
  vm_->on_suspend(core);
  SUVTM_OBS_HOOK(obs_, on_suspend(core));
  return true;
}

bool HtmSystem::resume_txn(CoreId core) {
  if (txns_[core]->active()) return false;
  for (auto it = suspended_.begin(); it != suspended_.end(); ++it) {
    if (it->core == core) {
      *txns_[core] = it->txn;  // saved state was kRunning: isolation resumes
      conflicts_.set_isolation(core, true);
      conflicts_.resync(core, *txns_[core]);
      suspended_.erase(it);
      rebuild_suspended_summary();
      vm_->on_resume(core);
      SUVTM_CHECK_HOOK(checker_, on_resume(core));
      SUVTM_OBS_HOOK(obs_, on_resume(core));
      return true;
    }
  }
  return false;
}

std::size_t HtmSystem::doom_suspended_conflicting(const Txn& committer) {
  std::size_t doomed = 0;
  for (auto& s : suspended_) {
    if (s.txn.doomed) continue;
    for (LineAddr l : committer.write_lines) {
      if (s.txn.read_lines.contains(l) || s.txn.write_lines.contains(l)) {
        s.txn.doomed = true;
        s.txn.doom_cause = AbortCause::kSuspendedConflict;
        SUVTM_OBS_HOOK(obs_,
                       on_conflict_edge(committer.core, s.core, l, s.txn.site,
                                        AbortCause::kSuspendedConflict));
        ++doomed;
        break;
      }
    }
  }
  return doomed;
}

void HtmSystem::doom(CoreId victim, AbortCause cause) {
  Txn& t = *txns_[victim];
  if (!t.active() || t.state == TxnState::kCommitting) return;
  if (!t.doomed) t.doom_cause = cause;
  t.doomed = true;
}

bool HtmSystem::acquire_commit_token(CoreId c) {
  if (token_holder_ != kNoCore && token_holder_ != c) return false;
  token_holder_ = c;
  return true;
}

void HtmSystem::release_commit_token(CoreId c) {
  assert(token_holder_ == c);
  (void)c;
  token_holder_ = kNoCore;
}

}  // namespace suvtm::htm
