// HtmSystem: per-core transactions + conflict manager + the configured
// version-management scheme, glued over the memory system.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "htm/conflict_manager.hpp"
#include "htm/txn.hpp"
#include "htm/version_manager.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"

namespace suvtm::check {
class Checker;
}

namespace suvtm::htm {

struct HtmStats {
  std::uint64_t begins = 0;     // outermost transaction attempts
  std::uint64_t commits = 0;    // committed atomic blocks
  std::uint64_t aborts = 0;     // aborted attempts
  std::uint64_t nested_begins = 0;
  /// Attempts (committed or aborted) whose speculative state overflowed the
  /// L1 -- the paper Table V's "overflowed transactions" metric.
  std::uint64_t overflowed_attempts = 0;

  bool operator==(const HtmStats&) const = default;

  double abort_ratio() const {
    const double att = static_cast<double>(commits + aborts);
    return att == 0.0 ? 0.0 : static_cast<double>(aborts) / att;
  }
};

/// Sum `b` into `a` (harvesting a sharded machine's per-domain HTM systems).
inline void accumulate(HtmStats& a, const HtmStats& b) {
  a.begins += b.begins;
  a.commits += b.commits;
  a.aborts += b.aborts;
  a.nested_begins += b.nested_begins;
  a.overflowed_attempts += b.overflowed_attempts;
}

class HtmSystem {
 public:
  HtmSystem(const sim::SimConfig& cfg, mem::MemorySystem& mem,
            std::unique_ptr<VersionManager> vm);

  Txn& txn(CoreId c) { return *txns_[c]; }
  const Txn& txn(CoreId c) const { return *txns_[c]; }
  std::vector<Txn*>& txn_view() { return txn_view_; }

  VersionManager& vm() { return *vm_; }
  const VersionManager& vm() const { return *vm_; }
  ConflictManager& conflicts() { return conflicts_; }
  const ConflictManager& conflicts() const { return conflicts_; }
  mem::MemorySystem& mem() { return mem_; }
  const mem::MemorySystem& mem() const { return mem_; }
  const sim::HtmParams& params() const { return params_; }
  std::uint32_t num_cores() const {
    return static_cast<std::uint32_t>(txns_.size());
  }

  /// Optional correctness checker; receives suspend/resume notifications
  /// (all other hooks fire from ThreadContext, which owns the clock).
  void set_checker(check::Checker* ck) { checker_ = ck; }
  check::Checker* checker() { return checker_; }

  /// Optional observability recorder; fans out to the conflict manager and
  /// the version manager (which forwards into the SUV structures).
  void set_obs(obs::Recorder* r) {
    obs_ = r;
    conflicts_.set_obs(r);
    vm_->set_obs(r);
  }

  HtmStats& stats() { return stats_; }
  const HtmStats& stats() const { return stats_; }

  /// Mark a victim transaction for abort (lazy committer wins, or deadlock
  /// cycle). No-op for idle or committing transactions. The first doom's
  /// cause sticks; it feeds the abort-cause attribution in obs.
  void doom(CoreId victim, AbortCause cause = AbortCause::kExplicit);

  // --- Thread suspension (paper Section IV-C) ------------------------------
  /// Park the core's running transaction: its read/write sets move into the
  /// suspended-summary signatures that every conflict check consults, so
  /// isolation survives the deschedule. Returns false if no transaction is
  /// running. The core gets a clean descriptor for the next thread.
  bool suspend_txn(CoreId core);
  /// Un-park the core's suspended transaction (the core's current
  /// descriptor must be idle). Returns false if nothing was suspended.
  bool resume_txn(CoreId core);
  std::size_t suspended_count() const { return suspended_.size(); }

  /// Visit each suspended transaction as fn(core, txn) in park order.
  template <class Fn>
  void for_each_suspended(Fn&& fn) const {
    for (const auto& s : suspended_) fn(s.core, s.txn);
  }
  const Signature& suspended_read_summary() const { return suspended_reads_; }
  const Signature& suspended_write_summary() const {
    return suspended_writes_;
  }

  /// Committer-wins against parked victims: mark every suspended
  /// transaction whose read or write set intersects `committer`'s write set
  /// as doomed (it aborts on resume; it cannot be aborted while parked).
  /// Returns the number of freshly doomed transactions.
  std::size_t doom_suspended_conflicting(const Txn& committer);

  // --- Lazy-commit arbitration token (one committer at a time) -------------
  bool commit_token_free() const { return token_holder_ == kNoCore; }
  bool acquire_commit_token(CoreId c);
  void release_commit_token(CoreId c);

 private:
  sim::HtmParams params_;
  mem::MemorySystem& mem_;
  std::unique_ptr<VersionManager> vm_;
  ConflictManager conflicts_;
  void rebuild_suspended_summary();

  std::vector<std::unique_ptr<Txn>> txns_;
  std::vector<Txn*> txn_view_;
  HtmStats stats_;
  CoreId token_holder_ = kNoCore;
  check::Checker* checker_ = nullptr;
  obs::Recorder* obs_ = nullptr;

  struct Suspended {
    CoreId core;
    Txn txn;
  };
  std::vector<Suspended> suspended_;
  Signature suspended_reads_{2048, 2};
  Signature suspended_writes_{2048, 2};
};

}  // namespace suvtm::htm
