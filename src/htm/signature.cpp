#include "htm/signature.hpp"

#include <bit>
#include <cassert>

#include "common/flat_hash.hpp"

namespace suvtm::htm {

Signature::Signature(std::uint32_t bits, std::uint32_t hashes)
    : bits_(bits), k_(hashes), words_((bits + 63) / 64, 0) {
  assert(bits > 0 && std::has_single_bit(bits));
  assert(hashes >= 1 && hashes <= 8);
}

std::uint32_t Signature::hash(LineAddr l, std::uint32_t i, std::uint32_t bits) {
  // Double hashing (Kirsch-Mitzenheimer): index_i = h1 + i*h2 mod bits. The
  // step is forced odd, so with power-of-two `bits` the k indices are
  // pairwise distinct -- the filter genuinely sets k bits per add.
  const std::uint64_t m = mix(l);
  const std::uint32_t h1 = static_cast<std::uint32_t>(m);
  const std::uint32_t h2 = static_cast<std::uint32_t>(m >> 32) | 1u;
  return (h1 + i * h2) & (bits - 1);
}

void Signature::clear() {
  adds_ = 0;
  for (auto& w : words_) w = 0;
}

std::uint32_t Signature::popcount() const {
  std::uint32_t n = 0;
  for (auto w : words_) n += static_cast<std::uint32_t>(std::popcount(w));
  return n;
}

bool Signature::intersects(const Signature& o) const {
  assert(bits_ == o.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & o.words_[i]) return true;
  }
  return false;
}

}  // namespace suvtm::htm
