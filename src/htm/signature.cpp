#include "htm/signature.hpp"

#include <bit>
#include <cassert>

namespace suvtm::htm {

namespace {
// Distinct odd multipliers per hash index (Knuth-style multiplicative
// hashing); combined with a final xor-shift for avalanche.
constexpr std::uint64_t kMul[8] = {
    0x9e3779b97f4a7c15ull, 0xc2b2ae3d27d4eb4full, 0x165667b19e3779f9ull,
    0x27d4eb2f165667c5ull, 0x85ebca77c2b2ae63ull, 0xff51afd7ed558ccdull,
    0xc4ceb9fe1a85ec53ull, 0x2545f4914f6cdd1dull,
};
}  // namespace

Signature::Signature(std::uint32_t bits, std::uint32_t hashes)
    : bits_(bits), k_(hashes), words_((bits + 63) / 64, 0) {
  assert(bits > 0 && std::has_single_bit(bits));
  assert(hashes >= 1 && hashes <= 8);
}

std::uint32_t Signature::hash(LineAddr l, std::uint32_t i, std::uint32_t bits) {
  std::uint64_t x = l * kMul[i & 7];
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 32;
  return static_cast<std::uint32_t>(x & (bits - 1));
}

void Signature::add(LineAddr l) {
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint32_t b = hash(l, i, bits_);
    words_[b >> 6] |= 1ull << (b & 63);
  }
  ++adds_;
}

bool Signature::test(LineAddr l) const {
  if (adds_ == 0) return false;
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint32_t b = hash(l, i, bits_);
    if (!((words_[b >> 6] >> (b & 63)) & 1ull)) return false;
  }
  return true;
}

void Signature::clear() {
  adds_ = 0;
  for (auto& w : words_) w = 0;
}

std::uint32_t Signature::popcount() const {
  std::uint32_t n = 0;
  for (auto w : words_) n += static_cast<std::uint32_t>(std::popcount(w));
  return n;
}

bool Signature::intersects(const Signature& o) const {
  assert(bits_ == o.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & o.words_[i]) return true;
  }
  return false;
}

}  // namespace suvtm::htm
