// Bloom-filter read/write signatures (paper Table III: 2-Kbit filters).
//
// Signatures are compact encodings of a transaction's read- and write-sets.
// They admit false positives -- reported as "false conflicts" in the paper --
// which we reproduce by using real hashed filters rather than exact sets.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace suvtm::htm {

class Signature {
 public:
  Signature(std::uint32_t bits, std::uint32_t hashes);

  void add(LineAddr l);
  bool test(LineAddr l) const;
  void clear();

  bool empty() const { return adds_ == 0; }
  std::uint64_t adds() const { return adds_; }
  std::uint32_t bits() const { return bits_; }
  std::uint32_t num_hashes() const { return k_; }
  /// Number of set bits (occupancy; used in tests and saturation stats).
  std::uint32_t popcount() const;

  /// H3-style hash family: hash `i` of line `l` into [0, bits).
  static std::uint32_t hash(LineAddr l, std::uint32_t i, std::uint32_t bits);

  /// True if any line could be in both signatures (bitwise AND non-empty is
  /// NOT the membership test -- this is only used for diagnostics).
  bool intersects(const Signature& o) const;

 private:
  std::uint32_t bits_;
  std::uint32_t k_;
  std::uint64_t adds_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace suvtm::htm
