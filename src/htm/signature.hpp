// Bloom-filter read/write signatures (paper Table III: 2-Kbit filters).
//
// Signatures are compact encodings of a transaction's read- and write-sets.
// They admit false positives -- reported as "false conflicts" in the paper --
// which we reproduce by using real hashed filters rather than exact sets.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace suvtm::htm {

class Signature {
 public:
  Signature(std::uint32_t bits, std::uint32_t hashes);

  // add/test/test_mixed are defined inline: they run hundreds of millions
  // of times per experiment sweep and an out-of-line call costs more than
  // the probe itself.
  void add(LineAddr l) {
    const std::uint64_t m = mix(l);
    std::uint32_t b = static_cast<std::uint32_t>(m);
    const std::uint32_t step = static_cast<std::uint32_t>(m >> 32) | 1u;
    for (std::uint32_t i = 0; i < k_; ++i, b += step) {
      const std::uint32_t idx = b & (bits_ - 1);
      words_[idx >> 6] |= 1ull << (idx & 63);
    }
    ++adds_;
  }
  bool test(LineAddr l) const { return test_mixed(mix(l)); }
  /// test() with the line's mix precomputed. The conflict check probes many
  /// signatures with the same line; computing the mix once there pays the
  /// multiply-avalanche per access instead of per signature.
  bool test_mixed(std::uint64_t m) const {
    if (adds_ == 0) return false;
    std::uint32_t b = static_cast<std::uint32_t>(m);
    const std::uint32_t step = static_cast<std::uint32_t>(m >> 32) | 1u;
    for (std::uint32_t i = 0; i < k_; ++i, b += step) {
      const std::uint32_t idx = b & (bits_ - 1);
      if (!((words_[idx >> 6] >> (idx & 63)) & 1ull)) return false;
    }
    return true;
  }
  void clear();

  bool empty() const { return adds_ == 0; }
  std::uint64_t adds() const { return adds_; }
  /// Raw filter words (bits()/64 of them); used to rebuild the conflict
  /// manager's bit-sliced columns after a wholesale signature restore.
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::uint32_t bits() const { return bits_; }
  std::uint32_t num_hashes() const { return k_; }
  /// Number of set bits (occupancy; used in tests and saturation stats).
  std::uint32_t popcount() const;

  /// Hash `i` of line `l` into [0, bits). Derived from one mix via double
  /// hashing, so add/test pay a single 64-bit multiply-mix regardless of k;
  /// the per-i form exists for tests and the summary signature's bit math.
  static std::uint32_t hash(LineAddr l, std::uint32_t i, std::uint32_t bits);

  /// The shared 64-bit mix all indices derive from.
  static std::uint64_t mix(LineAddr l) {
    // One full-avalanche mix; all k filter indices derive from it.
    return hash_mix64(l * 0x9e3779b97f4a7c15ull);
  }

  /// True if any line could be in both signatures (bitwise AND non-empty is
  /// NOT the membership test -- this is only used for diagnostics).
  bool intersects(const Signature& o) const;

 private:
  std::uint32_t bits_;
  std::uint32_t k_;
  std::uint64_t adds_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace suvtm::htm
