#include "htm/txn.hpp"

namespace suvtm::htm {

const char* txn_state_name(TxnState s) {
  switch (s) {
    case TxnState::kIdle: return "Idle";
    case TxnState::kRunning: return "Running";
    case TxnState::kCommitting: return "Committing";
    case TxnState::kAborting: return "Aborting";
    default: return "?";
  }
}

}  // namespace suvtm::htm
