// Per-core hardware transaction descriptor.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "htm/abort_cause.hpp"
#include "htm/signature.hpp"

namespace suvtm::htm {

/// Transaction lifecycle. A transaction holds isolation (its signatures stay
/// visible to conflict checks) in kRunning, kCommitting AND kAborting -- the
/// latter two are exactly the paper's merge and repair pathology windows.
enum class TxnState : std::uint8_t { kIdle, kRunning, kCommitting, kAborting };

const char* txn_state_name(TxnState s);

/// Closed-nesting frame (LogTM-Nested style): each nesting level snapshots
/// how much transactional state the level added, so an inner abort can
/// partially roll back.
struct NestFrame {
  std::size_t undo_mark;       // undo-log length at frame entry
  std::uint64_t read_sig_mark; // signature add-counts at frame entry
  std::uint64_t write_sig_mark;
  std::size_t vm_mark;         // scheme-specific rollback position
};

struct Txn {
  Txn(CoreId core, std::uint32_t sig_bits, std::uint32_t sig_hashes)
      : core(core), read_sig(sig_bits, sig_hashes), write_sig(sig_bits, sig_hashes) {}

  CoreId core;
  TxnState state = TxnState::kIdle;

  /// Begin timestamp of the FIRST attempt; kept across retries so the stall
  /// policy's abort-youngest rule guarantees progress (LogTM rule).
  std::uint64_t timestamp = 0;
  bool has_timestamp = false;

  /// Static transaction-site id, set by the workload; DynTM's selector is
  /// keyed on it.
  std::uint32_t site = 0;

  std::uint32_t depth = 0;  // nesting depth; outermost == 1
  std::vector<NestFrame> frames;

  Signature read_sig;
  Signature write_sig;

  /// Exact sets, kept alongside the signatures for statistics (false-conflict
  /// measurement) and for per-line version-management bookkeeping.
  /// Small-buffer-optimized and insertion-ordered (Table IV: typical
  /// footprints are tens of lines); touched on every transactional access.
  LineSet read_lines;
  LineSet write_lines;

  /// Word-granularity undo log: (address, old value), in program order.
  /// LogTM-SE/FasTM functional rollback; SUV leaves it empty.
  std::vector<std::pair<Addr, std::uint64_t>> undo;
  FlatSet<Addr> logged_words;

  /// Lazy-mode (DynTM) redo buffer: word address -> buffered new value.
  FlatMap<Addr, std::uint64_t> redo;

  bool doomed = false;        // marked for abort by the conflict manager
  AbortCause doom_cause = AbortCause::kNone;  // why; first doom wins
  bool overflowed = false;    // speculative state left the L1 this attempt
  std::uint32_t commit_waits = 0;  // lazy-commit retries spent on eager holders
  bool lazy = false;          // DynTM execution mode for this attempt
  bool degenerated = false;   // FasTM fell back to LogTM-SE behaviour
  std::size_t degen_undo_mark = 0;  // undo length when degeneration began
  std::uint64_t attempts = 0; // attempt count for the current atomic block

  bool active() const { return state != TxnState::kIdle; }
  bool holds_isolation() const { return state != TxnState::kIdle; }

  /// Reset per-attempt state. The timestamp survives (progress guarantee).
  void reset_attempt() {
    state = TxnState::kIdle;
    depth = 0;
    frames.clear();
    read_sig.clear();
    write_sig.clear();
    read_lines.clear();
    write_lines.clear();
    undo.clear();
    logged_words.clear();
    redo.clear();
    doomed = false;
    doom_cause = AbortCause::kNone;
    overflowed = false;
    degenerated = false;
    degen_undo_mark = 0;
    commit_waits = 0;
  }

  /// Full reset after a successful commit.
  void reset_committed() {
    reset_attempt();
    has_timestamp = false;
    attempts = 0;
  }
};

}  // namespace suvtm::htm
