// Version-management scheme interface: the axis this paper varies.
//
// A VersionManager decides (a) where a transactional store's data physically
// goes (in place, buffered, or SUV-redirected), (b) what extra cycles each
// access pays for version bookkeeping, and (c) how long commit and abort
// processing hold the transaction's isolation -- the isolation-window cost
// at the heart of the paper's repair/merge pathology argument.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "htm/txn.hpp"
#include "obs/obs.hpp"

namespace suvtm::mem {
class MemorySystem;
}

namespace suvtm::htm {

class HtmSystem;

/// Address resolution + cost for a load (or non-transactional access).
struct LoadAction {
  Addr target = 0;                          ///< final physical address
  Cycle extra = 0;                          ///< VM cycles added to the access
  /// Table-probe cycles that ride on the coherence request when the data
  /// access misses the L1 cache (SUV's piggybacked redirection resolution);
  /// charged only if the access turns out to be an L1 hit.
  Cycle extra_if_l1_hit = 0;
  std::optional<std::uint64_t> buffered;    ///< value served from a redo buffer
};

/// Address resolution + cost for a transactional store.
struct StoreAction {
  Addr target = 0;   ///< final physical address the data is written to
  Cycle extra = 0;   ///< VM cycles added to the access
  Cycle extra_if_l1_hit = 0;  ///< see LoadAction::extra_if_l1_hit
  bool buffered = false;  ///< value goes to the txn redo buffer, not memory
};

/// Counters common to every scheme; schemes also keep private stats.
struct VmStats {
  std::uint64_t tx_stores = 0;
  std::uint64_t tx_loads = 0;
  std::uint64_t log_entries = 0;       // undo-log appends (LogTM-SE path)
  std::uint64_t spec_overflows = 0;    // L1 speculative-state overflows
  std::uint64_t degenerations = 0;     // FasTM fell back to LogTM-SE
  std::uint64_t data_overflows = 0;    // transactional data left the L1

  bool operator==(const VmStats&) const = default;
};

/// Sum `b` into `a` (harvesting a sharded machine's per-domain schemes).
inline void accumulate(VmStats& a, const VmStats& b) {
  a.tx_stores += b.tx_stores;
  a.tx_loads += b.tx_loads;
  a.log_entries += b.log_entries;
  a.spec_overflows += b.spec_overflows;
  a.degenerations += b.degenerations;
  a.data_overflows += b.data_overflows;
}

class VersionManager {
 public:
  virtual ~VersionManager() = default;
  virtual const char* name() const = 0;

  /// Back-reference wiring; called once by HtmSystem after construction.
  virtual void attach(HtmSystem& htm) { htm_ = &htm; }

  /// Observability wiring. Wrappers (DynTM) forward to their backend;
  /// SuvVm forwards into its redirect table and pools.
  virtual void set_obs(obs::Recorder* r) { obs_ = r; }

  /// Transaction (outermost) begin; returns extra begin cycles.
  virtual Cycle on_begin(Txn&) { return 0; }

  /// Resolve an address for a LOAD or a non-transactional access. `txn` is
  /// nullptr for non-transactional accesses (strong isolation: those still
  /// consult SUV's redirect table).
  virtual LoadAction resolve_load(CoreId core, Txn* txn, Addr a) = 0;

  /// True when resolve_load / resolve_nontx_store are the identity action
  /// ({a, 0, 0, no buffer}) for EVERY access: in-place schemes (LogTM-SE,
  /// FasTM) never redirect or buffer loads. The per-access hot path uses
  /// this to skip the virtual resolution call entirely; schemes that
  /// redirect (SUV) or buffer (DynTM lazy mode) leave it false.
  bool loads_in_place() const { return loads_in_place_; }

  /// Transactional store bookkeeping: returns where the data goes and the
  /// extra cycles the scheme spends (log writes, redirection, ...). The
  /// functional old-value capture for rollback happens in here too.
  virtual StoreAction on_tx_store(Txn& txn, Addr a) = 0;

  /// Resolve a NON-transactional store's target address.
  virtual LoadAction resolve_nontx_store(CoreId core, Addr a) {
    return resolve_load(core, nullptr, a);
  }

  /// An L1 line carrying speculative transactional state was evicted while
  /// `txn` ran (FasTM degenerates here; others just count the overflow).
  virtual void on_spec_eviction(Txn&, LineAddr) { ++stats_.data_overflows; }

  // --- Closed-nesting partial abort (paper Section IV-C) -------------------
  /// Scheme-specific rollback position recorded when a nesting frame opens
  /// (undo-log length for log-based schemes; SUV overrides with its
  /// transient-entry count).
  virtual std::size_t nest_mark(const Txn& txn) const { return txn.undo.size(); }

  /// Whether this transaction can partially abort its innermost frame
  /// (DynTM's lazy mode cannot: the redo buffer has no frame structure).
  virtual bool supports_partial_abort(const Txn&) const { return true; }

  /// Roll the transaction's version state back to `mark` (from the frame
  /// being discarded) and return the cycles it takes. Signatures are NOT
  /// rewound (Bloom filters cannot subtract); the paper's closed-nesting
  /// design accepts the same conservative superset.
  virtual Cycle partial_abort(Txn& txn, std::size_t mark) = 0;

  /// Ready to enter commit processing? A lazy committer must wait for
  /// eager transactions that own lines in its write set (they hold
  /// exclusive coherence permission); the caller retries until true.
  /// Implementations must guarantee eventual readiness (bounded waiting).
  virtual bool commit_ready(Txn&) { return true; }

  /// Cycles commit processing takes; isolation is held throughout. May doom
  /// other transactions (lazy commit-time conflict resolution).
  virtual Cycle commit_cost(Txn& txn) = 0;
  /// Commit processing finished: publish state (SUV entry flips, SM clears).
  virtual void on_commit_done(Txn& txn) = 0;

  /// Cycles abort processing takes; isolation is held throughout.
  virtual Cycle abort_cost(Txn& txn) = 0;
  /// Abort processing finished: restore functional state.
  virtual void on_abort_done(Txn& txn) = 0;

  // --- Thread suspension ---------------------------------------------------
  /// `core`'s running transaction was just parked (its descriptor copied
  /// aside by HtmSystem::suspend_txn). Schemes that key per-transaction
  /// version state by core (SUV's transient-entry ownership list) must park
  /// that state too, or the core's next transaction inherits it.
  virtual void on_suspend(CoreId) {}
  /// `core`'s suspended transaction was restored to the core's descriptor.
  virtual void on_resume(CoreId) {}

  /// Untimed, stat-free address resolution for host-side inspection and
  /// post-run verification: after a run, a line with a live global redirect
  /// entry keeps its canonical data at the redirected location.
  virtual Addr debug_resolve(CoreId, Addr a) const { return a; }

  const VmStats& stats() const { return stats_; }

 protected:
  VmStats stats_;
  HtmSystem* htm_ = nullptr;
  obs::Recorder* obs_ = nullptr;
  bool loads_in_place_ = false;  // subclasses opt in (see loads_in_place())
};

}  // namespace suvtm::htm
