#include "mem/backing_store.hpp"

namespace suvtm::mem {

BackingStore::Page& BackingStore::page_for(Addr a) {
  auto& slot = pages_[page_of(a)];
  if (!slot) slot = std::make_unique<Page>();
  return *slot;
}

const BackingStore::Page* BackingStore::page_for_const(Addr a) const {
  auto it = pages_.find(page_of(a));
  return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t BackingStore::load(Addr a) const {
  const Page* p = page_for_const(a);
  if (!p) return 0;
  return (*p)[(a % kPageBytes) / kWordBytes];
}

void BackingStore::store(Addr a, std::uint64_t v) {
  page_for(a)[(a % kPageBytes) / kWordBytes] = v;
}

void BackingStore::copy_line(LineAddr src_line, LineAddr dst_line) {
  const Addr src = addr_of_line(src_line);
  const Addr dst = addr_of_line(dst_line);
  for (std::uint32_t w = 0; w < kWordsPerLine; ++w) {
    store(dst + w * kWordBytes, load(src + w * kWordBytes));
  }
}

}  // namespace suvtm::mem
