#include "mem/backing_store.hpp"

#include <algorithm>

namespace suvtm::mem {

BackingStore::Page& BackingStore::page_for_slow(Addr a) {
  const std::uint64_t id = page_of(a);
  auto [it, inserted] = pages_.try_emplace(id);
  if (inserted) it->second = std::make_unique<Page>();
  const std::size_t s = slot_of(id);
  cached_ids_[s] = id;
  cached_pages_[s] = it->second.get();
  return *cached_pages_[s];
}

const BackingStore::Page* BackingStore::page_for_const_slow(Addr a) const {
  const std::uint64_t id = page_of(a);
  auto it = pages_.find(id);
  if (it == pages_.end()) return nullptr;
  const std::size_t s = slot_of(id);
  cached_ids_[s] = id;
  cached_pages_[s] = it->second.get();
  return cached_pages_[s];
}

void BackingStore::copy_line(LineAddr src_line, LineAddr dst_line) {
  if (src_line == dst_line) return;
  const Addr src = addr_of_line(src_line);
  const Addr dst = addr_of_line(dst_line);
  // One lookup per side instead of one per word. Take the source pointer
  // first: creating the destination page may grow the map, but the source
  // Page itself lives on the heap and stays put.
  const Page* sp = page_for_const(src);
  Page& dp = page_for(dst);
  std::uint64_t* d = dp.data() + (dst % kPageBytes) / kWordBytes;
  if (!sp) {
    std::fill_n(d, kWordsPerLine, 0);
    return;
  }
  const std::uint64_t* s = sp->data() + (src % kPageBytes) / kWordBytes;
  std::copy_n(s, kWordsPerLine, d);
}

}  // namespace suvtm::mem
