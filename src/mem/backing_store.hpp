// Functional storage for the simulated physical address space.
//
// The simulator is functional as well as timing-approximate: workloads store
// real 64-bit values so that transactional isolation/atomicity invariants can
// be tested (and SUV's redirection machinery verified end-to-end, not just
// timed). Storage is paged and allocated lazily; untouched memory reads 0.
//
// Pages are keyed in a flat open-addressing map, fronted by a small
// direct-mapped cache of recently touched pages: consecutive words on one
// page (the overwhelmingly common access pattern -- undo-log walks, line
// copies, sequential workload data) skip the map entirely, and the cache is
// wide enough that many cores interleaving accesses to disjoint working
// sets do not evict each other every round. Page payloads are
// heap-allocated, so cached pointers survive map growth.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace suvtm::mem {

class BackingStore {
 public:
  /// Read the aligned 64-bit word containing `a`. Inline: every simulated
  /// load/store lands here, and the last-page fast path is a compare plus
  /// an indexed read.
  std::uint64_t load(Addr a) const {
    const Page* p = page_for_const(a);
    if (!p) return 0;
    return (*p)[(a % kPageBytes) / kWordBytes];
  }

  /// Write the aligned 64-bit word containing `a`.
  void store(Addr a, std::uint64_t v) {
    page_for(a)[(a % kPageBytes) / kWordBytes] = v;
  }

  /// Copy one 64-byte line worth of words from `src_line` to `dst_line`.
  /// Used by SUV on (re)direction and FasTM functional modelling. Resolves
  /// each page exactly once (a line never straddles a page boundary).
  void copy_line(LineAddr src_line, LineAddr dst_line);

  std::size_t pages_touched() const { return pages_.size(); }

  /// Raw read-only view of one allocated page's words (nullptr when the
  /// page was never touched). The checker's image snapshot and sweeps use
  /// it so a 512-word page costs one map probe instead of 512 loads.
  const std::uint64_t* page_words(std::uint64_t page_id) const {
    const Page* p = page_for_const(page_id * kPageBytes);
    return p ? p->data() : nullptr;
  }

  /// Visit the page index of every allocated page (the word at byte address
  /// `id * kPageBytes + i * kWordBytes` is readable via load), in ascending
  /// page order. Used by the checker's full-image sweeps; pages are never
  /// freed. The sorted drain is load-bearing: the sweeps cap how many
  /// violations they report, so visiting in FlatMap hash order would make
  /// *which* violations surface a function of the map's hash/capacity
  /// policy instead of simulated state (suvlint: nondet-iteration).
  template <class Fn>
  void for_each_page_id(Fn&& fn) const {
    std::vector<std::uint64_t> ids;
    ids.reserve(pages_.size());
    // lint: allow(nondet-iteration): order laundered by the sort below
    for (const auto& kv : pages_) ids.push_back(kv.first);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) fn(id);
  }

 private:
  static constexpr std::size_t kWordsPerPage = kPageBytes / kWordBytes;
  using Page = std::array<std::uint64_t, kWordsPerPage>;

  static constexpr std::size_t kCacheSlots = 64;  // power of 2

  // Contiguous page ids map to distinct slots; the XOR folds higher bits in
  // so same-low-bits pages from different regions don't all collide.
  static std::size_t slot_of(std::uint64_t id) {
    return static_cast<std::size_t>(id ^ (id >> 6)) & (kCacheSlots - 1);
  }

  Page& page_for(Addr a) {
    const std::uint64_t id = page_of(a);
    const std::size_t s = slot_of(id);
    if (cached_pages_[s] && cached_ids_[s] == id) return *cached_pages_[s];
    return page_for_slow(a);
  }
  const Page* page_for_const(Addr a) const {
    const std::uint64_t id = page_of(a);
    const std::size_t s = slot_of(id);
    if (cached_pages_[s] && cached_ids_[s] == id) return cached_pages_[s];
    return page_for_const_slow(a);
  }
  Page& page_for_slow(Addr a);
  const Page* page_for_const_slow(Addr a) const;

  FlatMap<std::uint64_t, std::unique_ptr<Page>> pages_;
  // Direct-mapped page cache; pages are never freed, so entries can only
  // go stale by pointing at pages that are still valid.
  mutable std::array<std::uint64_t, kCacheSlots> cached_ids_{};
  mutable std::array<Page*, kCacheSlots> cached_pages_{};
};

}  // namespace suvtm::mem
