// Functional storage for the simulated physical address space.
//
// The simulator is functional as well as timing-approximate: workloads store
// real 64-bit values so that transactional isolation/atomicity invariants can
// be tested (and SUV's redirection machinery verified end-to-end, not just
// timed). Storage is paged and allocated lazily; untouched memory reads 0.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hpp"

namespace suvtm::mem {

class BackingStore {
 public:
  /// Read the aligned 64-bit word containing `a`.
  std::uint64_t load(Addr a) const;

  /// Write the aligned 64-bit word containing `a`.
  void store(Addr a, std::uint64_t v);

  /// Copy one 64-byte line worth of words from `src_line` to `dst_line`.
  /// Used by SUV on (re)direction and FasTM functional modelling.
  void copy_line(LineAddr src_line, LineAddr dst_line);

  std::size_t pages_touched() const { return pages_.size(); }

 private:
  static constexpr std::size_t kWordsPerPage = kPageBytes / kWordBytes;
  using Page = std::array<std::uint64_t, kWordsPerPage>;

  Page& page_for(Addr a);
  const Page* page_for_const(Addr a) const;

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace suvtm::mem
