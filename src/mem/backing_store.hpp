// Functional storage for the simulated physical address space.
//
// The simulator is functional as well as timing-approximate: workloads store
// real 64-bit values so that transactional isolation/atomicity invariants can
// be tested (and SUV's redirection machinery verified end-to-end, not just
// timed). Storage is paged and allocated lazily; untouched memory reads 0.
//
// Pages are keyed in a flat open-addressing map, and the last page touched
// is cached: consecutive words on one page (the overwhelmingly common
// access pattern -- undo-log walks, line copies, sequential workload data)
// skip the map entirely. Page payloads are heap-allocated, so the cached
// pointer survives map growth.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace suvtm::mem {

class BackingStore {
 public:
  /// Read the aligned 64-bit word containing `a`. Inline: every simulated
  /// load/store lands here, and the last-page fast path is a compare plus
  /// an indexed read.
  std::uint64_t load(Addr a) const {
    const Page* p = page_for_const(a);
    if (!p) return 0;
    return (*p)[(a % kPageBytes) / kWordBytes];
  }

  /// Write the aligned 64-bit word containing `a`.
  void store(Addr a, std::uint64_t v) {
    page_for(a)[(a % kPageBytes) / kWordBytes] = v;
  }

  /// Copy one 64-byte line worth of words from `src_line` to `dst_line`.
  /// Used by SUV on (re)direction and FasTM functional modelling. Resolves
  /// each page exactly once (a line never straddles a page boundary).
  void copy_line(LineAddr src_line, LineAddr dst_line);

  std::size_t pages_touched() const { return pages_.size(); }

  /// Visit the page index of every allocated page (the word at byte address
  /// `id * kPageBytes + i * kWordBytes` is readable via load). Used by the
  /// checker's full-image sweeps; pages are never freed.
  template <class Fn>
  void for_each_page_id(Fn&& fn) const {
    for (const auto& kv : pages_) fn(kv.first);
  }

 private:
  static constexpr std::size_t kWordsPerPage = kPageBytes / kWordBytes;
  using Page = std::array<std::uint64_t, kWordsPerPage>;

  Page& page_for(Addr a) {
    const std::uint64_t id = page_of(a);
    if (cached_page_ && cached_id_ == id) return *cached_page_;
    return page_for_slow(a);
  }
  const Page* page_for_const(Addr a) const {
    const std::uint64_t id = page_of(a);
    if (cached_page_ && cached_id_ == id) return cached_page_;
    return page_for_const_slow(a);
  }
  Page& page_for_slow(Addr a);
  const Page* page_for_const_slow(Addr a) const;

  FlatMap<std::uint64_t, std::unique_ptr<Page>> pages_;
  // Last-page cache; pages are never freed, so the pointer can only go
  // stale by pointing at a page that is still valid.
  mutable std::uint64_t cached_id_ = 0;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace suvtm::mem
