#include "mem/cache.hpp"

#include <bit>

namespace suvtm::mem {

const char* coh_state_name(CohState s) {
  switch (s) {
    case CohState::kInvalid: return "I";
    case CohState::kShared: return "S";
    case CohState::kExclusive: return "E";
    case CohState::kModified: return "M";
    default: return "?";
  }
}

Cache::Cache(std::uint32_t total_bytes, std::uint32_t assoc)
    : num_sets_(total_bytes / kLineBytes / assoc), assoc_(assoc) {
  assert(num_sets_ > 0 && std::has_single_bit(num_sets_) &&
         "cache sets must be a power of two");
  sets_.resize(num_sets_);
  for (auto& s : sets_) s.reserve(assoc_);
}

Cache::Line* Cache::find(LineAddr l) {
  for (auto& ln : set_of(l)) {
    if (ln.tag == l && ln.state != CohState::kInvalid) return &ln;
  }
  return nullptr;
}

const Cache::Line* Cache::find(LineAddr l) const {
  for (const auto& ln : set_of(l)) {
    if (ln.tag == l && ln.state != CohState::kInvalid) return &ln;
  }
  return nullptr;
}

Cache::Victim Cache::insert(LineAddr l, CohState st) {
  auto& set = set_of(l);
  if (Line* existing = find(l)) {
    existing->state = st;
    touch(*existing);
    return {};
  }
  if (set.size() < assoc_) {
    set.push_back(Line{l, st, ++tick_, false});
    return {};
  }
  // Choose the LRU victim, preferring non-speculative lines.
  Line* victim = nullptr;
  for (auto& ln : set) {
    if (ln.state == CohState::kInvalid) {
      victim = &ln;
      break;
    }
    if (ln.speculative) continue;
    if (!victim || ln.lru < victim->lru) victim = &ln;
  }
  if (!victim) {
    // Every way is speculative: FasTM overflow case -- evict LRU anyway and
    // report it so the version manager can degenerate.
    for (auto& ln : set) {
      if (!victim || ln.lru < victim->lru) victim = &ln;
    }
  }
  Victim out;
  if (victim->state != CohState::kInvalid) {
    out = {true, victim->tag, victim->state, victim->speculative};
  }
  *victim = Line{l, st, ++tick_, false};
  return out;
}

void Cache::invalidate(LineAddr l) {
  if (Line* ln = find(l)) {
    ln->state = CohState::kInvalid;
    ln->speculative = false;
  }
}

std::uint32_t Cache::set_occupancy(LineAddr l) const {
  std::uint32_t n = 0;
  for (const auto& ln : set_of(l)) {
    if (ln.state != CohState::kInvalid) ++n;
  }
  return n;
}

}  // namespace suvtm::mem
