#include "mem/cache.hpp"

#include <bit>

namespace suvtm::mem {

const char* coh_state_name(CohState s) {
  switch (s) {
    case CohState::kInvalid: return "I";
    case CohState::kShared: return "S";
    case CohState::kExclusive: return "E";
    case CohState::kModified: return "M";
    default: return "?";
  }
}

Cache::Cache(std::uint32_t total_bytes, std::uint32_t assoc)
    : num_sets_(total_bytes / kLineBytes / assoc), assoc_(assoc) {
  assert(num_sets_ > 0 && std::has_single_bit(num_sets_) &&
         "cache sets must be a power of two");
  line_count_ = std::size_t{num_sets_} * assoc_;
  lines_.reset(static_cast<Line*>(std::calloc(line_count_, sizeof(Line))));
  assert(lines_ && "cache line array allocation failed");
}

Cache::Victim Cache::insert(LineAddr l, CohState st) {
  if (Line* existing = find(l)) {
    existing->state = st;
    touch(*existing);
    return {};
  }
  Line* set = set_of(l);
  // Choose the victim: first invalid way, else the LRU way, preferring
  // non-speculative lines.
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Line& ln = set[w];
    if (ln.state == CohState::kInvalid) {
      victim = &ln;
      break;
    }
    if (ln.speculative) continue;
    if (!victim || ln.lru < victim->lru) victim = &ln;
  }
  if (!victim) {
    // Every way is speculative: FasTM overflow case -- evict LRU anyway and
    // report it so the version manager can degenerate.
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      Line& ln = set[w];
      if (!victim || ln.lru < victim->lru) victim = &ln;
    }
  }
  Victim out;
  if (victim->state != CohState::kInvalid) {
    out = {true, victim->tag, victim->state, victim->speculative};
  }
  *victim = Line{l, st, ++tick_, false};
  return out;
}

void Cache::invalidate(LineAddr l) {
  if (Line* ln = find(l)) {
    ln->state = CohState::kInvalid;
    ln->speculative = false;
  }
}

std::uint32_t Cache::set_occupancy(LineAddr l) const {
  const Line* set = set_of(l);
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].state != CohState::kInvalid) ++n;
  }
  return n;
}

}  // namespace suvtm::mem
