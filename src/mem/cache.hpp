// Generic set-associative tag array with true-LRU replacement.
//
// Tag-only: data lives in the BackingStore. Used for the per-core L1s, the
// shared banked L2, and reused (with a different payload meaning) by the SUV
// second-level redirect table.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace suvtm::mem {

/// Per-line coherence state as seen by the local cache (MESI).
enum class CohState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

const char* coh_state_name(CohState s);

class Cache {
 public:
  struct Line {
    LineAddr tag = 0;        // full line address (simpler than tag bits)
    CohState state = CohState::kInvalid;
    std::uint64_t lru = 0;
    bool speculative = false;  // FasTM SM bit
  };

  struct Victim {
    bool valid = false;      // an eviction happened
    LineAddr line = 0;
    CohState state = CohState::kInvalid;
    bool speculative = false;
  };

  Cache(std::uint32_t total_bytes, std::uint32_t assoc);

  std::uint32_t num_sets() const { return num_sets_; }
  std::uint32_t assoc() const { return assoc_; }
  std::uint32_t set_index(LineAddr l) const {
    return static_cast<std::uint32_t>(l & (num_sets_ - 1));
  }

  /// Returns the line's entry if present (any valid state), else nullptr.
  Line* find(LineAddr l);
  const Line* find(LineAddr l) const;

  /// Touch for LRU (call on every hit).
  void touch(Line& ln) { ln.lru = ++tick_; }

  /// Insert `l` with `st`, evicting the LRU way if the set is full.
  /// Lines with `speculative` set are never chosen as victims while a
  /// non-speculative victim exists (FasTM tries to keep SM lines resident).
  Victim insert(LineAddr l, CohState st);

  /// Remove the line if present (invalidation).
  void invalidate(LineAddr l);

  /// Invoke `fn` for every valid line (e.g. flash-clear of SM bits).
  /// Templated (not std::function) so the L1 walks done on every
  /// commit/abort inline the callback instead of an indirect call.
  template <class Fn>
  void for_each(Fn&& fn) {
    for (auto& set : sets_) {
      for (auto& ln : set) {
        if (ln.state != CohState::kInvalid) fn(ln);
      }
    }
  }

  /// Number of valid lines currently in `l`'s set.
  std::uint32_t set_occupancy(LineAddr l) const;

 private:
  std::vector<Line>& set_of(LineAddr l) { return sets_[set_index(l)]; }
  const std::vector<Line>& set_of(LineAddr l) const { return sets_[set_index(l)]; }

  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  std::uint64_t tick_ = 0;
  std::vector<std::vector<Line>> sets_;
};

}  // namespace suvtm::mem
