// Generic set-associative tag array with true-LRU replacement.
//
// Tag-only: data lives in the BackingStore. Used for the per-core L1s, the
// shared banked L2, and reused (with a different payload meaning) by the SUV
// second-level redirect table.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <memory>

#include "common/types.hpp"

namespace suvtm::mem {

/// Per-line coherence state as seen by the local cache (MESI).
enum class CohState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

const char* coh_state_name(CohState s);

class Cache {
 public:
  /// Trivially default-constructible on purpose: a simulator run constructs
  /// megabytes of L2 lines, and all-zero bytes ARE the invalid state
  /// (kInvalid == 0), so vector growth is a memset instead of a per-element
  /// constructor loop. Aggregate-initialize when building a real line.
  struct Line {
    LineAddr tag;            // full line address (simpler than tag bits)
    CohState state;          // kInvalid (== 0) when the way is empty
    std::uint64_t lru;
    bool speculative;        // FasTM SM bit
  };
  static_assert(static_cast<int>(CohState::kInvalid) == 0,
                "zero-initialized lines must read as invalid");

  struct Victim {
    bool valid = false;      // an eviction happened
    LineAddr line = 0;
    CohState state = CohState::kInvalid;
    bool speculative = false;
  };

  Cache(std::uint32_t total_bytes, std::uint32_t assoc);

  std::uint32_t num_sets() const { return num_sets_; }
  std::uint32_t assoc() const { return assoc_; }
  std::uint32_t set_index(LineAddr l) const {
    return static_cast<std::uint32_t>(l & (num_sets_ - 1));
  }

  /// Returns the line's entry if present (any valid state), else nullptr.
  /// Inline: this is the single most-called function in the memory system.
  Line* find(LineAddr l) {
    Line* set = set_of(l);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      Line& ln = set[w];
      if (ln.tag == l && ln.state != CohState::kInvalid) return &ln;
    }
    return nullptr;
  }
  const Line* find(LineAddr l) const {
    const Line* set = set_of(l);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      const Line& ln = set[w];
      if (ln.tag == l && ln.state != CohState::kInvalid) return &ln;
    }
    return nullptr;
  }

  /// Touch for LRU (call on every hit).
  void touch(Line& ln) { ln.lru = ++tick_; }

  /// Insert `l` with `st`, evicting the LRU way if the set is full.
  /// Lines with `speculative` set are never chosen as victims while a
  /// non-speculative victim exists (FasTM tries to keep SM lines resident).
  Victim insert(LineAddr l, CohState st);

  /// Remove the line if present (invalidation).
  void invalidate(LineAddr l);

  /// Invoke `fn` for every valid line (e.g. flash-clear of SM bits).
  /// Templated (not std::function) so the L1 walks done on every
  /// commit/abort inline the callback instead of an indirect call. One
  /// linear sweep over the contiguous line array, set-major.
  template <class Fn>
  void for_each(Fn&& fn) {
    Line* const end = lines_.get() + line_count_;
    for (Line* ln = lines_.get(); ln != end; ++ln) {
      if (ln->state != CohState::kInvalid) fn(*ln);
    }
  }
  template <class Fn>
  void for_each(Fn&& fn) const {
    const Line* const end = lines_.get() + line_count_;
    for (const Line* ln = lines_.get(); ln != end; ++ln) {
      if (ln->state != CohState::kInvalid) fn(*ln);
    }
  }

  /// Number of valid lines currently in `l`'s set.
  std::uint32_t set_occupancy(LineAddr l) const;

 private:
  // All sets in one contiguous array, stride = assoc_: set s occupies
  // [s*assoc_, (s+1)*assoc_). One allocation, no per-set vector headers,
  // and a whole 4-way set of 24-byte lines spans at most two cache lines.
  Line* set_of(LineAddr l) { return lines_.get() + std::size_t{set_index(l)} * assoc_; }
  const Line* set_of(LineAddr l) const {
    return lines_.get() + std::size_t{set_index(l)} * assoc_;
  }

  struct FreeDeleter {
    void operator()(void* p) const { std::free(p); }
  };

  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  std::uint64_t tick_ = 0;
  std::size_t line_count_ = 0;
  // calloc-backed (Line is an implicit-lifetime type and all-zero == all
  // invalid): a simulator run that touches a fraction of the multi-megabyte
  // L2 tag array never faults in the untouched pages, where an eagerly
  // zeroed vector made every Simulator construction pay for the full array.
  std::unique_ptr<Line[], FreeDeleter> lines_;
};

}  // namespace suvtm::mem
