#include "mem/directory.hpp"

namespace suvtm::mem {

bool Directory::remove_core(LineAddr l, CoreId c) {
  auto it = map_.find(l);
  if (it == map_.end()) return false;
  DirEntry& e = it->second;
  e.sharers &= ~(1u << c);
  if (e.owner == c) e.owner = kNoCore;
  if (e.sharers == 0 && e.owner == kNoCore) {
    map_.erase(it);
    return true;
  }
  return false;
}

}  // namespace suvtm::mem
