// Directory state for the MESI protocol (paper Table III: bit-vector of
// sharers held at the L2, 6-cycle access).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace suvtm::mem {

/// Per-line directory entry: either one owner in M/E, or a set of sharers
/// in S, or neither (line only in L2/memory).
struct DirEntry {
  std::uint32_t sharers = 0;   // bit per core, S copies
  CoreId owner = kNoCore;      // core holding M/E, or kNoCore
};

/// Flat open-addressing line -> entry map. References returned by entry()
/// are invalidated by any later entry() that inserts (rehash) or by
/// remove_core() (backshift erase); callers obtain their reference, use it,
/// and drop it before the next directory mutation.
class Directory {
 public:
  /// Entry for `l`, creating it on demand.
  DirEntry& entry(LineAddr l) { return map_[l]; }

  /// Entry if tracked, else nullptr.
  const DirEntry* find(LineAddr l) const {
    auto it = map_.find(l);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Drop a core from the line's sharer/owner info (L1 eviction). Returns
  /// true when this left the entry empty and it was erased from the map.
  bool remove_core(LineAddr l, CoreId c);

  std::size_t tracked_lines() const { return map_.size(); }

  /// Visit every tracked (line, entry) pair in ascending line order
  /// (structural audits). Sorted drain on purpose: audit violations are
  /// reported under a cap, so hash-order visitation would decide *which*
  /// violations a run reports by hash/capacity policy rather than by
  /// simulated state (suvlint: nondet-iteration). Audit-only path; the
  /// per-access protocol never iterates.
  template <class Fn>
  void for_each(Fn&& fn) const {
    std::vector<LineAddr> lines;
    lines.reserve(map_.size());
    // lint: allow(nondet-iteration): order laundered by the sort below
    for (const auto& kv : map_) lines.push_back(kv.first);
    std::sort(lines.begin(), lines.end());
    for (LineAddr l : lines) fn(l, map_.find(l)->second);
  }

  /// Hash-order visitation for callers that launder the order themselves
  /// (audit_coherence sorts its collected violations before returning, so
  /// the walk order never reaches a report). Skips for_each's sort and
  /// per-line re-probe -- the audit runs every sampling period, and on a
  /// big footprint the sort dominated the whole audit.
  template <class Fn>
  void for_each_unordered(Fn&& fn) const {
    // lint: allow(nondet-iteration): callers sort whatever they emit
    for (const auto& kv : map_) fn(kv.first, kv.second);
  }

 private:
  FlatMap<LineAddr, DirEntry> map_;
};

}  // namespace suvtm::mem
