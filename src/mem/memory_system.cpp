#include "mem/memory_system.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/recorder.hpp"

namespace {

/// Bitmask of cores holding a line per the directory entry: S sharers plus
/// the M/E owner, if any.
std::uint32_t holder_mask(const suvtm::mem::DirEntry& e) {
  std::uint32_t m = e.sharers;
  if (e.owner != suvtm::kNoCore) m |= 1u << e.owner;
  return m;
}

}  // namespace

namespace suvtm::mem {

MemorySystem::MemorySystem(const sim::MemParams& p)
    : params_(p),
      mesh_(p.mesh_dim, p.mesh_wire_latency, p.mesh_route_latency),
      l2_(p.l2_bytes, p.l2_assoc) {
  l1_.reserve(p.num_cores);
  tlb_.reserve(p.num_cores);
  for (std::uint32_t c = 0; c < p.num_cores; ++c) {
    l1_.emplace_back(p.l1_bytes, p.l1_assoc);
    tlb_.emplace_back(p.tlb_entries, p.tlb_miss_latency);
  }
  spec_lines_.resize(p.num_cores);
}

bool MemorySystem::l2_insert_with_recall(LineAddr l, CohState st) {
  const Cache::Victim v = l2_.insert(l, st);
  if (!v.valid) return false;
  SUVTM_OBS_HOOK(obs_, on_cache_evict(/*l2=*/true, v.line));
  const DirEntry* de = dir_.find(v.line);
  if (!de || (de->sharers == 0 && de->owner == kNoCore)) return false;
  ++stats_.l2_recalls;
  for (std::uint32_t m = holder_mask(*de); m != 0; m &= m - 1) {
    l1_[std::countr_zero(m)].invalidate(v.line);
  }
  dir_.entry(v.line) = DirEntry{};
  return true;
}

Cycle MemorySystem::fetch_from_l2_or_memory(LineAddr l, std::uint32_t /*bank_tile*/) {
  if (Cache::Line* hit = l2_.find(l)) {
    ++stats_.l2_hits;
    l2_.touch(*hit);
    return params_.l2_latency;
  }
  ++stats_.l2_misses;
  // Fill the L2; an L2 eviction recalls any L1 copies of the victim.
  Cycle extra = 0;
  if (l2_insert_with_recall(l, CohState::kExclusive)) {
    extra += params_.directory_latency + mesh_.average_latency();
  }
  return params_.l2_latency + params_.memory_latency + extra;
}

void MemorySystem::l1_eviction(CoreId core, const Cache::Victim& v) {
  if (!v.valid) return;
  SUVTM_OBS_HOOK(obs_, on_cache_evict(/*l2=*/false, v.line));
  if (v.speculative) {
    ++stats_.spec_evictions;
  }
  if (v.state == CohState::kModified) {
    ++stats_.writebacks;
    // Recall-aware insert: the writeback's L2 fill can itself evict a line
    // other cores still hold. The recall's latency is off the requester's
    // critical path (background writeback), so no cycles are charged here.
    l2_insert_with_recall(v.line, CohState::kModified);
  }
  const bool dropped = dir_.remove_core(v.line, core);
  if (dropped) SUVTM_OBS_HOOK(obs_, on_dir_drop());
}

AccessOutcome MemorySystem::access(CoreId core, Addr a, bool is_write) {
  assert(core < params_.num_cores);
  const LineAddr l = line_of(a);
  AccessOutcome out;

  // TLB lookup runs in parallel with the L1 tag check; only a miss adds
  // time. Redirect-pool addresses carry their physical page pointer in the
  // redirect entry (paper Figure 3), so they bypass the TLB entirely.
  if (a < kRedirectPoolBase) out.latency += tlb_[core].access(a).latency;

  Cache& l1 = l1_[core];
  Cache::Line* ln = l1.find(l);

  // L1 hit with sufficient permission.
  if (ln) {
    const bool ok = is_write
                        ? (ln->state == CohState::kModified ||
                           ln->state == CohState::kExclusive)
                        : true;
    if (ok) {
      if (is_write && ln->state == CohState::kExclusive) {
        ln->state = CohState::kModified;  // silent E->M upgrade
        DirEntry& e = dir_.entry(l);
        e.owner = core;
        e.sharers = 1u << core;
      }
      l1.touch(*ln);
      ++stats_.l1_hits;
      out.l1_hit = true;
      out.latency += params_.l1_latency;
      return out;
    }
  }

  // Miss (or S->M upgrade): request travels to the line's home L2 bank.
  ++stats_.l1_misses;
  const std::uint32_t bank = mesh_.bank_tile(l);
  out.latency += params_.l1_latency;  // detect the miss
  out.latency += mesh_.latency(core, bank) + params_.directory_latency;

  // Held by pointer, not reference: the directory is an open-addressing
  // map, so any entry() / remove_core on *another* line (the L2-fill path
  // below can zero a recalled victim's entry) may rehash or backshift and
  // move this slot. Re-resolve after every call that can mutate dir_.
  DirEntry* e = &dir_.entry(l);

  if (!is_write) {
    // GETS.
    if (e->owner != kNoCore && e->owner != core) {
      // Forward from the owner; owner downgrades M/E -> S (data to L2).
      ++stats_.forwards;
      SUVTM_OBS_HOOK(obs_, on_dir_forward(core, e->owner, l));
      out.latency +=
          mesh_.latency(bank, e->owner) + mesh_.latency(e->owner, core);
      if (Cache::Line* oln = l1_[e->owner].find(l)) {
        if (oln->state == CohState::kModified) {
          ++stats_.writebacks;
          l2_insert_with_recall(l, CohState::kModified);
          e = &dir_.entry(l);  // the recall path can touch the directory
        }
        oln->state = CohState::kShared;
      }
      e->sharers |= 1u << e->owner;
      e->owner = kNoCore;
      out.l2_hit = true;
    } else {
      out.l2_hit = l2_.find(l) != nullptr;
      out.latency += fetch_from_l2_or_memory(l, bank);
      out.latency += mesh_.latency(bank, core);  // data reply
      e = &dir_.entry(l);  // the L2 fill may have moved the slot
    }
    const bool exclusive = e->sharers == 0 && e->owner == kNoCore;
    e->sharers |= 1u << core;
    // Track the E holder as owner so a later GETS downgrades it (MESI).
    if (exclusive) e->owner = core;
    Cache::Victim v =
        l1.insert(l, exclusive ? CohState::kExclusive : CohState::kShared);
    if (v.valid && v.speculative) {
      out.evicted_speculative = true;
      out.evicted_line = v.line;
    }
    l1_eviction(core, v);
    SUVTM_OBS_HOOK(obs_, on_l1_miss(core, obs_->now(), l, out.latency,
                                    out.l2_hit));
    return out;
  }

  // GETM.
  if (e->owner != kNoCore && e->owner != core) {
    ++stats_.forwards;
    SUVTM_OBS_HOOK(obs_, on_dir_forward(core, e->owner, l));
    out.latency +=
        mesh_.latency(bank, e->owner) + mesh_.latency(e->owner, core);
    if (Cache::Line* oln = l1_[e->owner].find(l)) {
      if (oln->state == CohState::kModified) {
        ++stats_.writebacks;
        l2_insert_with_recall(l, CohState::kModified);
        e = &dir_.entry(l);  // the recall path can touch the directory
      }
    }
    l1_[e->owner].invalidate(l);
    ++stats_.invalidations;
    e->owner = kNoCore;
    e->sharers = 0;
  } else {
    // Invalidate all other sharers; cost is the farthest round trip,
    // invalidations travel in parallel.
    Cycle worst = 0;
    for (std::uint32_t m = e->sharers & ~(1u << core); m != 0; m &= m - 1) {
      const CoreId c = static_cast<CoreId>(std::countr_zero(m));
      ++stats_.invalidations;
      l1_[c].invalidate(l);
      worst = std::max(worst, mesh_.latency(bank, c) + mesh_.latency(c, core));
    }
    out.latency += worst;
    const bool had_local_copy = ln != nullptr;
    if (!had_local_copy) {
      out.l2_hit = l2_.find(l) != nullptr;
      out.latency += fetch_from_l2_or_memory(l, bank);
      out.latency += mesh_.latency(bank, core);
      e = &dir_.entry(l);  // the L2 fill may have moved the slot
    }
  }

  e->owner = core;
  e->sharers = 1u << core;
  Cache::Victim v = l1.insert(l, CohState::kModified);
  if (v.valid && v.speculative) {
    out.evicted_speculative = true;
    out.evicted_line = v.line;
  }
  l1_eviction(core, v);
  SUVTM_OBS_HOOK(obs_, on_l1_miss(core, obs_->now(), l, out.latency,
                                  out.l2_hit));
  return out;
}

bool MemorySystem::install_line(CoreId core, LineAddr l) {
  DirEntry& e = dir_.entry(l);
  // Invalidate any other holders (redirect targets are thread-private in
  // practice; this keeps the directory consistent regardless).
  for (std::uint32_t m = holder_mask(e) & ~(1u << core); m != 0; m &= m - 1) {
    l1_[std::countr_zero(m)].invalidate(l);
  }
  e.owner = core;
  e.sharers = 1u << core;
  Cache::Victim v = l1_[core].insert(l, CohState::kModified);
  const bool spec = v.valid && v.speculative;
  l1_eviction(core, v);
  return spec;
}

bool MemorySystem::mark_speculative(CoreId core, LineAddr l) {
  if (Cache::Line* ln = l1_[core].find(l)) {
    if (!ln->speculative) {
      ln->speculative = true;
      // Newly marked: remember it so commit/abort walk only the write set.
      // If the line is later evicted and re-marked, the duplicate entry is
      // harmless (the walk's residency/SM re-check skips it).
      spec_lines_[core].push_back(l);
    }
    return true;
  }
  return false;
}

void MemorySystem::clear_speculative(CoreId core) {
  for (LineAddr l : spec_lines_[core]) {
    if (Cache::Line* ln = l1_[core].find(l)) ln->speculative = false;
  }
  spec_lines_[core].clear();
}

void MemorySystem::invalidate_speculative(CoreId core) {
  for (LineAddr l : spec_lines_[core]) {
    Cache::Line* ln = l1_[core].find(l);
    if (!ln || !ln->speculative) continue;  // stale entry: evicted since
    l1_[core].invalidate(l);
    const bool dropped = dir_.remove_core(l, core);
    if (dropped) SUVTM_OBS_HOOK(obs_, on_dir_drop());
  }
  spec_lines_[core].clear();
}

}  // namespace suvtm::mem
