// Timing + functional memory hierarchy: per-core L1s, banked shared L2 with
// an integrated directory, MESI coherence, mesh NoC, per-core TLBs and the
// functional backing store.
//
// The timing model is "atomic-operation, computed-latency": each access
// updates global cache/directory state at issue time and returns the number
// of cycles the access takes, which the caller uses to schedule the
// requesting coroutine's resumption. This is the standard approximation for
// cycle-approximate simulators; it forgoes modelling in-flight coherence
// races, which the HTM layer's conflict detection makes unobservable to
// workloads anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/mesh.hpp"
#include "mem/tlb.hpp"
#include "obs/obs.hpp"
#include "sim/config.hpp"

namespace suvtm::mem {

struct AccessOutcome {
  Cycle latency = 0;
  bool l1_hit = false;
  bool l2_hit = false;
  /// An L1 line marked speculative (FasTM SM) was evicted by this fill.
  bool evicted_speculative = false;
  LineAddr evicted_line = 0;
};

struct MemStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t forwards = 0;
  std::uint64_t l2_recalls = 0;
  std::uint64_t spec_evictions = 0;

  bool operator==(const MemStats&) const = default;
};

/// Sum `b` into `a` (harvesting a sharded machine's per-domain hierarchies).
inline void accumulate(MemStats& a, const MemStats& b) {
  a.l1_hits += b.l1_hits;
  a.l1_misses += b.l1_misses;
  a.l2_hits += b.l2_hits;
  a.l2_misses += b.l2_misses;
  a.writebacks += b.writebacks;
  a.invalidations += b.invalidations;
  a.forwards += b.forwards;
  a.l2_recalls += b.l2_recalls;
  a.spec_evictions += b.spec_evictions;
}

class MemorySystem {
 public:
  explicit MemorySystem(const sim::MemParams& p);

  /// Timing access: moves the line into this core's L1 with load (GETS) or
  /// store (GETM) permission and returns the latency. `a` must already be
  /// the *final* physical address (any SUV redirection applied by caller).
  AccessOutcome access(CoreId core, Addr a, bool is_write);

  // Functional word access (no timing).
  std::uint64_t load_word(Addr a) const { return store_.load(a); }
  void store_word(Addr a, std::uint64_t v) { store_.store(a, v); }
  BackingStore& backing() { return store_; }

  /// Install `l` into `core`'s L1 in Modified state without a memory fetch:
  /// used when hardware materializes a line whose contents it already has
  /// (SUV's redirect-target allocation + in-cache line copy). Returns true
  /// if the fill evicted a speculative line (caller reports the overflow).
  bool install_line(CoreId core, LineAddr l);

  // --- FasTM speculative-line (SM bit) support -----------------------------
  /// Mark this core's cached copy of `l` speculative. Returns false if the
  /// line is not resident (caller must have just accessed it).
  ///
  /// Marked lines are also recorded in a per-core list so the flash
  /// commit/abort walks touch only the write set (tens of lines) instead of
  /// sweeping the whole L1 per transaction. Entries going stale (eviction,
  /// coherence invalidation) is fine: the walks re-check residency and the
  /// SM bit before acting.
  bool mark_speculative(CoreId core, LineAddr l);
  /// Flash-clear all SM bits (commit).
  void clear_speculative(CoreId core);
  /// Invalidate all SM lines (abort); they will demand-refetch.
  void invalidate_speculative(CoreId core);

  const MemStats& stats() const { return stats_; }
  const Mesh& mesh() const { return mesh_; }
  Cache& l1(CoreId core) { return l1_[core]; }
  const Cache& l1(CoreId core) const { return l1_[core]; }
  Cache& l2() { return l2_; }
  const Cache& l2() const { return l2_; }
  Directory& directory() { return dir_; }
  const Directory& directory() const { return dir_; }
  const BackingStore& backing() const { return store_; }
  /// Lines recorded as speculative for `core` (superset: may hold stale
  /// entries for lines since evicted; every line whose SM bit IS set must
  /// appear here -- the flash walks rely on it).
  const std::vector<LineAddr>& speculative_lines(CoreId core) const {
    return spec_lines_[core];
  }
  Tlb& tlb(CoreId core) { return tlb_[core]; }
  const sim::MemParams& params() const { return params_; }

  /// Observability wiring; called once by the Simulator when recording is on.
  void set_obs(obs::Recorder* r) { obs_ = r; }

 private:
  Cycle fetch_from_l2_or_memory(LineAddr l, std::uint32_t bank_tile);
  void l1_eviction(CoreId core, const Cache::Victim& v);
  /// Insert into the L2 and, if that evicted a line with L1 copies, recall
  /// them (invalidate + directory reset). Returns true if a recall happened.
  /// Every L2 fill must go through here: inserting without the recall
  /// leaves L1 lines the inclusive L2 no longer backs.
  bool l2_insert_with_recall(LineAddr l, CohState st);

  sim::MemParams params_;
  Mesh mesh_;
  std::vector<Cache> l1_;
  Cache l2_;
  Directory dir_;
  std::vector<Tlb> tlb_;
  BackingStore store_;
  MemStats stats_;
  obs::Recorder* obs_ = nullptr;
  /// Per-core lines with the SM bit set (may hold stale entries for lines
  /// since evicted or invalidated; cleared by the flash walks).
  std::vector<std::vector<LineAddr>> spec_lines_;
};

}  // namespace suvtm::mem
