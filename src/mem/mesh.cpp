// Mesh is header-only; this TU exists to keep one definition per module and
// to hold future routing extensions.
#include "mem/mesh.hpp"
