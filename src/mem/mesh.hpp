// 2-D mesh network-on-chip latency model (paper Table III: 2-cycle wire +
// 1-cycle route per hop, adaptive routing approximated as minimal XY).
#pragma once

#include <cstdint>
#include <cstdlib>

#include "common/types.hpp"

namespace suvtm::mem {

class Mesh {
 public:
  Mesh(std::uint32_t dim, Cycle wire_latency, Cycle route_latency)
      : dim_(dim), per_hop_(wire_latency + route_latency) {}

  std::uint32_t dim() const { return dim_; }

  /// Manhattan hop count between two tiles.
  std::uint32_t hops(std::uint32_t tile_a, std::uint32_t tile_b) const {
    const int ax = static_cast<int>(tile_a % dim_), ay = static_cast<int>(tile_a / dim_);
    const int bx = static_cast<int>(tile_b % dim_), by = static_cast<int>(tile_b / dim_);
    return static_cast<std::uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
  }

  /// One-way message latency between two tiles.
  Cycle latency(std::uint32_t tile_a, std::uint32_t tile_b) const {
    return per_hop_ * hops(tile_a, tile_b);
  }

  /// L2 bank tile for a line (address-interleaved, one bank per tile).
  std::uint32_t bank_tile(LineAddr l) const {
    return static_cast<std::uint32_t>(l % (dim_ * dim_));
  }

  /// Average one-way latency to a uniformly random tile (used for costs we
  /// do not track per-endpoint, e.g. invalidation fan-out approximation).
  Cycle average_latency() const {
    // Mean Manhattan distance on an n x n mesh is ~ 2*(n^2-1)/(3n).
    const double n = static_cast<double>(dim_);
    const double mean_hops = 2.0 * (n * n - 1.0) / (3.0 * n);
    return static_cast<Cycle>(static_cast<double>(per_hop_) * mean_hops + 0.5);
  }

 private:
  std::uint32_t dim_;
  Cycle per_hop_;
};

}  // namespace suvtm::mem
