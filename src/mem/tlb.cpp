#include "mem/tlb.hpp"

namespace suvtm::mem {

Tlb::Tlb(std::uint32_t entries, Cycle miss_latency)
    : entries_(entries), miss_latency_(miss_latency) {}

int Tlb::find_slot(std::uint64_t page) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid && entries_[i].page == page) return static_cast<int>(i);
  }
  return -1;
}

Tlb::Access Tlb::access_slow(std::uint64_t page) {
  int slot = find_slot(page);
  if (slot >= 0) {
    entries_[slot].lru = tick_;
    ++hits_;
    last_page_ = page;
    last_slot_ = static_cast<std::uint32_t>(slot);
    return {0, last_slot_, true};
  }
  ++misses_;
  // Fill: pick an invalid slot, else LRU victim.
  std::size_t victim = 0;
  std::uint64_t best = ~0ull;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) {
      victim = i;
      break;
    }
    if (entries_[i].lru < best) {
      best = entries_[i].lru;
      victim = i;
    }
  }
  entries_[victim] = {page, tick_, true};
  last_page_ = page;
  last_slot_ = static_cast<std::uint32_t>(victim);
  return {miss_latency_, last_slot_, false};
}

}  // namespace suvtm::mem
