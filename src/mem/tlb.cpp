#include "mem/tlb.hpp"

namespace suvtm::mem {

Tlb::Tlb(std::uint32_t entries, Cycle miss_latency)
    : entries_(entries), miss_latency_(miss_latency) {}

int Tlb::find_slot(std::uint64_t page) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid && entries_[i].page == page) return static_cast<int>(i);
  }
  return -1;
}

Tlb::Access Tlb::access(Addr a) {
  const std::uint64_t page = page_of(a);
  ++tick_;
  int slot = find_slot(page);
  if (slot >= 0) {
    entries_[slot].lru = tick_;
    ++hits_;
    return {0, static_cast<std::uint32_t>(slot), true};
  }
  ++misses_;
  // Fill: pick an invalid slot, else LRU victim.
  std::size_t victim = 0;
  std::uint64_t best = ~0ull;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) {
      victim = i;
      break;
    }
    if (entries_[i].lru < best) {
      best = entries_[i].lru;
      victim = i;
    }
  }
  entries_[victim] = {page, tick_, true};
  return {miss_latency_, static_cast<std::uint32_t>(victim), false};
}

}  // namespace suvtm::mem
