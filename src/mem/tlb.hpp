// Per-core TLB model.
//
// The simulated address space is identity-mapped (virtual == physical), so
// the TLB exists for two reasons: (1) timing -- a miss costs a page walk --
// and (2) structure -- SUV redirect entries reference pool pages by TLB
// index (paper Figure 3), so the TLB's indexing behaviour is part of the
// reproduced hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace suvtm::mem {

class Tlb {
 public:
  Tlb(std::uint32_t entries, Cycle miss_latency);

  struct Access {
    Cycle latency;       // 0 on hit, miss_latency on walk
    std::uint32_t slot;  // TLB slot now holding the page (SUV entry index)
    bool hit;
  };

  /// Touch the page containing `a`; fills on miss (LRU replacement).
  /// The last-hit page is remembered so the common same-page-as-last-time
  /// access skips the associative scan entirely (pure host optimization:
  /// the returned latency/slot are identical either way).
  Access access(Addr a) {
    const std::uint64_t page = page_of(a);
    ++tick_;
    if (page == last_page_ && entries_[last_slot_].valid &&
        entries_[last_slot_].page == page) {
      entries_[last_slot_].lru = tick_;
      ++hits_;
      return {0, last_slot_, true};
    }
    return access_slow(page);
  }

  /// Slot currently mapping `page`, or -1. Does not update LRU.
  int find_slot(std::uint64_t page) const;

  /// Page mapped by `slot` (valid slots only).
  std::uint64_t page_at(std::uint32_t slot) const { return entries_[slot].page; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::uint64_t page = ~0ull;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  Access access_slow(std::uint64_t page);

  std::vector<Entry> entries_;
  Cycle miss_latency_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t last_page_ = ~0ull;  // MRU fast path
  std::uint32_t last_slot_ = 0;
};

}  // namespace suvtm::mem
