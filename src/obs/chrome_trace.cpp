#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "htm/abort_cause.hpp"

namespace suvtm::obs {

namespace {

// tid used for events that belong to a shared structure, not a core.
constexpr std::uint32_t kStructTid = 9999;

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  s += buf;
}

void append_hex(std::string& s, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, v);
  s += buf;
}

void append_kv(std::string& s, const char* k, std::uint64_t v, bool& first) {
  if (!first) s += ',';
  first = false;
  s += '"';
  s += k;
  s += "\":";
  append_u64(s, v);
}

void append_kv_str(std::string& s, const char* k, const char* v,
                   bool& first) {
  if (!first) s += ',';
  first = false;
  s += '"';
  s += k;
  s += "\":\"";
  s += v;  // controlled ASCII: kind/cause names never need escaping
  s += '"';
}

void append_kv_hex(std::string& s, const char* k, std::uint64_t v,
                   bool& first) {
  if (!first) s += ',';
  first = false;
  s += '"';
  s += k;
  s += "\":\"";
  append_hex(s, v);
  s += '"';
}

std::uint32_t tid_of(const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kTableSpill:
    case EventKind::kPoolPage:
      return e.core == kNoCore ? kStructTid : e.core;
    default:
      return e.core;
  }
}

const char* cat_of(EventKind k) {
  switch (k) {
    case EventKind::kTxnSpan:
    case EventKind::kCommitWindow:
    case EventKind::kAbortWindow:
    case EventKind::kBackoffSpan:
    case EventKind::kSuspend:
    case EventKind::kResume:
      return "txn";
    case EventKind::kStallSpan:
    case EventKind::kAbortEdge:
      return "conflict";
    case EventKind::kL1Miss:
    case EventKind::kDirForward:
    case EventKind::kSpecEviction:
      return "mem";
    default:
      return "vm";
  }
}

bool is_span(EventKind k) {
  switch (k) {
    case EventKind::kTxnSpan:
    case EventKind::kCommitWindow:
    case EventKind::kAbortWindow:
    case EventKind::kStallSpan:
    case EventKind::kBackoffSpan:
      return true;
    default:
      return false;
  }
}

void append_event(std::string& out, std::size_t pid, const TraceEvent& e,
                  bool& first_event) {
  if (!first_event) out += ",\n";
  first_event = false;
  out += "{\"name\":\"";
  if (e.kind == EventKind::kTxnSpan) {
    out += "txn@";
    append_u64(out, e.a);
  } else {
    out += event_kind_name(e.kind);
  }
  out += "\",\"cat\":\"";
  out += cat_of(e.kind);
  out += "\",\"ph\":\"";
  out += is_span(e.kind) ? 'X' : 'i';
  out += '"';
  if (!is_span(e.kind)) out += ",\"s\":\"t\"";
  out += ",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, tid_of(e));
  out += ",\"ts\":";
  append_u64(out, e.ts);
  if (is_span(e.kind)) {
    out += ",\"dur\":";
    append_u64(out, e.dur);
  }
  out += ",\"args\":{";
  bool first = true;
  const auto cause = static_cast<htm::AbortCause>(e.cause);
  switch (e.kind) {
    case EventKind::kTxnSpan:
      append_kv(out, "site", e.a, first);
      append_kv(out, "attempt", e.b, first);
      append_kv_str(out, "outcome",
                    cause == htm::AbortCause::kNone ? "commit" : "abort",
                    first);
      if (cause != htm::AbortCause::kNone) {
        append_kv_str(out, "cause", abort_cause_name(cause), first);
      }
      break;
    case EventKind::kAbortWindow:
      append_kv_str(out, "cause", abort_cause_name(cause), first);
      break;
    case EventKind::kStallSpan:
      append_kv(out, "holder", e.a, first);
      append_kv_hex(out, "line", e.addr, first);
      break;
    case EventKind::kAbortEdge:
      append_kv(out, "aborter", e.core, first);
      append_kv(out, "victim", e.a, first);
      append_kv(out, "victim_site", e.b, first);
      append_kv_hex(out, "line", e.addr, first);
      append_kv_str(out, "cause", abort_cause_name(cause), first);
      break;
    case EventKind::kL1Miss:
      append_kv(out, "latency", e.a, first);
      append_kv(out, "l2_hit", e.b, first);
      append_kv_hex(out, "line", e.addr, first);
      break;
    case EventKind::kDirForward:
      append_kv(out, "owner", e.a, first);
      append_kv_hex(out, "line", e.addr, first);
      break;
    case EventKind::kSpecEviction:
    case EventKind::kTableSpill:
      append_kv_hex(out, "line", e.addr, first);
      break;
    default:
      break;
  }
  out += "}}";
}

void append_metadata(std::string& out, std::size_t pid, const char* what,
                     std::uint32_t tid, bool with_tid, const std::string& name,
                     bool& first_event) {
  if (!first_event) out += ",\n";
  first_event = false;
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  if (with_tid) {
    out += ",\"tid\":";
    append_u64(out, tid);
  }
  out += ",\"args\":{\"name\":\"";
  out += name;
  out += "\"}}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<NamedTrace>& runs) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first_event = true;
  for (std::size_t pid = 0; pid < runs.size(); ++pid) {
    const NamedTrace& run = runs[pid];
    append_metadata(out, pid, "process_name", 0, false, run.name,
                    first_event);
    if (run.data == nullptr) continue;
    // Name every tid that appears, in ascending order.
    std::vector<std::uint32_t> tids;
    for (const TraceEvent& e : run.data->events) tids.push_back(tid_of(e));
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (std::uint32_t tid : tids) {
      std::string name;
      if (tid == kStructTid) {
        name = "structures";
      } else {
        name = "core ";
        append_u64(name, tid);
      }
      append_metadata(out, pid, "thread_name", tid, true, name, first_event);
    }
    for (const TraceEvent& e : run.data->events) {
      append_event(out, pid, e, first_event);
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<NamedTrace>& runs) {
  const std::string json = chrome_trace_json(runs);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace suvtm::obs
