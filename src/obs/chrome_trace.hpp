// Chrome trace-event / Perfetto JSON exporter. One simulated cycle maps to
// one trace microsecond; pid is the run's submission index in the matrix,
// tid is the simulated core. Output contains only simulated quantities
// (never host thread ids or wall times), so the bytes are identical no
// matter how many host jobs produced the runs.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace suvtm::obs {

/// One run's trace plus its process label, e.g. "kmeans/SUV-TM".
struct NamedTrace {
  std::string name;
  const TraceData* data = nullptr;
};

/// Render runs into one Chrome-trace JSON document ({"traceEvents": [...]}).
std::string chrome_trace_json(const std::vector<NamedTrace>& runs);

/// Write chrome_trace_json to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<NamedTrace>& runs);

}  // namespace suvtm::obs
