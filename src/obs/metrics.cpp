#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace suvtm::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kAbortsDeadlock: return "aborts.deadlock_cycle";
    case Counter::kAbortsRequesterWins: return "aborts.requester_wins";
    case Counter::kAbortsLazyInvalidated: return "aborts.lazy_invalidated";
    case Counter::kAbortsLazyCommitDoom: return "aborts.lazy_commit_doom";
    case Counter::kAbortsSuspendedConflict:
      return "aborts.suspended_conflict";
    case Counter::kAbortsNestingFallback: return "aborts.nesting_fallback";
    case Counter::kAbortsExplicit: return "aborts.explicit";
    case Counter::kConflictEdges: return "conflict_edges";
    case Counter::kStallRetries: return "stall_retries";
    case Counter::kSuspends: return "suspends";
    case Counter::kResumes: return "resumes";
    case Counter::kDirForwards: return "mem.dir_forwards";
    case Counter::kL1Evictions: return "mem.l1_evictions";
    case Counter::kL2Evictions: return "mem.l2_evictions";
    case Counter::kDirEntriesDropped: return "mem.dir_entries_dropped";
    case Counter::kSpecEvictions: return "mem.spec_evictions";
    case Counter::kDegenerations: return "fastm.degenerations";
    case Counter::kUndoWalks: return "logtm.undo_walks";
    case Counter::kSummaryAdds: return "suv.summary_adds";
    case Counter::kSummaryRemoves: return "suv.summary_removes";
    case Counter::kSummaryStaleRemoves: return "suv.summary_stale_removes";
    case Counter::kTableSpills: return "suv.table_spills";
    case Counter::kTableL1Overflows: return "suv.table_l1_overflows";
    case Counter::kPoolPages: return "suv.pool_pages";
    case Counter::kSuvFlashCommits: return "suv.flash_commits";
    case Counter::kSuvFlashAborts: return "suv.flash_aborts";
    default: return "?";
  }
}

const char* histogram_name(Histogram h) {
  switch (h) {
    case Histogram::kAbortCause: return "abort_cause";
    case Histogram::kMissLatency: return "miss_latency_cycles";
    case Histogram::kStallCycles: return "stall_cycles";
    case Histogram::kBackoffCycles: return "backoff_cycles";
    case Histogram::kCommittedTxnCycles: return "committed_txn_cycles";
    case Histogram::kAbortedTxnCycles: return "aborted_txn_cycles";
    case Histogram::kUndoEntriesAtAbort: return "undo_entries_at_abort";
    case Histogram::kLinesPerCommit: return "lines_per_commit";
    default: return "?";
  }
}

bool histogram_is_linear(Histogram h) {
  return h == Histogram::kAbortCause;
}

const char* series_name(Series s) {
  switch (s) {
    case Series::kRedirectEntries: return "suv.redirect_entries";
    case Series::kPoolLines: return "suv.pool_lines";
    case Series::kSuspendedTxns: return "suspended_txns";
    case Series::kDirTracked: return "mem.dir_tracked";
    default: return "?";
  }
}

void HistogramData::observe(std::uint64_t v, bool linear) {
  const std::size_t b =
      linear ? static_cast<std::size_t>(v)
             : static_cast<std::size_t>(std::bit_width(v));  // log2 + 1
  buckets[std::min(b, kHistogramBuckets - 1)] += 1;
  ++count;
  sum += v;
  if (v > max) max = v;
}

void MetricsSnapshot::set(std::string_view name, double v) {
  auto it = std::lower_bound(
      scalars.begin(), scalars.end(), name,
      [](const auto& p, std::string_view n) { return p.first < n; });
  if (it != scalars.end() && it->first == name) {
    it->second = v;
  } else {
    scalars.insert(it, {std::string(name), v});
  }
}

double MetricsSnapshot::get(std::string_view name, double missing) const {
  auto it = std::lower_bound(
      scalars.begin(), scalars.end(), name,
      [](const auto& p, std::string_view n) { return p.first < n; });
  return it != scalars.end() && it->first == name ? it->second : missing;
}

MetricsSnapshot snapshot(const Metrics& m) {
  MetricsSnapshot out;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Counter::kCount);
       ++i) {
    const auto c = static_cast<Counter>(i);
    if (m.counter(c) != 0) {
      out.set(std::string("obs.") + counter_name(c),
              static_cast<double>(m.counter(c)));
    }
  }
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Histogram::kCount);
       ++i) {
    const auto h = static_cast<Histogram>(i);
    if (m.histogram(h).count != 0) {
      out.histograms.push_back(
          {histogram_name(h), m.histogram(h), histogram_is_linear(h)});
    }
  }
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Series::kCount);
       ++i) {
    const auto s = static_cast<Series>(i);
    if (!m.series(s).empty()) {
      out.series.push_back({series_name(s), m.series(s)});
    }
  }
  return out;
}

void merge(MetricsSnapshot& a, const MetricsSnapshot& b) {
  // lint: allow(float-accum-order): the reduction order is pinned by the
  // callers -- shard snapshots merge in ascending shard index and run
  // snapshots in submission order (DESIGN.md section 15) -- so the
  // non-commuting double additions happen in one canonical order
  for (const auto& [name, v] : b.scalars) a.set(name, a.get(name) + v);
  for (const auto& h : b.histograms) {
    auto it = std::find_if(a.histograms.begin(), a.histograms.end(),
                           [&](const auto& x) { return x.name == h.name; });
    if (it == a.histograms.end()) {
      a.histograms.push_back(h);
      continue;
    }
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      it->data.buckets[i] += h.data.buckets[i];
    }
    it->data.count += h.data.count;
    it->data.sum += h.data.sum;
    it->data.max = std::max(it->data.max, h.data.max);
  }
  // Series intentionally not merged.
}

}  // namespace suvtm::obs
