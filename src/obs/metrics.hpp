// Uniform metrics registry: fixed-id counters, log2-bucket histograms and
// event-sampled time series filled by the instrumentation hooks, plus
// MetricsSnapshot -- the harvested, value-comparable form that RunResult
// carries and runner::BenchReport flattens into BENCH_*.json.
//
// Ids are enums (array indices), not string lookups, so a hook costs one
// add on an array slot. Names only materialize at snapshot time.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace suvtm::obs {

enum class Counter : std::uint32_t {
  // Abort causes; kept in htm::AbortCause order (kDeadlockCycle..kExplicit).
  kAbortsDeadlock,
  kAbortsRequesterWins,
  kAbortsLazyInvalidated,
  kAbortsLazyCommitDoom,
  kAbortsSuspendedConflict,
  kAbortsNestingFallback,
  kAbortsExplicit,
  kConflictEdges,
  kStallRetries,
  kSuspends,
  kResumes,
  kDirForwards,
  kL1Evictions,
  kL2Evictions,
  kDirEntriesDropped,
  kSpecEvictions,
  kDegenerations,
  kUndoWalks,
  kSummaryAdds,
  kSummaryRemoves,
  kSummaryStaleRemoves,
  kTableSpills,
  kTableL1Overflows,
  kPoolPages,
  kSuvFlashCommits,
  kSuvFlashAborts,
  kCount,
};
const char* counter_name(Counter c);

enum class Histogram : std::uint32_t {
  kAbortCause,         // linear: bucket == htm::AbortCause value
  kMissLatency,        // log2 cycles of L1-miss service time
  kStallCycles,        // log2 cycles per contiguous stall stretch
  kBackoffCycles,      // log2 cycles per backoff
  kCommittedTxnCycles, // log2 duration of committed attempts
  kAbortedTxnCycles,   // log2 duration of aborted attempts
  kUndoEntriesAtAbort, // log2 undo-log length walked by an abort
  kLinesPerCommit,     // log2 write-set lines published/flipped per commit
  kCount,
};
const char* histogram_name(Histogram h);
bool histogram_is_linear(Histogram h);

enum class Series : std::uint32_t {
  kRedirectEntries,  // SUV redirect-table occupancy (L1 + L2 + memory)
  kPoolLines,        // preserved-pool lines handed out across cores
  kSuspendedTxns,    // descheduled transactions parked in the HTM
  kDirTracked,       // directory entries live
  kCount,
};
const char* series_name(Series s);

inline constexpr std::size_t kHistogramBuckets = 32;

struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void observe(std::uint64_t v, bool linear);
  bool operator==(const HistogramData&) const = default;
};

struct SeriesPoint {
  Cycle t = 0;
  std::uint64_t v = 0;
  bool operator==(const SeriesPoint&) const = default;
};

class Metrics {
 public:
  void add(Counter c, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(c)] += n;
  }
  void observe(Histogram h, std::uint64_t v) {
    histograms_[static_cast<std::size_t>(h)].observe(v, histogram_is_linear(h));
  }
  void sample(Series s, Cycle t, std::uint64_t v) {
    series_[static_cast<std::size_t>(s)].push_back({t, v});
  }
  std::uint64_t counter(Counter c) const {
    return counters_[static_cast<std::size_t>(c)];
  }
  const HistogramData& histogram(Histogram h) const {
    return histograms_[static_cast<std::size_t>(h)];
  }
  const std::vector<SeriesPoint>& series(Series s) const {
    return series_[static_cast<std::size_t>(s)];
  }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
      counters_{};
  std::array<HistogramData, static_cast<std::size_t>(Histogram::kCount)>
      histograms_{};
  std::array<std::vector<SeriesPoint>,
             static_cast<std::size_t>(Series::kCount)>
      series_{};
};

struct HistogramSnapshot {
  std::string name;
  HistogramData data;
  bool linear = false;
  bool operator==(const HistogramSnapshot&) const = default;
};

struct SeriesSnapshot {
  std::string name;
  std::vector<SeriesPoint> points;
  bool operator==(const SeriesSnapshot&) const = default;
};

/// The harvested metrics of one run. Scalars hold every nonzero counter
/// plus derived values the harvest adds (rates, final stats-block values);
/// they stay sorted by name so snapshots compare and serialize stably.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> scalars;
  std::vector<HistogramSnapshot> histograms;  // nonzero-count only
  std::vector<SeriesSnapshot> series;         // nonempty only

  bool empty() const {
    return scalars.empty() && histograms.empty() && series.empty();
  }
  /// Insert or replace, keeping `scalars` sorted by name.
  void set(std::string_view name, double v);
  double get(std::string_view name, double missing = 0.0) const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Snapshot the registry: nonzero counters become "obs.<name>" scalars,
/// histograms and series carry their registry names.
MetricsSnapshot snapshot(const Metrics& m);

/// Sum `b` into `a`: scalars and histograms add by name; series are dropped
/// (summing occupancy curves across runs is meaningless). Used by benches to
/// aggregate a matrix into one report block.
void merge(MetricsSnapshot& a, const MetricsSnapshot& b);

}  // namespace suvtm::obs
