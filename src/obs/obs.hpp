// suvtm::obs -- cycle-attributed tracing and metrics.
//
// The hook macro follows the SUVTM_CHECK discipline exactly: with
// -DSUVTM_OBS=OFF the hooks compile to nothing; with the default ON build
// they cost one pointer test against a Recorder* that is nullptr unless the
// run asked for tracing or metrics (cfg.obs, defaulted from the SUVTM_TRACE
// / SUVTM_METRICS environment variables).
#pragma once

namespace suvtm::obs {

class Recorder;

#if defined(SUVTM_OBS_ENABLED) && SUVTM_OBS_ENABLED
inline constexpr bool kHooksCompiled = true;
#else
inline constexpr bool kHooksCompiled = false;
#endif

}  // namespace suvtm::obs

#if defined(SUVTM_OBS_ENABLED) && SUVTM_OBS_ENABLED
/// Invoke `call` on the obs::Recorder* `rec` when observability is active.
/// `rec` is evaluated once; the call is skipped when it is nullptr.
#define SUVTM_OBS_HOOK(rec, call) \
  do {                            \
    if (rec) (rec)->call;         \
  } while (0)
#else
#define SUVTM_OBS_HOOK(rec, call) \
  do {                            \
  } while (0)
#endif
