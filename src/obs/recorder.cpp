#include "obs/recorder.hpp"

namespace suvtm::obs {

namespace {

Counter counter_for_cause(htm::AbortCause cause) {
  // Counter::kAbortsDeadlock.. mirror AbortCause::kDeadlockCycle.. in order.
  const auto i = static_cast<std::uint32_t>(cause);
  if (i == 0 || i >= static_cast<std::uint32_t>(htm::AbortCause::kCauseCount)) {
    return Counter::kAbortsExplicit;
  }
  return static_cast<Counter>(
      static_cast<std::uint32_t>(Counter::kAbortsDeadlock) + i - 1);
}

}  // namespace

Recorder::Recorder(const sim::ObsParams& params, std::uint32_t num_cores)
    : trace_on_(params.trace), trace_mem_(params.trace_mem),
      sample_interval_(params.sample_interval_events == 0
                           ? 1
                           : params.sample_interval_events),
      sample_countdown_(sample_interval_), tracer_(params.max_trace_events),
      cores_(num_cores) {}

void Recorder::close_stall(CoreId c, Cycle t) {
  CoreSpans& s = cores_[c];
  s.stall_open = false;
  const Cycle dur = t - s.stall_start;
  metrics_.observe(Histogram::kStallCycles, dur);
  TraceEvent e;
  e.ts = s.stall_start;
  e.dur = dur;
  e.addr = s.stall_line;
  e.a = s.stall_holder;
  e.kind = EventKind::kStallSpan;
  e.core = c;
  emit(e);
}

void Recorder::on_txn_begin(CoreId c, Cycle t, std::uint32_t site,
                            std::uint64_t attempt) {
  CoreSpans& s = cores_[c];
  if (s.stall_open) close_stall(c, t);
  s.txn_open = true;
  s.txn_start = t;
  s.site = site;
  s.attempt = static_cast<std::uint32_t>(attempt);
  s.pending_cause = htm::AbortCause::kNone;
}

void Recorder::on_commit_window(CoreId c, Cycle t, Cycle window) {
  if (cores_[c].stall_open) close_stall(c, t);
  TraceEvent e;
  e.ts = t;
  e.dur = window;
  e.kind = EventKind::kCommitWindow;
  e.core = c;
  emit(e);
}

void Recorder::on_txn_commit(CoreId c, Cycle t, std::uint64_t write_lines) {
  CoreSpans& s = cores_[c];
  metrics_.observe(Histogram::kLinesPerCommit, write_lines);
  if (!s.txn_open) return;
  s.txn_open = false;
  metrics_.observe(Histogram::kCommittedTxnCycles, t - s.txn_start);
  TraceEvent e;
  e.ts = s.txn_start;
  e.dur = t - s.txn_start;
  e.a = s.site;
  e.b = s.attempt;
  e.kind = EventKind::kTxnSpan;
  e.cause = static_cast<std::uint8_t>(htm::AbortCause::kNone);
  e.core = c;
  emit(e);
}

void Recorder::on_abort_window(CoreId c, Cycle t, Cycle window,
                               htm::AbortCause cause) {
  CoreSpans& s = cores_[c];
  if (s.stall_open) close_stall(c, t);
  s.pending_cause = cause;
  metrics_.add(counter_for_cause(cause));
  metrics_.observe(Histogram::kAbortCause, static_cast<std::uint64_t>(cause));
  TraceEvent e;
  e.ts = t;
  e.dur = window;
  e.kind = EventKind::kAbortWindow;
  e.cause = static_cast<std::uint8_t>(cause);
  e.core = c;
  emit(e);
}

void Recorder::on_txn_abort(CoreId c, Cycle t) {
  CoreSpans& s = cores_[c];
  if (!s.txn_open) return;
  s.txn_open = false;
  metrics_.observe(Histogram::kAbortedTxnCycles, t - s.txn_start);
  TraceEvent e;
  e.ts = s.txn_start;
  e.dur = t - s.txn_start;
  e.a = s.site;
  e.b = s.attempt;
  e.kind = EventKind::kTxnSpan;
  e.cause = static_cast<std::uint8_t>(s.pending_cause);
  e.core = c;
  emit(e);
}

void Recorder::on_stall(CoreId c, Cycle t, CoreId holder, LineAddr line,
                        Cycle /*wait*/) {
  metrics_.add(Counter::kStallRetries);
  CoreSpans& s = cores_[c];
  if (!s.stall_open) {
    s.stall_open = true;
    s.stall_start = t;
    s.stall_holder = holder;
    s.stall_line = line;
  }
}

void Recorder::on_backoff(CoreId c, Cycle t, Cycle wait) {
  metrics_.observe(Histogram::kBackoffCycles, wait);
  TraceEvent e;
  e.ts = t;
  e.dur = wait;
  e.kind = EventKind::kBackoffSpan;
  e.core = c;
  emit(e);
}

void Recorder::on_suspend(CoreId c) {
  metrics_.add(Counter::kSuspends);
  TraceEvent e;
  e.ts = now_;
  e.kind = EventKind::kSuspend;
  e.core = c;
  emit(e);
}

void Recorder::on_resume(CoreId c) {
  metrics_.add(Counter::kResumes);
  TraceEvent e;
  e.ts = now_;
  e.kind = EventKind::kResume;
  e.core = c;
  emit(e);
}

void Recorder::on_conflict_edge(CoreId aborter, CoreId victim, LineAddr line,
                                std::uint32_t victim_site,
                                htm::AbortCause cause) {
  metrics_.add(Counter::kConflictEdges);
  TraceEvent e;
  e.ts = now_;
  e.addr = line;
  e.a = victim;
  e.b = victim_site;
  e.kind = EventKind::kAbortEdge;
  e.cause = static_cast<std::uint8_t>(cause);
  e.core = aborter;
  emit(e);
}

void Recorder::on_degeneration(CoreId c) {
  metrics_.add(Counter::kDegenerations);
  TraceEvent e;
  e.ts = now_;
  e.kind = EventKind::kDegeneration;
  e.core = c;
  emit(e);
}

void Recorder::on_undo_walk(std::uint64_t entries) {
  metrics_.add(Counter::kUndoWalks);
  metrics_.observe(Histogram::kUndoEntriesAtAbort, entries);
}

void Recorder::on_suv_flash(CoreId /*c*/, bool commit,
                            std::uint64_t /*entries*/) {
  metrics_.add(commit ? Counter::kSuvFlashCommits : Counter::kSuvFlashAborts);
}

void Recorder::on_table_spill(LineAddr line, CoreId owner) {
  metrics_.add(Counter::kTableSpills);
  TraceEvent e;
  e.ts = now_;
  e.addr = line;
  e.kind = EventKind::kTableSpill;
  e.core = owner;
  emit(e);
}

void Recorder::on_table_l1_overflow() {
  metrics_.add(Counter::kTableL1Overflows);
}

void Recorder::on_pool_page(CoreId owner) {
  metrics_.add(Counter::kPoolPages);
  TraceEvent e;
  e.ts = now_;
  e.kind = EventKind::kPoolPage;
  e.core = owner;
  emit(e);
}

void Recorder::on_summary_add() { metrics_.add(Counter::kSummaryAdds); }

void Recorder::on_summary_remove(bool stale) {
  metrics_.add(Counter::kSummaryRemoves);
  if (stale) metrics_.add(Counter::kSummaryStaleRemoves);
}

void Recorder::on_l1_miss(CoreId c, Cycle t, LineAddr line, Cycle latency,
                          bool l2_hit) {
  metrics_.observe(Histogram::kMissLatency, latency);
  if (!trace_mem_) return;
  TraceEvent e;
  e.ts = t;
  e.addr = line;
  e.a = static_cast<std::uint32_t>(latency);
  e.b = l2_hit ? 1 : 0;
  e.kind = EventKind::kL1Miss;
  e.core = c;
  emit(e);
}

void Recorder::on_dir_forward(CoreId requester, CoreId owner, LineAddr line) {
  metrics_.add(Counter::kDirForwards);
  if (!trace_mem_) return;
  TraceEvent e;
  e.ts = now_;
  e.addr = line;
  e.a = owner;
  e.kind = EventKind::kDirForward;
  e.core = requester;
  emit(e);
}

void Recorder::on_cache_evict(bool l2, LineAddr /*victim*/) {
  metrics_.add(l2 ? Counter::kL2Evictions : Counter::kL1Evictions);
}

void Recorder::on_dir_drop() { metrics_.add(Counter::kDirEntriesDropped); }

void Recorder::on_spec_eviction(CoreId c, LineAddr line) {
  metrics_.add(Counter::kSpecEvictions);
  TraceEvent e;
  e.ts = now_;
  e.addr = line;
  e.kind = EventKind::kSpecEviction;
  e.core = c;
  emit(e);
}

}  // namespace suvtm::obs
