// Recorder: the per-Simulator observability hub every SUVTM_OBS_HOOK calls
// into. Owns one Tracer and one Metrics registry, caches the scheduler's
// current cycle (structures like the conflict manager and the redirect
// table have no clock of their own), and drives the periodic occupancy
// sampler. One Recorder per Simulator keeps parallel experiment runs fully
// isolated, which is what makes traces submission-order deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "htm/abort_cause.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"

namespace suvtm::obs {

class Recorder {
 public:
  Recorder(const sim::ObsParams& params, std::uint32_t num_cores);

  bool tracing() const { return trace_on_; }
  bool trace_mem() const { return trace_mem_; }
  Cycle now() const { return now_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  const TraceData& trace() const { return tracer_.data(); }
  TraceData take_trace() { return tracer_.take(); }

  /// Gauge sampler, invoked every `sample_interval_events` scheduler events.
  /// Installed by the Simulator (it knows which structures exist).
  using Sampler = std::function<void(Metrics&, Cycle)>;
  void set_sampler(Sampler s) { sampler_ = std::move(s); }

  // ---- sim/scheduler ------------------------------------------------------
  /// One call per drained bucket: advances the cycle cache once for the
  /// whole batch and pays the sampler countdown `n` events at a time.
  void on_batch(Cycle t, std::uint64_t n) {
    now_ = t;
    while (n >= sample_countdown_) {
      n -= sample_countdown_;
      sample_countdown_ = sample_interval_;
      if (sampler_) sampler_(metrics_, now_);
    }
    sample_countdown_ -= static_cast<std::uint32_t>(n);
  }

  /// A fast-path event completed without a scheduler round trip; it still
  /// advances the sampler deadline (the cycle cache is already current).
  void on_inline_event() {
    if (--sample_countdown_ == 0) {
      sample_countdown_ = sample_interval_;
      if (sampler_) sampler_(metrics_, now_);
    }
  }

  // ---- sim/thread_context: txn lifecycle ----------------------------------
  void on_txn_begin(CoreId c, Cycle t, std::uint32_t site,
                    std::uint64_t attempt);
  void on_commit_window(CoreId c, Cycle t, Cycle window);
  void on_txn_commit(CoreId c, Cycle t, std::uint64_t write_lines);
  void on_abort_window(CoreId c, Cycle t, Cycle window, htm::AbortCause cause);
  void on_txn_abort(CoreId c, Cycle t);
  void on_stall(CoreId c, Cycle t, CoreId holder, LineAddr line, Cycle wait);
  void on_access_granted(CoreId c, Cycle t) {
    if (cores_[c].stall_open) close_stall(c, t);
  }
  void on_backoff(CoreId c, Cycle t, Cycle wait);

  // ---- htm/htm_system -----------------------------------------------------
  void on_suspend(CoreId c);
  void on_resume(CoreId c);

  // ---- htm/conflict_manager, vm/dyntm: conflict edges ---------------------
  void on_conflict_edge(CoreId aborter, CoreId victim, LineAddr line,
                        std::uint32_t victim_site, htm::AbortCause cause);

  // ---- vm schemes ---------------------------------------------------------
  void on_degeneration(CoreId c);
  void on_undo_walk(std::uint64_t entries);
  void on_suv_flash(CoreId c, bool commit, std::uint64_t entries);

  // ---- suv structures -----------------------------------------------------
  void on_table_spill(LineAddr line, CoreId owner);
  void on_table_l1_overflow();
  void on_pool_page(CoreId owner);
  void on_summary_add();
  void on_summary_remove(bool stale);

  // ---- mem ----------------------------------------------------------------
  void on_l1_miss(CoreId c, Cycle t, LineAddr line, Cycle latency,
                  bool l2_hit);
  void on_dir_forward(CoreId requester, CoreId owner, LineAddr line);
  void on_cache_evict(bool l2, LineAddr victim);
  void on_dir_drop();
  void on_spec_eviction(CoreId c, LineAddr line);

 private:
  void emit(const TraceEvent& e) {
    if (trace_on_) tracer_.emit(e);
  }
  void close_stall(CoreId c, Cycle t);

  /// Per-core open-span state; spans are emitted on close so the event log
  /// stays append-only.
  struct CoreSpans {
    Cycle txn_start = 0;
    std::uint32_t site = 0;
    std::uint32_t attempt = 0;
    htm::AbortCause pending_cause = htm::AbortCause::kNone;
    bool txn_open = false;
    Cycle stall_start = 0;
    CoreId stall_holder = kNoCore;
    LineAddr stall_line = 0;
    bool stall_open = false;
  };

  bool trace_on_ = false;
  bool trace_mem_ = false;
  std::uint32_t sample_interval_ = 0;
  std::uint32_t sample_countdown_ = 0;
  Cycle now_ = 0;
  Tracer tracer_;
  Metrics metrics_;
  std::vector<CoreSpans> cores_;
  Sampler sampler_;
};

}  // namespace suvtm::obs
