#include "obs/trace.hpp"

namespace suvtm::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kTxnSpan: return "txn";
    case EventKind::kCommitWindow: return "commit";
    case EventKind::kAbortWindow: return "abort";
    case EventKind::kStallSpan: return "stall";
    case EventKind::kBackoffSpan: return "backoff";
    case EventKind::kAbortEdge: return "abort-edge";
    case EventKind::kSuspend: return "suspend";
    case EventKind::kResume: return "resume";
    case EventKind::kL1Miss: return "l1-miss";
    case EventKind::kDirForward: return "dir-forward";
    case EventKind::kSpecEviction: return "spec-eviction";
    case EventKind::kDegeneration: return "degeneration";
    case EventKind::kTableSpill: return "table-spill";
    case EventKind::kPoolPage: return "pool-page";
    default: return "?";
  }
}

}  // namespace suvtm::obs
