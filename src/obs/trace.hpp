// Event tracer: a bounded, append-only log of POD events recorded in
// deterministic simulation order. One Tracer lives inside each Simulator's
// Recorder, so parallel experiment runs never share trace state; the runner
// merges per-run TraceData in submission order, which keeps the exported
// JSON byte-identical across --jobs settings.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace suvtm::obs {

enum class EventKind : std::uint8_t {
  kTxnSpan,       ///< complete txn attempt: a=site, b=attempt#, cause=outcome
  kCommitWindow,  ///< commit isolation window (merge pathology when long)
  kAbortWindow,   ///< rollback window (repair pathology), cause set
  kStallSpan,     ///< contiguous NACK-retry stretch: a=holder core, addr=line
  kBackoffSpan,   ///< post-abort randomized backoff
  kAbortEdge,     ///< instant: core=aborter, a=victim, b=victim site, cause
  kSuspend,       ///< instant: txn descheduled from core
  kResume,        ///< instant: txn rescheduled onto core
  kL1Miss,        ///< instant (trace_mem): a=service latency, b=L2 hit
  kDirForward,    ///< instant (trace_mem): a=owner core, addr=line
  kSpecEviction,  ///< instant: speculative line left the L1 (overflow)
  kDegeneration,  ///< instant: FasTM fell back to LogTM-SE behaviour
  kTableSpill,    ///< instant: SUV redirect entry evicted L2 -> memory
  kPoolPage,      ///< instant: preserved pool grabbed a fresh page
};

const char* event_kind_name(EventKind k);

/// One trace record. POD, value-comparable; `cause` is an htm::AbortCause
/// for txn/abort events and 0 elsewhere. Instants have dur == 0.
struct TraceEvent {
  Cycle ts = 0;
  Cycle dur = 0;
  LineAddr addr = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  EventKind kind = EventKind::kTxnSpan;
  std::uint8_t cause = 0;
  CoreId core = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// The harvested trace of one run: the event log plus how many events the
/// cap discarded (the cap keeps long runs bounded and deterministic).
struct TraceData {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;

  bool operator==(const TraceData&) const = default;
};

class Tracer {
 public:
  explicit Tracer(std::uint64_t max_events) : max_(max_events) {}

  void emit(const TraceEvent& e) {
    if (data_.events.size() >= max_) {
      ++data_.dropped;
      return;
    }
    data_.events.push_back(e);
  }

  const TraceData& data() const { return data_; }
  TraceData take() { return std::move(data_); }

 private:
  std::uint64_t max_ = 0;
  TraceData data_;
};

}  // namespace suvtm::obs
