#include "runner/bench_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace suvtm::runner {

void BenchReport::put(const std::string& key, std::string json_value) {
  for (auto& e : entries_) {
    if (e.key == key) {
      e.json_value = std::move(json_value);
      return;
    }
  }
  entries_.push_back({key, std::move(json_value)});
}

void BenchReport::set(const std::string& key, double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  } else {
    std::snprintf(buf, sizeof buf, "null");  // JSON has no inf/nan
  }
  put(key, buf);
}

void BenchReport::set(const std::string& key, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  put(key, buf);
}

void BenchReport::set(const std::string& key, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  put(key, buf);
}

void BenchReport::set(const std::string& key, const std::string& v) {
  std::string out = "\"";
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  put(key, std::move(out));
}

void BenchReport::set_metrics(const obs::MetricsSnapshot& m,
                              const std::string& prefix) {
  for (const auto& [name, v] : m.scalars) set(prefix + name, v);
  for (const auto& h : m.histograms) {
    const std::string base = prefix + "hist." + h.name;
    set(base + ".count", h.data.count);
    set(base + ".mean", h.data.count == 0
                            ? 0.0
                            : static_cast<double>(h.data.sum) /
                                  static_cast<double>(h.data.count));
    set(base + ".max", h.data.max);
  }
  for (const auto& s : m.series) {
    const std::string base = prefix + "series." + s.name;
    set(base + ".samples", static_cast<std::uint64_t>(s.points.size()));
    std::uint64_t mx = 0;
    for (const auto& p : s.points) mx = std::max(mx, p.v);
    set(base + ".max", mx);
    set(base + ".last", s.points.empty() ? 0 : s.points.back().v);
  }
}

std::string BenchReport::to_json() const {
  std::string out = "{\n";
  out += "  \"bench\": \"" + name_ + "\"";
  for (const auto& e : entries_) {
    out += ",\n  \"" + e.key + "\": " + e.json_value;
  }
  out += "\n}\n";
  return out;
}

bool BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

}  // namespace suvtm::runner
