// Machine-readable bench output: every bench harness, besides its human
// tables, writes a flat BENCH_<name>.json with the numbers CI and plotting
// scripts care about (wall time, jobs used, events/sec, headline metrics).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace suvtm::runner {

/// Wall-clock stopwatch for bench harnesses.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Ordered key -> scalar map rendered as one flat JSON object.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, double v);
  void set(const std::string& key, std::uint64_t v);
  void set(const std::string& key, std::int64_t v);
  void set(const std::string& key, unsigned v) {
    set(key, static_cast<std::uint64_t>(v));
  }
  void set(const std::string& key, const std::string& v);

  /// Flatten a metrics snapshot into `<prefix><name>` keys: scalars land
  /// directly; each histogram contributes .count/.mean/.max; each series
  /// contributes .samples/.last/.max.
  void set_metrics(const obs::MetricsSnapshot& m, const std::string& prefix);

  std::string to_json() const;

  /// Write BENCH_<name>.json into `dir`; prints the path on success.
  bool write(const std::string& dir = ".") const;

 private:
  struct Entry {
    std::string key;
    std::string json_value;  // pre-rendered
  };
  void put(const std::string& key, std::string json_value);

  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace suvtm::runner
