#include "runner/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "check/check.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "runner/parallel.hpp"

namespace suvtm::runner {

namespace {

/// A positional that strtod consumes entirely ("0.25", "2", "1e-3").
bool fully_numeric(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

void fold_metrics(const std::vector<RunResult>& results, BenchReport& report) {
  obs::MetricsSnapshot merged;
  for (const auto& r : results) obs::merge(merged, r.metrics);
  report.set_metrics(merged, "metrics.");
}

}  // namespace

Cli Cli::parse(int& argc, char** argv) {
  Cli cli;

  // --sim-threads strips before --jobs: when given without an explicit
  // --jobs, the default sweep job count is divided by it so shard threads
  // and sweep workers share the host instead of multiplying.
  if (const char* e = std::getenv("SUVTM_SIM_THREADS")) {
    const long v = std::strtol(e, nullptr, 10);
    if (v > 0) cli.sim_threads = static_cast<unsigned>(v);
  }
  bool jobs_given = false;
  int w0 = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--sim-threads" && i + 1 < argc) {
      cli.sim_threads = static_cast<unsigned>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (a.rfind("--sim-threads=", 0) == 0) {
      cli.sim_threads = static_cast<unsigned>(
          std::strtoul(argv[i] + 14, nullptr, 10));
    } else {
      if (a == "--jobs" || a.rfind("--jobs=", 0) == 0) jobs_given = true;
      argv[w0++] = argv[i];
    }
  }
  argc = w0;
  argv[argc] = nullptr;

  cli.jobs = ParallelExecutor::parse_jobs(argc, argv);
  if (!jobs_given && cli.sim_threads > 1) {
    cli.jobs = std::max(1u, cli.jobs / cli.sim_threads);
  }
  set_default_jobs(cli.jobs);

  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--smoke") {
      cli.smoke = true;
    } else if (a == "--check") {
      cli.check = true;
    } else if (a == "--no-check") {
      cli.no_check = true;
    } else if (a == "--metrics") {
      cli.metrics = true;
    } else if (a == "--trace" && i + 1 < argc) {
      cli.trace_path = argv[++i];
    } else if (a.rfind("--trace=", 0) == 0) {
      cli.trace_path = a.substr(8);
    } else if (a.rfind("--", 0) == 0) {
      argv[w++] = argv[i];  // unknown flag: leave for the harness
    } else {
      double v = 0.0;
      if (!cli.has_scale && fully_numeric(argv[i], v)) {
        cli.has_scale = true;
        cli.scale = v;
      } else {
        cli.args.emplace_back(argv[i]);
      }
    }
  }
  argc = w;
  argv[argc] = nullptr;

  if (cli.no_check) cli.check = false;
  if (cli.check && !check::kHooksCompiled) {
    std::fprintf(stderr,
                 "warning: --check requested but this build has "
                 "SUVTM_CHECK=OFF; running unchecked\n");
  }
  if ((cli.tracing() || cli.metrics) && !obs::kHooksCompiled) {
    std::fprintf(stderr,
                 "warning: --trace/--metrics requested but this build has "
                 "SUVTM_OBS=OFF; nothing will be recorded\n");
  }
  return cli;
}

void Cli::apply(sim::SimConfig& cfg) const {
  if (check) cfg.check.enabled = true;
  if (metrics) cfg.obs.metrics = true;
  if (tracing()) cfg.obs.trace = true;
  if (sim_threads != 0) cfg.pdes.host_threads = sim_threads;
}

std::vector<RunResult> run_matrix_cli(std::vector<RunPoint> points,
                                      const std::vector<std::string>& names,
                                      const Cli& cli, BenchReport& report) {
  for (auto& p : points) cli.apply(p.cfg);
  if (!cli.tracing()) {
    auto results = run_matrix(points);
    if (cli.metrics) fold_metrics(results, report);
    return results;
  }
  MatrixTraces mt = run_matrix_traced(points);
  if (cli.metrics) fold_metrics(mt.results, report);
  std::vector<obs::NamedTrace> named;
  named.reserve(mt.traces.size());
  for (std::size_t i = 0; i < mt.traces.size(); ++i) {
    named.push_back({i < names.size() ? names[i] : "run", &mt.traces[i]});
  }
  if (obs::write_chrome_trace(cli.trace_path, named)) {
    std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                cli.trace_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write trace to %s\n",
                 cli.trace_path.c_str());
  }
  return std::move(mt.results);
}

}  // namespace suvtm::runner
