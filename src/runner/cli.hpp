// Shared bench/example command-line handling. Every harness used to
// hand-roll the same strip loop for --jobs/--smoke/--check; Cli centralises
// that and adds the observability switches (--trace <path>, --metrics)
// uniformly. parse() mutates argc/argv, removing what it consumed, so
// harness-specific parsing (positional csv lists, scheme names) sees a
// clean argument vector afterwards.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runner/bench_report.hpp"
#include "runner/experiment.hpp"
#include "sim/config.hpp"

namespace suvtm::runner {

struct Cli {
  unsigned jobs = 0;       ///< resolved --jobs value (also set as default)
  /// --sim-threads N / SUVTM_SIM_THREADS: host threads driving one sharded
  /// simulation's domain schedulers (0 = not requested; leaves configs
  /// untouched). Purely an execution knob -- results are bit-identical at
  /// any value. When set > 1 and --jobs was not given explicitly, the
  /// default sweep-level job count is divided by it so the two layers of
  /// host parallelism share the machine instead of multiplying.
  unsigned sim_threads = 0;
  bool smoke = false;      ///< --smoke: tiny inputs for CI
  bool check = false;      ///< --check: enable the correctness checker
  /// --no-check: explicitly opt out of checking. Harnesses that default
  /// checking ON for some mode (bench_scaling --smoke) honour this; it
  /// never needs consulting where checking is already opt-in.
  bool no_check = false;
  bool metrics = false;    ///< --metrics: harvest the metrics registry
  std::string trace_path;  ///< --trace <path> / --trace=<path> destination
  bool has_scale = false;
  double scale = 1.0;              ///< first numeric positional, if any
  std::vector<std::string> args;   ///< remaining positionals, in order

  /// Parse and strip the shared flags plus all positionals from argv.
  /// Unknown --flags stay in argv for harness-specific parsing. Sizes the
  /// process-wide default executor to `jobs` and warns once when --check or
  /// --trace/--metrics ask for hooks this build compiled out.
  static Cli parse(int& argc, char** argv);

  bool tracing() const { return !trace_path.empty(); }
  double scale_or(double dflt) const { return has_scale ? scale : dflt; }
  const std::string& arg_or(std::size_t i, const std::string& dflt) const {
    return i < args.size() ? args[i] : dflt;
  }

  /// Fold the shared switches into a run config (never clears flags a
  /// caller already set): --check -> cfg.check.enabled, --metrics ->
  /// cfg.obs.metrics, --trace -> cfg.obs.trace, --sim-threads ->
  /// cfg.pdes.host_threads (only when given).
  void apply(sim::SimConfig& cfg) const;
};

/// Bench-side uniform handling of the shared switches for one run matrix:
/// applies the Cli switches to every point's config and runs the matrix on
/// the process-wide default executor. With --trace, the combined
/// Chrome-trace JSON (one trace "process" per point, labelled `names[i]`)
/// is written to cli.trace_path; with --metrics, the matrix's summed
/// metrics land in `report` under "metrics." keys. Results come back in
/// submission order either way.
std::vector<RunResult> run_matrix_cli(std::vector<RunPoint> points,
                                      const std::vector<std::string>& names,
                                      const Cli& cli, BenchReport& report);

}  // namespace suvtm::runner
