#include "runner/experiment.hpp"

#include <cmath>
#include <unordered_set>

#include "sim/simulator.hpp"

namespace suvtm::runner {

namespace {

/// Ratio that maps 0/0 to 0 (rates over counters that may never fire).
double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/// Fold the run's stats-block rates into the hook-fed registry snapshot, so
/// BENCH_*.json carries one uniform metrics namespace.
void add_derived_metrics(RunResult& r) {
  obs::MetricsSnapshot& m = r.metrics;
  m.set("htm.commits", static_cast<double>(r.htm.commits));
  m.set("htm.aborts", static_cast<double>(r.htm.aborts));
  m.set("htm.abort_ratio", r.htm.abort_ratio());
  m.set("htm.overflowed_attempts",
        static_cast<double>(r.htm.overflowed_attempts));
  m.set("conflict.sig_false_positive_rate",
        ratio(r.conflicts.false_conflicts, r.conflicts.conflicts));
  m.set("mem.l1_miss_rate", ratio(r.mem.l1_misses, r.mem.l1_hits + r.mem.l1_misses));
  if (r.has_suv) {
    m.set("suv.summary_false_filter_rate",
          ratio(r.table.false_filter_hits, r.table.lookups));
    m.set("suv.table_l1_miss_rate", r.table.l1_miss_rate());
    m.set("suv.redirect_entries_live",
          static_cast<double>(r.redirect_entries_live));
    m.set("suv.pool_lines_in_use", static_cast<double>(r.pool_lines_in_use));
  }
  if (r.has_dyntm) {
    m.set("dyntm.lazy_txn_ratio",
          ratio(r.dyntm.lazy_txns, r.dyntm.lazy_txns + r.dyntm.eager_txns));
  }
}

}  // namespace

RunResult harvest_result(sim::Simulator& sim, std::string app_name,
                         obs::TraceData* trace_out) {
  const sim::SimConfig& cfg = sim.config();
  RunResult r;
  r.app = std::move(app_name);
  r.scheme = cfg.scheme;
  r.makespan = sim.makespan();
  r.sim_events = sim.events_processed();
  r.breakdown = sim.total_breakdown();

  // Stats blocks sum over the machine's domains (exactly one on the classic
  // monolithic machine; one per shard under conservative PDES). The domain
  // order is fixed, so sharded harvests are deterministic by construction.
  for (std::uint32_t d = 0; d < sim.num_domains(); ++d) {
    accumulate(r.htm, sim.htm(d).stats());
    accumulate(r.conflicts, sim.htm(d).conflicts().stats());
    accumulate(r.vm, sim.htm(d).vm().stats());
    accumulate(r.mem, sim.mem(d).stats());

    // Scheme-specific stats: SUV directly, or via DynTM's backend.
    htm::VersionManager* vmgr = &sim.htm(d).vm();
    if (auto* dyn = dynamic_cast<vm::DynTm*>(vmgr)) {
      r.has_dyntm = true;
      accumulate(r.dyntm, dyn->dyntm_stats());
      vmgr = &dyn->inner();
    }
    if (auto* suvvm = dynamic_cast<vm::SuvVm*>(vmgr)) {
      r.has_suv = true;
      accumulate(r.table, suvvm->table().stats());
      accumulate(r.suv, suvvm->suv_stats());
      r.redirect_entries_live += suvvm->table().total_entries();
      for (CoreId c = 0; c < sim.num_cores(); ++c) {
        r.pool_lines_in_use += suvvm->pool(c).lines_in_use();
      }
    }
  }

  if (obs::Recorder* rec = sim.recorder()) {
    if (cfg.obs.metrics) {
      r.metrics = sim.harvest_metrics();
      add_derived_metrics(r);
    }
    if (trace_out != nullptr && rec->tracing()) {
      *trace_out = sim.take_trace();
    }
  }
  return r;
}

RunResult run_app(stamp::AppId app, const sim::SimConfig& cfg,
                  const stamp::SuiteParams& params,
                  obs::TraceData* trace_out) {
  sim::Simulator sim(cfg);
  auto workload = stamp::make_workload(app);
  workload->build(sim, params);
  sim.run();
  workload->verify(sim);
  return harvest_result(sim, stamp::app_name(app), trace_out);
}

std::vector<RunResult> run_matrix(const std::vector<RunPoint>& points,
                                  ParallelExecutor& exec) {
  std::vector<RunResult> out(points.size());
  exec.run_indexed(points.size(), [&](std::size_t i) {
    out[i] = run_app(points[i].app, points[i].cfg, points[i].params);
  });
  return out;
}

std::vector<RunResult> run_matrix(const std::vector<RunPoint>& points) {
  return run_matrix(points, default_executor());
}

MatrixTraces run_matrix_traced(const std::vector<RunPoint>& points,
                               ParallelExecutor& exec) {
  MatrixTraces out;
  out.results.resize(points.size());
  out.traces.resize(points.size());
  exec.run_indexed(points.size(), [&](std::size_t i) {
    out.results[i] =
        run_app(points[i].app, points[i].cfg, points[i].params, &out.traces[i]);
  });
  return out;
}

MatrixTraces run_matrix_traced(const std::vector<RunPoint>& points) {
  return run_matrix_traced(points, default_executor());
}

std::vector<RunResult> run_suite(sim::Scheme scheme, const sim::SimConfig& base,
                                 const stamp::SuiteParams& params,
                                 ParallelExecutor& exec) {
  sim::SimConfig cfg = base;
  cfg.scheme = scheme;
  std::vector<RunPoint> points;
  points.reserve(stamp::all_apps().size());
  for (stamp::AppId app : stamp::all_apps()) {
    points.push_back(RunPoint{app, cfg, params});
  }
  return run_matrix(points, exec);
}

std::vector<RunResult> run_suite(sim::Scheme scheme, const sim::SimConfig& base,
                                 const stamp::SuiteParams& params) {
  return run_suite(scheme, base, params, default_executor());
}

double geomean_speedup(const std::vector<RunResult>& base,
                       const std::vector<RunResult>& test,
                       bool high_contention_only) {
  std::unordered_set<std::string> wanted;
  for (stamp::AppId id : high_contention_only ? stamp::high_contention_apps()
                                              : stamp::all_apps()) {
    wanted.insert(stamp::app_name(id));
  }
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const auto& b : base) {
    if (!wanted.count(b.app)) continue;
    for (const auto& t : test) {
      if (t.app != b.app) continue;
      log_sum += std::log(static_cast<double>(b.makespan) /
                          static_cast<double>(t.makespan));
      ++n;
    }
  }
  return n == 0 ? 1.0 : std::exp(log_sum / static_cast<double>(n));
}

}  // namespace suvtm::runner
