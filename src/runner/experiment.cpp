#include "runner/experiment.hpp"

#include <cmath>
#include <unordered_set>

#include "sim/simulator.hpp"

namespace suvtm::runner {

RunResult run_app(stamp::AppId app, const sim::SimConfig& cfg,
                  const stamp::SuiteParams& params) {
  sim::Simulator sim(cfg);
  auto workload = stamp::make_workload(app);
  workload->build(sim, params);
  sim.run();
  workload->verify(sim);

  RunResult r;
  r.app = stamp::app_name(app);
  r.scheme = cfg.scheme;
  r.makespan = sim.makespan();
  r.sim_events = sim.scheduler().events_processed();
  r.breakdown = sim.total_breakdown();
  r.htm = sim.htm().stats();
  r.conflicts = sim.htm().conflicts().stats();
  r.vm = sim.htm().vm().stats();
  r.mem = sim.mem().stats();

  // Scheme-specific stats: SUV directly, or via DynTM's backend.
  htm::VersionManager* vmgr = &sim.htm().vm();
  if (auto* dyn = dynamic_cast<vm::DynTm*>(vmgr)) {
    r.has_dyntm = true;
    r.dyntm = dyn->dyntm_stats();
    vmgr = &dyn->inner();
  }
  if (auto* suvvm = dynamic_cast<vm::SuvVm*>(vmgr)) {
    r.has_suv = true;
    r.table = suvvm->table().stats();
    r.suv = suvvm->suv_stats();
    r.redirect_entries_live = suvvm->table().total_entries();
    for (CoreId c = 0; c < sim.num_cores(); ++c) {
      r.pool_lines_in_use += suvvm->pool(c).lines_in_use();
    }
  }
  return r;
}

std::vector<RunResult> run_matrix(const std::vector<RunPoint>& points,
                                  ParallelExecutor& exec) {
  std::vector<RunResult> out(points.size());
  exec.run_indexed(points.size(), [&](std::size_t i) {
    out[i] = run_app(points[i].app, points[i].cfg, points[i].params);
  });
  return out;
}

std::vector<RunResult> run_matrix(const std::vector<RunPoint>& points) {
  return run_matrix(points, default_executor());
}

std::vector<RunResult> run_suite(sim::Scheme scheme, const sim::SimConfig& base,
                                 const stamp::SuiteParams& params,
                                 ParallelExecutor& exec) {
  sim::SimConfig cfg = base;
  cfg.scheme = scheme;
  std::vector<RunPoint> points;
  points.reserve(stamp::all_apps().size());
  for (stamp::AppId app : stamp::all_apps()) {
    points.push_back(RunPoint{app, cfg, params});
  }
  return run_matrix(points, exec);
}

std::vector<RunResult> run_suite(sim::Scheme scheme, const sim::SimConfig& base,
                                 const stamp::SuiteParams& params) {
  return run_suite(scheme, base, params, default_executor());
}

double geomean_speedup(const std::vector<RunResult>& base,
                       const std::vector<RunResult>& test,
                       bool high_contention_only) {
  std::unordered_set<std::string> wanted;
  for (stamp::AppId id : high_contention_only ? stamp::high_contention_apps()
                                              : stamp::all_apps()) {
    wanted.insert(stamp::app_name(id));
  }
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const auto& b : base) {
    if (!wanted.count(b.app)) continue;
    for (const auto& t : test) {
      if (t.app != b.app) continue;
      log_sum += std::log(static_cast<double>(b.makespan) /
                          static_cast<double>(t.makespan));
      ++n;
    }
  }
  return n == 0 ? 1.0 : std::exp(log_sum / static_cast<double>(n));
}

}  // namespace suvtm::runner
