// Experiment harness: runs one STAMP-like application under one
// version-management scheme and collects everything the paper's tables and
// figures report. Suites and config sweeps fan out across host cores via
// runner/parallel.hpp; every run is an isolated Simulator, so results are
// bit-identical at any jobs count.
#pragma once

#include <string>
#include <vector>

#include "htm/conflict_manager.hpp"
#include "htm/htm_system.hpp"
#include "htm/version_manager.hpp"
#include "mem/memory_system.hpp"
#include "runner/parallel.hpp"
#include "sim/breakdown.hpp"
#include "sim/config.hpp"
#include "stamp/framework.hpp"
#include "suv/redirect_table.hpp"
#include "vm/dyntm.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::runner {

struct RunResult {
  std::string app;
  sim::Scheme scheme{};
  Cycle makespan = 0;
  std::uint64_t sim_events = 0;  // scheduler events processed by this run
  sim::Breakdown breakdown;  // aggregated over cores
  htm::HtmStats htm;
  htm::ConflictStats conflicts;
  htm::VmStats vm;
  mem::MemStats mem;

  // SUV-specific (valid when has_suv).
  bool has_suv = false;
  suv::TableStats table;
  vm::SuvVmStats suv;
  std::uint64_t pool_lines_in_use = 0;
  std::size_t redirect_entries_live = 0;

  // DynTM-specific (valid when has_dyntm).
  bool has_dyntm = false;
  vm::DynTmStats dyntm;

  /// Field-for-field equality; the determinism tests rely on this covering
  /// every stats struct.
  bool operator==(const RunResult&) const = default;
};

/// One point of an experiment cross-product.
struct RunPoint {
  stamp::AppId app{};
  sim::SimConfig cfg;
  stamp::SuiteParams params;
};

/// Run `app` under `cfg`, verify workload invariants, and harvest stats.
RunResult run_app(stamp::AppId app, const sim::SimConfig& cfg,
                  const stamp::SuiteParams& params);

/// Run every point, fanned across `exec`, results in submission order.
std::vector<RunResult> run_matrix(const std::vector<RunPoint>& points,
                                  ParallelExecutor& exec);
/// Same, on the process-wide default executor.
std::vector<RunResult> run_matrix(const std::vector<RunPoint>& points);

/// Run every STAMP app under one scheme, fanned across `exec`.
std::vector<RunResult> run_suite(sim::Scheme scheme, const sim::SimConfig& base,
                                 const stamp::SuiteParams& params,
                                 ParallelExecutor& exec);
/// Same, on the process-wide default executor.
std::vector<RunResult> run_suite(sim::Scheme scheme, const sim::SimConfig& base,
                                 const stamp::SuiteParams& params);

/// Geometric-mean speedup of `test` over `base` across matching apps,
/// optionally restricted to the paper's five high-contention apps.
double geomean_speedup(const std::vector<RunResult>& base,
                       const std::vector<RunResult>& test,
                       bool high_contention_only);

}  // namespace suvtm::runner
