// Experiment harness: runs one STAMP-like application under one
// version-management scheme and collects everything the paper's tables and
// figures report. Suites and config sweeps fan out across host cores via
// runner/parallel.hpp; every run is an isolated Simulator, so results are
// bit-identical at any jobs count.
#pragma once

#include <string>
#include <vector>

#include "htm/conflict_manager.hpp"
#include "htm/htm_system.hpp"
#include "htm/version_manager.hpp"
#include "mem/memory_system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/parallel.hpp"
#include "sim/breakdown.hpp"
#include "sim/config.hpp"
#include "stamp/framework.hpp"
#include "suv/redirect_table.hpp"
#include "vm/dyntm.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::runner {

struct RunResult {
  std::string app;
  sim::Scheme scheme{};
  Cycle makespan = 0;
  std::uint64_t sim_events = 0;  // scheduler events processed by this run
  sim::Breakdown breakdown;  // aggregated over cores
  htm::HtmStats htm;
  htm::ConflictStats conflicts;
  htm::VmStats vm;
  mem::MemStats mem;

  // SUV-specific (valid when has_suv).
  bool has_suv = false;
  suv::TableStats table;
  vm::SuvVmStats suv;
  std::uint64_t pool_lines_in_use = 0;
  std::size_t redirect_entries_live = 0;

  // DynTM-specific (valid when has_dyntm).
  bool has_dyntm = false;
  vm::DynTmStats dyntm;

  /// Harvested observability metrics (empty unless cfg.obs asked for
  /// metrics): the hook-fed registry plus derived rates from the stats
  /// blocks above, under one uniform namespace.
  obs::MetricsSnapshot metrics;

  /// Field-for-field equality; the determinism tests rely on this covering
  /// every stats struct.
  bool operator==(const RunResult&) const = default;
};

/// One point of an experiment cross-product.
struct RunPoint {
  stamp::AppId app{};
  sim::SimConfig cfg;
  stamp::SuiteParams params;
};

/// Harvest every stats block -- and, when the run recorded metrics, the
/// uniform MetricsSnapshot -- from a finished simulation. When `trace_out`
/// is non-null and the run traced, the event trace is moved into it.
/// Shared by run_app and api::RunHandle so hand-built simulations produce
/// the exact RunResult the experiment harness would.
RunResult harvest_result(sim::Simulator& sim, std::string app_name,
                         obs::TraceData* trace_out = nullptr);

/// Run `app` under `cfg`, verify workload invariants, and harvest stats.
/// When `trace_out` is non-null and cfg.obs.trace is set, the run's event
/// trace is moved into it.
RunResult run_app(stamp::AppId app, const sim::SimConfig& cfg,
                  const stamp::SuiteParams& params,
                  obs::TraceData* trace_out = nullptr);

/// Run every point, fanned across `exec`, results in submission order.
std::vector<RunResult> run_matrix(const std::vector<RunPoint>& points,
                                  ParallelExecutor& exec);
/// Same, on the process-wide default executor.
std::vector<RunResult> run_matrix(const std::vector<RunPoint>& points);

/// run_matrix plus per-point traces, both in submission order (traces are
/// empty unless the point's cfg.obs.trace is set). Each run owns its own
/// Recorder, so the traces are byte-stable across host job counts.
struct MatrixTraces {
  std::vector<RunResult> results;
  std::vector<obs::TraceData> traces;
};
MatrixTraces run_matrix_traced(const std::vector<RunPoint>& points,
                               ParallelExecutor& exec);
MatrixTraces run_matrix_traced(const std::vector<RunPoint>& points);

/// Run every STAMP app under one scheme, fanned across `exec`.
std::vector<RunResult> run_suite(sim::Scheme scheme, const sim::SimConfig& base,
                                 const stamp::SuiteParams& params,
                                 ParallelExecutor& exec);
/// Same, on the process-wide default executor.
std::vector<RunResult> run_suite(sim::Scheme scheme, const sim::SimConfig& base,
                                 const stamp::SuiteParams& params);

/// Geometric-mean speedup of `test` over `base` across matching apps,
/// optionally restricted to the paper's five high-contention apps.
double geomean_speedup(const std::vector<RunResult>& base,
                       const std::vector<RunResult>& test,
                       bool high_contention_only);

}  // namespace suvtm::runner
