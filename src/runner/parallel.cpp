#include "runner/parallel.hpp"

#include <cstdlib>
#include <memory>
#include <string>

namespace suvtm::runner {

ParallelExecutor::ParallelExecutor(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {
  if (jobs_ <= 1) return;  // inline mode: no threads at all
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelExecutor::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  batch_fn_ = &fn;
  batch_n_ = n;
  next_.store(0, std::memory_order_relaxed);
  // Count workers in and out of the batch, not items: the batch is done only
  // once every worker has left its claiming loop. (Counting items lets the
  // caller return while a straggler sits between its last item and its next
  // fetch_add; the next batch's reset of next_ would then hand that straggler
  // a fresh index paired with the previous, dangling batch_fn_.)
  unfinished_ = jobs_;
  first_error_ = nullptr;
  ++epoch_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return unfinished_ == 0; });
  batch_fn_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ParallelExecutor::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    const auto* fn = batch_fn_;
    const std::size_t n = batch_n_;
    lk.unlock();

    // Claim submission-order indices until the batch is exhausted.
    std::exception_ptr err;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    lk.lock();
    if (err && !first_error_) first_error_ = err;
    if (--unfinished_ == 0) cv_done_.notify_one();
  }
}

unsigned ParallelExecutor::default_jobs() {
  if (const char* env = std::getenv("SUVTM_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned ParallelExecutor::parse_jobs(int& argc, char** argv) {
  unsigned jobs = 0;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--jobs") {
      // A bare trailing --jobs is consumed (default job count) rather than
      // left behind to be misread as a positional argument.
      if (r + 1 < argc) {
        jobs = static_cast<unsigned>(std::strtol(argv[++r], nullptr, 10));
      }
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::strtol(arg.c_str() + 7, nullptr, 10));
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  return jobs == 0 ? default_jobs() : jobs;
}

namespace {
unsigned g_default_jobs = 0;  // 0 = use ParallelExecutor::default_jobs()
bool g_executor_built = false;
}  // namespace

ParallelExecutor& default_executor() {
  static ParallelExecutor exec(g_default_jobs);
  g_executor_built = true;
  return exec;
}

bool set_default_jobs(unsigned jobs) {
  if (g_executor_built) return false;
  g_default_jobs = jobs;
  return true;
}

}  // namespace suvtm::runner
