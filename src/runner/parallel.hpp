// Host-parallel execution of independent simulations.
//
// Every experiment in the paper's evaluation is a cross-product of
// scheme x app x config points, and each point is one self-contained,
// single-threaded sim::Simulator. The ParallelExecutor fans those points
// across host cores with a fixed pool of worker threads (no work stealing:
// workers claim the next submission-order index from a shared counter) and
// hands results back in submission order. Determinism is structural, not
// scheduled: a simulation shares no mutable state with its siblings, so its
// RunResult is bit-identical whether it ran on the caller's thread, on any
// worker, or under any jobs count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace suvtm::runner {

class ParallelExecutor {
 public:
  /// `jobs` = number of tasks executed concurrently. 0 means
  /// default_jobs(). jobs <= 1 runs every batch inline on the caller's
  /// thread (no pool, byte-for-byte the old serial harness behaviour).
  explicit ParallelExecutor(unsigned jobs = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  unsigned jobs() const { return jobs_; }

  /// Run `fn(0) .. fn(n-1)` across the pool; blocks until all complete.
  /// Indices are claimed in submission order. The first exception thrown by
  /// any task is rethrown here after the batch drains (remaining tasks still
  /// run: they are independent experiments).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run the callables and return their results in submission order.
  /// R must be default-constructible (RunResult is).
  template <class R>
  std::vector<R> run_ordered(std::vector<std::function<R()>> tasks) {
    std::vector<R> out(tasks.size());
    run_indexed(tasks.size(),
                [&](std::size_t i) { out[i] = tasks[i](); });
    return out;
  }

  /// Resolution order: SUVTM_JOBS env var, else hardware concurrency.
  static unsigned default_jobs();

  /// Strip a `--jobs N` (or `--jobs=N`) argument from argv, returning the
  /// requested job count (default_jobs() if absent). Bench harnesses call
  /// this before their positional-argument parsing.
  static unsigned parse_jobs(int& argc, char** argv);

 private:
  void worker_loop();

  unsigned jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;   // workers: a batch is available
  std::condition_variable cv_done_;   // caller: batch fully drained
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_n_ = 0;
  std::atomic<std::size_t> next_{0};  // next unclaimed index
  std::size_t unfinished_ = 0;        // workers still inside the batch
  std::uint64_t epoch_ = 0;           // bumped per batch to wake workers
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Process-wide executor used by the default run_suite/run_matrix entry
/// points; sized on first use from SUVTM_JOBS (see default_jobs()) or an
/// earlier set_default_jobs() call.
ParallelExecutor& default_executor();

/// Set the job count for the process-wide executor. Must be called before
/// the first default_executor() use (bench harnesses call it right after
/// parse_jobs); later calls are ignored and return false.
bool set_default_jobs(unsigned jobs);

}  // namespace suvtm::runner
