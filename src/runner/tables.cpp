#include "runner/tables.hpp"

#include <algorithm>
#include <cstdio>

namespace suvtm::runner {

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < rows[r].size(); ++i) {
      std::string cell = rows[r][i];
      cell.resize(widths[i], ' ');
      out += cell;
      if (i + 1 < rows[r].size()) out += "  ";
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        out += std::string(widths[i], '-');
        if (i + 1 < widths.size()) out += "  ";
      }
      out += '\n';
    }
  }
  return out;
}

std::string render_csv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    if (row.empty()) continue;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::string& cell = row[i];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out += '"';
        for (char c : cell) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += cell;
      }
      if (i + 1 < row.size()) out += ',';
    }
    out += '\n';
  }
  return out;
}

bool write_csv(const std::string& path,
               const std::vector<std::vector<std::string>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = render_csv(rows);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::vector<std::string> breakdown_header() {
  std::vector<std::string> h = {"config"};
  for (std::size_t i = 0; i < sim::kNumBuckets; ++i) {
    h.push_back(sim::bucket_name(static_cast<sim::Bucket>(i)));
  }
  h.push_back("total");
  return h;
}

std::vector<std::string> breakdown_row(const std::string& label,
                                       const sim::Breakdown& b,
                                       double baseline_total) {
  std::vector<std::string> row = {label};
  for (std::size_t i = 0; i < sim::kNumBuckets; ++i) {
    const double share =
        static_cast<double>(b.get(static_cast<sim::Bucket>(i))) /
        baseline_total;
    row.push_back(fmt_fixed(share, 3));
  }
  row.push_back(fmt_fixed(static_cast<double>(b.total()) / baseline_total, 3));
  return row;
}

}  // namespace suvtm::runner
