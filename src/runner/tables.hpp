// Plain-text table rendering for the bench binaries: fixed-width columns,
// reproducible output suitable for diffing against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "runner/experiment.hpp"

namespace suvtm::runner {

/// Render rows (first row = header) as an aligned text table.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// Render the same rows as RFC-4180-ish CSV (quotes fields containing
/// commas/quotes). Empty rows are skipped.
std::string render_csv(const std::vector<std::vector<std::string>>& rows);

/// Write a CSV file; returns false on I/O failure.
bool write_csv(const std::string& path,
               const std::vector<std::vector<std::string>>& rows);

/// Format helpers.
std::string fmt_u64(std::uint64_t v);
std::string fmt_fixed(double v, int decimals);

/// One normalized execution-time breakdown row for Figure 6/9 output:
/// per-bucket share of `baseline_total` cycles.
std::vector<std::string> breakdown_row(const std::string& label,
                                       const sim::Breakdown& b,
                                       double baseline_total);

/// Header matching breakdown_row.
std::vector<std::string> breakdown_header();

}  // namespace suvtm::runner
