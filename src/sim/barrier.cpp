#include "sim/barrier.hpp"

#include <cassert>

#include "sim/scheduler.hpp"

namespace suvtm::sim {

Barrier::Barrier(Scheduler& sched, std::uint32_t parties)
    : sched_(sched), parties_(parties) {
  assert(parties > 0);
  waiting_.reserve(parties);
}

Barrier::Waiter Barrier::arrive() { return Waiter{*this, sched_.now()}; }

bool Barrier::Waiter::await_suspend(std::coroutine_handle<> h) {
  Barrier& b = barrier;
  ++b.arrived_;
  if (b.arrived_ == b.parties_) {
    b.arrived_ = 0;
    // Last arriver: release everyone (including itself, by not suspending).
    b.release_all();
    waited = 0;
    return false;  // do not suspend
  }
  b.waiting_.push_back({h, this});
  return true;
}

void Barrier::release_all() {
  const Cycle now = sched_.now();
  // Take the list first: resumed coroutines may re-arrive at this barrier.
  std::vector<Pending> ready;
  ready.swap(waiting_);
  for (auto& p : ready) {
    // arrived_at may sit ahead of the scheduler clock when the arriver came
    // in on the fast path (ThreadContext folds its run-ahead into the
    // recorded arrival time); such a core simply did not wait.
    p.waiter->waited =
        now > p.waiter->arrived_at ? now - p.waiter->arrived_at : 0;
    sched_.resume_after(1, p.h);
  }
}

}  // namespace suvtm::sim
