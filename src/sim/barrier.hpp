// Simulated-thread barrier. Waiting time is charged to the Barrier bucket.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace suvtm::sim {

class Scheduler;

/// Classic sense-reversing barrier over simulated threads. The last arriver
/// releases all waiters on the next cycle; waiters record their wait length
/// so the ThreadContext can attribute it.
class Barrier {
 public:
  Barrier(Scheduler& sched, std::uint32_t parties);

  /// Awaitable returned by arrive(); resumes when all parties have arrived.
  struct Waiter {
    Barrier& barrier;
    Cycle arrived_at;
    Cycle waited = 0;

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h);
    Cycle await_resume() const noexcept { return waited; }
  };

  Waiter arrive();

  std::uint32_t parties() const { return parties_; }

 private:
  friend struct Waiter;
  void release_all();

  Scheduler& sched_;
  std::uint32_t parties_;
  std::uint32_t arrived_ = 0;
  struct Pending {
    std::coroutine_handle<> h;
    Waiter* waiter;
  };
  std::vector<Pending> waiting_;
};

}  // namespace suvtm::sim
