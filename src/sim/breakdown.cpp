#include "sim/breakdown.hpp"

namespace suvtm::sim {

const char* bucket_name(Bucket b) {
  switch (b) {
    case Bucket::kNoTrans: return "NoTrans";
    case Bucket::kTrans: return "Trans";
    case Bucket::kBarrier: return "Barrier";
    case Bucket::kBackoff: return "Backoff";
    case Bucket::kStalled: return "Stalled";
    case Bucket::kWasted: return "Wasted";
    case Bucket::kAborting: return "Aborting";
    case Bucket::kCommitting: return "Committing";
    default: return "?";
  }
}

Cycle Breakdown::total() const {
  Cycle t = 0;
  for (Cycle c : cycles_) t += c;
  return t;
}

Breakdown& Breakdown::operator+=(const Breakdown& o) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) cycles_[i] += o.cycles_[i];
  return *this;
}

}  // namespace suvtm::sim
