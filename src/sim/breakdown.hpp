// Per-core execution-time breakdown, mirroring the paper's Figure 6/9
// buckets: NoTrans, Trans, Barrier, Backoff, Stalled, Wasted, Aborting,
// plus Committing (Figure 9, DynTM lazy commits).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace suvtm::sim {

enum class Bucket : std::uint8_t {
  kNoTrans = 0,  ///< non-transactional work
  kTrans,        ///< un-stalled transactional work that committed
  kBarrier,      ///< waiting on a barrier
  kBackoff,      ///< post-abort exponential backoff
  kStalled,      ///< stalled resolving a conflict (NACK retries)
  kWasted,       ///< work performed by attempts that later aborted
  kAborting,     ///< rollback processing while isolation is still held
  kCommitting,   ///< commit processing (arbitration/publication)
  kNumBuckets,
};

inline constexpr std::size_t kNumBuckets =
    static_cast<std::size_t>(Bucket::kNumBuckets);

const char* bucket_name(Bucket b);

/// Cycle totals per bucket for one core (or aggregated across cores).
class Breakdown {
 public:
  void add(Bucket b, Cycle c) { cycles_[static_cast<std::size_t>(b)] += c; }
  Cycle get(Bucket b) const { return cycles_[static_cast<std::size_t>(b)]; }
  Cycle total() const;
  Breakdown& operator+=(const Breakdown& o);
  void reset() { cycles_.fill(0); }
  bool operator==(const Breakdown&) const = default;

 private:
  std::array<Cycle, kNumBuckets> cycles_{};
};

/// Accounting helper used by a ThreadContext while a transaction attempt is
/// in flight: Trans/Stalled cycles are provisional until the attempt
/// resolves. On commit they are credited as-is; on abort, provisional Trans
/// becomes Wasted (the paper's definition of wasted work).
class AttemptAccount {
 public:
  void add_trans(Cycle c) { trans_ += c; }
  void add_stalled(Cycle c) { stalled_ += c; }

  void settle_commit(Breakdown& out) {
    out.add(Bucket::kTrans, trans_);
    out.add(Bucket::kStalled, stalled_);
    reset();
  }
  void settle_abort(Breakdown& out) {
    out.add(Bucket::kWasted, trans_);
    out.add(Bucket::kStalled, stalled_);
    reset();
  }
  void reset() { trans_ = stalled_ = 0; }

 private:
  Cycle trans_ = 0;
  Cycle stalled_ = 0;
};

}  // namespace suvtm::sim
