// Simulation configuration. Defaults reproduce the paper's Table III.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace suvtm::sim {

/// Which version-management scheme the HTM runs. The paper's comparison set.
enum class Scheme {
  kLogTmSe,    ///< undo log, in-place update, software abort walk
  kFasTm,      ///< new values in L1, fast abort, degenerates on overflow
  kSuv,        ///< single-update redirection (this paper's contribution)
  kDynTm,      ///< history-selected eager/lazy, FasTM version management
  kDynTmSuv,   ///< DynTM with SUV as its version-management scheme
};

/// One row of the scheme table: the single source of truth for how a scheme
/// is spelled everywhere (reports, traces, CLI flags, equivalence output).
struct SchemeInfo {
  Scheme scheme;
  const char* name;      ///< display name, e.g. "SUV-TM"
  const char* cli_name;  ///< flag-friendly spelling, e.g. "suv"
};

/// All schemes, in enum order (defined next to the factory in vm/factory.cpp
/// so adding a scheme touches exactly one file).
const std::vector<SchemeInfo>& scheme_table();
const std::vector<Scheme>& all_schemes();
const char* scheme_name(Scheme s);
const char* scheme_cli_name(Scheme s);
/// Accepts either spelling from the table (case-sensitive). Returns false
/// and leaves `*out` untouched on an unknown name.
bool scheme_from_string(std::string_view s, Scheme* out);

/// Memory-hierarchy parameters (paper Table III).
struct MemParams {
  std::uint32_t num_cores = 16;        // 4x4 mesh
  std::uint32_t mesh_dim = 4;

  std::uint32_t l1_bytes = 32 * 1024;  // 32 KB
  std::uint32_t l1_assoc = 4;
  Cycle l1_latency = 1;

  std::uint32_t l2_bytes = 8 * 1024 * 1024;  // 8 MB shared
  std::uint32_t l2_assoc = 8;
  std::uint32_t l2_banks = 16;               // one bank per tile
  Cycle l2_latency = 15;

  Cycle directory_latency = 6;
  Cycle memory_latency = 150;
  std::uint32_t memory_banks = 4;

  Cycle mesh_wire_latency = 2;   // per hop
  Cycle mesh_route_latency = 1;  // per hop

  std::uint32_t tlb_entries = 64;
  Cycle tlb_miss_latency = 30;
};

/// How a detected conflict is resolved (paper Section III).
enum class ConflictPolicy {
  /// LogTM Stall policy: the requester stalls; deadlock cycles abort the
  /// youngest transaction. The paper's default for all experiments.
  kRequesterStalls,
  /// The paper's stated alternative: "make the receiving core stall or
  /// abort its transaction to guarantee the execution of the requester's
  /// transaction". The holder is doomed; the requester proceeds after the
  /// holder's isolation clears.
  kRequesterWins,
};

/// HTM-wide parameters (signatures, conflict handling, scheme cost knobs).
struct HtmParams {
  std::uint32_t signature_bits = 2048;  // 2 Kbit Bloom filters
  std::uint32_t signature_hashes = 2;
  ConflictPolicy conflict_policy = ConflictPolicy::kRequesterStalls;

  Cycle stall_retry_interval = 20;   // re-issue a NACKed request
  Cycle backoff_base = 40;           // exponential backoff after abort
  Cycle backoff_cap = 4096;
  Cycle checkpoint_latency = 1;      // register snapshot / restore

  // LogTM-SE cost model: each first transactional store to a word performs
  // one extra load (old value) and one store (log append); every 8th log
  // entry opens a new log cache line.
  Cycle log_store_extra = 2;
  Cycle log_new_line_extra = 16;
  // Software abort handler: trap entry plus a per-entry restore walk.
  Cycle abort_trap_latency = 200;
  Cycle abort_per_entry = 8;

  // FasTM: first write to an L1-dirty line writes the old line back to L2.
  Cycle fastm_writeback_extra = 21;  // dir(6) + L2(15)
  Cycle fastm_begin_extra = 10;      // write back shared dirty data at begin
  Cycle fastm_flash_abort = 8;       // flash-invalidate SM lines
  Cycle fastm_flash_commit = 4;      // flash-clear SM bits

  // DynTM lazy mode.
  Cycle dyntm_arbitration = 30;      // commit-token acquisition
  Cycle dyntm_publish_per_line = 21; // per write-set line publication (FasTM VM)
  Cycle dyntm_lazy_abort = 10;       // discard redo buffer
  std::uint32_t dyntm_selector_bits = 2;
};

/// SUV parameters (paper Sections III-IV, Table III).
struct SuvParams {
  std::uint32_t l1_table_entries = 512;   // fully associative, zero latency
  Cycle l1_table_latency = 0;
  std::uint32_t l2_table_entries = 16384; // 8-way shared
  std::uint32_t l2_table_assoc = 8;
  Cycle l2_table_latency = 10;
  Cycle memory_table_latency = 150;       // software-managed swapped entries
  Cycle misspeculation_penalty = 100;     // wrong speculative use of original

  std::uint32_t summary_signature_bits = 2048;
  std::uint32_t summary_signature_hashes = 2;

  Cycle redirect_copy_latency = 1;  // in-cache line copy on (re)direction
  Cycle flash_commit = 2;           // flip transient entries + sig update
  Cycle flash_abort = 2;
};

/// True when the SUVTM_CHECK environment variable asks for checking (any
/// value other than empty/"0"). Read once per process so the same binary
/// serves both the plain and the `_checked` ctest variants.
inline bool check_enabled_by_env() {
  static const bool v = [] {
    // lint: allow(wallclock-entropy): deliberate config gate -- selects
    // which subsystems run, read once per process, never a simulated value
    const char* e = std::getenv("SUVTM_CHECK");
    return e != nullptr && *e != '\0' && !(e[0] == '0' && e[1] == '\0');
  }();
  return v;
}

/// Runtime knobs for the correctness-checking subsystem (src/check). Only
/// consulted when the hooks were compiled in (-DSUVTM_CHECK=ON); with the
/// hooks compiled out this block is inert.
struct CheckParams {
  /// Master switch: record the access history, run the serializability
  /// oracle at end of run, and audit structural invariants while running.
  bool enabled = check_enabled_by_env();
  /// Sampling period for the full structural audits: run them every this
  /// many commit completions (0 disables sampling; they always run once
  /// more at end of run). Sampling trades detection *latency*, not
  /// soundness: structural corruption is persistent state, so it is caught
  /// at the next sampled boundary or at finalize -- within N commits of
  /// its first observable effect. Mutation/negative tests pin this to 1 so
  /// a corrupted state can never slip through a sampled window.
  std::uint32_t audit_period = 512;
  /// Audit the abort-touched structures (signatures + SUV tables) after
  /// every abort, independent of the sampling period: aborts are where
  /// version-management bugs surface and they are rare enough to afford it.
  bool audit_on_abort = true;
  /// Differential-testing baseline: retain the whole history and replay it
  /// only at finalize() instead of streaming at the serialization horizon.
  /// Slower and unbounded in memory; used by the equivalence suite to prove
  /// the incremental oracle's verdicts identical.
  bool reference = false;
};

/// Env-var gate shared by the observability knobs: set (non-empty, not "0")
/// means enabled. Read once per process, like check_enabled_by_env().
inline bool env_flag(const char* var) {
  // lint: allow(wallclock-entropy): deliberate config gate -- selects
  // which subsystems run, read once per process, never a simulated value
  const char* e = std::getenv(var);
  return e != nullptr && *e != '\0' && !(e[0] == '0' && e[1] == '\0');
}

/// Runtime knobs for the observability subsystem (src/obs). Only consulted
/// when the hooks were compiled in (-DSUVTM_OBS=ON); with the hooks compiled
/// out this block is inert. A Recorder is created iff trace or metrics is
/// set, so the default-off config costs one never-taken branch per hook.
struct ObsParams {
  /// Record lifecycle spans, conflict edges and structure events for the
  /// Chrome-trace exporter. Defaults from the SUVTM_TRACE env var.
  bool trace = env_flag("SUVTM_TRACE");
  /// Fill the metrics registry and harvest a MetricsSnapshot into the
  /// RunResult. Defaults from the SUVTM_METRICS env var.
  bool metrics = env_flag("SUVTM_METRICS");
  /// Also trace per-access memory events (L1 misses, directory forwards).
  /// Voluminous; off by default even when tracing.
  bool trace_mem = false;
  /// Sample occupancy gauges every this many scheduler events.
  std::uint32_t sample_interval_events = 8192;
  /// Hard cap on recorded trace events per run (overflow counts `dropped`).
  std::uint64_t max_trace_events = 1ull << 20;

  bool enabled() const { return trace || metrics; }
};

/// Sharded conservative-PDES parameters (DESIGN.md section 14).
///
/// `shards` is a *semantic* knob: it declares the simulated machine as a
/// partitioned one (each shard owns a contiguous block of cores plus its
/// own slice of the memory hierarchy and HTM state, the way a tablet cell
/// owns its key range in a distributed store). shards == 1 is exactly the
/// classic monolithic machine. `host_threads` is a pure *execution* knob:
/// at a fixed shard count, every RunResult/trace/metrics byte is identical
/// for any host_threads value -- domains are simulated independently and
/// merged in fixed shard order, so host threading can never reorder events.
struct PdesParams {
  /// Simulated-machine shards. Must divide mem.num_cores. Workloads built
  /// for a sharded machine must keep transactions and stores shard-local;
  /// cross-shard traffic is limited to non-transactional reads, which
  /// travel through window-boundary mailboxes (checked builds throw
  /// check::CheckFailure on violations).
  std::uint32_t shards = 1;
  /// Host threads driving the shard schedulers (--sim-threads /
  /// SUVTM_SIM_THREADS). Clamped to `shards`; ignored when shards == 1.
  /// No semantic effect by construction.
  std::uint32_t host_threads = 1;
  /// Conservative synchronization quantum in cycles. 0 = default (4096),
  /// floored by the mesh's minimum cross-shard hop latency so the window
  /// merge can never under-charge the NoC on a mailbox delivery.
  Cycle window_cycles = 0;
};

struct SimConfig {
  Scheme scheme = Scheme::kSuv;
  MemParams mem;
  HtmParams htm;
  SuvParams suv;
  PdesParams pdes;
  CheckParams check;
  ObsParams obs;
  std::uint64_t seed = 1;
  /// Safety valve: abort the simulation if it exceeds this many cycles.
  Cycle max_cycles = 5'000'000'000ull;
  /// Non-transactional fast path: a core executing straight-line
  /// non-transactional L1 hits (and short compute) may run up to this many
  /// cycles ahead of the scheduler before synchronizing back through it.
  /// The run-ahead is flushed at misses, stalls, transaction boundaries,
  /// barriers and backoff, so global event order stays deterministic.
  /// 0 disables the fast path entirely.
  Cycle fastpath_quantum = 64;
};

}  // namespace suvtm::sim
