#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace suvtm::sim {

void Scheduler::at(Cycle t, SmallFn fn) {
  assert(t >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  }
  heap_.emplace_back();  // reserve the hole; sift_up fills it
  sift_up(heap_.size() - 1, Key{t, seq_++, slot});
}

void Scheduler::sift_up(std::size_t i, Key k) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!k.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = k;
}

Scheduler::Key Scheduler::pop_min() {
  const Key min = heap_.front();
  const Key last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    // Sift the former last key down from the root, pulling the smaller
    // child up through the hole.
    std::size_t i = 0;
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].before(heap_[child])) ++child;
      if (!heap_[child].before(last)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = last;
  }
  return min;
}

bool Scheduler::run(Cycle limit) {
  while (!heap_.empty()) {
    if (heap_.front().t > limit) return false;
    const Key k = pop_min();
    // Move the callback out before running it: fn may schedule new events,
    // which may reuse (and reassign) the freed slot.
    SmallFn fn = std::move(slots_[k.slot]);
    free_slots_.push_back(k.slot);
    now_ = k.t;
    ++events_;
    fn();
  }
  return true;
}

}  // namespace suvtm::sim
