#include "sim/scheduler.hpp"

#include <utility>

#include "obs/recorder.hpp"

namespace suvtm::sim {

bool Scheduler::run(Cycle limit) {
  while (!heap_.empty()) {
    if (heap_.front().t > limit) return false;
    const Key k = pop_min();
    // Move the callback out before running it: fn may schedule new events,
    // which may reuse (and reassign) the freed slot.
    SmallFn fn = std::move(slots_[k.slot]);
    free_slots_.push_back(k.slot);
    now_ = k.t;
    ++events_;
    SUVTM_OBS_HOOK(obs_, on_tick(k.t));
    fn();
  }
  return true;
}

}  // namespace suvtm::sim
