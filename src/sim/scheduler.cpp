#include "sim/scheduler.hpp"

#include <cassert>

namespace suvtm::sim {

void Scheduler::at(Cycle t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, seq_++, std::move(fn)});
}

bool Scheduler::run(Cycle limit) {
  while (!queue_.empty()) {
    if (queue_.top().t > limit) return false;
    // Move the event out before popping: fn may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++events_;
    ev.fn();
  }
  return true;
}

}  // namespace suvtm::sim
