#include "sim/scheduler.hpp"

#include <string>
#include <utility>

#include "check/check.hpp"
#include "obs/recorder.hpp"

namespace suvtm::sim {

void Scheduler::throw_scheduled_into_past(Cycle t) const {
  throw check::CheckFailure(
      "scheduler: event scheduled into the past (t=" + std::to_string(t) +
      " < now=" + std::to_string(now_) +
      "); the calendar queue would mis-bucket it a full window late");
}

void Scheduler::obs_inline_event() { obs_->on_inline_event(); }

bool Scheduler::run(Cycle limit) {
  while (pending_ > 0) {
    if (window_count_ == 0) {
      // Everything pending lives in the overflow level, beyond the window:
      // jump the window to the earliest overflow event and re-bucket. The
      // limit check comes first so an early return never leaves
      // window_start_ ahead of now_ (push() relies on that invariant).
      const Cycle t0 = overflow_.front().t;
      if (t0 > limit) return false;
      window_start_ = t0;
      scan_t_ = t0;
      refill_window();
    }
    // Find the next populated cycle via the occupancy bitmap.
    // window_count_ > 0 guarantees a non-empty bucket at some t in
    // [scan_t_, window_start_ + kWheelSize); that range spans at most one
    // lap of the wheel, so circular bit order from scan_t_'s index is time
    // order and the index delta recovers the absolute cycle.
    const std::uint32_t idx0 = static_cast<std::uint32_t>(scan_t_ & kWheelMask);
    const std::uint32_t idx = next_occupied(idx0);
    scan_t_ += (idx - idx0) & kWheelMask;
    if (scan_t_ > limit) return false;
    Bucket* b = &wheel_[idx];

    // Batched same-cycle dispatch: drain the whole bucket. now_ advances
    // once, and the index loop picks up events appended *during* the drain
    // (an after(0) lands in this same bucket with a higher seq, exactly the
    // heap's tie-break). Callbacks may grow other buckets/overflow freely;
    // this bucket only ever grows at the tail.
    now_ = scan_t_;
    std::size_t i = 0;
    while (i < b->size()) {
      const std::uint64_t payload = (*b)[i++];
      if (payload & 1u) {
        const auto slot = static_cast<std::uint32_t>(payload >> 1);
        // Move the callback out before running it: fn may schedule new
        // events, which may reuse (and reassign) the freed slot.
        SmallFn fn = std::move(slots_[slot]);
        // lint: allow(growth-in-loop) -- capacity pre-reserved in at().
        free_slots_.push_back(slot);
        fn();
      } else {
        std::coroutine_handle<>::from_address(
            reinterpret_cast<void*>(static_cast<std::uintptr_t>(payload)))
            .resume();
      }
    }
    const std::uint64_t batch = i;
    b->clear();  // keeps capacity for the next lap of the wheel
    clear_occupied(idx);
    events_ += batch;
    pending_ -= batch;
    window_count_ -= batch;
    SUVTM_OBS_HOOK(obs_, on_batch(now_, batch));
    ++scan_t_;
  }
  trim_quiescent();
  return true;
}

void Scheduler::trim_quiescent() {
  // pending_ == 0 here: every slot is free and every bucket is empty, so
  // dropping storage cannot reorder anything. Without this, one barrier
  // release storm or retry burst pins its high-water allocation for the
  // rest of the process (long sweeps reuse the embedding process).
  if (slots_.size() > kSlotPoolTrim) {
    slots_.resize(kSlotPoolTrim);
    slots_.shrink_to_fit();
    free_slots_.clear();
    free_slots_.reserve(slots_.capacity());
    for (std::uint32_t s = static_cast<std::uint32_t>(slots_.size()); s > 0;)
      free_slots_.push_back(--s);
  }
  for (Bucket& b : wheel_) {
    if (b.capacity() > kBucketCapacityTrim) Bucket().swap(b);
  }
  if (overflow_.capacity() > kSlotPoolTrim) overflow_.shrink_to_fit();
}

}  // namespace suvtm::sim
