// Deterministic discrete-event scheduler.
//
// Single-threaded by design: determinism and reproducibility matter more for
// an architecture simulator than host-level parallelism, and it keeps the
// entire coherence/HTM state machine free of host synchronization. Ties are
// broken by insertion order. (Host-level parallelism lives one layer up: the
// runner fans independent Simulator instances across cores, see
// runner/parallel.hpp.)
//
// Hot-path notes: the event queue is a hand-rolled binary min-heap over
// flat POD keys (cycle, insertion seq, callback slot). Callbacks live in a
// parallel free-listed slot pool as SmallFn -- a move-only small-buffer
// callable -- so the common 16-to-24-byte coroutine resumption never
// touches the allocator, heap sifts shuffle 24-byte trivially-copyable
// keys instead of type-erased callables, and popping moves the callback
// out (std::priority_queue's const top() would force a copy before pop()).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/obs.hpp"
#include "sim/small_fn.hpp"

namespace suvtm::sim {

class Scheduler {
 public:
  /// Current simulated time.
  Cycle now() const { return now_; }

  /// Run `fn` at absolute cycle `t` (>= now). Inline together with the heap
  /// helpers below: one schedule + one pop per simulated event makes these
  /// the hottest non-model code in the simulator.
  void at(Cycle t, SmallFn fn) {
    assert(t >= now_ && "cannot schedule into the past");
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(fn));
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
    }
    heap_.emplace_back();  // reserve the hole; sift_up fills it
    sift_up(heap_.size() - 1, Key{t, seq_++, slot});
  }

  /// Run `fn` `delay` cycles from now.
  void after(Cycle delay, SmallFn fn) { at(now_ + delay, std::move(fn)); }

  /// Resume a coroutine `delay` cycles from now.
  void resume_after(Cycle delay, std::coroutine_handle<> h) {
    after(delay, [h] { h.resume(); });
  }

  /// Process events until the queue is empty or `limit` cycles elapse.
  /// Returns false if the limit was hit with events still pending.
  bool run(Cycle limit);

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t events_processed() const { return events_; }

  /// Observability: the run loop advances the recorder's cycle cache and
  /// drives its periodic occupancy sampler (nullptr = off).
  void set_obs(obs::Recorder* r) { obs_ = r; }

 private:
  struct Key {
    Cycle t;
    std::uint64_t seq;
    std::uint32_t slot;  // index into slots_

    bool before(const Key& o) const {
      return t != o.t ? t < o.t : seq < o.seq;
    }
  };
  static_assert(sizeof(Key) <= 24, "heap keys must stay small PODs");

  /// Place `k` into the heap starting the upward search at hole `i`
  /// (the freshly appended last element).
  void sift_up(std::size_t i, Key k) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!k.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }

  /// Pop the minimum key (heap must be non-empty).
  Key pop_min() {
    const Key min = heap_.front();
    const Key last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      // Sift the former last key down from the root, pulling the smaller
      // child up through the hole.
      std::size_t i = 0;
      for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n && heap_[child + 1].before(heap_[child])) ++child;
        if (!heap_[child].before(last)) break;
        heap_[i] = heap_[child];
        i = child;
      }
      heap_[i] = last;
    }
    return min;
  }

  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  obs::Recorder* obs_ = nullptr;
  std::vector<Key> heap_;       // binary min-heap by (t, seq)
  std::vector<SmallFn> slots_;  // parked callbacks, indexed by Key::slot
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace suvtm::sim
