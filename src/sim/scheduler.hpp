// Deterministic discrete-event scheduler.
//
// Single-threaded by design: determinism and reproducibility matter more for
// an architecture simulator than host-level parallelism, and it keeps the
// entire coherence/HTM state machine free of host synchronization. Ties are
// broken by insertion order. (Host-level parallelism lives one layer up: the
// runner fans independent Simulator instances across cores, see
// runner/parallel.hpp.)
//
// Hot-path notes: the event queue is a calendar queue -- a wheel of
// kWheelSize per-cycle buckets covering the window [window_start_,
// window_start_ + kWheelSize). Nearly every event in this simulator is an
// `after(small delay)` (cache hits, NoC hops, stall retries, coroutine
// resumes), so push and pop are O(1) appends/drains on a flat vector
// instead of O(log n) heap sifts. Far-future events (deep backoff, the
// wheel-edge spill as `now_` approaches the window end) park in a small
// binary-heap overflow level keyed by (cycle, seq) and are re-bucketed in
// key order when the window jumps forward, which preserves the global
// (cycle, insertion-seq) dispatch order bit-exactly: overflow events always
// carry smaller seqs than any event bucketed directly after the jump, so
// FIFO order within a bucket *is* seq order.
//
// Events are one 64-bit payload each: an even value is a raw coroutine
// handle (the dominant resume_after case -- no SmallFn construction, no
// type-erased call), an odd value is (slot << 1) | 1 into a free-listed
// SmallFn slot pool for general callbacks.
//
// run() dispatches per *bucket*, not per event: `now_` advances once per
// simulated cycle, and the observability cycle-cache/sampler update is one
// batched call per non-empty cycle instead of one per event.
#pragma once

#include <bit>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/obs.hpp"
#include "sim/small_fn.hpp"

namespace suvtm::sim {

class Scheduler {
 public:
  /// Wheel geometry: one bucket per cycle, covering a sliding window of
  /// kWheelSize cycles. Sized so every common latency in the model (L1/L2,
  /// directory, memory at 150, mesh hops, stall retries) lands in a bucket
  /// directly; only deep exponential backoff and the window-edge transit
  /// take the overflow heap.
  static constexpr std::uint32_t kWheelBits = 11;
  static constexpr std::uint32_t kWheelSize = 1u << kWheelBits;  // 2048 cycles
  static constexpr Cycle kWheelMask = kWheelSize - 1;

  /// Quiescent-point trim thresholds (see trim_quiescent()).
  static constexpr std::size_t kSlotPoolTrim = 1024;
  static constexpr std::size_t kBucketCapacityTrim = 64;

  Scheduler() : wheel_(kWheelSize) {}

  /// Current simulated time.
  Cycle now() const { return now_; }

  /// Run `fn` at absolute cycle `t` (>= now). Inline together with push()
  /// below: one schedule + one dispatch per simulated event makes these the
  /// hottest non-model code in the simulator.
  void at(Cycle t, SmallFn fn) {
    check_not_past(t);
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(fn));
      // Keep the free list's capacity at least the pool size so the
      // bucket-drain loop's push_back never allocates.
      free_slots_.reserve(slots_.capacity());
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
    }
    push(t, (static_cast<std::uint64_t>(slot) << 1) | 1u);
  }

  /// Run `fn` `delay` cycles from now.
  void after(Cycle delay, SmallFn fn) { at(now_ + delay, std::move(fn)); }

  /// Resume a coroutine at absolute cycle `t`. Dedicated fast slot: the
  /// handle rides in the event payload itself -- no SmallFn type erasure,
  /// no slot-pool traffic.
  void resume_at(Cycle t, std::coroutine_handle<> h) {
    check_not_past(t);
    const auto payload = reinterpret_cast<std::uintptr_t>(h.address());
    assert((payload & 1u) == 0 && "coroutine frames are at least 2-aligned");
    push(t, static_cast<std::uint64_t>(payload));
  }

  /// Resume a coroutine `delay` cycles from now.
  void resume_after(Cycle delay, std::coroutine_handle<> h) {
    resume_at(now_ + delay, h);
  }

  /// Process events until the queue is empty or `limit` cycles elapse.
  /// Returns false if the limit was hit with events still pending.
  bool run(Cycle limit);

  /// Account for a simulated event completed inline by the fast path
  /// (thread_context.cpp) without a queue round trip: it still counts
  /// toward events_processed() and the observability sampler deadline.
  void count_inline_event() {
    ++events_;
#if defined(SUVTM_OBS_ENABLED) && SUVTM_OBS_ENABLED
    if (obs_) obs_inline_event();
#endif
  }

  std::size_t pending() const { return pending_; }
  std::uint64_t events_processed() const { return events_; }

  /// Observability: the run loop advances the recorder's cycle cache and
  /// drives its periodic occupancy sampler (nullptr = off).
  void set_obs(obs::Recorder* r) { obs_ = r; }

  // ---- introspection for tests and diagnostics -----------------------------
  std::size_t slot_pool_capacity() const { return slots_.size(); }
  std::size_t overflow_size() const { return overflow_.size(); }

 private:
  /// Overflow key: full (t, seq) order so re-bucketing replays insertion
  /// order exactly. Payload encoding matches the buckets.
  struct Key {
    Cycle t;
    std::uint64_t seq;
    std::uint64_t payload;

    bool before(const Key& o) const {
      return t != o.t ? t < o.t : seq < o.seq;
    }
  };
  static_assert(sizeof(Key) <= 24, "overflow keys must stay small PODs");

  using Bucket = std::vector<std::uint64_t>;

  /// The schedule-into-the-past guard. The binary heap merely mis-ordered a
  /// past-time event; the wheel would silently mis-bucket it a whole window
  /// late, so SUVTM_CHECK builds promote the assert to a thrown
  /// check::CheckFailure that fires in release mode too.
  void check_not_past(Cycle t) const {
    // The throw must precede the assert: this repo keeps asserts enabled in
    // every build type, and the thrown CheckFailure is the testable,
    // catchable form of the same guard (see scheduler_property_test).
#if defined(SUVTM_CHECK_ENABLED) && SUVTM_CHECK_ENABLED
    if (t < now_) throw_scheduled_into_past(t);
#endif
    assert(t >= now_ && "cannot schedule into the past");
    (void)t;
  }
  [[noreturn]] void throw_scheduled_into_past(Cycle t) const;

  /// Out-of-line sampler tick for inline events (keeps this header free of
  /// the full Recorder definition).
  void obs_inline_event();

  void push(Cycle t, std::uint64_t payload) {
    ++seq_;
    ++pending_;
    // Invariant outside run(): window_start_ <= now_ <= t, so the unsigned
    // difference below is exact.
    if (t - window_start_ < kWheelSize) {
      const std::uint32_t idx = static_cast<std::uint32_t>(t & kWheelMask);
      wheel_[idx].push_back(payload);
      mark_occupied(idx);
      ++window_count_;
      // Events may be (re)scheduled at cycles the scan cursor already
      // passed without dispatching (e.g. at(now()) between run() calls).
      if (t < scan_t_) scan_t_ = t;
    } else {
      overflow_.emplace_back();  // reserve the hole; sift_up fills it
      sift_up(overflow_.size() - 1, Key{t, seq_, payload});
    }
  }

  // ---- occupancy bitmap ----------------------------------------------------
  // One bit per bucket plus a one-word summary (bit w set iff occ_[w] != 0),
  // so the run loop finds the next populated cycle with two bit-scans
  // instead of walking empty buckets -- the real simulator's schedule is
  // sparse in time (memory latencies spread events ~150 cycles apart).
  static constexpr std::uint32_t kOccWords = kWheelSize / 64;
  static_assert(kOccWords <= 64, "summary must fit one word");

  void mark_occupied(std::uint32_t idx) {
    occ_[idx >> 6] |= 1ull << (idx & 63u);
    occ_summary_ |= 1ull << (idx >> 6);
  }

  void clear_occupied(std::uint32_t idx) {
    occ_[idx >> 6] &= ~(1ull << (idx & 63u));
    if (occ_[idx >> 6] == 0) occ_summary_ &= ~(1ull << (idx >> 6));
  }

  /// Index of the first occupied bucket at or (circularly) after `from`.
  /// Requires window_count_ > 0.
  std::uint32_t next_occupied(std::uint32_t from) const {
    const std::uint32_t w0 = from >> 6;
    const std::uint64_t head = occ_[w0] & (~0ull << (from & 63u));
    if (head != 0) {
      return (w0 << 6) | static_cast<std::uint32_t>(std::countr_zero(head));
    }
    // First non-empty word strictly after w0, wrapping to the lowest
    // non-empty word (which may be w0 itself, carrying wrapped events).
    const std::uint64_t above = occ_summary_ & (~0ull << (w0 + 1));
    const std::uint32_t w = static_cast<std::uint32_t>(
        std::countr_zero(above != 0 ? above : occ_summary_));
    return (w << 6) |
           static_cast<std::uint32_t>(std::countr_zero(occ_[w]));
  }

  /// Move every overflow event inside the (re-positioned) window into its
  /// bucket. Heap pops come out in (t, seq) order, and every event bucketed
  /// directly afterwards has a larger seq, so buckets stay FIFO == seq.
  void refill_window() {
    while (!overflow_.empty() &&
           overflow_.front().t - window_start_ < kWheelSize) {
      const Key k = pop_min();
      const std::uint32_t idx = static_cast<std::uint32_t>(k.t & kWheelMask);
      // Amortized wheel-edge transit; bucket capacity is retained across
      // windows (clear() keeps it).  // lint: allow(growth-in-loop)
      wheel_[idx].push_back(k.payload);
      mark_occupied(idx);
      ++window_count_;
    }
  }

  /// Release bursty high-water storage once the queue is quiescent
  /// (pending_ == 0): barrier-release storms and deep retry storms grow the
  /// slot pool and bucket capacities, and nothing ever shrank them before.
  void trim_quiescent();

  /// Place `k` into the overflow heap starting the upward search at hole
  /// `i` (the freshly appended last element).
  void sift_up(std::size_t i, Key k) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!k.before(overflow_[parent])) break;
      overflow_[i] = overflow_[parent];
      i = parent;
    }
    overflow_[i] = k;
  }

  /// Pop the minimum overflow key (overflow_ must be non-empty).
  Key pop_min() {
    const Key min = overflow_.front();
    const Key last = overflow_.back();
    overflow_.pop_back();
    const std::size_t n = overflow_.size();
    if (n > 0) {
      // Sift the former last key down from the root, pulling the smaller
      // child up through the hole.
      std::size_t i = 0;
      for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n && overflow_[child + 1].before(overflow_[child]))
          ++child;
        if (!overflow_[child].before(last)) break;
        overflow_[i] = overflow_[child];
        i = child;
      }
      overflow_[i] = last;
    }
    return min;
  }

  Cycle now_ = 0;
  Cycle window_start_ = 0;  // wheel covers [window_start_, +kWheelSize)
  Cycle scan_t_ = 0;        // next cycle run() inspects (>= now_)
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::size_t pending_ = 0;       // bucketed + overflow events
  std::size_t window_count_ = 0;  // bucketed events only
  obs::Recorder* obs_ = nullptr;
  std::vector<Bucket> wheel_;     // kWheelSize per-cycle FIFO buckets
  std::uint64_t occ_[kOccWords] = {};  // bit per non-empty bucket
  std::uint64_t occ_summary_ = 0;      // bit w set iff occ_[w] != 0
  std::vector<Key> overflow_;     // binary min-heap by (t, seq)
  std::vector<SmallFn> slots_;    // parked callbacks, indexed by payload>>1
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace suvtm::sim
