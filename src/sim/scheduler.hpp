// Deterministic discrete-event scheduler.
//
// Single-threaded by design: determinism and reproducibility matter more for
// an architecture simulator than host-level parallelism, and it keeps the
// entire coherence/HTM state machine free of host synchronization. Ties are
// broken by insertion order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace suvtm::sim {

class Scheduler {
 public:
  /// Current simulated time.
  Cycle now() const { return now_; }

  /// Run `fn` at absolute cycle `t` (>= now).
  void at(Cycle t, std::function<void()> fn);

  /// Run `fn` `delay` cycles from now.
  void after(Cycle delay, std::function<void()> fn) { at(now_ + delay, std::move(fn)); }

  /// Resume a coroutine `delay` cycles from now.
  void resume_after(Cycle delay, std::coroutine_handle<> h) {
    after(delay, [h] { h.resume(); });
  }

  /// Process events until the queue is empty or `limit` cycles elapse.
  /// Returns false if the limit was hit with events still pending.
  bool run(Cycle limit);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return events_; }

 private:
  struct Event {
    Cycle t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace suvtm::sim
