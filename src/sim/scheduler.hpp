// Deterministic discrete-event scheduler.
//
// Single-threaded by design: determinism and reproducibility matter more for
// an architecture simulator than host-level parallelism, and it keeps the
// entire coherence/HTM state machine free of host synchronization. Ties are
// broken by insertion order. (Host-level parallelism lives one layer up: the
// runner fans independent Simulator instances across cores, see
// runner/parallel.hpp.)
//
// Hot-path notes: the event queue is a hand-rolled binary min-heap over
// flat POD keys (cycle, insertion seq, callback slot). Callbacks live in a
// parallel free-listed slot pool as SmallFn -- a move-only small-buffer
// callable -- so the common 16-to-24-byte coroutine resumption never
// touches the allocator, heap sifts shuffle 24-byte trivially-copyable
// keys instead of type-erased callables, and popping moves the callback
// out (std::priority_queue's const top() would force a copy before pop()).
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/small_fn.hpp"

namespace suvtm::sim {

class Scheduler {
 public:
  /// Current simulated time.
  Cycle now() const { return now_; }

  /// Run `fn` at absolute cycle `t` (>= now).
  void at(Cycle t, SmallFn fn);

  /// Run `fn` `delay` cycles from now.
  void after(Cycle delay, SmallFn fn) { at(now_ + delay, std::move(fn)); }

  /// Resume a coroutine `delay` cycles from now.
  void resume_after(Cycle delay, std::coroutine_handle<> h) {
    after(delay, [h] { h.resume(); });
  }

  /// Process events until the queue is empty or `limit` cycles elapse.
  /// Returns false if the limit was hit with events still pending.
  bool run(Cycle limit);

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t events_processed() const { return events_; }

 private:
  struct Key {
    Cycle t;
    std::uint64_t seq;
    std::uint32_t slot;  // index into slots_

    bool before(const Key& o) const {
      return t != o.t ? t < o.t : seq < o.seq;
    }
  };
  static_assert(sizeof(Key) <= 24, "heap keys must stay small PODs");

  /// Place `k` into the heap starting the upward search at hole `i`
  /// (the freshly appended last element).
  void sift_up(std::size_t i, Key k);
  /// Pop the minimum key (heap must be non-empty).
  Key pop_min();

  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::vector<Key> heap_;       // binary min-heap by (t, seq)
  std::vector<SmallFn> slots_;  // parked callbacks, indexed by Key::slot
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace suvtm::sim
