#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <thread>

#include "htm/htm_system.hpp"
#include "mem/memory_system.hpp"

namespace suvtm::sim {

Cycle ShardRuntime::effective_window(const SimConfig& cfg) {
  const Cycle w = cfg.pdes.window_cycles != 0 ? cfg.pdes.window_cycles
                                              : kDefaultWindowCycles;
  // Floor: one NoC hop. A remote request posted in window k is serviced at
  // boundary k+1, i.e. at most one window after its post cycle; keeping the
  // window at least one hop long means the boundary round-up never delivers
  // a message faster than the mesh could physically carry it.
  const Cycle hop = cfg.mem.mesh_wire_latency + cfg.mem.mesh_route_latency;
  return std::max(w, hop);
}

ShardRuntime::ShardRuntime(const SimConfig& cfg, const ShardMap& map,
                           std::vector<DomainPort> domains, Mailboxes& boxes,
                           Breakdown* breakdowns)
    : cfg_(cfg), map_(map), domains_(std::move(domains)), boxes_(boxes),
      breakdowns_(breakdowns), window_(effective_window(cfg)),
      retry_(map.shards), errors_(map.shards) {
  // One-way NoC latency between shard home tiles (a shard's home tile is
  // its first core's tile): the conservative transport charge for a
  // boundary-merged message in each direction.
  const std::uint32_t S = map_.shards;
  const std::uint32_t tiles =
      cfg.mem.mesh_dim * cfg.mem.mesh_dim;
  const mem::Mesh mesh(cfg.mem.mesh_dim, cfg.mem.mesh_wire_latency,
                       cfg.mem.mesh_route_latency);
  hop_.resize(static_cast<std::size_t>(S) * S);
  for (std::uint32_t s = 0; s < S; ++s) {
    for (std::uint32_t r = 0; r < S; ++r) {
      const std::uint32_t ts = (s * map_.cores_per_shard) % tiles;
      const std::uint32_t tr = (r * map_.cores_per_shard) % tiles;
      hop_[static_cast<std::size_t>(s) * S + r] = mesh.latency(ts, tr);
    }
  }
}

bool ShardRuntime::run(Cycle max_cycles) {
  const std::uint32_t S = map_.shards;
  max_cycles_ = max_cycles;
  boundary_ = std::min<Cycle>(window_, max_cycles + 1);
  done_ = false;
  overran_ = false;

  // Domain d is driven by host thread d % N for the whole run: the static
  // assignment means every thread count -- including N == 1 -- executes the
  // identical per-domain schedule, so bit-identity across thread counts is
  // a property of the code path, not a property we hope the merge restores.
  const std::uint32_t N = std::min<std::uint32_t>(
      std::max<std::uint32_t>(1, cfg_.pdes.host_threads), S);

  std::barrier bar(static_cast<std::ptrdiff_t>(N),
                   [this]() noexcept { merge_boundary(); });

  auto worker = [&](std::uint32_t k) {
    for (;;) {
      for (std::uint32_t d = k; d < S; d += N) {
        if (errors_[d]) continue;
        try {
          // Execute every event with t < boundary_; cross-boundary events
          // stay queued. Scheduler::run is inclusive of its limit.
          domains_[d].sched->run(boundary_ - 1);
        } catch (...) {
          errors_[d] = std::current_exception();
        }
      }
      // The one cross-thread synchronization point per window; the
      // completion function above merges the mailboxes on a single thread
      // while everyone else is parked. // lint: allow(sync-in-drain)
      bar.arrive_and_wait();
      if (done_ || overran_) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(N);
  for (std::uint32_t k = 0; k < N; ++k) threads.emplace_back(worker, k);
  for (auto& t : threads) t.join();
  return !overran_;
}

void ShardRuntime::rethrow_domain_error() const {
  for (const auto& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

void ShardRuntime::merge_boundary() {
  const std::uint32_t S = map_.shards;
  for (const auto& e : errors_) {
    if (e) {
      done_ = true;
      return;
    }
  }

  // Canonical drain order -- the determinism linchpin: receivers ascending;
  // within a receiver, previously stalled requests in arrival order, then
  // fresh mail by ascending sender, each box in post (FIFO) order.
  for (std::uint32_t r = 0; r < S; ++r) {
    retry_scratch_.clear();
    retry_scratch_.swap(retry_[r]);
    for (const RemoteMsg& m : retry_scratch_) process_remote(r, m);
    for (std::uint32_t s = 0; s < S; ++s) {
      std::vector<RemoteMsg>& b = boxes_.box(s, r);
      for (const RemoteMsg& m : b) process_remote(r, m);
      b.clear();
    }
  }

  bool idle = true;
  for (std::uint32_t d = 0; d < S; ++d) {
    if (domains_[d].sched->pending() != 0 || !retry_[d].empty()) {
      idle = false;
      break;
    }
  }
  if (idle) {
    done_ = true;
    return;
  }
  if (boundary_ > max_cycles_) {
    overran_ = true;
    return;
  }
  boundary_ = std::min<Cycle>(boundary_ + window_, max_cycles_ + 1);
}

void ShardRuntime::process_remote(std::uint32_t to, const RemoteMsg& m) {
  const std::uint32_t from = map_.shard_of_core(m.core);
  DomainPort& own = domains_[to];

  // Mirror of the local non-transactional load path (thread_context.cpp):
  // conflict check against the owner domain, then VM-resolved timed access.
  auto dec = own.htm->conflicts().check(m.core, line_of(m.addr),
                                        /*is_write=*/false,
                                        /*requester_lazy=*/false,
                                        own.htm->txn_view());
  if (dec.victim != kNoCore && dec.victim != m.core) {
    own.htm->doom(dec.victim, dec.victim_cause);
  }
  if (dec.action != htm::ConflictManager::Action::kProceed) {
    // Non-transactional requesters can only stall; the retry interval for a
    // boundary-merged request is the next boundary.
    retry_[to].push_back(m);
    return;
  }

  auto& vm = own.htm->vm();
  Addr target = m.addr;
  Cycle extra = 0;
  Cycle extra_if_l1_hit = 0;
  if (!vm.loads_in_place()) {
    const htm::LoadAction act = vm.resolve_load(m.core, nullptr, m.addr);
    target = act.target;
    extra = act.extra;
    extra_if_l1_hit = act.extra_if_l1_hit;
  }
  const mem::AccessOutcome out = own.mem->access(m.core, target, false);
  m.aw->value = own.mem->load_word(target);
  const Cycle lat = out.latency + extra + (out.l1_hit ? extra_if_l1_hit : 0);

  // Conservative timing: the request is charged as if it reached the owner
  // exactly at the boundary (one hop there), was serviced, and travelled
  // one hop back. Stalled windows are naturally included: the requester
  // resumes after the boundary at which the conflict finally cleared.
  const std::uint32_t S = map_.shards;
  const Cycle resume_t = boundary_ +
                         hop_[static_cast<std::size_t>(from) * S + to] + lat +
                         hop_[static_cast<std::size_t>(to) * S + from];
  breakdowns_[m.core].add(Bucket::kNoTrans, resume_t - m.post_cycle);
  domains_[from].sched->resume_at(resume_t, m.h);
}

}  // namespace suvtm::sim
