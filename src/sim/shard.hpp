// Sharded conservative-PDES runtime (DESIGN.md section 14).
//
// A sharded machine (SimConfig::pdes.shards > 1) is partitioned into
// independent *domains*: shard s owns a contiguous block of simulated cores
// plus a complete vertical slice of the machine (its own scheduler wheel,
// L1s/L2/directory/backing store, conflict manager and version-management
// state). Domains share no mutable state, so each one can be simulated on
// its own host thread; the only cross-shard channel is the per-pair
// mailboxes below, which are written during a window by exactly one sender
// thread and drained by exactly one merger thread at the window barrier.
// Determinism is structural: a domain's event stream depends only on its
// own prior events plus the mailbox messages merged at boundaries, and the
// merge happens in fixed (receiver, sender, FIFO) order on one thread --
// so RunResult/trace/metrics bytes cannot depend on the host thread count.
#pragma once

#include <cstdint>
#include <exception>
#include <vector>

#include "common/types.hpp"
#include "sim/breakdown.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "sim/thread_context.hpp"
#include "suv/pool.hpp"

namespace suvtm::htm {
class HtmSystem;
}
namespace suvtm::mem {
class MemorySystem;
}

namespace suvtm::sim {

/// Static shard geometry: which shard owns a core, and which shard owns an
/// address. Cores partition contiguously (shard = core / cores_per_shard);
/// the address space partitions by 4 GiB arena (shard s owns
/// [s << 32, (s+1) << 32); everything above the declared arenas -- and all
/// low addresses when shards == 1 -- belongs to shard 0). SUV preserved-pool
/// lines belong to the shard of the core whose pool region holds them, so a
/// shard's redirect targets are always shard-local by construction.
struct ShardMap {
  std::uint32_t shards = 1;
  std::uint32_t cores_per_shard = 1;

  static constexpr Addr kArenaShift = 32;

  std::uint32_t shard_of_core(CoreId c) const { return c / cores_per_shard; }

  std::uint32_t shard_of_addr(Addr a) const {
    if (a >= suv::kPoolRegionBase) [[unlikely]] {
      return shard_of_core(suv::PreservedPool::owner_of(line_of(a)));
    }
    const Addr arena = a >> kArenaShift;
    return arena < shards ? static_cast<std::uint32_t>(arena) : 0u;
  }

  /// Base of shard s's data arena (sharded workloads allocate inside it).
  static Addr arena_base(std::uint32_t shard) {
    return static_cast<Addr>(shard) << kArenaShift;
  }
};

/// One cross-shard request: a non-transactional read issued by `core`
/// against an address another shard owns. Posted by the sender's domain
/// thread during a window; executed against the owner's structures by the
/// merger at the next boundary; the reply resumes `h` on the sender's
/// scheduler with `aw->value` filled in.
struct RemoteMsg {
  CoreId core = kNoCore;
  Addr addr = 0;
  Cycle post_cycle = 0;  // sender-domain clock (incl. fast-path skew)
  std::coroutine_handle<> h{};
  ThreadContext::MemAwaiter* aw = nullptr;
};

/// Per-(sender, receiver) single-producer mailboxes. No locks, no atomics:
/// a box is written only by its sender's domain thread during a window and
/// read only by the merger thread at the barrier -- the window barrier
/// itself is the hand-off synchronization.
class Mailboxes {
 public:
  explicit Mailboxes(std::uint32_t shards)
      : shards_(shards), boxes_(static_cast<std::size_t>(shards) * shards) {}

  void post(std::uint32_t from, std::uint32_t to, const RemoteMsg& m) {
    boxes_[static_cast<std::size_t>(from) * shards_ + to].push_back(m);
  }
  std::vector<RemoteMsg>& box(std::uint32_t from, std::uint32_t to) {
    return boxes_[static_cast<std::size_t>(from) * shards_ + to];
  }
  std::uint32_t shards() const { return shards_; }

  bool all_empty() const {
    for (const auto& b : boxes_) {
      if (!b.empty()) return false;
    }
    return true;
  }

 private:
  std::uint32_t shards_ = 0;
  std::vector<std::vector<RemoteMsg>> boxes_;
};

/// The per-core view a ThreadContext needs to route foreign accesses: the
/// mailboxes, the geometry, and its home shard. Null port = monolithic
/// machine (the classic path; one never-taken pointer test per access).
struct RemotePort {
  Mailboxes* boxes = nullptr;
  const ShardMap* map = nullptr;
  std::uint32_t shard = 0;
};

/// One shard's vertical slice, as the runtime sees it.
struct DomainPort {
  Scheduler* sched = nullptr;
  mem::MemorySystem* mem = nullptr;
  htm::HtmSystem* htm = nullptr;
};

/// Conservative window loop: every domain runs its wheel up to the window
/// boundary on its host thread (domain d on thread d % host_threads), the
/// threads barrier, and one thread merges the mailboxes deterministically.
/// See shard.cpp for the merge and the timing model of remote reads.
class ShardRuntime {
 public:
  /// Default conservative window when cfg.pdes.window_cycles == 0.
  static constexpr Cycle kDefaultWindowCycles = 4096;

  /// `breakdowns` is the simulator's per-core breakdown array (indexed by
  /// global CoreId); the merger charges a requester's remote round trip
  /// there while its domain thread is parked at the barrier.
  ShardRuntime(const SimConfig& cfg, const ShardMap& map,
               std::vector<DomainPort> domains, Mailboxes& boxes,
               Breakdown* breakdowns);

  /// Run the window loop until every domain drains (returns true) or the
  /// cycle limit is exceeded with work still pending (returns false).
  /// Exceptions escaping a domain (checker failures, scheduler guards) are
  /// captured per-domain; call rethrow_domain_error() afterwards.
  bool run(Cycle max_cycles);

  /// Rethrow the lowest-numbered domain's captured exception, if any (the
  /// deterministic stand-in for the serial path's direct propagation).
  void rethrow_domain_error() const;

  Cycle window_cycles() const { return window_; }

  /// The effective synchronization quantum for `cfg`: the configured (or
  /// default 4096-cycle) window, floored by the mesh's minimum cross-shard
  /// hop latency so a boundary-merged message can never be delivered
  /// faster than one NoC hop.
  static Cycle effective_window(const SimConfig& cfg);

 private:
  void merge_boundary();
  void process_remote(std::uint32_t to, const RemoteMsg& m);

  const SimConfig& cfg_;
  ShardMap map_;
  std::vector<DomainPort> domains_;
  Mailboxes& boxes_;
  Breakdown* breakdowns_;
  Cycle window_ = 0;
  Cycle boundary_ = 0;
  Cycle max_cycles_ = 0;
  bool done_ = false;
  bool overran_ = false;
  /// Requests NACKed by the owner's conflict check; reprocessed (in arrival
  /// order, before fresh mail) at each subsequent boundary.
  std::vector<std::vector<RemoteMsg>> retry_;
  std::vector<RemoteMsg> retry_scratch_;
  /// One-way NoC latency between shard home tiles, [from * shards + to].
  std::vector<Cycle> hop_;
  /// Per-domain captured exception; plain slots, synchronized by the
  /// window barrier (each is written before an arrive and read after).
  std::vector<std::exception_ptr> errors_;
};

}  // namespace suvtm::sim
