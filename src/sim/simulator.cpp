#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "vm/dyntm.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::sim {

void Simulator::build_domain(Domain& d) {
  d.mem = std::make_unique<mem::MemorySystem>(cfg_.mem);
  d.htm = std::make_unique<htm::HtmSystem>(cfg_, *d.mem,
                                           make_version_manager(cfg_, *d.mem));
  if (check::kHooksCompiled && cfg_.check.enabled) {
    d.checker = std::make_unique<check::Checker>(cfg_, *d.mem, *d.htm);
    d.htm->set_checker(d.checker.get());
  }
  if (obs::kHooksCompiled && cfg_.obs.enabled()) {
    d.recorder = std::make_unique<obs::Recorder>(cfg_.obs, cfg_.mem.num_cores);
    d.sched.set_obs(d.recorder.get());
    d.htm->set_obs(d.recorder.get());
    d.mem->set_obs(d.recorder.get());

    // Occupancy gauges, sampled every cfg.obs.sample_interval_events
    // scheduler events. Everything read here is this domain's own
    // deterministic state, so the series are reproducible across host job
    // and shard-thread counts.
    htm::VersionManager* vmgr = &d.htm->vm();
    if (auto* dyn = dynamic_cast<vm::DynTm*>(vmgr)) vmgr = &dyn->inner();
    auto* suvvm = dynamic_cast<vm::SuvVm*>(vmgr);
    htm::HtmSystem* htm = d.htm.get();
    mem::MemorySystem* mem = d.mem.get();
    const std::uint32_t cores = cfg_.mem.num_cores;
    d.recorder->set_sampler([htm, mem, suvvm, cores](obs::Metrics& m,
                                                     Cycle t) {
      m.sample(obs::Series::kSuspendedTxns, t, htm->suspended_count());
      m.sample(obs::Series::kDirTracked, t, mem->directory().tracked_lines());
      if (suvvm != nullptr) {
        m.sample(obs::Series::kRedirectEntries, t,
                 suvvm->table().total_entries());
        std::uint64_t pool_lines = 0;
        for (CoreId c = 0; c < cores; ++c) {
          pool_lines += suvvm->pool(c).lines_in_use();
        }
        m.sample(obs::Series::kPoolLines, t, pool_lines);
      }
    });
  }
}

Simulator::Simulator(const SimConfig& cfg) : cfg_(cfg) {
  const std::uint32_t shards = std::max<std::uint32_t>(1, cfg_.pdes.shards);
  if (cfg_.mem.num_cores % shards != 0) {
    throw std::invalid_argument(
        "pdes.shards must divide mem.num_cores (cores partition into "
        "equal contiguous blocks)");
  }
  map_.shards = shards;
  map_.cores_per_shard = cfg_.mem.num_cores / shards;

  domains_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    // lint: allow(alloc-in-loop) -- one-time construction, not a sim path
    domains_.push_back(std::make_unique<Domain>());
    build_domain(*domains_.back());
  }
  if (shards > 1) {
    boxes_ = std::make_unique<Mailboxes>(shards);
    ports_.resize(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      ports_[s] = RemotePort{boxes_.get(), &map_, s};
    }
  }

  breakdowns_.resize(cfg_.mem.num_cores);
  contexts_.reserve(cfg_.mem.num_cores);
  for (CoreId c = 0; c < cfg_.mem.num_cores; ++c) {
    Domain& d = *domains_[map_.shard_of_core(c)];
    const RemotePort* port =
        shards > 1 ? &ports_[map_.shard_of_core(c)] : nullptr;
    // lint: allow(alloc-in-loop) -- one-time construction, not a sim path
    contexts_.push_back(std::make_unique<ThreadContext>(
        c, cfg_, d.sched, *d.mem, *d.htm, breakdowns_[c],
        cfg_.seed * 0x100001b3ull + c, d.checker.get(), d.recorder.get(),
        port));
  }
}

Barrier& Simulator::make_barrier(std::uint32_t parties) {
  if (map_.shards > 1) {
    throw std::logic_error(
        "make_barrier(parties) is ambiguous on a sharded machine: barriers "
        "live on one domain's scheduler -- use make_barrier(parties, home) "
        "with cores of a single shard");
  }
  return make_barrier(parties, /*home=*/0);
}

Barrier& Simulator::make_barrier(std::uint32_t parties, CoreId home) {
  Domain& d = *domains_[map_.shard_of_core(home)];
  barriers_.push_back(std::make_unique<Barrier>(d.sched, parties));
  return *barriers_.back();
}

void Simulator::spawn(CoreId c, ThreadTask task) {
  auto s = std::make_unique<Spawned>(Spawned{std::move(task), false, nullptr});
  auto h = s->task.prepare(&s->done, &s->error);
  Scheduler& sched = domains_[map_.shard_of_core(c)]->sched;
  // Stagger thread starts by one cycle for a deterministic, realistic ramp
  // (by global core id, so the ramp matches the monolithic machine's).
  sched.at(sched.now() + c, [h] { h.resume(); });
  threads_.push_back(std::move(s));
}

void Simulator::run() {
  // Snapshot the workload's built image before the first simulated event;
  // each checker's end-of-run sweep diffs untouched words against it.
  for (auto& d : domains_) {
    if (d->checker) d->checker->on_run_start();
  }

  bool finished;
  if (map_.shards == 1) {
    finished = domains_[0]->sched.run(cfg_.max_cycles);
  } else {
    std::vector<DomainPort> ports;
    ports.reserve(domains_.size());
    for (auto& d : domains_) {
      ports.push_back(DomainPort{&d->sched, d->mem.get(), d->htm.get()});
    }
    ShardRuntime rt(cfg_, map_, std::move(ports), *boxes_,
                    breakdowns_.data());
    finished = rt.run(cfg_.max_cycles);
    // A domain whose scheduler threw (checker guard, internal error) mirrors
    // the serial path's direct propagation out of Scheduler::run.
    rt.rethrow_domain_error();
  }

  for (auto& t : threads_) {
    if (t->error) std::rethrow_exception(t->error);
  }
  if (!finished) {
    throw std::runtime_error("simulation exceeded max_cycles limit");
  }
  for (auto& t : threads_) {
    if (!t->done) {
      throw std::runtime_error(
          "simulated thread never finished (deadlock in workload?)");
    }
  }
  // Every thread ran to completion: drain the oracles, replay each domain's
  // history serially, and run the structural audits, in domain order.
  // Throws CheckFailure on any violation.
  for (auto& d : domains_) {
    if (d->checker) d->checker->finalize();
  }
}

Cycle Simulator::makespan() const {
  Cycle m = 0;
  for (const auto& d : domains_) m = std::max(m, d->sched.now());
  return m;
}

std::uint64_t Simulator::events_processed() const {
  std::uint64_t n = 0;
  for (const auto& d : domains_) n += d->sched.events_processed();
  return n;
}

Breakdown Simulator::total_breakdown() const {
  Breakdown out;
  for (const auto& b : breakdowns_) out += b;
  return out;
}

htm::HtmStats Simulator::total_htm_stats() const {
  htm::HtmStats out;
  for (const auto& d : domains_) htm::accumulate(out, d->htm->stats());
  return out;
}

obs::MetricsSnapshot Simulator::harvest_metrics() const {
  if (!domains_[0]->recorder) return {};
  obs::MetricsSnapshot out = obs::snapshot(domains_[0]->recorder->metrics());
  if (map_.shards == 1) return out;

  // Scalars and histograms sum by name (obs::merge); occupancy series are
  // per-domain gauges, so concatenate each name's points in domain order
  // and order them by cycle (stable: equal-cycle points keep domain order).
  std::vector<obs::SeriesSnapshot> series = std::move(out.series);
  for (std::uint32_t s = 1; s < map_.shards; ++s) {
    obs::MetricsSnapshot snap =
        obs::snapshot(domains_[s]->recorder->metrics());
    for (obs::SeriesSnapshot& ss : snap.series) {
      auto it = std::find_if(
          series.begin(), series.end(),
          [&](const obs::SeriesSnapshot& have) { return have.name == ss.name; });
      if (it == series.end()) {
        series.push_back(std::move(ss));
      } else {
        it->points.insert(it->points.end(), ss.points.begin(),
                          ss.points.end());
      }
    }
    snap.series.clear();
    obs::merge(out, snap);
  }
  std::sort(series.begin(), series.end(),
            [](const obs::SeriesSnapshot& a, const obs::SeriesSnapshot& b) {
              return a.name < b.name;
            });
  for (obs::SeriesSnapshot& ss : series) {
    std::stable_sort(ss.points.begin(), ss.points.end(),
                     [](const obs::SeriesPoint& a, const obs::SeriesPoint& b) {
                       return a.t < b.t;
                     });
  }
  out.series = std::move(series);
  return out;
}

obs::TraceData Simulator::take_trace() {
  if (!domains_[0]->recorder) return {};
  obs::TraceData out = domains_[0]->recorder->take_trace();
  if (map_.shards == 1) return out;

  for (std::uint32_t s = 1; s < map_.shards; ++s) {
    obs::TraceData t = domains_[s]->recorder->take_trace();
    out.events.insert(out.events.end(), t.events.begin(), t.events.end());
    out.dropped += t.dropped;
  }
  // One canonical stream: (cycle, core) ordering, with a stable sort so
  // equal keys keep each domain's deterministic emission order.
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.core < b.core;
                   });
  return out;
}

}  // namespace suvtm::sim
