#include "sim/simulator.hpp"

#include <stdexcept>

namespace suvtm::sim {

Simulator::Simulator(const SimConfig& cfg) : cfg_(cfg) {
  mem_ = std::make_unique<mem::MemorySystem>(cfg_.mem);
  htm_ = std::make_unique<htm::HtmSystem>(cfg_, *mem_,
                                          make_version_manager(cfg_, *mem_));
  if (check::kHooksCompiled && cfg_.check.enabled) {
    checker_ = std::make_unique<check::Checker>(cfg_, *mem_, *htm_);
    htm_->set_checker(checker_.get());
  }
  breakdowns_.resize(cfg_.mem.num_cores);
  contexts_.reserve(cfg_.mem.num_cores);
  for (CoreId c = 0; c < cfg_.mem.num_cores; ++c) {
    // lint: allow(alloc-in-loop) -- one-time construction, not a sim path
    contexts_.push_back(std::make_unique<ThreadContext>(
        c, cfg_, sched_, *mem_, *htm_, breakdowns_[c],
        cfg_.seed * 0x100001b3ull + c, checker_.get()));
  }
}

Barrier& Simulator::make_barrier(std::uint32_t parties) {
  barriers_.push_back(std::make_unique<Barrier>(sched_, parties));
  return *barriers_.back();
}

void Simulator::spawn(CoreId c, ThreadTask task) {
  auto s = std::make_unique<Spawned>(Spawned{std::move(task), false, nullptr});
  auto h = s->task.prepare(&s->done, &s->error);
  // Stagger thread starts by one cycle for a deterministic, realistic ramp.
  sched_.at(sched_.now() + c, [h] { h.resume(); });
  threads_.push_back(std::move(s));
}

void Simulator::run() {
  // Snapshot the workload's built image before the first simulated event;
  // the checker's end-of-run sweep diffs untouched words against it.
  if (checker_) checker_->on_run_start();
  const bool finished = sched_.run(cfg_.max_cycles);
  for (auto& t : threads_) {
    if (t->error) std::rethrow_exception(t->error);
  }
  if (!finished) {
    throw std::runtime_error("simulation exceeded max_cycles limit");
  }
  for (auto& t : threads_) {
    if (!t->done) {
      throw std::runtime_error(
          "simulated thread never finished (deadlock in workload?)");
    }
  }
  // Every thread ran to completion: drain the oracle, replay the history
  // serially, and run the structural audits. Throws CheckFailure on any
  // violation.
  if (checker_) checker_->finalize();
}

Breakdown Simulator::total_breakdown() const {
  Breakdown out;
  for (const auto& b : breakdowns_) out += b;
  return out;
}

}  // namespace suvtm::sim
