#include "sim/simulator.hpp"

#include <stdexcept>

#include "vm/dyntm.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::sim {

Simulator::Simulator(const SimConfig& cfg) : cfg_(cfg) {
  mem_ = std::make_unique<mem::MemorySystem>(cfg_.mem);
  htm_ = std::make_unique<htm::HtmSystem>(cfg_, *mem_,
                                          make_version_manager(cfg_, *mem_));
  if (check::kHooksCompiled && cfg_.check.enabled) {
    checker_ = std::make_unique<check::Checker>(cfg_, *mem_, *htm_);
    htm_->set_checker(checker_.get());
  }
  if (obs::kHooksCompiled && cfg_.obs.enabled()) {
    recorder_ = std::make_unique<obs::Recorder>(cfg_.obs, cfg_.mem.num_cores);
    sched_.set_obs(recorder_.get());
    htm_->set_obs(recorder_.get());
    mem_->set_obs(recorder_.get());

    // Occupancy gauges, sampled every cfg.obs.sample_interval_events
    // scheduler events. Everything read here is deterministic simulator
    // state, so the series are reproducible across host job counts.
    htm::VersionManager* vmgr = &htm_->vm();
    if (auto* dyn = dynamic_cast<vm::DynTm*>(vmgr)) vmgr = &dyn->inner();
    auto* suvvm = dynamic_cast<vm::SuvVm*>(vmgr);
    recorder_->set_sampler([this, suvvm](obs::Metrics& m, Cycle t) {
      m.sample(obs::Series::kSuspendedTxns, t, htm_->suspended_count());
      m.sample(obs::Series::kDirTracked, t, mem_->directory().tracked_lines());
      if (suvvm != nullptr) {
        m.sample(obs::Series::kRedirectEntries, t,
                 suvvm->table().total_entries());
        std::uint64_t pool_lines = 0;
        for (CoreId c = 0; c < cfg_.mem.num_cores; ++c) {
          pool_lines += suvvm->pool(c).lines_in_use();
        }
        m.sample(obs::Series::kPoolLines, t, pool_lines);
      }
    });
  }
  breakdowns_.resize(cfg_.mem.num_cores);
  contexts_.reserve(cfg_.mem.num_cores);
  for (CoreId c = 0; c < cfg_.mem.num_cores; ++c) {
    // lint: allow(alloc-in-loop) -- one-time construction, not a sim path
    contexts_.push_back(std::make_unique<ThreadContext>(
        c, cfg_, sched_, *mem_, *htm_, breakdowns_[c],
        cfg_.seed * 0x100001b3ull + c, checker_.get(), recorder_.get()));
  }
}

Barrier& Simulator::make_barrier(std::uint32_t parties) {
  barriers_.push_back(std::make_unique<Barrier>(sched_, parties));
  return *barriers_.back();
}

void Simulator::spawn(CoreId c, ThreadTask task) {
  auto s = std::make_unique<Spawned>(Spawned{std::move(task), false, nullptr});
  auto h = s->task.prepare(&s->done, &s->error);
  // Stagger thread starts by one cycle for a deterministic, realistic ramp.
  sched_.at(sched_.now() + c, [h] { h.resume(); });
  threads_.push_back(std::move(s));
}

void Simulator::run() {
  // Snapshot the workload's built image before the first simulated event;
  // the checker's end-of-run sweep diffs untouched words against it.
  if (checker_) checker_->on_run_start();
  const bool finished = sched_.run(cfg_.max_cycles);
  for (auto& t : threads_) {
    if (t->error) std::rethrow_exception(t->error);
  }
  if (!finished) {
    throw std::runtime_error("simulation exceeded max_cycles limit");
  }
  for (auto& t : threads_) {
    if (!t->done) {
      throw std::runtime_error(
          "simulated thread never finished (deadlock in workload?)");
    }
  }
  // Every thread ran to completion: drain the oracle, replay the history
  // serially, and run the structural audits. Throws CheckFailure on any
  // violation.
  if (checker_) checker_->finalize();
}

Breakdown Simulator::total_breakdown() const {
  Breakdown out;
  for (const auto& b : breakdowns_) out += b;
  return out;
}

}  // namespace suvtm::sim
