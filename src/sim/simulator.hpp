// Simulator facade: owns one *domain* (scheduler + memory system + HTM
// system + optional checker/recorder) per shard -- one domain total in the
// classic monolithic configuration -- plus one ThreadContext per core; runs
// spawned thread coroutines to completion.
//
// cfg.pdes.shards == 1 (the default) is exactly the historical machine:
// every accessor below without a domain index refers to domain 0, which is
// then the whole simulator. Sharded machines (shards > 1) are simulated by
// the conservative-PDES runtime in sim/shard.hpp; the indexed accessors and
// the merged harvest helpers exist for that case.
#pragma once

#include <exception>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "common/types.hpp"
#include "htm/htm_system.hpp"
#include "mem/memory_system.hpp"
#include "obs/recorder.hpp"
#include "sim/barrier.hpp"
#include "sim/breakdown.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard.hpp"
#include "sim/task.hpp"
#include "sim/thread_context.hpp"

namespace suvtm::sim {

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  const SimConfig& config() const { return cfg_; }
  std::uint32_t num_cores() const { return cfg_.mem.num_cores; }
  std::uint32_t num_domains() const { return map_.shards; }
  const ShardMap& shard_map() const { return map_; }

  Scheduler& scheduler(std::uint32_t domain = 0) {
    return domains_[domain]->sched;
  }
  mem::MemorySystem& mem(std::uint32_t domain = 0) {
    return *domains_[domain]->mem;
  }
  htm::HtmSystem& htm(std::uint32_t domain = 0) {
    return *domains_[domain]->htm;
  }
  ThreadContext& context(CoreId c) { return *contexts_[c]; }

  /// The domain's correctness checker, or nullptr when checking is compiled
  /// out or disabled (cfg.check.enabled, defaulted from SUVTM_CHECK).
  check::Checker* checker(std::uint32_t domain = 0) {
    return domains_[domain]->checker.get();
  }

  /// The domain's observability recorder, or nullptr when the hooks are
  /// compiled out or cfg.obs asked for neither tracing nor metrics.
  obs::Recorder* recorder(std::uint32_t domain = 0) {
    return domains_[domain]->recorder.get();
  }
  const obs::Recorder* recorder(std::uint32_t domain = 0) const {
    return domains_[domain]->recorder.get();
  }

  /// Create a barrier owned by this simulator (lives until destruction).
  /// Barriers live on one domain's scheduler, so on a sharded machine the
  /// caller must say which cores rendezvous: the overload without a home
  /// core throws std::logic_error when shards > 1.
  Barrier& make_barrier(std::uint32_t parties);
  /// Barrier homed on `home`'s domain; every arriving core must belong to
  /// that same domain (sharded workloads synchronize shard-locally).
  Barrier& make_barrier(std::uint32_t parties, CoreId home);

  /// Register a thread coroutine for core `c` (at most one per core).
  void spawn(CoreId c, ThreadTask task);

  /// Run until every spawned thread finishes. Throws if a thread escaped an
  /// exception or the cycle limit was exceeded.
  void run();

  /// Total simulated time: the cycle of the last processed event (the
  /// latest domain clock on a sharded machine).
  Cycle makespan() const;

  /// Simulated events processed, summed over domains.
  std::uint64_t events_processed() const;

  const Breakdown& breakdown(CoreId c) const { return breakdowns_[c]; }
  Breakdown total_breakdown() const;

  /// HTM stats summed over domains (== domain 0's stats when shards == 1).
  htm::HtmStats total_htm_stats() const;

  /// Host-side word read that follows any live version-management
  /// redirection (SUV global entries), routed to the domain owning `a`.
  /// Use this -- not the raw backing store -- for post-run verification.
  std::uint64_t read_word_resolved(Addr a) {
    Domain& d = *domains_[map_.shard_of_addr(a)];
    return d.mem->load_word(d.htm->vm().debug_resolve(kNoCore, a));
  }

  /// Raw backing-store read (no redirection), routed to the domain owning
  /// `a` -- for seeding comparisons.
  std::uint64_t raw_word(Addr a) const {
    return domains_[map_.shard_of_addr(a)]->mem->load_word(a);
  }

  /// Host-side functional word write (workload build phase), routed to the
  /// domain owning `a`.
  void poke_word(Addr a, std::uint64_t v) {
    domains_[map_.shard_of_addr(a)]->mem->store_word(a, v);
  }

  /// Metrics snapshot across domains: exactly snapshot(recorder->metrics())
  /// when shards == 1; on a sharded machine, scalars and histograms sum,
  /// and each occupancy series concatenates the per-domain points in domain
  /// order, stably sorted by cycle. Empty when metrics are off.
  obs::MetricsSnapshot harvest_metrics() const;

  /// Trace across domains: exactly recorder->take_trace() when shards == 1;
  /// on a sharded machine, the per-domain logs merge into one stream stably
  /// sorted by (cycle, core). Empty when tracing is off.
  obs::TraceData take_trace();

 private:
  /// One shard's complete vertical slice. Domains share no mutable state;
  /// that isolation -- not any locking -- is what lets the PDES runtime run
  /// them on separate host threads with bit-identical results.
  struct Domain {
    Scheduler sched;
    std::unique_ptr<mem::MemorySystem> mem;
    std::unique_ptr<htm::HtmSystem> htm;
    std::unique_ptr<check::Checker> checker;
    std::unique_ptr<obs::Recorder> recorder;
  };

  void build_domain(Domain& d);

  SimConfig cfg_;
  ShardMap map_;
  std::vector<std::unique_ptr<Domain>> domains_;
  std::unique_ptr<Mailboxes> boxes_;  // nullptr when shards == 1
  std::vector<RemotePort> ports_;     // per shard; empty when shards == 1
  std::vector<Breakdown> breakdowns_;
  std::vector<std::unique_ptr<ThreadContext>> contexts_;
  std::vector<std::unique_ptr<Barrier>> barriers_;

  struct Spawned {
    ThreadTask task;
    bool done = false;
    std::exception_ptr error;
  };
  std::vector<std::unique_ptr<Spawned>> threads_;
};

/// Construct the version manager for `cfg.scheme` (defined in vm/factory.cpp).
std::unique_ptr<htm::VersionManager> make_version_manager(
    const SimConfig& cfg, mem::MemorySystem& mem);

}  // namespace suvtm::sim
