// Simulator facade: owns the scheduler, memory system, HTM system and one
// ThreadContext per core; runs spawned thread coroutines to completion.
#pragma once

#include <exception>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "common/types.hpp"
#include "htm/htm_system.hpp"
#include "mem/memory_system.hpp"
#include "obs/recorder.hpp"
#include "sim/barrier.hpp"
#include "sim/breakdown.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/thread_context.hpp"

namespace suvtm::sim {

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  const SimConfig& config() const { return cfg_; }
  Scheduler& scheduler() { return sched_; }
  mem::MemorySystem& mem() { return *mem_; }
  htm::HtmSystem& htm() { return *htm_; }
  ThreadContext& context(CoreId c) { return *contexts_[c]; }
  std::uint32_t num_cores() const { return cfg_.mem.num_cores; }
  /// The correctness checker, or nullptr when checking is compiled out or
  /// disabled (cfg.check.enabled, defaulted from the SUVTM_CHECK env var).
  check::Checker* checker() { return checker_.get(); }

  /// The observability recorder, or nullptr when the hooks are compiled out
  /// or cfg.obs asked for neither tracing nor metrics.
  obs::Recorder* recorder() { return recorder_.get(); }
  const obs::Recorder* recorder() const { return recorder_.get(); }

  /// Create a barrier owned by this simulator (lives until destruction).
  Barrier& make_barrier(std::uint32_t parties);

  /// Register a thread coroutine for core `c` (at most one per core).
  void spawn(CoreId c, ThreadTask task);

  /// Run until every spawned thread finishes. Throws if a thread escaped an
  /// exception or the cycle limit was exceeded.
  void run();

  /// Total simulated time (cycle of the last processed event).
  Cycle makespan() const { return sched_.now(); }

  const Breakdown& breakdown(CoreId c) const { return breakdowns_[c]; }
  Breakdown total_breakdown() const;

  /// Host-side word read that follows any live version-management
  /// redirection (SUV global entries). Use this -- not the raw backing
  /// store -- for post-run verification.
  std::uint64_t read_word_resolved(Addr a) {
    return mem_->load_word(htm_->vm().debug_resolve(kNoCore, a));
  }

 private:
  SimConfig cfg_;
  Scheduler sched_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<htm::HtmSystem> htm_;
  std::unique_ptr<check::Checker> checker_;
  std::unique_ptr<obs::Recorder> recorder_;
  std::vector<Breakdown> breakdowns_;
  std::vector<std::unique_ptr<ThreadContext>> contexts_;
  std::vector<std::unique_ptr<Barrier>> barriers_;

  struct Spawned {
    ThreadTask task;
    bool done = false;
    std::exception_ptr error;
  };
  std::vector<std::unique_ptr<Spawned>> threads_;
};

/// Construct the version manager for `cfg.scheme` (defined in vm/factory.cpp).
std::unique_ptr<htm::VersionManager> make_version_manager(
    const SimConfig& cfg, mem::MemorySystem& mem);

}  // namespace suvtm::sim
