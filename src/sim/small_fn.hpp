// SmallFn: a move-only `void()` callable with inline small-buffer storage.
//
// The event scheduler fires tens of millions of callbacks per simulation and
// nearly all of them are tiny coroutine resumptions (a handle, sometimes a
// `this` pointer and a flag -- 8..24 bytes). `std::function` pessimizes this
// hot path twice: it must be copyable (so popping a priority_queue copies the
// erased-type state) and its inline buffer is implementation-defined. SmallFn
// guarantees: no allocation for callables up to kInlineBytes, move-only
// semantics (so the heap can shuffle events with plain moves), and a single
// indirect call to invoke.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace suvtm::sim {

class SmallFn {
 public:
  /// Inline capacity. Sized for the largest scheduler lambda
  /// ([this, &aw, h] = 24 bytes) with headroom for test code that schedules
  /// a std::function or a fat capture; larger callables fall back to the
  /// heap transparently.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>, "SmallFn requires void()");
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      // Heap fallback: the buffer holds a single owning pointer.
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &heap_ops<D>;
    }
  }

  SmallFn(SmallFn&& o) noexcept : ops_(o.ops_) {
    if (ops_) relocate_from(o);
    o.ops_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      if (ops_ && !ops_->trivial) ops_->destroy(buf_);
      ops_ = o.ops_;
      if (ops_) relocate_from(o);
      o.ops_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() {
    if (ops_ && !ops_->trivial) ops_->destroy(buf_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->call(buf_); }

 private:
  struct Ops {
    void (*call)(void*);
    /// Move-construct into `dst` from `src`, then destroy `src`'s object.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    /// Trivially relocatable + trivially destructible: moves are a plain
    /// buffer copy and destruction is a no-op. The scheduler's hot lambdas
    /// (pointer/handle/int captures) all qualify, so the slot-pool park and
    /// dispatch moves skip the indirect relocate/destroy calls entirely.
    bool trivial;
  };

  void relocate_from(SmallFn& o) noexcept {
    if (ops_->trivial) {
      std::memcpy(buf_, o.buf_, kInlineBytes);
    } else {
      ops_->relocate(buf_, o.buf_);
    }
  }

  template <class D>
  static constexpr Ops inline_ops{
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>};

  template <class D>
  static constexpr Ops heap_ops{
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
      false};

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace suvtm::sim
