// Coroutine plumbing for simulated threads.
//
// A simulated thread is a C++20 coroutine. Workload code reads naturally --
//
//   sim::Task<void> worker(stamp::TxCtx& c) {
//     co_await c.tx([&](stamp::TxCtx& t) -> sim::Task<void> {
//       auto v = co_await t.load(addr);
//       co_await t.store(addr, v + 1);
//     });
//   }
//
// -- while every memory operation suspends the coroutine on the
// discrete-event scheduler and resumes it when the simulated access
// completes. Transaction aborts propagate as TxAbort exceptions through
// nested Task frames up to the retry loop.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

namespace suvtm::sim {

/// Thrown out of co_await when the enclosing hardware transaction aborts.
/// Caught by the transaction retry loop in the workload framework; workload
/// bodies never handle it directly.
struct TxAbort {};

template <class T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
};

}  // namespace detail

/// Lazy task: starts when first awaited; resumes the awaiter on completion
/// via symmetric transfer. Move-only; owns its coroutine frame.
template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::variant<std::monostate, T, std::exception_ptr> result;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { result.template emplace<1>(std::move(v)); }
    void unhandled_exception() {
      result.template emplace<2>(std::current_exception());
    }
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    h_.promise().continuation = awaiter;
    return h_;
  }
  T await_resume() {
    auto& r = h_.promise().result;
    if (r.index() == 2) std::rethrow_exception(std::get<2>(r));
    return std::move(std::get<1>(r));
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
  }
  std::coroutine_handle<promise_type> h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    std::exception_ptr error;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    h_.promise().continuation = awaiter;
    return h_;
  }
  void await_resume() {
    if (h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
  }
  std::coroutine_handle<promise_type> h_{};
};

/// Top-level coroutine for one simulated hardware thread. Created by the
/// Simulator, resumed by the scheduler; reports completion and any escaped
/// exception back through flags owned by the Simulator.
class ThreadTask {
 public:
  struct promise_type {
    bool* done = nullptr;
    std::exception_ptr* error_sink = nullptr;

    ThreadTask get_return_object() {
      return ThreadTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        if (h.promise().done) *h.promise().done = true;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      if (error_sink) *error_sink = std::current_exception();
    }
  };

  ThreadTask(ThreadTask&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  ThreadTask& operator=(ThreadTask&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  ThreadTask(const ThreadTask&) = delete;
  ThreadTask& operator=(const ThreadTask&) = delete;
  ~ThreadTask() {
    if (h_) h_.destroy();
  }

  /// Wire completion/error reporting, then hand the handle to the scheduler.
  std::coroutine_handle<> prepare(bool* done, std::exception_ptr* error_sink) {
    h_.promise().done = done;
    h_.promise().error_sink = error_sink;
    return h_;
  }

 private:
  explicit ThreadTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace suvtm::sim
