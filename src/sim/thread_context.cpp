#include "sim/thread_context.hpp"

#include <algorithm>
#include <cassert>

#include "check/check.hpp"
#include "htm/htm_system.hpp"
#include "obs/recorder.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard.hpp"

namespace suvtm::sim {

ThreadContext::ThreadContext(CoreId core, const SimConfig& cfg,
                             Scheduler& sched, mem::MemorySystem& mem,
                             htm::HtmSystem& htm, Breakdown& breakdown,
                             std::uint64_t rng_seed, check::Checker* checker,
                             obs::Recorder* obs, const RemotePort* port)
    : core_(core), cfg_(cfg), sched_(sched), mem_(mem), htm_(htm),
      breakdown_(breakdown), rng_(rng_seed), checker_(checker), obs_(obs),
      port_(port) {}

htm::Txn& ThreadContext::txn() { return htm_.txn(core_); }

bool ThreadContext::in_tx() const {
  return const_cast<ThreadContext*>(this)->txn().state ==
         htm::TxnState::kRunning;
}

void ThreadContext::start_abort(bool* aborted, std::coroutine_handle<> h) {
  htm::Txn& t = txn();
  assert(t.active());
  t.state = htm::TxnState::kAborting;
  // Undoomed paths reaching here are the nested-rollback fallback (partial
  // abort unsupported): tag them so the abort-cause attribution stays total.
  if (!t.doomed) t.doom_cause = htm::AbortCause::kNestingFallback;
  // An aborting transaction is not waiting on anyone: drop its wait-for
  // edge now so rollback time cannot fabricate phantom deadlock cycles.
  htm_.conflicts().clear_wait(core_);
  const Cycle cost = htm_.vm().abort_cost(t);
  breakdown_.add(Bucket::kAborting, cost);
  attempt_.settle_abort(breakdown_);
  ++htm_.stats().aborts;
  SUVTM_OBS_HOOK(obs_,
                 on_abort_window(core_, sched_.now(), cost, t.doom_cause));
  sched_.after(cost, [this, aborted, h] {
    htm::Txn& t2 = txn();
    if (t2.overflowed) ++htm_.stats().overflowed_attempts;
    htm_.vm().on_abort_done(t2);
    SUVTM_CHECK_HOOK(checker_, on_abort_done(core_));
    SUVTM_OBS_HOOK(obs_, on_txn_abort(core_, sched_.now()));
    htm_.conflicts().clear_wait(core_);
    t2.reset_attempt();  // timestamp survives: progress guarantee
    htm_.conflicts().set_isolation(core_, false);
    *aborted = true;
    h.resume();
  });
}

bool ThreadContext::issue_remote(MemAwaiter& aw, std::coroutine_handle<> h,
                                 std::uint32_t owner) {
  // The sharded-machine purity contract (sim/config.hpp PdesParams):
  // transactions, stores and RMWs stay shard-local; only non-transactional
  // loads may cross shards. Violations throw unconditionally -- a workload
  // declared for a sharded machine that breaks the contract would otherwise
  // silently read/write the wrong domain's memory image.
  if (in_tx() || aw.is_store || aw.rmw) {
    throw check::CheckFailure(
        "sharded-machine purity violation: only non-transactional loads may "
        "cross shards (core accessed a foreign shard's address from a "
        "transaction, store, or RMW)");
  }
  // The request leaves at the core's logical clock (scheduler time plus any
  // fast-path run-ahead); a cross-shard miss is a synchronization point.
  RemoteMsg m{core_, aw.addr, sched_.now() + skew_, h, &aw};
  skew_ = 0;
  port_->boxes->post(port_->shard, owner, m);
  return true;
}

bool ThreadContext::issue_mem(MemAwaiter& aw, std::coroutine_handle<> h) {
  if (port_ != nullptr) [[unlikely]] {
    const std::uint32_t owner = port_->map->shard_of_addr(aw.addr);
    if (owner != port_->shard) return issue_remote(aw, h, owner);
  }

  htm::Txn& t = txn();
  const bool tx = t.state == htm::TxnState::kRunning;

  if (tx && t.doomed) {
    start_abort(&aw.aborted, h);
    return true;
  }

  const LineAddr line = line_of(aw.addr);
  const bool lazy = tx && t.lazy;
  const bool exclusive = aw.is_store || aw.rmw;
  auto dec = htm_.conflicts().check(core_, line, exclusive, lazy,
                                    htm_.txn_view());
  if (dec.victim != kNoCore && dec.victim != core_) {
    htm_.doom(dec.victim, dec.victim_cause);
  }
  for (CoreId reader : dec.invalidated_lazy_readers) {
    htm_.doom(reader, htm::AbortCause::kLazyInvalidated);
  }
  if (dec.action == htm::ConflictManager::Action::kAbortSelf) {
    htm_.doom(core_, dec.victim_cause);
    start_abort(&aw.aborted, h);
    return true;
  }
  if (dec.action == htm::ConflictManager::Action::kStall) {
    const Cycle w = cfg_.htm.stall_retry_interval;
    if (tx) attempt_.add_stalled(w);
    else breakdown_.add(Bucket::kNoTrans, w);
    SUVTM_OBS_HOOK(obs_, on_stall(core_, sched_.now(), dec.holder, line, w));
    // A stall is a synchronization point: flush any fast-path run-ahead
    // into the retry delay. The coroutine is already suspended when the
    // retry fires, so a fast-path completion there resumes it directly.
    sched_.after(skew_ + w, [this, &aw, h] {
      if (!issue_mem(aw, h)) h.resume();
    });
    skew_ = 0;
    return true;
  }

  // Access granted: version-management bookkeeping, then the timed access.
  SUVTM_CHECK_HOOK(checker_,
                   on_access_granted(core_, line, exclusive, lazy));
  SUVTM_OBS_HOOK(obs_, on_access_granted(core_, sched_.now()));
  [[maybe_unused]] const Addr word =
      aw.addr & ~static_cast<Addr>(kWordBytes - 1);
  auto& vm = htm_.vm();
  Cycle extra = 0;
  Cycle extra_if_l1_hit = 0;
  Addr target = aw.addr;
  bool buffered_store = false;

  if (tx) {
    if (aw.is_store) {
      // The version manager sees the store *before* the write-set update so
      // it can distinguish the first store to a line (FasTM's old-line
      // writeback, SUV's entry allocation).
      const htm::StoreAction act = vm.on_tx_store(t, aw.addr);
      t.write_sig.add(line);
      if (t.write_lines.insert(line)) {
        htm_.conflicts().note_write(core_, line);
      }
      target = act.target;
      extra = act.extra;
      extra_if_l1_hit = act.extra_if_l1_hit;
      buffered_store = act.buffered;
    } else {
      t.read_sig.add(line);
      if (t.read_lines.insert(line)) {
        htm_.conflicts().note_read(core_, line);
      }
      if (aw.rmw) {
        // Claim exclusive ownership now; the upcoming store to this line
        // will not need a second coherence round or an upgrade.
        t.write_sig.add(line);
        if (t.write_lines.insert(line)) {
          htm_.conflicts().note_write(core_, line);
        }
      }
      // In-place schemes resolve every load to the identity action; skip
      // the virtual dispatch on this per-access path.
      if (!vm.loads_in_place()) {
        const htm::LoadAction act = vm.resolve_load(core_, &t, aw.addr);
        if (act.buffered) {
          // Served from the lazy redo buffer: an L1-speed private access.
          aw.value = *act.buffered;
          SUVTM_CHECK_HOOK(checker_,
                           on_read(core_, true, word, aw.value, sched_.now()));
          const Cycle lat = cfg_.mem.l1_latency + act.extra;
          attempt_.add_trans(lat);
          sched_.resume_after(lat, h);
          return true;
        }
        target = act.target;
        extra = act.extra;
        extra_if_l1_hit = act.extra_if_l1_hit;
      }
    }
  } else if (!vm.loads_in_place()) {
    const htm::LoadAction act = aw.is_store
                                    ? vm.resolve_nontx_store(core_, aw.addr)
                                    : vm.resolve_load(core_, nullptr, aw.addr);
    target = act.target;
    extra = act.extra;
    extra_if_l1_hit = act.extra_if_l1_hit;
  }

  if (buffered_store) {
    t.redo[aw.addr] = aw.store_value;
    SUVTM_CHECK_HOOK(
        checker_, on_write(core_, true, word, aw.store_value, sched_.now()));
    const Cycle lat = cfg_.mem.l1_latency + extra;
    attempt_.add_trans(lat);
    sched_.resume_after(lat, h);
    return true;
  }

  const mem::AccessOutcome out =
      mem_.access(core_, target, aw.is_store || aw.rmw);
  if (out.evicted_speculative && t.active()) {
    t.overflowed = true;
    vm.on_spec_eviction(t, out.evicted_line);
    SUVTM_OBS_HOOK(obs_, on_spec_eviction(core_, out.evicted_line));
  }

  if (aw.is_store) {
    mem_.store_word(target, aw.store_value);
    if (tx) mem_.mark_speculative(core_, line_of(target));
    SUVTM_CHECK_HOOK(
        checker_, on_write(core_, tx, word, aw.store_value, sched_.now()));
  } else {
    aw.value = mem_.load_word(target);
    SUVTM_CHECK_HOOK(checker_,
                     on_read(core_, tx, word, aw.value, sched_.now()));
  }

  // Table-probe cycles ride the coherence request on a data-cache miss
  // (SUV piggybacks redirection resolution); they only cost time on a hit.
  const Cycle lat = out.latency + extra + (out.l1_hit ? extra_if_l1_hit : 0);
  if (tx) {
    attempt_.add_trans(lat);
    sched_.resume_after(lat, h);
    return true;
  }
  breakdown_.add(Bucket::kNoTrans, lat);

  // Non-transactional fast path: a straight-line L1 hit holds no one up --
  // no coherence traffic, no conflict, no eviction -- so completing it
  // inline (await_suspend returns false) skips the scheduler round trip
  // entirely. The core runs up to fastpath_quantum cycles ahead (skew_);
  // every other path through this file flushes the skew back into its next
  // scheduled delay, so dispatch stays deterministic.
  const Cycle quantum = cfg_.fastpath_quantum;
  if (quantum != 0 && out.l1_hit && !out.evicted_speculative &&
      skew_ + lat <= quantum) {
    skew_ += lat;
    sched_.count_inline_event();
    return false;
  }
  sched_.resume_after(skew_ + lat, h);
  skew_ = 0;
  return true;
}

void ThreadContext::issue_begin(BeginAwaiter& aw, std::coroutine_handle<> h) {
  htm::Txn& t = txn();
  if (t.state == htm::TxnState::kRunning) {
    // Closed nesting: push a frame recording current transactional extent.
    ++t.depth;
    t.frames.push_back({t.undo.size(), t.read_sig.adds(), t.write_sig.adds(),
                        htm_.vm().nest_mark(t)});
    SUVTM_CHECK_HOOK(checker_, on_frame_push(core_));
    ++htm_.stats().nested_begins;
    attempt_.add_trans(cfg_.htm.checkpoint_latency);
    sched_.resume_after(cfg_.htm.checkpoint_latency, h);
    return;
  }
  assert(t.state == htm::TxnState::kIdle);
  t.state = htm::TxnState::kRunning;
  htm_.conflicts().set_isolation(core_, true);
  t.depth = 1;
  t.site = aw.site;
  if (!t.has_timestamp) {
    t.timestamp = (sched_.now() << 5) | core_;
    t.has_timestamp = true;
  }
  ++t.attempts;
  ++htm_.stats().begins;
  SUVTM_CHECK_HOOK(checker_, on_begin(core_, sched_.now()));
  SUVTM_OBS_HOOK(obs_, on_txn_begin(core_, sched_.now(), t.site, t.attempts));
  const Cycle cost = cfg_.htm.checkpoint_latency + htm_.vm().on_begin(t);
  attempt_.add_trans(cost);
  // Transaction boundaries synchronize the fast path: fold any run-ahead
  // into the begin latency so the body starts at the logically right cycle.
  sched_.resume_after(skew_ + cost, h);
  skew_ = 0;
}

void ThreadContext::issue_commit(CommitAwaiter& aw, std::coroutine_handle<> h) {
  htm::Txn& t = txn();
  assert(t.state == htm::TxnState::kRunning && "commit outside a transaction");

  if (t.doomed) {
    start_abort(&aw.aborted, h);
    return;
  }
  if (t.depth > 1) {
    // Closed-nested commit: merge into the parent (keep signatures/log).
    --t.depth;
    t.frames.pop_back();
    SUVTM_CHECK_HOOK(checker_, on_frame_pop(core_));
    attempt_.add_trans(1);
    sched_.resume_after(1, h);
    return;
  }
  if (t.lazy && !htm_.acquire_commit_token(core_)) {
    // Commit arbitration: one lazy committer at a time.
    const Cycle w = cfg_.htm.stall_retry_interval;
    breakdown_.add(Bucket::kCommitting, w);
    sched_.after(w, [this, &aw, h] { issue_commit(aw, h); });
    return;
  }
  if (!htm_.vm().commit_ready(t)) {
    // Lazy committer waiting out eager owners of its write set.
    if (t.lazy) htm_.release_commit_token(core_);
    const Cycle w = cfg_.htm.stall_retry_interval;
    breakdown_.add(Bucket::kCommitting, w);
    sched_.after(w, [this, &aw, h] { issue_commit(aw, h); });
    return;
  }

  t.state = htm::TxnState::kCommitting;
  htm_.conflicts().clear_wait(core_);  // a committer waits on no one
  SUVTM_CHECK_HOOK(checker_, on_commit_start(core_, sched_.now()));
  const Cycle cost = htm_.vm().commit_cost(t);
  breakdown_.add(Bucket::kCommitting, cost);
  SUVTM_OBS_HOOK(obs_, on_commit_window(core_, sched_.now(), cost));
  sched_.after(cost, [this, h] {
    htm::Txn& t2 = txn();
    if (t2.overflowed) ++htm_.stats().overflowed_attempts;
    htm_.vm().on_commit_done(t2);
    SUVTM_CHECK_HOOK(checker_,
                     on_commit_done(core_, sched_.now(), t2.lazy));
    SUVTM_OBS_HOOK(obs_,
                   on_txn_commit(core_, sched_.now(), t2.write_lines.size()));
    if (t2.lazy) htm_.release_commit_token(core_);
    htm_.conflicts().clear_wait(core_);
    attempt_.settle_commit(breakdown_);
    t2.reset_committed();
    htm_.conflicts().set_isolation(core_, false);
    ++htm_.stats().commits;
    h.resume();
  });
}

void ThreadContext::issue_rollback_inner(RollbackInnerAwaiter& aw,
                                         std::coroutine_handle<> h) {
  htm::Txn& t = txn();
  assert(t.state == htm::TxnState::kRunning && t.depth > 1 &&
         "tx_rollback_inner requires an open nested frame");
  if (t.doomed || !htm_.vm().supports_partial_abort(t)) {
    // Fall back to a full abort; the outer retry loop re-executes.
    start_abort(&aw.aborted, h);
    return;
  }
  const htm::NestFrame frame = t.frames.back();
  t.frames.pop_back();
  --t.depth;
  const Cycle cost = htm_.vm().partial_abort(t, frame.vm_mark);
  SUVTM_CHECK_HOOK(checker_, on_frame_rollback(core_));
  // The frame's work was wasted; the partial rollback holds isolation.
  breakdown_.add(Bucket::kAborting, cost);
  aw.rolled_back = true;
  sched_.resume_after(cost, h);
}

bool ThreadContext::issue_compute(ComputeAwaiter& aw,
                                  std::coroutine_handle<> h) {
  if (in_tx()) {
    attempt_.add_trans(aw.cycles);
    sched_.resume_after(aw.cycles, h);
    return true;
  }
  breakdown_.add(Bucket::kNoTrans, aw.cycles);
  // Short non-transactional compute joins the fast path: it touches no
  // shared state at all, so there is nothing to synchronize with.
  const Cycle quantum = cfg_.fastpath_quantum;
  if (quantum != 0 && skew_ + aw.cycles <= quantum) {
    skew_ += aw.cycles;
    sched_.count_inline_event();
    return false;
  }
  sched_.resume_after(skew_ + aw.cycles, h);
  skew_ = 0;
  return true;
}

void ThreadContext::issue_backoff(BackoffAwaiter&, std::coroutine_handle<> h) {
  const htm::Txn& t = txn();
  const auto& p = cfg_.htm;
  const unsigned shift =
      static_cast<unsigned>(std::min<std::uint64_t>(t.attempts, 10));
  const Cycle ceiling = std::min<Cycle>(p.backoff_cap, p.backoff_base << shift);
  const Cycle wait = rng_.range(p.backoff_base, std::max<Cycle>(p.backoff_base, ceiling));
  breakdown_.add(Bucket::kBackoff, wait);
  SUVTM_OBS_HOOK(obs_, on_backoff(core_, sched_.now(), wait));
  sched_.resume_after(skew_ + wait, h);
  skew_ = 0;
}

}  // namespace suvtm::sim
