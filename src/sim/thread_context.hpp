// ThreadContext: the per-core bridge between workload coroutines and the
// simulator. Every awaitable here suspends the calling coroutine on the
// event scheduler and resumes it when the simulated operation completes;
// transactional aborts surface as TxAbort exceptions from await_resume.
#pragma once

#include <coroutine>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"
#include "sim/barrier.hpp"
#include "sim/breakdown.hpp"
#include "sim/config.hpp"
#include "sim/task.hpp"

namespace suvtm::check {
class Checker;
}
namespace suvtm::htm {
class HtmSystem;
struct Txn;
}
namespace suvtm::mem {
class MemorySystem;
}

namespace suvtm::sim {

class Scheduler;
struct RemotePort;

class ThreadContext {
 public:
  /// `port` is non-null only on a sharded machine (sim/shard.hpp): it lets
  /// this core route non-transactional loads of foreign-shard addresses
  /// through the window-boundary mailboxes.
  ThreadContext(CoreId core, const SimConfig& cfg, Scheduler& sched,
                mem::MemorySystem& mem, htm::HtmSystem& htm,
                Breakdown& breakdown, std::uint64_t rng_seed,
                check::Checker* checker = nullptr,
                obs::Recorder* obs = nullptr,
                const RemotePort* port = nullptr);

  // ---- awaitables ----------------------------------------------------------

  struct MemAwaiter {
    ThreadContext& tc;
    Addr addr;
    std::uint64_t store_value;
    bool is_store;
    bool rmw = false;  // load with store intent (exclusive permission)
    std::uint64_t value = 0;
    bool aborted = false;

    bool await_ready() const noexcept { return false; }
    /// Returns false (continue without suspending) when the access completed
    /// on the non-transactional fast path -- see issue_mem.
    bool await_suspend(std::coroutine_handle<> h) {
      return tc.issue_mem(*this, h);
    }
    std::uint64_t await_resume() const {
      if (aborted) throw TxAbort{};
      return value;
    }
  };

  struct BeginAwaiter {
    ThreadContext& tc;
    std::uint32_t site;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { tc.issue_begin(*this, h); }
    void await_resume() const noexcept {}
  };

  struct CommitAwaiter {
    ThreadContext& tc;
    bool aborted = false;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { tc.issue_commit(*this, h); }
    void await_resume() const {
      if (aborted) throw TxAbort{};
    }
  };

  struct ComputeAwaiter {
    ThreadContext& tc;
    Cycle cycles;
    bool await_ready() const noexcept { return cycles == 0; }
    bool await_suspend(std::coroutine_handle<> h) {
      return tc.issue_compute(*this, h);
    }
    void await_resume() const noexcept {}
  };

  struct BackoffAwaiter {
    ThreadContext& tc;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { tc.issue_backoff(*this, h); }
    void await_resume() const noexcept {}
  };

  struct RollbackInnerAwaiter {
    ThreadContext& tc;
    bool aborted = false;    // fell back to a full abort
    bool rolled_back = false;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      tc.issue_rollback_inner(*this, h);
    }
    bool await_resume() const {
      if (aborted) throw TxAbort{};
      return rolled_back;
    }
  };

  struct BarrierAwaiter {
    ThreadContext& tc;
    Barrier::Waiter inner;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) { return inner.await_suspend(h); }
    void await_resume() const {
      tc.breakdown_.add(Bucket::kBarrier, inner.await_resume());
    }
  };

  /// Load the 64-bit word at `a` (transactional when inside tx()).
  MemAwaiter load(Addr a) { return {*this, a, 0, false}; }
  /// Load with store intent: takes exclusive coherence permission up front,
  /// the way compiled read-modify-write sequences do. Avoids the classic
  /// read-then-upgrade deadlock on hot words (queue heads, counters).
  MemAwaiter load_rmw(Addr a) { return {*this, a, 0, false, true}; }
  /// Store `v` to the 64-bit word at `a`.
  MemAwaiter store(Addr a, std::uint64_t v) { return {*this, a, v, true}; }
  /// Begin a transaction at static site `site` (nesting supported).
  BeginAwaiter tx_begin(std::uint32_t site = 0) { return {*this, site}; }
  /// Commit the innermost transaction.
  CommitAwaiter tx_commit() { return {*this}; }
  /// Burn `n` cycles of non-memory work.
  ComputeAwaiter compute(Cycle n) { return {*this, n}; }
  /// Post-abort randomized exponential backoff.
  BackoffAwaiter backoff() { return {*this}; }
  /// Partially abort the innermost nested frame (paper Section IV-C closed
  /// nesting): the frame's version state rolls back and the frame is
  /// popped, leaving the outer transaction running. Returns true on a
  /// partial rollback; throws TxAbort if the scheme cannot partially abort
  /// (DynTM lazy mode) or the transaction is already doomed -- the full
  /// retry loop handles those. Must be called at depth > 1.
  RollbackInnerAwaiter tx_rollback_inner() { return {*this}; }
  /// Wait at `b`; time is charged to the Barrier bucket. Any fast-path
  /// run-ahead is folded into the recorded arrival time: the core arrives
  /// in scheduler order, but its wait is measured from the cycle it
  /// logically reached the barrier (now + skew).
  BarrierAwaiter barrier(Barrier& b) {
    Barrier::Waiter w = b.arrive();
    w.arrived_at += skew_;
    skew_ = 0;
    return {*this, w};
  }

  CoreId core() const { return core_; }
  bool in_tx() const;
  Rng& rng() { return rng_; }
  Breakdown& breakdown() { return breakdown_; }

 private:
  friend struct MemAwaiter;
  friend struct BeginAwaiter;
  friend struct CommitAwaiter;
  friend struct ComputeAwaiter;
  friend struct BackoffAwaiter;
  friend struct RollbackInnerAwaiter;

  htm::Txn& txn();

  /// issue_mem/issue_compute return true when the coroutine suspended on
  /// the scheduler, false when the operation completed synchronously on the
  /// non-transactional fast path (the caller continues without a queue
  /// round trip, `skew_` cycles ahead of the scheduler clock).
  bool issue_mem(MemAwaiter& aw, std::coroutine_handle<> h);
  /// Foreign-shard access: post a RemoteMsg to the owner's mailbox (the
  /// merger replies at the next window boundary). Throws check::CheckFailure
  /// for anything but a non-transactional load -- the sharded-machine
  /// purity contract (sim/config.hpp PdesParams).
  bool issue_remote(MemAwaiter& aw, std::coroutine_handle<> h,
                    std::uint32_t owner);
  void issue_begin(BeginAwaiter& aw, std::coroutine_handle<> h);
  void issue_commit(CommitAwaiter& aw, std::coroutine_handle<> h);
  bool issue_compute(ComputeAwaiter& aw, std::coroutine_handle<> h);
  void issue_backoff(BackoffAwaiter& aw, std::coroutine_handle<> h);
  void issue_rollback_inner(RollbackInnerAwaiter& aw,
                            std::coroutine_handle<> h);

  /// Enter kAborting, pay the version manager's rollback cost while
  /// isolation is still held, then resume `h` with `*aborted` set.
  void start_abort(bool* aborted, std::coroutine_handle<> h);

  CoreId core_;
  const SimConfig& cfg_;
  Scheduler& sched_;
  mem::MemorySystem& mem_;
  htm::HtmSystem& htm_;
  Breakdown& breakdown_;
  AttemptAccount attempt_;
  Rng rng_;
  check::Checker* checker_;  // nullptr unless correctness checking is on
  obs::Recorder* obs_;       // nullptr unless tracing/metrics is on
  const RemotePort* port_;   // nullptr unless the machine is sharded
  /// Fast-path run-ahead: cycles this core has consumed beyond the
  /// scheduler clock without a queue round trip. Bounded by
  /// cfg.fastpath_quantum; folded into the next scheduled delay at every
  /// synchronization point (miss, stall, txn boundary, backoff, barrier).
  Cycle skew_ = 0;
};

}  // namespace suvtm::sim
