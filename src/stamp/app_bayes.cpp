// bayes -- STAMP's Bayesian network structure learner (paper Table IV:
// length 43K, HIGH contention). Few, very coarse transactions: scoring a
// candidate edge reads a large slice of the shared sufficient-statistics
// table plus two adjacency rows, then commits an adjacency update and score
// adjustments. Concurrent learners frequently touch overlapping rows.
#include <stdexcept>

#include "common/rng.hpp"
#include "stamp/apps.hpp"
#include "stamp/sim_alloc.hpp"

namespace suvtm::stamp {
namespace {

class Bayes final : public Workload {
 public:
  static constexpr std::uint64_t kVars = 48;

  const char* name() const override { return "bayes"; }
  bool high_contention() const override { return true; }

  void build(sim::Simulator& sim, const SuiteParams& p) override {
    threads_ = sim.num_cores();
    txns_per_thread_ = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(10.0 * p.scale));
    data_lines_ = std::max<std::uint64_t>(
        512, static_cast<std::uint64_t>(4096.0 * p.scale));
    seed_ = p.seed ^ 0x626179657ull;

    SimAllocator alloc;
    adjacency_ = alloc.alloc(kVars * kVars * kWordBytes, kLineBytes);
    scores_ = alloc.alloc_lines(kVars);
    data_ = alloc.alloc_lines(data_lines_);
    edges_added_addr_ = alloc.alloc_lines(threads_);

    auto& bs = sim.mem().backing();
    Rng rng(seed_);
    for (std::uint64_t i = 0; i < data_lines_ * kWordsPerLine; ++i) {
      bs.store(data_ + i * kWordBytes, rng.below(16));
    }

    bar_ = &sim.make_barrier(threads_);
    for (CoreId c = 0; c < threads_; ++c) {
      sim.spawn(c, worker(sim.context(c)));
    }
  }

  void verify(sim::Simulator& sim) override {
    std::uint64_t edges = 0;
    for (std::uint64_t i = 0; i < kVars * kVars; ++i) {
      edges += sim.read_word_resolved(adjacency_ + i * kWordBytes) != 0 ? 1 : 0;
    }
    std::uint64_t reported = 0;
    for (std::uint32_t c = 0; c < threads_; ++c) {
      reported +=
          sim.read_word_resolved(edges_added_addr_ + static_cast<Addr>(c) * kLineBytes);
    }
    if (edges != reported) {
      throw std::runtime_error("bayes: adjacency edges != reported additions");
    }
  }

 private:
  sim::ThreadTask worker(sim::ThreadContext& tc) {
    const CoreId c = tc.core();
    Rng rng(seed_ + 17 * (c + 1));
    const Addr my_edges =
        edges_added_addr_ + static_cast<Addr>(c) * kLineBytes;
    co_await tc.barrier(*bar_);

    for (std::uint64_t i = 0; i < txns_per_thread_; ++i) {
      const std::uint64_t a = rng.below(kVars);
      const std::uint64_t b = (a + 1 + rng.below(kVars - 1)) % kVars;
      const bool huge = rng.chance(0.08);
      const std::uint64_t scan_lines = huge ? 620 : 128;
      const std::uint64_t scan_start = rng.below(data_lines_);
      co_await tc.compute(400);  // candidate generation

      co_await atomically(tc, /*site=*/1,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        // Score the candidate edge against the sufficient statistics.
        std::uint64_t score = 0;
        for (std::uint64_t l = 0; l < scan_lines; ++l) {
          const std::uint64_t line = (scan_start + l) % data_lines_;
          score += co_await t.load(data_ + line * kLineBytes);
          if ((l & 7) == 7) co_await t.compute(8);
        }
        // Read both adjacency rows (parent-set consistency check).
        for (std::uint64_t v = 0; v < kVars; v += kWordsPerLine) {
          score += co_await t.load(row(a) + v * kWordBytes);
          score += co_await t.load(row(b) + v * kWordBytes);
        }
        const Addr cell = row(a) + b * kWordBytes;
        const std::uint64_t existing = co_await t.load(cell);
        if (existing == 0) {
          co_await t.store(cell, 1 + (score % 7));
          // Update both endpoints' score lines plus a scatter of writes
          // (the huge case models a reparenting cascade).
          const std::uint64_t writes = huge ? 520 : 12;
          for (std::uint64_t w = 0; w < writes; ++w) {
            const std::uint64_t line = (scan_start + w * 3) % data_lines_;
            const Addr sa = data_ + line * kLineBytes + 7 * kWordBytes;
            const std::uint64_t v = co_await t.load(sa);
            co_await t.store(sa, v);  // recompute-in-place statistic
          }
          const std::uint64_t sa = co_await t.load(scores_ + a * kLineBytes);
          co_await t.store(scores_ + a * kLineBytes, sa + score % 13);
          const std::uint64_t sb = co_await t.load(scores_ + b * kLineBytes);
          co_await t.store(scores_ + b * kLineBytes, sb + score % 11);
          const std::uint64_t n = co_await t.load(my_edges);
          co_await t.store(my_edges, n + 1);
        }
      });
    }
    co_await tc.barrier(*bar_);
  }

  Addr row(std::uint64_t v) const {
    return adjacency_ + v * kVars * kWordBytes;
  }

  std::uint32_t threads_ = 0;
  std::uint64_t txns_per_thread_ = 0;
  std::uint64_t data_lines_ = 0;
  std::uint64_t seed_ = 0;
  Addr adjacency_ = 0;
  Addr scores_ = 0;
  Addr data_ = 0;
  Addr edges_added_addr_ = 0;
  sim::Barrier* bar_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_bayes() { return std::make_unique<Bayes>(); }

}  // namespace suvtm::stamp
