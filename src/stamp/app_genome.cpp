// genome -- STAMP's gene sequencing (paper Table IV: length 1.7K, HIGH
// contention). Phase 1 deduplicates DNA segments through a shared hash set;
// phase 2 links unique segments into per-bucket sorted chains whose
// traversals build large read sets that overlap across threads.
#include <stdexcept>
#include <unordered_set>

#include "common/rng.hpp"
#include "stamp/apps.hpp"
#include "stamp/sim_alloc.hpp"
#include "stamp/sim_ds.hpp"

namespace suvtm::stamp {
namespace {

class Genome final : public Workload {
 public:
  static constexpr std::uint32_t kChains = 16;

  const char* name() const override { return "genome"; }
  bool high_contention() const override { return true; }

  void build(sim::Simulator& sim, const SuiteParams& p) override {
    threads_ = sim.num_cores();
    segments_per_thread_ = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(192.0 * p.scale));
    distinct_ = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(1024.0 * p.scale));
    seed_ = p.seed ^ 0x67656e6full;

    SimAllocator alloc;
    // Deliberately few buckets: long chains create overlapping read sets.
    // Aborted attempts leak arena nodes by design (DESIGN.md): size with
    // a large slack factor -- unwritten sim pages cost no host memory.
    dedup_ = SimHashMap(alloc, 128, segments_per_thread_ * 256 + 16, threads_,
                        /*padded_buckets=*/true);
    for (auto& chain : chains_) {
      chain = SimSortedList(alloc, distinct_ * 64 + 16, threads_);
    }
    done_keys_.resize(threads_);

    bar_ = &sim.make_barrier(threads_);
    for (CoreId c = 0; c < threads_; ++c) {
      sim.spawn(c, worker(sim.context(c)));
    }
  }

  void verify(sim::Simulator& sim) override {
    const auto load = [&](Addr a) { return sim.read_word_resolved(a); };
    // Every distinct inserted key must be in the dedup map exactly once,
    // and in its chain.
    std::unordered_set<std::uint64_t> all;
    for (auto& v : done_keys_) all.insert(v.begin(), v.end());
    // lint: allow(nondet-iteration): membership-only sweep -- every key is
    // checked, the failure message names no key, so order cannot show
    for (std::uint64_t key : all) {
      if (!dedup_.peek(load, key)) {
        throw std::runtime_error("genome: deduplicated segment lost");
      }
    }
    if (inserted_unique_ != all.size()) {
      throw std::runtime_error(
          "genome: duplicate segments slipped through isolation");
    }
  }

 private:
  sim::ThreadTask worker(sim::ThreadContext& tc) {
    const CoreId c = tc.core();
    Rng rng(seed_ + c);
    co_await tc.barrier(*bar_);

    // Phase 1: segment deduplication through the shared hash set.
    std::vector<std::uint64_t> mine;
    for (std::uint64_t i = 0; i < segments_per_thread_; ++i) {
      const std::uint64_t key = 1 + rng.below(distinct_);
      bool fresh = false;
      co_await atomically(tc, /*site=*/1,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        fresh = co_await dedup_.insert(t, key, c + 1);
      });
      if (fresh) {
        mine.push_back(key);
        ++inserted_unique_;
      }
      co_await tc.compute(90);  // segment hashing
    }
    done_keys_[c] = mine;
    co_await tc.barrier(*bar_);

    // Phase 2: chain the unique segments into sorted overlap lists. The
    // traversal reads every earlier node, so transactions grow and clash.
    for (std::uint64_t key : mine) {
      co_await atomically(tc, /*site=*/2,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        co_await chains_[key % kChains].insert(t, key);
      });
      co_await tc.compute(60);  // overlap matching
    }
    co_await tc.barrier(*bar_);
  }

  std::uint32_t threads_ = 0;
  std::uint64_t segments_per_thread_ = 0;
  std::uint64_t distinct_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t inserted_unique_ = 0;
  SimHashMap dedup_;
  SimSortedList chains_[kChains];
  std::vector<std::vector<std::uint64_t>> done_keys_;
  sim::Barrier* bar_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_genome() { return std::make_unique<Genome>(); }

}  // namespace suvtm::stamp
