// intruder -- STAMP's network intrusion detection (paper Table IV: length
// 237, HIGH contention). Packets are pulled off one shared capture queue
// (the classic hot spot), fragments are reassembled in a shared map, and a
// completed flow is removed and counted as scanned.
#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "stamp/apps.hpp"
#include "stamp/sim_alloc.hpp"
#include "stamp/sim_ds.hpp"

namespace suvtm::stamp {
namespace {

class Intruder final : public Workload {
 public:
  static constexpr std::uint32_t kFragmentsPerFlow = 4;

  const char* name() const override { return "intruder"; }
  bool high_contention() const override { return true; }

  void build(sim::Simulator& sim, const SuiteParams& p) override {
    threads_ = sim.num_cores();
    flows_ = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(512.0 * p.scale));
    const std::uint64_t packets = flows_ * kFragmentsPerFlow;

    SimAllocator alloc;
    queue_ = SimQueue(alloc, packets + 16);
    // Sized with slack: aborted attempts leak arena nodes (DESIGN.md).
    fragments_ = SimHashMap(alloc, 256, flows_ * 128 + 16, threads_);
    detected_ = alloc.alloc_lines(threads_);

    // Preload the capture queue with an interleaved packet stream
    // (packet = flow_id * 8 + fragment_index + 1).
    seed_ = p.seed ^ 0x696e74ull;
    auto& bs = sim.mem().backing();
    Rng rng(seed_);
    std::vector<std::uint64_t> stream;
    stream.reserve(packets);
    for (std::uint64_t f = 0; f < flows_; ++f) {
      for (std::uint32_t i = 0; i < kFragmentsPerFlow; ++i) {
        stream.push_back(f * 8 + i + 1);
      }
    }
    // Shuffle within a sliding window: fragments of one flow stay close in
    // the stream (as in real capture traces), so different threads handle
    // them concurrently and contend on the flow's reassembly state.
    constexpr std::uint64_t kWindow = 32;
    for (std::uint64_t w = 0; w + 1 < stream.size(); w += kWindow) {
      const std::uint64_t end = std::min(w + kWindow, stream.size());
      for (std::uint64_t i = end - w; i > 1; --i) {
        std::swap(stream[w + i - 1], stream[w + rng.below(i)]);
      }
    }
    queue_.preload(bs, stream);

    bar_ = &sim.make_barrier(threads_);
    for (CoreId c = 0; c < threads_; ++c) {
      sim.spawn(c, worker(sim.context(c)));
    }
  }

  void verify(sim::Simulator& sim) override {
    std::uint64_t detected = 0;
    for (std::uint32_t c = 0; c < threads_; ++c) {
      detected += sim.read_word_resolved(detected_ + static_cast<Addr>(c) * kLineBytes);
    }
    if (detected != flows_) {
      throw std::runtime_error("intruder: detected flows != total flows");
    }
  }

 private:
  sim::ThreadTask worker(sim::ThreadContext& tc) {
    co_await tc.barrier(*bar_);
    Rng rng(seed_ + tc.core());
    const Addr my_detected =
        detected_ + static_cast<Addr>(tc.core()) * kLineBytes;
    for (;;) {
      // Capture: pop one packet from the shared queue (hot head counter).
      std::optional<std::uint64_t> pkt;
      co_await atomically(tc, /*site=*/1,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        pkt = co_await queue_.pop(t);
      });
      if (!pkt) break;  // stream drained
      const std::uint64_t flow = (*pkt - 1) / 8;
      co_await tc.compute(120 + rng.below(60));  // decode the fragment

      // Reassembly + detection: bump the flow's fragment count; the thread
      // that completes the flow removes it and scans it.
      bool completed = false;
      co_await atomically(tc, /*site=*/2,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        completed = false;
        const auto count = co_await fragments_.find(t, flow + 1);
        if (!count) {
          co_await fragments_.insert(t, flow + 1, 1);
        } else if (*count + 1 == kFragmentsPerFlow) {
          co_await fragments_.erase(t, flow + 1);
          completed = true;
        } else {
          co_await fragments_.update(t, flow + 1, *count + 1);
        }
      });
      if (completed) {
        co_await tc.compute(250 + rng.below(100));  // signature scan of the flow
        co_await atomically(tc, /*site=*/3,
                            [&](sim::ThreadContext& t) -> sim::Task<void> {
          const std::uint64_t n = co_await t.load(my_detected);
          co_await t.store(my_detected, n + 1);
        });
      }
    }
    co_await tc.barrier(*bar_);
  }

  std::uint32_t threads_ = 0;
  std::uint64_t flows_ = 0;
  std::uint64_t seed_ = 0;
  SimQueue queue_;
  SimHashMap fragments_;
  Addr detected_ = 0;
  sim::Barrier* bar_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_intruder() {
  return std::make_unique<Intruder>();
}

}  // namespace suvtm::stamp
