// kmeans -- STAMP's clustering kernel (paper Table IV: length 106, LOW
// contention). Threads scan their share of the points non-transactionally,
// then update the chosen cluster's accumulator in a short transaction.
#include <stdexcept>

#include "common/rng.hpp"
#include "stamp/apps.hpp"
#include "stamp/sim_alloc.hpp"

namespace suvtm::stamp {
namespace {

class Kmeans final : public Workload {
 public:
  static constexpr std::uint32_t kClusters = 40;
  static constexpr std::uint32_t kDims = 8;
  static constexpr std::uint32_t kIters = 3;

  const char* name() const override { return "kmeans"; }
  bool high_contention() const override { return false; }

  void build(sim::Simulator& sim, const SuiteParams& p) override {
    threads_ = sim.num_cores();
    points_per_thread_ = std::max<std::uint64_t>(
        8, static_cast<std::uint64_t>(128.0 * p.scale));

    SimAllocator alloc;
    // Two lines per cluster accumulator: kDims partial sums + a count.
    accum_ = alloc.alloc_lines(kClusters * 2);
    points_ = alloc.alloc(
        threads_ * points_per_thread_ * kDims * kWordBytes, kLineBytes);

    Rng rng(p.seed ^ 0x6b6d65616e73ull);
    auto& bs = sim.mem().backing();
    for (std::uint64_t i = 0; i < threads_ * points_per_thread_ * kDims; ++i) {
      bs.store(points_ + i * kWordBytes, rng.below(1000));
    }

    bar_ = &sim.make_barrier(threads_);
    for (CoreId c = 0; c < threads_; ++c) {
      sim.spawn(c, worker(sim.context(c)));
    }
  }

  void verify(sim::Simulator& sim) override {
    std::uint64_t total = 0;
    for (std::uint32_t cl = 0; cl < kClusters; ++cl) {
      total += sim.read_word_resolved(cluster_base(cl) + kDims * kWordBytes);
    }
    const std::uint64_t expected = threads_ * points_per_thread_ * kIters;
    if (total != expected) {
      throw std::runtime_error("kmeans: accumulator counts lost updates");
    }
  }

 private:
  Addr cluster_base(std::uint32_t cl) const {
    return accum_ + static_cast<Addr>(cl) * 2 * kLineBytes;
  }

  sim::ThreadTask worker(sim::ThreadContext& tc) {
    const CoreId c = tc.core();
    for (std::uint32_t it = 0; it < kIters; ++it) {
      co_await tc.barrier(*bar_);
      for (std::uint64_t i = 0; i < points_per_thread_; ++i) {
        const Addr pt =
            points_ +
            (static_cast<Addr>(c) * points_per_thread_ + i) * kDims * kWordBytes;
        // Distance computation: non-transactional reads plus compute.
        std::uint64_t sum = 0;
        for (std::uint32_t d = 0; d < kDims; ++d) {
          sum += co_await tc.load(pt + d * kWordBytes);
        }
        co_await tc.compute(kClusters * kDims * 2);  // distance to all centers
        const std::uint32_t cl =
            static_cast<std::uint32_t>((sum + it * 7) % kClusters);

        co_await atomically(tc, /*site=*/1,
                            [&](sim::ThreadContext& t) -> sim::Task<void> {
          const Addr base = cluster_base(cl);
          for (std::uint32_t d = 0; d < kDims; ++d) {
            const std::uint64_t v = co_await t.load(base + d * kWordBytes);
            co_await t.store(base + d * kWordBytes, v + (sum % 97));
          }
          const std::uint64_t n =
              co_await t.load(base + kDims * kWordBytes);
          co_await t.store(base + kDims * kWordBytes, n + 1);
        });
      }
    }
    co_await tc.barrier(*bar_);
  }

  std::uint32_t threads_ = 0;
  std::uint64_t points_per_thread_ = 0;
  Addr accum_ = 0;
  Addr points_ = 0;
  sim::Barrier* bar_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_kmeans() { return std::make_unique<Kmeans>(); }

}  // namespace suvtm::stamp
