// labyrinth -- STAMP's maze router (paper Table IV: length 317K, HIGH
// contention; the coarsest-grained application). Each transaction claims an
// entire path of grid cells: hundreds of reads and writes, so write sets
// routinely exceed the L1 (FasTM degenerates) and occasionally exceed the
// 512-entry first-level redirect table (Table V's rare SUV overflow).
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "stamp/apps.hpp"
#include "stamp/sim_alloc.hpp"

namespace suvtm::stamp {
namespace {

class Labyrinth final : public Workload {
 public:
  const char* name() const override { return "labyrinth"; }
  bool high_contention() const override { return true; }

  void build(sim::Simulator& sim, const SuiteParams& p) override {
    threads_ = sim.num_cores();
    cells_ = std::max<std::uint64_t>(
        2048, static_cast<std::uint64_t>(12288.0 * p.scale));
    paths_per_thread_ = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(8.0 * p.scale));
    seed_ = p.seed ^ 0x6c616279ull;

    SimAllocator alloc;
    grid_ = alloc.alloc(cells_ * kWordBytes, kLineBytes);
    claimed_ = alloc.alloc_lines(threads_);

    bar_ = &sim.make_barrier(threads_);
    for (CoreId c = 0; c < threads_; ++c) {
      sim.spawn(c, worker(sim.context(c)));
    }
  }

  void verify(sim::Simulator& sim) override {
    std::uint64_t grid_claimed = 0;
    for (std::uint64_t i = 0; i < cells_; ++i) {
      if (sim.read_word_resolved(grid_ + i * kWordBytes) != 0) ++grid_claimed;
    }
    std::uint64_t reported = 0;
    for (std::uint32_t c = 0; c < threads_; ++c) {
      reported += sim.read_word_resolved(claimed_ + static_cast<Addr>(c) * kLineBytes);
    }
    // Isolation guarantees each cell is claimed exactly once: the per-thread
    // claim counters must equal the number of non-zero grid cells.
    if (grid_claimed != reported) {
      throw std::runtime_error("labyrinth: double-claimed grid cells");
    }
  }

 private:
  /// Build a candidate path: mostly a dense random walk (neighbouring cells
  /// share lines); a 5% minority are "global" routes that stride a full
  /// line per cell and run long enough to overflow the redirect table.
  std::vector<std::uint64_t> make_path(Rng& rng) const {
    std::vector<std::uint64_t> path;
    const bool mega = rng.chance(0.05);
    const std::uint64_t len = mega ? 640 + rng.below(128)
                                   : 48 + rng.below(64);
    const std::uint64_t stride = mega ? kWordsPerLine : 1;
    std::uint64_t pos = rng.below(cells_);
    path.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
      path.push_back(pos);
      const std::uint64_t step =
          stride * (1 + rng.below(3));  // forward-biased walk
      pos = (pos + step) % cells_;
    }
    return path;
  }

  sim::ThreadTask worker(sim::ThreadContext& tc) {
    const CoreId c = tc.core();
    Rng rng(seed_ + c);
    const Addr my_claimed = claimed_ + static_cast<Addr>(c) * kLineBytes;
    co_await tc.barrier(*bar_);

    for (std::uint64_t pidx = 0; pidx < paths_per_thread_; ++pidx) {
      const auto path = make_path(rng);
      const std::uint64_t path_id = (c + 1) * 1000 + pidx + 1;
      co_await tc.compute(200);  // route planning (grid copy in STAMP)

      co_await atomically(tc, /*site=*/1,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        std::uint64_t claimed_now = 0;
        for (std::uint64_t cell : path) {
          const Addr a = grid_ + cell * kWordBytes;
          const std::uint64_t owner = co_await t.load(a);
          if (owner != 0) continue;  // occupied: route around it
          co_await t.store(a, path_id);
          ++claimed_now;
        }
        const std::uint64_t n = co_await t.load(my_claimed);
        co_await t.store(my_claimed, n + claimed_now);
      });
    }
    co_await tc.barrier(*bar_);
  }

  std::uint32_t threads_ = 0;
  std::uint64_t cells_ = 0;
  std::uint64_t paths_per_thread_ = 0;
  std::uint64_t seed_ = 0;
  Addr grid_ = 0;
  Addr claimed_ = 0;
  sim::Barrier* bar_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_labyrinth() {
  return std::make_unique<Labyrinth>();
}

}  // namespace suvtm::stamp
