// ssca2 -- STAMP's graph kernel (paper Table IV: length 21, LOW contention).
// Tiny transactions append an edge to a node's adjacency slot set; with a
// large node count two threads rarely touch the same node.
#include <stdexcept>

#include "common/rng.hpp"
#include "stamp/apps.hpp"
#include "stamp/sim_alloc.hpp"

namespace suvtm::stamp {
namespace {

class Ssca2 final : public Workload {
 public:
  static constexpr std::uint32_t kMaxDegree = 7;  // degree word + 7 slots/line

  const char* name() const override { return "ssca2"; }
  bool high_contention() const override { return false; }

  void build(sim::Simulator& sim, const SuiteParams& p) override {
    threads_ = sim.num_cores();
    nodes_ = std::max<std::uint64_t>(
        1024, static_cast<std::uint64_t>(8192.0 * p.scale));
    edges_per_thread_ = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(256.0 * p.scale));
    seed_ = p.seed ^ 0x7373636132ull;

    SimAllocator alloc;
    // One line per node: [degree][slot0..slot6].
    graph_ = alloc.alloc_lines(nodes_);

    bar_ = &sim.make_barrier(threads_);
    for (CoreId c = 0; c < threads_; ++c) {
      sim.spawn(c, worker(sim.context(c)));
    }
  }

  void verify(sim::Simulator& sim) override {
    std::uint64_t total_degree = 0;
    for (std::uint64_t n = 0; n < nodes_; ++n) {
      total_degree += sim.read_word_resolved(graph_ + n * kLineBytes);
    }
    if (total_degree != edges_added_) {
      throw std::runtime_error("ssca2: degree sum != edges added");
    }
  }

 private:
  sim::ThreadTask worker(sim::ThreadContext& tc) {
    co_await tc.barrier(*bar_);
    Rng rng(seed_ + tc.core());
    for (std::uint64_t i = 0; i < edges_per_thread_; ++i) {
      const std::uint64_t u = rng.below(nodes_);
      const std::uint64_t v = rng.below(nodes_);
      co_await tc.compute(4);
      bool added = false;
      co_await atomically(tc, /*site=*/1,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        added = false;
        const Addr node = graph_ + u * kLineBytes;
        const std::uint64_t deg = co_await t.load(node);
        if (deg < kMaxDegree) {
          co_await t.store(node + (1 + deg) * kWordBytes, v + 1);
          co_await t.store(node, deg + 1);
          added = true;
        }
      });
      if (added) ++edges_added_;
    }
    co_await tc.barrier(*bar_);
  }

  std::uint32_t threads_ = 0;
  std::uint64_t nodes_ = 0;
  std::uint64_t edges_per_thread_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t edges_added_ = 0;  // host-side ground truth
  Addr graph_ = 0;
  sim::Barrier* bar_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_ssca2() { return std::make_unique<Ssca2>(); }

}  // namespace suvtm::stamp
