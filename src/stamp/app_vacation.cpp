// vacation -- STAMP's travel reservation system (paper Table IV: length
// 2.1K, LOW contention). Each client transaction queries several resource
// tables (flights, rooms, cars) and reserves the cheapest available,
// updating the customer's record. Tables are large, so conflicts are rare.
#include <stdexcept>

#include "common/rng.hpp"
#include "stamp/apps.hpp"
#include "stamp/sim_alloc.hpp"
#include "stamp/sim_ds.hpp"

namespace suvtm::stamp {
namespace {

class Vacation final : public Workload {
 public:
  static constexpr std::uint32_t kTables = 3;  // flights, rooms, cars
  static constexpr std::uint64_t kInitialCapacity = 100;
  static constexpr std::uint32_t kQueriesPerTask = 8;

  const char* name() const override { return "vacation"; }
  bool high_contention() const override { return false; }

  void build(sim::Simulator& sim, const SuiteParams& p) override {
    threads_ = sim.num_cores();
    relations_ = std::max<std::uint64_t>(
        256, static_cast<std::uint64_t>(4096.0 * p.scale));
    tasks_per_thread_ = std::max<std::uint64_t>(
        8, static_cast<std::uint64_t>(64.0 * p.scale));
    seed_ = p.seed ^ 0x766163ull;

    SimAllocator alloc;
    auto& bs = sim.mem().backing();
    for (std::uint32_t t = 0; t < kTables; ++t) {
      tables_[t] = SimHashMap(alloc, relations_ / 2, relations_ + 16, threads_);
      for (std::uint64_t r = 1; r <= relations_; ++r) {
        tables_[t].preload(bs, r, kInitialCapacity);
      }
    }
    // Sized with slack: aborted attempts leak arena nodes (DESIGN.md).
    customers_ = SimHashMap(alloc, relations_ / 2,
                            tasks_per_thread_ * 256 + 16, threads_);
    // One reservation counter line per thread.
    counters_ = alloc.alloc_lines(threads_);

    bar_ = &sim.make_barrier(threads_);
    for (CoreId c = 0; c < threads_; ++c) {
      sim.spawn(c, worker(sim.context(c)));
    }
  }

  void verify(sim::Simulator& sim) override {
    const auto load = [&](Addr a) { return sim.read_word_resolved(a); };
    // Conservation: capacity removed from the tables equals the successful
    // reservations recorded per thread.
    std::uint64_t reserved = 0;
    for (std::uint32_t c = 0; c < threads_; ++c) {
      reserved += load(counters_ + static_cast<Addr>(c) * kLineBytes);
    }
    std::uint64_t removed = 0;
    for (std::uint32_t t = 0; t < kTables; ++t) {
      for (std::uint64_t r = 1; r <= relations_; ++r) {
        const auto v = tables_[t].peek(load, r);
        if (!v) throw std::runtime_error("vacation: relation disappeared");
        removed += kInitialCapacity - *v;
      }
    }
    if (removed != reserved) {
      throw std::runtime_error("vacation: capacity leak (isolation broken)");
    }
  }

 private:
  sim::ThreadTask worker(sim::ThreadContext& tc) {
    co_await tc.barrier(*bar_);
    const CoreId c = tc.core();
    Rng rng(seed_ + c);
    const Addr my_counter = counters_ + static_cast<Addr>(c) * kLineBytes;

    for (std::uint64_t task = 0; task < tasks_per_thread_; ++task) {
      // Choose the resources to query before the transaction (STAMP builds
      // the task description up front).
      std::uint64_t ids[kQueriesPerTask];
      std::uint32_t tabs[kQueriesPerTask];
      for (std::uint32_t q = 0; q < kQueriesPerTask; ++q) {
        ids[q] = 1 + rng.below(relations_);
        tabs[q] = static_cast<std::uint32_t>(rng.below(kTables));
      }
      const std::uint64_t customer = 1 + rng.below(relations_);

      co_await atomically(tc, /*site=*/1,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        // Query phase: find the best available resource per table.
        std::uint64_t best_id = 0;
        std::uint32_t best_tab = 0;
        std::uint64_t best_avail = 0;
        for (std::uint32_t q = 0; q < kQueriesPerTask; ++q) {
          const auto avail = co_await tables_[tabs[q]].find(t, ids[q]);
          co_await t.compute(6);
          if (avail && *avail > best_avail) {
            best_avail = *avail;
            best_id = ids[q];
            best_tab = tabs[q];
          }
        }
        if (best_avail == 0) co_return;  // nothing available
        // Reserve: decrement capacity, record with the customer.
        co_await tables_[best_tab].update(t, best_id, best_avail - 1);
        co_await customers_.insert(t, (customer << 20) ^ (task << 4) ^ (c + 1),
                                   best_id);
        const std::uint64_t n = co_await t.load(my_counter);
        co_await t.store(my_counter, n + 1);
      });
      co_await tc.compute(20);
    }
    co_await tc.barrier(*bar_);
  }

  std::uint32_t threads_ = 0;
  std::uint64_t relations_ = 0;
  std::uint64_t tasks_per_thread_ = 0;
  std::uint64_t seed_ = 0;
  SimHashMap tables_[kTables];
  SimHashMap customers_;
  Addr counters_ = 0;
  sim::Barrier* bar_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_vacation() {
  return std::make_unique<Vacation>();
}

}  // namespace suvtm::stamp
