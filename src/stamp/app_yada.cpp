// yada -- STAMP's Delaunay mesh refinement (paper Table IV: length 6.8K,
// HIGH contention). A transaction retriangulates the cavity around a bad
// triangle: a medium-sized read neighbourhood, a dozen-line rewrite, and
// occasional very large cavities. Cavities overlap across threads.
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "stamp/apps.hpp"
#include "stamp/sim_alloc.hpp"

namespace suvtm::stamp {
namespace {

class Yada final : public Workload {
 public:
  const char* name() const override { return "yada"; }
  bool high_contention() const override { return true; }

  void build(sim::Simulator& sim, const SuiteParams& p) override {
    threads_ = sim.num_cores();
    triangles_ = std::max<std::uint64_t>(
        512, static_cast<std::uint64_t>(4096.0 * p.scale));
    work_per_thread_ = std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(24.0 * p.scale));
    seed_ = p.seed ^ 0x79616461ull;

    SimAllocator alloc;
    mesh_ = alloc.alloc_lines(triangles_);  // one line-sized record each
    processed_ = alloc.alloc_lines(threads_);

    bar_ = &sim.make_barrier(threads_);
    for (CoreId c = 0; c < threads_; ++c) {
      sim.spawn(c, worker(sim.context(c)));
    }
  }

  void verify(sim::Simulator& sim) override {
    std::uint64_t processed = 0;
    for (std::uint32_t c = 0; c < threads_; ++c) {
      processed += sim.read_word_resolved(processed_ + static_cast<Addr>(c) * kLineBytes);
    }
    if (processed != threads_ * work_per_thread_) {
      throw std::runtime_error("yada: refinement work count mismatch");
    }
    // Every refined triangle's generation counter must match its refine
    // count word (written together in one transaction).
    for (std::uint64_t t = 0; t < triangles_; ++t) {
      const Addr rec = mesh_ + t * kLineBytes;
      if (sim.read_word_resolved(rec) != sim.read_word_resolved(rec + kWordBytes)) {
        throw std::runtime_error("yada: torn triangle record");
      }
    }
  }

 private:
  sim::ThreadTask worker(sim::ThreadContext& tc) {
    const CoreId c = tc.core();
    Rng rng(seed_ + c);
    const Addr my_processed = processed_ + static_cast<Addr>(c) * kLineBytes;
    co_await tc.barrier(*bar_);

    for (std::uint64_t w = 0; w < work_per_thread_; ++w) {
      const std::uint64_t center = rng.below(triangles_);
      const bool huge_cavity = rng.chance(0.03);
      const std::uint64_t read_span = huge_cavity ? 560 : 36;
      const std::uint64_t write_span = huge_cavity ? 540 : 12;
      co_await tc.compute(80);  // geometric tests before touching the mesh

      co_await atomically(tc, /*site=*/1,
                          [&](sim::ThreadContext& t) -> sim::Task<void> {
        // Read the cavity neighbourhood.
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < read_span; ++i) {
          const std::uint64_t tri = (center + i) % triangles_;
          acc += co_await t.load(mesh_ + tri * kLineBytes);
        }
        co_await t.compute(read_span / 2);
        // Retriangulate: bump generation + refine-count of the inner ring.
        for (std::uint64_t i = 0; i < write_span; ++i) {
          const std::uint64_t tri = (center + i) % triangles_;
          const Addr rec = mesh_ + tri * kLineBytes;
          const std::uint64_t gen = co_await t.load(rec);
          co_await t.store(rec, gen + 1);
          co_await t.store(rec + kWordBytes, gen + 1);
        }
        const std::uint64_t n = co_await t.load(my_processed);
        co_await t.store(my_processed, n + 1);
        (void)acc;
      });
    }
    co_await tc.barrier(*bar_);
  }

  std::uint32_t threads_ = 0;
  std::uint64_t triangles_ = 0;
  std::uint64_t work_per_thread_ = 0;
  std::uint64_t seed_ = 0;
  Addr mesh_ = 0;
  Addr processed_ = 0;
  sim::Barrier* bar_ = nullptr;
};

}  // namespace

std::unique_ptr<Workload> make_yada() { return std::make_unique<Yada>(); }

}  // namespace suvtm::stamp
