// Factories for the eight STAMP-like applications (one TU each).
#pragma once

#include <memory>

#include "stamp/framework.hpp"

namespace suvtm::stamp {

std::unique_ptr<Workload> make_bayes();
std::unique_ptr<Workload> make_genome();
std::unique_ptr<Workload> make_intruder();
std::unique_ptr<Workload> make_kmeans();
std::unique_ptr<Workload> make_labyrinth();
std::unique_ptr<Workload> make_ssca2();
std::unique_ptr<Workload> make_vacation();
std::unique_ptr<Workload> make_yada();

}  // namespace suvtm::stamp
