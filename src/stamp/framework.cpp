#include "stamp/framework.hpp"

#include <cassert>

#include "stamp/apps.hpp"

namespace suvtm::stamp {

std::unique_ptr<Workload> make_workload(AppId id) {
  switch (id) {
    case AppId::kBayes: return make_bayes();
    case AppId::kGenome: return make_genome();
    case AppId::kIntruder: return make_intruder();
    case AppId::kKmeans: return make_kmeans();
    case AppId::kLabyrinth: return make_labyrinth();
    case AppId::kSsca2: return make_ssca2();
    case AppId::kVacation: return make_vacation();
    case AppId::kYada: return make_yada();
  }
  assert(false && "unknown AppId");
  return nullptr;
}

const std::vector<AppId>& all_apps() {
  static const std::vector<AppId> apps = {
      AppId::kBayes,  AppId::kGenome,    AppId::kIntruder, AppId::kKmeans,
      AppId::kLabyrinth, AppId::kSsca2, AppId::kVacation, AppId::kYada,
  };
  return apps;
}

const std::vector<AppId>& high_contention_apps() {
  // Paper Section V: bayes, genome, intruder, labyrinth and yada are the
  // five high-contention/coarse-grained applications (Table IV).
  static const std::vector<AppId> apps = {
      AppId::kBayes, AppId::kGenome, AppId::kIntruder, AppId::kLabyrinth,
      AppId::kYada,
  };
  return apps;
}

const char* app_name(AppId id) {
  switch (id) {
    case AppId::kBayes: return "bayes";
    case AppId::kGenome: return "genome";
    case AppId::kIntruder: return "intruder";
    case AppId::kKmeans: return "kmeans";
    case AppId::kLabyrinth: return "labyrinth";
    case AppId::kSsca2: return "ssca2";
    case AppId::kVacation: return "vacation";
    case AppId::kYada: return "yada";
  }
  return "?";
}

}  // namespace suvtm::stamp
