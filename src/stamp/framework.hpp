// Workload framework: the transactional programming interface STAMP-like
// kernels are written against, plus the workload registry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/thread_context.hpp"

namespace suvtm::stamp {

/// Run `body` as a transaction at static site `site`, retrying with
/// randomized exponential backoff until it commits. `body` is invoked fresh
/// for each attempt and must be re-executable (STAMP transaction bodies
/// are). Usage:
///
///   co_await atomically(tc, kSiteInsert, [&](sim::ThreadContext& t)
///       -> sim::Task<void> {
///     auto v = co_await t.load(addr);
///     co_await t.store(addr, v + 1);
///   });
template <class F>
sim::Task<void> atomically(sim::ThreadContext& tc, std::uint32_t site, F body) {
  for (;;) {
    bool aborted = false;
    try {
      co_await tc.tx_begin(site);
      co_await body(tc);
      co_await tc.tx_commit();
    } catch (const sim::TxAbort&) {
      aborted = true;  // co_await is illegal inside a handler; retry below
    }
    if (!aborted) co_return;
    co_await tc.backoff();
  }
}

/// Suite-wide workload scaling knobs. scale=1.0 is the default benchmark
/// size (small enough for seconds-long runs, large enough to exhibit the
/// paper's contention/overflow behaviour); tests use smaller scales.
struct SuiteParams {
  double scale = 1.0;
  std::uint64_t seed = 42;
};

/// One STAMP-like application. build() allocates the shared simulated-memory
/// state and spawns one worker coroutine per core; the Workload object must
/// outlive Simulator::run().
class Workload {
 public:
  virtual ~Workload() = default;
  virtual const char* name() const = 0;
  /// Member of the paper's five high-contention/coarse-grained applications.
  virtual bool high_contention() const = 0;
  virtual void build(sim::Simulator& sim, const SuiteParams& p) = 0;

  /// Post-run self-check of application-level invariants (counters add up,
  /// structures consistent). Throws on violation -- transactional isolation
  /// bugs surface here.
  virtual void verify(sim::Simulator& sim) = 0;
};

enum class AppId {
  kBayes,
  kGenome,
  kIntruder,
  kKmeans,
  kLabyrinth,
  kSsca2,
  kVacation,
  kYada,
};

std::unique_ptr<Workload> make_workload(AppId id);
const std::vector<AppId>& all_apps();
const std::vector<AppId>& high_contention_apps();
const char* app_name(AppId id);

}  // namespace suvtm::stamp
