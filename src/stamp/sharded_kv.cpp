#include "stamp/sharded_kv.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "stamp/framework.hpp"

namespace suvtm::stamp {

namespace {

/// The constant each shard publishes in its config word; remote readers
/// checksum it, so verify() can predict every worker's checksum exactly.
constexpr std::uint64_t config_value(std::uint32_t shard) {
  return 0xC0FFEE00ull + shard;
}

}  // namespace

void ShardedKv::build(sim::Simulator& sim) {
  const sim::ShardMap& map = sim.shard_map();
  shards_ = map.shards;
  cores_per_shard_ = map.cores_per_shard;
  threads_ = sim.num_cores();
  if (p_.txn_keys == 0 || p_.keys_per_txn == 0 || p_.remote_read_every == 0) {
    throw std::invalid_argument("sharded_kv: params must be non-zero");
  }

  for (std::uint32_t s = 0; s < shards_; ++s) {
    const Addr base = sim::ShardMap::arena_base(s);
    sim.poke_word(base + kConfigOff, config_value(s));
    for (std::uint32_t k = 0; k < p_.txn_keys; ++k) {
      sim.poke_word(base + kKeysOff + Addr(k) * kWordBytes, 0);
    }
  }
  for (CoreId c = 0; c < threads_; ++c) {
    sim.spawn(c, worker(sim.context(c)));
  }
}

sim::ThreadTask ShardedKv::worker(sim::ThreadContext& tc) {
  const CoreId c = tc.core();
  const std::uint32_t shard = c / cores_per_shard_;
  const Addr base = sim::ShardMap::arena_base(shard);
  const Addr remote_config =
      sim::ShardMap::arena_base((shard + 1) % shards_) + kConfigOff;
  const Addr checksum_word =
      base + kChecksumOff + Addr(c - shard * cores_per_shard_) * kWordBytes;

  Rng rng(p_.seed * 0x9e3779b97f4a7c15ull + c);
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < p_.ops_per_thread; ++i) {
    // Pick this op's read set; the last key is the one incremented, so each
    // op adds exactly 1 to the shard's counter sum.
    std::vector<std::uint32_t> keys(p_.keys_per_txn);
    for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(p_.txn_keys));

    co_await atomically(tc, /*site=*/1,
                        [&](sim::ThreadContext& t) -> sim::Task<void> {
      std::uint64_t sum = 0;
      for (std::size_t j = 0; j + 1 < keys.size(); ++j) {
        sum += co_await t.load(base + kKeysOff + Addr(keys[j]) * kWordBytes);
      }
      const Addr hot = base + kKeysOff + Addr(keys.back()) * kWordBytes;
      const std::uint64_t v = co_await t.load(hot);
      co_await t.compute(4 + sum % 4);
      co_await t.store(hot, v + 1);
    });

    if ((i + 1) % p_.remote_read_every == 0) {
      // The one legal kind of cross-shard access: a non-transactional load.
      checksum += co_await tc.load(remote_config);
      co_await tc.store(checksum_word, checksum);
    }
    co_await tc.compute(8);
  }
}

void ShardedKv::verify(sim::Simulator& sim) const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < shards_; ++s) {
    const Addr base = sim::ShardMap::arena_base(s);
    for (std::uint32_t k = 0; k < p_.txn_keys; ++k) {
      total += sim.read_word_resolved(base + kKeysOff + Addr(k) * kWordBytes);
    }
  }
  const std::uint64_t expected_total = std::uint64_t(threads_) * p_.ops_per_thread;
  if (total != expected_total) {
    throw std::runtime_error("sharded_kv: counter sum lost updates");
  }

  const std::uint64_t reads_per_thread = p_.ops_per_thread / p_.remote_read_every;
  for (CoreId c = 0; c < threads_; ++c) {
    const std::uint32_t shard = c / cores_per_shard_;
    const Addr checksum_word = sim::ShardMap::arena_base(shard) + kChecksumOff +
                               Addr(c - shard * cores_per_shard_) * kWordBytes;
    const std::uint64_t want =
        reads_per_thread * config_value((shard + 1) % shards_);
    if (sim.read_word_resolved(checksum_word) != want) {
      throw std::runtime_error("sharded_kv: remote-read checksum mismatch");
    }
  }
}

}  // namespace suvtm::stamp
