// sharded_kv -- the driving workload for sharded (conservative-PDES)
// machines. Each shard gets its own key-value arena at
// sim::ShardMap::arena_base(s); every worker runs transactions strictly
// inside its own shard's arena (the purity rule sharded machines enforce)
// and, every few operations, issues one non-transactional read of the
// neighbouring shard's config word -- the one kind of cross-shard traffic
// the PDES mailboxes carry.
//
// The workload is deliberately not part of the AppId registry: the STAMP
// suite models the paper's monolithic machine, while this kernel exists to
// exercise and benchmark shard parallelism. It runs unchanged (and means
// the same thing) at shards=1, where the "remote" read degenerates to a
// local one.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace suvtm::stamp {

struct ShardedKvParams {
  std::uint64_t ops_per_thread = 256;   ///< transactions per worker
  std::uint32_t txn_keys = 64;          ///< counters per shard arena
  std::uint32_t keys_per_txn = 4;       ///< loads (last one stored) per txn
  std::uint32_t remote_read_every = 8;  ///< ops between cross-shard reads
  std::uint64_t seed = 42;
};

/// Standalone workload object; build() spawns one worker per core, verify()
/// checks the global counter sum and every worker's remote-read checksum.
/// Must outlive Simulator::run(), like the registry workloads.
class ShardedKv {
 public:
  explicit ShardedKv(ShardedKvParams p = {}) : p_(p) {}

  void build(sim::Simulator& sim);
  void verify(sim::Simulator& sim) const;

  const ShardedKvParams& params() const { return p_; }

 private:
  sim::ThreadTask worker(sim::ThreadContext& tc);

  // Per-shard arena layout (offsets from sim::ShardMap::arena_base(s)).
  static constexpr Addr kConfigOff = 0x40;     ///< constant word, read remotely
  static constexpr Addr kKeysOff = 0x100;      ///< txn_keys counters, 8B each
  static constexpr Addr kChecksumOff = 0x20000;  ///< per-local-core, 8B each

  ShardedKvParams p_;
  std::uint32_t shards_ = 1;
  std::uint32_t cores_per_shard_ = 1;
  std::uint32_t threads_ = 0;
};

}  // namespace suvtm::stamp
