// Simulated-memory allocation for workloads.
//
// Workload data lives in the simulator's flat address space, not host
// memory. A bump allocator carves shared structures at build time; STAMP's
// in-transaction allocations (TM_MALLOC) are served from per-thread arenas
// carved up front, which mirrors STAMP's per-thread memory pools and keeps
// allocator metadata out of the conflict sets.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace suvtm::stamp {

class SimAllocator {
 public:
  /// Workload heap starts above page 0 (kept unmapped to catch null-ish
  /// address bugs) and far below the SUV preserved-pool region.
  explicit SimAllocator(Addr base = 0x10000) : next_(base) {}

  Addr alloc(std::uint64_t bytes, std::uint64_t align = kWordBytes) {
    assert(align != 0 && (align & (align - 1)) == 0);
    next_ = (next_ + align - 1) & ~(align - 1);
    const Addr a = next_;
    next_ += bytes;
    return a;
  }

  /// Line-aligned allocation (distinct lines => no false sharing).
  Addr alloc_lines(std::uint64_t lines) {
    return alloc(lines * kLineBytes, kLineBytes);
  }

  Addr high_water() const { return next_; }

 private:
  Addr next_;
};

/// Fixed-size object arena in simulated memory: pre-carved nodes handed out
/// without any simulated-memory metadata traffic.
class SimArena {
 public:
  SimArena() = default;
  SimArena(SimAllocator& alloc, std::uint64_t object_bytes,
           std::uint64_t count)
      : object_bytes_((object_bytes + kWordBytes - 1) & ~(kWordBytes - 1)),
        count_(count) {
    base_ = alloc.alloc(object_bytes_ * count, kLineBytes);
  }

  /// Next free object; exhaustion is a workload sizing bug.
  Addr take() {
    assert(used_ < count_ && "SimArena exhausted; enlarge the workload arena");
    return base_ + (used_++) * object_bytes_;
  }

  std::uint64_t used() const { return used_; }
  std::uint64_t capacity() const { return count_; }

 private:
  Addr base_ = 0;
  std::uint64_t object_bytes_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t used_ = 0;
};

/// Per-thread arenas over one allocation: thread i's objects never share a
/// cache line with thread j's, mirroring STAMP's per-thread memory pools
/// (shared arenas false-share fresh nodes across threads and livelock
/// eager-conflict HTMs).
class PerThreadArena {
 public:
  PerThreadArena() = default;
  PerThreadArena(SimAllocator& alloc, std::uint64_t object_bytes,
                 std::uint64_t per_thread_count, std::uint32_t threads) {
    // Reserve far beyond the requested minimum: aborted attempts leak
    // nodes by design, and pathological retry storms (tiny signatures,
    // huge abort traps in ablation sweeps) can leak hundreds of nodes per
    // commit. Reserved-but-unwritten simulated address space costs nothing.
    const std::uint64_t reserve =
        std::max<std::uint64_t>(per_thread_count, 1ull << 20);
    arenas_.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      arenas_.emplace_back(alloc, object_bytes, reserve);
      // Line-align the next thread's region.
      alloc.alloc_lines(1);
    }
  }

  Addr take(std::uint32_t thread) { return arenas_[thread].take(); }
  std::uint64_t used() const {
    std::uint64_t n = 0;
    for (const auto& a : arenas_) n += a.used();
    return n;
  }

 private:
  std::vector<SimArena> arenas_;
};

}  // namespace suvtm::stamp
