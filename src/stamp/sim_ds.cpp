#include "stamp/sim_ds.hpp"

#include <cassert>

namespace suvtm::stamp {

namespace {
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}
}  // namespace

// ---- SimHashMap -------------------------------------------------------------

SimHashMap::SimHashMap(SimAllocator& alloc, std::uint64_t buckets,
                       std::uint64_t nodes_per_thread, std::uint32_t threads,
                       bool padded_buckets)
    : buckets_(buckets),
      bucket_stride_(padded_buckets ? kLineBytes : kWordBytes),
      arena_(alloc, 24, nodes_per_thread, threads) {
  buckets_base_ = alloc.alloc(buckets * bucket_stride_, kLineBytes);
}

Addr SimHashMap::bucket_addr(std::uint64_t key) const {
  return buckets_base_ + (mix(key) % buckets_) * bucket_stride_;
}

sim::Task<bool> SimHashMap::insert(sim::ThreadContext& tc, std::uint64_t key,
                                   std::uint64_t value) {
  const Addr bucket = bucket_addr(key);
  std::uint64_t node = co_await tc.load(bucket);
  const std::uint64_t head = node;
  while (node != kNullPtr) {
    if (co_await tc.load(node + kKeyOff) == key) co_return false;
    node = co_await tc.load(node + kNextOff);
  }
  const Addr fresh = arena_.take(tc.core());
  co_await tc.store(fresh + kKeyOff, key);
  co_await tc.store(fresh + kValOff, value);
  co_await tc.store(fresh + kNextOff, head);
  co_await tc.store(bucket, fresh);
  co_return true;
}

sim::Task<std::optional<std::uint64_t>> SimHashMap::find(
    sim::ThreadContext& tc, std::uint64_t key) {
  std::uint64_t node = co_await tc.load(bucket_addr(key));
  while (node != kNullPtr) {
    if (co_await tc.load(node + kKeyOff) == key) {
      co_return co_await tc.load(node + kValOff);
    }
    node = co_await tc.load(node + kNextOff);
  }
  co_return std::nullopt;
}

sim::Task<bool> SimHashMap::update(sim::ThreadContext& tc, std::uint64_t key,
                                   std::uint64_t value) {
  std::uint64_t node = co_await tc.load(bucket_addr(key));
  while (node != kNullPtr) {
    if (co_await tc.load(node + kKeyOff) == key) {
      co_await tc.store(node + kValOff, value);
      co_return true;
    }
    node = co_await tc.load(node + kNextOff);
  }
  co_return false;
}

sim::Task<std::optional<std::uint64_t>> SimHashMap::erase(
    sim::ThreadContext& tc, std::uint64_t key) {
  const Addr bucket = bucket_addr(key);
  Addr prev_link = bucket;
  std::uint64_t node = co_await tc.load(bucket);
  while (node != kNullPtr) {
    if (co_await tc.load(node + kKeyOff) == key) {
      const std::uint64_t val = co_await tc.load(node + kValOff);
      const std::uint64_t next = co_await tc.load(node + kNextOff);
      co_await tc.store(prev_link, next);
      co_return val;  // node storage leaks to the arena by design
    }
    prev_link = node + kNextOff;
    node = co_await tc.load(node + kNextOff);
  }
  co_return std::nullopt;
}

void SimHashMap::preload(mem::BackingStore& bs, std::uint64_t key,
                         std::uint64_t value) {
  const Addr bucket = bucket_addr(key);
  const std::uint64_t head = bs.load(bucket);
  const Addr fresh = arena_.take(0);  // preload runs before the workers
  bs.store(fresh + kKeyOff, key);
  bs.store(fresh + kValOff, value);
  bs.store(fresh + kNextOff, head);
  bs.store(bucket, fresh);
}

std::optional<std::uint64_t> SimHashMap::peek(const WordLoader& load,
                                              std::uint64_t key) const {
  std::uint64_t node = load(bucket_addr(key));
  while (node != kNullPtr) {
    if (load(node + kKeyOff) == key) return load(node + kValOff);
    node = load(node + kNextOff);
  }
  return std::nullopt;
}

// ---- SimQueue ---------------------------------------------------------------

SimQueue::SimQueue(SimAllocator& alloc, std::uint64_t capacity)
    : capacity_(capacity) {
  head_addr_ = alloc.alloc_lines(1);
  tail_addr_ = alloc.alloc_lines(1);
  slots_ = alloc.alloc(capacity * kWordBytes, kLineBytes);
}

sim::Task<bool> SimQueue::push(sim::ThreadContext& tc, std::uint64_t value) {
  const std::uint64_t tail = co_await tc.load_rmw(tail_addr_);
  const std::uint64_t head = co_await tc.load(head_addr_);
  if (tail - head >= capacity_) co_return false;
  co_await tc.store(slots_ + (tail % capacity_) * kWordBytes, value);
  co_await tc.store(tail_addr_, tail + 1);
  co_return true;
}

sim::Task<std::optional<std::uint64_t>> SimQueue::pop(sim::ThreadContext& tc) {
  const std::uint64_t head = co_await tc.load_rmw(head_addr_);
  const std::uint64_t tail = co_await tc.load(tail_addr_);
  if (head == tail) co_return std::nullopt;
  const std::uint64_t v =
      co_await tc.load(slots_ + (head % capacity_) * kWordBytes);
  co_await tc.store(head_addr_, head + 1);
  co_return v;
}

void SimQueue::preload(mem::BackingStore& bs,
                       const std::vector<std::uint64_t>& values) {
  assert(values.size() <= capacity_);
  for (std::uint64_t i = 0; i < values.size(); ++i) {
    bs.store(slots_ + (i % capacity_) * kWordBytes, values[i]);
  }
  bs.store(head_addr_, 0);
  bs.store(tail_addr_, values.size());
}

// ---- SimSortedList ----------------------------------------------------------

SimSortedList::SimSortedList(SimAllocator& alloc,
                             std::uint64_t nodes_per_thread,
                             std::uint32_t threads)
    : sentinel_(alloc, 16, 1), arena_(alloc, 16, nodes_per_thread, threads) {
  head_ = sentinel_.take();  // sentinel: key 0, next null (keys must be > 0)
}

sim::Task<bool> SimSortedList::insert(sim::ThreadContext& tc,
                                      std::uint64_t key) {
  Addr prev = head_;
  std::uint64_t cur = co_await tc.load(head_ + kNextOff);
  while (cur != kNullPtr) {
    const std::uint64_t k = co_await tc.load(cur + kKeyOff);
    if (k == key) co_return false;
    if (k > key) break;
    prev = cur;
    cur = co_await tc.load(cur + kNextOff);
  }
  const Addr fresh = arena_.take(tc.core());
  co_await tc.store(fresh + kKeyOff, key);
  co_await tc.store(fresh + kNextOff, cur);
  co_await tc.store(prev + kNextOff, fresh);
  co_return true;
}

sim::Task<bool> SimSortedList::contains(sim::ThreadContext& tc,
                                        std::uint64_t key) {
  std::uint64_t cur = co_await tc.load(head_ + kNextOff);
  while (cur != kNullPtr) {
    const std::uint64_t k = co_await tc.load(cur + kKeyOff);
    if (k == key) co_return true;
    if (k > key) co_return false;
    cur = co_await tc.load(cur + kNextOff);
  }
  co_return false;
}

}  // namespace suvtm::stamp
