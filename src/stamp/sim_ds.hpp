// Transactional data structures over simulated memory.
//
// These are the building blocks the STAMP-like kernels share: a chained
// hash map, a bounded FIFO queue and a sorted linked list, all of whose
// loads/stores go through the ThreadContext (and therefore through the HTM
// and the memory hierarchy). Host-side members hold only immutable layout
// metadata; every mutable word lives in simulated memory.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "mem/backing_store.hpp"
#include "sim/task.hpp"
#include "sim/thread_context.hpp"
#include "stamp/sim_alloc.hpp"

namespace suvtm::stamp {

inline constexpr std::uint64_t kNullPtr = 0;  // sim-memory null

/// Chained hash map: bucket array of head pointers, nodes {key, value, next}
/// carved from a SimArena. Keys must be nonzero.
class SimHashMap {
 public:
  SimHashMap() = default;
  /// `nodes_per_thread` sizes each thread's private node pool (include
  /// slack: aborted attempts leak nodes by design). `padded_buckets` puts
  /// each bucket head on its own cache line (trades space for fewer
  /// false-sharing conflicts on the head array).
  SimHashMap(SimAllocator& alloc, std::uint64_t buckets,
             std::uint64_t nodes_per_thread, std::uint32_t threads,
             bool padded_buckets = false);

  /// Insert key -> value; returns false (no write) if the key exists.
  sim::Task<bool> insert(sim::ThreadContext& tc, std::uint64_t key,
                         std::uint64_t value);
  /// Value for key, or nullopt.
  sim::Task<std::optional<std::uint64_t>> find(sim::ThreadContext& tc,
                                               std::uint64_t key);
  /// Overwrite an existing key's value; returns false if absent.
  sim::Task<bool> update(sim::ThreadContext& tc, std::uint64_t key,
                         std::uint64_t value);
  /// Remove a key; returns its value or nullopt.
  sim::Task<std::optional<std::uint64_t>> erase(sim::ThreadContext& tc,
                                                std::uint64_t key);

  /// Host-side (zero simulated cycles) insert for build-time preloading.
  /// Must not race with simulated accesses; call before Simulator::run().
  void preload(mem::BackingStore& bs, std::uint64_t key, std::uint64_t value);

  /// Host-side lookup for post-run verification. `load` must follow any
  /// live redirection (use Simulator::read_word_resolved).
  using WordLoader = std::function<std::uint64_t(Addr)>;
  std::optional<std::uint64_t> peek(const WordLoader& load,
                                    std::uint64_t key) const;

  std::uint64_t buckets() const { return buckets_; }
  std::uint64_t nodes_used() const { return arena_.used(); }

 private:
  Addr bucket_addr(std::uint64_t key) const;
  static constexpr std::uint64_t kKeyOff = 0;
  static constexpr std::uint64_t kValOff = 8;
  static constexpr std::uint64_t kNextOff = 16;

  Addr buckets_base_ = 0;
  std::uint64_t buckets_ = 0;
  std::uint64_t bucket_stride_ = kWordBytes;
  PerThreadArena arena_;
};

/// Bounded FIFO ring buffer. head/tail counters live on separate lines but
/// are deliberately shared hot words (the intruder-style contention point).
class SimQueue {
 public:
  SimQueue() = default;
  SimQueue(SimAllocator& alloc, std::uint64_t capacity);

  /// Returns false if full.
  sim::Task<bool> push(sim::ThreadContext& tc, std::uint64_t value);
  /// Pops the oldest value, or nullopt if empty.
  sim::Task<std::optional<std::uint64_t>> pop(sim::ThreadContext& tc);

  /// Host-side build-time fill; call before Simulator::run().
  void preload(mem::BackingStore& bs,
               const std::vector<std::uint64_t>& values);

 private:
  Addr head_addr_ = 0;  // next index to pop
  Addr tail_addr_ = 0;  // next index to push
  Addr slots_ = 0;
  std::uint64_t capacity_ = 0;
};

/// Sorted singly-linked list with a sentinel head (genome-style chaining).
class SimSortedList {
 public:
  SimSortedList() = default;
  SimSortedList(SimAllocator& alloc, std::uint64_t nodes_per_thread,
                std::uint32_t threads);

  /// Insert key if absent; returns false if already present.
  sim::Task<bool> insert(sim::ThreadContext& tc, std::uint64_t key);
  sim::Task<bool> contains(sim::ThreadContext& tc, std::uint64_t key);

 private:
  static constexpr std::uint64_t kKeyOff = 0;
  static constexpr std::uint64_t kNextOff = 8;
  Addr head_ = 0;  // sentinel node
  SimArena sentinel_;
  PerThreadArena arena_;
};

}  // namespace suvtm::stamp
