#include "suv/pool.hpp"

#include "obs/recorder.hpp"

namespace suvtm::suv {

PreservedPool::PreservedPool(CoreId core)
    : core_(core),
      base_line_(line_of(kPoolRegionBase) +
                 static_cast<LineAddr>(core) * line_of(kPoolRegionPerCore)) {}

LineAddr PreservedPool::allocate() {
  ++in_use_;
  ++stats_.lines_handed_out;
  if (!free_list_.empty()) {
    ++stats_.lines_recycled;
    LineAddr l = free_list_.back();
    free_list_.pop_back();
    return l;
  }
  // Scatter pool lines across the cache index space with a bijective
  // multiplicative hash (odd multiplier mod a power of two): the OS hands
  // the pool physically scattered pages, and the redirect entry carries the
  // page pointer, so contiguity buys nothing while alignment would pile
  // every core's hot pool lines into the same few cache sets.
  if (next_index_ % kLinesPerPage == 0) {
    ++stats_.pages_allocated;
    SUVTM_OBS_HOOK(obs_, on_pool_page(core_));
  }
  const std::uint64_t span = line_of(kPoolRegionPerCore);  // power of two
  // Mix the core id in: different cores' k-th lines must not share a set.
  const LineAddr scattered =
      ((next_index_ * 16 + core_ + 1) * 0x9E3779B1ull) & (span - 1);
  ++next_index_;
  return base_line_ + scattered;
}

void PreservedPool::release(LineAddr l) {
  free_list_.push_back(l);
  if (in_use_ > 0) --in_use_;
}

}  // namespace suvtm::suv
