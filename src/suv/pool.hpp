// Preserved redirect pool (paper Section III): a reserved memory region per
// core from which redirected target lines are allocated, page at a time.
//
// Deviation from the paper, documented in DESIGN.md: the paper notes that
// the original address of a globally redirected line becomes reclaimable for
// later redirections. We count those reclaimable lines but do not hand them
// out as redirect targets, because a later toggle-delete of the entry that
// freed them would clobber the tenant. The pool instead grows monotonically
// and recycles only its own freed lines, which is safe and changes only the
// pool-footprint statistic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/obs.hpp"

namespace suvtm::suv {

/// Base of the reserved pool region: far above any workload allocation
/// (shared constant: the memory system uses it to skip TLB walks, since a
/// redirect entry carries its target's physical page pointer).
inline constexpr Addr kPoolRegionBase = kRedirectPoolBase;
inline constexpr Addr kPoolRegionPerCore = 1ull << 34;  // 16 GiB per core

struct PoolStats {
  std::uint64_t pages_allocated = 0;
  std::uint64_t lines_handed_out = 0;
  std::uint64_t lines_recycled = 0;
  std::uint64_t reclaimable_originals = 0;
};

class PreservedPool {
 public:
  explicit PreservedPool(CoreId core);

  /// Allocate a pool line to serve as a redirect target.
  LineAddr allocate();

  /// Return a pool line (its redirect entry was deleted or aborted).
  void release(LineAddr l);

  /// Record that an original line became reclaimable (entry went global).
  void note_reclaimable_original() { ++stats_.reclaimable_originals; }

  /// True if `l` lies inside any core's pool region.
  static bool in_pool_region(LineAddr l) {
    return addr_of_line(l) >= kPoolRegionBase;
  }

  /// The core whose region contains pool line `l`. Lines must be released
  /// to their owning pool (a toggling transaction on another core frees a
  /// line it never allocated).
  static CoreId owner_of(LineAddr l) {
    return static_cast<CoreId>((l - line_of(kPoolRegionBase)) /
                               line_of(kPoolRegionPerCore));
  }

  std::uint64_t lines_in_use() const { return in_use_; }
  const PoolStats& stats() const { return stats_; }

  /// Observability wiring (forwarded from SuvVm::set_obs).
  void set_obs(obs::Recorder* r) { obs_ = r; }

 private:
  CoreId core_ = 0;
  LineAddr base_line_;
  std::uint64_t next_index_ = 0;
  std::vector<LineAddr> free_list_;
  std::uint64_t in_use_ = 0;
  PoolStats stats_;
  obs::Recorder* obs_ = nullptr;
};

}  // namespace suvtm::suv
