#include "suv/redirect_entry.hpp"

#include <cassert>

namespace suvtm::suv {

const char* entry_state_name(EntryState s) {
  switch (s) {
    case EntryState::kInvalid: return "invalid(g0v0)";
    case EntryState::kTxnRedirect: return "txn-redirect(g0v1)";
    case EntryState::kTxnUnredirect: return "txn-unredirect(g1v0)";
    case EntryState::kGlobalRedirect: return "global-redirect(g1v1)";
    default: return "?";
  }
}

PackedEntry PackedEntry::pack(std::uint32_t l1_index, EntryState state,
                              std::uint32_t tlb_index,
                              std::uint32_t page_offset) {
  assert(l1_index < (1u << kL1IndexBits));
  assert(tlb_index < (1u << kTlbIndexBits));
  assert(page_offset < (1u << kOffsetBits));
  PackedEntry p;
  p.bits = l1_index;
  p.bits |= static_cast<std::uint32_t>(state) << kL1IndexBits;
  p.bits |= tlb_index << (kL1IndexBits + kStateBits);
  p.bits |= page_offset << (kL1IndexBits + kStateBits + kTlbIndexBits);
  return p;
}

std::uint32_t PackedEntry::l1_index() const {
  return bits & ((1u << kL1IndexBits) - 1);
}

EntryState PackedEntry::state() const {
  return static_cast<EntryState>((bits >> kL1IndexBits) &
                                 ((1u << kStateBits) - 1));
}

std::uint32_t PackedEntry::tlb_index() const {
  return (bits >> (kL1IndexBits + kStateBits)) & ((1u << kTlbIndexBits) - 1);
}

std::uint32_t PackedEntry::page_offset() const {
  return (bits >> (kL1IndexBits + kStateBits + kTlbIndexBits)) &
         ((1u << kOffsetBits) - 1);
}

}  // namespace suvtm::suv
