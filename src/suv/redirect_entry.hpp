// SUV redirect entries (paper Figure 3 + Table II).
//
// An entry maps an original line address to a redirected line in the
// preserved pool. Its two state bits (global, valid) encode four states:
//
//   g=0 v=0  kInvalid          free slot
//   g=0 v=1  kTxnRedirect      transient: owner txn uses the target;
//                              everyone else still uses the original
//   g=1 v=1  kGlobalRedirect   stable: all accesses use the target
//   g=1 v=0  kTxnUnredirect    transient: a global entry whose owner txn
//                              stored again and was redirected *back* to the
//                              original address -- owner uses the original,
//                              everyone else the target. Commit deletes the
//                              entry; abort restores kGlobalRedirect.
//
// Commit flash-flips (paper Section IV-B):  g0v1 -> g1v1,  g1v0 -> g0v0.
// Abort  flash-flips:                       g0v1 -> g0v0,  g1v0 -> g1v1.
//
// The hardware entry is 22 bits: 7-bit L1 cache index, 2-bit state, 6-bit
// TLB index, 7-bit in-page offset. We model entries with full addresses as
// ground truth and provide the packed encoding for fidelity and hardware
// cost accounting.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace suvtm::suv {

enum class EntryState : std::uint8_t {
  kInvalid = 0,         // g=0 v=0
  kTxnRedirect = 1,     // g=0 v=1
  kTxnUnredirect = 2,   // g=1 v=0
  kGlobalRedirect = 3,  // g=1 v=1
};

const char* entry_state_name(EntryState s);

constexpr bool global_bit(EntryState s) {
  return s == EntryState::kTxnUnredirect || s == EntryState::kGlobalRedirect;
}
constexpr bool valid_bit(EntryState s) {
  return s == EntryState::kTxnRedirect || s == EntryState::kGlobalRedirect;
}
constexpr EntryState state_from_bits(bool g, bool v) {
  return g ? (v ? EntryState::kGlobalRedirect : EntryState::kTxnUnredirect)
           : (v ? EntryState::kTxnRedirect : EntryState::kInvalid);
}

/// Commit-time flash transition for one entry.
constexpr EntryState commit_flip(EntryState s) {
  // g: 0->1 if v==1; 1->0 if v==0. v unchanged.
  const bool v = valid_bit(s);
  const bool g = v;  // after flip the global bit equals the valid bit
  return state_from_bits(g, v);
}

/// Abort-time flash transition for one entry.
constexpr EntryState abort_flip(EntryState s) {
  // v: 0->1 if g==1; 1->0 if g==0. g unchanged.
  const bool g = global_bit(s);
  const bool v = g;  // after flip the valid bit equals the global bit
  return state_from_bits(g, v);
}

struct RedirectEntry {
  LineAddr original = 0;
  LineAddr target = 0;
  EntryState state = EntryState::kInvalid;
  CoreId owner = kNoCore;  // owning core while in a transient state

  bool transient() const {
    return state == EntryState::kTxnRedirect ||
           state == EntryState::kTxnUnredirect;
  }

  /// Line this core's accesses should use (Table II semantics).
  LineAddr resolve_for(CoreId core) const {
    switch (state) {
      case EntryState::kGlobalRedirect: return target;
      case EntryState::kTxnRedirect: return core == owner ? target : original;
      case EntryState::kTxnUnredirect: return core == owner ? original : target;
      case EntryState::kInvalid: default: return original;
    }
  }
};

/// Packed 22-bit hardware encoding (paper Figure 3). The address fields are
/// *clues* relative to the L1 cache and TLB contents, so packing requires
/// the index context; we expose it for structure-accuracy tests and CACTI
/// sizing, not as the simulator's ground truth.
struct PackedEntry {
  std::uint32_t bits = 0;  // only the low 22 bits are meaningful

  static constexpr std::uint32_t kL1IndexBits = 7;
  static constexpr std::uint32_t kStateBits = 2;
  static constexpr std::uint32_t kTlbIndexBits = 6;
  static constexpr std::uint32_t kOffsetBits = 7;
  static constexpr std::uint32_t kTotalBits =
      kL1IndexBits + kStateBits + kTlbIndexBits + kOffsetBits;  // == 22

  static PackedEntry pack(std::uint32_t l1_index, EntryState state,
                          std::uint32_t tlb_index, std::uint32_t page_offset);
  std::uint32_t l1_index() const;
  EntryState state() const;
  std::uint32_t tlb_index() const;
  std::uint32_t page_offset() const;
};

static_assert(PackedEntry::kTotalBits == 22, "paper specifies 22-bit entries");

}  // namespace suvtm::suv
