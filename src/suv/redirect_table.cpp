#include "suv/redirect_table.hpp"

#include <algorithm>
#include <cassert>

#include "obs/recorder.hpp"

namespace suvtm::suv {

RedirectTable::RedirectTable(const sim::SuvParams& p, std::uint32_t num_cores)
    : params_(p) {
  l1_.resize(num_cores);
  const std::uint32_t sets =
      std::max<std::uint32_t>(1, p.l2_table_entries / p.l2_table_assoc);
  l2_sets_.resize(sets);
  summary_.reserve(num_cores);
  for (std::uint32_t c = 0; c < num_cores; ++c) {
    summary_.emplace_back(p.summary_signature_bits, p.summary_signature_hashes);
  }
}

RedirectEntry* RedirectTable::find(LineAddr original) {
  auto it = entries_.find(original);
  return it == entries_.end() ? nullptr : &it->second;
}

const RedirectEntry* RedirectTable::find(LineAddr original) const {
  auto it = entries_.find(original);
  return it == entries_.end() ? nullptr : &it->second;
}

bool RedirectTable::l2_contains(LineAddr l) const {
  const L2Set& s = l2_set(l);
  return std::any_of(s.ways.begin(), s.ways.end(),
                     [l](const auto& w) { return w.first == l; });
}

void RedirectTable::l2_erase(LineAddr l) {
  L2Set& s = l2_set(l);
  std::erase_if(s.ways, [l](const auto& w) { return w.first == l; });
}

void RedirectTable::l2_install(LineAddr l) {
  L2Set& s = l2_set(l);
  for (auto& w : s.ways) {
    if (w.first == l) {
      w.second = ++tick_;
      return;
    }
  }
  if (s.ways.size() >= params_.l2_table_assoc) {
    // Swap the LRU entry out to the memory table (it remains in entries_).
    auto lru = std::min_element(
        s.ways.begin(), s.ways.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    ++stats_.l2_evictions;
    SUVTM_OBS_HOOK(obs_, on_table_spill(lru->first, entry_owner(lru->first)));
    s.ways.erase(lru);
  }
  s.ways.emplace_back(l, ++tick_);
}

void RedirectTable::l1_install(CoreId core, LineAddr l) {
  L1Table& t = l1_[core];
  if (t.pinned.count(l)) return;
  auto it = t.cached.find(l);
  if (it != t.cached.end()) {
    it->second = ++tick_;
    return;
  }
  if (t.pinned.size() + t.cached.size() >= params_.l1_table_entries &&
      !t.cached.empty()) {
    // Evict the LRU non-pinned entry down to the shared second level.
    auto lru = std::min_element(
        t.cached.begin(), t.cached.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    l2_install(lru->first);
    t.cached.erase(lru);
  }
  if (t.pinned.size() + t.cached.size() < params_.l1_table_entries) {
    t.cached.emplace(l, ++tick_);
  }
}

void RedirectTable::drop_from_caches(LineAddr l) {
  for (auto& t : l1_) {
    t.cached.erase(l);
    t.pinned.erase(l);
  }
  l2_erase(l);
}

RedirectTable::Lookup RedirectTable::lookup(CoreId core, LineAddr original) {
  ++stats_.lookups;
  if (!summary_[core].test(original)) {
    ++stats_.summary_filtered;
    return {};  // definitely not redirected, zero cost
  }

  Lookup out;
  L1Table& t = l1_[core];
  if (t.pinned.count(original) || t.cached.count(original)) {
    ++stats_.l1_hits;
    auto it = t.cached.find(original);
    if (it != t.cached.end()) it->second = ++tick_;
    out.probe = params_.l1_table_latency;
    out.entry = find(original);
    assert(out.entry && "first-level table caches only live entries");
    return out;
  }
  ++stats_.l1_misses;

  if (l2_contains(original)) {
    ++stats_.l2_hits;
    out.probe = params_.l2_table_latency;
    l1_install(core, original);
    out.entry = find(original);
    assert(out.entry && "second-level table caches only live entries");
    return out;
  }

  // Both hardware levels missed. The core speculates with the original
  // address while the software memory-table search proceeds in the
  // background (paper Section IV-A), so a summary false positive costs
  // nothing on the critical path; only a real swapped-out entry forces a
  // squash and a redone access.
  const RedirectEntry* e = find(original);
  if (e) {
    ++stats_.mem_hits;
    ++stats_.misspeculations;
    out.squash = params_.misspeculation_penalty;
    l1_install(core, original);
    out.entry = e;
  } else {
    ++stats_.false_filter_hits;
  }
  return out;
}

Cycle RedirectTable::insert_transient(const RedirectEntry& e) {
  assert(e.transient());
  assert(!entries_.count(e.original));
  entries_.emplace(e.original, e);
  summary_[e.owner].add(e.original);
  SUVTM_OBS_HOOK(obs_, on_summary_add());

  L1Table& t = l1_[e.owner];
  t.cached.erase(e.original);
  if (t.pinned.size() < params_.l1_table_entries) {
    t.pinned.insert(e.original);
    return params_.l1_table_latency;
  }
  // First-level overflow: the transient entry lives in the shared table.
  ++stats_.l1_overflow_entries;
  SUVTM_OBS_HOOK(obs_, on_table_l1_overflow());
  l2_install(e.original);
  return params_.l2_table_latency;
}

Cycle RedirectTable::pin_transient(CoreId owner, LineAddr original) {
  assert(entries_.count(original));
  L1Table& t = l1_[owner];
  t.cached.erase(original);
  if (t.pinned.size() < params_.l1_table_entries) {
    t.pinned.insert(original);
    return params_.l1_table_latency;
  }
  ++stats_.l1_overflow_entries;
  SUVTM_OBS_HOOK(obs_, on_table_l1_overflow());
  l2_install(original);
  return params_.l2_table_latency;
}

RedirectTable::FlipOutcome RedirectTable::commit_entry(LineAddr original) {
  RedirectEntry* e = find(original);
  assert(e && e->transient());
  FlipOutcome out{false, e->target};
  const CoreId owner = e->owner;
  e->state = commit_flip(e->state);
  if (e->state == EntryState::kGlobalRedirect) {
    // Publish: visible to every core's summary filter from now on, and
    // written to the shared second-level table so other cores' first-level
    // tables can fill from it instead of faulting to the memory table.
    for (std::size_t c = 0; c < summary_.size(); ++c) {
      if (static_cast<CoreId>(c) != owner) {
        summary_[c].add(original);
        SUVTM_OBS_HOOK(obs_, on_summary_add());
      }
    }
    e->owner = kNoCore;
    L1Table& t = l1_[owner];
    if (t.pinned.erase(original)) t.cached.emplace(original, ++tick_);
    l2_install(original);
  } else {
    // g1v0 -> g0v0: the redirection collapsed back to the original address.
    assert(e->state == EntryState::kInvalid);
    out.deleted = true;
    for (auto& s : summary_) {
      [[maybe_unused]] const bool stale = s.remove(original);
      SUVTM_OBS_HOOK(obs_, on_summary_remove(stale));
    }
    drop_from_caches(original);
    entries_.erase(original);
  }
  return out;
}

RedirectTable::FlipOutcome RedirectTable::abort_entry(LineAddr original) {
  RedirectEntry* e = find(original);
  assert(e && e->transient());
  FlipOutcome out{false, e->target};
  const CoreId owner = e->owner;
  e->state = abort_flip(e->state);
  if (e->state == EntryState::kInvalid) {
    out.deleted = true;
    [[maybe_unused]] const bool stale = summary_[owner].remove(original);
    SUVTM_OBS_HOOK(obs_, on_summary_remove(stale));
    drop_from_caches(original);
    entries_.erase(original);
  } else {
    // g1v0 -> g1v1: the pre-existing global redirection is restored.
    assert(e->state == EntryState::kGlobalRedirect);
    e->owner = kNoCore;
    L1Table& t = l1_[owner];
    if (t.pinned.erase(original)) t.cached.emplace(original, ++tick_);
  }
  return out;
}

}  // namespace suvtm::suv
