// Two-level redirect table (paper Sections III-IV, Table III).
//
// Ground truth is a global map of redirect entries ("the memory table": the
// software-managed structure holding swapped-out entries). Two hardware
// levels cache it for latency:
//   - per-core first-level table: 512 entries, fully associative,
//     zero-latency; a core's own transaction's transient entries are pinned
//     there (spilling them is the "redirect table overflow" of Table V),
//   - shared second-level table: 16K entries, 8-way, 10-cycle latency.
// A lookup that misses both levels *speculates with the original address*
// (paper Section IV-A); if the memory table actually held an entry the
// speculation is squashed at a fixed penalty.
//
// Every lookup is first filtered by the per-core redirect summary signature,
// so un-redirected addresses (the common case) pay nothing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"
#include "sim/config.hpp"
#include "suv/redirect_entry.hpp"
#include "suv/summary_signature.hpp"

namespace suvtm::suv {

struct TableStats {
  std::uint64_t lookups = 0;            // accesses that consulted the summary
  std::uint64_t summary_filtered = 0;   // summary said "not redirected"
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;          // summary hit but L1 table miss
  std::uint64_t l2_hits = 0;
  std::uint64_t mem_hits = 0;           // entry only in the memory table
  std::uint64_t misspeculations = 0;    // == mem_hits (squash + redo)
  std::uint64_t false_filter_hits = 0;  // summary hit, no entry anywhere
  std::uint64_t l1_overflow_entries = 0;  // transient entries spilled to L2
  std::uint64_t l2_evictions = 0;         // entries swapped to memory

  bool operator==(const TableStats&) const = default;

  double l1_miss_rate() const {
    const double looked = static_cast<double>(l1_hits + l1_misses);
    return looked == 0.0 ? 0.0 : static_cast<double>(l1_misses) / looked;
  }
};

/// Sum `b` into `a` (harvesting a sharded machine's per-domain tables).
inline void accumulate(TableStats& a, const TableStats& b) {
  a.lookups += b.lookups;
  a.summary_filtered += b.summary_filtered;
  a.l1_hits += b.l1_hits;
  a.l1_misses += b.l1_misses;
  a.l2_hits += b.l2_hits;
  a.mem_hits += b.mem_hits;
  a.misspeculations += b.misspeculations;
  a.false_filter_hits += b.false_filter_hits;
  a.l1_overflow_entries += b.l1_overflow_entries;
  a.l2_evictions += b.l2_evictions;
}

class RedirectTable {
 public:
  RedirectTable(const sim::SuvParams& p, std::uint32_t num_cores);

  struct Lookup {
    const RedirectEntry* entry = nullptr;  // nullptr: not redirected
    /// Second-level probe cycles; hidden when the data access goes to the
    /// network anyway (the coherence reply piggybacks the redirection).
    Cycle probe = 0;
    /// Mis-speculation squash cycles (swapped-out entry found in the memory
    /// table); always on the critical path.
    Cycle squash = 0;
  };

  /// Timed lookup from `core` for `original` (summary filter included).
  Lookup lookup(CoreId core, LineAddr original);

  /// Untimed entry access (state flips, inspection, tests).
  RedirectEntry* find(LineAddr original);
  const RedirectEntry* find(LineAddr original) const;

  /// Install a fresh transient entry for `owner`'s transaction. Returns the
  /// table cycles charged (zero when it fits the pinned first level; the
  /// second-level latency when the first level overflowed). Also updates the
  /// owner's summary signature.
  Cycle insert_transient(const RedirectEntry& e);

  /// A global entry just toggled to a transient state (g1v1 -> g1v0): pin it
  /// in the owner's first-level table. Returns the table cycles charged
  /// (second-level latency if the first level is out of pinnable slots).
  Cycle pin_transient(CoreId owner, LineAddr original);

  /// Outcome of a commit/abort flash flip on one entry.
  struct FlipOutcome {
    bool deleted = false;   // entry removed from the table
    LineAddr target = 0;    // the entry's pool target line (for reclamation)
  };

  /// Apply the commit flash flip to `original`'s entry: g0v1 -> g1v1
  /// (publish: unpin + add to every other core's summary) or g1v0 -> g0v0
  /// (delete: retract from all summaries and erase).
  FlipOutcome commit_entry(LineAddr original);

  /// Apply the abort flash flip: g0v1 -> g0v0 (remove: retract from the
  /// owner's summary and erase) or g1v0 -> g1v1 (revert to global).
  FlipOutcome abort_entry(LineAddr original);

  /// Number of transient entries currently pinned for `core`.
  std::uint32_t pinned_count(CoreId core) const {
    return static_cast<std::uint32_t>(l1_[core].pinned.size());
  }
  std::uint32_t l1_capacity() const { return params_.l1_table_entries; }

  std::size_t total_entries() const { return entries_.size(); }
  const TableStats& stats() const { return stats_; }

  /// Observability wiring (forwarded from SuvVm::set_obs).
  void set_obs(obs::Recorder* r) { obs_ = r; }
  const SummarySignature& summary(CoreId core) const { return summary_[core]; }
  /// Mutable summary access for corruption-injection tests ONLY.
  SummarySignature& summary_mut(CoreId core) { return summary_[core]; }

  // --- structural-audit inspection -----------------------------------------
  /// Visit every live redirect entry (ground truth, both hardware levels
  /// and the memory table) in ascending original-address order. The audits
  /// that consume this cap their violation reports, so a hash-order walk
  /// would let the FlatMap's hash/capacity policy pick which violations
  /// surface (suvlint: nondet-iteration). Audit-only; lookups never iterate.
  template <class Fn>
  void for_each_entry(Fn&& fn) const {
    std::vector<LineAddr> originals;
    originals.reserve(entries_.size());
    // lint: allow(nondet-iteration): order laundered by the sort below
    for (const auto& kv : entries_) originals.push_back(kv.first);
    std::sort(originals.begin(), originals.end());
    for (LineAddr o : originals) fn(entries_.find(o)->second);
  }
  /// Originals pinned in `core`'s first-level table (transient entries).
  const FlatSet<LineAddr>& pinned(CoreId core) const {
    return l1_[core].pinned;
  }
  /// Non-pinned originals cached in `core`'s first-level table (-> lru tick).
  const FlatMap<LineAddr, std::uint64_t>& l1_cached(CoreId core) const {
    return l1_[core].cached;
  }
  /// Visit every original cached in the shared second-level table.
  template <class Fn>
  void for_each_l2_way(Fn&& fn) const {
    for (const auto& s : l2_sets_) {
      for (const auto& w : s.ways) fn(w.first);
    }
  }

 private:
  struct L1Table {
    FlatMap<LineAddr, std::uint64_t> cached;  // line -> lru tick
    FlatSet<LineAddr> pinned;                 // transient entries
  };
  struct L2Set {
    std::vector<std::pair<LineAddr, std::uint64_t>> ways;  // line, lru tick
  };

  void l1_install(CoreId core, LineAddr l);
  void l2_install(LineAddr l);
  /// Owner of `l`'s live entry, for spill attribution (kNoCore if global).
  CoreId entry_owner(LineAddr l) const {
    const RedirectEntry* e = find(l);
    return e ? e->owner : kNoCore;
  }
  bool l2_contains(LineAddr l) const;
  void l2_erase(LineAddr l);
  L2Set& l2_set(LineAddr l) { return l2_sets_[l % l2_sets_.size()]; }
  const L2Set& l2_set(LineAddr l) const { return l2_sets_[l % l2_sets_.size()]; }
  void drop_from_caches(LineAddr l);

  sim::SuvParams params_;
  /// Ground truth. Entry pointers from find() are invalidated by
  /// insert_transient/commit_entry/abort_entry (open addressing moves
  /// slots); all call sites finish with a pointer before mutating.
  FlatMap<LineAddr, RedirectEntry> entries_;
  std::vector<L1Table> l1_;
  std::vector<L2Set> l2_sets_;
  std::vector<SummarySignature> summary_;
  std::uint64_t tick_ = 0;
  TableStats stats_;
  obs::Recorder* obs_ = nullptr;
};

}  // namespace suvtm::suv
