#include "suv/summary_signature.hpp"

#include <cassert>

namespace suvtm::suv {

SummarySignature::SummarySignature(std::uint32_t bits, std::uint32_t hashes)
    : bits_(bits), k_(hashes), counts_(bits, 0) {
  assert(hashes >= 1 && hashes <= 8);
}

// All three operations derive their k counter indices from one mix, exactly
// as Signature::hash(l, i, bits_) would (double hashing with an odd step),
// so the structure tests that predict bits via Signature::hash stay valid.

void SummarySignature::add(LineAddr l) {
  const std::uint64_t m = htm::Signature::mix(l);
  std::uint32_t b = static_cast<std::uint32_t>(m);
  const std::uint32_t step = static_cast<std::uint32_t>(m >> 32) | 1u;
  for (std::uint32_t i = 0; i < k_; ++i, b += step) {
    std::uint8_t& c = counts_[b & (bits_ - 1)];
    if (c != 0xff) ++c;
  }
  ++members_;
}

bool SummarySignature::remove(LineAddr l) {
  // Paper Figure 5: clear only the bits this address wrote *uniquely*;
  // shared (count > 1) bits are decremented but remain set, saturated
  // counters are left alone (the filter may only ever shrink toward the
  // truth, never under-approximate it).
  const std::uint64_t m = htm::Signature::mix(l);
  std::uint32_t b = static_cast<std::uint32_t>(m);
  const std::uint32_t step = static_cast<std::uint32_t>(m >> 32) | 1u;
  bool still_set = true;
  for (std::uint32_t i = 0; i < k_; ++i, b += step) {
    std::uint8_t& c = counts_[b & (bits_ - 1)];
    if (c != 0 && c != 0xff) --c;
    if (c == 0) still_set = false;
  }
  if (members_ > 0) --members_;
  return still_set;
}

bool SummarySignature::test(LineAddr l) const {
  const std::uint64_t m = htm::Signature::mix(l);
  std::uint32_t b = static_cast<std::uint32_t>(m);
  const std::uint32_t step = static_cast<std::uint32_t>(m >> 32) | 1u;
  for (std::uint32_t i = 0; i < k_; ++i, b += step) {
    if (counts_[b & (bits_ - 1)] == 0) return false;
  }
  return true;
}

void SummarySignature::clear() {
  members_ = 0;
  for (auto& c : counts_) c = 0;
}

}  // namespace suvtm::suv
