#include "suv/summary_signature.hpp"

#include <cassert>

namespace suvtm::suv {

SummarySignature::SummarySignature(std::uint32_t bits, std::uint32_t hashes)
    : bits_(bits), k_(hashes), counts_(bits, 0) {
  assert(hashes >= 1 && hashes <= 8);
}

void SummarySignature::add(LineAddr l) {
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint32_t b = htm::Signature::hash(l, i, bits_);
    if (counts_[b] != 0xff) ++counts_[b];
  }
  ++members_;
}

void SummarySignature::remove(LineAddr l) {
  // Paper Figure 5: clear only the bits this address wrote *uniquely*;
  // shared (count > 1) bits are decremented but remain set, saturated
  // counters are left alone (the filter may only ever shrink toward the
  // truth, never under-approximate it).
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint32_t b = htm::Signature::hash(l, i, bits_);
    if (counts_[b] != 0 && counts_[b] != 0xff) --counts_[b];
  }
  if (members_ > 0) --members_;
}

bool SummarySignature::test(LineAddr l) const {
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint32_t b = htm::Signature::hash(l, i, bits_);
    if (counts_[b] == 0) return false;
  }
  return true;
}

void SummarySignature::clear() {
  members_ = 0;
  for (auto& c : counts_) c = 0;
}

}  // namespace suvtm::suv
