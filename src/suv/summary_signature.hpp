// Redirect summary signature (paper Section IV-B, Figure 5).
//
// A Bloom filter over the set of redirected line addresses, used to skip the
// redirect-table lookup for the common un-redirected access. Unlike the
// read/write signatures it must support *removal* (entries are deleted when
// a line is redirected back to its original address), so a second bit-vector
// records which filter bits have been written exactly once; removal clears
// only those unique bits. This works like a truncated Bloom counter: the
// filter stays a superset of the true set (correctness), at the price of
// stale bits that cause wasteful lookups (performance only).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "htm/signature.hpp"

namespace suvtm::suv {

class SummarySignature {
 public:
  SummarySignature(std::uint32_t bits, std::uint32_t hashes);

  void add(LineAddr l);
  /// Returns true when the filter still tests positive for `l` afterwards
  /// (every one of its bits was shared or saturated -- a "stale" removal
  /// that keeps causing wasteful lookups).
  bool remove(LineAddr l);

  /// True if `l` may be redirected (false positives possible, no false
  /// negatives for present lines).
  bool test(LineAddr l) const;

  /// The "written exactly once" bit (paper Figure 5's second vector),
  /// exposed for structure tests.
  bool unique_bit(std::uint32_t bit) const { return counts_[bit] == 1; }
  bool filter_bit(std::uint32_t bit) const { return counts_[bit] != 0; }

  std::uint32_t bits() const { return bits_; }
  std::uint64_t size_estimate() const { return members_; }
  void clear();

 private:
  std::uint32_t bits_;
  std::uint32_t k_;
  std::uint64_t members_ = 0;
  // Conceptually: filter bit == (count != 0); unique vector == (count == 1).
  // An 8-bit saturating counter per filter bit backs both.
  std::vector<std::uint8_t> counts_;
};

}  // namespace suvtm::suv
