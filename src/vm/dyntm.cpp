#include "vm/dyntm.hpp"

#include "htm/htm_system.hpp"
#include "obs/recorder.hpp"

namespace suvtm::vm {

DynTm::DynTm(const sim::HtmParams& p, mem::MemorySystem& mem,
             std::unique_ptr<htm::VersionManager> inner, bool suv_backend)
    : params_(p), mem_(mem), inner_(std::move(inner)),
      suv_backend_(suv_backend), selector_(p.dyntm_selector_bits) {}

void DynTm::attach(htm::HtmSystem& htm) {
  htm::VersionManager::attach(htm);
  inner_->attach(htm);
}

Cycle DynTm::on_begin(htm::Txn& txn) {
  txn.lazy = selector_.predict_lazy(txn.site);
  if (txn.lazy) {
    ++dstats_.lazy_txns;
    return 0;  // no eager-mode begin work (FasTM's dirty write-back)
  }
  ++dstats_.eager_txns;
  return inner_->on_begin(txn);
}

htm::LoadAction DynTm::resolve_load(CoreId core, htm::Txn* txn, Addr a) {
  if (txn && lazy_buffer_mode(*txn)) {
    const Addr word = a & ~static_cast<Addr>(kWordBytes - 1);
    auto it = txn->redo.find(word);
    if (it != txn->redo.end()) return {a, 0, 0, it->second};
    return {a, 0, 0, std::nullopt};
  }
  return inner_->resolve_load(core, txn, a);
}

htm::StoreAction DynTm::on_tx_store(htm::Txn& txn, Addr a) {
  ++stats_.tx_stores;
  if (lazy_buffer_mode(txn)) {
    // Redo-buffered store: stays in the core's private buffer until commit.
    return {.target = a & ~static_cast<Addr>(kWordBytes - 1),
            .extra = 0,
            .extra_if_l1_hit = 0,
            .buffered = true};
  }
  // SUV backend handles lazy stores physically (redirection); eager mode
  // always delegates.
  return inner_->on_tx_store(txn, a);
}

bool DynTm::commit_ready(htm::Txn& txn) {
  if (!txn.lazy) return true;
  // Eager transactions own their lines via coherence: the committer cannot
  // take them away; it waits (bounded, to break mutual-wait deadlocks with
  // eager writers stalled on the committer's own write signature).
  constexpr std::uint32_t kMaxCommitWaits = 8;
  if (txn.commit_waits >= kMaxCommitWaits) return true;
  auto& txns = htm_->txn_view();
  for (CoreId c = 0; c < txns.size(); ++c) {
    if (c == txn.core) continue;
    const htm::Txn* t = txns[c];
    if (!t || !t->active() || t->lazy) continue;
    for (LineAddr l : txn.write_lines) {
      if (t->read_sig.test(l) || t->write_sig.test(l)) {
        ++txn.commit_waits;
        return false;
      }
    }
  }
  return true;
}

void DynTm::doom_conflicting(const htm::Txn& committer) {
  auto& txns = htm_->txn_view();
  for (CoreId c = 0; c < txns.size(); ++c) {
    if (c == committer.core) continue;
    htm::Txn* t = txns[c];
    if (!t || t->state != htm::TxnState::kRunning) continue;
    for (LineAddr l : committer.write_lines) {
      if (t->read_sig.test(l) || t->write_sig.test(l)) {
        htm_->doom(c, htm::AbortCause::kLazyCommitDoom);
        SUVTM_OBS_HOOK(obs_, on_conflict_edge(committer.core, c, l, t->site,
                                              htm::AbortCause::kLazyCommitDoom));
        ++dstats_.lazy_commit_dooms;
        break;
      }
    }
  }
  // Committer-wins must reach descheduled victims too: a suspended
  // transaction that read a line this commit publishes would otherwise
  // resume and commit its stale view. It cannot be aborted while parked,
  // so it is marked doomed and aborts on resume.
  dstats_.lazy_commit_dooms += htm_->doom_suspended_conflicting(committer);
}

Cycle DynTm::commit_cost(htm::Txn& txn) {
  if (!txn.lazy) return inner_->commit_cost(txn);

  // Lazy commit: committer wins -- conflicting running transactions abort.
  doom_conflicting(txn);
  Cycle c = params_.dyntm_arbitration;
  if (suv_backend_) {
    // Writes already sit in their redirected locations: publication is the
    // SUV flash flip.
    c += inner_->commit_cost(txn);
  } else {
    // Publish the redo buffer line by line (the paper's Committing time).
    c += params_.dyntm_publish_per_line *
         static_cast<Cycle>(txn.write_lines.size());
    // A redo buffer that outgrew the L1 pays memory traffic on top.
    if (txn.redo.size() * kWordBytes > mem_.params().l1_bytes) {
      ++dstats_.redo_overflows;
      ++stats_.data_overflows;
      c += params_.dyntm_publish_per_line *
           static_cast<Cycle>(txn.write_lines.size());
    }
  }
  return c;
}

void DynTm::on_commit_done(htm::Txn& txn) {
  selector_.record_commit(txn.site, txn.lazy);
  if (lazy_buffer_mode(txn)) {
    for (const auto& [addr, value] : txn.redo) mem_.store_word(addr, value);
    mem_.clear_speculative(txn.core);
    return;
  }
  inner_->on_commit_done(txn);
}

Cycle DynTm::abort_cost(htm::Txn& txn) {
  if (lazy_buffer_mode(txn)) return params_.dyntm_lazy_abort;
  return inner_->abort_cost(txn);
}

void DynTm::on_abort_done(htm::Txn& txn) {
  selector_.record_abort(txn.site, txn.lazy);
  if (lazy_buffer_mode(txn)) {
    // Buffered writes never reached memory: discarding the buffer suffices.
    mem_.clear_speculative(txn.core);
    return;
  }
  inner_->on_abort_done(txn);
}

void DynTm::on_spec_eviction(htm::Txn& txn, LineAddr l) {
  if (lazy_buffer_mode(txn)) {
    ++stats_.data_overflows;
    return;
  }
  inner_->on_spec_eviction(txn, l);
}

}  // namespace suvtm::vm
