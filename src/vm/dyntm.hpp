// DynTM (Lupon et al., MICRO'10): a history-based selector picks an eager
// or lazy execution mode per static transaction site. Eager transactions
// run exactly like the backing version manager (FasTM in the original
// paper, SUV in the paper's DynTM+SUV variant). Lazy transactions buffer
// their writes, skip eager read-write conflicts, and resolve conflicts at
// commit time (committer wins) behind a commit token.
//
// The Figure 9 difference this reproduces: with the FasTM backend a lazy
// commit must *publish* its write set line by line (the Committing bucket);
// with SUV the writes are already sitting in redirected locations, so
// publication is a flash flip and Committing nearly vanishes.
#pragma once

#include <cstdint>
#include <memory>

#include "common/flat_hash.hpp"
#include "htm/version_manager.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"

namespace suvtm::vm {

/// Per-site 2-bit saturating mode predictor. An abort suffered in eager
/// mode pushes the site toward lazy execution (eager handling of its
/// conflicts is losing); an abort suffered in lazy mode pushes it back
/// toward eager (committer-wins is slaughtering it); commits mildly
/// reinforce the mode that produced them. Quiet sites settle eager,
/// contended sites settle wherever their aborts are cheaper.
class ModeSelector {
 public:
  explicit ModeSelector(std::uint32_t bits = 2)
      : max_(static_cast<std::uint8_t>((1u << bits) - 1)),
        threshold_(static_cast<std::uint8_t>(1u << (bits - 1))) {}

  bool predict_lazy(std::uint32_t site) const {
    auto it = counters_.find(site);
    const std::uint8_t v = it == counters_.end() ? threshold_ : it->second;
    return v >= threshold_;
  }
  void record_abort(std::uint32_t site, bool was_lazy) {
    auto& v = counter(site);
    if (was_lazy) {
      if (v > 0) --v;  // lazy mode is losing work to committer-wins
    } else {
      if (v < max_) ++v;  // eager stalls/cycles are losing: go lazy
    }
  }
  void record_commit(std::uint32_t site, bool /*was_lazy*/) {
    // Commits always drift a site toward eager: eager commits are the
    // cheap case, so a site only stays lazy while eager-mode aborts keep
    // pushing it back.
    auto& v = counter(site);
    if (v > 0) --v;
  }

 private:
  std::uint8_t& counter(std::uint32_t site) {
    auto [it, inserted] = counters_.try_emplace(site, threshold_);
    return it->second;
  }
  std::uint8_t max_;
  std::uint8_t threshold_;
  FlatMap<std::uint32_t, std::uint8_t> counters_;
};

struct DynTmStats {
  std::uint64_t eager_txns = 0;
  std::uint64_t lazy_txns = 0;
  std::uint64_t lazy_commit_dooms = 0;  // victims of committer-wins
  std::uint64_t redo_overflows = 0;     // lazy write buffer exceeded the L1

  bool operator==(const DynTmStats&) const = default;
};

/// Sum `b` into `a` (harvesting a sharded machine's per-domain selectors).
inline void accumulate(DynTmStats& a, const DynTmStats& b) {
  a.eager_txns += b.eager_txns;
  a.lazy_txns += b.lazy_txns;
  a.lazy_commit_dooms += b.lazy_commit_dooms;
  a.redo_overflows += b.redo_overflows;
}

class DynTm final : public htm::VersionManager {
 public:
  /// `inner` handles eager-mode transactions (and, when `suv_backend`, the
  /// physical store redirection of lazy ones too).
  DynTm(const sim::HtmParams& p, mem::MemorySystem& mem,
        std::unique_ptr<htm::VersionManager> inner, bool suv_backend);

  const char* name() const override {
    return suv_backend_ ? "DynTM+SUV" : "DynTM";
  }

  void attach(htm::HtmSystem& htm) override;
  void set_obs(obs::Recorder* r) override {
    htm::VersionManager::set_obs(r);
    inner_->set_obs(r);
  }

  Cycle on_begin(htm::Txn& txn) override;
  bool commit_ready(htm::Txn& txn) override;
  htm::LoadAction resolve_load(CoreId core, htm::Txn* txn, Addr a) override;
  htm::StoreAction on_tx_store(htm::Txn& txn, Addr a) override;
  Cycle commit_cost(htm::Txn& txn) override;
  void on_commit_done(htm::Txn& txn) override;
  Cycle abort_cost(htm::Txn& txn) override;
  void on_abort_done(htm::Txn& txn) override;
  void on_spec_eviction(htm::Txn& txn, LineAddr l) override;
  std::size_t nest_mark(const htm::Txn& txn) const override {
    return lazy_buffer_mode(txn) ? 0 : inner_->nest_mark(txn);
  }
  bool supports_partial_abort(const htm::Txn& txn) const override {
    return !lazy_buffer_mode(txn);
  }
  Cycle partial_abort(htm::Txn& txn, std::size_t mark) override {
    return inner_->partial_abort(txn, mark);
  }
  void on_suspend(CoreId core) override { inner_->on_suspend(core); }
  void on_resume(CoreId core) override { inner_->on_resume(core); }

  Addr debug_resolve(CoreId core, Addr a) const override {
    return inner_->debug_resolve(core, a);
  }

  htm::VersionManager& inner() { return *inner_; }
  const DynTmStats& dyntm_stats() const { return dstats_; }
  ModeSelector& selector() { return selector_; }

 private:
  void doom_conflicting(const htm::Txn& committer);
  bool lazy_buffer_mode(const htm::Txn& txn) const {
    return txn.lazy && !suv_backend_;
  }

  sim::HtmParams params_;
  mem::MemorySystem& mem_;
  std::unique_ptr<htm::VersionManager> inner_;
  bool suv_backend_;
  ModeSelector selector_;
  DynTmStats dstats_;
};

}  // namespace suvtm::vm
