#include <memory>

#include "sim/simulator.hpp"
#include "vm/dyntm.hpp"
#include "vm/fastm.hpp"
#include "vm/logtm_se.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::sim {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kLogTmSe: return "LogTM-SE";
    case Scheme::kFasTm: return "FasTM";
    case Scheme::kSuv: return "SUV-TM";
    case Scheme::kDynTm: return "DynTM";
    case Scheme::kDynTmSuv: return "DynTM+SUV";
    default: return "?";
  }
}

std::unique_ptr<htm::VersionManager> make_version_manager(
    const SimConfig& cfg, mem::MemorySystem& mem) {
  switch (cfg.scheme) {
    case Scheme::kLogTmSe:
      return std::make_unique<vm::LogTmSe>(cfg.htm, mem);
    case Scheme::kFasTm:
      return std::make_unique<vm::FasTm>(cfg.htm, mem);
    case Scheme::kSuv:
      return std::make_unique<vm::SuvVm>(cfg.suv, mem, cfg.mem.num_cores);
    case Scheme::kDynTm:
      return std::make_unique<vm::DynTm>(
          cfg.htm, mem, std::make_unique<vm::FasTm>(cfg.htm, mem),
          /*suv_backend=*/false);
    case Scheme::kDynTmSuv:
      return std::make_unique<vm::DynTm>(
          cfg.htm, mem,
          std::make_unique<vm::SuvVm>(cfg.suv, mem, cfg.mem.num_cores),
          /*suv_backend=*/true);
  }
  return nullptr;
}

}  // namespace suvtm::sim
