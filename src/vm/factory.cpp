#include <memory>

#include "sim/simulator.hpp"
#include "vm/dyntm.hpp"
#include "vm/fastm.hpp"
#include "vm/logtm_se.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::sim {

// The one place scheme spellings live. Display names match the paper's
// figures; cli names are what benches and examples accept on the command
// line. Everything else (reports, traces, equivalence, parsing) goes
// through the accessors below.
const std::vector<SchemeInfo>& scheme_table() {
  static const std::vector<SchemeInfo> table = {
      {Scheme::kLogTmSe, "LogTM-SE", "logtm"},
      {Scheme::kFasTm, "FasTM", "fastm"},
      {Scheme::kSuv, "SUV-TM", "suv"},
      {Scheme::kDynTm, "DynTM", "dyntm"},
      {Scheme::kDynTmSuv, "DynTM+SUV", "dyntm-suv"},
  };
  return table;
}

const std::vector<Scheme>& all_schemes() {
  static const std::vector<Scheme> schemes = [] {
    std::vector<Scheme> out;
    for (const SchemeInfo& i : scheme_table()) out.push_back(i.scheme);
    return out;
  }();
  return schemes;
}

const char* scheme_name(Scheme s) {
  for (const SchemeInfo& i : scheme_table()) {
    if (i.scheme == s) return i.name;
  }
  return "?";
}

const char* scheme_cli_name(Scheme s) {
  for (const SchemeInfo& i : scheme_table()) {
    if (i.scheme == s) return i.cli_name;
  }
  return "?";
}

bool scheme_from_string(std::string_view s, Scheme* out) {
  for (const SchemeInfo& i : scheme_table()) {
    if (s == i.name || s == i.cli_name) {
      *out = i.scheme;
      return true;
    }
  }
  return false;
}

std::unique_ptr<htm::VersionManager> make_version_manager(
    const SimConfig& cfg, mem::MemorySystem& mem) {
  switch (cfg.scheme) {
    case Scheme::kLogTmSe:
      return std::make_unique<vm::LogTmSe>(cfg.htm, mem);
    case Scheme::kFasTm:
      return std::make_unique<vm::FasTm>(cfg.htm, mem);
    case Scheme::kSuv:
      return std::make_unique<vm::SuvVm>(cfg.suv, mem, cfg.mem.num_cores);
    case Scheme::kDynTm:
      return std::make_unique<vm::DynTm>(
          cfg.htm, mem, std::make_unique<vm::FasTm>(cfg.htm, mem),
          /*suv_backend=*/false);
    case Scheme::kDynTmSuv:
      return std::make_unique<vm::DynTm>(
          cfg.htm, mem,
          std::make_unique<vm::SuvVm>(cfg.suv, mem, cfg.mem.num_cores),
          /*suv_backend=*/true);
  }
  return nullptr;
}

}  // namespace suvtm::sim
