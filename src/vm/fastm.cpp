#include "vm/fastm.hpp"

#include "mem/cache.hpp"
#include "obs/recorder.hpp"
#include "vm/logtm_se.hpp"

namespace suvtm::vm {

htm::StoreAction FasTm::on_tx_store(htm::Txn& txn, Addr a) {
  ++stats_.tx_stores;
  const LineAddr line = line_of(a);
  Cycle extra = 0;

  if (txn.degenerated) {
    // LogTM-SE path: pay log maintenance for words not yet logged.
    extra = log_undo_word(txn, a, mem_, params_, stats_, /*charge_cycles=*/true);
    return {a, extra, false};
  }

  // Fast path. Functionally capture the old word for rollback (the hardware
  // keeps it in L2; zero model cost). First write to a *dirty* resident line
  // pushes the old line down first.
  if (txn.write_lines.count(line) == 0) {
    const mem::Cache::Line* ln = mem_.l1(txn.core).find(line);
    if (ln && ln->state == mem::CohState::kModified && !ln->speculative) {
      ++fstats_.dirty_writebacks;
      extra += params_.fastm_writeback_extra;
    }
  }
  log_undo_word(txn, a, mem_, params_, stats_, /*charge_cycles=*/false);
  return {a, extra, false};
}

Cycle FasTm::commit_cost(htm::Txn&) { return params_.fastm_flash_commit; }

void FasTm::on_commit_done(htm::Txn& txn) {
  mem_.clear_speculative(txn.core);
}

Cycle FasTm::abort_cost(htm::Txn& txn) {
  if (!txn.degenerated) {
    ++fstats_.fast_aborts;
    return params_.fastm_flash_abort;
  }
  // Degenerated: flash what is still in the L1, walk the software log for
  // the words stored after degeneration.
  ++fstats_.slow_aborts;
  const Cycle walked =
      static_cast<Cycle>(txn.undo.size() - txn.degen_undo_mark);
  SUVTM_OBS_HOOK(obs_, on_undo_walk(walked));
  return params_.fastm_flash_abort + params_.abort_trap_latency +
         params_.abort_per_entry * walked;
}

void FasTm::on_abort_done(htm::Txn& txn) {
  // Old values come back by invalidating SM lines (demand refetch pulls the
  // safe copies from L2); functionally we restore from the shadow log.
  restore_undo_log(txn, mem_);
  mem_.invalidate_speculative(txn.core);
}

Cycle FasTm::partial_abort(htm::Txn& txn, std::size_t mark) {
  // Restore the frame's words from the shadow log. On the fast path the
  // hardware refetches old lines from the L2 instead of walking a log, so
  // only degenerated transactions pay the per-entry software cost.
  std::size_t walked = 0;
  while (txn.undo.size() > mark) {
    const auto [addr, old] = txn.undo.back();
    mem_.store_word(addr, old);
    txn.logged_words.erase(addr);
    txn.undo.pop_back();
    ++walked;
  }
  if (txn.degenerated && txn.undo.size() < txn.degen_undo_mark) {
    txn.degen_undo_mark = txn.undo.size();
  }
  return txn.degenerated
             ? params_.abort_trap_latency / 2 +
                   params_.abort_per_entry * static_cast<Cycle>(walked)
             : params_.fastm_flash_abort;
}

void FasTm::on_spec_eviction(htm::Txn& txn, LineAddr) {
  ++stats_.data_overflows;
  ++stats_.spec_overflows;
  if (!txn.degenerated) {
    txn.degenerated = true;
    txn.degen_undo_mark = txn.undo.size();
    ++stats_.degenerations;
    SUVTM_OBS_HOOK(obs_, on_degeneration(txn.core));
  }
}

}  // namespace suvtm::vm
