// FasTM version management (Lupon et al., PACT'09): eager conflict
// detection with new values held in the L1 cache (SM-marked lines) and old
// values safe in the lower memory hierarchy.
//
// Fast path: the first transactional write to an L1-dirty line first writes
// the old line back to L2; no undo-log maintenance. Commit flash-clears SM
// bits; abort flash-invalidates SM lines (old values refetch on demand).
//
// Degenerate path: when an SM line is evicted (speculative state can no
// longer be contained in the L1), the transaction falls back to LogTM-SE
// behaviour from that point -- subsequent stores pay log maintenance and the
// abort becomes a software log walk (paper Section V-B: "degenerates to
// LogTM-SE when the L1 cache overflows").
#pragma once

#include <cstdint>

#include "htm/version_manager.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"

namespace suvtm::vm {

struct FasTmStats {
  std::uint64_t dirty_writebacks = 0;  // old-line writebacks on first write
  std::uint64_t fast_aborts = 0;
  std::uint64_t slow_aborts = 0;       // aborts after degeneration
};

class FasTm final : public htm::VersionManager {
 public:
  FasTm(const sim::HtmParams& p, mem::MemorySystem& mem)
      : params_(p), mem_(mem) {
    loads_in_place_ = true;  // resolve_load below is the identity action
  }

  const char* name() const override { return "FasTM"; }

  Cycle on_begin(htm::Txn&) override { return params_.fastm_begin_extra; }

  htm::LoadAction resolve_load(CoreId, htm::Txn*, Addr a) override {
    return {a, 0, 0, std::nullopt};
  }

  htm::StoreAction on_tx_store(htm::Txn& txn, Addr a) override;
  Cycle commit_cost(htm::Txn& txn) override;
  void on_commit_done(htm::Txn& txn) override;
  Cycle abort_cost(htm::Txn& txn) override;
  void on_abort_done(htm::Txn& txn) override;
  void on_spec_eviction(htm::Txn& txn, LineAddr l) override;
  Cycle partial_abort(htm::Txn& txn, std::size_t mark) override;

  const FasTmStats& fastm_stats() const { return fstats_; }

 private:
  sim::HtmParams params_;
  mem::MemorySystem& mem_;
  FasTmStats fstats_;
};

}  // namespace suvtm::vm
