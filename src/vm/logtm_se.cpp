#include "vm/logtm_se.hpp"

#include "obs/recorder.hpp"

namespace suvtm::vm {

Cycle log_undo_word(htm::Txn& txn, Addr a, mem::MemorySystem& mem,
                    const sim::HtmParams& p, htm::VmStats& stats,
                    bool charge_cycles) {
  const Addr word = a & ~static_cast<Addr>(kWordBytes - 1);
  if (txn.logged_words.count(word)) return 0;
  txn.logged_words.insert(word);
  txn.undo.emplace_back(word, mem.load_word(word));
  ++stats.log_entries;
  if (!charge_cycles) return 0;
  Cycle extra = p.log_store_extra;
  // A 64-byte log line holds eight 8-byte-old-value records; each new log
  // line costs a store-miss fill.
  if (txn.undo.size() % kWordsPerLine == 1) extra += p.log_new_line_extra;
  return extra;
}

void restore_undo_log(htm::Txn& txn, mem::MemorySystem& mem) {
  for (auto it = txn.undo.rbegin(); it != txn.undo.rend(); ++it) {
    mem.store_word(it->first, it->second);
  }
}

htm::StoreAction LogTmSe::on_tx_store(htm::Txn& txn, Addr a) {
  ++stats_.tx_stores;
  const Cycle extra =
      log_undo_word(txn, a, mem_, params_, stats_, /*charge_cycles=*/true);
  return {a, extra, false};
}

Cycle LogTmSe::commit_cost(htm::Txn&) {
  // Discard the log and flash-clear signatures: constant time.
  return 4;
}

void LogTmSe::on_commit_done(htm::Txn& txn) {
  mem_.clear_speculative(txn.core);
}

Cycle LogTmSe::abort_cost(htm::Txn& txn) {
  // Trap into the software handler, then restore entries one by one; the
  // isolation window stays open throughout (repair pathology).
  SUVTM_OBS_HOOK(obs_, on_undo_walk(txn.undo.size()));
  return params_.abort_trap_latency +
         params_.abort_per_entry * static_cast<Cycle>(txn.undo.size());
}

void LogTmSe::on_abort_done(htm::Txn& txn) {
  restore_undo_log(txn, mem_);
  mem_.clear_speculative(txn.core);
}

Cycle LogTmSe::partial_abort(htm::Txn& txn, std::size_t mark) {
  // Walk only the innermost frame's undo entries, newest first.
  std::size_t walked = 0;
  while (txn.undo.size() > mark) {
    const auto [addr, old] = txn.undo.back();
    mem_.store_word(addr, old);
    txn.logged_words.erase(addr);
    txn.undo.pop_back();
    ++walked;
  }
  return params_.abort_trap_latency / 2 +
         params_.abort_per_entry * static_cast<Cycle>(walked);
}

void LogTmSe::on_spec_eviction(htm::Txn&, LineAddr) {
  // In-place updates with sticky signatures: eviction of transactional data
  // is legal, it just counts as a transactional overflow (Table V).
  ++stats_.data_overflows;
}

}  // namespace suvtm::vm
