// LogTM-SE version management (Yen et al., HPCA'07): eager, in-place
// updates with a software-walked undo log.
//
// Cost model (paper Section II): each first transactional store to a word
// performs one extra load (read the old value) and one store (append to the
// per-thread undo log); every 8th log entry opens a new log line. Commit
// discards the log (cheap). Abort traps into a software handler that walks
// the log backwards restoring old values -- all while the transaction's
// isolation is still held, which is the repair pathology the paper targets.
#pragma once

#include "htm/version_manager.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"

namespace suvtm::vm {

class LogTmSe final : public htm::VersionManager {
 public:
  LogTmSe(const sim::HtmParams& p, mem::MemorySystem& mem)
      : params_(p), mem_(mem) {
    loads_in_place_ = true;  // resolve_load below is the identity action
  }

  const char* name() const override { return "LogTM-SE"; }

  htm::LoadAction resolve_load(CoreId, htm::Txn*, Addr a) override {
    return {a, 0, 0, std::nullopt};
  }

  htm::StoreAction on_tx_store(htm::Txn& txn, Addr a) override;
  Cycle commit_cost(htm::Txn& txn) override;
  void on_commit_done(htm::Txn& txn) override;
  Cycle abort_cost(htm::Txn& txn) override;
  void on_abort_done(htm::Txn& txn) override;
  void on_spec_eviction(htm::Txn& txn, LineAddr l) override;
  Cycle partial_abort(htm::Txn& txn, std::size_t mark) override;

 private:
  sim::HtmParams params_;
  mem::MemorySystem& mem_;
};

/// Shared helper: append a word-granularity undo record (old value of `a`)
/// if this transaction has not logged the word yet. Returns the extra
/// cycles the log maintenance costs. Used by LogTM-SE always and by FasTM
/// after it degenerates.
Cycle log_undo_word(htm::Txn& txn, Addr a, mem::MemorySystem& mem,
                    const sim::HtmParams& p, htm::VmStats& stats,
                    bool charge_cycles);

/// Shared helper: functionally restore all logged words (newest first).
void restore_undo_log(htm::Txn& txn, mem::MemorySystem& mem);

}  // namespace suvtm::vm
