#include "vm/suv_vm.hpp"

#include <cassert>

#include "obs/recorder.hpp"

namespace suvtm::vm {

namespace {
Addr with_line(LineAddr l, Addr original) {
  return addr_of_line(l) | (original & (kLineBytes - 1));
}
}  // namespace

SuvVm::SuvVm(const sim::SuvParams& p, mem::MemorySystem& mem,
             std::uint32_t num_cores)
    : params_(p), mem_(mem), table_(p, num_cores), owned_(num_cores),
      suspended_owned_(num_cores) {
  pools_.reserve(num_cores);
  for (std::uint32_t c = 0; c < num_cores; ++c) {
    pools_.push_back(std::make_unique<suv::PreservedPool>(c));
  }
}

htm::LoadAction SuvVm::resolve_load(CoreId core, htm::Txn* txn, Addr a) {
  if (txn) ++stats_.tx_loads;
  const auto res = table_.lookup(core, line_of(a));
  if (!res.entry) return {a, res.squash, res.probe, std::nullopt};
  const LineAddr target = res.entry->resolve_for(core);
  return {with_line(target, a), res.squash, res.probe, std::nullopt};
}

Addr SuvVm::debug_resolve(CoreId core, Addr a) const {
  const suv::RedirectEntry* e = table_.find(line_of(a));
  if (!e) return a;
  return with_line(e->resolve_for(core), a);
}

htm::StoreAction SuvVm::on_tx_store(htm::Txn& txn, Addr a) {
  ++stats_.tx_stores;
  const LineAddr line = line_of(a);
  const auto res = table_.lookup(txn.core, line);
  Cycle extra = res.squash;
  const Cycle probe = res.probe;

  if (!res.entry) {
    // Fresh redirect: allocate a pool line, seed it with the line's current
    // content (one in-cache copy), install the transient entry. The store
    // itself then lands at the redirected address -- the single update. The
    // target line materializes directly in the L1 (its data came from the
    // copy), so no memory fetch happens for it.
    const LineAddr target = pools_[txn.core]->allocate();
    mem_.backing().copy_line(line, target);
    if (mem_.install_line(txn.core, target)) {
      txn.overflowed = true;
      on_spec_eviction(txn, target);
    }
    suv::RedirectEntry e{line, target, suv::EntryState::kTxnRedirect, txn.core};
    extra += table_.insert_transient(e) + params_.redirect_copy_latency;
    owned_[txn.core].push_back(line);
    ++sstats_.entries_created;
    return {with_line(target, a), extra, probe, false};
  }

  suv::RedirectEntry* e = table_.find(line);
  assert(e);
  switch (e->state) {
    case suv::EntryState::kTxnRedirect:
      assert(e->owner == txn.core && "conflict detection admitted a foreign store");
      return {with_line(e->target, a), extra, probe, false};
    case suv::EntryState::kTxnUnredirect:
      assert(e->owner == txn.core && "conflict detection admitted a foreign store");
      return {with_line(e->original, a), extra, probe, false};
    case suv::EntryState::kGlobalRedirect: {
      // Toggle: redirect back to the original address (paper Figure 4(d)).
      // New values build in the original line; the global target keeps the
      // old version for abort. Commit deletes the entry entirely, which is
      // SUV's entry-count reduction feature. The copy materializes the
      // original line in the L1.
      mem_.backing().copy_line(e->target, e->original);
      if (mem_.install_line(txn.core, e->original)) {
        txn.overflowed = true;
        on_spec_eviction(txn, e->original);
      }
      e->state = suv::EntryState::kTxnUnredirect;
      e->owner = txn.core;
      extra += table_.pin_transient(txn.core, line) + params_.redirect_copy_latency;
      owned_[txn.core].push_back(line);
      ++sstats_.entries_toggled;
      return {with_line(e->original, a), extra, probe, false};
    }
    case suv::EntryState::kInvalid:
    default:
      assert(false && "invalid entries must not be reachable from the table");
      return {a, extra, probe, false};
  }
}

Cycle SuvVm::overflow_flip_cost(const htm::Txn& txn) const {
  const std::size_t owned = owned_[txn.core].size();
  const std::size_t cap = table_.l1_capacity();
  if (owned <= cap) return 0;
  // Spilled entries flip through the shared second-level table, one access
  // plus a cycle per entry.
  return params_.l2_table_latency +
         static_cast<Cycle>(owned - cap);
}

Cycle SuvVm::commit_cost(htm::Txn& txn) {
  Cycle c = params_.flash_commit + overflow_flip_cost(txn);
  if (owned_[txn.core].size() > table_.l1_capacity()) {
    ++sstats_.table_overflow_txns;
  }
  SUVTM_OBS_HOOK(obs_, on_suv_flash(txn.core, /*commit=*/true,
                                    owned_[txn.core].size()));
  return c;
}

void SuvVm::on_commit_done(htm::Txn& txn) {
  for (LineAddr line : owned_[txn.core]) {
    const auto out = table_.commit_entry(line);
    if (out.deleted) {
      ++sstats_.entries_deleted;
      pools_[suv::PreservedPool::owner_of(out.target)]->release(out.target);
    } else {
      ++sstats_.entries_published;
      // The original line's storage is now dead (all accesses go to the
      // target); the paper reclaims it for later redirections.
      pools_[txn.core]->note_reclaimable_original();
    }
  }
  owned_[txn.core].clear();
  mem_.clear_speculative(txn.core);
}

Cycle SuvVm::abort_cost(htm::Txn& txn) {
  SUVTM_OBS_HOOK(obs_, on_suv_flash(txn.core, /*commit=*/false,
                                    owned_[txn.core].size()));
  return params_.flash_abort + overflow_flip_cost(txn);
}

Cycle SuvVm::partial_abort(htm::Txn& txn, std::size_t mark) {
  // Flash-flip only the transient entries the discarded frame created; the
  // outer frame's entries (and any toggles it made) survive untouched.
  auto& owned = owned_[txn.core];
  while (owned.size() > mark) {
    const auto out = table_.abort_entry(owned.back());
    if (out.deleted) {
      ++sstats_.entries_discarded;
      pools_[suv::PreservedPool::owner_of(out.target)]->release(out.target);
    } else {
      ++sstats_.entries_reverted;
    }
    owned.pop_back();
  }
  return params_.flash_abort;
}

void SuvVm::on_suspend(CoreId core) {
  // The ownership list is keyed by core, not by transaction: park it with
  // the suspended transaction or the core's NEXT transaction inherits the
  // suspended one's transient entries and flash-flips them at its own
  // commit/abort (publishing or discarding a parked transaction's specula-
  // tive versions).
  suspended_owned_[core].push_back(std::move(owned_[core]));
  owned_[core].clear();
}

void SuvVm::on_resume(CoreId core) {
  // HtmSystem::resume_txn restores the FIRST suspended transaction for the
  // core; restore its ownership list in the same FIFO order.
  assert(owned_[core].empty() &&
         "resume with a running transaction's entries still live");
  assert(!suspended_owned_[core].empty());
  owned_[core] = std::move(suspended_owned_[core].front());
  suspended_owned_[core].erase(suspended_owned_[core].begin());
}

void SuvVm::on_abort_done(htm::Txn& txn) {
  for (LineAddr line : owned_[txn.core]) {
    const auto out = table_.abort_entry(line);
    if (out.deleted) {
      ++sstats_.entries_discarded;
      pools_[suv::PreservedPool::owner_of(out.target)]->release(out.target);
    } else {
      // A toggled entry reverted to kGlobalRedirect; nothing to free.
      ++sstats_.entries_reverted;
    }
  }
  owned_[txn.core].clear();
  // No invalidations: the original lines still hold the pre-transaction
  // values (single-update property); pool lines are simply released.
  mem_.clear_speculative(txn.core);
}

}  // namespace suvtm::vm
