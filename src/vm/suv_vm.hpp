// SUV version management -- the paper's contribution.
//
// Every transactional store is redirected to a line in the per-core
// preserved pool (or toggled back to its original line if a global redirect
// entry already exists); the redirect table tracks the mapping. Commit and
// abort are flash bit-flips over the transaction's transient entries:
// exactly one data update happens per store regardless of outcome, so both
// ends of the transaction release isolation in near-constant time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "htm/version_manager.hpp"
#include "mem/memory_system.hpp"
#include "sim/config.hpp"
#include "suv/pool.hpp"
#include "suv/redirect_table.hpp"

namespace suvtm::vm {

struct SuvVmStats {
  std::uint64_t entries_created = 0;     // fresh transient redirects
  std::uint64_t entries_toggled = 0;     // redirect-back on a global entry
  std::uint64_t entries_published = 0;   // transient -> global at commit
  std::uint64_t entries_deleted = 0;     // toggle-commit deletions
  std::uint64_t entries_discarded = 0;   // transient removed at abort
  std::uint64_t entries_reverted = 0;    // toggle rolled back to global
  std::uint64_t table_overflow_txns = 0; // txns whose entries spilled the L1 table

  bool operator==(const SuvVmStats&) const = default;
};

/// Sum `b` into `a` (harvesting a sharded machine's per-domain SUV state).
inline void accumulate(SuvVmStats& a, const SuvVmStats& b) {
  a.entries_created += b.entries_created;
  a.entries_toggled += b.entries_toggled;
  a.entries_published += b.entries_published;
  a.entries_deleted += b.entries_deleted;
  a.entries_discarded += b.entries_discarded;
  a.entries_reverted += b.entries_reverted;
  a.table_overflow_txns += b.table_overflow_txns;
}

class SuvVm final : public htm::VersionManager {
 public:
  SuvVm(const sim::SuvParams& p, mem::MemorySystem& mem,
        std::uint32_t num_cores);

  const char* name() const override { return "SUV-TM"; }

  void set_obs(obs::Recorder* r) override {
    htm::VersionManager::set_obs(r);
    table_.set_obs(r);
    for (auto& p : pools_) p->set_obs(r);
  }

  htm::LoadAction resolve_load(CoreId core, htm::Txn* txn, Addr a) override;
  Addr debug_resolve(CoreId core, Addr a) const override;
  htm::StoreAction on_tx_store(htm::Txn& txn, Addr a) override;
  Cycle commit_cost(htm::Txn& txn) override;
  void on_commit_done(htm::Txn& txn) override;
  Cycle abort_cost(htm::Txn& txn) override;
  void on_abort_done(htm::Txn& txn) override;
  std::size_t nest_mark(const htm::Txn& txn) const override {
    return owned_[txn.core].size();
  }
  Cycle partial_abort(htm::Txn& txn, std::size_t mark) override;
  void on_suspend(CoreId core) override;
  void on_resume(CoreId core) override;

  suv::RedirectTable& table() { return table_; }
  const suv::RedirectTable& table() const { return table_; }
  suv::PreservedPool& pool(CoreId c) { return *pools_[c]; }
  const suv::PreservedPool& pool(CoreId c) const { return *pools_[c]; }
  const SuvVmStats& suv_stats() const { return sstats_; }

  /// Originals with transient entries owned by `core`'s RUNNING transaction.
  const std::vector<LineAddr>& owned_lines(CoreId c) const {
    return owned_[c];
  }
  /// Visit every original with a transient entry attributable to `core`:
  /// the running transaction's plus any suspended transactions' (audits).
  template <class Fn>
  void for_each_owned(CoreId c, Fn&& fn) const {
    for (LineAddr l : owned_[c]) fn(l);
    for (const auto& stash : suspended_owned_[c]) {
      for (LineAddr l : stash) fn(l);
    }
  }

 private:
  /// Extra commit/abort flash cost for entries that spilled to the shared
  /// second-level table (their flips cannot ride the per-core flash).
  Cycle overflow_flip_cost(const htm::Txn& txn) const;

  sim::SuvParams params_;
  mem::MemorySystem& mem_;
  suv::RedirectTable table_;
  std::vector<std::unique_ptr<suv::PreservedPool>> pools_;
  /// Lines with transient entries owned by each core's running transaction.
  std::vector<std::vector<LineAddr>> owned_;
  /// Ownership lists parked by on_suspend, FIFO per core (matching
  /// HtmSystem's suspended-transaction order for the core).
  std::vector<std::vector<std::vector<LineAddr>>> suspended_owned_;
  SuvVmStats sstats_;
};

}  // namespace suvtm::vm
