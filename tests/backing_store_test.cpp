#include <gtest/gtest.h>

#include "mem/backing_store.hpp"

namespace suvtm::mem {
namespace {

TEST(BackingStoreTest, UntouchedMemoryReadsZero) {
  BackingStore bs;
  EXPECT_EQ(bs.load(0), 0u);
  EXPECT_EQ(bs.load(0xdeadbeef00), 0u);
  EXPECT_EQ(bs.pages_touched(), 0u);
}

TEST(BackingStoreTest, StoreLoadRoundtrip) {
  BackingStore bs;
  bs.store(0x100, 42);
  EXPECT_EQ(bs.load(0x100), 42u);
  EXPECT_EQ(bs.load(0x108), 0u);
}

TEST(BackingStoreTest, SubWordAddressesAliasTheWord) {
  BackingStore bs;
  bs.store(0x100, 7);
  EXPECT_EQ(bs.load(0x103), 7u);  // same aligned word
}

TEST(BackingStoreTest, PagesAllocatedLazily) {
  BackingStore bs;
  bs.store(0 * kPageBytes, 1);
  bs.store(5 * kPageBytes, 2);
  EXPECT_EQ(bs.pages_touched(), 2u);
  bs.store(5 * kPageBytes + 8, 3);
  EXPECT_EQ(bs.pages_touched(), 2u);
}

TEST(BackingStoreTest, HighAddressesWork) {
  BackingStore bs;
  const Addr a = (1ull << 40) + 64;  // redirect-pool territory
  bs.store(a, 99);
  EXPECT_EQ(bs.load(a), 99u);
}

TEST(BackingStoreTest, CopyLineCopiesAllWords) {
  BackingStore bs;
  const Addr src = 0x1000;
  for (std::uint32_t w = 0; w < kWordsPerLine; ++w) {
    bs.store(src + w * kWordBytes, 100 + w);
  }
  bs.copy_line(line_of(src), line_of(src) + 10);
  const Addr dst = src + 10 * kLineBytes;
  for (std::uint32_t w = 0; w < kWordsPerLine; ++w) {
    EXPECT_EQ(bs.load(dst + w * kWordBytes), 100u + w);
  }
  // Source unchanged.
  EXPECT_EQ(bs.load(src), 100u);
}

TEST(BackingStoreTest, CopyLineAcrossPages) {
  BackingStore bs;
  bs.store(kPageBytes - kLineBytes, 5);  // last line of page 0
  bs.copy_line(line_of(kPageBytes - kLineBytes), line_of(3 * kPageBytes));
  EXPECT_EQ(bs.load(3 * kPageBytes), 5u);
}

}  // namespace
}  // namespace suvtm::mem
