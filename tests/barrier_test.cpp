#include <gtest/gtest.h>

#include <vector>

#include "sim/barrier.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace suvtm::sim {
namespace {

struct Sleep {
  Scheduler& sched;
  Cycle delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { sched.resume_after(delay, h); }
  void await_resume() const noexcept {}
};

ThreadTask party(Scheduler& s, Barrier& b, Cycle arrive_delay, Cycle* waited,
                 Cycle* released_at) {
  co_await Sleep{s, arrive_delay};
  *waited = co_await b.arrive();
  *released_at = s.now();
}

TEST(BarrierTest, ReleasesAllTogether) {
  Scheduler s;
  Barrier b(s, 3);
  Cycle waited[3] = {}, released[3] = {};
  std::vector<ThreadTask> tasks;
  bool done[3] = {};
  std::exception_ptr errs[3];
  for (int i = 0; i < 3; ++i) {
    tasks.push_back(party(s, b, static_cast<Cycle>(10 * (i + 1)), &waited[i],
                          &released[i]));
  }
  for (int i = 0; i < 3; ++i) {
    auto h = tasks[i].prepare(&done[i], &errs[i]);
    s.at(0, [h] { h.resume(); });
  }
  s.run(10000);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(done[i]);
  // Last arriver (t=30) releases; waiters resume at t=31, itself at t=30.
  EXPECT_EQ(released[0], 31u);
  EXPECT_EQ(released[1], 31u);
  EXPECT_EQ(released[2], 30u);
  EXPECT_EQ(waited[0], 20u);
  EXPECT_EQ(waited[1], 10u);
  EXPECT_EQ(waited[2], 0u);
}

ThreadTask repeat_party(Scheduler& s, Barrier& b, int rounds, int* count) {
  for (int r = 0; r < rounds; ++r) {
    co_await Sleep{s, 1};
    co_await b.arrive();
    ++*count;
  }
}

TEST(BarrierTest, ReusableAcrossRounds) {
  Scheduler s;
  Barrier b(s, 4);
  int counts[4] = {};
  std::vector<ThreadTask> tasks;
  bool done[4] = {};
  std::exception_ptr errs[4];
  for (int i = 0; i < 4; ++i) tasks.push_back(repeat_party(s, b, 5, &counts[i]));
  for (int i = 0; i < 4; ++i) {
    auto h = tasks[i].prepare(&done[i], &errs[i]);
    s.at(0, [h] { h.resume(); });
  }
  s.run(100000);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(done[i]);
    EXPECT_EQ(counts[i], 5);
  }
}

TEST(BarrierTest, SinglePartyNeverBlocks) {
  Scheduler s;
  Barrier b(s, 1);
  Cycle waited = 99, released = 0;
  ThreadTask t = party(s, b, 5, &waited, &released);
  bool done = false;
  std::exception_ptr err;
  s.at(0, [h = t.prepare(&done, &err)] { h.resume(); });
  s.run(1000);
  EXPECT_TRUE(done);
  EXPECT_EQ(waited, 0u);
  EXPECT_EQ(released, 5u);
}

}  // namespace
}  // namespace suvtm::sim
