#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/breakdown.hpp"

namespace suvtm::sim {
namespace {

TEST(BreakdownTest, StartsEmpty) {
  Breakdown b;
  EXPECT_EQ(b.total(), 0u);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    EXPECT_EQ(b.get(static_cast<Bucket>(i)), 0u);
  }
}

TEST(BreakdownTest, AddAndTotal) {
  Breakdown b;
  b.add(Bucket::kTrans, 10);
  b.add(Bucket::kTrans, 5);
  b.add(Bucket::kStalled, 7);
  EXPECT_EQ(b.get(Bucket::kTrans), 15u);
  EXPECT_EQ(b.get(Bucket::kStalled), 7u);
  EXPECT_EQ(b.total(), 22u);
}

TEST(BreakdownTest, Accumulate) {
  Breakdown a, b;
  a.add(Bucket::kNoTrans, 3);
  b.add(Bucket::kNoTrans, 4);
  b.add(Bucket::kBarrier, 1);
  a += b;
  EXPECT_EQ(a.get(Bucket::kNoTrans), 7u);
  EXPECT_EQ(a.get(Bucket::kBarrier), 1u);
}

TEST(BreakdownTest, Reset) {
  Breakdown b;
  b.add(Bucket::kWasted, 9);
  b.reset();
  EXPECT_EQ(b.total(), 0u);
}

TEST(BreakdownTest, BucketNamesUniqueAndNamed) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::string n = bucket_name(static_cast<Bucket>(i));
    EXPECT_NE(n, "?");
    names.insert(n);
  }
  EXPECT_EQ(names.size(), kNumBuckets);
}

TEST(AttemptAccountTest, CommitCreditsTransAndStalled) {
  AttemptAccount acc;
  Breakdown out;
  acc.add_trans(10);
  acc.add_stalled(4);
  acc.settle_commit(out);
  EXPECT_EQ(out.get(Bucket::kTrans), 10u);
  EXPECT_EQ(out.get(Bucket::kStalled), 4u);
  EXPECT_EQ(out.get(Bucket::kWasted), 0u);
}

TEST(AttemptAccountTest, AbortConvertsTransToWasted) {
  AttemptAccount acc;
  Breakdown out;
  acc.add_trans(10);
  acc.add_stalled(4);
  acc.settle_abort(out);
  EXPECT_EQ(out.get(Bucket::kTrans), 0u);
  EXPECT_EQ(out.get(Bucket::kWasted), 10u);
  EXPECT_EQ(out.get(Bucket::kStalled), 4u);
}

TEST(AttemptAccountTest, SettleResetsForNextAttempt) {
  AttemptAccount acc;
  Breakdown out;
  acc.add_trans(10);
  acc.settle_abort(out);
  acc.add_trans(3);
  acc.settle_commit(out);
  EXPECT_EQ(out.get(Bucket::kWasted), 10u);
  EXPECT_EQ(out.get(Bucket::kTrans), 3u);
}

}  // namespace
}  // namespace suvtm::sim
