#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace suvtm::mem {
namespace {

// 4 sets x 2 ways: small enough to exercise eviction deterministically.
Cache tiny() { return Cache(4 * 2 * kLineBytes, 2); }

// Lines mapping to set 0 of the tiny cache (4 sets).
constexpr LineAddr set0(std::uint64_t k) { return k * 4; }

TEST(CacheTest, Geometry) {
  Cache c(32 * 1024, 4);
  EXPECT_EQ(c.num_sets(), 128u);  // 32KB / 64B / 4 -- the 7-bit L1 index
  EXPECT_EQ(c.assoc(), 4u);
  Cache t = tiny();
  EXPECT_EQ(t.num_sets(), 4u);
}

TEST(CacheTest, MissThenHit) {
  Cache c = tiny();
  EXPECT_EQ(c.find(5), nullptr);
  c.insert(5, CohState::kShared);
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.find(5)->state, CohState::kShared);
}

TEST(CacheTest, InsertUpdatesExistingState) {
  Cache c = tiny();
  c.insert(5, CohState::kShared);
  auto v = c.insert(5, CohState::kModified);
  EXPECT_FALSE(v.valid);  // no eviction: same line upgraded
  EXPECT_EQ(c.find(5)->state, CohState::kModified);
  EXPECT_EQ(c.set_occupancy(5), 1u);
}

TEST(CacheTest, EvictsLruWhenSetFull) {
  Cache c = tiny();
  c.insert(set0(1), CohState::kShared);
  c.insert(set0(2), CohState::kShared);
  // Touch line 1 so line 2 becomes LRU.
  c.touch(*c.find(set0(1)));
  auto v = c.insert(set0(3), CohState::kShared);
  ASSERT_TRUE(v.valid);
  EXPECT_EQ(v.line, set0(2));
  EXPECT_NE(c.find(set0(1)), nullptr);
  EXPECT_EQ(c.find(set0(2)), nullptr);
}

TEST(CacheTest, VictimReportsModifiedState) {
  Cache c = tiny();
  c.insert(set0(1), CohState::kModified);
  c.insert(set0(2), CohState::kShared);
  auto v = c.insert(set0(3), CohState::kShared);
  ASSERT_TRUE(v.valid);
  EXPECT_EQ(v.line, set0(1));
  EXPECT_EQ(v.state, CohState::kModified);
}

TEST(CacheTest, SpeculativeLinesEvictedLast) {
  Cache c = tiny();
  c.insert(set0(1), CohState::kModified);
  c.find(set0(1))->speculative = true;
  c.insert(set0(2), CohState::kShared);
  // Line 1 is older but speculative: line 2 must be the victim.
  auto v = c.insert(set0(3), CohState::kShared);
  ASSERT_TRUE(v.valid);
  EXPECT_EQ(v.line, set0(2));
  EXPECT_NE(c.find(set0(1)), nullptr);
}

TEST(CacheTest, AllSpeculativeSetEvictsAnywayAndReportsIt) {
  Cache c = tiny();
  c.insert(set0(1), CohState::kModified);
  c.insert(set0(2), CohState::kModified);
  c.find(set0(1))->speculative = true;
  c.find(set0(2))->speculative = true;
  auto v = c.insert(set0(3), CohState::kModified);
  ASSERT_TRUE(v.valid);
  EXPECT_TRUE(v.speculative);  // FasTM overflow signal
  EXPECT_EQ(v.line, set0(1));  // LRU among speculative lines
}

TEST(CacheTest, Invalidate) {
  Cache c = tiny();
  c.insert(9, CohState::kExclusive);
  c.invalidate(9);
  EXPECT_EQ(c.find(9), nullptr);
  EXPECT_EQ(c.set_occupancy(9), 0u);
  c.invalidate(1234);  // absent line: no-op
}

TEST(CacheTest, InvalidatedWayIsReusedWithoutEviction) {
  Cache c = tiny();
  c.insert(set0(1), CohState::kShared);
  c.insert(set0(2), CohState::kShared);
  c.invalidate(set0(1));
  auto v = c.insert(set0(3), CohState::kShared);
  EXPECT_FALSE(v.valid);
  EXPECT_NE(c.find(set0(2)), nullptr);
  EXPECT_NE(c.find(set0(3)), nullptr);
}

TEST(CacheTest, ForEachVisitsOnlyValidLines) {
  Cache c = tiny();
  c.insert(1, CohState::kShared);
  c.insert(2, CohState::kModified);
  c.insert(3, CohState::kShared);
  c.invalidate(2);
  int count = 0;
  c.for_each([&](Cache::Line&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(CacheTest, FlashClearSpeculativeViaForEach) {
  Cache c = tiny();
  c.insert(1, CohState::kModified);
  c.insert(2, CohState::kModified);
  c.find(1)->speculative = true;
  c.find(2)->speculative = true;
  c.for_each([](Cache::Line& ln) { ln.speculative = false; });
  EXPECT_FALSE(c.find(1)->speculative);
  EXPECT_FALSE(c.find(2)->speculative);
}

TEST(CacheTest, DifferentSetsDoNotInterfere) {
  Cache c = tiny();
  for (LineAddr l = 0; l < 8; ++l) c.insert(l, CohState::kShared);
  for (LineAddr l = 0; l < 8; ++l) EXPECT_NE(c.find(l), nullptr);
}

TEST(CohStateTest, Names) {
  EXPECT_STREQ(coh_state_name(CohState::kInvalid), "I");
  EXPECT_STREQ(coh_state_name(CohState::kShared), "S");
  EXPECT_STREQ(coh_state_name(CohState::kExclusive), "E");
  EXPECT_STREQ(coh_state_name(CohState::kModified), "M");
}

}  // namespace
}  // namespace suvtm::mem
