#include <gtest/gtest.h>

#include "cacti/cacti_model.hpp"

namespace suvtm::cacti {
namespace {

TEST(CactiTest, FourAnchoredNodes) {
  const auto& nodes = tech_nodes();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].feature_nm, 90u);
  EXPECT_EQ(nodes[3].feature_nm, 32u);
}

// The reference configuration must reproduce the paper's Table VII exactly.
class Table7Anchor : public ::testing::TestWithParam<TechNode> {};

TEST_P(Table7Anchor, ReproducesPaperNumbers) {
  const TechNode& node = GetParam();
  const auto est = estimate_fa_table(node.feature_nm, 512, 64);
  EXPECT_NEAR(est.access_ns, node.access_ns, 1e-9);
  EXPECT_NEAR(est.read_nj, node.read_nj, 1e-9);
  EXPECT_NEAR(est.write_nj, node.write_nj, 1e-9);
  EXPECT_NEAR(est.area_mm2, node.area_mm2, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Nodes, Table7Anchor,
                         ::testing::ValuesIn(tech_nodes()),
                         [](const auto& info) {
                           return "nm" + std::to_string(info.param.feature_nm);
                         });

TEST(CactiTest, SmallerTablesCheaper) {
  const auto big = estimate_fa_table(45, 512, 64);
  const auto small = estimate_fa_table(45, 128, 64);
  EXPECT_LT(small.access_ns, big.access_ns);
  EXPECT_LT(small.read_nj, big.read_nj);
  EXPECT_LT(small.area_mm2, big.area_mm2);
}

TEST(CactiTest, NarrowerEntriesCheaper) {
  const auto wide = estimate_fa_table(45, 512, 64);
  const auto narrow = estimate_fa_table(45, 512, 22);
  EXPECT_LT(narrow.read_nj, wide.read_nj);
  EXPECT_LT(narrow.area_mm2, wide.area_mm2);
  // Paper Section V-C: 22-bit entries cost at most half the 64-bit numbers.
  EXPECT_LT(narrow.area_mm2, 0.5 * wide.area_mm2);
}

TEST(CactiTest, AccessTimeScalesWithFeatureSize) {
  double prev = 0.0;
  for (const auto& node : tech_nodes()) {
    const auto est = estimate_fa_table(node.feature_nm, 512, 64);
    if (prev != 0.0) {
      EXPECT_LT(est.access_ns, prev);
    }
    prev = est.access_ns;
  }
}

TEST(CactiTest, SingleCycleAt45nm) {
  // Paper Section V-C: the access completes in one 1.2 GHz cycle at 45 nm.
  EXPECT_EQ(estimate_fa_table(45, 512, 64).cycles_at_ghz(1.2), 1u);
  EXPECT_EQ(estimate_fa_table(32, 512, 64).cycles_at_ghz(1.2), 1u);
  EXPECT_GE(estimate_fa_table(90, 512, 64).cycles_at_ghz(1.2), 2u);
}

TEST(CactiTest, PerCoreStorageMatchesPaper) {
  // (2Kb + 2Kb + 22b x 512)/8 = 1.875 KB (paper Section V-C).
  EXPECT_DOUBLE_EQ(suv_per_core_bytes(2048, 512, 22), 1920.0);
  EXPECT_NEAR(suv_per_core_bytes(2048, 512, 22) / 1024.0, 1.875, 1e-9);
}

TEST(CactiTest, PerCoreStorageFractionOfL1) {
  const double frac = suv_per_core_bytes(2048, 512, 22) / (32.0 * 1024.0);
  EXPECT_NEAR(100.0 * frac, 5.86, 0.01);  // paper: 5.86% of a 32 KB L1
}

TEST(CactiTest, PowerBoundBelowPaperEstimate) {
  // Paper bound: < 3 J/s for 16 cores at 1.2 GHz, 45 nm.
  const double w = max_table_power_watts(45, 16, 1.2);
  EXPECT_GT(w, 0.0);
  EXPECT_LT(w, 3.0);
}

TEST(CactiTest, AreaBoundMatchesPaper) {
  // 0.5 x 16 x 0.282 = 2.26 mm^2 (paper Section V-C).
  const auto est = estimate_fa_table(45, 512, 64);
  EXPECT_NEAR(0.5 * 16.0 * est.area_mm2, 2.26, 0.01);
}

TEST(CactiTest, ContemporaryProcessorsTable) {
  const auto& procs = contemporary_processors();
  ASSERT_EQ(procs.size(), 3u);
  EXPECT_STREQ(procs[2].name, "Rock Processor");
  EXPECT_DOUBLE_EQ(procs[2].tdp_w, 250.0);
  EXPECT_DOUBLE_EQ(procs[2].area_mm2, 396.0);
}

}  // namespace
}  // namespace suvtm::cacti
