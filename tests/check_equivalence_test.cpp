// Cross-scheme equivalence: all version-management schemes are different
// mechanisms for the same contract, so a commit-order-insensitive workload
// run from one seed must leave bit-identical resolved final memory under
// every scheme. kmeans qualifies (its transactions only add into shared
// accumulators, and cluster choice depends on thread-private data only).
#include <gtest/gtest.h>

#include "check/equivalence.hpp"
#include "sim/config.hpp"
#include "stamp/framework.hpp"

namespace suvtm::check {
namespace {

TEST(DiffImagesTest, IdenticalImagesProduceNoReport) {
  FinalImage a;
  a.scheme = sim::Scheme::kLogTmSe;
  a.words.emplace(0x1000, 7);
  FinalImage b = a;
  b.scheme = sim::Scheme::kSuv;
  EXPECT_TRUE(diff_images(a, b).empty());
}

TEST(DiffImagesTest, DivergentWordIsReported) {
  FinalImage a;
  a.scheme = sim::Scheme::kLogTmSe;
  a.words.emplace(0x1000, 7);
  FinalImage b;
  b.scheme = sim::Scheme::kSuv;
  b.words.emplace(0x1000, 9);
  const std::string d = diff_images(a, b);
  EXPECT_NE(d.find("0x1000"), std::string::npos);
  EXPECT_NE(d.find("diverge"), std::string::npos);
}

TEST(DiffImagesTest, WordMissingFromOneImageIsReported) {
  FinalImage a;
  a.scheme = sim::Scheme::kFasTm;
  a.words.emplace(0x2000, 3);
  FinalImage b;
  b.scheme = sim::Scheme::kDynTm;
  EXPECT_FALSE(diff_images(a, b).empty());
}

TEST(EquivalenceTest, AllSchemesProduceIdenticalKmeansImage) {
  sim::SimConfig cfg;
  cfg.check.enabled = false;  // the harness is the check here
  stamp::SuiteParams params;
  params.scale = 0.05;
  params.seed = 7;
  const std::string report = compare_schemes(
      stamp::AppId::kKmeans, cfg, params,
      {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm, sim::Scheme::kSuv,
       sim::Scheme::kDynTm, sim::Scheme::kDynTmSuv});
  EXPECT_TRUE(report.empty()) << report;
}

TEST(EquivalenceTest, CapturedImageContainsWorkloadState) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  cfg.check.enabled = false;
  stamp::SuiteParams params;
  params.scale = 0.05;
  params.seed = 7;
  const FinalImage img =
      capture_final_image(stamp::AppId::kKmeans, cfg, params);
  EXPECT_EQ(img.scheme, sim::Scheme::kSuv);
  EXPECT_GT(img.words.size(), 0u);
  EXPECT_GT(img.commits, 0u);
  // Nothing from the SUV pool region leaks into the functional image.
  for (const auto& kv : img.words) EXPECT_LT(kv.first, kRedirectPoolBase);
}

}  // namespace
}  // namespace suvtm::check
