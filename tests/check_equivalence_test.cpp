// Equivalence suites for the correctness layer.
//
// 1. Cross-scheme: all version-management schemes are different mechanisms
//    for the same contract, so a commit-order-insensitive workload run from
//    one seed must leave bit-identical resolved final memory under every
//    scheme. kmeans qualifies (its transactions only add into shared
//    accumulators, and cluster choice depends on thread-private data only).
//
// 2. Incremental-vs-reference oracle: the streaming HistoryOracle (eager
//    drain at the serialization horizon, window pruning) must produce
//    verdicts, replay counts and a final replay image bit-identical to the
//    whole-run reference replayer (cfg.check.reference) over randomized
//    histories -- including deliberately inconsistent ones -- and over full
//    simulator runs, serial and sharded (one oracle per PDES shard).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "check/check.hpp"
#include "check/equivalence.hpp"
#include "check/history.hpp"
#include "runner/experiment.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"
#include "stamp/framework.hpp"
#include "stamp/sharded_kv.hpp"

namespace suvtm::check {
namespace {

TEST(DiffImagesTest, IdenticalImagesProduceNoReport) {
  FinalImage a;
  a.scheme = sim::Scheme::kLogTmSe;
  a.words.emplace(0x1000, 7);
  FinalImage b = a;
  b.scheme = sim::Scheme::kSuv;
  EXPECT_TRUE(diff_images(a, b).empty());
}

TEST(DiffImagesTest, DivergentWordIsReported) {
  FinalImage a;
  a.scheme = sim::Scheme::kLogTmSe;
  a.words.emplace(0x1000, 7);
  FinalImage b;
  b.scheme = sim::Scheme::kSuv;
  b.words.emplace(0x1000, 9);
  const std::string d = diff_images(a, b);
  EXPECT_NE(d.find("0x1000"), std::string::npos);
  EXPECT_NE(d.find("diverge"), std::string::npos);
}

TEST(DiffImagesTest, WordMissingFromOneImageIsReported) {
  FinalImage a;
  a.scheme = sim::Scheme::kFasTm;
  a.words.emplace(0x2000, 3);
  FinalImage b;
  b.scheme = sim::Scheme::kDynTm;
  EXPECT_FALSE(diff_images(a, b).empty());
}

TEST(EquivalenceTest, AllSchemesProduceIdenticalKmeansImage) {
  sim::SimConfig cfg;
  cfg.check.enabled = false;  // the harness is the check here
  stamp::SuiteParams params;
  params.scale = 0.05;
  params.seed = 7;
  const std::string report = compare_schemes(
      stamp::AppId::kKmeans, cfg, params,
      {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm, sim::Scheme::kSuv,
       sim::Scheme::kDynTm, sim::Scheme::kDynTmSuv});
  EXPECT_TRUE(report.empty()) << report;
}

TEST(EquivalenceTest, CapturedImageContainsWorkloadState) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  cfg.check.enabled = false;
  stamp::SuiteParams params;
  params.scale = 0.05;
  params.seed = 7;
  const FinalImage img =
      capture_final_image(stamp::AppId::kKmeans, cfg, params);
  EXPECT_EQ(img.scheme, sim::Scheme::kSuv);
  EXPECT_GT(img.words.size(), 0u);
  EXPECT_GT(img.commits, 0u);
  // Nothing from the SUV pool region leaks into the functional image.
  for (const auto& kv : img.words) EXPECT_LT(kv.first, kRedirectPoolBase);
}

// ---- incremental vs reference oracle ---------------------------------------

/// Feed identical recorded histories to a streaming oracle and a whole-run
/// reference oracle and require bit-identical results.
struct DualOracle {
  HistoryOracle inc;
  HistoryOracle ref;
  explicit DualOracle(std::uint32_t cores)
      : inc(cores, /*reference=*/false), ref(cores, /*reference=*/true) {}

  void begin(CoreId c, Cycle t) { inc.on_begin(c, t); ref.on_begin(c, t); }
  void read(CoreId c, bool tx, Addr w, std::uint64_t v, Cycle t) {
    inc.on_read(c, tx, w, v, t);
    ref.on_read(c, tx, w, v, t);
  }
  void write(CoreId c, bool tx, Addr w, std::uint64_t v, Cycle t) {
    inc.on_write(c, tx, w, v, t);
    ref.on_write(c, tx, w, v, t);
  }
  void commit_start(CoreId c, Cycle t) {
    inc.on_commit_start(c, t);
    ref.on_commit_start(c, t);
  }
  void commit_done(CoreId c, Cycle t, bool lazy) {
    inc.on_commit_done(c, t, lazy);
    ref.on_commit_done(c, t, lazy);
  }
  void abort(CoreId c) { inc.on_abort_done(c); ref.on_abort_done(c); }
  void suspend(CoreId c) { inc.on_suspend(c); ref.on_suspend(c); }
  void resume(CoreId c) { inc.on_resume(c); ref.on_resume(c); }
  void frame_push(CoreId c) { inc.on_frame_push(c); ref.on_frame_push(c); }
  void frame_pop(CoreId c) { inc.on_frame_pop(c); ref.on_frame_pop(c); }
  void frame_rollback(CoreId c) {
    inc.on_frame_rollback(c);
    ref.on_frame_rollback(c);
  }
};

void expect_oracles_identical(DualOracle& d) {
  EXPECT_EQ(d.inc.replayed_accesses(), d.ref.replayed_accesses());
  // The violation CAP (64) can bite the two modes at different points in
  // the interleaving, so multiset equality is only meaningful below it.
  if (d.inc.violations().size() < 64 && d.ref.violations().size() < 64) {
    std::vector<std::string> a = d.inc.violations();
    std::vector<std::string> b = d.ref.violations();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  } else {
    EXPECT_GE(d.inc.violations().size(), 64u);
    EXPECT_GE(d.ref.violations().size(), 64u);
  }
  const FlatMap<Addr, std::uint64_t> ia = d.inc.replay_image();
  const FlatMap<Addr, std::uint64_t> ib = d.ref.replay_image();
  EXPECT_EQ(ia.size(), ib.size());
  for (const auto& kv : ia) {
    const auto it = ib.find(kv.first);
    ASSERT_NE(it, ib.end()) << "word only in incremental image";
    EXPECT_EQ(it->second, kv.second) << "word " << kv.first;
  }
}

TEST(OracleEquivalenceTest, RandomizedHistoriesMatchReferenceReplayer) {
  constexpr std::uint32_t kCores = 4;
  constexpr int kOps = 160;
  const Addr words[] = {0x1000, 0x1008, 0x2000, 0x2040, 0x3000, 0x3008};
  std::uint64_t total_replayed = 0;
  std::size_t total_violations = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    std::mt19937_64 rng(0x5eed0000 + seed);
    DualOracle d(kCores);
    // Naive generation-order model; corrupted reads make both oracles
    // flag violations, which must still match exactly.
    FlatMap<Addr, std::uint64_t> model;
    struct CoreState {
      bool active = false;
      bool committing = false;
      int frames = 0;
      int parked = 0;
    };
    CoreState st[kCores];
    Cycle now = 10;
    auto value_of = [&](Addr w) -> std::uint64_t {
      auto it = model.find(w);
      std::uint64_t v = it == model.end() ? 0 : it->second;
      if (rng() % 16 == 0) v += 1;  // injected inconsistency
      return v;
    };
    for (int op = 0; op < kOps; ++op) {
      now += 1 + rng() % 3;
      const CoreId c = static_cast<CoreId>(rng() % kCores);
      CoreState& s = st[c];
      const Addr w = words[rng() % (sizeof(words) / sizeof(words[0]))];
      switch (rng() % 10) {
        case 0:
          if (!s.active) {
            d.begin(c, now);
            s.active = true;
          }
          break;
        case 1:
        case 2:
          if (s.active && !s.committing) d.read(c, true, w, value_of(w), now);
          break;
        case 3:
        case 4:
          if (s.active && !s.committing) {
            const std::uint64_t v = rng() % 100;
            d.write(c, true, w, v, now);
            model[w] = v;
          }
          break;
        case 5:
          if (s.active && !s.committing) {
            d.commit_start(c, now);
            s.committing = true;
          }
          break;
        case 6:
          if (s.committing) {
            d.commit_done(c, now, /*lazy=*/rng() % 2 == 0);
            s.active = s.committing = false;
            s.frames = 0;
          }
          break;
        case 7:
          if (s.active) {
            d.abort(c);
            s.active = s.committing = false;
            s.frames = 0;
          } else if (rng() % 2 == 0) {
            d.write(c, false, w, 7, now);
            model[w] = 7;
          } else {
            d.read(c, false, w, value_of(w), now);
          }
          break;
        case 8:
          if (s.active && !s.committing) {
            if (s.frames > 0 && rng() % 2 == 0) {
              if (rng() % 2 == 0) d.frame_pop(c);
              else d.frame_rollback(c);
              --s.frames;
            } else {
              d.frame_push(c);
              ++s.frames;
            }
          }
          break;
        case 9:
          if (s.active && !s.committing && s.parked == 0) {
            d.suspend(c);
            ++s.parked;
            s.active = false;
            s.frames = 0;  // frames travel with the parked txn
          } else if (s.parked > 0 && !s.active) {
            d.resume(c);
            --s.parked;
            s.active = true;
          }
          break;
      }
    }
    // Drain every core to a clean end-of-run state.
    for (CoreId c = 0; c < kCores; ++c) {
      for (;;) {
        now += 2;
        CoreState& s = st[c];
        if (s.active) {
          if (!s.committing) d.commit_start(c, now);
          d.commit_done(c, now + 1, false);
          s.active = s.committing = false;
        } else if (s.parked > 0) {
          d.resume(c);
          --s.parked;
          s.active = true;
        } else {
          break;
        }
      }
    }
    const auto load = [&](Addr a) {
      auto it = model.find(a);
      return it == model.end() ? std::uint64_t{0} : it->second;
    };
    d.inc.finalize(load);
    d.ref.finalize(load);
    expect_oracles_identical(d);
    total_replayed += d.inc.replayed_accesses();
    total_violations += d.inc.violations().size();
  }
  // Non-vacuity: the generator must have produced real histories, and the
  // injected inconsistencies must have made some of them violating.
  EXPECT_GT(total_replayed, 100u);
  EXPECT_GT(total_violations, 0u);
}

TEST(OracleEquivalenceTest, StreamingRetirementBoundsArenaPages) {
  // Back-to-back serial transactions: the streaming oracle replays each at
  // the next commit boundary and recycles its pages, so the pool never
  // grows past one transaction's footprint. The reference oracle retains
  // everything until finalize.
  constexpr int kTxns = 64;
  constexpr int kAccessesPerTxn = 600;  // several arena pages each
  DualOracle d(2);
  Cycle now = 10;
  for (int t = 0; t < kTxns; ++t) {
    d.begin(0, now);
    for (int i = 0; i < kAccessesPerTxn; ++i) {
      d.write(0, true, 0x1000 + 8 * (i % 32), t, now + 1);
    }
    d.commit_start(0, now + 2);
    d.commit_done(0, now + 3, false);
    now += 10;
  }
  d.inc.finalize(nullptr);
  d.ref.finalize(nullptr);
  EXPECT_EQ(d.inc.replayed_accesses(), d.ref.replayed_accesses());
  // ~5 pages per transaction; streaming keeps one transaction live while
  // the previous one drains, reference keeps all 64 transactions.
  EXPECT_LT(d.inc.arena_pages(), 32u);
  EXPECT_GT(d.ref.arena_pages(), 100u);
}

/// Full-simulation differential run: the same workload with the oracle in
/// incremental and reference mode must finalize clean both ways and leave
/// the same resolved image. (Meaningful only when the hook sites are
/// compiled in; the default build has them.)
TEST(OracleEquivalenceTest, CheckedRunsMatchReferenceAcrossSchemesAndSeeds) {
  if (!kHooksCompiled) GTEST_SKIP() << "SUVTM_CHECK hooks compiled out";
  for (sim::Scheme scheme :
       {sim::Scheme::kLogTmSe, sim::Scheme::kSuv, sim::Scheme::kDynTmSuv}) {
    for (std::uint64_t seed : {3ull, 11ull}) {
      SCOPED_TRACE(testing::Message() << "scheme " << static_cast<int>(scheme)
                                      << " seed " << seed);
      stamp::SuiteParams params;
      params.scale = 0.05;
      params.seed = seed;
      sim::SimConfig cfg;
      cfg.scheme = scheme;
      cfg.check.enabled = true;
      cfg.check.audit_period = 16;
      cfg.check.reference = false;
      const FinalImage inc =
          capture_final_image(stamp::AppId::kKmeans, cfg, params);
      cfg.check.reference = true;
      const FinalImage ref =
          capture_final_image(stamp::AppId::kKmeans, cfg, params);
      EXPECT_TRUE(diff_images(inc, ref).empty()) << diff_images(inc, ref);
      EXPECT_EQ(inc.commits, ref.commits);
      EXPECT_EQ(inc.makespan, ref.makespan);
    }
  }
}

/// Sharded PDES differential run: one checker (and oracle) per shard, both
/// modes must agree on the full RunResult bit for bit.
TEST(OracleEquivalenceTest, ShardedCheckedRunMatchesReference) {
  if (!kHooksCompiled) GTEST_SKIP() << "SUVTM_CHECK hooks compiled out";
  auto run_one = [](bool reference) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    cfg.seed = 5;
    cfg.mem.num_cores = 16;
    cfg.pdes.shards = 4;
    cfg.check.enabled = true;
    cfg.check.audit_period = 16;
    cfg.check.reference = reference;
    sim::Simulator sim(cfg);
    stamp::ShardedKvParams p;
    p.ops_per_thread = 48;
    p.txn_keys = 16;
    p.keys_per_txn = 3;
    p.remote_read_every = 4;
    p.seed = 5;
    stamp::ShardedKv wl(p);
    wl.build(sim);
    sim.run();
    wl.verify(sim);
    return runner::harvest_result(sim, "sharded_kv", nullptr);
  };
  const runner::RunResult inc = run_one(false);
  const runner::RunResult ref = run_one(true);
  EXPECT_GT(inc.htm.commits, 0u);
  EXPECT_EQ(inc, ref);
}

}  // namespace
}  // namespace suvtm::check
