// Negative tests for the structural auditors and the checker: every audit
// must be demonstrated to actually fire. Each test runs a small clean
// simulation, asserts the audits pass, injects one targeted corruption into
// a live structure, and requires the corresponding audit to report it.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "mem/cache.hpp"
#include "sim/simulator.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::check {
namespace {

bool mentions(const std::vector<std::string>& violations,
              const std::string& needle) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

sim::ThreadTask writer(sim::ThreadContext& tc) {
  co_await tc.tx_begin(1);
  co_await tc.store(0x100000, 1);
  co_await tc.store(0x110000, 2);
  co_await tc.tx_commit();
}

class MutationTest : public ::testing::Test {
 protected:
  MutationTest() : sim_(make_cfg()) {
    vm_ = dynamic_cast<vm::SuvVm*>(&sim_.htm().vm());
  }

  static sim::SimConfig make_cfg() {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    // The audits are driven by hand after targeted corruption; the
    // simulator's own checker would (rightly) reject the mutations first.
    cfg.check.enabled = false;
    // Negative tests must never rely on a sampled audit window: a
    // corruption has to be caught at the first opportunity.
    cfg.check.audit_period = 1;
    return cfg;
  }

  /// Commit one transaction with two stores, leaving global redirect
  /// entries, pool allocations, cached lines and directory state behind.
  void run_writer() {
    sim_.spawn(0, writer(sim_.context(0)));
    sim_.run();
    ASSERT_TRUE(audit_all(sim_.mem(), sim_.htm(), vm_).empty())
        << "baseline must be clean before injecting corruption";
  }

  /// First Exclusive/Modified line in core 0's L1.
  LineAddr find_owned_line() {
    LineAddr line = 0;
    bool found = false;
    sim_.mem().l1(0).for_each([&](mem::Cache::Line& ln) {
      if (!found && (ln.state == mem::CohState::kModified ||
                     ln.state == mem::CohState::kExclusive)) {
        line = ln.tag;
        found = true;
      }
    });
    EXPECT_TRUE(found) << "writer must leave an owned line in core 0's L1";
    return line;
  }

  sim::Simulator sim_;
  vm::SuvVm* vm_ = nullptr;
};

TEST_F(MutationTest, BaselineAuditsAreClean) {
  run_writer();
  const auto v = audit_all(sim_.mem(), sim_.htm(), vm_);
  EXPECT_TRUE(v.empty()) << v.front();
}

TEST_F(MutationTest, DroppedGlobalSummaryMembershipIsCaught) {
  run_writer();
  const LineAddr line = line_of(0x100000);
  const suv::RedirectEntry* e = vm_->table().find(line);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->state, suv::EntryState::kGlobalRedirect);
  // A global entry diverts EVERY core; dropping one core's summary
  // membership would let that core read the stale original line.
  vm_->table().summary_mut(3).remove(line);
  EXPECT_TRUE(mentions(audit_suv(*vm_, sim_.htm()), "summary misses"));
}

TEST_F(MutationTest, DroppedTransientSummaryMembershipIsCaught) {
  htm::Txn& t = sim_.htm().txn(0);
  t.state = htm::TxnState::kRunning;
  vm_->on_tx_store(t, 0x200000);
  t.write_lines.insert(line_of(0x200000));
  t.write_sig.add(line_of(0x200000));
  ASSERT_TRUE(audit_suv(*vm_, sim_.htm()).empty());
  vm_->table().summary_mut(0).remove(line_of(0x200000));
  EXPECT_TRUE(mentions(audit_suv(*vm_, sim_.htm()),
                       "summary misses its transient redirect"));
}

TEST_F(MutationTest, PoolRefcountImbalanceIsCaught) {
  run_writer();
  // A line handed out with no live entry targeting it is a leak.
  vm_->pool(0).allocate();
  EXPECT_TRUE(mentions(audit_suv(*vm_, sim_.htm()), "pool reports"));
}

TEST_F(MutationTest, DirectoryOwnerTamperIsCaught) {
  run_writer();
  const LineAddr line = find_owned_line();
  auto& e = sim_.mem().directory().entry(line);
  e.owner = kNoCore;
  e.sharers = 0;
  EXPECT_TRUE(mentions(audit_coherence(sim_.mem()), "coherence:"));
}

TEST_F(MutationTest, L1StateFlipIsCaught) {
  run_writer();
  const LineAddr line = find_owned_line();
  sim_.mem().l1(0).for_each([&](mem::Cache::Line& ln) {
    if (ln.tag == line) ln.state = mem::CohState::kShared;
  });
  EXPECT_TRUE(mentions(audit_coherence(sim_.mem()), "coherence:"));
}

TEST_F(MutationTest, SmBitWithoutListEntryIsCaught) {
  run_writer();
  bool done = false;
  sim_.mem().l1(0).for_each([&](mem::Cache::Line& ln) {
    if (!done) {
      ln.speculative = true;
      done = true;
    }
  });
  ASSERT_TRUE(done);
  EXPECT_TRUE(mentions(audit_coherence(sim_.mem()), "SM bit"));
}

TEST_F(MutationTest, SignatureGapIsCaught) {
  htm::Txn& t = sim_.htm().txn(0);
  t.state = htm::TxnState::kRunning;
  t.read_lines.insert(0x7777);  // exact set grows, signature does not
  EXPECT_TRUE(mentions(audit_signatures(sim_.htm()), "signature:"));
}

TEST_F(MutationTest, SuspendedSummaryGapIsCaught) {
  htm::Txn& t = sim_.htm().txn(0);
  t.state = htm::TxnState::kRunning;
  t.read_lines.insert(0x500);
  t.read_sig.add(0x500);
  ASSERT_TRUE(sim_.htm().suspend_txn(0));
  ASSERT_TRUE(audit_signatures(sim_.htm()).empty());
  // Corrupt the parked transaction's coverage: a line its signature missed
  // would also be missing from the rebuilt suspended summary, so model the
  // equivalent by growing the parked exact set. The summaries are rebuilt
  // only on suspend/resume, so the gap persists.
  sim_.htm().for_each_suspended([&](CoreId, const htm::Txn& s) {
    const_cast<htm::Txn&>(s).read_lines.insert(0x9999);
  });
  EXPECT_TRUE(mentions(audit_signatures(sim_.htm()),
                       "suspended read summary"));
}

// ---- end-to-end Checker negatives ------------------------------------------

TEST(CheckerEndToEndTest, HostWriteAfterSnapshotTripsTheSweep) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  cfg.check.enabled = false;
  cfg.check.audit_period = 1;
  sim::Simulator sim(cfg);
  Checker ck(cfg, sim.mem(), sim.htm());
  ck.on_run_start();
  // A write no hook observed: the untouched-word sweep must refuse it.
  sim.mem().store_word(0x5000, 99);
  EXPECT_THROW(ck.finalize(), CheckFailure);
}

TEST(CheckerEndToEndTest, CleanRunFinalizesWithoutThrowing) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  cfg.check.enabled = false;
  sim::Simulator sim(cfg);
  sim.mem().store_word(0x5000, 99);  // before the snapshot: fine
  Checker ck(cfg, sim.mem(), sim.htm());
  ck.on_run_start();
  EXPECT_NO_THROW(ck.finalize());
  EXPECT_TRUE(ck.violations().empty());
}

TEST(CheckerGrantAuditTest, GrantIntoLiveWriteSetIsFlagged) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  cfg.check.enabled = false;
  cfg.check.audit_period = 1;
  sim::Simulator sim(cfg);
  Checker ck(cfg, sim.mem(), sim.htm());
  htm::Txn& holder = sim.htm().txn(1);
  holder.state = htm::TxnState::kRunning;
  holder.write_lines.insert(0x50);
  holder.write_sig.add(0x50);
  // Register the holder's isolation as a live run would; the checker's
  // candidate filter initializes conservatively, so a directly driven
  // grant always reaches the full scan.
  sim.htm().conflicts().set_isolation(1, true);
  // The conflict manager should have NACKed this read; a grant that lands
  // in another transaction's exact write set means isolation broke.
  ck.on_access_granted(0, 0x50, /*exclusive=*/false, /*requester_lazy=*/false);
  EXPECT_FALSE(ck.violations().empty());
}

TEST(CheckerGrantAuditTest, ReadGrantAgainstReaderIsAllowed) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  cfg.check.enabled = false;
  cfg.check.audit_period = 1;
  sim::Simulator sim(cfg);
  Checker ck(cfg, sim.mem(), sim.htm());
  htm::Txn& holder = sim.htm().txn(1);
  holder.state = htm::TxnState::kRunning;
  holder.read_lines.insert(0x50);
  holder.read_sig.add(0x50);
  // Force the full scan (isolation held): a shared grant against a mere
  // reader must still come back clean.
  sim.htm().conflicts().set_isolation(1, true);
  ck.on_access_granted(0, 0x50, /*exclusive=*/false, /*requester_lazy=*/false);
  EXPECT_TRUE(ck.violations().empty());
}

// ---- audit sampling --------------------------------------------------------

/// Drive one well-formed (empty) transaction through the checker's hooks.
void commit_once(Checker& ck, CoreId c, Cycle base) {
  ck.on_begin(c, base);
  ck.on_commit_start(c, base + 1);
  ck.on_commit_done(c, base + 2, /*lazy=*/false);
}

TEST(AuditSamplingTest, PeriodNCatchesPersistentCorruptionWithinNCommits) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  cfg.check.enabled = false;
  cfg.check.audit_period = 4;
  cfg.check.audit_on_abort = false;  // isolate the sampled commit path
  sim::Simulator sim(cfg);
  Checker ck(cfg, sim.mem(), sim.htm());
  // Persistent corruption: an exact-set line the signature never admitted.
  // It stays wrong until something audits it.
  htm::Txn& t = sim.htm().txn(0);
  t.state = htm::TxnState::kRunning;
  t.read_lines.insert(0x7777);
  Cycle now = 10;
  // Commits 1..3 fall inside the sampled window: no audit runs.
  for (int i = 0; i < 3; ++i, now += 10) commit_once(ck, 1, now);
  EXPECT_EQ(ck.audits_run(), 0u);
  EXPECT_TRUE(ck.violations().empty());
  // Commit 4 crosses the period boundary: the audit must fire and catch it.
  commit_once(ck, 1, now);
  EXPECT_EQ(ck.audits_run(), 1u);
  EXPECT_TRUE(mentions(ck.violations(), "signature:"));
}

TEST(AuditSamplingTest, AbortAuditsFireRegardlessOfPeriod) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  cfg.check.enabled = false;
  cfg.check.audit_period = 0;  // sampling off entirely
  cfg.check.audit_on_abort = true;
  sim::Simulator sim(cfg);
  Checker ck(cfg, sim.mem(), sim.htm());
  // The abort audit is scoped to the aborting attempt, so the corruption
  // must sit in the aborting core's own descriptor.
  htm::Txn& t = sim.htm().txn(1);
  t.state = htm::TxnState::kRunning;
  t.read_lines.insert(0x7777);
  ck.on_begin(1, 10);
  ck.on_abort_done(1);
  EXPECT_EQ(ck.audits_run(), 1u);
  EXPECT_TRUE(mentions(ck.violations(), "signature:"));
}

TEST(CheckerGrantAuditTest, GrantIntoSuspendedWriteSetIsFlagged) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  cfg.check.enabled = false;
  cfg.check.audit_period = 1;
  sim::Simulator sim(cfg);
  Checker ck(cfg, sim.mem(), sim.htm());
  htm::Txn& t = sim.htm().txn(1);
  t.state = htm::TxnState::kRunning;
  t.write_lines.insert(0x60);
  t.write_sig.add(0x60);
  ASSERT_TRUE(sim.htm().suspend_txn(1));
  // Parked transactions keep isolation through the suspended summaries.
  ck.on_access_granted(0, 0x60, /*exclusive=*/true, /*requester_lazy=*/false);
  EXPECT_FALSE(ck.violations().empty());
}

}  // namespace
}  // namespace suvtm::check
