// HistoryOracle unit tests: hand-built histories driven straight into the
// recording hooks. Serializable histories must finalize clean; histories
// with stale reads, wrong serialization orders or corrupted final state
// must be flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/history.hpp"
#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace suvtm::check {
namespace {

constexpr Addr kX = 0x1000;
constexpr Addr kY = 0x2000;
constexpr Addr kZ = 0x3000;

bool has_violation(const HistoryOracle& o, const std::string& needle) {
  return std::any_of(o.violations().begin(), o.violations().end(),
                     [&](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

/// finalize() against a word -> value table (absent words read as zero).
void finalize_with(HistoryOracle& o,
                   std::initializer_list<std::pair<Addr, std::uint64_t>> img) {
  FlatMap<Addr, std::uint64_t> map;
  for (const auto& kv : img) map.emplace(kv.first, kv.second);
  o.finalize([&](Addr a) {
    auto it = map.find(a);
    return it == map.end() ? 0ull : it->second;
  });
}

TEST(HistoryOracleTest, EmptyHistoryFinalizesClean) {
  HistoryOracle o(4);
  finalize_with(o, {});
  EXPECT_TRUE(o.violations().empty());
  EXPECT_EQ(o.committed_txns(), 0u);
}

TEST(HistoryOracleTest, SerialEagerHistoryReplaysClean) {
  HistoryOracle o(4);
  // T0 writes x=1; T1 later reads x=1 and writes y=2. Disjoint windows.
  o.on_begin(0, 10);
  o.on_write(0, true, kX, 1, 12);
  o.on_commit_start(0, 20);
  o.on_commit_done(0, 25, /*lazy=*/false);

  o.on_begin(1, 30);
  o.on_read(1, true, kX, 1, 32);
  o.on_write(1, true, kY, 2, 34);
  o.on_commit_start(1, 40);
  o.on_commit_done(1, 45, false);

  finalize_with(o, {{kX, 1}, {kY, 2}});
  EXPECT_TRUE(o.violations().empty()) << o.violations().front();
  EXPECT_EQ(o.committed_txns(), 2u);
  EXPECT_EQ(o.replayed_accesses(), 3u);
  ASSERT_TRUE(o.replay_image().contains(kX));
  EXPECT_EQ(o.replay_image().find(kX)->second, 1u);
  EXPECT_EQ(o.replay_image().find(kY)->second, 2u);
}

TEST(HistoryOracleTest, StaleReadIsFlagged) {
  HistoryOracle o(4);
  o.on_begin(0, 10);
  o.on_write(0, true, kX, 1, 12);
  o.on_commit_start(0, 20);
  o.on_commit_done(0, 25, false);

  // T1 starts after T0 committed but claims to have read the old x=0:
  // the serial replay must observe the mismatch.
  o.on_begin(1, 30);
  o.on_read(1, true, kX, 0, 32);
  o.on_commit_start(1, 40);
  o.on_commit_done(1, 45, false);

  finalize_with(o, {{kX, 1}});
  EXPECT_TRUE(has_violation(o, "replay:"));
}

TEST(HistoryOracleTest, FinalStateMismatchIsFlagged) {
  HistoryOracle o(4);
  o.on_begin(0, 10);
  o.on_write(0, true, kX, 5, 12);
  o.on_commit_start(0, 20);
  o.on_commit_done(0, 25, false);

  finalize_with(o, {{kX, 7}});  // simulator claims 7, history says 5
  EXPECT_TRUE(has_violation(o, "final state:"));
}

TEST(HistoryOracleTest, ConflictAgainstSerializationOrderIsFlagged) {
  HistoryOracle o(4);
  // Overlapping windows. T0 reads x (old value) at cycle 30; T1 writes x
  // in place at cycle 40 but serializes FIRST (commit start 50 < 60).
  // The r-w edge T0 -> T1 contradicts the serialization order T1 -> T0.
  o.on_begin(0, 10);
  o.on_read(0, true, kX, 0, 30);
  o.on_begin(1, 20);
  o.on_write(1, true, kX, 1, 40);
  o.on_commit_start(1, 50);
  o.on_commit_done(1, 55, false);
  o.on_commit_start(0, 60);
  o.on_commit_done(0, 65, false);

  finalize_with(o, {{kX, 1}});
  EXPECT_TRUE(has_violation(o, "conflict order:"));
}

TEST(HistoryOracleTest, LazyPublishAfterEagerCommitStartIsSerializable) {
  HistoryOracle o(4);
  // The DynTM bounded-wait shape: a lazy committer publishes at cycle 40,
  // after the eager reader's commit START (30) but before its commit DONE
  // (45). Eager serializes at commit start, lazy at publish, and the lazy
  // write's effective time is its publish cycle -- so the eager read of
  // the pre-publish value is consistent and the history is serializable.
  o.on_begin(1, 5);
  o.on_write(1, true, kX, 9, 15);  // buffered; publishes at commit done
  o.on_begin(0, 10);
  o.on_read(0, true, kX, 0, 20);   // pre-publish value
  o.on_commit_start(0, 30);
  o.on_commit_start(1, 35);
  o.on_commit_done(1, 40, /*lazy=*/true);
  o.on_commit_done(0, 45, false);

  finalize_with(o, {{kX, 9}});
  EXPECT_TRUE(o.violations().empty()) << o.violations().front();
  EXPECT_EQ(o.replay_image().find(kX)->second, 9u);
}

TEST(HistoryOracleTest, EagerReadAfterLazyPublishOfOldValueIsFlagged) {
  HistoryOracle o(4);
  // Same shape, but the eager transaction reads AFTER the lazy publish and
  // still claims the old value: its read (cycle 42) follows the lazy
  // effective write (40) while it serializes first (30 < 40) -- the w-r
  // conflict points against the serialization order.
  o.on_begin(1, 5);
  o.on_write(1, true, kX, 9, 15);
  o.on_begin(0, 10);
  o.on_commit_start(0, 30);
  o.on_commit_start(1, 35);
  o.on_commit_done(1, 40, true);
  o.on_read(0, true, kX, 0, 42);  // stale: publish already happened
  o.on_commit_done(0, 45, false);

  finalize_with(o, {{kX, 9}});
  EXPECT_TRUE(has_violation(o, "conflict order:"));
}

TEST(HistoryOracleTest, AbortedTransactionLeavesNoTrace) {
  HistoryOracle o(4);
  o.on_begin(0, 10);
  o.on_write(0, true, kX, 9, 12);
  o.on_abort_done(0);

  o.on_begin(0, 30);
  o.on_write(0, true, kY, 3, 32);
  o.on_commit_start(0, 40);
  o.on_commit_done(0, 45, false);

  finalize_with(o, {{kY, 3}});
  EXPECT_TRUE(o.violations().empty()) << o.violations().front();
  EXPECT_EQ(o.committed_txns(), 1u);
  EXPECT_FALSE(o.replay_image().contains(kX));
}

TEST(HistoryOracleTest, RolledBackFrameIsExpunged) {
  HistoryOracle o(4);
  o.on_begin(0, 10);
  o.on_write(0, true, kX, 1, 12);
  o.on_frame_push(0);
  o.on_write(0, true, kY, 2, 14);
  o.on_frame_rollback(0);  // inner frame aborted: y write undone
  o.on_frame_push(0);
  o.on_write(0, true, kZ, 3, 16);
  o.on_frame_pop(0);       // inner frame committed: z write survives
  o.on_commit_start(0, 20);
  o.on_commit_done(0, 25, false);

  finalize_with(o, {{kX, 1}, {kZ, 3}});
  EXPECT_TRUE(o.violations().empty()) << o.violations().front();
  EXPECT_TRUE(o.replay_image().contains(kX));
  EXPECT_FALSE(o.replay_image().contains(kY));
  EXPECT_TRUE(o.replay_image().contains(kZ));
}

TEST(HistoryOracleTest, NonTransactionalAccessesInterleave) {
  HistoryOracle o(4);
  o.on_write(0, false, kX, 3, 5);  // plain store before any transaction
  o.on_begin(1, 10);
  o.on_read(1, true, kX, 3, 12);
  o.on_write(1, true, kY, 4, 14);
  o.on_commit_start(1, 20);
  o.on_commit_done(1, 25, false);
  o.on_read(0, false, kY, 4, 30);  // plain load after the commit

  finalize_with(o, {{kX, 3}, {kY, 4}});
  EXPECT_TRUE(o.violations().empty()) << o.violations().front();
}

TEST(HistoryOracleTest, SuspendParksAndResumeRestoresHistory) {
  HistoryOracle o(4);
  // Core 0 starts a transaction, gets descheduled, runs an unrelated
  // transaction, then resumes and commits the first one.
  o.on_begin(0, 10);
  o.on_write(0, true, kX, 1, 12);
  o.on_suspend(0);

  o.on_begin(0, 20);
  o.on_write(0, true, kY, 2, 22);
  o.on_commit_start(0, 30);
  o.on_commit_done(0, 35, false);

  o.on_resume(0);
  o.on_read(0, true, kX, 1, 40);  // reads its own pre-suspend write
  o.on_commit_start(0, 50);
  o.on_commit_done(0, 55, false);

  finalize_with(o, {{kX, 1}, {kY, 2}});
  EXPECT_TRUE(o.violations().empty()) << o.violations().front();
  EXPECT_EQ(o.committed_txns(), 2u);
}

TEST(HistoryOracleTest, TransactionLeftActiveAtEndIsFlagged) {
  HistoryOracle o(4);
  o.on_begin(0, 10);
  o.on_write(0, true, kX, 1, 12);
  finalize_with(o, {});
  EXPECT_TRUE(has_violation(o, "still active"));
}

TEST(HistoryOracleTest, WriteWriteOrderDecidesFinalValue) {
  HistoryOracle o(4);
  // Two disjoint-window writers to the same word: the later-serializing
  // one must win in the replay image.
  o.on_begin(0, 10);
  o.on_write(0, true, kX, 1, 12);
  o.on_commit_start(0, 20);
  o.on_commit_done(0, 25, false);
  o.on_begin(1, 30);
  o.on_write(1, true, kX, 2, 32);
  o.on_commit_start(1, 40);
  o.on_commit_done(1, 45, false);

  finalize_with(o, {{kX, 2}});
  EXPECT_TRUE(o.violations().empty()) << o.violations().front();
  EXPECT_EQ(o.replay_image().find(kX)->second, 2u);
}

}  // namespace
}  // namespace suvtm::check
