// Regression tests for the latent invariant violations the structural
// auditor surfaced when it was first written:
//
//  1. L2 insertions on the writeback/forward paths discarded the victim, so
//     an L2 eviction could orphan L1 copies the inclusive L2 no longer
//     backed (fixed by routing every fill through l2_insert_with_recall).
//  2. SuvVm kept the running transaction's ownership list across
//     suspend_txn, so a later transaction on the same core would flash-flip
//     (publish or discard) the parked transaction's entries (fixed by
//     parking the list in a per-core FIFO stash).
//  3. A lazy committer's committer-wins pass only walked RUNNING
//     transactions, so a suspended conflicting reader resumed and committed
//     against the published writes (fixed by HtmSystem::
//     doom_suspended_conflicting, called from DynTm's lazy commit).
#include <gtest/gtest.h>

#include "check/audit.hpp"
#include "mem/memory_system.hpp"
#include "sim/simulator.hpp"
#include "vm/dyntm.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm {
namespace {

// ---- 1. L2 eviction must recall L1 copies (inclusion) ----------------------

TEST(L2RecallRegressionTest, WritebackPressureKeepsInclusion) {
  sim::MemParams p;
  p.l1_bytes = 4 * 1024;  // 64 lines per L1
  p.l1_assoc = 4;
  p.l2_bytes = 8 * 1024;  // 128 lines: far below the summed L1 capacity
  p.l2_assoc = 8;
  mem::MemorySystem mem(p);

  // Four cores dirty far more lines than the L2 holds: L1 evictions write
  // back through the L2 while other L1s still hold lines the L2 must evict
  // to make room -- the exact shape that used to orphan L1 copies.
  for (int round = 0; round < 4; ++round) {
    for (CoreId c = 0; c < 4; ++c) {
      for (Addr i = 0; i < 96; ++i) {
        mem.access(c, (i + 96 * c + 32 * round) * kLineBytes * 1, true);
      }
    }
  }
  EXPECT_GT(mem.stats().l2_recalls, 0u)
      << "workload did not exercise the L2 eviction-recall path";
  const auto v = check::audit_coherence(mem);
  EXPECT_TRUE(v.empty()) << v.front();
}

// ---- 2. Suspend must park the SUV ownership list ---------------------------

TEST(SuvSuspendRegressionTest, ParkedEntriesSurviveAnInterveningCommit) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  cfg.check.enabled = false;
  sim::Simulator sim(cfg);
  auto* suv = dynamic_cast<vm::SuvVm*>(&sim.htm().vm());
  ASSERT_NE(suv, nullptr);
  htm::HtmSystem& htm = sim.htm();
  const LineAddr parked_line = line_of(0xA000);
  const LineAddr commit_line = line_of(0xB000);

  // Transaction 1 redirects a line, then the thread is descheduled.
  htm::Txn& t = htm.txn(0);
  t.state = htm::TxnState::kRunning;
  suv->on_tx_store(t, 0xA000);
  t.write_lines.insert(parked_line);
  t.write_sig.add(parked_line);
  ASSERT_EQ(suv->table().find(parked_line)->state,
            suv::EntryState::kTxnRedirect);
  ASSERT_TRUE(htm.suspend_txn(0));
  {
    const auto v = check::audit_all(sim.mem(), htm, suv);
    EXPECT_TRUE(v.empty()) << v.front();
  }

  // Transaction 2 on the same core commits. Its flash flip must touch only
  // its own entry -- before the fix, the stale ownership list made it
  // publish the parked transaction's entry too.
  t.state = htm::TxnState::kRunning;
  suv->on_tx_store(t, 0xB000);
  t.write_lines.insert(commit_line);
  t.write_sig.add(commit_line);
  suv->commit_cost(t);
  suv->on_commit_done(t);
  t.reset_committed();
  ASSERT_NE(suv->table().find(parked_line), nullptr);
  EXPECT_EQ(suv->table().find(parked_line)->state,
            suv::EntryState::kTxnRedirect);
  EXPECT_EQ(suv->table().find(commit_line)->state,
            suv::EntryState::kGlobalRedirect);

  // Resume and abort transaction 1: exactly its own entry is discarded.
  ASSERT_TRUE(htm.resume_txn(0));
  htm::Txn& resumed = htm.txn(0);
  ASSERT_EQ(resumed.state, htm::TxnState::kRunning);
  resumed.state = htm::TxnState::kAborting;
  suv->on_abort_done(resumed);
  resumed.reset_attempt();
  EXPECT_EQ(suv->table().find(parked_line), nullptr);
  EXPECT_EQ(suv->table().find(commit_line)->state,
            suv::EntryState::kGlobalRedirect);
}

// ---- 3. Committer-wins must reach suspended victims ------------------------

TEST(SuspendedDoomRegressionTest, LazyCommitDoomsSuspendedReader) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kDynTm;
  cfg.check.enabled = false;
  sim::Simulator sim(cfg);
  auto* dyn = dynamic_cast<vm::DynTm*>(&sim.htm().vm());
  ASSERT_NE(dyn, nullptr);
  htm::HtmSystem& htm = sim.htm();

  // An eager reader of line 500 is descheduled mid-transaction.
  htm::Txn& victim = htm.txn(1);
  victim.state = htm::TxnState::kRunning;
  victim.site = 1;
  dyn->on_begin(victim);
  victim.lazy = false;
  victim.read_lines.insert(500);
  victim.read_sig.add(500);
  ASSERT_TRUE(htm.suspend_txn(1));

  // A lazy writer of the same line commits (committer wins). The victim
  // cannot be aborted while parked, so it must be doomed for resume.
  htm::Txn& committer = htm.txn(0);
  committer.state = htm::TxnState::kRunning;
  committer.site = 2;
  dyn->on_begin(committer);
  committer.lazy = true;
  committer.write_lines.insert(500);
  committer.write_sig.add(500);
  dyn->commit_cost(committer);
  EXPECT_GE(dyn->dyntm_stats().lazy_commit_dooms, 1u);

  ASSERT_TRUE(htm.resume_txn(1));
  EXPECT_TRUE(htm.txn(1).doomed) << "resumed reader would commit against "
                                    "the published write";
}

TEST(SuspendedDoomRegressionTest, DirectApiDoomsOnlyOverlappingVictims) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  cfg.check.enabled = false;
  sim::Simulator sim(cfg);
  htm::HtmSystem& htm = sim.htm();

  htm::Txn& reader = htm.txn(1);
  reader.state = htm::TxnState::kRunning;
  reader.read_lines.insert(600);
  reader.read_sig.add(600);
  ASSERT_TRUE(htm.suspend_txn(1));
  htm::Txn& bystander = htm.txn(2);
  bystander.state = htm::TxnState::kRunning;
  bystander.read_lines.insert(700);
  bystander.read_sig.add(700);
  ASSERT_TRUE(htm.suspend_txn(2));

  htm::Txn& committer = htm.txn(0);
  committer.state = htm::TxnState::kRunning;
  committer.write_lines.insert(600);
  committer.write_sig.add(600);
  EXPECT_EQ(htm.doom_suspended_conflicting(committer), 1u);
  // Already-doomed victims are not counted twice.
  EXPECT_EQ(htm.doom_suspended_conflicting(committer), 0u);
  committer.reset_attempt();

  ASSERT_TRUE(htm.resume_txn(1));
  EXPECT_TRUE(htm.txn(1).doomed);
  ASSERT_TRUE(htm.resume_txn(2));
  EXPECT_FALSE(htm.txn(2).doomed);
}

}  // namespace
}  // namespace suvtm
