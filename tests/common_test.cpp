#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace suvtm {
namespace {

TEST(TypesTest, LineArithmetic) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 1u);
  EXPECT_EQ(addr_of_line(1), 64u);
  EXPECT_EQ(addr_of_line(line_of(0x12345)), 0x12340ull & ~63ull);
}

TEST(TypesTest, PageArithmetic) {
  EXPECT_EQ(page_of(0), 0u);
  EXPECT_EQ(page_of(4095), 0u);
  EXPECT_EQ(page_of(4096), 1u);
}

TEST(TypesTest, WordInLine) {
  EXPECT_EQ(word_in_line(0), 0u);
  EXPECT_EQ(word_in_line(8), 1u);
  EXPECT_EQ(word_in_line(56), 7u);
  EXPECT_EQ(word_in_line(64), 0u);
  EXPECT_EQ(word_in_line(65), 0u);  // sub-word offsets round down
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values show up
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ReseedResets) {
  Rng r(5);
  const auto first = r.next();
  r.next();
  r.reseed(5);
  EXPECT_EQ(r.next(), first);
}

TEST(AccumulatorTest, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(AccumulatorTest, Basic) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  a.add(2.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(AccumulatorTest, Reset) {
  Accumulator a;
  a.add(5.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum(), 0.0);
}

TEST(HistogramTest, Bucketing) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.9);
  h.add(10.0);
  h.add(49.0);
  h.add(1000.0);  // overflow -> last bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, NegativeClampsToFirstBucket) {
  Histogram h(1.0, 4);
  h.add(-3.0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(HistogramTest, Quantile) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10));
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.0);
}

TEST(StatsTest, SafeRatio) {
  EXPECT_EQ(safe_ratio(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_ratio(1.0, 2.0), 0.5);
}

TEST(StatsTest, Percent) {
  EXPECT_EQ(percent(0.123), "12.3%");
  EXPECT_EQ(percent(0.0), "0.0%");
  EXPECT_EQ(percent(1.0), "100.0%");
}

}  // namespace
}  // namespace suvtm
