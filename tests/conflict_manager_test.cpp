#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "htm/conflict_manager.hpp"

namespace suvtm::htm {
namespace {

class ConflictManagerTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kCores = 4;

  ConflictManagerTest()
      : cm_(kCores, sim::ConflictPolicy::kRequesterStalls,
            /*sig_bits=*/2048, /*sig_hashes=*/2) {
    for (CoreId c = 0; c < kCores; ++c) {
      txns_.push_back(std::make_unique<Txn>(c, 2048, 2));
      view_.push_back(txns_.back().get());
    }
  }

  /// Start a txn on core `c` with the given read/write line sets.
  void start(CoreId c, std::initializer_list<LineAddr> reads,
             std::initializer_list<LineAddr> writes, bool lazy = false) {
    Txn& t = *txns_[c];
    t.state = TxnState::kRunning;
    cm_.set_isolation(c, true);
    t.timestamp = (static_cast<std::uint64_t>(++ts_) << 5) | c;
    t.lazy = lazy;
    for (LineAddr l : reads) {
      t.read_sig.add(l);
      cm_.note_read(c, l);
      t.read_lines.insert(l);
    }
    for (LineAddr l : writes) {
      t.write_sig.add(l);
      cm_.note_write(c, l);
      t.write_lines.insert(l);
    }
  }

  ConflictManager::Decision check(CoreId c, LineAddr l, bool w,
                                  bool lazy = false) {
    return cm_.check(c, l, w, lazy, view_);
  }

  ConflictManager cm_;
  std::vector<std::unique_ptr<Txn>> txns_;
  std::vector<Txn*> view_;
  int ts_ = 0;
};

TEST_F(ConflictManagerTest, NoTxnsNoConflict) {
  auto d = check(0, 100, true);
  EXPECT_EQ(d.action, ConflictManager::Action::kProceed);
}

TEST_F(ConflictManagerTest, ReadReadDoesNotConflict) {
  start(1, {100}, {});
  start(0, {}, {});
  auto d = check(0, 100, false);
  EXPECT_EQ(d.action, ConflictManager::Action::kProceed);
}

TEST_F(ConflictManagerTest, ReadConflictsWithWriter) {
  start(1, {}, {100});
  start(0, {}, {});
  auto d = check(0, 100, false);
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
  EXPECT_EQ(d.holder, 1u);
}

TEST_F(ConflictManagerTest, WriteConflictsWithReader) {
  start(1, {100}, {});
  start(0, {}, {});
  auto d = check(0, 100, true);
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
  EXPECT_EQ(d.holder, 1u);
}

TEST_F(ConflictManagerTest, WriteWriteConflicts) {
  start(1, {}, {100});
  start(0, {}, {});
  EXPECT_EQ(check(0, 100, true).action, ConflictManager::Action::kStall);
}

TEST_F(ConflictManagerTest, NonTransactionalRequesterStallsOnly) {
  start(1, {}, {100});
  // Core 0 has no active transaction: strong isolation still stalls it.
  auto d = check(0, 100, false);
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
  EXPECT_EQ(d.victim, kNoCore);
}

TEST_F(ConflictManagerTest, CommittingTxnStillHoldsIsolation) {
  start(1, {}, {100});
  txns_[1]->state = TxnState::kCommitting;
  start(0, {}, {});
  EXPECT_EQ(check(0, 100, false).action, ConflictManager::Action::kStall);
}

TEST_F(ConflictManagerTest, AbortingTxnStillHoldsIsolation) {
  start(1, {}, {100});
  txns_[1]->state = TxnState::kAborting;
  start(0, {}, {});
  // The repair pathology: the aborting holder still NACKs neighbours.
  EXPECT_EQ(check(0, 100, false).action, ConflictManager::Action::kStall);
}

TEST_F(ConflictManagerTest, TwoPartyCycleAbortsYoungest) {
  start(0, {100}, {});  // older (smaller timestamp)
  start(1, {200}, {});  // younger
  // Core 1 writes 100 -> stalls on core 0.
  auto d1 = check(1, 100, true);
  EXPECT_EQ(d1.action, ConflictManager::Action::kStall);
  // Core 0 writes 200 -> cycle; the younger core 1 must be the victim.
  auto d0 = check(0, 200, true);
  EXPECT_EQ(d0.victim, 1u);
  EXPECT_EQ(d0.action, ConflictManager::Action::kStall);  // 0 stalls on
  EXPECT_EQ(cm_.stats().deadlock_aborts, 1u);
}

TEST_F(ConflictManagerTest, TwoPartyCycleSelfVictimWhenYounger) {
  start(0, {100}, {});
  start(1, {200}, {});
  auto d0 = check(0, 200, true);  // 0 stalls on 1
  EXPECT_EQ(d0.action, ConflictManager::Action::kStall);
  // 1 writes 100 -> cycle; 1 is younger -> aborts itself.
  auto d1 = check(1, 100, true);
  EXPECT_EQ(d1.action, ConflictManager::Action::kAbortSelf);
  EXPECT_EQ(d1.victim, 1u);
}

TEST_F(ConflictManagerTest, ThreePartyCycleDetected) {
  start(0, {100}, {});
  start(1, {200}, {});
  start(2, {300}, {});
  EXPECT_EQ(check(1, 100, true).action, ConflictManager::Action::kStall);
  EXPECT_EQ(check(2, 200, true).action, ConflictManager::Action::kStall);
  // 0 writes 300: 0 -> 2 -> 1 -> 0 closes the cycle; victim is youngest (2).
  auto d = check(0, 300, true);
  EXPECT_EQ(d.victim, 2u);
}

TEST_F(ConflictManagerTest, ClearWaitBreaksStaleEdges) {
  start(0, {100}, {});
  start(1, {200}, {});
  check(1, 100, true);  // 1 -> 0
  cm_.clear_wait(1);
  // Now 0 writing 200 sees no cycle: just stalls.
  auto d = check(0, 200, true);
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
  EXPECT_EQ(d.victim, kNoCore);
}

TEST_F(ConflictManagerTest, ProceedClearsOwnWait) {
  start(0, {100}, {});
  start(1, {200}, {});
  check(1, 100, true);  // 1 waits on 0
  txns_[0]->reset_attempt();  // 0's txn ends
  auto d = check(1, 100, true);
  EXPECT_EQ(d.action, ConflictManager::Action::kProceed);
  // Fresh cycle check from 0 must not see a stale 1 -> 0 edge.
  start(0, {999}, {});
  EXPECT_EQ(check(0, 200, true).victim, kNoCore);
}

TEST_F(ConflictManagerTest, FalseConflictCounted) {
  start(1, {}, {100});
  start(0, {}, {});
  // Find a line that aliases 100 in the 2048-bit signature but is not in
  // the exact write set.
  LineAddr alias = 0;
  for (LineAddr cand = 101; cand < 2000000; ++cand) {
    if (txns_[1]->write_sig.test(cand)) {
      alias = cand;
      break;
    }
  }
  ASSERT_NE(alias, 0u);
  const auto before = cm_.stats().false_conflicts;
  auto d = check(0, alias, false);
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
  EXPECT_EQ(cm_.stats().false_conflicts, before + 1);
}

// --- DynTM mixed-mode matrix -------------------------------------------------

TEST_F(ConflictManagerTest, LazyHolderDoesNotNackReaders) {
  start(1, {}, {100}, /*lazy=*/true);
  start(0, {}, {});
  EXPECT_EQ(check(0, 100, false).action, ConflictManager::Action::kProceed);
}

TEST_F(ConflictManagerTest, LazyHolderNacksWriteWrite) {
  start(1, {}, {100}, /*lazy=*/true);
  start(0, {}, {});
  EXPECT_EQ(check(0, 100, true).action, ConflictManager::Action::kStall);
}

TEST_F(ConflictManagerTest, WriteInvalidatesLazyReader) {
  start(1, {100}, {}, /*lazy=*/true);
  start(0, {}, {});
  auto d = check(0, 100, true);
  EXPECT_EQ(d.action, ConflictManager::Action::kProceed);
  ASSERT_EQ(d.invalidated_lazy_readers.size(), 1u);
  EXPECT_EQ(d.invalidated_lazy_readers[0], 1u);
}

TEST_F(ConflictManagerTest, LazyRequesterIgnoresReaders) {
  start(1, {100}, {});  // eager reader
  start(0, {}, {}, /*lazy=*/true);
  EXPECT_EQ(check(0, 100, true, /*lazy=*/true).action,
            ConflictManager::Action::kProceed);
}

TEST_F(ConflictManagerTest, LazyRequesterStallsOnEagerWriter) {
  start(1, {}, {100});  // eager writer: in-place uncommitted data
  start(0, {}, {}, /*lazy=*/true);
  EXPECT_EQ(check(0, 100, false, /*lazy=*/true).action,
            ConflictManager::Action::kStall);
}

TEST_F(ConflictManagerTest, CommittingLazyHolderTreatedAsEager) {
  start(1, {}, {100}, /*lazy=*/true);
  txns_[1]->state = TxnState::kCommitting;
  start(0, {}, {});
  // During publication the lazy committer's write set must NACK readers.
  EXPECT_EQ(check(0, 100, false).action, ConflictManager::Action::kStall);
}

}  // namespace
}  // namespace suvtm::htm
