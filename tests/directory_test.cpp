#include <gtest/gtest.h>

#include "mem/directory.hpp"

namespace suvtm::mem {
namespace {

TEST(DirectoryTest, EntryCreatedOnDemand) {
  Directory d;
  EXPECT_EQ(d.find(7), nullptr);
  d.entry(7).owner = 3;
  ASSERT_NE(d.find(7), nullptr);
  EXPECT_EQ(d.find(7)->owner, 3u);
  EXPECT_EQ(d.tracked_lines(), 1u);
}

TEST(DirectoryTest, RemoveCoreClearsSharerBit) {
  Directory d;
  d.entry(1).sharers = 0b1010;
  d.remove_core(1, 1);
  EXPECT_EQ(d.find(1)->sharers, 0b1000u);
}

TEST(DirectoryTest, RemoveOwner) {
  Directory d;
  d.entry(2).owner = 5;
  d.entry(2).sharers = 1u << 5;
  d.remove_core(2, 5);
  EXPECT_EQ(d.find(2), nullptr);  // empty entry erased
}

TEST(DirectoryTest, RemoveFromUntrackedLineIsNoop) {
  Directory d;
  d.remove_core(99, 0);
  EXPECT_EQ(d.tracked_lines(), 0u);
}

TEST(DirectoryTest, EntryErasedOnlyWhenEmpty) {
  Directory d;
  d.entry(3).owner = 1;
  d.entry(3).sharers = 0b11;
  d.remove_core(3, 1);
  ASSERT_NE(d.find(3), nullptr);  // core 1 removed, core 0 still shares
  EXPECT_EQ(d.find(3)->sharers, 0b1u);
  EXPECT_EQ(d.find(3)->owner, kNoCore);
  d.remove_core(3, 0);
  EXPECT_EQ(d.find(3), nullptr);
}

}  // namespace
}  // namespace suvtm::mem
