#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "runner/tables.hpp"

namespace suvtm::runner {
namespace {

stamp::SuiteParams tiny() {
  stamp::SuiteParams p;
  p.scale = 0.2;
  return p;
}

TEST(ExperimentTest, RunAppCollectsCoreStats) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  const auto r = run_app(stamp::AppId::kKmeans, cfg, tiny());
  EXPECT_EQ(r.app, "kmeans");
  EXPECT_EQ(r.scheme, sim::Scheme::kLogTmSe);
  EXPECT_GT(r.makespan, 0u);
  EXPECT_GT(r.breakdown.total(), 0u);
  EXPECT_GT(r.vm.tx_stores, 0u);
  EXPECT_FALSE(r.has_suv);
  EXPECT_FALSE(r.has_dyntm);
}

TEST(ExperimentTest, SuvStatsCollectedForSuvScheme) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  const auto r = run_app(stamp::AppId::kKmeans, cfg, tiny());
  EXPECT_TRUE(r.has_suv);
  EXPECT_FALSE(r.has_dyntm);
  EXPECT_GT(r.suv.entries_created, 0u);
}

TEST(ExperimentTest, DynTmSuvCollectsBothStatBlocks) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kDynTmSuv;
  const auto r = run_app(stamp::AppId::kKmeans, cfg, tiny());
  EXPECT_TRUE(r.has_dyntm);
  EXPECT_TRUE(r.has_suv);
}

TEST(ExperimentTest, GeomeanIdenticalRunsIsOne) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kFasTm;
  std::vector<RunResult> a = {run_app(stamp::AppId::kSsca2, cfg, tiny())};
  EXPECT_DOUBLE_EQ(geomean_speedup(a, a, false), 1.0);
}

TEST(ExperimentTest, GeomeanDetectsSpeedup) {
  RunResult slow, fast;
  slow.app = fast.app = "ssca2";
  slow.makespan = 200;
  fast.makespan = 100;
  EXPECT_DOUBLE_EQ(geomean_speedup({slow}, {fast}, false), 2.0);
}

TEST(ExperimentTest, GeomeanHighContentionFilters) {
  RunResult low_app_base, low_app_fast;
  low_app_base.app = low_app_fast.app = "kmeans";  // not high contention
  low_app_base.makespan = 300;
  low_app_fast.makespan = 100;
  // No high-contention apps present: neutral 1.0.
  EXPECT_DOUBLE_EQ(geomean_speedup({low_app_base}, {low_app_fast}, true), 1.0);
}

TEST(TablesTest, RenderAlignsColumns) {
  const auto s = render_table({{"a", "bb"}, {"ccc", "d"}});
  EXPECT_NE(s.find("a    bb"), std::string::npos);
  EXPECT_NE(s.find("ccc  d"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);  // header underline
}

TEST(TablesTest, Formatters) {
  EXPECT_EQ(fmt_u64(12345), "12345");
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
}

TEST(TablesTest, CsvRendersAndQuotes) {
  const auto csv = render_csv({{"a", "b,c"}, {}, {"d\"e", "f"}});
  EXPECT_EQ(csv, "a,\"b,c\"\n\"d\"\"e\",f\n");
}

TEST(TablesTest, CsvWriteRoundtrip) {
  const std::string path = ::testing::TempDir() + "/suvtm_tables_test.csv";
  ASSERT_TRUE(write_csv(path, {{"x", "y"}, {"1", "2"}}));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_STREQ(buf, "x,y\n1,2\n");
}

TEST(TablesTest, BreakdownRowNormalizes) {
  sim::Breakdown b;
  b.add(sim::Bucket::kTrans, 50);
  b.add(sim::Bucket::kStalled, 50);
  const auto row = breakdown_row("x", b, 100.0);
  EXPECT_EQ(row.front(), "x");
  EXPECT_EQ(row.back(), "1.000");  // total share
  EXPECT_EQ(row.size(), breakdown_header().size());
}

}  // namespace
}  // namespace suvtm::runner
