// Randomized property tests for the flat-container kit: FlatMap, FlatSet
// and LineSet are driven through long op sequences against std::unordered
// reference models, plus directed tests for the backshift-erase wraparound
// cases (probe chains crossing the table's top slot) that random keys with
// a mixing hash almost never exercise.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_hash.hpp"
#include "mem/directory.hpp"

namespace suvtm {
namespace {

/// Identity hash: lets a test choose home slots directly, forcing probe
/// chains (and backshift scans) to wrap around the power-of-two table.
struct IdentityHash {
  std::size_t operator()(std::uint64_t k) const {
    return static_cast<std::size_t>(k);
  }
};

template <class Map, class Ref>
void expect_map_equals(const Map& m, const Ref& ref) {
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end()) << "missing key " << k;
    EXPECT_EQ(it->second, v) << "wrong value for key " << k;
  }
  std::size_t walked = 0;
  for (const auto& slot : m) {
    auto it = ref.find(slot.first);
    ASSERT_NE(it, ref.end()) << "phantom key " << slot.first;
    EXPECT_EQ(slot.second, it->second);
    ++walked;
  }
  EXPECT_EQ(walked, ref.size());
}

TEST(FlatMapProperty, MatchesUnorderedMapUnderRandomOps) {
  std::mt19937_64 rng(12345);
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  // Small key space so inserts, hits, overwrites and erases all happen.
  std::uniform_int_distribution<std::uint64_t> key(0, 300);
  std::uniform_int_distribution<int> op(0, 99);

  for (int step = 0; step < 30000; ++step) {
    const std::uint64_t k = key(rng);
    const int o = op(rng);
    if (o < 35) {
      const std::uint64_t v = rng();
      m[k] = v;
      ref[k] = v;
    } else if (o < 50) {
      const std::uint64_t v = rng();
      auto [it, ins] = m.try_emplace(k, v);
      auto [rit, rins] = ref.try_emplace(k, v);
      EXPECT_EQ(ins, rins);
      EXPECT_EQ(it->second, rit->second);
    } else if (o < 75) {
      EXPECT_EQ(m.erase(k), ref.erase(k));
    } else if (o < 80) {
      auto it = m.find(k);
      if (it != m.end()) {
        m.erase(it);
        ref.erase(k);
      }
    } else if (o < 99) {
      EXPECT_EQ(m.count(k), ref.count(k));
      auto it = m.find(k);
      auto rit = ref.find(k);
      ASSERT_EQ(it == m.end(), rit == ref.end());
      if (it != m.end()) {
        EXPECT_EQ(it->second, rit->second);
      }
    } else {
      m.clear();
      ref.clear();
    }
    if (step % 2500 == 0) expect_map_equals(m, ref);
  }
  expect_map_equals(m, ref);
}

TEST(FlatMapProperty, ColludingKeysMatchReferenceThroughWraparound) {
  // Identity hash + keys congruent mod a small stride: every probe chain is
  // long and many cross slot 0, so backshift erase must reason about cyclic
  // distance correctly to keep the survivors findable.
  std::mt19937_64 rng(987);
  FlatMap<std::uint64_t, std::uint64_t, IdentityHash> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  std::uniform_int_distribution<std::uint64_t> home(0, 15);
  std::uniform_int_distribution<std::uint64_t> gen(0, 7);
  std::uniform_int_distribution<int> op(0, 9);

  for (int step = 0; step < 20000; ++step) {
    // Keys 16*g + h all target home slot h while capacity is 16.
    const std::uint64_t k = 16 * gen(rng) + home(rng);
    if (op(rng) < 6) {
      const std::uint64_t v = rng();
      m[k] = v;
      ref[k] = v;
    } else {
      EXPECT_EQ(m.erase(k), ref.erase(k));
    }
    EXPECT_EQ(m.count(k), ref.count(k));
  }
  expect_map_equals(m, ref);
}

TEST(FlatMapBackshift, EraseUnlinksChainThatWrapsPastSlotZero) {
  // Directed wraparound: homes at the top of the 16-slot table, chain
  // spilling over slot 0. Erasing the entry sitting AT the top must pull
  // the wrapped successors back without teleporting an entry past its home.
  FlatMap<std::uint64_t, std::uint64_t, IdentityHash> m;
  // All five keys home to slots 14/15 while capacity is 16: occupancy runs
  // 14, 15, 0, 1, 2 after the probe chain wraps.
  const std::uint64_t keys[] = {14, 15, 30, 31, 46};
  for (std::uint64_t k : keys) m[k] = 100 + k;
  for (std::uint64_t victim : keys) {
    for (std::uint64_t k : keys) m[k] = 100 + k;  // reset/refresh
    ASSERT_EQ(m.erase(victim), 1u);
    for (std::uint64_t k : keys) {
      if (k == victim) {
        EXPECT_FALSE(m.contains(k));
      } else {
        auto it = m.find(k);
        ASSERT_NE(it, m.end()) << "lost key " << k << " erasing " << victim;
        EXPECT_EQ(it->second, 100 + k);
      }
    }
    m[victim] = 100 + victim;  // restore for the next round
  }
}

TEST(FlatSetProperty, MatchesUnorderedSetUnderRandomOps) {
  std::mt19937_64 rng(777);
  FlatSet<std::uint64_t> s;
  std::unordered_set<std::uint64_t> ref;
  std::uniform_int_distribution<std::uint64_t> key(0, 500);
  std::uniform_int_distribution<int> op(0, 99);

  for (int step = 0; step < 30000; ++step) {
    const std::uint64_t k = key(rng);
    const int o = op(rng);
    if (o < 45) {
      EXPECT_EQ(s.insert(k), ref.insert(k).second);
    } else if (o < 75) {
      EXPECT_EQ(s.erase(k), ref.erase(k));
    } else if (o < 99) {
      EXPECT_EQ(s.contains(k), ref.contains(k));
    } else {
      s.clear();
      ref.clear();
    }
  }
  ASSERT_EQ(s.size(), ref.size());
  for (std::uint64_t k : ref) EXPECT_TRUE(s.contains(k));
  std::size_t walked = 0;
  for (std::uint64_t k : s) {
    EXPECT_TRUE(ref.contains(k));
    ++walked;
  }
  EXPECT_EQ(walked, ref.size());
}

TEST(LineSetProperty, MatchesReferenceAndKeepsInsertionOrder) {
  std::mt19937_64 rng(424242);
  LineSet s;
  std::unordered_set<LineAddr> ref;
  std::vector<LineAddr> order;  // reference insertion order
  std::uniform_int_distribution<LineAddr> key(0, 80);
  std::uniform_int_distribution<int> op(0, 99);

  for (int step = 0; step < 20000; ++step) {
    const LineAddr l = key(rng);
    const int o = op(rng);
    if (o < 55) {
      // Crosses the small-buffer threshold back and forth: the key space is
      // larger than the scan limit, so the set regularly runs indexed.
      const bool inserted = s.insert(l);
      EXPECT_EQ(inserted, ref.insert(l).second);
      if (inserted) order.push_back(l);
    } else if (o < 70) {
      EXPECT_EQ(s.erase(l), ref.erase(l));
      order.erase(std::remove(order.begin(), order.end(), l), order.end());
    } else if (o < 99) {
      EXPECT_EQ(s.contains(l), ref.contains(l));
      EXPECT_EQ(s.count(l), ref.count(l));
    } else {
      s.clear();
      ref.clear();
      order.clear();
    }
    ASSERT_EQ(s.size(), ref.size());
  }
  // Iteration must replay exactly the surviving insertion order.
  std::vector<LineAddr> walked(s.begin(), s.end());
  EXPECT_EQ(walked, order);
}

TEST(DirectoryProperty, MatchesReferenceModelUnderRandomOps) {
  std::mt19937_64 rng(31337);
  mem::Directory dir;
  std::unordered_map<LineAddr, mem::DirEntry> ref;
  std::uniform_int_distribution<LineAddr> line(0, 200);
  std::uniform_int_distribution<std::uint32_t> core(0, 15);
  std::uniform_int_distribution<int> op(0, 9);

  for (int step = 0; step < 20000; ++step) {
    const LineAddr l = line(rng);
    const CoreId c = core(rng);
    const int o = op(rng);
    if (o < 3) {  // add a sharer
      dir.entry(l).sharers |= 1u << c;
      ref[l].sharers |= 1u << c;
    } else if (o < 5) {  // set an owner
      dir.entry(l).owner = c;
      ref[l].owner = c;
    } else if (o < 9) {  // L1 eviction path: may backshift-erase
      dir.remove_core(l, c);
      auto it = ref.find(l);
      if (it != ref.end()) {
        it->second.sharers &= ~(1u << c);
        if (it->second.owner == c) it->second.owner = kNoCore;
        if (it->second.sharers == 0 && it->second.owner == kNoCore) {
          ref.erase(it);
        }
      }
    } else {  // lookup
      const mem::DirEntry* e = dir.find(l);
      auto it = ref.find(l);
      ASSERT_EQ(e == nullptr, it == ref.end());
      if (e) {
        EXPECT_EQ(e->sharers, it->second.sharers);
        EXPECT_EQ(e->owner, it->second.owner);
      }
    }
  }
  ASSERT_EQ(dir.tracked_lines(), ref.size());
  for (const auto& [l, e] : ref) {
    const mem::DirEntry* d = dir.find(l);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->sharers, e.sharers);
    EXPECT_EQ(d->owner, e.owner);
  }
}

}  // namespace
}  // namespace suvtm
