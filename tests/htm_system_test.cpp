#include <gtest/gtest.h>

#include "htm/htm_system.hpp"
#include "sim/simulator.hpp"
#include "stamp/framework.hpp"

namespace suvtm::htm {
namespace {

class HtmSystemTest : public ::testing::Test {
 protected:
  HtmSystemTest() {
    cfg_.scheme = sim::Scheme::kLogTmSe;
    mem_ = std::make_unique<mem::MemorySystem>(cfg_.mem);
    htm_ = std::make_unique<HtmSystem>(cfg_, *mem_,
                                       sim::make_version_manager(cfg_, *mem_));
  }

  Txn& run_txn(CoreId c) {
    Txn& t = htm_->txn(c);
    t.state = TxnState::kRunning;
    htm_->conflicts().set_isolation(c, true);
    return t;
  }

  sim::SimConfig cfg_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<HtmSystem> htm_;
};

TEST_F(HtmSystemTest, DoomMarksRunningTxn) {
  Txn& t = run_txn(3);
  htm_->doom(3);
  EXPECT_TRUE(t.doomed);
}

TEST_F(HtmSystemTest, DoomIgnoresIdleAndCommitting) {
  htm_->doom(0);
  EXPECT_FALSE(htm_->txn(0).doomed);
  Txn& t = run_txn(1);
  t.state = TxnState::kCommitting;
  htm_->doom(1);
  EXPECT_FALSE(t.doomed);
}

TEST_F(HtmSystemTest, CommitTokenIsExclusive) {
  EXPECT_TRUE(htm_->commit_token_free());
  EXPECT_TRUE(htm_->acquire_commit_token(2));
  EXPECT_FALSE(htm_->acquire_commit_token(3));
  EXPECT_TRUE(htm_->acquire_commit_token(2));  // reentrant for the holder
  htm_->release_commit_token(2);
  EXPECT_TRUE(htm_->acquire_commit_token(3));
  htm_->release_commit_token(3);
}

TEST_F(HtmSystemTest, SuspendRequiresRunningTxn) {
  EXPECT_FALSE(htm_->suspend_txn(0));
  run_txn(0);
  EXPECT_TRUE(htm_->suspend_txn(0));
  EXPECT_EQ(htm_->suspended_count(), 1u);
  // The core's descriptor is clean for the next scheduled thread.
  EXPECT_FALSE(htm_->txn(0).active());
}

TEST_F(HtmSystemTest, SuspendedSetsStillConflict) {
  Txn& t = run_txn(0);
  t.write_sig.add(100);
  t.write_lines.insert(100);
  ASSERT_TRUE(htm_->suspend_txn(0));
  // Another core's access to line 100 must stall on the summary.
  auto d = htm_->conflicts().check(1, 100, false, false, htm_->txn_view());
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
  EXPECT_GE(htm_->conflicts().stats().suspended_stalls, 1u);
}

TEST_F(HtmSystemTest, SuspendedReadsBlockWriters) {
  Txn& t = run_txn(0);
  t.read_sig.add(200);
  t.read_lines.insert(200);
  ASSERT_TRUE(htm_->suspend_txn(0));
  EXPECT_EQ(htm_->conflicts().check(1, 200, true, false, htm_->txn_view()).action,
            ConflictManager::Action::kStall);
  // Reads of a read-only suspended line are fine.
  EXPECT_EQ(htm_->conflicts().check(1, 200, false, false, htm_->txn_view()).action,
            ConflictManager::Action::kProceed);
}

TEST_F(HtmSystemTest, ResumeRestoresTheTransaction) {
  Txn& t = run_txn(0);
  t.write_sig.add(100);
  t.write_lines.insert(100);
  t.site = 42;
  ASSERT_TRUE(htm_->suspend_txn(0));
  ASSERT_TRUE(htm_->resume_txn(0));
  EXPECT_EQ(htm_->suspended_count(), 0u);
  EXPECT_EQ(htm_->txn(0).state, TxnState::kRunning);
  EXPECT_EQ(htm_->txn(0).site, 42u);
  EXPECT_TRUE(htm_->txn(0).write_sig.test(100));
  // The summary no longer NACKs once the transaction is live again
  // (conflicts now come from the live signature instead).
  auto d = htm_->conflicts().check(1, 100, true, false, htm_->txn_view());
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
  EXPECT_EQ(d.holder, 0u);
}

TEST_F(HtmSystemTest, ResumeFailsWithoutSuspension) {
  EXPECT_FALSE(htm_->resume_txn(0));
  run_txn(0);
  EXPECT_FALSE(htm_->resume_txn(0));  // core busy
}

TEST_F(HtmSystemTest, MultipleSuspendedTxnsMergeInSummary) {
  Txn& a = run_txn(0);
  a.write_lines.insert(100);
  a.write_sig.add(100);
  ASSERT_TRUE(htm_->suspend_txn(0));
  Txn& b = run_txn(1);
  b.write_lines.insert(200);
  b.write_sig.add(200);
  ASSERT_TRUE(htm_->suspend_txn(1));
  EXPECT_EQ(htm_->conflicts().check(2, 100, true, false, htm_->txn_view()).action,
            ConflictManager::Action::kStall);
  EXPECT_EQ(htm_->conflicts().check(2, 200, true, false, htm_->txn_view()).action,
            ConflictManager::Action::kStall);
  // Resuming one rebuilds the summary: the other still blocks.
  ASSERT_TRUE(htm_->resume_txn(0));
  htm_->txn(0).reset_committed();  // it finishes
  EXPECT_EQ(htm_->conflicts().check(2, 100, true, false, htm_->txn_view()).action,
            ConflictManager::Action::kProceed);
  EXPECT_EQ(htm_->conflicts().check(2, 200, true, false, htm_->txn_view()).action,
            ConflictManager::Action::kStall);
}

// --- Requester-wins policy ---------------------------------------------------

class RequesterWinsTest : public ::testing::Test {
 protected:
  RequesterWinsTest() {
    cfg_.scheme = sim::Scheme::kSuv;
    cfg_.htm.conflict_policy = sim::ConflictPolicy::kRequesterWins;
    mem_ = std::make_unique<mem::MemorySystem>(cfg_.mem);
    htm_ = std::make_unique<HtmSystem>(cfg_, *mem_,
                                       sim::make_version_manager(cfg_, *mem_));
  }

  sim::SimConfig cfg_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<HtmSystem> htm_;
};

TEST_F(RequesterWinsTest, OlderRequesterDoomsHolder) {
  Txn& holder = htm_->txn(1);
  holder.state = TxnState::kRunning;
  htm_->conflicts().set_isolation(1, true);
  holder.timestamp = 200;  // younger
  holder.write_sig.add(100);
  htm_->conflicts().note_write(1, 100);
  holder.write_lines.insert(100);
  Txn& req = htm_->txn(0);
  req.state = TxnState::kRunning;
  htm_->conflicts().set_isolation(0, true);
  req.timestamp = 100;  // older: wins
  auto d = htm_->conflicts().check(0, 100, true, false, htm_->txn_view());
  EXPECT_EQ(d.victim, 1u);
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
  EXPECT_GE(htm_->conflicts().stats().requester_wins, 1u);
}

TEST_F(RequesterWinsTest, YoungerRequesterFallsBackToStall) {
  // Timestamp priority prevents mutual-doom livelock: a younger requester
  // cannot kill the holder and just stalls.
  Txn& holder = htm_->txn(1);
  holder.state = TxnState::kRunning;
  htm_->conflicts().set_isolation(1, true);
  holder.timestamp = 100;  // older
  holder.write_sig.add(100);
  htm_->conflicts().note_write(1, 100);
  holder.write_lines.insert(100);
  Txn& req = htm_->txn(0);
  req.state = TxnState::kRunning;
  htm_->conflicts().set_isolation(0, true);
  req.timestamp = 200;
  auto d = htm_->conflicts().check(0, 100, true, false, htm_->txn_view());
  EXPECT_NE(d.victim, 1u);
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
}

TEST_F(RequesterWinsTest, CommittingHolderIsSpared) {
  Txn& holder = htm_->txn(1);
  holder.state = TxnState::kCommitting;
  htm_->conflicts().set_isolation(1, true);
  holder.timestamp = 500;
  holder.write_sig.add(100);
  htm_->conflicts().note_write(1, 100);
  holder.write_lines.insert(100);
  Txn& req = htm_->txn(0);
  req.state = TxnState::kRunning;
  htm_->conflicts().set_isolation(0, true);
  req.timestamp = 99;
  auto d = htm_->conflicts().check(0, 100, true, false, htm_->txn_view());
  EXPECT_NE(d.victim, 1u);  // fell through to the stall policy
  EXPECT_EQ(d.action, ConflictManager::Action::kStall);
}

// End-to-end: the whole suite of semantics must hold under requester-wins.
sim::ThreadTask rw_incrementer(sim::ThreadContext& tc, Addr counter,
                               sim::Barrier& bar, int iters) {
  co_await tc.barrier(bar);
  for (int i = 0; i < iters; ++i) {
    co_await stamp::atomically(tc, 1,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const std::uint64_t v = co_await t.load(counter);
      co_await t.compute(5);
      co_await t.store(counter, v + 1);
    });
  }
  co_await tc.barrier(bar);
}

TEST(RequesterWinsIntegration, HotCounterStaysAtomic) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  cfg.htm.conflict_policy = sim::ConflictPolicy::kRequesterWins;
  sim::Simulator sim(cfg);
  const Addr counter = 0x10000;
  auto& bar = sim.make_barrier(sim.num_cores());
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, rw_incrementer(sim.context(c), counter, bar, 30));
  }
  sim.run();
  EXPECT_EQ(sim.read_word_resolved(counter), 30u * sim.num_cores());
  EXPECT_GT(sim.htm().conflicts().stats().requester_wins, 0u);
}

}  // namespace
}  // namespace suvtm::htm
