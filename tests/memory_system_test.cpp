#include <gtest/gtest.h>

#include "mem/memory_system.hpp"

namespace suvtm::mem {
namespace {

sim::MemParams params() { return sim::MemParams{}; }  // paper Table III

TEST(MemorySystemTest, ColdReadMissGoesToMemory) {
  MemorySystem m(params());
  auto out = m.access(0, 0x1000, false);
  EXPECT_FALSE(out.l1_hit);
  EXPECT_FALSE(out.l2_hit);
  // At least L1 + directory + L2 + memory latency.
  EXPECT_GE(out.latency, 1u + 6u + 15u + 150u);
  EXPECT_EQ(m.stats().l2_misses, 1u);
}

TEST(MemorySystemTest, SecondReadHitsL1) {
  MemorySystem m(params());
  m.access(0, 0x1000, false);
  auto out = m.access(0, 0x1000, false);
  EXPECT_TRUE(out.l1_hit);
  EXPECT_EQ(out.latency, 1u);  // 1-cycle L1
}

TEST(MemorySystemTest, SameLineDifferentWordHits) {
  MemorySystem m(params());
  m.access(0, 0x1000, false);
  EXPECT_TRUE(m.access(0, 0x1038, false).l1_hit);
}

TEST(MemorySystemTest, ExclusiveReadThenSilentUpgrade) {
  MemorySystem m(params());
  m.access(0, 0x1000, false);  // sole reader -> E
  auto* ln = m.l1(0).find(line_of(0x1000));
  ASSERT_NE(ln, nullptr);
  EXPECT_EQ(ln->state, CohState::kExclusive);
  auto out = m.access(0, 0x1000, true);  // E -> M, no coherence traffic
  EXPECT_TRUE(out.l1_hit);
  EXPECT_EQ(out.latency, 1u);
  EXPECT_EQ(m.l1(0).find(line_of(0x1000))->state, CohState::kModified);
}

TEST(MemorySystemTest, SecondReaderGetsSharedState) {
  MemorySystem m(params());
  m.access(0, 0x1000, false);
  m.access(1, 0x1000, false);
  EXPECT_EQ(m.l1(1).find(line_of(0x1000))->state, CohState::kShared);
  // The first reader was downgraded from E.
  EXPECT_EQ(m.l1(0).find(line_of(0x1000))->state, CohState::kShared);
}

TEST(MemorySystemTest, ReadFromModifiedOwnerForwards) {
  MemorySystem m(params());
  m.access(0, 0x1000, true);  // core 0 owns M
  const auto before = m.stats().forwards;
  auto out = m.access(1, 0x1000, false);
  EXPECT_EQ(m.stats().forwards, before + 1);
  EXPECT_FALSE(out.l1_hit);
  EXPECT_EQ(m.l1(0).find(line_of(0x1000))->state, CohState::kShared);
}

TEST(MemorySystemTest, WriteInvalidatesSharers) {
  MemorySystem m(params());
  m.access(0, 0x1000, false);
  m.access(1, 0x1000, false);
  m.access(2, 0x1000, false);
  m.access(3, 0x1000, true);  // GETM invalidates cores 0..2
  EXPECT_EQ(m.l1(0).find(line_of(0x1000)), nullptr);
  EXPECT_EQ(m.l1(1).find(line_of(0x1000)), nullptr);
  EXPECT_EQ(m.l1(2).find(line_of(0x1000)), nullptr);
  EXPECT_EQ(m.l1(3).find(line_of(0x1000))->state, CohState::kModified);
  EXPECT_GE(m.stats().invalidations, 3u);
}

TEST(MemorySystemTest, WriteTakesOwnershipFromModifiedOwner) {
  MemorySystem m(params());
  m.access(0, 0x1000, true);
  m.access(1, 0x1000, true);
  EXPECT_EQ(m.l1(0).find(line_of(0x1000)), nullptr);
  EXPECT_EQ(m.l1(1).find(line_of(0x1000))->state, CohState::kModified);
  EXPECT_GE(m.stats().writebacks, 1u);  // owner's dirty data went to L2
}

TEST(MemorySystemTest, FunctionalStoreVisibleAcrossCores) {
  MemorySystem m(params());
  m.access(0, 0x2000, true);
  m.store_word(0x2000, 77);
  m.access(1, 0x2000, false);
  EXPECT_EQ(m.load_word(0x2000), 77u);
}

TEST(MemorySystemTest, L1CapacityEviction) {
  MemorySystem m(params());
  // Fill one L1 set (4 ways, 128 sets): lines with identical set index.
  const std::uint32_t sets = m.l1(0).num_sets();
  for (int i = 0; i < 5; ++i) {
    m.access(0, static_cast<Addr>(i) * sets * kLineBytes, true);
  }
  // First line evicted, dirty writeback recorded.
  EXPECT_EQ(m.l1(0).find(0), nullptr);
  EXPECT_GE(m.stats().writebacks, 1u);
  // It must hit in the L2 now (writeback preserved the data's presence).
  auto out = m.access(0, 0, false);
  EXPECT_TRUE(out.l2_hit);
}

TEST(MemorySystemTest, SpeculativeEvictionReported) {
  MemorySystem m(params());
  const std::uint32_t sets = m.l1(0).num_sets();
  for (int i = 0; i < 4; ++i) {
    m.access(0, static_cast<Addr>(i) * sets * kLineBytes, true);
    m.mark_speculative(0, static_cast<LineAddr>(i) * sets);
  }
  auto out = m.access(0, static_cast<Addr>(4) * sets * kLineBytes, true);
  EXPECT_TRUE(out.evicted_speculative);
  EXPECT_EQ(m.stats().spec_evictions, 1u);
}

TEST(MemorySystemTest, MarkSpeculativeRequiresResidency) {
  MemorySystem m(params());
  EXPECT_FALSE(m.mark_speculative(0, 123));
  m.access(0, 123 * kLineBytes, true);
  EXPECT_TRUE(m.mark_speculative(0, 123));
}

TEST(MemorySystemTest, ClearSpeculativeKeepsLines) {
  MemorySystem m(params());
  m.access(0, 0x3000, true);
  m.mark_speculative(0, line_of(0x3000));
  m.clear_speculative(0);
  auto* ln = m.l1(0).find(line_of(0x3000));
  ASSERT_NE(ln, nullptr);
  EXPECT_FALSE(ln->speculative);
}

TEST(MemorySystemTest, InvalidateSpeculativeDropsLines) {
  MemorySystem m(params());
  m.access(0, 0x3000, true);
  m.access(0, 0x4000, true);
  m.mark_speculative(0, line_of(0x3000));
  m.invalidate_speculative(0);
  EXPECT_EQ(m.l1(0).find(line_of(0x3000)), nullptr);
  EXPECT_NE(m.l1(0).find(line_of(0x4000)), nullptr);
}

TEST(MemorySystemTest, InstallLineGivesModifiedWithoutMemoryTraffic) {
  MemorySystem m(params());
  const auto misses_before = m.stats().l2_misses;
  m.install_line(0, 555);
  EXPECT_EQ(m.stats().l2_misses, misses_before);
  auto out = m.access(0, 555 * kLineBytes, true);
  EXPECT_TRUE(out.l1_hit);
}

TEST(MemorySystemTest, InstallLineInvalidatesOtherCopies) {
  MemorySystem m(params());
  m.access(1, 555 * kLineBytes, false);
  m.install_line(0, 555);
  EXPECT_EQ(m.l1(1).find(555), nullptr);
}

TEST(MemorySystemTest, TlbMissChargedOnNewPage) {
  MemorySystem m(params());
  // Same page AND the same L2 bank (16-bank line interleave), so the only
  // latency difference is the first access's TLB walk.
  auto out1 = m.access(0, 0x10000, false);
  auto out2 = m.access(0, 0x10000 + 16 * kLineBytes, false);
  EXPECT_EQ(out1.latency, out2.latency + params().tlb_miss_latency);
}

TEST(MemorySystemTest, PoolRegionBypassesTlb) {
  MemorySystem m(params());
  const auto misses_before = m.tlb(0).misses();
  m.access(0, kRedirectPoolBase + 64, true);
  EXPECT_EQ(m.tlb(0).misses(), misses_before);
}

TEST(MemorySystemTest, FarTilesCostMoreThanNearTiles) {
  MemorySystem m(params());
  // Line homed at bank 0: access from tile 0 vs tile 15.
  const Addr a = 0;  // line 0 -> bank 0
  auto near = m.access(0, a, false);
  MemorySystem m2(params());
  auto far = m2.access(15, a, false);
  EXPECT_GT(far.latency, near.latency);
}

}  // namespace
}  // namespace suvtm::mem
