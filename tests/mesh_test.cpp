#include <gtest/gtest.h>

#include "mem/mesh.hpp"

namespace suvtm::mem {
namespace {

TEST(MeshTest, HopsManhattan) {
  Mesh m(4, 2, 1);
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(0, 3), 3u);    // (0,0) -> (3,0)
  EXPECT_EQ(m.hops(0, 15), 6u);   // (0,0) -> (3,3)
  EXPECT_EQ(m.hops(5, 10), 2u);   // (1,1) -> (2,2)
}

TEST(MeshTest, HopsSymmetric) {
  Mesh m(4, 2, 1);
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      EXPECT_EQ(m.hops(a, b), m.hops(b, a));
    }
  }
}

TEST(MeshTest, LatencyPerHop) {
  Mesh m(4, 2, 1);  // 3 cycles per hop (paper Table III)
  EXPECT_EQ(m.latency(0, 0), 0u);
  EXPECT_EQ(m.latency(0, 15), 18u);
}

TEST(MeshTest, BankInterleavingCoversAllTiles) {
  Mesh m(4, 2, 1);
  bool seen[16] = {};
  for (LineAddr l = 0; l < 64; ++l) seen[m.bank_tile(l)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(MeshTest, AdjacentLinesDifferentBanks) {
  Mesh m(4, 2, 1);
  EXPECT_NE(m.bank_tile(0), m.bank_tile(1));
}

TEST(MeshTest, AverageLatencyReasonable) {
  Mesh m(4, 2, 1);
  // Mean Manhattan distance on 4x4 is 2*(16-1)/(3*4) = 2.5 hops = 7.5 cycles.
  EXPECT_NEAR(static_cast<double>(m.average_latency()), 7.5, 1.0);
}

}  // namespace
}  // namespace suvtm::mem
