// Closed-nesting partial abort (paper Section IV-C): an inner frame can be
// rolled back and retried without discarding the outer transaction's work.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "stamp/framework.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm {
namespace {

using sim::Scheme;

sim::SimConfig config_for(Scheme s) {
  sim::SimConfig cfg;
  cfg.scheme = s;
  return cfg;
}

// Outer transaction writes A, opens an inner frame that writes B, rolls the
// inner frame back, writes C, and commits: A and C must land, B must not.
sim::ThreadTask partial_abort_body(sim::ThreadContext& tc, Addr a, Addr b,
                                   Addr c, bool* rolled) {
  co_await stamp::atomically(tc, 1,
                             [&](sim::ThreadContext& t) -> sim::Task<void> {
    co_await t.store(a, 1);
    co_await t.tx_begin(2);  // inner frame
    co_await t.store(b, 2);
    *rolled = co_await t.tx_rollback_inner();
    co_await t.store(c, 3);
  });
}

class PartialAbort : public ::testing::TestWithParam<Scheme> {};

TEST_P(PartialAbort, InnerFrameRollsBackOuterSurvives) {
  sim::Simulator sim(config_for(GetParam()));
  const Addr a = 0x10000, b = 0x10000 + kLineBytes, c = 0x10000 + 2 * kLineBytes;
  sim.mem().store_word(b, 99);  // pre-existing value the rollback restores
  bool rolled = false;
  sim.spawn(0, partial_abort_body(sim.context(0), a, b, c, &rolled));
  sim.run();
  EXPECT_TRUE(rolled);
  EXPECT_EQ(sim.read_word_resolved(a), 1u);
  EXPECT_EQ(sim.read_word_resolved(b), 99u) << "inner write survived rollback";
  EXPECT_EQ(sim.read_word_resolved(c), 3u);
  EXPECT_EQ(sim.htm().stats().commits, 1u);
  EXPECT_EQ(sim.htm().stats().aborts, 0u);
}

// Partial abort is meaningful for the eager schemes and SUV. (DynTM may
// pick lazy mode, where it legally falls back to a full abort -- the
// atomically() loop then re-executes, which this body tolerates only for
// deterministic outcomes, so the parameterization covers the eager three.)
INSTANTIATE_TEST_SUITE_P(EagerSchemes, PartialAbort,
                         ::testing::Values(Scheme::kLogTmSe, Scheme::kFasTm,
                                           Scheme::kSuv),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kLogTmSe: return "LogTmSe";
                             case Scheme::kFasTm: return "FasTm";
                             case Scheme::kSuv: return "Suv";
                             default: return "other";
                           }
                         });

sim::ThreadTask retry_inner_body(sim::ThreadContext& tc, Addr acc, Addr cond,
                                 int* inner_attempts) {
  co_await stamp::atomically(tc, 3,
                             [&](sim::ThreadContext& t) -> sim::Task<void> {
    const std::uint64_t base = co_await t.load(acc);
    co_await t.store(acc, base + 1);
    // Retry the inner operation until the third try; each failed try is
    // partially aborted -- its write to cond vanishes -- while the outer
    // transaction (the acc increment) keeps running.
    for (;;) {
      co_await t.tx_begin(4);
      ++*inner_attempts;
      const std::uint64_t v = co_await t.load(cond);
      co_await t.store(cond, v + 100);
      if (*inner_attempts >= 3) {
        co_await t.tx_commit();  // inner commit merges into the outer
        break;
      }
      co_await t.tx_rollback_inner();  // discard this try's writes
    }
  });
}

TEST(PartialAbortTest, InnerRetryLoopConvergesWithoutOuterRestart) {
  sim::Simulator sim(config_for(Scheme::kSuv));
  const Addr acc = 0x20000, cond = 0x20000 + kLineBytes;
  sim.mem().store_word(cond, 0);
  int inner_attempts = 0;
  sim.spawn(0, retry_inner_body(sim.context(0), acc, cond, &inner_attempts));
  sim.run();
  EXPECT_EQ(inner_attempts, 3);
  // Only the committed third try's write survives: cond went 0 -> 100 once.
  EXPECT_EQ(sim.read_word_resolved(cond), 100u);
  EXPECT_EQ(sim.read_word_resolved(acc), 1u);
  EXPECT_EQ(sim.htm().stats().commits, 1u);
  EXPECT_EQ(sim.htm().stats().aborts, 0u);
}

sim::ThreadTask suv_partial_entries(sim::ThreadContext& tc, Addr outer_line,
                                    Addr inner_line) {
  co_await stamp::atomically(tc, 5,
                             [&](sim::ThreadContext& t) -> sim::Task<void> {
    co_await t.store(outer_line, 10);
    co_await t.tx_begin(6);
    co_await t.store(inner_line, 20);
    co_await t.tx_rollback_inner();
  });
}

TEST(PartialAbortTest, SuvReleasesOnlyTheInnerFramesEntries) {
  sim::Simulator sim(config_for(Scheme::kSuv));
  const Addr outer_line = 0x30000, inner_line = 0x40000;
  sim.spawn(0, suv_partial_entries(sim.context(0), outer_line, inner_line));
  sim.run();
  auto* suvvm = dynamic_cast<vm::SuvVm*>(&sim.htm().vm());
  ASSERT_NE(suvvm, nullptr);
  // The outer entry published; the inner one was discarded at rollback.
  EXPECT_EQ(suvvm->suv_stats().entries_published, 1u);
  EXPECT_EQ(suvvm->suv_stats().entries_discarded, 1u);
  EXPECT_EQ(sim.read_word_resolved(outer_line), 10u);
  EXPECT_EQ(sim.read_word_resolved(inner_line), 0u);
}

}  // namespace
}  // namespace suvtm
