// Tests for the observability layer (src/obs) and the suvtm::api facade:
// metrics snapshot/merge semantics, the trace cap, byte-identical trace
// export across host job counts, a golden abort-edge check on a forced
// two-core conflict, scheme-string round-trips and the shared Cli parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runner/cli.hpp"
#include "runner/experiment.hpp"
#include "runner/parallel.hpp"
#include "sim/simulator.hpp"
#include "stamp/framework.hpp"

using namespace suvtm;

namespace {

// ---- metrics registry ------------------------------------------------------

TEST(MetricsSnapshotTest, SetGetKeepsSorted) {
  obs::MetricsSnapshot s;
  EXPECT_TRUE(s.empty());
  s.set("zeta", 2.0);
  s.set("alpha", 1.0);
  s.set("mid", 3.0);
  s.set("alpha", 4.0);  // replace, not duplicate
  ASSERT_EQ(s.scalars.size(), 3u);
  EXPECT_EQ(s.scalars[0].first, "alpha");
  EXPECT_EQ(s.scalars[2].first, "zeta");
  EXPECT_DOUBLE_EQ(s.get("alpha"), 4.0);
  EXPECT_DOUBLE_EQ(s.get("missing", -1.0), -1.0);
}

TEST(MetricsSnapshotTest, MergeSumsScalarsAndHistogramsDropsSeries) {
  obs::Metrics m;
  m.add(obs::Counter::kStallRetries, 3);
  m.observe(obs::Histogram::kStallCycles, 8);
  m.sample(obs::Series::kRedirectEntries, 10, 5);
  obs::MetricsSnapshot a = obs::snapshot(m);
  ASSERT_FALSE(a.empty());
  EXPECT_DOUBLE_EQ(a.get("obs.stall_retries", -1.0), 3.0);
  ASSERT_EQ(a.series.size(), 1u);

  obs::MetricsSnapshot merged;
  obs::merge(merged, a);
  obs::merge(merged, a);
  EXPECT_DOUBLE_EQ(merged.get("obs.stall_retries"), 6.0);
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].data.count, 2u);
  EXPECT_EQ(merged.histograms[0].data.sum, 16u);
  EXPECT_TRUE(merged.series.empty());  // occupancy curves never sum
}

TEST(MetricsSnapshotTest, SnapshotSkipsZeroCounters) {
  obs::Metrics m;
  const obs::MetricsSnapshot s = obs::snapshot(m);
  EXPECT_TRUE(s.empty());
}

// ---- tracer ----------------------------------------------------------------

TEST(TracerTest, CapCountsDroppedEvents) {
  obs::Tracer tr(4);
  for (int i = 0; i < 7; ++i) {
    obs::TraceEvent e;
    e.ts = static_cast<Cycle>(i);
    tr.emit(e);
  }
  EXPECT_EQ(tr.data().events.size(), 4u);
  EXPECT_EQ(tr.data().dropped, 3u);
  const obs::TraceData taken = obs::Tracer(4).take();
  EXPECT_TRUE(taken.events.empty());
}

TEST(TracerTest, RunRespectsConfiguredCap) {
  if (!obs::kHooksCompiled) GTEST_SKIP() << "obs hooks compiled out";
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  cfg.obs.trace = true;
  cfg.obs.max_trace_events = 16;
  stamp::SuiteParams params;
  params.scale = 0.1;
  obs::TraceData trace;
  runner::run_app(stamp::AppId::kKmeans, cfg, params, &trace);
  EXPECT_LE(trace.events.size(), 16u);
  EXPECT_GT(trace.dropped, 0u);  // a real run emits far more than 16
}

// ---- determinism across host job counts ------------------------------------

TEST(TraceDeterminismTest, SerialAndParallelBytesIdentical) {
  if (!obs::kHooksCompiled) GTEST_SKIP() << "obs hooks compiled out";
  stamp::SuiteParams params;
  params.scale = 0.1;
  std::vector<runner::RunPoint> points;
  for (sim::Scheme s : {sim::Scheme::kLogTmSe, sim::Scheme::kSuv}) {
    sim::SimConfig cfg;
    cfg.scheme = s;
    cfg.obs.trace = true;
    cfg.obs.metrics = true;
    for (stamp::AppId app : {stamp::AppId::kKmeans, stamp::AppId::kIntruder}) {
      points.push_back(runner::RunPoint{app, cfg, params});
    }
  }
  runner::ParallelExecutor serial(1);
  runner::ParallelExecutor pool(4);
  const auto a = runner::run_matrix_traced(points, serial);
  const auto b = runner::run_matrix_traced(points, pool);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i], b.results[i]) << "run " << i;
    EXPECT_EQ(a.traces[i], b.traces[i]) << "run " << i;
  }
  std::vector<obs::NamedTrace> na, nb;
  for (std::size_t i = 0; i < points.size(); ++i) {
    na.push_back({a.results[i].app, &a.traces[i]});
    nb.push_back({b.results[i].app, &b.traces[i]});
  }
  EXPECT_EQ(obs::chrome_trace_json(na), obs::chrome_trace_json(nb));
}

// ---- golden abort-edge scenario --------------------------------------------

sim::ThreadTask counter_hammer(sim::ThreadContext& tc, sim::Barrier& bar,
                               Addr counter, int iters) {
  co_await tc.barrier(bar);
  for (int i = 0; i < iters; ++i) {
    co_await stamp::atomically(tc, 1,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const std::uint64_t v = co_await t.load(counter);
      co_await t.compute(60);  // widen the conflict window
      co_await t.store(counter, v + 1);
    });
  }
}

TEST(TraceGoldenTest, ContendedCounterEmitsSpansAndAbortEdges) {
  if (!obs::kHooksCompiled) GTEST_SKIP() << "obs hooks compiled out";
  constexpr Addr kCounter = 0x9000;
  constexpr int kIters = 40;
  api::RunHandle h = api::SimBuilder()
                         .scheme(sim::Scheme::kSuv)
                         .cores(4)
                         .trace(true)
                         .metrics(true)
                         .build();
  sim::Barrier& bar = h.make_barrier(h.num_cores());
  for (CoreId c = 0; c < h.num_cores(); ++c) {
    h.spawn(c, counter_hammer(h.context(c), bar, kCounter, kIters));
  }
  h.run();
  EXPECT_EQ(h.word(kCounter),
            static_cast<std::uint64_t>(h.num_cores()) * kIters);

  const htm::HtmStats& stats = h.htm_stats();
  ASSERT_GT(stats.aborts, 0u) << "scenario must force conflicts";

  const obs::TraceData& t = h.trace();
  ASSERT_FALSE(t.events.empty());
  std::uint64_t spans = 0, edges = 0, abort_spans = 0;
  for (const obs::TraceEvent& e : t.events) {
    EXPECT_LE(e.ts + e.dur, h.makespan());
    switch (e.kind) {
      case obs::EventKind::kTxnSpan:
        ++spans;
        if (e.cause != 0) ++abort_spans;
        break;
      case obs::EventKind::kAbortEdge:
        ++edges;
        EXPECT_EQ(e.dur, 0u);             // instant
        EXPECT_NE(e.core, e.a);           // aborter never its own victim
        EXPECT_NE(e.cause, 0u);           // must carry an AbortCause
        break;
      default:
        break;
    }
  }
  // Every txn attempt closes into exactly one span; aborted attempts carry
  // their cause.
  EXPECT_EQ(spans, stats.commits + stats.aborts);
  EXPECT_EQ(abort_spans, stats.aborts);
  EXPECT_GT(edges, 0u);

  const obs::MetricsSnapshot m = h.metrics();
  EXPECT_DOUBLE_EQ(m.get("obs.conflict_edges", -1.0),
                   static_cast<double>(edges));
}

// ---- chrome-trace export ----------------------------------------------------

TEST(ChromeTraceTest, ExportShapeAndWriteRoundTrip) {
  obs::TraceData t;
  obs::TraceEvent e;
  e.ts = 5;
  e.dur = 10;
  e.kind = obs::EventKind::kTxnSpan;
  e.core = 2;
  t.events.push_back(e);
  const std::string json = obs::chrome_trace_json({{"unit/SUV-TM", &t}});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("unit/SUV-TM"), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::write_chrome_trace(path, {{"unit", &t}}));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

// ---- api facade -------------------------------------------------------------

TEST(ApiFacadeTest, SchemeStringRoundTrip) {
  for (const auto& row : sim::scheme_table()) {
    EXPECT_EQ(api::SimBuilder().scheme(row.cli_name).config().scheme,
              row.scheme);
    EXPECT_EQ(api::SimBuilder().scheme(row.name).config().scheme, row.scheme);
    sim::Scheme parsed{};
    EXPECT_TRUE(sim::scheme_from_string(row.cli_name, &parsed));
    EXPECT_EQ(parsed, row.scheme);
  }
  EXPECT_THROW(api::SimBuilder().scheme("not-a-scheme"),
               std::invalid_argument);
}

TEST(ApiFacadeTest, UntracedHandleExportsNothing) {
  api::RunHandle h = api::SimBuilder().scheme(sim::Scheme::kLogTmSe).build();
  h.poke_word(0x100, 42);
  EXPECT_EQ(h.word(0x100), 42u);
  EXPECT_TRUE(h.trace().events.empty());
  EXPECT_FALSE(h.write_trace(::testing::TempDir() + "never_written.json"));
}

TEST(ApiFacadeTest, ResultMatchesHarness) {
  if (!obs::kHooksCompiled) GTEST_SKIP() << "obs hooks compiled out";
  stamp::SuiteParams params;
  params.scale = 0.1;
  const api::SimBuilder b =
      api::SimBuilder().scheme(sim::Scheme::kSuv).metrics(true);
  const runner::RunResult via_api = b.run(stamp::AppId::kKmeans, params);
  const runner::RunResult via_harness =
      runner::run_app(stamp::AppId::kKmeans, b.config(), params);
  EXPECT_EQ(via_api, via_harness);
  EXPECT_FALSE(via_api.metrics.empty());
}

// ---- shared Cli -------------------------------------------------------------

TEST(CliTest, ParsesAndStripsSharedFlags) {
  std::vector<std::string> raw = {"prog",    "0.25",          "--smoke",
                                  "--check", "--trace=t.json", "extra.csv",
                                  "--metrics", "--custom-flag"};
  std::vector<char*> argv;
  for (auto& s : raw) argv.push_back(s.data());
  argv.push_back(nullptr);
  int argc = static_cast<int>(raw.size());
  const runner::Cli cli = runner::Cli::parse(argc, argv.data());
  EXPECT_TRUE(cli.smoke);
  EXPECT_TRUE(cli.check);
  EXPECT_TRUE(cli.metrics);
  EXPECT_TRUE(cli.tracing());
  EXPECT_EQ(cli.trace_path, "t.json");
  EXPECT_TRUE(cli.has_scale);
  EXPECT_DOUBLE_EQ(cli.scale_or(9.0), 0.25);
  ASSERT_EQ(cli.args.size(), 1u);
  EXPECT_EQ(cli.args[0], "extra.csv");
  EXPECT_EQ(cli.arg_or(5, "dflt"), "dflt");
  // Only the unknown flag survives for harness-specific parsing.
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--custom-flag");
}

TEST(CliTest, ApplyOnlySetsFlagsNeverClears) {
  runner::Cli off;  // nothing requested
  sim::SimConfig cfg;
  cfg.obs.trace = true;  // e.g. set by SUVTM_TRACE
  cfg.check.enabled = true;
  off.apply(cfg);
  EXPECT_TRUE(cfg.obs.trace);
  EXPECT_TRUE(cfg.check.enabled);

  runner::Cli on;
  on.check = true;
  on.metrics = true;
  on.trace_path = "x.json";
  sim::SimConfig cfg2;
  on.apply(cfg2);
  EXPECT_TRUE(cfg2.check.enabled);
  EXPECT_TRUE(cfg2.obs.metrics);
  EXPECT_TRUE(cfg2.obs.trace);
}

}  // namespace
