// ParallelExecutor mechanics plus the determinism guarantee the runner layer
// is built on: a (scheme, app, config, seed) point produces a bit-identical
// RunResult whether it runs serially or through the executor at any jobs
// count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "runner/experiment.hpp"
#include "runner/parallel.hpp"

namespace suvtm::runner {
namespace {

stamp::SuiteParams tiny() {
  stamp::SuiteParams p;
  p.scale = 0.15;
  return p;
}

TEST(ParallelExecutorTest, RunsEveryIndexExactlyOnce) {
  ParallelExecutor exec(4);
  EXPECT_EQ(exec.jobs(), 4u);
  std::vector<std::atomic<int>> hits(64);
  exec.run_indexed(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutorTest, JobsOneRunsInlineInOrder) {
  ParallelExecutor exec(1);
  std::vector<std::size_t> order;
  exec.run_indexed(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelExecutorTest, RunOrderedPreservesSubmissionOrder) {
  ParallelExecutor exec(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 32; ++i) tasks.push_back([i] { return i * i; });
  const auto out = exec.run_ordered(std::move(tasks));
  ASSERT_EQ(out.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelExecutorTest, ReusableAcrossBatches) {
  ParallelExecutor exec(2);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> sum{0};
    exec.run_indexed(10, [&](std::size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ParallelExecutorTest, PropagatesTaskException) {
  ParallelExecutor exec(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      exec.run_indexed(8,
                       [&](std::size_t i) {
                         if (i == 3) throw std::runtime_error("boom");
                         ++completed;
                       }),
      std::runtime_error);
  // Sibling experiments still ran to completion.
  EXPECT_EQ(completed.load(), 7);
}

TEST(ParallelExecutorTest, ParseJobsStripsFlag) {
  const char* raw[] = {"bench", "0.5", "--jobs", "3", "out.csv"};
  char* argv[5];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 5;
  EXPECT_EQ(ParallelExecutor::parse_jobs(argc, argv), 3u);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "0.5");
  EXPECT_STREQ(argv[2], "out.csv");
}

TEST(ParallelExecutorTest, ParseJobsEqualsForm) {
  const char* raw[] = {"bench", "--jobs=7"};
  char* argv[2];
  for (int i = 0; i < 2; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 2;
  EXPECT_EQ(ParallelExecutor::parse_jobs(argc, argv), 7u);
  EXPECT_EQ(argc, 1);
}

// The tentpole guarantee (ISSUE 1): serial twice, executor jobs=1, and
// executor jobs=4 all produce identical makespan, breakdown, and stats for
// the same (scheme, app, config, seed). RunResult::operator== is
// field-for-field over every stats struct.
TEST(ParallelRunnerTest, SerialAndParallelRunsBitIdentical) {
  for (sim::Scheme scheme : {sim::Scheme::kLogTmSe, sim::Scheme::kSuv}) {
    sim::SimConfig cfg;
    cfg.scheme = scheme;
    cfg.mem.num_cores = 4;

    std::vector<RunPoint> points;
    for (stamp::AppId app :
         {stamp::AppId::kKmeans, stamp::AppId::kSsca2, stamp::AppId::kVacation}) {
      points.push_back(RunPoint{app, cfg, tiny()});
    }

    // Serial reference, run twice to establish run-to-run determinism.
    std::vector<RunResult> serial_a, serial_b;
    for (const auto& pt : points) {
      serial_a.push_back(run_app(pt.app, pt.cfg, pt.params));
      serial_b.push_back(run_app(pt.app, pt.cfg, pt.params));
    }

    ParallelExecutor one(1);
    ParallelExecutor four(4);
    const auto par1 = run_matrix(points, one);
    const auto par4 = run_matrix(points, four);

    ASSERT_EQ(par1.size(), points.size());
    ASSERT_EQ(par4.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_GT(serial_a[i].makespan, 0u);
      EXPECT_GT(serial_a[i].sim_events, 0u);
      EXPECT_EQ(serial_a[i], serial_b[i]);
      EXPECT_EQ(serial_a[i], par1[i]);
      EXPECT_EQ(serial_a[i], par4[i]);
    }
  }
}

TEST(ParallelRunnerTest, RunSuiteMatchesSerialSuite) {
  sim::SimConfig cfg;
  ParallelExecutor one(1);
  ParallelExecutor four(4);
  const auto a = run_suite(sim::Scheme::kFasTm, cfg, tiny(), one);
  const auto b = run_suite(sim::Scheme::kFasTm, cfg, tiny(), four);
  ASSERT_EQ(a.size(), b.size());
  std::set<std::string> apps;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    apps.insert(a[i].app);
  }
  EXPECT_EQ(apps.size(), a.size());  // one result per app, in order
}

}  // namespace
}  // namespace suvtm::runner
