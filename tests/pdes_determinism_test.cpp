// Bit-identity gate for the sharded conservative-PDES runtime: the host
// thread count driving a sharded machine is a pure execution knob, so the
// full RunResult (every stats block, field for field), the exported trace
// JSON bytes, and the flattened metrics snapshot must be identical at any
// sim_threads value. Also pins the shard purity rules (cross-shard
// transactions/stores throw) and the geometry guards.
#include <gtest/gtest.h>

#include <stdexcept>

#include "check/check.hpp"
#include "obs/chrome_trace.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "stamp/sharded_kv.hpp"

namespace suvtm {
namespace {

sim::SimConfig sharded_cfg(sim::Scheme scheme, std::uint64_t seed,
                           std::uint32_t host_threads) {
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.mem.num_cores = 16;
  cfg.pdes.shards = 4;
  cfg.pdes.host_threads = host_threads;
  cfg.obs.trace = true;
  cfg.obs.metrics = true;
  return cfg;
}

stamp::ShardedKvParams small_params(std::uint64_t seed) {
  stamp::ShardedKvParams p;
  p.ops_per_thread = 48;
  p.txn_keys = 16;
  p.keys_per_txn = 3;
  p.remote_read_every = 4;
  p.seed = seed;
  return p;
}

struct Harvest {
  runner::RunResult result;
  obs::TraceData trace;
  std::string json;
};

Harvest run_sharded(const sim::SimConfig& cfg, std::uint64_t wl_seed) {
  sim::Simulator sim(cfg);
  stamp::ShardedKv wl(small_params(wl_seed));
  wl.build(sim);
  sim.run();
  wl.verify(sim);
  Harvest h;
  h.result = runner::harvest_result(sim, "sharded_kv", &h.trace);
  h.json = obs::chrome_trace_json({{"sharded_kv", &h.trace}});
  return h;
}

TEST(PdesDeterminism, BitIdenticalAcrossHostThreads) {
  const sim::Scheme schemes[] = {sim::Scheme::kLogTmSe, sim::Scheme::kFasTm,
                                 sim::Scheme::kSuv};
  const std::uint64_t seeds[] = {1, 7};
  for (sim::Scheme scheme : schemes) {
    for (std::uint64_t seed : seeds) {
      const Harvest ref = run_sharded(sharded_cfg(scheme, seed, 1), seed);
      EXPECT_FALSE(ref.trace.events.empty());
      EXPECT_GT(ref.result.htm.commits, 0u);
      for (std::uint32_t threads : {2u, 3u, 4u}) {
        const Harvest h =
            run_sharded(sharded_cfg(scheme, seed, threads), seed);
        EXPECT_EQ(ref.result, h.result)
            << "scheme " << static_cast<int>(scheme) << " seed " << seed
            << " host_threads " << threads;
        EXPECT_EQ(ref.trace, h.trace);
        EXPECT_EQ(ref.json, h.json);
      }
    }
  }
}

TEST(PdesDeterminism, HostThreadsInertOnMonolithicMachine) {
  // shards == 1 is the classic machine; host_threads must change nothing,
  // including against a config that never mentions pdes at all.
  sim::SimConfig cfg = sharded_cfg(sim::Scheme::kSuv, 3, 1);
  cfg.pdes.shards = 1;
  const Harvest ref = run_sharded(cfg, 3);
  cfg.pdes.host_threads = 4;
  const Harvest h = run_sharded(cfg, 3);
  EXPECT_EQ(ref.result, h.result);
  EXPECT_EQ(ref.json, h.json);

  sim::SimConfig plain;
  plain.scheme = sim::Scheme::kSuv;
  plain.seed = 3;
  plain.mem.num_cores = 16;
  plain.obs.trace = true;
  plain.obs.metrics = true;
  const Harvest dflt = run_sharded(plain, 3);
  EXPECT_EQ(ref.result, dflt.result);
  EXPECT_EQ(ref.json, dflt.json);
}

sim::ThreadTask foreign_tx_load(sim::ThreadContext& tc, Addr foreign) {
  co_await tc.tx_begin(1);
  co_await tc.load(foreign);
  co_await tc.tx_commit();
}

sim::ThreadTask foreign_store(sim::ThreadContext& tc, Addr foreign) {
  co_await tc.store(foreign, 1);
}

sim::ThreadTask foreign_plain_load(sim::ThreadContext& tc, Addr foreign) {
  co_await tc.load(foreign);
}

TEST(PdesPurity, CrossShardTransactionalLoadThrows) {
  sim::Simulator sim(sharded_cfg(sim::Scheme::kSuv, 1, 2));
  sim.spawn(0, foreign_tx_load(sim.context(0), sim::ShardMap::arena_base(1)));
  EXPECT_THROW(sim.run(), check::CheckFailure);
}

TEST(PdesPurity, CrossShardStoreThrows) {
  sim::Simulator sim(sharded_cfg(sim::Scheme::kSuv, 1, 2));
  sim.spawn(0, foreign_store(sim.context(0), sim::ShardMap::arena_base(2)));
  EXPECT_THROW(sim.run(), check::CheckFailure);
}

TEST(PdesPurity, CrossShardPlainLoadIsLegal) {
  sim::Simulator sim(sharded_cfg(sim::Scheme::kSuv, 1, 2));
  sim.poke_word(sim::ShardMap::arena_base(1) + 0x40, 99);
  sim.spawn(0, foreign_plain_load(sim.context(0),
                                  sim::ShardMap::arena_base(1) + 0x40));
  EXPECT_NO_THROW(sim.run());
}

TEST(PdesGeometry, GlobalBarrierAmbiguousOnShardedMachine) {
  sim::Simulator sim(sharded_cfg(sim::Scheme::kSuv, 1, 1));
  EXPECT_THROW(sim.make_barrier(16), std::logic_error);
  EXPECT_NO_THROW(sim.make_barrier(4, /*home=*/0));
}

TEST(PdesGeometry, ShardsMustDivideCores) {
  sim::SimConfig cfg = sharded_cfg(sim::Scheme::kSuv, 1, 1);
  cfg.mem.num_cores = 6;
  EXPECT_THROW(sim::Simulator{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace suvtm
