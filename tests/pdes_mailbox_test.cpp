// Unit and property coverage for the PDES building blocks: ShardMap
// geometry, the canonical mailbox drain order (receiver-major, then sender,
// then FIFO -- independent of how sender threads interleaved their posts),
// and a randomized end-to-end check that host thread count never leaks into
// results.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "runner/experiment.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "stamp/sharded_kv.hpp"
#include "suv/pool.hpp"

namespace suvtm {
namespace {

TEST(ShardMap, CoreAndArenaOwnership) {
  sim::ShardMap map{.shards = 4, .cores_per_shard = 4};
  EXPECT_EQ(map.shard_of_core(0), 0u);
  EXPECT_EQ(map.shard_of_core(3), 0u);
  EXPECT_EQ(map.shard_of_core(4), 1u);
  EXPECT_EQ(map.shard_of_core(15), 3u);

  EXPECT_EQ(map.shard_of_addr(0x100), 0u);
  EXPECT_EQ(map.shard_of_addr(sim::ShardMap::arena_base(2) + 0x40), 2u);
  EXPECT_EQ(map.shard_of_addr(sim::ShardMap::arena_base(3)), 3u);
  // Addresses above the declared arenas (but below the pool region) fall
  // back to shard 0.
  EXPECT_EQ(map.shard_of_addr(sim::ShardMap::arena_base(7)), 0u);
}

TEST(ShardMap, PoolLinesBelongToOwnersShard) {
  sim::ShardMap map{.shards = 4, .cores_per_shard = 4};
  // Core 5's preserved-pool region belongs to shard 1 (5 / 4).
  const Addr a = suv::kPoolRegionBase + 5 * suv::kPoolRegionPerCore + 0x80;
  EXPECT_EQ(suv::PreservedPool::owner_of(line_of(a)), 5u);
  EXPECT_EQ(map.shard_of_addr(a), 1u);
}

/// Canonical drain order, as merge_boundary walks it: receivers ascending,
/// senders ascending within a receiver, FIFO within a box.
std::vector<sim::RemoteMsg> drain(sim::Mailboxes& boxes) {
  std::vector<sim::RemoteMsg> out;
  for (std::uint32_t to = 0; to < boxes.shards(); ++to) {
    for (std::uint32_t from = 0; from < boxes.shards(); ++from) {
      auto& b = boxes.box(from, to);
      out.insert(out.end(), b.begin(), b.end());
      b.clear();
    }
  }
  return out;
}

TEST(Mailboxes, DrainOrderIndependentOfPostInterleaving) {
  constexpr std::uint32_t kShards = 4;
  Rng rng(0x1234);
  for (int round = 0; round < 50; ++round) {
    // One deterministic per-(from, to) message sequence...
    std::vector<std::vector<sim::RemoteMsg>> pair_msgs(kShards * kShards);
    for (std::uint32_t from = 0; from < kShards; ++from) {
      for (std::uint32_t to = 0; to < kShards; ++to) {
        auto& seq = pair_msgs[from * kShards + to];
        const std::uint64_t n = rng.below(5);
        for (std::uint64_t i = 0; i < n; ++i) {
          seq.push_back(sim::RemoteMsg{
              .core = static_cast<CoreId>(from),
              .addr = sim::ShardMap::arena_base(to) + i * kWordBytes,
              .post_cycle = rng.below(1000)});
        }
      }
    }

    // ...posted twice under different global interleavings. Only the
    // per-pair order is fixed (each box has a single writer); the global
    // schedule across senders is whatever the host threads happened to do.
    auto post_all = [&](sim::Mailboxes& boxes, Rng& order) {
      std::vector<std::size_t> cursor(pair_msgs.size(), 0);
      std::vector<std::size_t> live;
      for (std::size_t p = 0; p < pair_msgs.size(); ++p) {
        if (!pair_msgs[p].empty()) live.push_back(p);
      }
      while (!live.empty()) {
        const std::size_t i = order.below(live.size());
        const std::size_t p = live[i];
        boxes.post(static_cast<std::uint32_t>(p / kShards),
                   static_cast<std::uint32_t>(p % kShards),
                   pair_msgs[p][cursor[p]]);
        if (++cursor[p] == pair_msgs[p].size()) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
    };

    sim::Mailboxes a(kShards), b(kShards);
    Rng order_a(round * 2 + 1), order_b(round * 977 + 5);
    post_all(a, order_a);
    post_all(b, order_b);

    const auto da = drain(a);
    const auto db = drain(b);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].core, db[i].core);
      EXPECT_EQ(da[i].addr, db[i].addr);
      EXPECT_EQ(da[i].post_cycle, db[i].post_cycle);
    }
    EXPECT_TRUE(a.all_empty());
    EXPECT_TRUE(b.all_empty());
  }
}

TEST(PdesProperty, RandomizedRunsIdenticalAcrossHostThreads) {
  Rng rng(0xfeed);
  for (int round = 0; round < 8; ++round) {
    sim::SimConfig cfg;
    cfg.scheme = round % 2 == 0 ? sim::Scheme::kSuv : sim::Scheme::kFasTm;
    cfg.seed = rng.next();
    cfg.mem.num_cores = 8;
    cfg.pdes.shards = 2;
    cfg.obs.metrics = true;

    stamp::ShardedKvParams p;
    p.ops_per_thread = 16 + rng.below(32);
    p.txn_keys = 4 + static_cast<std::uint32_t>(rng.below(12));
    p.keys_per_txn = 2 + static_cast<std::uint32_t>(rng.below(3));
    p.remote_read_every = 2 + static_cast<std::uint32_t>(rng.below(6));
    p.seed = rng.next();

    runner::RunResult results[2];
    const std::uint32_t threads[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
      cfg.pdes.host_threads = threads[i];
      sim::Simulator sim(cfg);
      stamp::ShardedKv wl(p);
      wl.build(sim);
      sim.run();
      wl.verify(sim);
      results[i] = runner::harvest_result(sim, "sharded_kv");
    }
    EXPECT_EQ(results[0], results[1]) << "round " << round;
  }
}

}  // namespace
}  // namespace suvtm
