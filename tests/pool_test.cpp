#include <gtest/gtest.h>

#include <unordered_set>

#include "suv/pool.hpp"

namespace suvtm::suv {
namespace {

TEST(PoolTest, LinesAreInPoolRegion) {
  PreservedPool p(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(PreservedPool::in_pool_region(p.allocate()));
  }
}

TEST(PoolTest, LinesAreUnique) {
  PreservedPool p(3);
  std::unordered_set<LineAddr> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(p.allocate()).second);
  }
}

TEST(PoolTest, CoresGetDisjointRegions) {
  PreservedPool a(0), b(1);
  std::unordered_set<LineAddr> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(a.allocate()).second);
    EXPECT_TRUE(seen.insert(b.allocate()).second);
  }
}

TEST(PoolTest, ReleaseRecycles) {
  PreservedPool p(0);
  const LineAddr l = p.allocate();
  EXPECT_EQ(p.lines_in_use(), 1u);
  p.release(l);
  EXPECT_EQ(p.lines_in_use(), 0u);
  EXPECT_EQ(p.allocate(), l);  // LIFO free list
  EXPECT_EQ(p.stats().lines_recycled, 1u);
}

TEST(PoolTest, StatsTrackHandouts) {
  PreservedPool p(0);
  for (int i = 0; i < 5; ++i) p.allocate();
  EXPECT_EQ(p.stats().lines_handed_out, 5u);
  EXPECT_EQ(p.lines_in_use(), 5u);
}

TEST(PoolTest, ReclaimableOriginalsCounted) {
  PreservedPool p(0);
  p.note_reclaimable_original();
  p.note_reclaimable_original();
  EXPECT_EQ(p.stats().reclaimable_originals, 2u);
}

TEST(PoolTest, WorkloadAddressesAreOutsideThePool) {
  EXPECT_FALSE(PreservedPool::in_pool_region(line_of(0x10000)));
  EXPECT_FALSE(PreservedPool::in_pool_region(line_of(0xffffffff)));
}

TEST(PoolTest, ScatterSpreadsCacheSets) {
  // Regression test for the set-collision pathology: consecutive
  // allocations must not pile into a handful of L1/L2 cache sets, and two
  // cores' k-th allocations must not always share a set.
  PreservedPool a(0), b(1);
  std::unordered_set<std::uint64_t> sets_a, cross_collisions;
  int cross = 0;
  for (int i = 0; i < 256; ++i) {
    const LineAddr la = a.allocate();
    const LineAddr lb = b.allocate();
    sets_a.insert(la & 16383);  // L2 set index (16384 sets)
    if ((la & 16383) == (lb & 16383)) ++cross;
  }
  EXPECT_GT(sets_a.size(), 200u);  // near-unique set indices
  EXPECT_LT(cross, 8);             // k-th lines rarely collide across cores
}

}  // namespace
}  // namespace suvtm::suv
