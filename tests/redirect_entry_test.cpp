#include <gtest/gtest.h>

#include "suv/redirect_entry.hpp"

namespace suvtm::suv {
namespace {

TEST(RedirectEntryTest, BitEncoding) {
  EXPECT_FALSE(global_bit(EntryState::kInvalid));
  EXPECT_FALSE(valid_bit(EntryState::kInvalid));
  EXPECT_FALSE(global_bit(EntryState::kTxnRedirect));
  EXPECT_TRUE(valid_bit(EntryState::kTxnRedirect));
  EXPECT_TRUE(global_bit(EntryState::kTxnUnredirect));
  EXPECT_FALSE(valid_bit(EntryState::kTxnUnredirect));
  EXPECT_TRUE(global_bit(EntryState::kGlobalRedirect));
  EXPECT_TRUE(valid_bit(EntryState::kGlobalRedirect));
}

TEST(RedirectEntryTest, StateFromBitsRoundtrip) {
  for (EntryState s : {EntryState::kInvalid, EntryState::kTxnRedirect,
                       EntryState::kTxnUnredirect, EntryState::kGlobalRedirect}) {
    EXPECT_EQ(state_from_bits(global_bit(s), valid_bit(s)), s);
  }
}

// Paper Section IV-B commit rule: g 0->1 if v==1; g 1->0 if v==0.
TEST(RedirectEntryTest, CommitFlipTruthTable) {
  EXPECT_EQ(commit_flip(EntryState::kTxnRedirect), EntryState::kGlobalRedirect);
  EXPECT_EQ(commit_flip(EntryState::kTxnUnredirect), EntryState::kInvalid);
  // Stable states are unaffected by the flash (their bits already agree).
  EXPECT_EQ(commit_flip(EntryState::kGlobalRedirect),
            EntryState::kGlobalRedirect);
  EXPECT_EQ(commit_flip(EntryState::kInvalid), EntryState::kInvalid);
}

// Paper Section IV-B abort rule: v 0->1 if g==1; v 1->0 if g==0.
TEST(RedirectEntryTest, AbortFlipTruthTable) {
  EXPECT_EQ(abort_flip(EntryState::kTxnRedirect), EntryState::kInvalid);
  EXPECT_EQ(abort_flip(EntryState::kTxnUnredirect),
            EntryState::kGlobalRedirect);
  EXPECT_EQ(abort_flip(EntryState::kGlobalRedirect),
            EntryState::kGlobalRedirect);
  EXPECT_EQ(abort_flip(EntryState::kInvalid), EntryState::kInvalid);
}

TEST(RedirectEntryTest, FlipsAreIdempotentOnStableStates) {
  for (EntryState s : {EntryState::kInvalid, EntryState::kGlobalRedirect}) {
    EXPECT_EQ(commit_flip(commit_flip(s)), commit_flip(s));
    EXPECT_EQ(abort_flip(abort_flip(s)), abort_flip(s));
  }
}

TEST(RedirectEntryTest, TransientDetection) {
  RedirectEntry e{1, 2, EntryState::kTxnRedirect, 0};
  EXPECT_TRUE(e.transient());
  e.state = EntryState::kTxnUnredirect;
  EXPECT_TRUE(e.transient());
  e.state = EntryState::kGlobalRedirect;
  EXPECT_FALSE(e.transient());
  e.state = EntryState::kInvalid;
  EXPECT_FALSE(e.transient());
}

// Table II semantics: who sees the target vs the original.
TEST(RedirectEntryTest, ResolveGlobalRedirect) {
  RedirectEntry e{100, 200, EntryState::kGlobalRedirect, kNoCore};
  EXPECT_EQ(e.resolve_for(0), 200u);
  EXPECT_EQ(e.resolve_for(7), 200u);
  EXPECT_EQ(e.resolve_for(kNoCore), 200u);
}

TEST(RedirectEntryTest, ResolveTxnRedirect) {
  RedirectEntry e{100, 200, EntryState::kTxnRedirect, 3};
  EXPECT_EQ(e.resolve_for(3), 200u);  // owner sees the new location
  EXPECT_EQ(e.resolve_for(4), 100u);  // everyone else the old one
}

TEST(RedirectEntryTest, ResolveTxnUnredirect) {
  RedirectEntry e{100, 200, EntryState::kTxnUnredirect, 3};
  EXPECT_EQ(e.resolve_for(3), 100u);  // owner redirected back to original
  EXPECT_EQ(e.resolve_for(4), 200u);  // others still see the global target
}

TEST(RedirectEntryTest, ResolveInvalid) {
  RedirectEntry e{100, 200, EntryState::kInvalid, kNoCore};
  EXPECT_EQ(e.resolve_for(0), 100u);
}

TEST(PackedEntryTest, TotalsTwentyTwoBits) {
  EXPECT_EQ(PackedEntry::kTotalBits, 22u);
}

class PackedEntryRoundtrip
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int,
                                                 std::uint32_t, std::uint32_t>> {};

TEST_P(PackedEntryRoundtrip, PackUnpack) {
  const auto [l1, st, tlb, off] = GetParam();
  const auto state = static_cast<EntryState>(st);
  const PackedEntry p = PackedEntry::pack(l1, state, tlb, off);
  EXPECT_EQ(p.l1_index(), l1);
  EXPECT_EQ(p.state(), state);
  EXPECT_EQ(p.tlb_index(), tlb);
  EXPECT_EQ(p.page_offset(), off);
  EXPECT_LT(p.bits, 1u << 22);
}

INSTANTIATE_TEST_SUITE_P(
    FieldSweep, PackedEntryRoundtrip,
    ::testing::Combine(::testing::Values(0u, 1u, 63u, 127u),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0u, 31u, 63u),
                       ::testing::Values(0u, 64u, 127u)));

TEST(RedirectEntryTest, StateNamesDistinct) {
  EXPECT_STRNE(entry_state_name(EntryState::kInvalid),
               entry_state_name(EntryState::kGlobalRedirect));
  EXPECT_STRNE(entry_state_name(EntryState::kTxnRedirect),
               entry_state_name(EntryState::kTxnUnredirect));
}

}  // namespace
}  // namespace suvtm::suv
