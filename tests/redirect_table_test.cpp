#include <gtest/gtest.h>

#include "suv/redirect_table.hpp"

namespace suvtm::suv {
namespace {

sim::SuvParams small_params() {
  sim::SuvParams p;
  p.l1_table_entries = 4;  // tiny: overflow paths are easy to reach
  p.l2_table_entries = 16;
  p.l2_table_assoc = 2;
  return p;
}

RedirectEntry txn_entry(LineAddr orig, LineAddr target, CoreId owner) {
  return {orig, target, EntryState::kTxnRedirect, owner};
}

TEST(RedirectTableTest, EmptyLookupIsFilteredFree) {
  RedirectTable t(sim::SuvParams{}, 4);
  auto res = t.lookup(0, 123);
  EXPECT_EQ(res.entry, nullptr);
  EXPECT_EQ(res.probe, 0u);
  EXPECT_EQ(res.squash, 0u);
  EXPECT_EQ(t.stats().summary_filtered, 1u);
}

TEST(RedirectTableTest, OwnerLookupHitsPinnedFirstLevel) {
  RedirectTable t(sim::SuvParams{}, 4);
  t.insert_transient(txn_entry(10, 1000, 0));
  auto res = t.lookup(0, 10);
  ASSERT_NE(res.entry, nullptr);
  EXPECT_EQ(res.probe, 0u);  // zero-latency fully-associative table
  EXPECT_EQ(res.entry->target, 1000u);
  EXPECT_EQ(t.stats().l1_hits, 1u);
  EXPECT_EQ(t.pinned_count(0), 1u);
}

TEST(RedirectTableTest, TransientEntryInvisibleToOtherCoresSummaries) {
  RedirectTable t(sim::SuvParams{}, 4);
  t.insert_transient(txn_entry(10, 1000, 0));
  // Other cores' summaries haven't been told: filtered without cost.
  auto res = t.lookup(1, 10);
  EXPECT_EQ(res.entry, nullptr);
}

TEST(RedirectTableTest, CommitPublishesToAllCores) {
  RedirectTable t(sim::SuvParams{}, 4);
  t.insert_transient(txn_entry(10, 1000, 0));
  auto out = t.commit_entry(10);
  EXPECT_FALSE(out.deleted);
  EXPECT_EQ(out.target, 1000u);
  EXPECT_EQ(t.find(10)->state, EntryState::kGlobalRedirect);
  EXPECT_EQ(t.pinned_count(0), 0u);  // unpinned after commit
  // Every core's lookup now resolves (via L1/L2 tables).
  for (CoreId c = 0; c < 4; ++c) {
    auto res = t.lookup(c, 10);
    ASSERT_NE(res.entry, nullptr) << "core " << c;
    EXPECT_EQ(res.entry->resolve_for(c), 1000u);
  }
}

TEST(RedirectTableTest, PublishedEntryReachableThroughSecondLevel) {
  RedirectTable t(small_params(), 4);
  t.insert_transient(txn_entry(10, 1000, 0));
  t.commit_entry(10);
  // A core that never saw the entry pays the second-level probe once,
  // then hits its first level.
  auto first = t.lookup(2, 10);
  ASSERT_NE(first.entry, nullptr);
  EXPECT_EQ(first.probe, small_params().l2_table_latency);
  auto second = t.lookup(2, 10);
  EXPECT_EQ(second.probe, 0u);
}

TEST(RedirectTableTest, AbortRemovesFreshEntry) {
  RedirectTable t(sim::SuvParams{}, 4);
  t.insert_transient(txn_entry(10, 1000, 0));
  auto out = t.abort_entry(10);
  EXPECT_TRUE(out.deleted);
  EXPECT_EQ(out.target, 1000u);
  EXPECT_EQ(t.find(10), nullptr);
  EXPECT_EQ(t.total_entries(), 0u);
  // Owner's summary no longer reports it.
  auto res = t.lookup(0, 10);
  EXPECT_EQ(res.entry, nullptr);
}

TEST(RedirectTableTest, ToggleCommitDeletesEntryEverywhere) {
  RedirectTable t(sim::SuvParams{}, 4);
  t.insert_transient(txn_entry(10, 1000, 0));
  t.commit_entry(10);  // now global
  // Another transaction toggles it back (g1v1 -> g1v0).
  RedirectEntry* e = t.find(10);
  e->state = EntryState::kTxnUnredirect;
  e->owner = 2;
  t.pin_transient(2, 10);
  auto out = t.commit_entry(10);
  EXPECT_TRUE(out.deleted);
  EXPECT_EQ(t.find(10), nullptr);
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_EQ(t.lookup(c, 10).entry, nullptr) << "core " << c;
  }
}

TEST(RedirectTableTest, ToggleAbortRestoresGlobalRedirect) {
  RedirectTable t(sim::SuvParams{}, 4);
  t.insert_transient(txn_entry(10, 1000, 0));
  t.commit_entry(10);
  RedirectEntry* e = t.find(10);
  e->state = EntryState::kTxnUnredirect;
  e->owner = 2;
  t.pin_transient(2, 10);
  auto out = t.abort_entry(10);
  EXPECT_FALSE(out.deleted);
  ASSERT_NE(t.find(10), nullptr);
  EXPECT_EQ(t.find(10)->state, EntryState::kGlobalRedirect);
  EXPECT_EQ(t.find(10)->resolve_for(5), 1000u);
}

TEST(RedirectTableTest, PinnedOverflowSpillsToSecondLevel) {
  RedirectTable t(small_params(), 4);  // 4 pinnable entries
  for (LineAddr l = 0; l < 4; ++l) {
    EXPECT_EQ(t.insert_transient(txn_entry(l, 1000 + l, 0)), 0u);
  }
  // Fifth transient entry cannot be pinned: charged second-level latency.
  EXPECT_EQ(t.insert_transient(txn_entry(4, 1004, 0)),
            small_params().l2_table_latency);
  EXPECT_EQ(t.stats().l1_overflow_entries, 1u);
  EXPECT_EQ(t.pinned_count(0), 4u);
  // The spilled entry is still findable by its owner.
  auto res = t.lookup(0, 4);
  ASSERT_NE(res.entry, nullptr);
}

TEST(RedirectTableTest, MisspeculationWhenBothLevelsMiss) {
  sim::SuvParams p = small_params();
  RedirectTable t(p, 4);
  t.insert_transient(txn_entry(10, 1000, 0));
  t.commit_entry(10);
  // Evict the entry from the second level by flooding its set, and from
  // core 1's first level (which never held it). A lookup from core 1 then
  // finds it only in the memory table: squash.
  for (LineAddr l = 0; l < 64; ++l) {
    t.insert_transient(txn_entry(100 + l, 2000 + l, 2));
    t.commit_entry(100 + l);
  }
  std::uint64_t before = t.stats().misspeculations;
  // Touch from a fresh core until we find the line whose L2 slot was lost.
  t.lookup(1, 10);
  t.lookup(1, 10);
  EXPECT_GE(t.stats().misspeculations + t.stats().l2_hits +
                t.stats().l1_hits, before);
  EXPECT_EQ(t.stats().mem_hits, t.stats().misspeculations);
}

TEST(RedirectTableTest, StatsL1MissRate) {
  TableStats s;
  EXPECT_EQ(s.l1_miss_rate(), 0.0);
  s.l1_hits = 3;
  s.l1_misses = 1;
  EXPECT_DOUBLE_EQ(s.l1_miss_rate(), 0.25);
}

TEST(RedirectTableTest, FalseFilterHitCostsNothing) {
  RedirectTable t(sim::SuvParams{}, 2);
  // Make core 0's summary contain a line, then delete the entry from the
  // summary's perspective only partially by adding/aborting churn to create
  // stale bits... simplest: force a false positive by inserting a line and
  // probing a *different* line that aliases. We approximate by checking the
  // documented contract instead: a summary hit with no entry anywhere is
  // counted and costs zero cycles (speculation hides it).
  t.insert_transient(txn_entry(42, 1042, 0));
  t.abort_entry(42);  // summary bits may remain only if shared; either way:
  const auto before_cost = t.stats().false_filter_hits;
  for (LineAddr l = 0; l < 50000; ++l) {
    auto res = t.lookup(0, l);
    if (res.entry == nullptr) {
      EXPECT_EQ(res.squash, 0u);
      EXPECT_EQ(res.probe, 0u);
    }
  }
  (void)before_cost;
}

TEST(RedirectTableTest, LookupCountsAreConsistent) {
  RedirectTable t(sim::SuvParams{}, 2);
  t.insert_transient(txn_entry(1, 101, 0));
  t.commit_entry(1);
  for (int i = 0; i < 10; ++i) t.lookup(0, 1);
  for (int i = 0; i < 10; ++i) t.lookup(0, 999);
  const auto& s = t.stats();
  EXPECT_EQ(s.lookups,
            s.summary_filtered + s.l1_hits + s.l1_misses);
  EXPECT_EQ(s.l1_misses, s.l2_hits + s.mem_hits + s.false_filter_hits);
}

}  // namespace
}  // namespace suvtm::suv
