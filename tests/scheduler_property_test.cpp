// Randomized property tests for the calendar-queue scheduler: the dispatch
// order of sim::Scheduler must be bit-identical to a reference model built
// on std::multimap (whose iteration order IS the (cycle, insertion) contract
// -- equivalent keys preserve insertion order). The workload is adversarial
// on purpose: same-cycle tie storms, delays past the wheel window (overflow
// heap + re-bucketing on the window jump), events scheduling events, and
// interleaved run(limit) segments with injections between them.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "sim/scheduler.hpp"

namespace suvtm::sim {
namespace {

/// Reference scheduler: one ordered multimap, one event popped at a time.
/// Deliberately naive -- its correctness is obvious from the container's
/// guarantees, which is the whole point of a model-based test.
class ReferenceScheduler {
 public:
  Cycle now() const { return now_; }

  void at(Cycle t, std::function<void()> fn) { q_.emplace(t, std::move(fn)); }

  void after(Cycle delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }

  bool run(Cycle limit) {
    while (!q_.empty()) {
      const auto it = q_.begin();
      if (it->first > limit) return false;
      now_ = it->first;
      std::function<void()> fn = std::move(it->second);
      q_.erase(it);
      fn();
    }
    return true;
  }

 private:
  Cycle now_ = 0;
  std::multimap<Cycle, std::function<void()>> q_;
};

using Trace = std::vector<std::pair<Cycle, int>>;

/// Self-rescheduling handler whose RNG stream decides the next delay:
/// 1-in-8 a same-cycle tie (after(0)), 1-in-8 a jump past the wheel window
/// (overflow heap), otherwise a short in-window delay; 1-in-16 it also
/// fans out a sibling at the same cycle. Identical seeds produce identical
/// decision streams in both schedulers, so the traces must match exactly.
template <class Sched>
struct Chain {
  Sched* s;
  Trace* trace;
  std::uint64_t* budget;
  std::uint64_t x;
  int id;

  void operator()() {
    trace->emplace_back(s->now(), id);
    if (*budget == 0) return;
    --*budget;
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t r = x >> 40;
    Cycle delay;
    switch (r % 8) {
      case 0:
        delay = 0;  // same-cycle: lands in the bucket being drained
        break;
      case 1:
        // Past the wheel window (2048 cycles): overflow heap, re-bucketed
        // when the window jumps.
        delay = Scheduler::kWheelSize + 1 + (r % 5000);
        break;
      default:
        delay = 1 + (r % 64);
        break;
    }
    s->after(delay, Chain{*this});
    if (r % 16 == 0) {
      s->after(delay, Chain{s, trace, budget, x ^ 0x243f6a8885a308d3ull,
                            id + 1000});
    }
  }
};

template <class Sched>
Trace run_workload(std::uint64_t seed) {
  Sched s;
  Trace trace;
  std::uint64_t budget = 4000;
  for (int i = 0; i < 8; ++i) {
    s.after(static_cast<Cycle>(i % 3),
            Chain<Sched>{&s, &trace, &budget,
                         seed + static_cast<std::uint64_t>(i) * 1013, i});
  }
  // Interleaved run(limit) segments: between segments, inject from outside
  // at absolute times derived only from the (deterministic) segment limit,
  // so both schedulers see identical injections.
  Cycle limit = 400;
  std::uint64_t y = seed ^ 0x9e3779b97f4a7c15ull;
  while (!s.run(limit)) {
    y = y * 6364136223846793005ull + 1442695040888963407ull;
    const int inj_id = -static_cast<int>((y >> 50) & 0xff) - 1;
    s.at(limit + 1 + ((y >> 30) % 97),
         Chain<Sched>{&s, &trace, &budget, y, inj_id});
    limit += 400;
  }
  return trace;
}

TEST(SchedulerPropertyTest, MatchesReferenceModelAcrossSeeds) {
  for (std::uint64_t seed : {0x1ull, 0xdeadbeefull, 0x0123456789abcdefull,
                             0x5555aaaa5555aaaaull}) {
    const Trace got = run_workload<Scheduler>(seed);
    const Trace want = run_workload<ReferenceScheduler>(seed);
    ASSERT_GT(want.size(), 4000u) << "workload must actually churn";
    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "divergence at event " << i << " of seed " << seed << ": got ("
          << got[i].first << "," << got[i].second << ") want ("
          << want[i].first << "," << want[i].second << ")";
    }
  }
}

TEST(SchedulerPropertyTest, TieStormPreservesFifoAcrossOverflowSpill) {
  // All events at one far-future cycle: they enter via the overflow heap,
  // get re-bucketed on the window jump, and must still dispatch in
  // insertion order (the heap key carries seq for exactly this).
  Scheduler s;
  std::vector<int> order;
  const Cycle t = Scheduler::kWheelSize * 3 + 17;
  for (int i = 0; i < 500; ++i) {
    s.at(t, [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(s.run(t + 1));
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerPropertyTest, TrimReleasesSlotPoolAfterBurst) {
  // A burst far above the trim threshold grows the slot pool; once the
  // queue drains (quiescent point), the pool must shrink back to the cap
  // -- long parameter sweeps reuse one process and must not pin the
  // high-water allocation forever.
  Scheduler s;
  std::uint64_t hits = 0;
  const std::size_t kBurst = Scheduler::kSlotPoolTrim * 4;
  for (std::size_t i = 0; i < kBurst; ++i) {
    s.at(static_cast<Cycle>(i % 7), [&hits] { ++hits; });
  }
  EXPECT_GE(s.slot_pool_capacity(), kBurst);
  EXPECT_TRUE(s.run(100));
  EXPECT_EQ(hits, kBurst);
  EXPECT_LE(s.slot_pool_capacity(), Scheduler::kSlotPoolTrim);

  // The trimmed scheduler must still be fully functional: the free list
  // was rebuilt, so scheduling after the trim reuses pooled slots in order.
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    s.after(static_cast<Cycle>(i % 5), [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(s.run(s.now() + 10));
  ASSERT_EQ(order.size(), 64u);
  std::vector<int> by_cycle[5];
  for (int i = 0; i < 64; ++i) by_cycle[i % 5].push_back(i);
  std::vector<int> want;
  for (auto& v : by_cycle) want.insert(want.end(), v.begin(), v.end());
  EXPECT_EQ(order, want);
}

TEST(SchedulerPropertyTest, SchedulingIntoPastThrowsInCheckBuilds) {
  // The binary heap merely mis-ordered a past-time event; the wheel would
  // mis-bucket it a full window late. SUVTM_CHECK builds promote the debug
  // assert to a release-mode throw -- mutation-test it here.
  if constexpr (!check::kHooksCompiled) {
    GTEST_SKIP() << "check hooks not compiled into this build";
  }
  Scheduler s;
  s.at(50, [] {});
  EXPECT_TRUE(s.run(100));
  EXPECT_EQ(s.now(), 50u);
  EXPECT_THROW(s.at(10, [] {}), check::CheckFailure);
  // Same guard on the coroutine path (the payload fast lane bypasses the
  // slot pool but not the past-schedule check).
  EXPECT_THROW(s.resume_at(10, std::coroutine_handle<>{}),
               check::CheckFailure);
}

}  // namespace
}  // namespace suvtm::sim
