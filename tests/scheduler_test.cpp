#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"

namespace suvtm::sim {
namespace {

TEST(SchedulerTest, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  EXPECT_TRUE(s.run(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.at(7, [&order, i] { order.push_back(i); });
  }
  s.run(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, AfterIsRelative) {
  Scheduler s;
  Cycle seen = 0;
  s.at(40, [&] { s.after(5, [&] { seen = s.now(); }); });
  s.run(100);
  EXPECT_EQ(seen, 45u);
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.after(1, chain);
  };
  s.at(0, chain);
  s.run(100);
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), 9u);
}

TEST(SchedulerTest, RunStopsAtLimit) {
  Scheduler s;
  bool ran = false;
  s.at(1000, [&] { ran = true; });
  EXPECT_FALSE(s.run(500));
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 1u);
  // A later run with a higher limit drains it.
  EXPECT_TRUE(s.run(2000));
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, CountsEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run(100);
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(SchedulerTest, ZeroDelayAfterRunsAtSameCycle) {
  Scheduler s;
  Cycle when = 999;
  s.at(5, [&] { s.after(0, [&] { when = s.now(); }); });
  s.run(100);
  EXPECT_EQ(when, 5u);
}

}  // namespace
}  // namespace suvtm::sim
