#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"

namespace suvtm::sim {
namespace {

TEST(SchedulerTest, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  EXPECT_TRUE(s.run(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.at(7, [&order, i] { order.push_back(i); });
  }
  s.run(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, AfterIsRelative) {
  Scheduler s;
  Cycle seen = 0;
  s.at(40, [&] { s.after(5, [&] { seen = s.now(); }); });
  s.run(100);
  EXPECT_EQ(seen, 45u);
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.after(1, chain);
  };
  s.at(0, chain);
  s.run(100);
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), 9u);
}

TEST(SchedulerTest, RunStopsAtLimit) {
  Scheduler s;
  bool ran = false;
  s.at(1000, [&] { ran = true; });
  EXPECT_FALSE(s.run(500));
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 1u);
  // A later run with a higher limit drains it.
  EXPECT_TRUE(s.run(2000));
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, CountsEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run(100);
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(SchedulerTest, ZeroDelayAfterRunsAtSameCycle) {
  Scheduler s;
  Cycle when = 999;
  s.at(5, [&] { s.after(0, [&] { when = s.now(); }); });
  s.run(100);
  EXPECT_EQ(when, 5u);
}

TEST(SchedulerTest, HeapOrdersLargeRandomishSchedule) {
  // Exercise the hand-rolled heap well past trivial sizes: adversarial
  // interleaving of pushes and pops with duplicate timestamps.
  Scheduler s;
  std::vector<Cycle> fired;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // deterministic LCG-ish stream
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const Cycle t = (x >> 33) % 512;
    s.at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  EXPECT_TRUE(s.run(1000));
  ASSERT_EQ(fired.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(s.events_processed(), 1000u);
}

TEST(SmallFnTest, InvokesInlineCallable) {
  int hits = 0;
  SmallFn f([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, MoveTransfersOwnership) {
  int hits = 0;
  SmallFn a([&hits] { ++hits; });
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
  SmallFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, HeapFallbackForLargeCaptures) {
  // Capture well past kInlineBytes to force the heap path.
  struct Fat {
    char pad[128] = {};
    int value = 7;
  } fat;
  int seen = 0;
  SmallFn f([fat, &seen] { seen = fat.value; });
  SmallFn g(std::move(f));
  g();
  EXPECT_EQ(seen, 7);
}

TEST(SmallFnTest, DestroysCaptureExactlyOnce) {
  struct Counter {
    int* dtors;
    explicit Counter(int* d) : dtors(d) {}
    Counter(const Counter& o) = default;
    Counter(Counter&& o) noexcept : dtors(o.dtors) { o.dtors = nullptr; }
    ~Counter() {
      if (dtors) ++*dtors;
    }
    void operator()() const {}
  };
  int dtors = 0;
  {
    SmallFn f{Counter(&dtors)};
    SmallFn g(std::move(f));
    g();
  }
  EXPECT_EQ(dtors, 1);
}

TEST(SmallFnTest, AcceptsCopyableStdFunction) {
  std::function<void()> fn;
  int hits = 0;
  fn = [&hits] { ++hits; };
  SmallFn a(fn);  // copied in; scheduler_test's chain pattern relies on this
  SmallFn b(fn);
  a();
  b();
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace suvtm::sim
