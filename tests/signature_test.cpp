#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "htm/signature.hpp"

namespace suvtm::htm {
namespace {

TEST(SignatureTest, EmptyTestsNegative) {
  Signature s(2048, 2);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.test(0));
  EXPECT_FALSE(s.test(12345));
}

TEST(SignatureTest, AddedLineAlwaysTestsPositive) {
  Signature s(2048, 2);
  s.add(42);
  EXPECT_TRUE(s.test(42));
  EXPECT_FALSE(s.empty());
}

TEST(SignatureTest, ClearEmpties) {
  Signature s(2048, 2);
  s.add(1);
  s.add(2);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.popcount(), 0u);
}

TEST(SignatureTest, AddsCounted) {
  Signature s(2048, 2);
  s.add(1);
  s.add(1);
  s.add(2);
  EXPECT_EQ(s.adds(), 3u);
}

TEST(SignatureTest, PopcountBoundedByHashesTimesAdds) {
  Signature s(2048, 2);
  for (LineAddr l = 0; l < 10; ++l) s.add(l);
  EXPECT_LE(s.popcount(), 20u);
  EXPECT_GE(s.popcount(), 2u);
}

TEST(SignatureTest, IntersectsDetectsSharedBits) {
  Signature a(2048, 2), b(2048, 2);
  a.add(7);
  b.add(7);
  EXPECT_TRUE(a.intersects(b));
  Signature c(2048, 2);
  EXPECT_FALSE(a.intersects(c));
}

TEST(SignatureTest, HashStaysInRange) {
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (LineAddr l = 0; l < 1000; ++l) {
      EXPECT_LT(Signature::hash(l, i, 2048), 2048u);
    }
  }
}

TEST(SignatureTest, HashFunctionsAreDistinct) {
  int same = 0;
  for (LineAddr l = 0; l < 256; ++l) {
    if (Signature::hash(l, 0, 2048) == Signature::hash(l, 1, 2048)) ++same;
  }
  EXPECT_LT(same, 8);  // only chance collisions
}

// Property sweep: NO FALSE NEGATIVES for any (bits, hashes) configuration.
class SignatureProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(SignatureProperty, NoFalseNegatives) {
  const auto [bits, hashes] = GetParam();
  Signature s(bits, hashes);
  Rng rng(bits * 31 + hashes);
  std::vector<LineAddr> members;
  for (int i = 0; i < 200; ++i) {
    const LineAddr l = rng.next() >> 6;
    s.add(l);
    members.push_back(l);
  }
  for (LineAddr l : members) EXPECT_TRUE(s.test(l));
}

TEST_P(SignatureProperty, FalsePositiveRateBounded) {
  const auto [bits, hashes] = GetParam();
  Signature s(bits, hashes);
  Rng rng(bits * 37 + hashes);
  for (int i = 0; i < 64; ++i) s.add(rng.next() >> 6);
  int fp = 0;
  const int probes = 4000;
  for (int i = 0; i < probes; ++i) fp += s.test(rng.next() >> 6);
  // Theoretical FP rate for k hashes, m bits, n=64: (1-e^{-kn/m})^k.
  const double k = hashes, n = 64, mbits = bits;
  const double expect = std::pow(1.0 - std::exp(-k * n / mbits), k);
  EXPECT_LT(static_cast<double>(fp) / probes, expect * 2.0 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SignatureProperty,
    ::testing::Combine(::testing::Values(512u, 1024u, 2048u, 8192u),
                       ::testing::Values(1u, 2u, 4u)));

// Larger filters must not have a *higher* false-positive rate.
TEST(SignatureTest, BiggerFilterFewerFalsePositives) {
  Rng rng(99);
  std::vector<LineAddr> members;
  for (int i = 0; i < 256; ++i) members.push_back(rng.next() >> 6);
  auto fp_rate = [&](std::uint32_t bits) {
    Signature s(bits, 2);
    for (LineAddr l : members) s.add(l);
    Rng probe_rng(100);
    int fp = 0;
    for (int i = 0; i < 5000; ++i) fp += s.test(probe_rng.next() >> 6);
    return fp;
  };
  EXPECT_GE(fp_rate(512), fp_rate(8192));
}

}  // namespace
}  // namespace suvtm::htm
