#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "stamp/framework.hpp"
#include "stamp/sim_alloc.hpp"
#include "stamp/sim_ds.hpp"

namespace suvtm::stamp {
namespace {

// Single-threaded driver: run one coroutine on core 0 of a simulator.
class SimDsTest : public ::testing::Test {
 protected:
  SimDsTest() : sim_(make_config()) {}

  static sim::SimConfig make_config() {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;  // exercise redirection under the DS ops
    return cfg;
  }

  template <class Fn>
  void run(Fn body) {
    sim_.spawn(0, driver(sim_.context(0), body));
    sim_.run();
  }

  template <class Fn>
  static sim::ThreadTask driver(sim::ThreadContext& tc, Fn body) {
    co_await body(tc);
  }

  sim::Simulator sim_;
  SimAllocator alloc_;
};

TEST_F(SimDsTest, AllocatorAlignsAndAdvances) {
  const Addr a = alloc_.alloc(10);
  const Addr b = alloc_.alloc(8);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GE(b, a + 10);
  const Addr c = alloc_.alloc_lines(2);
  EXPECT_EQ(c % kLineBytes, 0u);
}

TEST_F(SimDsTest, ArenaHandsOutDistinctObjects) {
  SimArena arena(alloc_, 24, 10);
  const Addr a = arena.take();
  const Addr b = arena.take();
  EXPECT_GE(b, a + 24);
  EXPECT_EQ(arena.used(), 2u);
}

TEST_F(SimDsTest, PerThreadArenaSeparatesLines) {
  PerThreadArena arena(alloc_, 24, 8, 4);
  const Addr t0 = arena.take(0);
  const Addr t1 = arena.take(1);
  EXPECT_NE(line_of(t0), line_of(t1));
}

TEST_F(SimDsTest, HashMapInsertFind) {
  SimHashMap map(alloc_, 16, 64, 1);
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    EXPECT_TRUE(co_await map.insert(tc, 5, 100));
    EXPECT_FALSE(co_await map.insert(tc, 5, 999));  // duplicate key
    EXPECT_TRUE(co_await map.insert(tc, 6, 200));
    const auto v5 = co_await map.find(tc, 5);
    const auto v6 = co_await map.find(tc, 6);
    const auto v7 = co_await map.find(tc, 7);
    EXPECT_EQ(v5, std::optional<std::uint64_t>(100));
    EXPECT_EQ(v6, std::optional<std::uint64_t>(200));
    EXPECT_FALSE(v7.has_value());
    co_await tc.tx_commit();
  });
}

TEST_F(SimDsTest, HashMapUpdate) {
  SimHashMap map(alloc_, 16, 64, 1);
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    co_await map.insert(tc, 1, 10);
    EXPECT_TRUE(co_await map.update(tc, 1, 20));
    EXPECT_FALSE(co_await map.update(tc, 2, 20));
    EXPECT_EQ(co_await map.find(tc, 1), std::optional<std::uint64_t>(20));
    co_await tc.tx_commit();
  });
}

TEST_F(SimDsTest, HashMapErase) {
  SimHashMap map(alloc_, 4, 64, 1);  // few buckets: chains form
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    for (std::uint64_t k = 1; k <= 12; ++k) co_await map.insert(tc, k, k * 10);
    const auto gone = co_await map.erase(tc, 6);
    EXPECT_EQ(gone, std::optional<std::uint64_t>(60));
    EXPECT_FALSE((co_await map.find(tc, 6)).has_value());
    // Neighbours in the chain survive.
    for (std::uint64_t k = 1; k <= 12; ++k) {
      if (k == 6) continue;
      EXPECT_EQ(co_await map.find(tc, k), std::optional<std::uint64_t>(k * 10));
    }
    EXPECT_FALSE((co_await map.erase(tc, 99)).has_value());
    co_await tc.tx_commit();
  });
}

TEST_F(SimDsTest, HashMapPreloadVisibleToTransactions) {
  SimHashMap map(alloc_, 16, 64, 1);
  map.preload(sim_.mem().backing(), 7, 700);
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    EXPECT_EQ(co_await map.find(tc, 7), std::optional<std::uint64_t>(700));
    co_await tc.tx_commit();
  });
}

TEST_F(SimDsTest, HashMapPeekResolvesRedirection) {
  SimHashMap map(alloc_, 16, 64, 1);
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    co_await map.insert(tc, 3, 33);
    co_await tc.tx_commit();
  });
  // Committed under SUV: the node may live in a redirected pool line.
  const auto load = [&](Addr a) { return sim_.read_word_resolved(a); };
  EXPECT_EQ(map.peek(load, 3), std::optional<std::uint64_t>(33));
  EXPECT_FALSE(map.peek(load, 4).has_value());
}

TEST_F(SimDsTest, QueueFifoOrder) {
  SimQueue q(alloc_, 8);
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    for (std::uint64_t v = 1; v <= 5; ++v) {
      EXPECT_TRUE(co_await q.push(tc, v));
    }
    for (std::uint64_t v = 1; v <= 5; ++v) {
      EXPECT_EQ(co_await q.pop(tc), std::optional<std::uint64_t>(v));
    }
    EXPECT_FALSE((co_await q.pop(tc)).has_value());
    co_await tc.tx_commit();
  });
}

TEST_F(SimDsTest, QueueRejectsWhenFull) {
  SimQueue q(alloc_, 2);
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    EXPECT_TRUE(co_await q.push(tc, 1));
    EXPECT_TRUE(co_await q.push(tc, 2));
    EXPECT_FALSE(co_await q.push(tc, 3));
    co_await q.pop(tc);
    EXPECT_TRUE(co_await q.push(tc, 3));  // wraps around
    co_await tc.tx_commit();
  });
}

TEST_F(SimDsTest, QueuePreload) {
  SimQueue q(alloc_, 16);
  q.preload(sim_.mem().backing(), {9, 8, 7});
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    EXPECT_EQ(co_await q.pop(tc), std::optional<std::uint64_t>(9));
    EXPECT_EQ(co_await q.pop(tc), std::optional<std::uint64_t>(8));
    EXPECT_EQ(co_await q.pop(tc), std::optional<std::uint64_t>(7));
    EXPECT_FALSE((co_await q.pop(tc)).has_value());
    co_await tc.tx_commit();
  });
}

TEST_F(SimDsTest, SortedListKeepsOrderAndDedups) {
  SimSortedList list(alloc_, 64, 1);
  run([&](sim::ThreadContext& tc) -> sim::Task<void> {
    co_await tc.tx_begin();
    EXPECT_TRUE(co_await list.insert(tc, 30));
    EXPECT_TRUE(co_await list.insert(tc, 10));
    EXPECT_TRUE(co_await list.insert(tc, 20));
    EXPECT_FALSE(co_await list.insert(tc, 20));  // duplicate
    EXPECT_TRUE(co_await list.contains(tc, 10));
    EXPECT_TRUE(co_await list.contains(tc, 20));
    EXPECT_TRUE(co_await list.contains(tc, 30));
    EXPECT_FALSE(co_await list.contains(tc, 15));
    EXPECT_FALSE(co_await list.contains(tc, 40));
    co_await tc.tx_commit();
  });
}

}  // namespace
}  // namespace suvtm::stamp
