// End-to-end transactional semantics, parameterized over all five schemes:
// every version-management implementation must provide the same atomicity,
// isolation and determinism guarantees.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "stamp/framework.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm {
namespace {

using sim::Scheme;

const Scheme kAllSchemes[] = {Scheme::kLogTmSe, Scheme::kFasTm, Scheme::kSuv,
                              Scheme::kDynTm, Scheme::kDynTmSuv};

sim::SimConfig config_for(Scheme s) {
  sim::SimConfig cfg;
  cfg.scheme = s;
  return cfg;
}

// --- shared coroutine bodies -------------------------------------------------

sim::ThreadTask incrementer(sim::ThreadContext& tc, Addr counter,
                            sim::Barrier& bar, int iters) {
  co_await tc.barrier(bar);
  for (int i = 0; i < iters; ++i) {
    co_await stamp::atomically(tc, 1,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const std::uint64_t v = co_await t.load(counter);
      co_await t.compute(5);
      co_await t.store(counter, v + 1);
    });
  }
  co_await tc.barrier(bar);
}

sim::ThreadTask transferer(sim::ThreadContext& tc, Addr accounts, int n,
                           sim::Barrier& bar, int iters) {
  co_await tc.barrier(bar);
  Rng& rng = tc.rng();
  for (int i = 0; i < iters; ++i) {
    const int from = static_cast<int>(rng.below(n));
    const int to = static_cast<int>(rng.below(n));
    co_await stamp::atomically(tc, 2,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const Addr fa = accounts + from * kLineBytes;
      const Addr ta = accounts + to * kLineBytes;
      const std::uint64_t fv = co_await t.load(fa);
      const std::uint64_t tv = co_await t.load(ta);
      if (from != to) {
        co_await t.store(fa, fv - 10);
        co_await t.store(ta, tv + 10);
      }
    });
    co_await tc.compute(30);
  }
  co_await tc.barrier(bar);
}

sim::ThreadTask nested_writer(sim::ThreadContext& tc, Addr a, Addr b,
                              sim::Barrier& bar) {
  co_await tc.barrier(bar);
  co_await stamp::atomically(tc, 3,
                             [&](sim::ThreadContext& t) -> sim::Task<void> {
    const std::uint64_t v = co_await t.load(a);
    co_await t.store(a, v + 1);
    // Closed-nested inner transaction.
    co_await t.tx_begin(4);
    const std::uint64_t w = co_await t.load(b);
    co_await t.store(b, w + 1);
    co_await t.tx_commit();
  });
  co_await tc.barrier(bar);
}

sim::ThreadTask nontx_reader(sim::ThreadContext& tc, Addr flag, Addr payload,
                             std::uint64_t* bad) {
  // Strong isolation check: a NON-transactional observer must never see
  // payload updated without the flag (both written in one transaction).
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t f = co_await tc.load(flag);
    const std::uint64_t p = co_await tc.load(payload);
    if (p < f) ++*bad;  // payload written first, flag second
    co_await tc.compute(7);
  }
}

sim::ThreadTask flagged_writer(sim::ThreadContext& tc, Addr flag, Addr payload,
                               int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await stamp::atomically(tc, 5,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const std::uint64_t p = co_await t.load(payload);
      co_await t.store(payload, p + 1);
      co_await t.compute(20);
      const std::uint64_t f = co_await t.load(flag);
      co_await t.store(flag, f + 1);
    });
    co_await tc.compute(15);
  }
}

// --- parameterized suite -----------------------------------------------------

class SchemeSemantics : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeSemantics, HotCounterIsAtomic) {
  sim::Simulator sim(config_for(GetParam()));
  const Addr counter = 0x10000;
  auto& bar = sim.make_barrier(sim.num_cores());
  constexpr int kIters = 60;
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, incrementer(sim.context(c), counter, bar, kIters));
  }
  sim.run();
  EXPECT_EQ(sim.read_word_resolved(counter),
            static_cast<std::uint64_t>(kIters) * sim.num_cores());
  EXPECT_EQ(sim.htm().stats().commits,
            static_cast<std::uint64_t>(kIters) * sim.num_cores());
}

TEST_P(SchemeSemantics, MoneyIsConserved) {
  sim::Simulator sim(config_for(GetParam()));
  const Addr accounts = 0x20000;
  constexpr int kAccounts = 32;
  constexpr std::uint64_t kInitial = 1000;
  for (int i = 0; i < kAccounts; ++i) {
    sim.mem().store_word(accounts + i * kLineBytes, kInitial);
  }
  auto& bar = sim.make_barrier(sim.num_cores());
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, transferer(sim.context(c), accounts, kAccounts, bar, 25));
  }
  sim.run();
  std::uint64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) {
    total += sim.read_word_resolved(accounts + i * kLineBytes);
  }
  EXPECT_EQ(total, kInitial * kAccounts);
}

TEST_P(SchemeSemantics, ClosedNestingCommitsBothLevels) {
  sim::Simulator sim(config_for(GetParam()));
  const Addr a = 0x30000, b = 0x30000 + kLineBytes;
  auto& bar = sim.make_barrier(sim.num_cores());
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, nested_writer(sim.context(c), a, b, bar));
  }
  sim.run();
  EXPECT_EQ(sim.read_word_resolved(a), sim.num_cores());
  EXPECT_EQ(sim.read_word_resolved(b), sim.num_cores());
  EXPECT_EQ(sim.htm().stats().nested_begins, sim.num_cores());
}

TEST_P(SchemeSemantics, StrongIsolationForNonTxReaders) {
  sim::Simulator sim(config_for(GetParam()));
  const Addr flag = 0x40000, payload = 0x40000 + kLineBytes;
  std::uint64_t bad = 0;
  sim.spawn(0, flagged_writer(sim.context(0), flag, payload, 60));
  sim.spawn(1, nontx_reader(sim.context(1), flag, payload, &bad));
  sim.run();
  EXPECT_EQ(bad, 0u) << "non-transactional reader observed a torn commit";
}

TEST_P(SchemeSemantics, DeterministicAcrossRuns) {
  Cycle first = 0;
  for (int run = 0; run < 2; ++run) {
    sim::Simulator sim(config_for(GetParam()));
    const Addr counter = 0x50000;
    auto& bar = sim.make_barrier(sim.num_cores());
    for (CoreId c = 0; c < sim.num_cores(); ++c) {
      sim.spawn(c, incrementer(sim.context(c), counter, bar, 20));
    }
    sim.run();
    if (run == 0) first = sim.makespan();
    else EXPECT_EQ(sim.makespan(), first);
  }
}

TEST_P(SchemeSemantics, BreakdownCoversMakespanWork) {
  sim::Simulator sim(config_for(GetParam()));
  const Addr counter = 0x60000;
  auto& bar = sim.make_barrier(sim.num_cores());
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, incrementer(sim.context(c), counter, bar, 20));
  }
  sim.run();
  const auto b = sim.total_breakdown();
  EXPECT_GT(b.get(sim::Bucket::kTrans), 0u);
  // Accounted cycles must be plausible: at most cores x makespan.
  EXPECT_LE(b.total(), static_cast<Cycle>(sim.num_cores()) * sim.makespan() +
                           sim.num_cores());
}

TEST_P(SchemeSemantics, AbortsRollBackEverything) {
  // Single adversarial line hammered by everyone: plenty of aborts, yet the
  // final value must be exact and no transaction may observe a torn state.
  sim::Simulator sim(config_for(GetParam()));
  const Addr counter = 0x70000;
  auto& bar = sim.make_barrier(sim.num_cores());
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, incrementer(sim.context(c), counter, bar, 40));
  }
  sim.run();
  EXPECT_EQ(sim.read_word_resolved(counter), 40u * sim.num_cores());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSemantics,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kLogTmSe: return "LogTmSe";
                             case Scheme::kFasTm: return "FasTm";
                             case Scheme::kSuv: return "Suv";
                             case Scheme::kDynTm: return "DynTm";
                             case Scheme::kDynTmSuv: return "DynTmSuv";
                           }
                           return "unknown";
                         });

TEST(SimulatorTest, ThrowsOnWorkloadException) {
  sim::Simulator sim(config_for(Scheme::kSuv));
  struct Boom {};
  auto body = [](sim::ThreadContext& tc) -> sim::ThreadTask {
    co_await tc.compute(5);
    throw Boom{};
  };
  sim.spawn(0, body(sim.context(0)));
  EXPECT_THROW(sim.run(), Boom);
}

TEST(SimulatorTest, MakespanAdvances) {
  sim::Simulator sim(config_for(Scheme::kSuv));
  auto body = [](sim::ThreadContext& tc) -> sim::ThreadTask {
    co_await tc.compute(123);
  };
  sim.spawn(0, body(sim.context(0)));
  sim.run();
  EXPECT_GE(sim.makespan(), 123u);
}

TEST(SimulatorTest, SuvLeavesNoTransientEntriesBehind) {
  sim::Simulator sim(config_for(Scheme::kSuv));
  const Addr counter = 0x80000;
  auto& bar = sim.make_barrier(sim.num_cores());
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    sim.spawn(c, incrementer(sim.context(c), counter, bar, 10));
  }
  sim.run();
  auto* suvvm = dynamic_cast<vm::SuvVm*>(&sim.htm().vm());
  ASSERT_NE(suvvm, nullptr);
  // All remaining entries must be stable (global) -- every transaction
  // ended, so no transient state may survive.
  // total_entries counts live entries; each must resolve identically for
  // any observer.
  const Addr r1 = suvvm->debug_resolve(0, counter);
  const Addr r2 = suvvm->debug_resolve(7, counter);
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace suvtm
