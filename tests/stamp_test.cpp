// Every STAMP-like application must run to completion and pass its own
// invariant verification under every version-management scheme. This is the
// suite's core correctness matrix (8 apps x 5 schemes), run at a reduced
// scale to keep test time reasonable.
#include <gtest/gtest.h>

#include <string>

#include "runner/experiment.hpp"

namespace suvtm {
namespace {

using Combo = std::tuple<stamp::AppId, sim::Scheme>;

class StampMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(StampMatrix, RunsAndVerifies) {
  const auto [app, scheme] = GetParam();
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  stamp::SuiteParams params;
  params.scale = 0.25;
  params.seed = 7;
  runner::RunResult r;
  ASSERT_NO_THROW(r = runner::run_app(app, cfg, params));
  EXPECT_GT(r.makespan, 0u);
  EXPECT_GT(r.htm.commits, 0u);
  // Every committed or aborted attempt must be accounted.
  EXPECT_EQ(r.htm.begins, r.htm.commits + r.htm.aborts);
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto [app, scheme] = info.param;
  std::string n = stamp::app_name(app);
  n += "_";
  n += sim::scheme_name(scheme);
  for (char& c : n) {
    if (c == '-' || c == '+') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StampMatrix,
    ::testing::Combine(::testing::ValuesIn(stamp::all_apps()),
                       ::testing::Values(sim::Scheme::kLogTmSe,
                                         sim::Scheme::kFasTm,
                                         sim::Scheme::kSuv,
                                         sim::Scheme::kDynTm,
                                         sim::Scheme::kDynTmSuv)),
    combo_name);

TEST(StampRegistryTest, EightApps) {
  EXPECT_EQ(stamp::all_apps().size(), 8u);
}

TEST(StampRegistryTest, FiveHighContentionApps) {
  // Paper Section V: bayes, genome, intruder, labyrinth, yada.
  const auto& high = stamp::high_contention_apps();
  EXPECT_EQ(high.size(), 5u);
  for (stamp::AppId id : high) {
    EXPECT_TRUE(stamp::make_workload(id)->high_contention())
        << stamp::app_name(id);
  }
}

TEST(StampRegistryTest, NamesMatchWorkloads) {
  for (stamp::AppId id : stamp::all_apps()) {
    auto w = stamp::make_workload(id);
    EXPECT_STREQ(w->name(), stamp::app_name(id));
  }
}

TEST(StampRegistryTest, ContentionLabelsMatchPaperTable4) {
  EXPECT_TRUE(stamp::make_workload(stamp::AppId::kBayes)->high_contention());
  EXPECT_TRUE(stamp::make_workload(stamp::AppId::kGenome)->high_contention());
  EXPECT_TRUE(stamp::make_workload(stamp::AppId::kIntruder)->high_contention());
  EXPECT_FALSE(stamp::make_workload(stamp::AppId::kKmeans)->high_contention());
  EXPECT_TRUE(
      stamp::make_workload(stamp::AppId::kLabyrinth)->high_contention());
  EXPECT_FALSE(stamp::make_workload(stamp::AppId::kSsca2)->high_contention());
  EXPECT_FALSE(
      stamp::make_workload(stamp::AppId::kVacation)->high_contention());
  EXPECT_TRUE(stamp::make_workload(stamp::AppId::kYada)->high_contention());
}

TEST(StampDeterminismTest, SameSeedSameMakespan) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  stamp::SuiteParams params;
  params.scale = 0.2;
  const auto a = runner::run_app(stamp::AppId::kGenome, cfg, params);
  const auto b = runner::run_app(stamp::AppId::kGenome, cfg, params);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.htm.aborts, b.htm.aborts);
}

TEST(StampDeterminismTest, DifferentSeedsDiffer) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  stamp::SuiteParams pa, pb;
  pa.scale = pb.scale = 0.2;
  pa.seed = 1;
  pb.seed = 2;
  const auto a = runner::run_app(stamp::AppId::kVacation, cfg, pa);
  const auto b = runner::run_app(stamp::AppId::kVacation, cfg, pb);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(StampScaleTest, LargerScaleMoreWork) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kFasTm;
  stamp::SuiteParams small, large;
  small.scale = 0.2;
  large.scale = 0.5;
  const auto a = runner::run_app(stamp::AppId::kSsca2, cfg, small);
  const auto b = runner::run_app(stamp::AppId::kSsca2, cfg, large);
  EXPECT_GT(b.htm.commits, a.htm.commits);
}

TEST(StampSuvTest, HighContentionAppsCreateRedirectEntries) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  stamp::SuiteParams params;
  params.scale = 0.25;
  const auto r = runner::run_app(stamp::AppId::kYada, cfg, params);
  ASSERT_TRUE(r.has_suv);
  EXPECT_GT(r.suv.entries_created, 0u);
  EXPECT_GT(r.suv.entries_published, 0u);
  // The entry-count-reduction feature fires: rewrites toggle entries away.
  EXPECT_GT(r.suv.entries_toggled, 0u);
  EXPECT_GT(r.suv.entries_deleted, 0u);
}

TEST(StampSuvTest, SummaryFilterScreensMostLookups) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  stamp::SuiteParams params;
  params.scale = 0.25;
  const auto r = runner::run_app(stamp::AppId::kVacation, cfg, params);
  ASSERT_TRUE(r.has_suv);
  EXPECT_GT(r.table.summary_filtered, 0u);
}

}  // namespace
}  // namespace suvtm
