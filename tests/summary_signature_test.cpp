#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "suv/summary_signature.hpp"

namespace suvtm::suv {
namespace {

TEST(SummarySignatureTest, EmptyNegative) {
  SummarySignature s(2048, 2);
  EXPECT_FALSE(s.test(0));
  EXPECT_EQ(s.size_estimate(), 0u);
}

TEST(SummarySignatureTest, AddThenTest) {
  SummarySignature s(2048, 2);
  s.add(10);
  EXPECT_TRUE(s.test(10));
  EXPECT_EQ(s.size_estimate(), 1u);
}

TEST(SummarySignatureTest, RemoveUniqueMemberClearsIt) {
  SummarySignature s(2048, 2);
  s.add(10);
  s.remove(10);
  EXPECT_FALSE(s.test(10));
  EXPECT_EQ(s.size_estimate(), 0u);
}

TEST(SummarySignatureTest, PaperFigure5Example) {
  // H1(x) = x mod 8, H2(x) = (x xor 2x) mod 8 in the paper; our hashes
  // differ, but the *behaviour* is what Figure 5 specifies: adding @1 and
  // @3, then deleting @1, leaves @3 present and removes @1's unique bits.
  SummarySignature s(8, 2);
  s.add(1);
  s.add(3);
  EXPECT_TRUE(s.test(1));
  EXPECT_TRUE(s.test(3));
  s.remove(1);
  EXPECT_TRUE(s.test(3));  // superset property: @3 must survive
}

TEST(SummarySignatureTest, SharedBitsSurviveRemoval) {
  SummarySignature s(2048, 2);
  // Find two lines sharing at least one filter bit by brute force.
  s.add(1);
  LineAddr other = 0;
  for (LineAddr cand = 2; cand < 100000; ++cand) {
    bool shares = false;
    for (std::uint32_t i = 0; i < 2 && !shares; ++i) {
      for (std::uint32_t j = 0; j < 2; ++j) {
        if (htm::Signature::hash(1, i, 2048) ==
            htm::Signature::hash(cand, j, 2048)) {
          shares = true;
        }
      }
    }
    if (shares) {
      other = cand;
      break;
    }
  }
  ASSERT_NE(other, 0u);
  s.add(other);
  s.remove(1);
  EXPECT_TRUE(s.test(other));  // the shared bit must remain set
}

TEST(SummarySignatureTest, UniqueBitVectorMatchesCounts) {
  SummarySignature s(64, 1);
  s.add(5);
  const std::uint32_t bit = htm::Signature::hash(5, 0, 64);
  EXPECT_TRUE(s.unique_bit(bit));
  EXPECT_TRUE(s.filter_bit(bit));
  s.add(5);
  EXPECT_FALSE(s.unique_bit(bit));  // written twice now
  EXPECT_TRUE(s.filter_bit(bit));
}

TEST(SummarySignatureTest, ClearResets) {
  SummarySignature s(2048, 2);
  s.add(1);
  s.add(2);
  s.clear();
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.size_estimate(), 0u);
}

// THE correctness property (paper Section IV-B): under any add/remove
// churn, the filter remains a superset of the live set -- removal may leave
// stale bits (wasteful lookups) but must never hide a live member.
class SummaryChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryChurn, AlwaysSupersetOfLiveSet) {
  SummarySignature s(1024, 2);
  Rng rng(GetParam());
  std::unordered_set<LineAddr> live;
  for (int op = 0; op < 3000; ++op) {
    const LineAddr l = rng.below(300);  // small domain -> heavy bit sharing
    if (!live.count(l) && rng.chance(0.6)) {
      s.add(l);
      live.insert(l);
    } else if (live.count(l)) {
      s.remove(l);
      live.erase(l);
    }
    if ((op & 63) == 0) {
      for (LineAddr m : live) ASSERT_TRUE(s.test(m)) << "member hidden: " << m;
    }
  }
  for (LineAddr m : live) EXPECT_TRUE(s.test(m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryChurn,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

TEST(SummarySignatureTest, SaturatedCountersNeverDecrement) {
  SummarySignature s(8, 1);
  // Saturate one bit far past 255 adds, then remove more than added.
  for (int i = 0; i < 300; ++i) s.add(0);
  for (int i = 0; i < 300; ++i) s.remove(0);
  // The counter saturated; removals must not clear the bit (superset rule).
  EXPECT_TRUE(s.test(0));
}

}  // namespace
}  // namespace suvtm::suv
