// The paper's Figure 4 operation sequences, executed end-to-end on the
// simulator with two interleaved transactions, checking the redirect
// table, summary signature and memory contents at every step.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "stamp/framework.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm {
namespace {

class SuvOperationsTest : public ::testing::Test {
 protected:
  SuvOperationsTest() : sim_(make_cfg()) {
    vm_ = dynamic_cast<vm::SuvVm*>(&sim_.htm().vm());
  }

  static sim::SimConfig make_cfg() {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSuv;
    return cfg;
  }

  void run() { sim_.run(); }

  sim::Simulator sim_;
  vm::SuvVm* vm_ = nullptr;
};

// Figure 4(b): an un-redirected transactional load consults the summary,
// needs no table lookup, and reads the original location.
sim::ThreadTask fig4b(sim::Simulator& sim, vm::SuvVm& vm,
                      sim::ThreadContext& tc) {
  (void)sim;
  co_await tc.tx_begin(1);
  const auto before = vm.table().stats().summary_filtered;
  const std::uint64_t r1 = co_await tc.load(0x00 + 0x100000);
  EXPECT_EQ(r1, 12u);
  EXPECT_GT(vm.table().stats().summary_filtered, before);
  co_await tc.tx_commit();
}

TEST_F(SuvOperationsTest, Fig4b_UnredirectedLoad) {
  // Seed before run(): the checker snapshots the image at run start, so
  // host-side writes after that point would trip the untouched-word sweep.
  sim_.mem().store_word(0x00 + 0x100000, 12);
  sim_.spawn(0, fig4b(sim_, *vm_, sim_.context(0)));
  run();
  EXPECT_EQ(vm_->table().total_entries(), 0u);
}

// Figure 4(c): an un-redirected transactional store adds a redirect entry,
// bumps the entry pointer, and writes the value to the redirected slot.
sim::ThreadTask fig4c(sim::Simulator& sim, vm::SuvVm& vm,
                      sim::ThreadContext& tc) {
  co_await tc.tx_begin(1);
  co_await tc.store(0x40 + 0x100000, 99);
  const suv::RedirectEntry* e = vm.table().find(line_of(0x40 + 0x100000));
  EXPECT_NE(e, nullptr);
  if (!e) co_return;  // ASSERT_* would `return`, illegal in a coroutine
  EXPECT_EQ(e->state, suv::EntryState::kTxnRedirect);
  EXPECT_EQ(e->owner, tc.core());
  // The new value sits at the redirected address, the original is untouched.
  EXPECT_EQ(sim.mem().load_word(addr_of_line(e->target)), 99u);
  EXPECT_EQ(sim.mem().load_word(0x40 + 0x100000), 0u);
  co_await tc.tx_commit();
}

TEST_F(SuvOperationsTest, Fig4c_UnredirectedStoreAddsEntry) {
  sim_.spawn(0, fig4c(sim_, *vm_, sim_.context(0)));
  run();
  // Committed: the entry is now globally valid.
  const suv::RedirectEntry* e = vm_->table().find(line_of(0x40 + 0x100000));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, suv::EntryState::kGlobalRedirect);
}

// Figure 4(d): redirected load then redirected store. The store to an
// already-globally-redirected line toggles the entry back to the original
// address (delete-entry + add-entry on the same entry).
sim::ThreadTask fig4d_setup(sim::ThreadContext& tc) {
  co_await tc.tx_begin(1);
  co_await tc.store(0x100040, 54);
  co_await tc.tx_commit();
}

sim::ThreadTask fig4d_main(sim::Simulator& sim, vm::SuvVm& vm,
                           sim::ThreadContext& tc) {
  co_await tc.tx_begin(2);
  const std::uint64_t r3 = co_await tc.load(0x100040);
  EXPECT_EQ(r3, 54u);  // read through the global redirect
  co_await tc.store(0x100040, 55);
  const suv::RedirectEntry* e = vm.table().find(line_of(0x100040));
  EXPECT_NE(e, nullptr);
  if (!e) co_return;
  EXPECT_EQ(e->state, suv::EntryState::kTxnUnredirect);
  // New value back at the ORIGINAL address; old value kept at the target.
  EXPECT_EQ(sim.mem().load_word(0x100040), 55u);
  EXPECT_EQ(sim.mem().load_word(addr_of_line(e->target) | 0x40), 54u);
  co_await tc.tx_commit();
}

TEST_F(SuvOperationsTest, Fig4d_RedirectedLoadAndToggleStore) {
  sim_.spawn(0, fig4d_setup(sim_.context(0)));
  sim_.run();
  sim::Simulator sim2(make_cfg());  // fresh sim not needed; continue in-place
  sim_.spawn(1, fig4d_main(sim_, *vm_, sim_.context(1)));
  sim_.run();
  // Figure 4(e): after the toggle commit, the entry is gone and the
  // original address is canonical with the new value.
  EXPECT_EQ(vm_->table().find(line_of(0x100040)), nullptr);
  EXPECT_EQ(sim_.read_word_resolved(0x100040), 55u);
  EXPECT_EQ(vm_->suv_stats().entries_toggled, 1u);
  EXPECT_EQ(vm_->suv_stats().entries_deleted, 1u);
}

// Figure 4(f): abort converts transient entries back to their stable
// states without data movement.
sim::ThreadTask fig4f(sim::Simulator& sim, vm::SuvVm& vm,
                      sim::ThreadContext& tc) {
  (void)sim;
  bool aborted = false;
  try {
    co_await tc.tx_begin(3);
    co_await tc.store(0x200000, 100);
    EXPECT_EQ(vm.table().total_entries(), 1u);
    sim.htm().doom(tc.core());
    co_await tc.store(0x200040, 101);  // doomed: this access aborts
  } catch (const sim::TxAbort&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted);
  // Entry discarded; pre-transaction value visible untouched.
  EXPECT_EQ(vm.table().total_entries(), 0u);
  const std::uint64_t v = co_await tc.load(0x200000);
  EXPECT_EQ(v, 7u);
}

TEST_F(SuvOperationsTest, Fig4f_AbortRevertsTransientEntries) {
  sim_.mem().store_word(0x200000, 7);  // seed before the run-start snapshot
  sim_.spawn(0, fig4f(sim_, *vm_, sim_.context(0)));
  run();
  EXPECT_EQ(sim_.htm().stats().aborts, 1u);
}

// Two concurrent transactions: owner sees its redirected data, the
// neighbour's conflicting store is NACKed until the owner finishes.
sim::ThreadTask writer_txn(sim::ThreadContext& tc, Addr a, Cycle hold,
                           std::uint64_t val) {
  co_await tc.tx_begin(4);
  co_await tc.store(a, val);
  co_await tc.compute(hold);
  co_await tc.tx_commit();
}

TEST_F(SuvOperationsTest, ConflictingStoreWaitsForOwner) {
  const Addr a = 0x300000;
  sim_.spawn(0, writer_txn(sim_.context(0), a, 1500, 1));
  auto late = [](sim::ThreadContext& tc, Addr addr) -> sim::ThreadTask {
    co_await tc.compute(100);
    co_await stamp::atomically(tc, 5,
                               [&](sim::ThreadContext& t) -> sim::Task<void> {
      const std::uint64_t v = co_await t.load(addr);
      co_await t.store(addr, v + 10);
    });
  };
  sim_.spawn(1, late(sim_.context(1), a));
  run();
  // Serialized: 1 then +10.
  EXPECT_EQ(sim_.read_word_resolved(a), 11u);
  EXPECT_GT(sim_.breakdown(1).get(sim::Bucket::kStalled), 0u);
}

// Summary signatures: after a toggle-delete, the address may still test
// positive (stale bits are allowed) but lookups find no entry and pay no
// critical-path cost; after an abort of a fresh entry, the owner's summary
// sheds the address (counting removal).
TEST_F(SuvOperationsTest, SummaryMembershipFollowsEntryLifecycle) {
  const LineAddr line = line_of(0x100040);
  sim_.spawn(0, fig4d_setup(sim_.context(0)));
  sim_.run();
  EXPECT_TRUE(vm_->table().summary(0).test(line));   // owner added it
  EXPECT_TRUE(vm_->table().summary(5).test(line));   // publication spread it
  sim_.spawn(1, fig4d_main(sim_, *vm_, sim_.context(1)));
  sim_.run();
  // Deleted everywhere; with no aliasing members the bits clear exactly.
  EXPECT_EQ(vm_->table().find(line), nullptr);
}

}  // namespace
}  // namespace suvtm
