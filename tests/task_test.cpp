#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace suvtm::sim {
namespace {

// A minimal awaitable that suspends onto the scheduler.
struct Sleep {
  Scheduler& sched;
  Cycle delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { sched.resume_after(delay, h); }
  void await_resume() const noexcept {}
};

Task<int> answer() { co_return 42; }

Task<int> add(Scheduler& s, int a, int b) {
  co_await Sleep{s, 3};
  co_return a + b;
}

Task<int> nested(Scheduler& s) {
  const int x = co_await add(s, 1, 2);
  const int y = co_await add(s, x, 10);
  co_return y;
}

Task<void> thrower() {
  throw std::runtime_error("boom");
  co_return;  // unreachable; makes this a coroutine
}

Task<int> catches(Scheduler& s) {
  bool caught = false;
  try {
    co_await thrower();
  } catch (const std::runtime_error&) {
    caught = true;  // co_await is illegal inside a handler
  }
  if (caught) co_return co_await add(s, 5, 6);
  co_return -1;
}

ThreadTask toplevel(Scheduler& s, int* out) {
  *out = co_await nested(s);
}

ThreadTask toplevel_throws() {
  co_await thrower();
}

TEST(TaskTest, ImmediateValue) {
  Scheduler s;
  int result = 0;
  bool done = false;
  std::exception_ptr err;
  auto run = [&]() -> ThreadTask { result = co_await answer(); co_return; };
  ThreadTask t = run();
  auto h = t.prepare(&done, &err);
  s.at(0, [h] { h.resume(); });
  s.run(1000);
  EXPECT_TRUE(done);
  EXPECT_EQ(result, 42);
}

TEST(TaskTest, SuspendingTaskResumesWithValue) {
  Scheduler s;
  int out = 0;
  bool done = false;
  std::exception_ptr err;
  ThreadTask t = toplevel(s, &out);
  s.at(0, [h = t.prepare(&done, &err)] { h.resume(); });
  s.run(1000);
  EXPECT_TRUE(done);
  EXPECT_EQ(out, 13);       // (1+2)+10
  EXPECT_EQ(s.now(), 6u);   // two 3-cycle sleeps
  EXPECT_FALSE(err);
}

TEST(TaskTest, ExceptionPropagatesThroughNestedTasks) {
  Scheduler s;
  int result = 0;
  bool done = false;
  std::exception_ptr err;
  auto run = [&]() -> ThreadTask { result = co_await catches(s); co_return; };
  ThreadTask t = run();
  s.at(0, [h = t.prepare(&done, &err)] { h.resume(); });
  s.run(1000);
  EXPECT_TRUE(done);
  EXPECT_EQ(result, 11);
  EXPECT_FALSE(err);
}

TEST(TaskTest, UncaughtExceptionReachesErrorSink) {
  Scheduler s;
  bool done = false;
  std::exception_ptr err;
  ThreadTask t = toplevel_throws();
  s.at(0, [h = t.prepare(&done, &err)] { h.resume(); });
  s.run(1000);
  EXPECT_TRUE(done);
  ASSERT_TRUE(err);
  EXPECT_THROW(std::rethrow_exception(err), std::runtime_error);
}

TEST(TaskTest, VoidTaskCompletes) {
  Scheduler s;
  bool body_ran = false;
  bool done = false;
  std::exception_ptr err;
  auto inner = [&]() -> Task<void> {
    body_ran = true;
    co_return;
  };
  auto run = [&]() -> ThreadTask { co_await inner(); };
  ThreadTask t = run();
  s.at(0, [h = t.prepare(&done, &err)] { h.resume(); });
  s.run(1000);
  EXPECT_TRUE(body_ran);
  EXPECT_TRUE(done);
}

TEST(TaskTest, ManySequentialAwaits) {
  Scheduler s;
  int total = 0;
  bool done = false;
  std::exception_ptr err;
  auto run = [&]() -> ThreadTask {
    for (int i = 0; i < 100; ++i) total += co_await add(s, i, 0);
  };
  ThreadTask t = run();
  s.at(0, [h = t.prepare(&done, &err)] { h.resume(); });
  s.run(10000);
  EXPECT_TRUE(done);
  EXPECT_EQ(total, 4950);
  EXPECT_EQ(s.now(), 300u);
}

}  // namespace
}  // namespace suvtm::sim
