// ThreadContext-level behaviour: cost accounting, exclusive loads, backoff
// growth, stall retries and non-transactional accounting.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "stamp/framework.hpp"

namespace suvtm::sim {
namespace {

SimConfig cfg_logtm() {
  SimConfig cfg;
  cfg.scheme = Scheme::kLogTmSe;
  return cfg;
}

ThreadTask single_op(ThreadContext& tc, Addr a, bool store) {
  if (store) co_await tc.store(a, 1);
  else co_await tc.load(a);
}

TEST(ThreadContextTest, NonTxAccessChargedToNoTrans) {
  Simulator sim(cfg_logtm());
  sim.spawn(0, single_op(sim.context(0), 0x1000, false));
  sim.run();
  EXPECT_GT(sim.breakdown(0).get(Bucket::kNoTrans), 0u);
  EXPECT_EQ(sim.breakdown(0).get(Bucket::kTrans), 0u);
}

ThreadTask tx_op(ThreadContext& tc, Addr a) {
  co_await tc.tx_begin(1);
  co_await tc.load(a);
  co_await tc.store(a, 7);
  co_await tc.tx_commit();
}

TEST(ThreadContextTest, CommittedTxChargedToTrans) {
  Simulator sim(cfg_logtm());
  sim.spawn(0, tx_op(sim.context(0), 0x1000));
  sim.run();
  EXPECT_GT(sim.breakdown(0).get(Bucket::kTrans), 0u);
  EXPECT_EQ(sim.breakdown(0).get(Bucket::kWasted), 0u);
  EXPECT_EQ(sim.mem().load_word(0x1000), 7u);
}

ThreadTask doomed_then_retry(ThreadContext& tc, Addr a, int* attempts) {
  co_await stamp::atomically(tc, 1, [&](ThreadContext& t) -> Task<void> {
    ++*attempts;
    co_await t.load(a);
    co_await t.store(a, 1);
    if (*attempts == 1) {
      // Simulate an incoming conflict dooming this transaction mid-flight.
      co_await t.compute(1);
    }
  });
}

TEST(ThreadContextTest, AbortedAttemptChargedToWastedAndAborting) {
  Simulator sim(cfg_logtm());
  int attempts = 0;
  // Doom the transaction from outside after it started.
  sim.scheduler().at(3, [&] { sim.htm().doom(0); });
  sim.spawn(0, doomed_then_retry(sim.context(0), 0x1000, &attempts));
  sim.run();
  EXPECT_GE(attempts, 2);
  EXPECT_GT(sim.breakdown(0).get(Bucket::kWasted), 0u);
  EXPECT_GT(sim.breakdown(0).get(Bucket::kAborting), 0u);
  EXPECT_GT(sim.breakdown(0).get(Bucket::kBackoff), 0u);
  EXPECT_EQ(sim.htm().stats().aborts, 1u);
  EXPECT_EQ(sim.read_word_resolved(0x1000), 1u);
}

ThreadTask rmw_op(ThreadContext& tc, Addr a) {
  co_await tc.tx_begin(1);
  const std::uint64_t v = co_await tc.load_rmw(a);
  co_await tc.store(a, v + 1);
  co_await tc.tx_commit();
}

TEST(ThreadContextTest, LoadRmwTakesExclusivePermissionUpFront) {
  Simulator sim(cfg_logtm());
  sim.spawn(0, rmw_op(sim.context(0), 0x2000));
  sim.run();
  // After the rmw load, the line is Modified; the following store was a
  // 1-cycle hit, and the line entered both signatures at the load.
  EXPECT_EQ(sim.mem().load_word(0x2000), 1u);
  // Verify via a second simulator step: one GETM total (no upgrade miss).
  EXPECT_EQ(sim.mem().stats().l1_misses, 1u);
}

ThreadTask stall_victim(ThreadContext& tc, Addr a, Cycle* stalled_out) {
  co_await tc.tx_begin(1);
  co_await tc.store(a, 42);
  // Hold the line for a long time.
  co_await tc.compute(2000);
  co_await tc.tx_commit();
  *stalled_out = tc.breakdown().get(Bucket::kStalled);
}

ThreadTask stall_requester(ThreadContext& tc, Addr a) {
  co_await tc.compute(100);  // let the victim acquire the line first
  co_await tc.tx_begin(2);
  co_await tc.load(a);  // NACKed until the holder commits
  co_await tc.tx_commit();
}

TEST(ThreadContextTest, NackedRequesterAccumulatesStalledTime) {
  Simulator sim(cfg_logtm());
  Cycle unused = 0;
  sim.spawn(0, stall_victim(sim.context(0), 0x3000, &unused));
  sim.spawn(1, stall_requester(sim.context(1), 0x3000));
  sim.run();
  // The requester stalled for roughly the holder's 2000-cycle compute.
  EXPECT_GT(sim.breakdown(1).get(Bucket::kStalled), 1000u);
  EXPECT_EQ(sim.htm().stats().aborts, 0u);  // pure stall, no deadlock
  EXPECT_EQ(sim.read_word_resolved(0x3000), 42u);
}

ThreadTask backoff_prober(ThreadContext& tc, int n, std::vector<Cycle>* out) {
  for (int i = 0; i < n; ++i) {
    co_await tc.tx_begin(1);
    // Give the transaction a few attempts' worth of history.
    sim::Simulator* unused = nullptr;
    (void)unused;
    co_await tc.tx_commit();
    const Cycle before = tc.breakdown().get(Bucket::kBackoff);
    co_await tc.backoff();
    out->push_back(tc.breakdown().get(Bucket::kBackoff) - before);
  }
}

TEST(ThreadContextTest, BackoffIsBoundedByCap) {
  SimConfig cfg = cfg_logtm();
  cfg.htm.backoff_cap = 512;
  Simulator sim(cfg);
  std::vector<Cycle> waits;
  sim.spawn(0, backoff_prober(sim.context(0), 20, &waits));
  sim.run();
  for (Cycle w : waits) {
    EXPECT_GE(w, cfg.htm.backoff_base);
    EXPECT_LE(w, cfg.htm.backoff_cap);
  }
}

ThreadTask compute_only(ThreadContext& tc) {
  co_await tc.compute(500);
}

TEST(ThreadContextTest, ComputeOutsideTxIsNoTrans) {
  Simulator sim(cfg_logtm());
  sim.spawn(0, compute_only(sim.context(0)));
  sim.run();
  EXPECT_EQ(sim.breakdown(0).get(Bucket::kNoTrans), 500u);
}

TEST(ThreadContextTest, InTxReflectsState) {
  Simulator sim(cfg_logtm());
  auto body = [](ThreadContext& tc) -> ThreadTask {
    EXPECT_FALSE(tc.in_tx());
    co_await tc.tx_begin(1);
    EXPECT_TRUE(tc.in_tx());
    co_await tc.tx_commit();
    EXPECT_FALSE(tc.in_tx());
  };
  sim.spawn(0, body(sim.context(0)));
  sim.run();
}

}  // namespace
}  // namespace suvtm::sim
