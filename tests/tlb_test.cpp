#include <gtest/gtest.h>

#include "mem/tlb.hpp"

namespace suvtm::mem {
namespace {

TEST(TlbTest, ColdMissThenHit) {
  Tlb t(4, 30);
  auto a = t.access(0x1000);
  EXPECT_FALSE(a.hit);
  EXPECT_EQ(a.latency, 30u);
  auto b = t.access(0x1008);  // same page
  EXPECT_TRUE(b.hit);
  EXPECT_EQ(b.latency, 0u);
  EXPECT_EQ(b.slot, a.slot);
}

TEST(TlbTest, DistinctPagesDistinctSlots) {
  Tlb t(4, 30);
  auto a = t.access(0 * kPageBytes);
  auto b = t.access(1 * kPageBytes);
  EXPECT_NE(a.slot, b.slot);
}

TEST(TlbTest, LruReplacement) {
  Tlb t(2, 30);
  t.access(0 * kPageBytes);
  t.access(1 * kPageBytes);
  t.access(0 * kPageBytes);          // page 0 recently used
  auto c = t.access(2 * kPageBytes); // evicts page 1
  EXPECT_FALSE(c.hit);
  EXPECT_TRUE(t.access(0 * kPageBytes).hit);
  EXPECT_FALSE(t.access(1 * kPageBytes).hit);
}

TEST(TlbTest, FindSlotDoesNotTouch) {
  Tlb t(2, 30);
  t.access(0 * kPageBytes);
  t.access(1 * kPageBytes);
  EXPECT_GE(t.find_slot(0), 0);
  EXPECT_EQ(t.find_slot(7), -1);
  // find_slot must not refresh LRU: page 0 is still the LRU victim.
  t.access(2 * kPageBytes);
  EXPECT_EQ(t.find_slot(0), -1);
}

TEST(TlbTest, PageAtReturnsMappedPage) {
  Tlb t(4, 30);
  auto a = t.access(5 * kPageBytes + 123);
  EXPECT_EQ(t.page_at(a.slot), 5u);
}

TEST(TlbTest, HitMissCounters) {
  Tlb t(8, 30);
  t.access(0);
  t.access(0);
  t.access(kPageBytes);
  EXPECT_EQ(t.hits(), 1u);
  EXPECT_EQ(t.misses(), 2u);
}

}  // namespace
}  // namespace suvtm::mem
