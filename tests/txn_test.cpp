#include <gtest/gtest.h>

#include "htm/txn.hpp"

namespace suvtm::htm {
namespace {

TEST(TxnTest, InitialState) {
  Txn t(3, 2048, 2);
  EXPECT_EQ(t.core, 3u);
  EXPECT_EQ(t.state, TxnState::kIdle);
  EXPECT_FALSE(t.active());
  EXPECT_FALSE(t.holds_isolation());
  EXPECT_EQ(t.depth, 0u);
}

TEST(TxnTest, ActiveStates) {
  Txn t(0, 2048, 2);
  for (TxnState s : {TxnState::kRunning, TxnState::kCommitting,
                     TxnState::kAborting}) {
    t.state = s;
    EXPECT_TRUE(t.active());
    EXPECT_TRUE(t.holds_isolation());
  }
}

TEST(TxnTest, ResetAttemptKeepsTimestamp) {
  Txn t(0, 2048, 2);
  t.state = TxnState::kRunning;
  t.timestamp = 1234;
  t.has_timestamp = true;
  t.attempts = 3;
  t.read_sig.add(1);
  t.write_sig.add(2);
  t.read_lines.insert(1);
  t.write_lines.insert(2);
  t.undo.emplace_back(8, 42);
  t.logged_words.insert(8);
  t.redo[16] = 7;
  t.doomed = true;
  t.degenerated = true;

  t.reset_attempt();
  EXPECT_EQ(t.state, TxnState::kIdle);
  EXPECT_TRUE(t.has_timestamp);      // progress guarantee
  EXPECT_EQ(t.timestamp, 1234u);
  EXPECT_EQ(t.attempts, 3u);         // attempt count persists for backoff
  EXPECT_TRUE(t.read_sig.empty());
  EXPECT_TRUE(t.write_sig.empty());
  EXPECT_TRUE(t.read_lines.empty());
  EXPECT_TRUE(t.undo.empty());
  EXPECT_TRUE(t.logged_words.empty());
  EXPECT_TRUE(t.redo.empty());
  EXPECT_FALSE(t.doomed);
  EXPECT_FALSE(t.degenerated);
}

TEST(TxnTest, ResetCommittedDropsTimestamp) {
  Txn t(0, 2048, 2);
  t.has_timestamp = true;
  t.attempts = 5;
  t.reset_committed();
  EXPECT_FALSE(t.has_timestamp);
  EXPECT_EQ(t.attempts, 0u);
}

TEST(TxnTest, NestFramesRecordMarks) {
  Txn t(0, 2048, 2);
  t.state = TxnState::kRunning;
  t.depth = 1;
  t.undo.emplace_back(0, 0);
  t.read_sig.add(1);
  t.frames.push_back(
      {t.undo.size(), t.read_sig.adds(), t.write_sig.adds(), 0});
  EXPECT_EQ(t.frames.back().undo_mark, 1u);
  EXPECT_EQ(t.frames.back().read_sig_mark, 1u);
  EXPECT_EQ(t.frames.back().write_sig_mark, 0u);
}

TEST(TxnTest, StateNames) {
  EXPECT_STREQ(txn_state_name(TxnState::kIdle), "Idle");
  EXPECT_STREQ(txn_state_name(TxnState::kRunning), "Running");
  EXPECT_STREQ(txn_state_name(TxnState::kCommitting), "Committing");
  EXPECT_STREQ(txn_state_name(TxnState::kAborting), "Aborting");
}

}  // namespace
}  // namespace suvtm::htm
