#include <gtest/gtest.h>

#include "htm/htm_system.hpp"
#include "mem/memory_system.hpp"
#include "sim/simulator.hpp"
#include "vm/dyntm.hpp"

namespace suvtm::vm {
namespace {

TEST(ModeSelectorTest, StartsAtThresholdPredictingLazy) {
  ModeSelector s(2);
  EXPECT_TRUE(s.predict_lazy(1));
}

TEST(ModeSelectorTest, CommitsDriftTowardEager) {
  ModeSelector s(2);
  s.record_commit(1, /*was_lazy=*/true);
  s.record_commit(1, true);
  EXPECT_FALSE(s.predict_lazy(1));
}

TEST(ModeSelectorTest, EagerAbortsPushTowardLazy) {
  ModeSelector s(2);
  s.record_commit(1, false);
  s.record_commit(1, false);
  EXPECT_FALSE(s.predict_lazy(1));
  s.record_abort(1, /*was_lazy=*/false);
  s.record_abort(1, false);
  EXPECT_TRUE(s.predict_lazy(1));
}

TEST(ModeSelectorTest, LazyAbortsPushTowardEager) {
  ModeSelector s(2);
  EXPECT_TRUE(s.predict_lazy(1));
  s.record_abort(1, /*was_lazy=*/true);
  s.record_abort(1, true);
  EXPECT_FALSE(s.predict_lazy(1));
}

TEST(ModeSelectorTest, CounterSaturates) {
  ModeSelector s(2);
  for (int i = 0; i < 10; ++i) s.record_abort(1, false);
  for (int i = 0; i < 3; ++i) s.record_commit(1, false);
  EXPECT_FALSE(s.predict_lazy(1));  // 3 -> 0 after three commits
}

TEST(ModeSelectorTest, SitesAreIndependent) {
  ModeSelector s(2);
  s.record_commit(1, false);
  s.record_commit(1, false);
  EXPECT_FALSE(s.predict_lazy(1));
  EXPECT_TRUE(s.predict_lazy(2));
}

// DynTM behaviour through the HtmSystem plumbing.
class DynTmTest : public ::testing::Test {
 protected:
  DynTmTest() {
    cfg_.scheme = sim::Scheme::kDynTm;
    mem_ = std::make_unique<mem::MemorySystem>(cfg_.mem);
    htm_ = std::make_unique<htm::HtmSystem>(
        cfg_, *mem_, sim::make_version_manager(cfg_, *mem_));
    dyn_ = dynamic_cast<DynTm*>(&htm_->vm());
  }

  htm::Txn& begin(CoreId c, bool force_lazy) {
    htm::Txn& t = htm_->txn(c);
    t.state = htm::TxnState::kRunning;
    t.site = 1;
    dyn_->on_begin(t);
    t.lazy = force_lazy;  // tests pin the mode explicitly
    return t;
  }

  sim::SimConfig cfg_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<htm::HtmSystem> htm_;
  DynTm* dyn_ = nullptr;
};

TEST_F(DynTmTest, FactoryBuildsDynTm) {
  ASSERT_NE(dyn_, nullptr);
  EXPECT_STREQ(dyn_->name(), "DynTM");
}

TEST_F(DynTmTest, LazyStoresAreBuffered) {
  htm::Txn& t = begin(0, true);
  auto act = dyn_->on_tx_store(t, 0x1000);
  EXPECT_TRUE(act.buffered);
}

TEST_F(DynTmTest, EagerStoresGoInPlace) {
  htm::Txn& t = begin(0, false);
  auto act = dyn_->on_tx_store(t, 0x1000);
  EXPECT_FALSE(act.buffered);
  EXPECT_EQ(act.target, 0x1000u);
}

TEST_F(DynTmTest, LazyLoadSeesOwnBufferedWrite) {
  htm::Txn& t = begin(0, true);
  t.redo[0x1000] = 55;
  auto act = dyn_->resolve_load(0, &t, 0x1000);
  ASSERT_TRUE(act.buffered.has_value());
  EXPECT_EQ(*act.buffered, 55u);
}

TEST_F(DynTmTest, LazyLoadMissesBufferFallsToMemory) {
  htm::Txn& t = begin(0, true);
  auto act = dyn_->resolve_load(0, &t, 0x2000);
  EXPECT_FALSE(act.buffered.has_value());
  EXPECT_EQ(act.target, 0x2000u);
}

TEST_F(DynTmTest, LazyCommitPublishesRedoBuffer) {
  htm::Txn& t = begin(0, true);
  t.redo[0x1000] = 77;
  t.write_lines.insert(line_of(0x1000));
  dyn_->commit_cost(t);
  dyn_->on_commit_done(t);
  EXPECT_EQ(mem_->load_word(0x1000), 77u);
}

TEST_F(DynTmTest, LazyCommitCostScalesWithWriteSet) {
  htm::Txn& t = begin(0, true);
  for (int i = 0; i < 10; ++i) t.write_lines.insert(100 + i);
  const Cycle ten = dyn_->commit_cost(t);
  for (int i = 10; i < 20; ++i) t.write_lines.insert(100 + i);
  const Cycle twenty = dyn_->commit_cost(t);
  EXPECT_EQ(twenty - ten, 10 * cfg_.htm.dyntm_publish_per_line);
}

TEST_F(DynTmTest, LazyAbortDiscardsBufferCheaply) {
  htm::Txn& t = begin(0, true);
  t.redo[0x1000] = 77;
  EXPECT_EQ(dyn_->abort_cost(t), cfg_.htm.dyntm_lazy_abort);
  dyn_->on_abort_done(t);
  EXPECT_EQ(mem_->load_word(0x1000), 0u);  // never reached memory
}

TEST_F(DynTmTest, LazyCommitterDoomsConflictingReaders) {
  htm::Txn& committer = begin(0, true);
  committer.write_lines.insert(500);
  committer.write_sig.add(500);
  htm::Txn& victim = begin(1, true);
  victim.read_sig.add(500);
  victim.read_lines.insert(500);
  dyn_->commit_cost(committer);
  EXPECT_TRUE(victim.doomed);
  EXPECT_GE(dyn_->dyntm_stats().lazy_commit_dooms, 1u);
}

TEST_F(DynTmTest, CommitWaitsForEagerOwnersThenProceeds) {
  htm::Txn& committer = begin(0, true);
  committer.write_lines.insert(500);
  htm::Txn& eager = begin(1, false);
  eager.write_sig.add(500);
  eager.write_lines.insert(500);
  EXPECT_FALSE(dyn_->commit_ready(committer));
  // The wait is bounded: eventually the committer proceeds regardless.
  bool ready = false;
  for (int i = 0; i < 20 && !ready; ++i) ready = dyn_->commit_ready(committer);
  EXPECT_TRUE(ready);
}

TEST_F(DynTmTest, CommitReadyImmediateWithoutConflicts) {
  htm::Txn& committer = begin(0, true);
  committer.write_lines.insert(500);
  EXPECT_TRUE(dyn_->commit_ready(committer));
}

TEST_F(DynTmTest, EagerModeDelegatesToInner) {
  htm::Txn& t = begin(0, false);
  // FasTM inner: begin cost comes from the inner scheme.
  EXPECT_EQ(dyn_->commit_cost(t), cfg_.htm.fastm_flash_commit);
}

TEST(DynTmSuvTest, LazyStoresAreRedirectedNotBuffered) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kDynTmSuv;
  mem::MemorySystem mem(cfg.mem);
  htm::HtmSystem htm(cfg, mem, sim::make_version_manager(cfg, mem));
  auto* dyn = dynamic_cast<DynTm*>(&htm.vm());
  ASSERT_NE(dyn, nullptr);
  EXPECT_STREQ(dyn->name(), "DynTM+SUV");
  htm::Txn& t = htm.txn(0);
  t.state = htm::TxnState::kRunning;
  t.lazy = true;
  auto act = dyn->on_tx_store(t, 0x1000);
  EXPECT_FALSE(act.buffered);  // physical redirection, invisible logically
  EXPECT_NE(line_of(act.target), line_of(0x1000));
}

TEST(DynTmSuvTest, LazyCommitIsFlashNotPerLine) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kDynTmSuv;
  mem::MemorySystem mem(cfg.mem);
  htm::HtmSystem htm(cfg, mem, sim::make_version_manager(cfg, mem));
  auto* dyn = dynamic_cast<DynTm*>(&htm.vm());
  htm::Txn& t = htm.txn(0);
  t.state = htm::TxnState::kRunning;
  t.lazy = true;
  for (int i = 0; i < 50; ++i) {
    dyn->on_tx_store(t, 0x1000 + 64 * i);
    t.write_lines.insert(line_of(0x1000 + 64 * i));
  }
  // Arbitration + flash: far below DynTM's 50-line publication.
  EXPECT_LT(dyn->commit_cost(t),
            cfg.htm.dyntm_arbitration + 50 * cfg.htm.dyntm_publish_per_line);
}

}  // namespace
}  // namespace suvtm::vm
