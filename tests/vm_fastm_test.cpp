#include <gtest/gtest.h>

#include "mem/memory_system.hpp"
#include "vm/fastm.hpp"

namespace suvtm::vm {
namespace {

class FasTmTest : public ::testing::Test {
 protected:
  FasTmTest() : mem_(sim::MemParams{}), vm_(params_, mem_), txn_(0, 2048, 2) {
    txn_.state = htm::TxnState::kRunning;
  }

  sim::HtmParams params_;
  mem::MemorySystem mem_;
  FasTm vm_;
  htm::Txn txn_;
};

TEST_F(FasTmTest, BeginWritesBackSharedDirtyData) {
  EXPECT_EQ(vm_.on_begin(txn_), params_.fastm_begin_extra);
}

TEST_F(FasTmTest, CleanLineStoreHasNoExtraCost) {
  auto act = vm_.on_tx_store(txn_, 0x1000);
  EXPECT_EQ(act.extra, 0u);
  EXPECT_EQ(act.target, 0x1000u);
}

TEST_F(FasTmTest, DirtyLineFirstWritePaysWriteback) {
  // Make the line dirty (M, non-speculative) in the L1 first.
  mem_.access(0, 0x1000, true);
  auto act = vm_.on_tx_store(txn_, 0x1000);
  EXPECT_EQ(act.extra, params_.fastm_writeback_extra);
}

TEST_F(FasTmTest, SecondWriteToLinePaysNothing) {
  mem_.access(0, 0x1000, true);
  vm_.on_tx_store(txn_, 0x1000);
  txn_.write_lines.insert(line_of(0x1000));  // caller does this after the hook
  auto act = vm_.on_tx_store(txn_, 0x1008);
  EXPECT_EQ(act.extra, 0u);
}

TEST_F(FasTmTest, FastAbortIsConstant) {
  for (int i = 0; i < 50; ++i) vm_.on_tx_store(txn_, 0x1000 + 8 * i);
  EXPECT_EQ(vm_.abort_cost(txn_), params_.fastm_flash_abort);
  EXPECT_EQ(vm_.fastm_stats().fast_aborts, 1u);
}

TEST_F(FasTmTest, SpecEvictionDegenerates) {
  vm_.on_tx_store(txn_, 0x1000);
  vm_.on_spec_eviction(txn_, line_of(0x1000));
  EXPECT_TRUE(txn_.degenerated);
  EXPECT_EQ(vm_.stats().degenerations, 1u);
  EXPECT_EQ(vm_.stats().spec_overflows, 1u);
}

TEST_F(FasTmTest, DegeneratedAbortWalksOnlyPostDegenerationEntries) {
  // Two words logged on the fast path (free), then degenerate, then three
  // more: the software walk covers exactly the three.
  vm_.on_tx_store(txn_, 0x1000);
  vm_.on_tx_store(txn_, 0x1008);
  vm_.on_spec_eviction(txn_, line_of(0x1000));
  vm_.on_tx_store(txn_, 0x2000);
  vm_.on_tx_store(txn_, 0x2008);
  vm_.on_tx_store(txn_, 0x2010);
  const Cycle cost = vm_.abort_cost(txn_);
  EXPECT_EQ(cost, params_.fastm_flash_abort + params_.abort_trap_latency +
                      3 * params_.abort_per_entry);
  EXPECT_EQ(vm_.fastm_stats().slow_aborts, 1u);
}

TEST_F(FasTmTest, DegeneratedStoresPayLogCosts) {
  vm_.on_spec_eviction(txn_, 5);
  auto act = vm_.on_tx_store(txn_, 0x3000);
  EXPECT_GE(act.extra, params_.log_store_extra);
}

TEST_F(FasTmTest, AbortRestoresAllValuesEvenAfterDegeneration) {
  mem_.store_word(0x1000, 11);
  mem_.store_word(0x2000, 22);
  vm_.on_tx_store(txn_, 0x1000);
  mem_.store_word(0x1000, 111);
  vm_.on_spec_eviction(txn_, line_of(0x1000));
  vm_.on_tx_store(txn_, 0x2000);
  mem_.store_word(0x2000, 222);
  vm_.on_abort_done(txn_);
  EXPECT_EQ(mem_.load_word(0x1000), 11u);
  EXPECT_EQ(mem_.load_word(0x2000), 22u);
}

TEST_F(FasTmTest, AbortInvalidatesSpeculativeLines) {
  mem_.access(0, 0x1000, true);
  mem_.mark_speculative(0, line_of(0x1000));
  vm_.on_abort_done(txn_);
  EXPECT_EQ(mem_.l1(0).find(line_of(0x1000)), nullptr);
}

TEST_F(FasTmTest, CommitClearsSpeculativeBitsKeepsLines) {
  mem_.access(0, 0x1000, true);
  mem_.mark_speculative(0, line_of(0x1000));
  vm_.on_commit_done(txn_);
  auto* ln = mem_.l1(0).find(line_of(0x1000));
  ASSERT_NE(ln, nullptr);
  EXPECT_FALSE(ln->speculative);
}

TEST_F(FasTmTest, CommitCostConstant) {
  EXPECT_EQ(vm_.commit_cost(txn_), params_.fastm_flash_commit);
}

}  // namespace
}  // namespace suvtm::vm
