#include <gtest/gtest.h>

#include "mem/memory_system.hpp"
#include "vm/logtm_se.hpp"

namespace suvtm::vm {
namespace {

class LogTmTest : public ::testing::Test {
 protected:
  LogTmTest() : mem_(sim::MemParams{}), vm_(params_, mem_), txn_(0, 2048, 2) {
    txn_.state = htm::TxnState::kRunning;
  }

  sim::HtmParams params_;
  mem::MemorySystem mem_;
  LogTmSe vm_;
  htm::Txn txn_;
};

TEST_F(LogTmTest, StoreStaysInPlace) {
  auto act = vm_.on_tx_store(txn_, 0x1000);
  EXPECT_EQ(act.target, 0x1000u);
  EXPECT_FALSE(act.buffered);
}

TEST_F(LogTmTest, FirstStoreToWordLogsOldValue) {
  mem_.store_word(0x1000, 99);
  vm_.on_tx_store(txn_, 0x1000);
  ASSERT_EQ(txn_.undo.size(), 1u);
  EXPECT_EQ(txn_.undo[0].first, 0x1000u);
  EXPECT_EQ(txn_.undo[0].second, 99u);
}

TEST_F(LogTmTest, RepeatStoreToSameWordLogsOnce) {
  auto a1 = vm_.on_tx_store(txn_, 0x1000);
  EXPECT_GT(a1.extra, 0u);
  auto a2 = vm_.on_tx_store(txn_, 0x1000);
  EXPECT_EQ(a2.extra, 0u);
  EXPECT_EQ(txn_.undo.size(), 1u);
}

TEST_F(LogTmTest, DistinctWordsInOneLineLogSeparately) {
  vm_.on_tx_store(txn_, 0x1000);
  vm_.on_tx_store(txn_, 0x1008);
  EXPECT_EQ(txn_.undo.size(), 2u);
}

TEST_F(LogTmTest, SubWordAddressesShareLogEntry) {
  vm_.on_tx_store(txn_, 0x1000);
  vm_.on_tx_store(txn_, 0x1003);  // same aligned word
  EXPECT_EQ(txn_.undo.size(), 1u);
}

TEST_F(LogTmTest, EveryEighthEntryCostsNewLogLine) {
  Cycle base = 0, with_line = 0;
  for (int i = 0; i < 9; ++i) {
    auto act = vm_.on_tx_store(txn_, 0x1000 + 8 * i);
    if (i == 0) with_line = act.extra;  // entry 1 opens the first line
    if (i == 1) base = act.extra;
  }
  EXPECT_EQ(with_line, params_.log_store_extra + params_.log_new_line_extra);
  EXPECT_EQ(base, params_.log_store_extra);
}

TEST_F(LogTmTest, AbortCostScalesWithLogSize) {
  const Cycle empty = vm_.abort_cost(txn_);
  for (int i = 0; i < 10; ++i) vm_.on_tx_store(txn_, 0x1000 + 8 * i);
  const Cycle full = vm_.abort_cost(txn_);
  EXPECT_EQ(empty, params_.abort_trap_latency);
  EXPECT_EQ(full, params_.abort_trap_latency + 10 * params_.abort_per_entry);
}

TEST_F(LogTmTest, AbortRestoresOldValuesNewestFirst) {
  mem_.store_word(0x1000, 1);
  vm_.on_tx_store(txn_, 0x1000);
  mem_.store_word(0x1000, 2);  // transactional new value, in place
  vm_.on_tx_store(txn_, 0x2000);
  mem_.store_word(0x2000, 5);
  vm_.on_abort_done(txn_);
  EXPECT_EQ(mem_.load_word(0x1000), 1u);
  EXPECT_EQ(mem_.load_word(0x2000), 0u);
}

TEST_F(LogTmTest, CommitIsConstantTime) {
  for (int i = 0; i < 100; ++i) vm_.on_tx_store(txn_, 0x1000 + 8 * i);
  EXPECT_LE(vm_.commit_cost(txn_), 10u);
}

TEST_F(LogTmTest, ResolveLoadIsIdentity) {
  auto act = vm_.resolve_load(0, &txn_, 0x5555);
  EXPECT_EQ(act.target, 0x5555u);
  EXPECT_EQ(act.extra, 0u);
  EXPECT_FALSE(act.buffered.has_value());
}

TEST_F(LogTmTest, SpecEvictionIsOverflowNotDegeneration) {
  vm_.on_spec_eviction(txn_, 5);
  EXPECT_EQ(vm_.stats().data_overflows, 1u);
  EXPECT_FALSE(txn_.degenerated);
}

}  // namespace
}  // namespace suvtm::vm
