#include <gtest/gtest.h>

#include "mem/memory_system.hpp"
#include "vm/suv_vm.hpp"

namespace suvtm::vm {
namespace {

class SuvVmTest : public ::testing::Test {
 protected:
  SuvVmTest() : mem_(sim::MemParams{}), vm_(params_, mem_, 16),
                txn_(0, 2048, 2), other_(1, 2048, 2) {
    txn_.state = htm::TxnState::kRunning;
    other_.state = htm::TxnState::kRunning;
  }

  /// Complete the caller's side of a store: update the write set.
  htm::StoreAction store(htm::Txn& t, Addr a, std::uint64_t v) {
    auto act = vm_.on_tx_store(t, a);
    t.write_lines.insert(line_of(a));
    t.write_sig.add(line_of(a));
    mem_.store_word(act.target, v);
    return act;
  }

  std::uint64_t load_as(CoreId c, htm::Txn* t, Addr a) {
    auto act = vm_.resolve_load(c, t, a);
    return mem_.load_word(act.target);
  }

  sim::SuvParams params_;
  mem::MemorySystem mem_;
  SuvVm vm_;
  htm::Txn txn_;
  htm::Txn other_;
};

TEST_F(SuvVmTest, FreshStoreIsRedirectedToPool) {
  auto act = store(txn_, 0x1000, 42);
  EXPECT_NE(line_of(act.target), line_of(0x1000));
  EXPECT_TRUE(suv::PreservedPool::in_pool_region(line_of(act.target)));
  EXPECT_FALSE(act.buffered);
  // Word offset within the line is preserved.
  EXPECT_EQ(act.target & 63u, 0x1000u & 63u);
}

TEST_F(SuvVmTest, OwnerSeesNewValueOthersSeeOld) {
  mem_.store_word(0x1000, 7);  // pre-transaction value
  store(txn_, 0x1000, 42);
  EXPECT_EQ(load_as(0, &txn_, 0x1000), 42u);      // owner
  EXPECT_EQ(load_as(1, &other_, 0x1000), 7u);     // concurrent transaction
  EXPECT_EQ(load_as(5, nullptr, 0x1000), 7u);     // non-transactional
}

TEST_F(SuvVmTest, RedirectCopiesWholeLine) {
  // Neighbouring words in the same line must stay visible to the owner.
  mem_.store_word(0x1008, 77);
  store(txn_, 0x1000, 1);
  EXPECT_EQ(load_as(0, &txn_, 0x1008), 77u);
}

TEST_F(SuvVmTest, CommitPublishesNewValueToEveryone) {
  mem_.store_word(0x1000, 7);
  store(txn_, 0x1000, 42);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  EXPECT_EQ(load_as(3, nullptr, 0x1000), 42u);
  EXPECT_EQ(vm_.suv_stats().entries_published, 1u);
}

TEST_F(SuvVmTest, AbortRevertsWithoutDataMovement) {
  mem_.store_word(0x1000, 7);
  store(txn_, 0x1000, 42);
  vm_.on_abort_done(txn_);
  EXPECT_EQ(load_as(0, nullptr, 0x1000), 7u);
  EXPECT_EQ(vm_.suv_stats().entries_discarded, 1u);
  EXPECT_EQ(vm_.table().total_entries(), 0u);
}

TEST_F(SuvVmTest, AbortCostConstantRegardlessOfWriteSet) {
  for (int i = 0; i < 100; ++i) store(txn_, 0x1000 + 64 * i, i);
  EXPECT_EQ(vm_.abort_cost(txn_), params_.flash_abort);
}

TEST_F(SuvVmTest, SecondStoreToSameLineReusesEntry) {
  store(txn_, 0x1000, 1);
  const auto entries = vm_.suv_stats().entries_created;
  store(txn_, 0x1008, 2);
  EXPECT_EQ(vm_.suv_stats().entries_created, entries);
  EXPECT_EQ(load_as(0, &txn_, 0x1008), 2u);
}

TEST_F(SuvVmTest, ToggleRedirectsBackToOriginal) {
  mem_.store_word(0x1000, 7);
  store(txn_, 0x1000, 42);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  txn_.reset_committed();
  txn_.state = htm::TxnState::kRunning;

  // A later transaction stores to the same (globally redirected) line.
  auto act = store(txn_, 0x1000, 99);
  EXPECT_EQ(line_of(act.target), line_of(0x1000));  // back at the original
  EXPECT_EQ(vm_.suv_stats().entries_toggled, 1u);
  // Owner sees 99; others still see the committed 42 from the pool line.
  EXPECT_EQ(load_as(0, &txn_, 0x1000), 99u);
  EXPECT_EQ(load_as(1, &other_, 0x1000), 42u);
}

TEST_F(SuvVmTest, ToggleCommitDeletesEntry) {
  store(txn_, 0x1000, 42);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  txn_.reset_committed();
  txn_.state = htm::TxnState::kRunning;
  store(txn_, 0x1000, 99);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  EXPECT_EQ(vm_.table().total_entries(), 0u);
  EXPECT_EQ(vm_.suv_stats().entries_deleted, 1u);
  EXPECT_EQ(load_as(4, nullptr, 0x1000), 99u);  // original address is live
}

TEST_F(SuvVmTest, ToggleAbortRestoresGlobalRedirect) {
  store(txn_, 0x1000, 42);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  txn_.reset_committed();
  txn_.state = htm::TxnState::kRunning;
  store(txn_, 0x1000, 99);
  vm_.on_abort_done(txn_);
  EXPECT_EQ(load_as(4, nullptr, 0x1000), 42u);  // committed value survives
  EXPECT_EQ(vm_.table().total_entries(), 1u);
}

TEST_F(SuvVmTest, ToggledLineReusableAfterDeletion) {
  // Full cycle: redirect -> publish -> toggle -> delete -> redirect again.
  store(txn_, 0x1000, 1);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  txn_.reset_committed();
  txn_.state = htm::TxnState::kRunning;
  store(txn_, 0x1000, 2);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  txn_.reset_committed();
  txn_.state = htm::TxnState::kRunning;
  store(txn_, 0x1000, 3);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  EXPECT_EQ(load_as(2, nullptr, 0x1000), 3u);
}

TEST_F(SuvVmTest, CommitCostConstantWithinTableCapacity) {
  for (int i = 0; i < 100; ++i) store(txn_, 0x10000 + 64 * i, i);
  EXPECT_EQ(vm_.commit_cost(txn_), params_.flash_commit);
}

TEST_F(SuvVmTest, TableOverflowRaisesCommitCost) {
  for (std::uint32_t i = 0; i < params_.l1_table_entries + 10; ++i) {
    store(txn_, 0x100000 + static_cast<Addr>(64) * i, i);
  }
  EXPECT_GT(vm_.commit_cost(txn_), params_.flash_commit);
  EXPECT_EQ(vm_.suv_stats().table_overflow_txns, 1u);
}

TEST_F(SuvVmTest, PoolLinesReleasedOnAbort) {
  store(txn_, 0x1000, 1);
  store(txn_, 0x2000, 2);
  EXPECT_EQ(vm_.pool(0).lines_in_use(), 2u);
  vm_.on_abort_done(txn_);
  EXPECT_EQ(vm_.pool(0).lines_in_use(), 0u);
}

TEST_F(SuvVmTest, DebugResolveFollowsGlobalEntries) {
  mem_.store_word(0x1000, 7);
  store(txn_, 0x1000, 42);
  vm_.commit_cost(txn_);
  vm_.on_commit_done(txn_);
  const Addr resolved = vm_.debug_resolve(kNoCore, 0x1008);
  EXPECT_NE(line_of(resolved), line_of(0x1008));
  EXPECT_EQ(resolved & 63u, 8u);
}

TEST_F(SuvVmTest, ConcurrentTransactionsUseDistinctPoolLines) {
  auto a = store(txn_, 0x1000, 1);
  auto b = store(other_, 0x2000, 2);
  EXPECT_NE(line_of(a.target), line_of(b.target));
  EXPECT_EQ(load_as(0, &txn_, 0x1000), 1u);
  EXPECT_EQ(load_as(1, &other_, 0x2000), 2u);
}

}  // namespace
}  // namespace suvtm::vm
