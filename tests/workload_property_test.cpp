// Property sweeps: workload invariants must hold for every scheme across a
// spread of seeds (different interleavings, conflict patterns and abort
// mixes) -- the randomized counterpart of the fixed stamp_test matrix.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace suvtm {
namespace {

using Combo = std::tuple<sim::Scheme, std::uint64_t>;

class SeedSweep : public ::testing::TestWithParam<Combo> {
 protected:
  runner::RunResult run(stamp::AppId app) {
    const auto [scheme, seed] = GetParam();
    sim::SimConfig cfg;
    cfg.scheme = scheme;
    stamp::SuiteParams p;
    p.scale = 0.2;
    p.seed = seed;
    return runner::run_app(app, cfg, p);  // verify() throws on violation
  }
};

// The three structurally riskiest apps: pointer-chasing structures
// (genome), a hot queue + map (intruder) and huge write sets (labyrinth).
TEST_P(SeedSweep, GenomeInvariantsHold) {
  const auto r = run(stamp::AppId::kGenome);
  EXPECT_GT(r.htm.commits, 0u);
}

TEST_P(SeedSweep, IntruderInvariantsHold) {
  const auto r = run(stamp::AppId::kIntruder);
  EXPECT_GT(r.htm.commits, 0u);
}

TEST_P(SeedSweep, LabyrinthInvariantsHold) {
  const auto r = run(stamp::AppId::kLabyrinth);
  EXPECT_GT(r.htm.commits, 0u);
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto [scheme, seed] = info.param;
  std::string n = sim::scheme_name(scheme);
  for (char& c : n) {
    if (c == '-' || c == '+') c = '_';
  }
  return n + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SeedSweep,
    ::testing::Combine(::testing::Values(sim::Scheme::kLogTmSe,
                                         sim::Scheme::kFasTm,
                                         sim::Scheme::kSuv,
                                         sim::Scheme::kDynTm,
                                         sim::Scheme::kDynTmSuv),
                       ::testing::Values(1ull, 13ull, 42ull, 777ull)),
    combo_name);

// SUV-specific conservation property, swept across seeds: every pool line
// handed out is either live behind an entry or back on the free list, and
// no transient entries survive a completed run.
class SuvConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuvConservation, PoolAndTableBalance) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSuv;
  stamp::SuiteParams p;
  p.scale = 0.2;
  p.seed = GetParam();
  const auto r = runner::run_app(stamp::AppId::kYada, cfg, p);
  ASSERT_TRUE(r.has_suv);
  // Every transient entry resolves exactly one way: published or discarded
  // (fresh redirects), deleted or reverted (toggles).
  EXPECT_EQ(r.suv.entries_created + r.suv.entries_toggled,
            r.suv.entries_published + r.suv.entries_deleted +
                r.suv.entries_discarded + r.suv.entries_reverted);
  // Live entries == lines still held by the pools (one target per entry).
  EXPECT_EQ(r.redirect_entries_live, r.pool_lines_in_use);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuvConservation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// Abort accounting property: begins == commits + aborts under churn.
class AbortAccounting : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AbortAccounting, AttemptsBalance) {
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kLogTmSe;
  stamp::SuiteParams p;
  p.scale = 0.2;
  p.seed = GetParam();
  const auto r = runner::run_app(stamp::AppId::kBayes, cfg, p);
  EXPECT_EQ(r.htm.begins, r.htm.commits + r.htm.aborts);
  EXPECT_GT(r.htm.aborts, 0u);  // bayes must actually contend
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbortAccounting,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace suvtm
